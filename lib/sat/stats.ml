type t = {
  mutable decisions : int;
  mutable decisions_rank : int;
  mutable decisions_vsids : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learned : int;
  mutable deleted : int;
  mutable max_decision_level : int;
  mutable heuristic_switches : int;
  mutable blocker_hits : int;
  mutable arena_bytes : int;
  mutable arena_compactions : int;
  mutable shared_exported : int;
  mutable shared_imported : int;
  mutable shared_rejected_tainted : int;
  mutable shared_throttled : int;
  mutable inpr_runs : int;
  mutable inpr_probes : int;
  mutable inpr_probe_failed : int;
  mutable inpr_satisfied : int;
  mutable inpr_subsumed : int;
  mutable inpr_strengthened : int;
  mutable inpr_eliminated : int;
  mutable inpr_resolvents : int;
  mutable inpr_time : float;
  mutable solve_time : float;
  mutable bcp_time : float;
  mutable analyze_time : float;
}

let create () =
  {
    decisions = 0;
    decisions_rank = 0;
    decisions_vsids = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    max_decision_level = 0;
    heuristic_switches = 0;
    blocker_hits = 0;
    arena_bytes = 0;
    arena_compactions = 0;
    shared_exported = 0;
    shared_imported = 0;
    shared_rejected_tainted = 0;
    shared_throttled = 0;
    inpr_runs = 0;
    inpr_probes = 0;
    inpr_probe_failed = 0;
    inpr_satisfied = 0;
    inpr_subsumed = 0;
    inpr_strengthened = 0;
    inpr_eliminated = 0;
    inpr_resolvents = 0;
    inpr_time = 0.0;
    solve_time = 0.0;
    bcp_time = 0.0;
    analyze_time = 0.0;
  }

let copy s = { s with decisions = s.decisions }

let add acc s =
  acc.decisions <- acc.decisions + s.decisions;
  acc.decisions_rank <- acc.decisions_rank + s.decisions_rank;
  acc.decisions_vsids <- acc.decisions_vsids + s.decisions_vsids;
  acc.propagations <- acc.propagations + s.propagations;
  acc.conflicts <- acc.conflicts + s.conflicts;
  acc.restarts <- acc.restarts + s.restarts;
  acc.learned <- acc.learned + s.learned;
  acc.deleted <- acc.deleted + s.deleted;
  acc.max_decision_level <- max acc.max_decision_level s.max_decision_level;
  acc.heuristic_switches <- acc.heuristic_switches + s.heuristic_switches;
  acc.blocker_hits <- acc.blocker_hits + s.blocker_hits;
  acc.arena_bytes <- max acc.arena_bytes s.arena_bytes;
  acc.arena_compactions <- acc.arena_compactions + s.arena_compactions;
  acc.shared_exported <- acc.shared_exported + s.shared_exported;
  acc.shared_imported <- acc.shared_imported + s.shared_imported;
  acc.shared_rejected_tainted <- acc.shared_rejected_tainted + s.shared_rejected_tainted;
  acc.shared_throttled <- acc.shared_throttled + s.shared_throttled;
  acc.inpr_runs <- acc.inpr_runs + s.inpr_runs;
  acc.inpr_probes <- acc.inpr_probes + s.inpr_probes;
  acc.inpr_probe_failed <- acc.inpr_probe_failed + s.inpr_probe_failed;
  acc.inpr_satisfied <- acc.inpr_satisfied + s.inpr_satisfied;
  acc.inpr_subsumed <- acc.inpr_subsumed + s.inpr_subsumed;
  acc.inpr_strengthened <- acc.inpr_strengthened + s.inpr_strengthened;
  acc.inpr_eliminated <- acc.inpr_eliminated + s.inpr_eliminated;
  acc.inpr_resolvents <- acc.inpr_resolvents + s.inpr_resolvents;
  acc.inpr_time <- acc.inpr_time +. s.inpr_time;
  acc.solve_time <- acc.solve_time +. s.solve_time;
  acc.bcp_time <- acc.bcp_time +. s.bcp_time;
  acc.analyze_time <- acc.analyze_time +. s.analyze_time

let pp ppf s =
  Format.fprintf ppf
    "decisions=%d implications=%d conflicts=%d restarts=%d learned=%d deleted=%d \
     max_level=%d switches=%d blockers=%d"
    s.decisions s.propagations s.conflicts s.restarts s.learned s.deleted
    s.max_decision_level s.heuristic_switches s.blocker_hits;
  if s.decisions_rank > 0 || s.decisions_vsids > 0 then
    Format.fprintf ppf " dec_rank=%d dec_vsids=%d" s.decisions_rank s.decisions_vsids;
  if s.arena_bytes > 0 then
    Format.fprintf ppf " arena=%dB gcs=%d" s.arena_bytes s.arena_compactions;
  if s.shared_exported > 0 || s.shared_imported > 0 || s.shared_rejected_tainted > 0 then
    Format.fprintf ppf " sh_exported=%d sh_imported=%d sh_tainted=%d" s.shared_exported
      s.shared_imported s.shared_rejected_tainted;
  if s.shared_throttled > 0 then Format.fprintf ppf " sh_throttled=%d" s.shared_throttled;
  if s.inpr_runs > 0 then
    Format.fprintf ppf " inpr_elim=%d inpr_sub=%d inpr_str=%d inpr_probe_failed=%d"
      s.inpr_eliminated s.inpr_subsumed s.inpr_strengthened s.inpr_probe_failed;
  if s.solve_time > 0.0 then
    Format.fprintf ppf " solve=%.3fs bcp=%.3fs analyze=%.3fs" s.solve_time s.bcp_time
      s.analyze_time
