(** CNF formulas.

    A formula is a conjunction of clauses over variables [0 .. num_vars-1];
    each clause is a disjunction of literals.  This module is the neutral
    exchange format between the circuit encoder, the DIMACS reader and the
    solver; it performs no solving itself. *)

type clause = Lit.t array
(** A clause, as added by the client.  Order is preserved. *)

type t

val create : ?num_vars:int -> unit -> t
(** Fresh formula with [num_vars] pre-allocated variables (default 0). *)

val num_vars : t -> int

val num_clauses : t -> int

val fresh_var : t -> Lit.var
(** Allocate one new variable and return it. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars f n] grows the variable count to at least [n]. *)

val add_clause : t -> Lit.t list -> unit
(** Append a clause.  Literals over not-yet-declared variables grow the
    variable count automatically.  The empty clause is legal (and makes the
    formula trivially unsatisfiable). *)

val add_clause_a : t -> Lit.t array -> unit
(** Like {!add_clause} from an array; the array is copied. *)

val get_clause : t -> int -> clause
(** [get_clause f i] is the [i]-th clause (0-based, in insertion order).
    The returned array must not be mutated. *)

val iter_clauses : (int -> clause -> unit) -> t -> unit
(** Iterate clauses with their indices, in insertion order. *)

val fold_clauses : ('acc -> clause -> 'acc) -> 'acc -> t -> 'acc

val num_literals : t -> int
(** Total number of literal occurrences over all clauses. *)

val normalize_clause : Lit.t list -> Lit.t list option
(** Sort, remove duplicate literals; [None] if the clause is a tautology
    (contains [l] and [¬l]). *)

val eval : t -> (Lit.var -> bool) -> bool
(** Evaluate the formula under a total assignment.  O(size). *)

val eval_clause : clause -> (Lit.var -> bool) -> bool

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable listing, one clause per line in DIMACS notation. *)
