type verdict =
  | Proved of int
  | Falsified of Trace.t
  | Unknown of int

type step_stat = {
  depth : int;
  base_outcome : Sat.Solver.outcome;
  step_outcome : Sat.Solver.outcome option;
  base_decisions : int;
  step_decisions : int;
  time : float;
}

type result = {
  verdict : verdict;
  per_depth : step_stat list;
  total_time : float;
}

let pp_verdict ppf = function
  | Proved k -> Format.fprintf ppf "proved by %d-induction" k
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Unknown k -> Format.fprintf ppf "undecided up to depth %d" k

let order_mode (config : Engine.config) unroll score ~k =
  let num_vars = Varmap.num_vars (Unroll.varmap unroll) in
  match config.mode with
  | Engine.Standard -> Sat.Order.Vsids
  | Engine.Static -> Sat.Order.Static (Score.rank_array score ~num_vars)
  | Engine.Dynamic -> Sat.Order.Dynamic (Score.rank_array score ~num_vars)
  | Engine.Shtrichman -> Sat.Order.Static (Shtrichman.rank unroll ~k)

let uses_cores (config : Engine.config) =
  match config.mode with
  | Engine.Static | Engine.Dynamic -> true
  | Engine.Standard | Engine.Shtrichman -> false

(* Pairwise state-disequality over the step path: for every i < j ≤ last,
   some register differs between frames i and j.  The XOR auxiliaries are
   Tseitin-encoded with variables allocated past the unrolling's own. *)
let add_simple_path_constraints cnf unroll ~last regs =
  for i = 0 to last - 1 do
    for j = i + 1 to last do
      let diff_lits =
        List.map
          (fun r ->
            let a = Sat.Lit.pos (Unroll.var_of unroll ~node:r ~frame:i) in
            let b = Sat.Lit.pos (Unroll.var_of unroll ~node:r ~frame:j) in
            let d = Sat.Lit.pos (Sat.Cnf.fresh_var cnf) in
            (* d ↔ a ⊕ b *)
            Sat.Cnf.add_clause cnf [ Sat.Lit.negate d; a; b ];
            Sat.Cnf.add_clause cnf [ Sat.Lit.negate d; Sat.Lit.negate a; Sat.Lit.negate b ];
            Sat.Cnf.add_clause cnf [ d; a; Sat.Lit.negate b ];
            Sat.Cnf.add_clause cnf [ d; Sat.Lit.negate a; b ];
            d)
          regs
      in
      Sat.Cnf.add_clause cnf diff_lits
    done
  done

let prove ?(config = Engine.default_config) ?(simple_path = false) netlist ~property =
  let cfg = config in
  let base_unroll = Unroll.create ~coi:cfg.coi netlist ~property in
  let step_unroll = Unroll.create ~coi:cfg.coi ~constrain_init:false netlist ~property in
  let score = Score.create ~weighting:cfg.weighting () in
  let with_proof = uses_cores cfg || cfg.collect_cores in
  let regs = Circuit.Netlist.regs netlist in
  let per_depth = ref [] in
  let start = Sys.time () in
  let finish verdict =
    { verdict; per_depth = List.rev !per_depth; total_time = Sys.time () -. start }
  in
  let step_instance k =
    (* frames 0..k+1, P at 0..k, ¬P at k+1 *)
    let cnf = Unroll.base_cnf step_unroll ~k:(k + 1) in
    for i = 0 to k do
      Sat.Cnf.add_clause cnf
        [ Sat.Lit.pos (Unroll.var_of step_unroll ~node:property ~frame:i) ]
    done;
    Sat.Cnf.add_clause cnf
      [ Sat.Lit.neg (Unroll.var_of step_unroll ~node:property ~frame:(k + 1)) ];
    if simple_path then add_simple_path_constraints cnf step_unroll ~last:(k + 1) regs;
    cnf
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Unknown cfg.max_depth)
    else begin
      let t0 = Sys.time () in
      (* base case: ordinary BMC instance k, with core refinement *)
      let base_cnf = Unroll.instance base_unroll ~k in
      let base_solver =
        Sat.Solver.create ~with_proof ~mode:(order_mode cfg base_unroll score ~k)
          ~telemetry:cfg.telemetry base_cnf
      in
      let base_outcome = Sat.Solver.solve ~budget:cfg.budget base_solver in
      let base_decisions = (Sat.Solver.stats base_solver).Sat.Stats.decisions in
      match base_outcome with
      | Sat.Solver.Sat ->
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = None;
            base_decisions;
            step_decisions = 0;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        let trace = Trace.of_model base_unroll ~k ~model:(Sat.Solver.model base_solver) in
        if not (Trace.replay trace netlist ~property) then
          failwith "Induction.prove: counterexample failed to replay (internal error)";
        finish (Falsified trace)
      | Sat.Solver.Unknown ->
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = None;
            base_decisions;
            step_decisions = 0;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        finish (Unknown k)
      | Sat.Solver.Unsat ->
        if uses_cores cfg then
          Score.update score ~instance:k ~core_vars:(Sat.Solver.core_vars base_solver);
        (* step case over the arbitrary-start unrolling *)
        let step_cnf = step_instance k in
        let step_solver =
          Sat.Solver.create ~mode:(order_mode cfg step_unroll score ~k:(k + 1))
            ~telemetry:cfg.telemetry step_cnf
        in
        let step_outcome = Sat.Solver.solve ~budget:cfg.budget step_solver in
        let step_decisions = (Sat.Solver.stats step_solver).Sat.Stats.decisions in
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = Some step_outcome;
            base_decisions;
            step_decisions;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        (match step_outcome with
        | Sat.Solver.Unsat -> finish (Proved k)
        | Sat.Solver.Sat -> loop (k + 1)
        | Sat.Solver.Unknown -> finish (Unknown k))
    end
  in
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Induction.prove: " ^ msg));
  loop 0

let prove_case ?config ?simple_path (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  prove ~config ?simple_path case.Circuit.Generators.netlist
    ~property:case.Circuit.Generators.property
