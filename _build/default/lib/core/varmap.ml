type key = { node : Circuit.Netlist.node; frame : int }

type t = {
  forward : (key, Sat.Lit.var) Hashtbl.t;
  reverse : (Circuit.Netlist.node * int) Sat.Vec.t;
}

let create () = { forward = Hashtbl.create 1024; reverse = Sat.Vec.create ~dummy:(-1, -1) () }

let var t ~node ~frame =
  if frame < 0 then invalid_arg "Varmap.var: negative frame";
  let key = { node; frame } in
  match Hashtbl.find_opt t.forward key with
  | Some v -> v
  | None ->
    let v = Sat.Vec.length t.reverse in
    Hashtbl.replace t.forward key v;
    Sat.Vec.push t.reverse (node, frame);
    v

let peek t ~node ~frame = Hashtbl.find_opt t.forward { node; frame }

let key_of t v =
  if v >= 0 && v < Sat.Vec.length t.reverse then Some (Sat.Vec.get t.reverse v) else None

let num_vars t = Sat.Vec.length t.reverse
