(* A tour of the SAT layer on its own: build a formula, solve it, extract an
   unsatisfiable core from the simplified conflict-dependency graph, and use
   a hand-made variable ranking — everything the BMC engine does, in miniature.

     dune exec examples/ordering_tour.exe
*)

let pp_clause ppf c =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " v ")
       Sat.Lit.pp)
    c

let () =
  (* A small unsatisfiable formula: a pigeonhole core (3 pigeons, 2 holes)
     plus satisfiable padding clauses that cannot participate in any
     refutation. *)
  let cnf = Sat.Cnf.create () in
  let v p h = (p * 2) + h in
  (* every pigeon sits somewhere *)
  for p = 0 to 2 do
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos (v p 0); Sat.Lit.pos (v p 1) ]
  done;
  (* no two pigeons share a hole *)
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Sat.Cnf.add_clause cnf [ Sat.Lit.neg (v p1 h); Sat.Lit.neg (v p2 h) ]
      done
    done
  done;
  (* padding over fresh variables *)
  for _ = 1 to 5 do
    let x = Sat.Cnf.fresh_var cnf and y = Sat.Cnf.fresh_var cnf in
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos x; Sat.Lit.pos y ];
    Sat.Cnf.add_clause cnf [ Sat.Lit.neg x; Sat.Lit.pos y ]
  done;

  Format.printf "formula: %d variables, %d clauses@." (Sat.Cnf.num_vars cnf)
    (Sat.Cnf.num_clauses cnf);

  (* Solve with proof logging so the core is available afterwards. *)
  let solver = Sat.Solver.create ~with_proof:true cnf in
  let outcome = Sat.Solver.solve solver in
  Format.printf "outcome: %a@." Sat.Solver.pp_outcome outcome;
  Format.printf "stats: %a@.@." Sat.Stats.pp (Sat.Solver.stats solver);

  let core = Sat.Solver.unsat_core solver in
  Format.printf "unsatisfiable core: %d of %d clauses@." (List.length core)
    (Sat.Cnf.num_clauses cnf);
  List.iter (fun i -> Format.printf "  clause %2d: %a@." i pp_clause (Sat.Cnf.get_clause cnf i)) core;
  Format.printf "core variables: %s@.@."
    (String.concat ", " (List.map string_of_int (Sat.Solver.core_vars solver)));

  (* Now pretend this was BMC instance j=1 and bias a second solve towards
     the core variables, exactly as the engine does between instances. *)
  let score = Bmc.Score.create () in
  Bmc.Score.update score ~instance:1 ~core_vars:(Sat.Solver.core_vars solver);
  let rank = Bmc.Score.rank_array score ~num_vars:(Sat.Cnf.num_vars cnf) in
  let ranked = Sat.Solver.create ~with_proof:true ~mode:(Sat.Order.Static rank) cnf in
  let outcome2 = Sat.Solver.solve ranked in
  Format.printf "re-solve with core-first ordering: %a@." Sat.Solver.pp_outcome outcome2;
  Format.printf "stats: %a@." Sat.Stats.pp (Sat.Solver.stats ranked);
  Format.printf
    "@.With the ranking in place the solver never decides a padding variable@.\
     before the pigeonhole variables — the padding clauses stay untouched.@."
