lib/core/incremental.ml: Circuit Engine List Printf Sat Score Shtrichman Sys Trace Unroll Varmap
