bin/bmccheck.ml: Arg Bmc Circuit Cmd Cmdliner Filename Format List Printf Sat Term
