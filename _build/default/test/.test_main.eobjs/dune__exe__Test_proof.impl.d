test/test_proof.ml: Alcotest Array Int List QCheck QCheck_alcotest Random Sat
