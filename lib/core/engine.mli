(** The BMC driver — the paper's [refine_order_bmc] (Figure 5), run on the
    {!Session} substrate under the [Fresh] policy: a new solver over a
    snapshot instance at every depth, the behaviour of the original
    per-depth-rebuild engine.  {!Incremental} is the same driver under the
    [Persistent] policy; the pair is the A3 ablation.

    For k = 0, 1, 2, ... the engine builds the depth-k instance, solves it
    with the configured decision ordering, and:

    - on SAT, extracts and replays a counterexample trace and stops;
    - on UNSAT (in [Static]/[Dynamic] mode), reads the variables of the
      unsatisfiable core off the simplified CDG and folds them into the
      {!Score} ranking that will order decisions in instance k+1;
    - on budget exhaustion, aborts and reports how far it got.

    Modes:
    - [Standard]  — plain BMC: pure VSIDS, no proof logging (the baseline
      column of Table 1);
    - [Static]    — the refined ordering as the primary key throughout;
    - [Dynamic]   — refined ordering with fallback to VSIDS once the
      decision count passes 1/64 of the original literal count;
    - [Shtrichman] — the related-work time-axis static ordering;
    - [Custom]    — a registered heuristic from the ordering laboratory
      (see {!Session.custom} and the [Ordering] library).

    The types below are the session's, re-exported under their historical
    names so existing callers keep working. *)

type custom = Session.custom = {
  c_name : string;
  c_uses_cores : bool;
  c_order : Unroll.t -> Score.t -> k:int -> Sat.Order.mode;
  c_hooks : (Unroll.t -> Score.t -> solver:Sat.Solver.t -> Sat.Solver.hooks) option;
}

type mode = Session.mode =
  | Standard
  | Static
  | Dynamic
  | Shtrichman
  | Custom of custom

type core_mode = Session.core_mode =
  | Core_fast
  | Core_exact
  | Core_minimal

type config = Session.config = {
  mode : mode;
  weighting : Score.weighting;
  coi : bool;  (** restrict encoding to the property cone *)
  budget : Sat.Solver.budget;  (** per-instance solver budget *)
  max_depth : int;  (** highest unrolling depth to try *)
  collect_cores : bool;
      (** force proof logging even in modes that do not consume cores (used
          by the overhead ablation) *)
  core_mode : core_mode;
      (** core post-processing policy (see {!Session.config}) *)
  coremin_budget : Sat.Coremin.budget;
      (** work bound for [Core_minimal] minimisation *)
  restart_base : int option;
      (** override the solver's Luby restart unit (see
          {!Session.config}) *)
  inprocess : Sat.Inprocess.config option;
      (** depth-boundary inprocessing budget ([Persistent]-policy sessions
          only — ignored by this engine's [Fresh] policy; see
          {!Session.config}) *)
  telemetry : Telemetry.t;
      (** structured-tracing handle, threaded into every solver the engine
          creates; the engine additionally emits one "depth" event per
          instance (build / solve / CDG time, core size, decision counts).
          Default {!Telemetry.disabled} — a no-op. *)
  recorder : Obs.Recorder.t option;
      (** flight recorder installed on every solver the engine creates
          (see {!Session.config}).  Default [None]. *)
}

val default_config : config
(** [Standard] mode, [Linear] weighting, no COI, no budget,
    [max_depth = 20]. *)

val config :
  ?mode:mode ->
  ?weighting:Score.weighting ->
  ?coi:bool ->
  ?budget:Sat.Solver.budget ->
  ?max_depth:int ->
  ?collect_cores:bool ->
  ?core_mode:core_mode ->
  ?coremin_budget:Sat.Coremin.budget ->
  ?restart_base:int ->
  ?inprocess:Sat.Inprocess.config ->
  ?telemetry:Telemetry.t ->
  ?recorder:Obs.Recorder.t ->
  unit ->
  config

type depth_stat = Session.depth_stat = {
  depth : int;
  mode : mode;  (** the ordering this instance was configured with *)
  outcome : Sat.Solver.outcome;
  decisions : int;
  dec_rank : int;  (** decisions branching on a positively ranked variable *)
  dec_vsids : int;  (** decisions taken on VSIDS activity alone *)
  implications : int;  (** BCP-derived assignments, Figure 7's metric *)
  conflicts : int;
  core_size : int;  (** clauses in the unsat core; 0 if not collected *)
  core_var_count : int;
  core_new : int;  (** core vars absent from the previous depth's core *)
  core_dropped : int;  (** previous-depth core vars gone from this core *)
  core_pre : int;  (** core clauses before minimisation (= [core_size] unless [Core_minimal]) *)
  coremin_time : float;  (** CPU seconds spent minimising the core *)
  coremin_certified : bool;  (** minimised core re-proved and checker-accepted *)
  switched : bool;  (** dynamic mode fell back to VSIDS in this instance *)
  time : float;  (** CPU seconds solving this instance *)
  build_time : float;  (** CPU seconds building the instance (unroll + solver setup) *)
  bcp_time : float;  (** CPU seconds of BCP (0 unless telemetry was enabled) *)
  cdg_time : float;
      (** CPU seconds of CDG bookkeeping inside the solve (0 unless
          telemetry was enabled — the Section 3.1 overhead, per depth) *)
  inpr_elim : int;  (** boundary-inprocessing variables eliminated *)
  inpr_subsumed : int;  (** boundary-inprocessing clauses subsumed *)
  inpr_strengthened : int;  (** boundary self-subsuming resolutions *)
  inpr_probe_failed : int;  (** boundary failed-literal probes *)
  inpr_time : float;  (** CPU seconds of boundary inprocessing *)
}

val emit_depth_event : Telemetry.t -> depth_stat -> unit
(** Publish a depth_stat as a "depth" telemetry event (no-op when the handle
    is disabled).  An alias of {!Session.emit_depth_event} so all traces
    share one schema. *)

type verdict = Session.verdict =
  | Falsified of Trace.t
      (** counterexample found (and successfully replayed) at [Trace.depth] *)
  | Bounded_pass of int  (** every instance up to this depth was UNSAT *)
  | Aborted of int  (** budget exhausted while solving this depth *)

type result = Session.result = {
  verdict : verdict;
  per_depth : depth_stat list;  (** ascending depth *)
  total_time : float;
  total_decisions : int;
  total_implications : int;
  total_conflicts : int;
}

val run : ?config:config -> Circuit.Netlist.t -> property:Circuit.Netlist.node -> result
(** Check the invariant [property] on the circuit —
    {!Session.check}[ ~policy:Fresh].
    @raise Invalid_argument if the netlist does not validate, and
    [Failure] if a counterexample fails to replay (a solver or encoder bug
    — surfaced loudly rather than reported as a result). *)

val run_case : ?config:config -> Circuit.Generators.case -> result
(** {!run} on a generated benchmark case. *)

val pp_verdict : Format.formatter -> verdict -> unit

val pp_mode : Format.formatter -> mode -> unit

val mode_of_string : string -> mode option

val all_modes : mode list
