type weighting =
  | Linear
  | Uniform
  | Last_only

type t = {
  weighting : weighting;
  scores : (Sat.Lit.var, float) Hashtbl.t;
}

let create ?(weighting = Linear) () = { weighting; scores = Hashtbl.create 256 }

let weighting t = t.weighting

let update t ~instance ~core_vars =
  (match t.weighting with Last_only -> Hashtbl.reset t.scores | Linear | Uniform -> ());
  let w =
    match t.weighting with
    | Linear -> float_of_int (max instance 1)
    | Uniform | Last_only -> 1.0
  in
  List.iter
    (fun v ->
      let old = Option.value ~default:0.0 (Hashtbl.find_opt t.scores v) in
      Hashtbl.replace t.scores v (old +. w))
    core_vars

let score t v = Option.value ~default:0.0 (Hashtbl.find_opt t.scores v)

let rank_array t ~num_vars =
  let a = Array.make (max num_vars 1) 0.0 in
  Hashtbl.iter (fun v s -> if v < num_vars then a.(v) <- s) t.scores;
  a

let num_ranked t = Hashtbl.length t.scores
