examples/liveness_tour.mli:
