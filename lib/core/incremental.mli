(** Incremental BMC with refined decision orderings.

    The paper's conclusion anticipates combining its ordering refinement with
    the incremental-SAT techniques of Whittemore et al. (SATIRE, DAC 2001)
    and Eén–Sörensson: this module is that combination.  One persistent
    solver receives the transition-relation clauses frame by frame; the
    depth-k property constraint [¬P(V^k)] is guarded by a fresh activation
    variable a_k and enabled by {e assuming} a_k for instance k only, then
    permanently disabled with the unit clause [¬a_k].  Learnt clauses,
    literal activities and the proof graph all survive between instances —
    the clause-reuse benefit — while the per-variable [bmc_score] ranking is
    refreshed from each instance's unsatisfiable core exactly as in the
    non-incremental engine.

    Results use the {!Engine} types, so the two engines are drop-in
    comparable (benchmark A3).  Both are the same {!Session} driver: this
    module pins the [Persistent] policy, {!Engine} pins [Fresh]. *)

val run :
  ?config:Engine.config -> Circuit.Netlist.t -> property:Circuit.Netlist.node -> Engine.result
(** Like {!Engine.run}, with one persistent incremental solver underneath —
    {!Session.check}[ ~policy:Persistent].  All four ordering modes are
    supported; per-depth statistics report the {e delta} of the solver
    counters for that instance. *)

val run_case : ?config:Engine.config -> Circuit.Generators.case -> Engine.result
