(** Independent refutation checking (the paper's reference [18]:
    Zhang & Malik, "Validating SAT solvers using an independent
    resolution-based checker", DATE 2003).

    The solver can record, besides the pseudo-ID dependency graph, the
    {e clausal proof}: every learnt clause (with its literals) and every
    deletion, in order — the DRAT format's content.  This module replays
    such a proof with its own, deliberately simple unit propagation and
    accepts it only if every learnt clause is a {e reverse unit propagation}
    (RUP) consequence of the clauses active at that point, ending in the
    empty clause.  A bug anywhere in the solver's learning, watching or
    deletion logic surfaces here as a rejected proof.

    The checker shares no search code with the solver: propagation is a
    naive counter-based scan, exactly because slow-and-obvious is what one
    wants from a referee. *)

type event =
  | Learnt of Lit.t list
      (** clause added by conflict analysis, in derivation order; the empty
          clause terminates a refutation *)
  | Deleted of Lit.t list  (** clause removed by database reduction *)

val check_refutation : Cnf.t -> event list -> (unit, string) result
(** Replay the proof against the formula.  [Ok ()] iff every [Learnt]
    clause passes the RUP test against the originals plus the previously
    accepted (and not yet deleted) learnt clauses, and the proof derives
    the empty clause. *)

val to_drat : event list -> string
(** Serialise in the standard DRAT text format (one clause per line,
    deletions prefixed with [d], DIMACS literals, 0-terminated). *)

val of_drat : string -> event list
(** Parse DRAT text. @raise Failure on malformed input. *)
