(* Incremental solving and assumptions. *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

let outcome_str o = Format.asprintf "%a" Sat.Solver.pp_outcome o

let test_sat_under_assumptions () =
  let s = Sat.Solver.create (mk_cnf [ [ (0, true); (1, true) ] ]) in
  (match Sat.Solver.solve ~assumptions:[ Sat.Lit.neg 0 ] s with
  | Sat.Solver.Sat ->
    let m = Sat.Solver.model s in
    Alcotest.(check bool) "assumption respected" false m.(0);
    Alcotest.(check bool) "clause satisfied" true m.(1)
  | o -> Alcotest.failf "expected SAT, got %a" Sat.Solver.pp_outcome o)

let test_unsat_under_assumptions_recoverable () =
  let s = Sat.Solver.create (mk_cnf [ [ (0, true); (1, true) ] ]) in
  (match Sat.Solver.solve ~assumptions:[ Sat.Lit.neg 0; Sat.Lit.neg 1 ] s with
  | Sat.Solver.Unsat ->
    let failed = Sat.Solver.failed_assumptions s in
    Alcotest.(check bool) "failed set nonempty" true (failed <> [])
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  (* without the assumptions the formula is still satisfiable *)
  match Sat.Solver.solve s with
  | Sat.Solver.Sat -> ()
  | o -> Alcotest.failf "expected SAT on retry, got %a" Sat.Solver.pp_outcome o

let test_failed_assumptions_subset () =
  (* x0=T, x1 free; assuming [¬x1; ¬x0] fails only because of ¬x0 *)
  let s = Sat.Solver.create ~with_proof:true (mk_cnf [ [ (0, true) ] ]) in
  match Sat.Solver.solve ~assumptions:[ Sat.Lit.neg 1; Sat.Lit.neg 0 ] s with
  | Sat.Solver.Unsat ->
    let failed = Sat.Solver.failed_assumptions s in
    Alcotest.(check bool) "mentions ~x0" true
      (List.exists (Sat.Lit.equal (Sat.Lit.neg 0)) failed);
    Alcotest.(check bool) "does not mention ~x1" false
      (List.exists (Sat.Lit.equal (Sat.Lit.neg 1)) failed);
    (* the core under assumptions must name the unit clause *)
    Alcotest.(check (list int)) "core" [ 0 ] (Sat.Solver.unsat_core s)
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o

let test_incremental_add_clause () =
  let s = Sat.Solver.create ~with_proof:true (mk_cnf [ [ (0, true); (1, true) ] ]) in
  Alcotest.(check string) "initially SAT" "SAT" (outcome_str (Sat.Solver.solve s));
  Sat.Solver.add_clause s [ Sat.Lit.neg 0 ];
  Alcotest.(check string) "still SAT" "SAT" (outcome_str (Sat.Solver.solve s));
  Sat.Solver.add_clause s [ Sat.Lit.neg 1 ];
  Alcotest.(check string) "now UNSAT" "UNSAT" (outcome_str (Sat.Solver.solve s));
  let core = Sat.Solver.unsat_core s in
  Alcotest.(check (list int)) "core spans all three clauses" [ 0; 1; 2 ] core

let test_add_clause_grows_vars () =
  let s = Sat.Solver.create (mk_cnf [ [ (0, true) ] ]) in
  Sat.Solver.add_clause s [ Sat.Lit.pos 7 ];
  Alcotest.(check bool) "vars grown" true (Sat.Solver.num_vars s >= 8);
  match Sat.Solver.solve s with
  | Sat.Solver.Sat -> Alcotest.(check bool) "new var assigned" true (Sat.Solver.model s).(7)
  | o -> Alcotest.failf "expected SAT, got %a" Sat.Solver.pp_outcome o

let test_new_var () =
  let s = Sat.Solver.create (Sat.Cnf.create ()) in
  let v = Sat.Solver.new_var s in
  let w = Sat.Solver.new_var s in
  Alcotest.(check bool) "fresh" true (v <> w);
  Sat.Solver.add_clause s [ Sat.Lit.pos v ];
  Sat.Solver.add_clause s [ Sat.Lit.neg v; Sat.Lit.pos w ];
  match Sat.Solver.solve s with
  | Sat.Solver.Sat ->
    let m = Sat.Solver.model s in
    Alcotest.(check bool) "chain propagated" true (m.(v) && m.(w))
  | o -> Alcotest.failf "expected SAT, got %a" Sat.Solver.pp_outcome o

let test_activation_literal_pattern () =
  (* the guard pattern used by the incremental BMC engine *)
  let s = Sat.Solver.create (mk_cnf [ [ (0, true) ] ]) in
  let a = Sat.Solver.new_var s in
  (* guarded constraint: ¬x0 when a *)
  Sat.Solver.add_clause s [ Sat.Lit.neg 0; Sat.Lit.neg a ];
  (match Sat.Solver.solve ~assumptions:[ Sat.Lit.pos a ] s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "guarded: expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  (* disable the guard; the formula is satisfiable again *)
  Sat.Solver.add_clause s [ Sat.Lit.neg a ];
  match Sat.Solver.solve s with
  | Sat.Solver.Sat -> ()
  | o -> Alcotest.failf "disabled: expected SAT, got %a" Sat.Solver.pp_outcome o

let test_learnt_clauses_survive () =
  (* solving twice must not redo the work: the second call's conflict count
     is no larger than the first's *)
  let clauses =
    (* small pigeonhole: 4 pigeons, 3 holes *)
    let v p h = (p * 3) + h in
    List.init 4 (fun p -> List.init 3 (fun h -> (v p h, true)))
    @ List.concat
        (List.init 3 (fun h ->
             List.concat
               (List.init 4 (fun p1 ->
                    List.init (4 - p1 - 1) (fun d -> [ (v p1 h, false); (v (p1 + d + 1) h, false) ])))))
  in
  let s = Sat.Solver.create (mk_cnf clauses) in
  (* assumptions on a variable outside the pigeonhole keep UNSAT relative *)
  let extra = Sat.Solver.new_var s in
  let o1 = Sat.Solver.solve ~assumptions:[ Sat.Lit.pos extra ] s in
  let n1 = (Sat.Solver.stats s).Sat.Stats.conflicts in
  let o2 = Sat.Solver.solve ~assumptions:[ Sat.Lit.neg extra ] s in
  let n2 = (Sat.Solver.stats s).Sat.Stats.conflicts in
  match (o1, o2) with
  | Sat.Solver.Unsat, Sat.Solver.Unsat ->
    Alcotest.(check bool) "second solve cheaper (clause reuse)" true (n2 - n1 <= n1)
  | _, _ -> Alcotest.fail "expected UNSAT twice"

let test_set_order_between_solves () =
  let cnf = mk_cnf [ [ (0, true); (1, true) ]; [ (2, true); (3, true) ] ] in
  let s = Sat.Solver.create cnf in
  Alcotest.(check string) "vsids" "SAT" (outcome_str (Sat.Solver.solve s));
  let rank = [| 0.0; 0.0; 9.0; 9.0 |] in
  Sat.Solver.set_order s (Sat.Order.Static rank);
  Alcotest.(check string) "static" "SAT" (outcome_str (Sat.Solver.solve s))

(* Differential: random incremental sessions against brute force. *)
let prop_incremental_differential =
  let gen =
    let open QCheck.Gen in
    let clause nv = list_size (1 -- 3) (pair (0 -- (nv - 1)) bool) in
    (2 -- 6) >>= fun nv ->
    triple (return nv)
      (list_size (1 -- 8) (clause nv))
      (list_size (1 -- 3) (pair (list_size (0 -- 2) (pair (0 -- (nv - 1)) bool)) (clause nv)))
  in
  QCheck.Test.make ~name:"incremental sessions agree with brute force" ~count:300
    (QCheck.make gen) (fun (nv, base, rounds) ->
      let cnf = mk_cnf ~num_vars:nv base in
      let s = Sat.Solver.create ~with_proof:true cnf in
      let reference = Sat.Cnf.copy cnf in
      let brute extra_units =
        let n = Sat.Cnf.num_vars reference in
        let assign = Array.make (max n 1) false in
        let rec go i =
          if i = n then
            Sat.Cnf.eval reference (fun v -> assign.(v))
            && List.for_all (fun l -> assign.(Sat.Lit.var l) = Sat.Lit.is_pos l) extra_units
          else begin
            assign.(i) <- false;
            go (i + 1)
            ||
            (assign.(i) <- true;
             go (i + 1))
          end
        in
        go 0
      in
      List.for_all
        (fun (assumption_spec, clause_spec) ->
          let assumptions = List.map lit assumption_spec in
          let expect = brute assumptions in
          let got =
            match Sat.Solver.solve ~assumptions s with
            | Sat.Solver.Sat -> true
            | Sat.Solver.Unsat -> false
            | Sat.Solver.Unknown -> not expect (* force a failure *)
          in
          let step_ok = got = expect in
          let cl = List.map lit clause_spec in
          Sat.Cnf.add_clause reference cl;
          Sat.Solver.add_clause s cl;
          step_ok)
        rounds)

let tests =
  [
    Alcotest.test_case "sat under assumptions" `Quick test_sat_under_assumptions;
    Alcotest.test_case "unsat recoverable" `Quick test_unsat_under_assumptions_recoverable;
    Alcotest.test_case "failed subset + core" `Quick test_failed_assumptions_subset;
    Alcotest.test_case "incremental add" `Quick test_incremental_add_clause;
    Alcotest.test_case "add grows vars" `Quick test_add_clause_grows_vars;
    Alcotest.test_case "new_var" `Quick test_new_var;
    Alcotest.test_case "activation pattern" `Quick test_activation_literal_pattern;
    Alcotest.test_case "clause reuse" `Quick test_learnt_clauses_survive;
    Alcotest.test_case "set_order" `Quick test_set_order_between_solves;
    QCheck_alcotest.to_alcotest prop_incremental_differential;
  ]
