test/test_differential.ml: Bmc Circuit List QCheck QCheck_alcotest Sat
