(* The incremental driver is the shared Session loop pinned to the
   Persistent policy: one long-lived solver fed frame deltas, property
   constraints guarded by activation literals, ordering refreshed on the
   live solver between instances. *)

let run ?config netlist ~property =
  Session.check ?config ~policy:Session.Persistent netlist ~property

let run_case ?config (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  run ~config case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
