lib/core/unroll.ml: Array Circuit Fun List Option Sat Varmap
