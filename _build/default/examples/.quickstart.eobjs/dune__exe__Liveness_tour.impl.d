examples/liveness_tour.ml: Bmc Circuit Format Printf
