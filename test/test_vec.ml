(* Unit and property tests for the growable-array substrate. *)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list int))

let test_empty () =
  let v = Sat.Vec.create ~dummy:0 () in
  check_int "length" 0 (Sat.Vec.length v);
  Alcotest.(check bool) "is_empty" true (Sat.Vec.is_empty v);
  check_list "to_list" [] (Sat.Vec.to_list v)

let test_push_get () =
  let v = Sat.Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Sat.Vec.push v (i * i)
  done;
  check_int "length" 100 (Sat.Vec.length v);
  check_int "get 7" 49 (Sat.Vec.get v 7);
  check_int "last" (99 * 99) (Sat.Vec.last v)

let test_growth_past_capacity () =
  let v = Sat.Vec.create ~capacity:2 ~dummy:(-1) () in
  List.iter (Sat.Vec.push v) [ 1; 2; 3; 4; 5; 6; 7 ];
  check_list "contents survive growth" [ 1; 2; 3; 4; 5; 6; 7 ] (Sat.Vec.to_list v)

let test_pop () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  check_int "pop" 3 (Sat.Vec.pop v);
  check_int "pop" 2 (Sat.Vec.pop v);
  check_int "length" 1 (Sat.Vec.length v);
  check_int "pop" 1 (Sat.Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Sat.Vec.pop v))

let test_set () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Sat.Vec.set v 1 42;
  check_list "after set" [ 1; 42; 3 ] (Sat.Vec.to_list v)

let test_out_of_bounds () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1 ] in
  Alcotest.check_raises "get -1" (Invalid_argument "Vec: index -1 out of bounds (len 1)")
    (fun () -> ignore (Sat.Vec.get v (-1)));
  Alcotest.check_raises "get 1" (Invalid_argument "Vec: index 1 out of bounds (len 1)")
    (fun () -> ignore (Sat.Vec.get v 1))

let test_clear () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Sat.Vec.clear v;
  check_int "length after clear" 0 (Sat.Vec.length v);
  Sat.Vec.push v 9;
  check_list "reusable after clear" [ 9 ] (Sat.Vec.to_list v)

let test_shrink () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Sat.Vec.shrink v 2;
  check_list "after shrink" [ 1; 2 ] (Sat.Vec.to_list v);
  Alcotest.check_raises "bad shrink" (Invalid_argument "Vec.shrink") (fun () ->
      Sat.Vec.shrink v 3)

let test_shrink_retain () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Sat.Vec.shrink_retain v 2;
  check_list "after shrink_retain" [ 1; 2 ] (Sat.Vec.to_list v);
  (* the tail keeps its old values, so re-pushing reuses the slots *)
  Sat.Vec.push v 7;
  check_list "push after shrink_retain" [ 1; 2; 7 ] (Sat.Vec.to_list v);
  Alcotest.check_raises "bad shrink_retain" (Invalid_argument "Vec.shrink_retain") (fun () ->
      Sat.Vec.shrink_retain v 4);
  Alcotest.check_raises "negative shrink_retain" (Invalid_argument "Vec.shrink_retain")
    (fun () -> Sat.Vec.shrink_retain v (-1))

let test_clear_retain () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Sat.Vec.clear_retain v;
  check_int "length after clear_retain" 0 (Sat.Vec.length v);
  Sat.Vec.push v 9;
  check_list "reusable after clear_retain" [ 9 ] (Sat.Vec.to_list v)

let prop_shrink_retain_matches_shrink =
  QCheck.Test.make ~name:"shrink_retain = shrink (observable state)" ~count:200
    QCheck.(pair (list int) small_nat)
    (fun (xs, n) ->
      let n = if xs = [] then 0 else n mod (List.length xs + 1) in
      let a = Sat.Vec.of_list ~dummy:0 xs in
      let b = Sat.Vec.of_list ~dummy:0 xs in
      Sat.Vec.shrink a n;
      Sat.Vec.shrink_retain b n;
      Sat.Vec.to_list a = Sat.Vec.to_list b)

let test_filter_in_place () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check_list "evens, order kept" [ 2; 4; 6 ] (Sat.Vec.to_list v)

let test_iter_fold () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  let sum = ref 0 in
  Sat.Vec.iter (fun x -> sum := !sum + x) v;
  check_int "iter sum" 6 !sum;
  check_int "fold sum" 6 (Sat.Vec.fold ( + ) 0 v);
  let idx_sum = ref 0 in
  Sat.Vec.iteri (fun i x -> idx_sum := !idx_sum + (i * x)) v;
  check_int "iteri" 8 !idx_sum;
  Alcotest.(check bool) "exists" true (Sat.Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Sat.Vec.exists (fun x -> x = 9) v)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Sat.Vec.to_list (Sat.Vec.of_list ~dummy:0 xs) = xs)

let prop_filter_matches_list_filter =
  QCheck.Test.make ~name:"filter_in_place = List.filter" ~count:200
    QCheck.(pair (list int) (fun1 QCheck.Observable.int bool))
    (fun (xs, f) ->
      let p = QCheck.Fn.apply f in
      let v = Sat.Vec.of_list ~dummy:0 xs in
      Sat.Vec.filter_in_place p v;
      Sat.Vec.to_list v = List.filter p xs)

let prop_to_array =
  QCheck.Test.make ~name:"to_array = Array.of_list" ~count:200
    QCheck.(list int)
    (fun xs -> Sat.Vec.to_array (Sat.Vec.of_list ~dummy:0 xs) = Array.of_list xs)

let tests =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "growth" `Quick test_growth_past_capacity;
    Alcotest.test_case "pop" `Quick test_pop;
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "shrink" `Quick test_shrink;
    Alcotest.test_case "shrink_retain" `Quick test_shrink_retain;
    Alcotest.test_case "clear_retain" `Quick test_clear_retain;
    QCheck_alcotest.to_alcotest prop_shrink_retain_matches_shrink;
    Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
    Alcotest.test_case "iter/fold" `Quick test_iter_fold;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_filter_matches_list_filter;
    QCheck_alcotest.to_alcotest prop_to_array;
  ]
