type verdict =
  | Proved of { depth : int; kept_regs : int; total_regs : int }
  | Falsified of Trace.t
  | Unknown of int

type round = {
  depth : int;
  core_regs : int;
  abstract_verdict : Circuit.Reach.verdict option;
  time : float;
}

type result = {
  verdict : verdict;
  rounds : round list;
  total_time : float;
}

let pp_verdict ppf = function
  | Proved { depth; kept_regs; total_regs } ->
    Format.fprintf ppf "proved from the depth-%d core (%d of %d registers kept)" depth
      kept_regs total_regs
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Unknown k -> Format.fprintf ppf "undecided up to depth %d" k

(* the per-engine order_mode copies are hoisted into the session layer *)
let order_mode = Session.order_mode

(* Registers named by the core: any core variable whose Varmap key is a
   register node, at any frame. *)
let core_registers unroll netlist core_vars =
  let vm = Unroll.varmap unroll in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun v ->
      match Varmap.key_of vm v with
      | Some (node, _) when node >= 0 -> (
        match Circuit.Netlist.gate netlist node with
        | Circuit.Netlist.Reg _ -> Hashtbl.replace tbl node ()
        | Circuit.Netlist.Input _ | Circuit.Netlist.Const _ | Circuit.Netlist.Not _
        | Circuit.Netlist.And _ | Circuit.Netlist.Or _ | Circuit.Netlist.Xor _
        | Circuit.Netlist.Mux _ ->
          ())
      | Some _ | None -> ())
    core_vars;
  tbl

let prove ?(config = Engine.default_config) ?(max_abstract_regs = 22) netlist ~property =
  let cfg = config in
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Abstraction.prove: " ^ msg));
  let unroll = Unroll.create ~coi:cfg.coi netlist ~property in
  let score = Score.create ~weighting:cfg.weighting () in
  let total_regs = List.length (Circuit.Netlist.regs netlist) in
  let rounds = ref [] in
  let start = Sys.time () in
  let finish verdict =
    { verdict; rounds = List.rev !rounds; total_time = Sys.time () -. start }
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Unknown cfg.max_depth)
    else begin
      let t0 = Sys.time () in
      let cnf = Unroll.instance unroll ~k in
      let solver =
        Sat.Solver.create ~with_proof:true ~mode:(order_mode cfg unroll score ~k)
          ~telemetry:cfg.telemetry cnf
      in
      match Sat.Solver.solve ~budget:cfg.budget solver with
      | Sat.Solver.Sat ->
        rounds :=
          { depth = k; core_regs = 0; abstract_verdict = None; time = Sys.time () -. t0 }
          :: !rounds;
        let trace = Trace.of_model unroll ~k ~model:(Sat.Solver.model solver) in
        if not (Trace.replay trace netlist ~property) then
          failwith "Abstraction.prove: counterexample failed to replay (internal error)";
        finish (Falsified trace)
      | Sat.Solver.Unknown ->
        rounds :=
          { depth = k; core_regs = 0; abstract_verdict = None; time = Sys.time () -. t0 }
          :: !rounds;
        finish (Unknown k)
      | Sat.Solver.Unsat ->
        let core_vars = Sat.Solver.core_vars solver in
        Score.update score ~instance:k ~core_vars;
        let kept = core_registers unroll netlist core_vars in
        let kept_count = Hashtbl.length kept in
        let abstract_verdict, next_k =
          if kept_count > max_abstract_regs then (None, k + 1)
          else begin
            let abstract_nl, map =
              Circuit.Netlist.abstract_registers netlist ~keep:(Hashtbl.mem kept)
            in
            let v =
              Circuit.Reach.check ~max_regs:max_abstract_regs ~max_inputs:16 abstract_nl
                ~property:(map property)
            in
            match v with
            | Circuit.Reach.Holds _ -> (Some v, -1) (* proved *)
            | Circuit.Reach.Fails_at j ->
              (* spurious if within the refuted bound; otherwise aim BMC at
                 exactly the abstract counterexample's depth *)
              (Some v, if j > k then j else k + 1)
            | Circuit.Reach.Too_large -> (Some v, k + 1)
          end
        in
        rounds :=
          { depth = k; core_regs = kept_count; abstract_verdict; time = Sys.time () -. t0 }
          :: !rounds;
        if next_k < 0 then finish (Proved { depth = k; kept_regs = kept_count; total_regs })
        else loop next_k
    end
  in
  loop 0

let prove_case ?config ?max_abstract_regs (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  prove ~config ?max_abstract_regs case.Circuit.Generators.netlist
    ~property:case.Circuit.Generators.property
