lib/core/pdr.mli: Circuit Format Trace
