(** Flat clause arena (MiniSat 2.2 memory layout).

    Clauses live in one growable [int array] as contiguous blocks

    {v [header | cid | activity | lit_0 ... lit_{n-1}] v}

    addressed by an integer {e clause reference} ([cref]): the offset of the
    header word.  The header packs the literal count with four flag bits
    (learnt, deleted, relocated, tainted).  Compared to boxed clause records
    behind
    pointers, this layout removes a dereference per clause visit in BCP,
    keeps the clause database off the OCaml heap scan, and makes the whole
    database one cache-friendly allocation.

    The [cid] slot carries the proof pseudo ID assigned by {!Proof}, so the
    conflict-dependency-graph machinery (and with it unsat cores and
    interpolants) is independent of where the clause bytes live — deletion
    and compaction never disturb the proof.

    Clause {e activity} is stored as a fixed-point integer
    ({!activity_unit} = 1.0): bumps add one unit and the periodic decay
    shifts right, so the reduce-db ordering needs no float boxing.

    Deletion only flags the block and counts its words as wasted; space is
    reclaimed by copying compaction: the solver relocates every live root
    ({!reloc}) into a fresh arena and then {!commit}s it.  A relocated block
    stores its forwarding cref in the [cid] slot, so shared references
    (watchers, reasons, the learnt list) relocate to the same copy. *)

type t

type cref = int
(** Offset of a clause block in the arena. *)

val none : cref
(** Sentinel for "no clause" (reason slots, propagation result). *)

val activity_unit : int
(** Fixed-point scale: the integer value representing activity 1.0. *)

val create : ?capacity:int -> unit -> t
(** Fresh arena. [capacity] pre-allocates that many words. *)

val alloc : t -> cid:int -> learnt:bool -> ?tainted:bool -> Lit.t array -> cref
(** Append a clause block.  The literal array is copied.  Learnt clauses
    start with activity 1.0, originals with 0.  [tainted] (default [false])
    marks clauses whose derivation involves an instance-local literal — the
    clause-sharing export filter refuses them (see {!Solver.set_share});
    the flag lives in the header, so it survives relocation. *)

val size : t -> cref -> int
(** Number of literals in the clause. *)

val lit : t -> cref -> int -> Lit.t
(** [lit a cr i] is the [i]-th literal, 0-based.  Unchecked. *)

val set_lit : t -> cref -> int -> Lit.t -> unit

val swap_lits : t -> cref -> int -> int -> unit

val cid : t -> cref -> int
(** The clause's proof pseudo ID (or CNF clause index when proof logging is
    off). *)

val learnt : t -> cref -> bool

val tainted : t -> cref -> bool
(** Whether the clause was allocated [~tainted:true] — its derivation
    involves an instance-local (activation/auxiliary) literal, so it is
    unsound in a sibling solver and must never be exported. *)

val deleted : t -> cref -> bool

val delete : t -> cref -> unit
(** Flag the clause deleted and account its words as wasted.  Idempotent.
    The block stays readable until the next compaction. *)

val activity : t -> cref -> int
(** Fixed-point activity (see {!activity_unit}). *)

val bump_activity : t -> cref -> unit
(** Add 1.0 (one {!activity_unit}). *)

val halve_activity : t -> cref -> unit
(** The periodic decay: arithmetic shift right by one. *)

val iter_lits : t -> cref -> (Lit.t -> unit) -> unit

val lits_list : t -> cref -> Lit.t list
(** The literals as a fresh list (proof/DRAT use, not the hot path). *)

val live_words : t -> int
(** Words in use minus wasted words. *)

val wasted_words : t -> int

val bytes : t -> int
(** Bytes occupied by blocks in use (live + wasted), excluding spare
    capacity. *)

val should_gc : t -> max_waste:float -> bool
(** Whether wasted words exceed [max_waste] of the words in use. *)

(** {2 Copying compaction}

    Protocol: create a fresh arena [into], {!reloc} every root reference
    (watcher crefs, reason crefs of assigned variables, the learnt list) —
    duplicates are forwarded to a single copy — then {!commit} to replace
    the old arena's storage with the compacted one. *)

val reloc : t -> into:t -> cref -> cref
(** Move the clause into [into] (first call) or return its forwarding cref
    (subsequent calls).
    @raise Invalid_argument on a deleted clause: deleted clauses must be
    unreachable from any root by the time compaction runs. *)

val relocated : t -> cref -> bool

val commit : t -> into:t -> unit
(** Adopt [into]'s storage as [t]'s, completing the compaction. *)

(** Watcher lists as flat [(blocker, cref)] int pairs.

    One watcher list per literal.  The {e blocker} is some other literal of
    the clause (for a freshly attached clause, the other watched one); if
    the blocker is already true the clause is satisfied and BCP skips it
    without touching clause memory — the cache win that motivates packing
    the pair into the watcher itself. *)
module Watch : sig
  type w

  val create : unit -> w

  val length : w -> int
  (** Number of pairs. *)

  val blocker : w -> int -> Lit.t

  val cref : w -> int -> cref

  val set : w -> int -> Lit.t -> cref -> unit

  val push : w -> Lit.t -> cref -> unit

  val truncate : w -> int -> unit
  (** Keep the first [n] pairs; capacity (and the int payload) is retained,
      no dummy-filling needed. *)

  val filter_crefs : w -> (cref -> bool) -> unit
  (** Keep only pairs whose cref satisfies the predicate, preserving order
      and capacity (the watch-list rebuild after clause-DB reduction). *)

  val map_crefs : w -> (cref -> cref) -> unit
  (** Rewrite every cref in place (compaction patching). *)

  val fold_crefs : ('a -> cref -> 'a) -> 'a -> w -> 'a
end
