exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)
(* ------------------------------------------------------------------ *)

type header = {
  m : int;
  i : int;
  l : int;
  o : int;
  a : int;
  b : int;
}

let parse_header line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") with
  | fmt :: rest when fmt = "aag" || fmt = "aig" -> (
    match List.map int_of_string_opt rest with
    | Some m :: Some i :: Some l :: Some o :: Some a :: tail ->
      let b = match tail with Some b :: _ -> b | _ -> 0 in
      if List.exists (fun x -> x = None) tail then fail "malformed header %S" line;
      (fmt, { m; i; l; o; a; b })
    | _ -> fail "malformed header %S" line)
  | _ -> fail "not an AIGER file (header %S)" line

type raw = {
  header : header;
  input_lits : int array;
  latch_lits : int array; (* current-state literal of each latch *)
  latch_next : int array;
  latch_init : int option array; (* None = nondeterministic *)
  outputs : int list;
  bads : int list;
  ands : (int * int * int) array; (* lhs, rhs0, rhs1 *)
}

(* Build a netlist from the raw structure (shared by both encodings). *)
let build raw =
  let nl = Netlist.create () in
  let nodes : (int, Netlist.node) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace nodes 0 (Netlist.const_false nl);
  Array.iteri
    (fun idx lit ->
      if lit land 1 = 1 || lit = 0 then fail "invalid input literal %d" lit;
      Hashtbl.replace nodes (lit / 2) (Netlist.input nl (Printf.sprintf "i%d" idx)))
    raw.input_lits;
  Array.iteri
    (fun idx lit ->
      if lit land 1 = 1 || lit = 0 then fail "invalid latch literal %d" lit;
      let init =
        match raw.latch_init.(idx) with
        | Some 0 -> Some false
        | Some 1 -> Some true
        | Some r when r = lit -> None (* reset to itself = uninitialised *)
        | Some r -> fail "unsupported latch reset %d" r
        | None -> Some false (* AIGER 1.0 default: zero-initialised *)
      in
      Hashtbl.replace nodes (lit / 2) (Netlist.reg nl ~name:(Printf.sprintf "l%d" idx) ~init))
    raw.latch_lits;
  let and_of_lhs = Hashtbl.create 256 in
  Array.iter
    (fun ((lhs, _, _) as g) ->
      if lhs land 1 = 1 then fail "and-gate output %d is negated" lhs;
      Hashtbl.replace and_of_lhs (lhs / 2) g)
    raw.ands;
  (* resolve literals, building and-gates on demand (cycle-checked) *)
  let building = Hashtbl.create 16 in
  let rec node_of_var v =
    match Hashtbl.find_opt nodes v with
    | Some n -> n
    | None -> (
      if Hashtbl.mem building v then fail "combinational cycle through variable %d" v;
      Hashtbl.replace building v ();
      match Hashtbl.find_opt and_of_lhs v with
      | Some (_, rhs0, rhs1) ->
        let n = Netlist.and_ nl (node_of_lit rhs0) (node_of_lit rhs1) in
        Hashtbl.remove building v;
        Hashtbl.replace nodes v n;
        n
      | None -> fail "undefined variable %d" v)
  and node_of_lit lit =
    let n = node_of_var (lit / 2) in
    if lit land 1 = 1 then Netlist.not_ nl n else n
  in
  Array.iteri
    (fun idx lit -> Netlist.set_next nl (Hashtbl.find nodes (lit / 2)) (node_of_lit raw.latch_next.(idx)))
    raw.latch_lits;
  let bad_lits =
    match (raw.bads, raw.outputs) with
    | [], [] -> fail "no bad-state literal and no output to use as one"
    | [], out0 :: _ -> [ out0 ] (* AIGER 1.0 model-checking convention *)
    | bads, _ -> bads
  in
  let bad = Netlist.or_list nl (List.map node_of_lit bad_lits) in
  let property = Netlist.not_ nl bad in
  (match Netlist.validate nl with Ok () -> () | Error msg -> fail "%s" msg);
  (nl, property)

(* --- ASCII --- *)

let parse_ascii lines header =
  let lines = Array.of_list lines in
  let cursor = ref 0 in
  let next_line what =
    if !cursor >= Array.length lines then fail "unexpected end of file reading %s" what;
    let l = lines.(!cursor) in
    incr cursor;
    l
  in
  let ints_of what line =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some n when n >= 0 -> n
           | Some _ | None -> fail "bad %s line %S" what line)
  in
  let input_lits =
    Array.init header.i (fun _ ->
        match ints_of "input" (next_line "inputs") with
        | [ lit ] -> lit
        | _ -> fail "malformed input line")
  in
  let latch_lits = Array.make header.l 0 in
  let latch_next = Array.make header.l 0 in
  let latch_init = Array.make header.l (Some 0) in
  for idx = 0 to header.l - 1 do
    match ints_of "latch" (next_line "latches") with
    | [ lit; nxt ] ->
      latch_lits.(idx) <- lit;
      latch_next.(idx) <- nxt
    | [ lit; nxt; init ] ->
      latch_lits.(idx) <- lit;
      latch_next.(idx) <- nxt;
      latch_init.(idx) <- Some init
    | _ -> fail "malformed latch line"
  done;
  let one_lit what () =
    match ints_of what (next_line what) with
    | [ lit ] -> lit
    | _ -> fail "malformed %s line" what
  in
  let outputs = List.init header.o (fun _ -> one_lit "output" ()) in
  let bads = List.init header.b (fun _ -> one_lit "bad" ()) in
  let ands =
    Array.init header.a (fun _ ->
        match ints_of "and" (next_line "ands") with
        | [ lhs; rhs0; rhs1 ] -> (lhs, rhs0, rhs1)
        | _ -> fail "malformed and line")
  in
  build { header; input_lits; latch_lits; latch_next; latch_init; outputs; bads; ands }

(* --- binary --- *)

let parse_binary data pos header =
  (* the text section: latches, outputs, bads — one per line *)
  let pos = ref pos in
  let next_line what =
    if !pos >= String.length data then fail "unexpected end of file reading %s" what;
    match String.index_from_opt data !pos '\n' with
    | Some nl ->
      let line = String.sub data !pos (nl - !pos) in
      pos := nl + 1;
      line
    | None ->
      let line = String.sub data !pos (String.length data - !pos) in
      pos := String.length data;
      line
  in
  let ints_of what line =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some n when n >= 0 -> n
           | Some _ | None -> fail "bad %s line %S" what line)
  in
  let input_lits = Array.init header.i (fun idx -> 2 * (idx + 1)) in
  let latch_lits = Array.init header.l (fun idx -> 2 * (header.i + idx + 1)) in
  let latch_next = Array.make header.l 0 in
  let latch_init = Array.make header.l (Some 0) in
  for idx = 0 to header.l - 1 do
    match ints_of "latch" (next_line "latches") with
    | [ nxt ] -> latch_next.(idx) <- nxt
    | [ nxt; init ] ->
      latch_next.(idx) <- nxt;
      latch_init.(idx) <- Some init
    | _ -> fail "malformed binary latch line"
  done;
  let one_lit what () =
    match ints_of what (next_line what) with
    | [ lit ] -> lit
    | _ -> fail "malformed %s line" what
  in
  let outputs = List.init header.o (fun _ -> one_lit "output" ()) in
  let bads = List.init header.b (fun _ -> one_lit "bad" ()) in
  (* the binary and-gate section: delta-encoded 7-bit groups *)
  let read_delta () =
    let rec go shift acc =
      if !pos >= String.length data then fail "truncated binary and section";
      let byte = Char.code data.[!pos] in
      incr pos;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0
  in
  let ands =
    Array.init header.a (fun idx ->
        let lhs = 2 * (header.i + header.l + idx + 1) in
        let delta0 = read_delta () in
        let delta1 = read_delta () in
        let rhs0 = lhs - delta0 in
        let rhs1 = rhs0 - delta1 in
        if rhs0 < 0 || rhs1 < 0 then fail "invalid delta encoding at gate %d" idx;
        (lhs, rhs0, rhs1))
  in
  build { header; input_lits; latch_lits; latch_next; latch_init; outputs; bads; ands }

let parse_string data =
  match String.index_opt data '\n' with
  | None -> fail "empty input"
  | Some nl -> (
    let header_line = String.sub data 0 nl in
    let fmt, header = parse_header header_line in
    match fmt with
    | "aag" ->
      let lines =
        String.split_on_char '\n' (String.sub data (nl + 1) (String.length data - nl - 1))
      in
      parse_ascii lines header
    | _ -> parse_binary data (nl + 1) header)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  parse_string data

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)
(* ------------------------------------------------------------------ *)

type writer = {
  nl : Netlist.t;
  lit_of_node : (Netlist.node, int) Hashtbl.t; (* positive-phase literal *)
  and_cache : (int * int, int) Hashtbl.t;
  mutable next_var : int;
  mutable gates : (int * int * int) list; (* reversed *)
  mutable n_ands : int;
}

let mk_and w a b =
  let a, b = if a >= b then (a, b) else (b, a) in
  match Hashtbl.find_opt w.and_cache (a, b) with
  | Some lit -> lit
  | None ->
    let lhs = 2 * w.next_var in
    w.next_var <- w.next_var + 1;
    w.gates <- (lhs, a, b) :: w.gates;
    w.n_ands <- w.n_ands + 1;
    Hashtbl.replace w.and_cache (a, b) lhs;
    lhs

(* Lower a node to an and-inverter literal. *)
let rec encode w node =
  match Hashtbl.find_opt w.lit_of_node node with
  | Some lit -> lit
  | None ->
    let lit =
      match Netlist.gate w.nl node with
      | Netlist.Const false -> 0
      | Netlist.Const true -> 1
      | Netlist.Input _ | Netlist.Reg _ ->
        fail "encode: input or latch without a pre-assigned literal"
      | Netlist.Not a -> encode w a lxor 1
      | Netlist.And (a, b) -> mk_and w (encode w a) (encode w b)
      | Netlist.Or (a, b) -> mk_and w (encode w a lxor 1) (encode w b lxor 1) lxor 1
      | Netlist.Xor (a, b) ->
        let la = encode w a and lb = encode w b in
        let t1 = mk_and w la (lb lxor 1) in
        let t2 = mk_and w (la lxor 1) lb in
        mk_and w (t1 lxor 1) (t2 lxor 1) lxor 1
      | Netlist.Mux (s, h, l) ->
        let ls = encode w s and lh = encode w h and ll = encode w l in
        let t1 = mk_and w ls lh in
        let t2 = mk_and w (ls lxor 1) ll in
        mk_and w (t1 lxor 1) (t2 lxor 1) lxor 1
    in
    Hashtbl.replace w.lit_of_node node lit;
    lit

type encoded = {
  e_inputs : int list;
  e_latches : (int * int * int option) list; (* lit, next, reset *)
  e_bad : int;
  e_gates : (int * int * int) list; (* increasing lhs *)
  e_maxvar : int;
}

let lower nl ~property =
  let inputs = Netlist.inputs nl in
  let regs = Netlist.regs nl in
  let w =
    {
      nl;
      lit_of_node = Hashtbl.create 256;
      and_cache = Hashtbl.create 256;
      next_var = 1;
      gates = [];
      n_ands = 0;
    }
  in
  List.iter
    (fun n ->
      Hashtbl.replace w.lit_of_node n (2 * w.next_var);
      w.next_var <- w.next_var + 1)
    inputs;
  List.iter
    (fun r ->
      Hashtbl.replace w.lit_of_node r (2 * w.next_var);
      w.next_var <- w.next_var + 1)
    regs;
  let latches =
    List.map
      (fun r ->
        let lit = Hashtbl.find w.lit_of_node r in
        let next = encode w (Netlist.reg_next nl r) in
        let reset =
          match Netlist.reg_init nl r with
          | Some false -> None (* the default: omit the field *)
          | Some true -> Some 1
          | None -> Some lit (* AIGER 1.9: reset to itself = uninitialised *)
        in
        (lit, next, reset))
      regs
  in
  let bad = encode w property lxor 1 in
  {
    e_inputs = List.map (fun n -> Hashtbl.find w.lit_of_node n) inputs;
    e_latches = latches;
    e_bad = bad;
    e_gates = List.rev w.gates;
    e_maxvar = w.next_var - 1;
  }

let to_ascii nl ~property =
  let e = lower nl ~property in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d %d 0 %d 1\n" e.e_maxvar (List.length e.e_inputs)
       (List.length e.e_latches) (List.length e.e_gates));
  List.iter (fun lit -> Buffer.add_string buf (Printf.sprintf "%d\n" lit)) e.e_inputs;
  List.iter
    (fun (lit, next, reset) ->
      match reset with
      | None -> Buffer.add_string buf (Printf.sprintf "%d %d\n" lit next)
      | Some r -> Buffer.add_string buf (Printf.sprintf "%d %d %d\n" lit next r))
    e.e_latches;
  Buffer.add_string buf (Printf.sprintf "%d\n" e.e_bad);
  List.iter
    (fun (lhs, a, b) -> Buffer.add_string buf (Printf.sprintf "%d %d %d\n" lhs a b))
    e.e_gates;
  Buffer.contents buf

let to_binary nl ~property =
  let e = lower nl ~property in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d %d 0 %d 1\n" e.e_maxvar (List.length e.e_inputs)
       (List.length e.e_latches) (List.length e.e_gates));
  List.iter
    (fun (lit, next, reset) ->
      ignore lit;
      match reset with
      | None -> Buffer.add_string buf (Printf.sprintf "%d\n" next)
      | Some r -> Buffer.add_string buf (Printf.sprintf "%d %d\n" next r))
    e.e_latches;
  Buffer.add_string buf (Printf.sprintf "%d\n" e.e_bad);
  let put_delta d =
    let rec go d =
      if d land lnot 0x7f <> 0 then begin
        Buffer.add_char buf (Char.chr ((d land 0x7f) lor 0x80));
        go (d lsr 7)
      end
      else Buffer.add_char buf (Char.chr d)
    in
    go d
  in
  List.iter
    (fun (lhs, a, b) ->
      let rhs0 = max a b and rhs1 = min a b in
      put_delta (lhs - rhs0);
      put_delta (rhs0 - rhs1))
    e.e_gates;
  Buffer.contents buf

let write_file path nl ~property =
  let data =
    if Filename.check_suffix path ".aag" then to_ascii nl ~property
    else to_binary nl ~property
  in
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc
