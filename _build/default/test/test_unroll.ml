(* Tseitin unrolling: encoding correctness against the simulator, variable
   stability across instances, COI reduction. *)

let solve cnf =
  let s = Sat.Solver.create cnf in
  Sat.Solver.solve s

let outcome_str o = Format.asprintf "%a" Sat.Solver.pp_outcome o

(* Instance verdicts must track the analytic failure depth. *)
let test_instance_verdicts_follow_failure_depth () =
  let case = Circuit.Generators.counter ~bits:3 ~target:5 () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  for k = 0 to 4 do
    Alcotest.(check string)
      (Printf.sprintf "depth %d UNSAT" k)
      "UNSAT"
      (outcome_str (solve (Bmc.Unroll.instance u ~k)))
  done;
  Alcotest.(check string) "depth 5 SAT" "SAT" (outcome_str (solve (Bmc.Unroll.instance u ~k:5)))

let test_holds_case_all_unsat () =
  let case = Circuit.Generators.ring ~len:4 () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  for k = 0 to 8 do
    Alcotest.(check string)
      (Printf.sprintf "depth %d" k)
      "UNSAT"
      (outcome_str (solve (Bmc.Unroll.instance u ~k)))
  done

let test_variable_numbering_stable () =
  let case = Circuit.Generators.lfsr ~width:5 () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let _ = Bmc.Unroll.instance u ~k:2 in
  let before =
    List.map (fun r -> Bmc.Unroll.var_of u ~node:r ~frame:1) (Circuit.Netlist.regs case.netlist)
  in
  let _ = Bmc.Unroll.instance u ~k:6 in
  let after =
    List.map (fun r -> Bmc.Unroll.var_of u ~node:r ~frame:1) (Circuit.Netlist.regs case.netlist)
  in
  Alcotest.(check (list int)) "frame-1 register variables unchanged" before after

let test_instances_grow () =
  let case = Circuit.Generators.traffic () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let c2 = Bmc.Unroll.instance u ~k:2 in
  let c5 = Bmc.Unroll.instance u ~k:5 in
  Alcotest.(check bool) "more clauses at greater depth" true
    (Sat.Cnf.num_clauses c5 > Sat.Cnf.num_clauses c2);
  Alcotest.(check bool) "more variables at greater depth" true
    (Sat.Cnf.num_vars c5 > Sat.Cnf.num_vars c2)

let test_instance_k_unaffected_by_deeper_extension () =
  let case = Circuit.Generators.traffic () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let a = Bmc.Unroll.instance u ~k:2 in
  Bmc.Unroll.extend_to u 7;
  let b = Bmc.Unroll.instance u ~k:2 in
  Alcotest.(check int) "same clause count" (Sat.Cnf.num_clauses a) (Sat.Cnf.num_clauses b);
  Alcotest.(check int) "same var count" (Sat.Cnf.num_vars a) (Sat.Cnf.num_vars b)

let test_coi_reduces_size () =
  let noisy = Circuit.Generators.ring ~len:5 ~noise:10 () in
  let full = Bmc.Unroll.create noisy.netlist ~property:noisy.property in
  let cone = Bmc.Unroll.create ~coi:true noisy.netlist ~property:noisy.property in
  let cf = Bmc.Unroll.instance full ~k:3 in
  let cc = Bmc.Unroll.instance cone ~k:3 in
  Alcotest.(check bool) "COI strictly smaller" true (Sat.Cnf.num_vars cc < Sat.Cnf.num_vars cf);
  Alcotest.(check string) "same verdict" (outcome_str (solve cf)) (outcome_str (solve cc))

let test_frame_of_var () =
  let case = Circuit.Generators.traffic () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let _ = Bmc.Unroll.instance u ~k:3 in
  let v = Bmc.Unroll.var_of u ~node:case.property ~frame:2 in
  Alcotest.(check (option int)) "frame recovered" (Some 2) (Bmc.Unroll.frame_of_var u v)

(* The base encoding admits exactly the simulator's executions: for random
   input streams and nondeterministic initial values, the assignment read
   off a simulation satisfies every base clause. *)
let prop_simulation_satisfies_encoding =
  QCheck.Test.make ~name:"simulated executions satisfy the unrolled CNF" ~count:60
    QCheck.(
      triple (int_bound 3) (* which tiny circuit *)
        (list_of_size Gen.(return 64) bool) (* input/init value stream *)
        (int_range 1 5) (* depth *))
    (fun (which, stream, k) ->
      let case =
        match which with
        | 0 -> Circuit.Generators.counter_en ~bits:3 ~target:6 ()
        | 1 -> Circuit.Generators.ring ~len:4 ()
        | 2 -> Circuit.Generators.parity_pipe ~stages:3 ()
        | _ -> Circuit.Generators.fifo_safe ~bits:2 ()
      in
      let nl = case.netlist in
      let u = Bmc.Unroll.create nl ~property:case.property in
      let cnf = Bmc.Unroll.instance u ~k in
      let stream = Array.of_list stream in
      let cursor = ref 0 in
      let next_bit () =
        let b = stream.(!cursor mod Array.length stream) in
        incr cursor;
        b
      in
      let sim = Circuit.Eval.compile nl in
      let resolve _ = next_bit () in
      let input_values = Array.init (k + 1) (fun _ ->
          List.map (fun i -> (i, next_bit ())) (Circuit.Netlist.inputs nl))
      in
      let inputs ~cycle node = List.assoc node input_values.(cycle) in
      let frames = Circuit.Eval.run sim ~resolve ~inputs ~cycles:(k + 1) () in
      let frame_arr = Array.of_list frames in
      (* value of every (node, frame) pair from the simulation *)
      let assign v =
        match Bmc.Varmap.key_of (Bmc.Unroll.varmap u) v with
        | Some (node, frame) -> Circuit.Eval.value frame_arr.(frame) node
        | None -> false
      in
      (* all clauses but the final ¬P unit must hold on any execution *)
      let ok = ref true in
      let last = Sat.Cnf.num_clauses cnf - 1 in
      Sat.Cnf.iter_clauses
        (fun i c -> if i < last && not (Sat.Cnf.eval_clause c assign) then ok := false)
        cnf;
      !ok)

(* Solver answers on instances agree with the reachability oracle for every
   tiny-suite case at every depth up to the suggested one. *)
let test_instances_agree_with_oracle () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match case.expect with
      | Some expect ->
        let u = Bmc.Unroll.create case.netlist ~property:case.property in
        let depth = min case.suggested_depth 8 in
        for k = 0 to depth do
          let expected =
            match expect with
            | Circuit.Generators.Fails_at f when k = f -> "SAT"
            | Circuit.Generators.Fails_at _ | Circuit.Generators.Holds -> "UNSAT"
          in
          Alcotest.(check string)
            (Printf.sprintf "%s depth %d" case.name k)
            expected
            (outcome_str (solve (Bmc.Unroll.instance u ~k)))
        done
      | None -> ())
    (Circuit.Generators.tiny_suite ())

let tests =
  [
    Alcotest.test_case "verdicts follow failure depth" `Quick
      test_instance_verdicts_follow_failure_depth;
    Alcotest.test_case "holds case all UNSAT" `Quick test_holds_case_all_unsat;
    Alcotest.test_case "stable numbering" `Quick test_variable_numbering_stable;
    Alcotest.test_case "instances grow" `Quick test_instances_grow;
    Alcotest.test_case "shallow instance stable" `Quick test_instance_k_unaffected_by_deeper_extension;
    Alcotest.test_case "COI reduction" `Quick test_coi_reduces_size;
    Alcotest.test_case "frame_of_var" `Quick test_frame_of_var;
    Alcotest.test_case "instances vs oracle" `Slow test_instances_agree_with_oracle;
    QCheck_alcotest.to_alcotest prop_simulation_satisfies_encoding;
  ]
