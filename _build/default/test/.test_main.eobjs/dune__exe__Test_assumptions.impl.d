test/test_assumptions.ml: Alcotest Array Format List QCheck QCheck_alcotest Sat
