(* Temporal induction: proofs, refutations, the simple-path strengthening. *)

let cfg ?(mode = Bmc.Engine.Static) ?(max_depth = 12) () = Bmc.Engine.config ~mode ~max_depth ()

let test_proves_inductive_properties () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match Bmc.Induction.prove_case ~config:(cfg ()) case with
      | { verdict = Bmc.Induction.Proved _; _ } -> ()
      | { verdict = v; _ } ->
        Alcotest.failf "%s: expected a proof, got %a" case.name Bmc.Induction.pp_verdict v)
    [
      Circuit.Generators.ring ~len:5 ();
      Circuit.Generators.lfsr ~width:5 ();
      Circuit.Generators.parity_pipe ~stages:4 ();
      Circuit.Generators.johnson ~width:5 ();
      Circuit.Generators.fifo_safe ~bits:3 ();
      Circuit.Generators.gray ~bits:3 ();
    ]

let test_refutes_failing_properties_at_exact_depth () =
  List.iter
    (fun ((case : Circuit.Generators.case), expected_depth) ->
      match Bmc.Induction.prove_case ~config:(cfg ~max_depth:(expected_depth + 2) ()) case with
      | { verdict = Bmc.Induction.Falsified trace; _ } ->
        Alcotest.(check int) (case.name ^ " cex depth") expected_depth trace.Bmc.Trace.depth
      | { verdict = v; _ } ->
        Alcotest.failf "%s: expected falsified, got %a" case.name Bmc.Induction.pp_verdict v)
    [
      (Circuit.Generators.counter ~bits:3 ~target:5 (), 5);
      (Circuit.Generators.shift_in ~len:4 (), 4);
      (Circuit.Generators.fifo_overflow ~bits:2 (), 4);
    ]

let test_non_inductive_property_stays_unknown () =
  (* arbiter mutual exclusion is not k-inductive without path constraints *)
  let case = Circuit.Generators.arbiter ~clients:4 () in
  match Bmc.Induction.prove_case ~config:(cfg ~max_depth:6 ()) case with
  | { verdict = Bmc.Induction.Unknown _; _ } -> ()
  | { verdict = v; _ } -> Alcotest.failf "expected unknown, got %a" Bmc.Induction.pp_verdict v

let test_simple_path_completes_the_method () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match Bmc.Induction.prove_case ~config:(cfg ~max_depth:12 ()) ~simple_path:true case with
      | { verdict = Bmc.Induction.Proved _; _ } -> ()
      | { verdict = v; _ } ->
        Alcotest.failf "%s with simple-path: expected proof, got %a" case.name
          Bmc.Induction.pp_verdict v)
    [ Circuit.Generators.arbiter ~clients:4 (); Circuit.Generators.traffic () ]

let test_proof_depth_sensible () =
  (* a counter stepping by 2 from 0 can never hit 3; provable at small k *)
  let nl = Circuit.Netlist.create () in
  let count = Circuit.Word.regs nl ~prefix:"c" ~width:3 ~init:(Some 0) in
  let inc1, _ = Circuit.Word.increment nl count in
  let inc2, _ = Circuit.Word.increment nl inc1 in
  Circuit.Word.connect nl count inc2;
  let property = Circuit.Netlist.not_ nl (Circuit.Word.eq_const nl count 3) in
  match Bmc.Induction.prove ~config:(cfg ~max_depth:10 ()) nl ~property with
  | { verdict = Bmc.Induction.Proved k; _ } ->
    Alcotest.(check bool) "strictly positive induction depth" true (k > 0 && k <= 5)
  | { verdict = v; _ } -> Alcotest.failf "expected proof, got %a" Bmc.Induction.pp_verdict v

let test_all_modes_agree () =
  let case = Circuit.Generators.ring ~len:5 () in
  List.iter
    (fun mode ->
      match Bmc.Induction.prove_case ~config:(cfg ~mode ()) case with
      | { verdict = Bmc.Induction.Proved _; _ } -> ()
      | { verdict = v; _ } ->
        Alcotest.failf "mode %a: expected proof, got %a" Bmc.Engine.pp_mode mode
          Bmc.Induction.pp_verdict v)
    Bmc.Engine.all_modes

let test_per_depth_stats () =
  let case = Circuit.Generators.arbiter ~clients:4 () in
  let r = Bmc.Induction.prove_case ~config:(cfg ~max_depth:3 ()) case in
  Alcotest.(check int) "stats for each depth" 4 (List.length r.per_depth);
  List.iter
    (fun (s : Bmc.Induction.step_stat) ->
      Alcotest.(check string) "base UNSAT while undecided" "UNSAT"
        (Format.asprintf "%a" Sat.Solver.pp_outcome s.base_outcome);
      match s.step_outcome with
      | Some o ->
        Alcotest.(check string) "step SAT while undecided" "SAT"
          (Format.asprintf "%a" Sat.Solver.pp_outcome o)
      | None -> Alcotest.fail "step case must have run")
    r.per_depth

let test_budget_unknown () =
  let case = Circuit.Generators.parity_pipe ~stages:8 () in
  let budget =
    { Sat.Solver.max_conflicts = Some 1; max_propagations = Some 5; max_seconds = None; stop = None }
  in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Standard ~budget ~max_depth:8 () in
  match Bmc.Induction.prove_case ~config case with
  | { verdict = Bmc.Induction.Unknown _; _ } -> ()
  | { verdict = v; _ } -> Alcotest.failf "expected unknown, got %a" Bmc.Induction.pp_verdict v

(* Anything induction proves, the explicit-state oracle must confirm. *)
let prop_proofs_sound =
  let gen =
    let open QCheck.Gen in
    oneof
      [
        (3 -- 6 >|= fun l -> Circuit.Generators.ring ~len:l ());
        (4 -- 6 >|= fun w -> Circuit.Generators.lfsr ~width:w ());
        (2 -- 4 >|= fun s -> Circuit.Generators.parity_pipe ~stages:s ());
        (2 -- 3 >|= fun b -> Circuit.Generators.fifo_safe ~bits:b ());
        (1 -- 6 >|= fun t -> Circuit.Generators.counter ~bits:3 ~target:t ());
      ]
  in
  QCheck.Test.make ~name:"induction verdicts are sound vs oracle" ~count:30
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun case ->
      let r = Bmc.Induction.prove_case ~config:(cfg ~max_depth:10 ()) ~simple_path:true case in
      match (r.verdict, Circuit.Reach.check case.netlist ~property:case.property) with
      | Bmc.Induction.Proved _, Circuit.Reach.Holds _ -> true
      | Bmc.Induction.Falsified t, Circuit.Reach.Fails_at k -> t.Bmc.Trace.depth = k
      | Bmc.Induction.Unknown _, _ -> true (* inconclusive is never unsound *)
      | _, Circuit.Reach.Too_large -> true
      | (Bmc.Induction.Proved _ | Bmc.Induction.Falsified _), _ -> false)

let tests =
  [
    Alcotest.test_case "proves inductive" `Quick test_proves_inductive_properties;
    Alcotest.test_case "refutes failing" `Quick test_refutes_failing_properties_at_exact_depth;
    Alcotest.test_case "non-inductive unknown" `Quick test_non_inductive_property_stays_unknown;
    Alcotest.test_case "simple-path completes" `Quick test_simple_path_completes_the_method;
    Alcotest.test_case "proof depth" `Quick test_proof_depth_sensible;
    Alcotest.test_case "all modes agree" `Quick test_all_modes_agree;
    Alcotest.test_case "per-depth stats" `Quick test_per_depth_stats;
    Alcotest.test_case "budget unknown" `Quick test_budget_unknown;
    QCheck_alcotest.to_alcotest prop_proofs_sound;
  ]
