(* Netlist construction, hash-consing, simplification, validation. *)

let test_builders () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let b = Circuit.Netlist.input nl "b" in
  let g = Circuit.Netlist.and_ nl a b in
  (match Circuit.Netlist.gate nl g with
  | Circuit.Netlist.And (x, y) -> Alcotest.(check (pair int int)) "operands" (a, b) (x, y)
  | _ -> Alcotest.fail "not an And");
  Alcotest.(check int) "nodes" 3 (Circuit.Netlist.num_nodes nl)

let test_hashcons () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let b = Circuit.Netlist.input nl "b" in
  let g1 = Circuit.Netlist.and_ nl a b in
  let g2 = Circuit.Netlist.and_ nl a b in
  let g3 = Circuit.Netlist.and_ nl b a in
  Alcotest.(check int) "same gate shared" g1 g2;
  Alcotest.(check int) "commutative normalisation" g1 g3

let test_constant_folding () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let t = Circuit.Netlist.const_true nl in
  let f = Circuit.Netlist.const_false nl in
  Alcotest.(check int) "a AND true = a" a (Circuit.Netlist.and_ nl a t);
  Alcotest.(check int) "a AND false = false" f (Circuit.Netlist.and_ nl a f);
  Alcotest.(check int) "a OR true = true" t (Circuit.Netlist.or_ nl a t);
  Alcotest.(check int) "a OR a = a" a (Circuit.Netlist.or_ nl a a);
  Alcotest.(check int) "a XOR a = false" f (Circuit.Netlist.xor_ nl a a);
  Alcotest.(check int) "not (not a) = a" a (Circuit.Netlist.not_ nl (Circuit.Netlist.not_ nl a));
  Alcotest.(check int) "a AND (not a) = false" f
    (Circuit.Netlist.and_ nl a (Circuit.Netlist.not_ nl a));
  Alcotest.(check int) "mux const sel" a
    (Circuit.Netlist.mux nl ~sel:t ~hi:a ~lo:(Circuit.Netlist.const_false nl))

let test_registers () =
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some true) in
  let a = Circuit.Netlist.input nl "a" in
  Circuit.Netlist.set_next nl r a;
  Alcotest.(check (option bool)) "init" (Some true) (Circuit.Netlist.reg_init nl r);
  Alcotest.(check int) "next" a (Circuit.Netlist.reg_next nl r);
  Alcotest.check_raises "double connect" (Invalid_argument "Netlist.set_next: already connected")
    (fun () -> Circuit.Netlist.set_next nl r a)

let test_validate_unconnected () =
  let nl = Circuit.Netlist.create () in
  let _r = Circuit.Netlist.reg nl ~name:"r" ~init:None in
  match Circuit.Netlist.validate nl with
  | Error msg -> Alcotest.(check bool) "mentions register" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "unconnected register must not validate"

let test_validate_ok_with_feedback_through_reg () =
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some false) in
  let n = Circuit.Netlist.not_ nl r in
  Circuit.Netlist.set_next nl r n;
  match Circuit.Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_names () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  Alcotest.(check (option int)) "find" (Some a) (Circuit.Netlist.find nl "a");
  Alcotest.(check (option string)) "name_of" (Some "a") (Circuit.Netlist.name_of nl a);
  Circuit.Netlist.name_node nl "alias" a;
  Alcotest.(check (option int)) "alias resolves" (Some a) (Circuit.Netlist.find nl "alias");
  Alcotest.(check (option string)) "canonical name kept" (Some "a") (Circuit.Netlist.name_of nl a);
  Alcotest.check_raises "duplicate input name" (Invalid_argument "Netlist: duplicate name \"a\"")
    (fun () -> ignore (Circuit.Netlist.input nl "a"))

let test_inputs_regs_order () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let r1 = Circuit.Netlist.reg nl ~name:"r1" ~init:None in
  let b = Circuit.Netlist.input nl "b" in
  let r2 = Circuit.Netlist.reg nl ~name:"r2" ~init:None in
  Circuit.Netlist.set_next nl r1 a;
  Circuit.Netlist.set_next nl r2 b;
  Alcotest.(check (list int)) "inputs in order" [ a; b ] (Circuit.Netlist.inputs nl);
  Alcotest.(check (list int)) "regs in order" [ r1; r2 ] (Circuit.Netlist.regs nl)

let test_transitive_fanin () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let b = Circuit.Netlist.input nl "b" in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some false) in
  Circuit.Netlist.set_next nl r a;
  let g = Circuit.Netlist.and_ nl r a in
  let dangling = Circuit.Netlist.or_ nl b b in
  ignore dangling;
  let cone = Circuit.Netlist.transitive_fanin nl [ g ] in
  Alcotest.(check bool) "g in cone" true (cone g);
  Alcotest.(check bool) "a in cone" true (cone a);
  Alcotest.(check bool) "r in cone (through next)" true (cone r);
  Alcotest.(check bool) "b not in cone" false (cone b)

let test_fanins () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.input nl "a" in
  let b = Circuit.Netlist.input nl "b" in
  let c = Circuit.Netlist.input nl "c" in
  let m = Circuit.Netlist.mux nl ~sel:a ~hi:b ~lo:c in
  Alcotest.(check (list int)) "mux fanins" [ a; b; c ]
    (Circuit.Netlist.fanins (Circuit.Netlist.gate nl m));
  Alcotest.(check (list int)) "input fanins" [] (Circuit.Netlist.fanins (Circuit.Netlist.gate nl a))

(* The simplifying constructors must agree with plain gate semantics: build
   a random expression twice — once through the builders, once as a naive
   evaluation — and compare on every input assignment. *)
type expr =
  | Leaf of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr
  | Emux of expr * expr * expr

let rec expr_gen nv depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun i -> Leaf i) (0 -- (nv - 1))
  else
    frequency
      [
        (2, map (fun i -> Leaf i) (0 -- (nv - 1)));
        (2, map (fun e -> Enot e) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Eand (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Eor (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Exor (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
        ( 1,
          map3
            (fun s h l -> Emux (s, h, l))
            (expr_gen nv (depth - 1))
            (expr_gen nv (depth - 1))
            (expr_gen nv (depth - 1)) );
      ]

let rec eval_expr e a =
  match e with
  | Leaf i -> a i
  | Enot x -> not (eval_expr x a)
  | Eand (x, y) -> eval_expr x a && eval_expr y a
  | Eor (x, y) -> eval_expr x a || eval_expr y a
  | Exor (x, y) -> eval_expr x a <> eval_expr y a
  | Emux (s, h, l) -> if eval_expr s a then eval_expr h a else eval_expr l a

let rec build_expr nl ins e =
  match e with
  | Leaf i -> ins.(i)
  | Enot x -> Circuit.Netlist.not_ nl (build_expr nl ins x)
  | Eand (x, y) -> Circuit.Netlist.and_ nl (build_expr nl ins x) (build_expr nl ins y)
  | Eor (x, y) -> Circuit.Netlist.or_ nl (build_expr nl ins x) (build_expr nl ins y)
  | Exor (x, y) -> Circuit.Netlist.xor_ nl (build_expr nl ins x) (build_expr nl ins y)
  | Emux (s, h, l) ->
    Circuit.Netlist.mux nl ~sel:(build_expr nl ins s) ~hi:(build_expr nl ins h)
      ~lo:(build_expr nl ins l)

let prop_builders_preserve_semantics =
  let nv = 4 in
  QCheck.Test.make ~name:"simplifying constructors preserve gate semantics" ~count:300
    (QCheck.make (expr_gen nv 5)) (fun e ->
      let nl = Circuit.Netlist.create () in
      let ins = Array.init nv (fun i -> Circuit.Netlist.input nl (Printf.sprintf "x%d" i)) in
      let out = build_expr nl ins e in
      let sim = Circuit.Eval.compile nl in
      let ok = ref true in
      for mask = 0 to (1 lsl nv) - 1 do
        let assign i = mask land (1 lsl i) <> 0 in
        let frame, _ =
          Circuit.Eval.cycle sim (Circuit.Eval.initial sim) ~inputs:(fun n ->
              let rec idx i = if ins.(i) = n then i else idx (i + 1) in
              assign (idx 0))
        in
        if Circuit.Eval.value frame out <> eval_expr e assign then ok := false
      done;
      !ok)

(* The structural digest is the service layer's cache identity: equal
   digests must mean "same structure, same node numbering", and nothing
   cosmetic may perturb it. *)
let test_digest_identity () =
  let build () =
    let case = Circuit.Generators.ring ~len:9 ~noise:12 () in
    (case.Circuit.Generators.netlist, case.Circuit.Generators.property)
  in
  let nl1, p1 = build () and nl2, p2 = build () in
  Alcotest.(check string) "two builds, one digest" (Circuit.Netlist.digest nl1)
    (Circuit.Netlist.digest nl2);
  (* two separate text parses as well — this is the path bmcserve takes *)
  let text = Circuit.Textio.to_string nl1 ~property:p1 in
  let nl3, _ = Circuit.Textio.parse_string text in
  let nl4, _ = Circuit.Textio.parse_string text in
  Alcotest.(check string) "two parses, one digest" (Circuit.Netlist.digest nl3)
    (Circuit.Netlist.digest nl4);
  (* a name alias is cosmetic: same structure, same digest *)
  let before = Circuit.Netlist.digest nl2 in
  Circuit.Netlist.name_node nl2 "alias" p2;
  Alcotest.(check string) "name_node does not perturb" before (Circuit.Netlist.digest nl2)

let test_digest_sees_structure () =
  let base () =
    let nl = Circuit.Netlist.create () in
    let a = Circuit.Netlist.input nl "a" in
    let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some false) in
    (nl, a, r)
  in
  let digest_of f =
    let nl, a, r = base () in
    f nl a r;
    Circuit.Netlist.digest nl
  in
  let d_and = digest_of (fun nl a r -> Circuit.Netlist.set_next nl r (Circuit.Netlist.and_ nl a r)) in
  let d_or = digest_of (fun nl a r -> Circuit.Netlist.set_next nl r (Circuit.Netlist.or_ nl a r)) in
  let d_init =
    let nl = Circuit.Netlist.create () in
    let a = Circuit.Netlist.input nl "a" in
    let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some true) in
    Circuit.Netlist.set_next nl r (Circuit.Netlist.and_ nl a r);
    Circuit.Netlist.digest nl
  in
  Alcotest.(check bool) "gate kind changes digest" true (d_and <> d_or);
  Alcotest.(check bool) "register init changes digest" true (d_and <> d_init)

let tests =
  [
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "digest: structural identity" `Quick test_digest_identity;
    Alcotest.test_case "digest: sees structure, not names" `Quick test_digest_sees_structure;
    Alcotest.test_case "hashcons" `Quick test_hashcons;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "registers" `Quick test_registers;
    Alcotest.test_case "validate unconnected" `Quick test_validate_unconnected;
    Alcotest.test_case "feedback through reg ok" `Quick test_validate_ok_with_feedback_through_reg;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "inputs/regs order" `Quick test_inputs_regs_order;
    Alcotest.test_case "transitive fanin" `Quick test_transitive_fanin;
    Alcotest.test_case "fanins" `Quick test_fanins;
    QCheck_alcotest.to_alcotest prop_builders_preserve_semantics;
  ]
