(** Propositional literals.

    A literal is a Boolean variable or its negation.  Variables are dense
    non-negative integers allocated by the caller (0-based).  The concrete
    representation is the usual [2 * var + sign] packing, so a literal can
    index arrays of size [2 * num_vars] directly via {!to_index}. *)

type t
(** A literal.  Total order and equality are structural. *)

type var = int
(** Variables are 0-based dense integers. *)

val make : var -> bool -> t
(** [make v positive] is [v] if [positive], else [¬v].
    @raise Invalid_argument on a negative variable. *)

val pos : var -> t
(** Positive literal of a variable. *)

val neg : var -> t
(** Negative literal of a variable. *)

val var : t -> var

val is_pos : t -> bool

val negate : t -> t

val to_index : t -> int
(** Dense index in [0 .. 2*num_vars-1].  Positive literals are even. *)

val of_index : int -> t
(** Inverse of {!to_index}. @raise Invalid_argument on negative input. *)

val to_dimacs : t -> int
(** DIMACS integer: [var+1] for positive, [-(var+1)] for negative. *)

val of_dimacs : int -> t
(** @raise Invalid_argument on 0. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints in DIMACS form, e.g. [-3]. *)
