(* The ordering laboratory's registry: named branching heuristics the
   CLIs, the portfolio roster and the differential tests enumerate.  The
   four built-in Session modes are registered under their usual names so
   one namespace covers everything; the laboratory heuristics are
   [Session.Custom] values whose mutable state (conflict-frequency tables,
   assumption statistics) lives behind the hook closures — hence
   [sp_make] builds a fresh mode per call and callers must never share
   one across solvers. *)

type spec = {
  sp_name : string;
  sp_doc : string;
  sp_make : unit -> Bmc.Session.mode;
}

let name s = s.sp_name

let doc s = s.sp_doc

let mode s = s.sp_make ()

let base nm dc m = { sp_name = nm; sp_doc = dc; sp_make = (fun () -> m) }

let count tbl i = match Hashtbl.find_opt tbl i with Some c -> c | None -> 0

(* Conflict-frequency branching (CHB/expSAT-style), composed with the
   paper's bmc_score: the installed per-depth ranking is the folded core
   score (exactly [Static]'s), and every conflict moves the participating
   variables' ranks to [bmc_score + q] where [q] is an exponential
   recency-weighted average of conflict participation.  Restarts halve
   [q], decaying towards the pure bmc_score ranking.  Phase bias follows
   the more conflict-active literal of the chosen variable. *)
let chb =
  {
    sp_name = "chb";
    sp_doc = "conflict-frequency branching (CHB-style EMA) composed with bmc_score";
    sp_make =
      (fun () ->
        Bmc.Session.Custom
          {
            Bmc.Session.c_name = "chb";
            c_uses_cores = true;
            c_order =
              (fun unroll sc ~k:_ ->
                Sat.Order.Static
                  (Bmc.Score.rank_array sc
                     ~num_vars:(Bmc.Varmap.num_vars (Bmc.Unroll.varmap unroll))));
            c_hooks =
              Some
                (fun _unroll sc ~solver ->
                  let alpha = 0.25 in
                  let q : (int, float) Hashtbl.t = Hashtbl.create 1024 in
                  let lit_cnt : (int, int) Hashtbl.t = Hashtbl.create 1024 in
                  {
                    Sat.Solver.hk_name = "chb";
                    hk_on_conflict =
                      (fun lits ->
                        List.iter
                          (fun l ->
                            let v = Sat.Lit.var l in
                            let i = Sat.Lit.to_index l in
                            Hashtbl.replace lit_cnt i (count lit_cnt i + 1);
                            let prev =
                              match Hashtbl.find_opt q v with Some x -> x | None -> 0.0
                            in
                            let qv = ((1.0 -. alpha) *. prev) +. alpha in
                            Hashtbl.replace q v qv;
                            Sat.Solver.set_rank solver v (Bmc.Score.score sc v +. qv))
                          lits);
                    hk_on_restart =
                      (fun () ->
                        Hashtbl.filter_map_inplace (fun _ qv -> Some (qv *. 0.5)) q);
                    hk_bias =
                      (fun v ->
                        let p = count lit_cnt (Sat.Lit.to_index (Sat.Lit.pos v)) in
                        let n = count lit_cnt (Sat.Lit.to_index (Sat.Lit.neg v)) in
                        if p = n then None else Some (p > n));
                    hk_permute = None;
                  });
          });
  }

(* The Shtrichman frame-ordered racer: the related-work time-axis ranking
   as a registry heuristic, so a roster can race it by name next to the
   laboratory modes (the built-in [Shtrichman] mode stays, printing
   "shtrichman"; this one prints "frame" in race rows). *)
let frame =
  {
    sp_name = "frame";
    sp_doc = "Shtrichman frame-ordered ranking (time axis first)";
    sp_make =
      (fun () ->
        Bmc.Session.Custom
          {
            Bmc.Session.c_name = "frame";
            c_uses_cores = false;
            c_order = (fun unroll _sc ~k -> Sat.Order.Static (Bmc.Shtrichman.rank unroll ~k));
            c_hooks = None;
          });
  }

(* Assumption ordering: VSIDS decisions, but the assumption vector each
   incremental call passes is permuted by recent-conflict participation —
   literals whose negation occurs most in recently learnt clauses go
   first (the falsified-first approximation: those assumptions are the
   likeliest to close a conflict quickly), ties broken by total
   participation.  Restarts halve the counters, keeping "recent"
   honest. *)
let assump =
  {
    sp_name = "assump";
    sp_doc = "assumption-vector ordering by recent-conflict participation";
    sp_make =
      (fun () ->
        Bmc.Session.Custom
          {
            Bmc.Session.c_name = "assump";
            c_uses_cores = false;
            c_order = (fun _unroll _sc ~k:_ -> Sat.Order.Vsids);
            c_hooks =
              Some
                (fun _unroll _sc ~solver:_ ->
                  let cnt : (int, int) Hashtbl.t = Hashtbl.create 1024 in
                  {
                    Sat.Solver.hk_name = "assump";
                    hk_on_conflict =
                      (fun lits ->
                        List.iter
                          (fun l ->
                            let i = Sat.Lit.to_index l in
                            Hashtbl.replace cnt i (count cnt i + 1))
                          lits);
                    hk_on_restart =
                      (fun () ->
                        Hashtbl.filter_map_inplace
                          (fun _ c -> if c <= 1 then None else Some (c / 2))
                          cnt);
                    hk_bias = (fun _ -> None);
                    hk_permute =
                      Some
                        (fun lits ->
                          let keyed =
                            List.map
                              (fun l ->
                                let fals = count cnt (Sat.Lit.to_index (Sat.Lit.negate l)) in
                                let part = fals + count cnt (Sat.Lit.to_index l) in
                                (l, fals, part))
                              lits
                          in
                          List.stable_sort
                            (fun (_, f1, p1) (_, f2, p2) ->
                              if f1 <> f2 then compare f2 f1 else compare p2 p1)
                            keyed
                          |> List.map (fun (l, _, _) -> l));
                  });
          });
  }

let specs () =
  [
    base "standard" "pure VSIDS (the paper's baseline)" Bmc.Session.Standard;
    base "static" "bmc_score rank as the primary key throughout" Bmc.Session.Static;
    base "dynamic" "bmc_score rank with fallback to VSIDS" Bmc.Session.Dynamic;
    base "shtrichman" "the related-work time-axis static ordering" Bmc.Session.Shtrichman;
    chb;
    frame;
    assump;
  ]

let names () = List.map name (specs ())

let find n = List.find_opt (fun s -> s.sp_name = n) (specs ())

let mode_of_name n = Option.map mode (find n)
