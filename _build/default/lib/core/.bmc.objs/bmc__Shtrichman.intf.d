lib/core/shtrichman.mli: Unroll
