(* The refine_order_bmc driver: integration against the oracle, per-depth
   statistics, budgets, core refinement behaviour. *)

let modes = Bmc.Engine.all_modes

let verdict_matches (expect : Circuit.Generators.expect) (v : Bmc.Engine.verdict) =
  match (expect, v) with
  | Circuit.Generators.Fails_at k, Bmc.Engine.Falsified t -> t.Bmc.Trace.depth = k
  | Circuit.Generators.Holds, Bmc.Engine.Bounded_pass _ -> true
  | ( (Circuit.Generators.Fails_at _ | Circuit.Generators.Holds),
      (Bmc.Engine.Falsified _ | Bmc.Engine.Bounded_pass _ | Bmc.Engine.Aborted _) ) ->
    false

(* Every mode must agree with the analytic verdict on every tiny case. *)
let test_all_modes_all_tiny_cases () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match case.expect with
      | None -> ()
      | Some expect ->
        List.iter
          (fun mode ->
            let config = Bmc.Engine.config ~mode ~max_depth:case.suggested_depth () in
            let r = Bmc.Engine.run_case ~config case in
            if not (verdict_matches expect r.verdict) then
              Alcotest.failf "%s in mode %a: expected %a, got %a" case.name Bmc.Engine.pp_mode
                mode Circuit.Generators.pp_expect expect Bmc.Engine.pp_verdict r.verdict)
          modes)
    (Circuit.Generators.tiny_suite ())

let test_per_depth_stats_shape () =
  let case = Circuit.Generators.counter ~bits:3 ~target:5 () in
  let r =
    Bmc.Engine.run_case ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:10 ()) case
  in
  Alcotest.(check int) "one stat per depth 0..5" 6 (List.length r.per_depth);
  List.iteri
    (fun i (d : Bmc.Engine.depth_stat) -> Alcotest.(check int) "depths ascending" i d.depth)
    r.per_depth;
  let last = List.nth r.per_depth 5 in
  Alcotest.(check string) "last is SAT" "SAT" (Format.asprintf "%a" Sat.Solver.pp_outcome last.outcome)

let test_core_refinement_populates_scores () =
  (* in Static mode, UNSAT depths must report non-empty cores *)
  let case = Circuit.Generators.ring ~len:4 () in
  let r =
    Bmc.Engine.run_case ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:5 ()) case
  in
  List.iter
    (fun (d : Bmc.Engine.depth_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "core at depth %d nonempty" d.depth)
        true (d.core_size > 0 && d.core_var_count > 0))
    r.per_depth

let test_standard_mode_skips_proof_logging () =
  let case = Circuit.Generators.ring ~len:4 () in
  let r =
    Bmc.Engine.run_case ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Standard ~max_depth:4 ()) case
  in
  List.iter
    (fun (d : Bmc.Engine.depth_stat) ->
      Alcotest.(check int) "no cores collected" 0 d.core_size)
    r.per_depth

let test_collect_cores_flag () =
  let case = Circuit.Generators.ring ~len:4 () in
  let r =
    Bmc.Engine.run_case
      ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Standard ~collect_cores:true ~max_depth:4 ())
      case
  in
  List.iter
    (fun (d : Bmc.Engine.depth_stat) ->
      Alcotest.(check bool) "cores collected in standard mode" true (d.core_size > 0))
    r.per_depth

let test_budget_aborts () =
  let case = Circuit.Generators.parity_pipe ~stages:12 () in
  let budget =
    { Sat.Solver.max_conflicts = Some 1; max_propagations = Some 10; max_seconds = None; stop = None }
  in
  let r =
    Bmc.Engine.run_case
      ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Standard ~budget ~max_depth:24 ())
      case
  in
  match r.verdict with
  | Bmc.Engine.Aborted _ -> ()
  | v -> Alcotest.failf "expected abort on tiny budget, got %a" Bmc.Engine.pp_verdict v

let test_coi_equivalent_results () =
  let case = Circuit.Generators.counter ~bits:3 ~target:5 ~noise:6 () in
  let run coi =
    Bmc.Engine.run ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~coi ~max_depth:6 ())
      case.netlist ~property:case.property
  in
  match ((run false).verdict, (run true).verdict) with
  | Bmc.Engine.Falsified a, Bmc.Engine.Falsified b ->
    Alcotest.(check int) "same depth with and without COI" a.Bmc.Trace.depth b.Bmc.Trace.depth
  | _, _ -> Alcotest.fail "both runs must falsify"

let test_totals_are_sums () =
  let case = Circuit.Generators.fifo_safe ~bits:3 () in
  let r =
    Bmc.Engine.run_case ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:6 ()) case
  in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 r.per_depth in
  Alcotest.(check int) "decisions" (sum (fun (d : Bmc.Engine.depth_stat) -> d.decisions))
    r.total_decisions;
  Alcotest.(check int) "implications" (sum (fun (d : Bmc.Engine.depth_stat) -> d.implications))
    r.total_implications;
  Alcotest.(check int) "conflicts" (sum (fun (d : Bmc.Engine.depth_stat) -> d.conflicts))
    r.total_conflicts

let test_weightings_agree_on_verdict () =
  let case = Circuit.Generators.johnson ~width:5 () in
  List.iter
    (fun weighting ->
      let r =
        Bmc.Engine.run_case
          ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Static ~weighting ~max_depth:8 ())
          case
      in
      match r.verdict with
      | Bmc.Engine.Bounded_pass 8 -> ()
      | v -> Alcotest.failf "weighting changed verdict: %a" Bmc.Engine.pp_verdict v)
    [ Bmc.Score.Linear; Bmc.Score.Uniform; Bmc.Score.Last_only ]

let test_mode_round_trip () =
  List.iter
    (fun m ->
      let s = Format.asprintf "%a" Bmc.Engine.pp_mode m in
      match Bmc.Engine.mode_of_string s with
      | Some m' -> Alcotest.(check bool) ("roundtrip " ^ s) true (m = m')
      | None -> Alcotest.failf "mode %s does not parse back" s)
    modes;
  Alcotest.(check bool) "unknown mode rejected" true (Bmc.Engine.mode_of_string "vsids" = None)

(* Randomised integration: random small circuits, engine vs oracle. *)
let random_case_gen =
  let open QCheck.Gen in
  let noise = oneofl [ 0; 2; 4 ] in
  oneof
    [
      (pair (1 -- 6) noise >|= fun (t, z) ->
       Circuit.Generators.counter ~bits:3 ~target:t ~noise:z ());
      (pair (1 -- 6) noise >|= fun (t, z) ->
       Circuit.Generators.counter_en ~bits:3 ~target:t ~noise:z ());
      (pair (2 -- 5) noise >|= fun (l, z) -> Circuit.Generators.shift_in ~len:l ~noise:z ());
      (pair (3 -- 6) noise >|= fun (l, z) -> Circuit.Generators.ring ~len:l ~noise:z ());
      (pair (2 -- 4) noise >|= fun (s, z) ->
       Circuit.Generators.parity_pipe ~stages:s ~noise:z ());
      (pair (4 -- 6) noise >|= fun (w, z) -> Circuit.Generators.johnson ~width:w ~noise:z ());
    ]

let prop_engine_matches_oracle =
  QCheck.Test.make ~name:"engine verdict = oracle verdict (all modes)" ~count:40
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) random_case_gen)
    (fun case ->
      let oracle = Circuit.Reach.check case.netlist ~property:case.property in
      List.for_all
        (fun mode ->
          let config = Bmc.Engine.config ~mode ~max_depth:case.suggested_depth () in
          let r = Bmc.Engine.run_case ~config case in
          match (oracle, r.verdict) with
          | Circuit.Reach.Fails_at k, Bmc.Engine.Falsified t -> t.Bmc.Trace.depth = k
          | Circuit.Reach.Holds _, Bmc.Engine.Bounded_pass _ -> true
          | Circuit.Reach.Too_large, _ -> true
          | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _), _ -> false)
        modes)

let tests =
  [
    Alcotest.test_case "all modes, all tiny cases" `Slow test_all_modes_all_tiny_cases;
    Alcotest.test_case "per-depth stats" `Quick test_per_depth_stats_shape;
    Alcotest.test_case "core refinement" `Quick test_core_refinement_populates_scores;
    Alcotest.test_case "standard skips proofs" `Quick test_standard_mode_skips_proof_logging;
    Alcotest.test_case "collect_cores flag" `Quick test_collect_cores_flag;
    Alcotest.test_case "budget aborts" `Quick test_budget_aborts;
    Alcotest.test_case "COI equivalence" `Quick test_coi_equivalent_results;
    Alcotest.test_case "totals are sums" `Quick test_totals_are_sums;
    Alcotest.test_case "weightings agree" `Quick test_weightings_agree_on_verdict;
    Alcotest.test_case "mode round trip" `Quick test_mode_round_trip;
    QCheck_alcotest.to_alcotest prop_engine_matches_oracle;
  ]
