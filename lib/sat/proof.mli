(** Simplified Conflict Dependency Graph (paper, Section 3.1).

    Every clause the solver ever sees — original or learnt — is assigned an
    integer {e pseudo ID}.  For each learnt (conflict) clause we record only
    the IDs of its antecedents: the clauses resolved on while deriving it.
    When the formula is refuted, the final (empty-clause) conflict records its
    antecedents too.  The {e unsatisfiable core} is then the set of original
    clauses reachable backwards from the final conflict.

    Crucially the graph stores no literals, so the solver remains free to
    delete learnt clauses from its database: deletion never breaks the
    dependency information, which is the point of the paper's simplification.
    The memory cost is one small [int array] per learnt clause. *)

type t

val create : ?timed:bool -> unit -> t
(** [timed] (default [false]) clocks every bookkeeping operation —
    registration, final-conflict recording, and the backwards core walk —
    accumulating into {!cdg_seconds}.  This makes the paper's "about 5%"
    CDG overhead claim directly measurable; when off, the only cost is a
    boolean check per operation. *)

val register_original : t -> int
(** Allocate a pseudo ID for an original clause.  IDs are dense from 0, in
    registration order, so they coincide with {!Cnf} clause indices when
    originals are registered first and in order. *)

val register_learnt : t -> antecedents:int list -> int
(** Allocate a pseudo ID for a learnt clause derived by resolving the listed
    antecedents.  @raise Invalid_argument if an antecedent ID is unknown. *)

val set_final : t -> antecedents:int list -> unit
(** Record the final, unresolvable conflict (the empty clause). *)

val has_final : t -> bool

val clear_final : t -> unit
(** Forget the final conflict (incremental solving: each solve call records
    its own refutation; the clause graph itself is kept). *)

val core : t -> int list
(** Original-clause IDs reachable from the final conflict, ascending.
    @raise Invalid_argument if {!set_final} was never called. *)

val antecedents : t -> int -> int array option
(** The antecedent list of a learnt clause's pseudo ID (derivation order);
    [None] for originals or unknown IDs. *)

val final : t -> int array option
(** The final conflict's antecedents, if recorded. *)

val num_original : t -> int

val num_learnt : t -> int

val num_edges : t -> int
(** Total antecedent references stored — the memory-overhead figure. *)

val cdg_seconds : t -> float
(** CPU seconds spent in the CDG bookkeeping so far (0 unless the graph was
    created [~timed:true]). *)
