module Sink = Sink

type t = {
  on : bool;
  timing : bool;
      (* Hot-path phase timing (clock reads around every BCP / conflict
         analysis).  Separately switchable so a consumer that only wants
         the event stream — the run ledger, the flight recorder's ride-along
         telemetry — does not pay two [Sys.time] calls per propagation. *)
  sink : Sink.t;
  clock : unit -> float;
  epoch : float;
  nest : int ref Domain.DLS.key;
      (* Span nesting depth.  Domain-local: concurrent domains sharing one
         handle (e.g. portfolio racers) each keep their own depth, so a span
         opened on one domain never shifts the [nest] recorded by another. *)
}

let fresh_nest () = Domain.DLS.new_key (fun () -> ref 0)

let disabled =
  {
    on = false;
    timing = false;
    sink = Sink.null;
    clock = (fun () -> 0.0);
    epoch = 0.0;
    nest = fresh_nest ();
  }

let create ?(clock = Sys.time) ?(timing = true) sink =
  { on = true; timing; sink; clock; epoch = clock (); nest = fresh_nest () }

let enabled t = t.on

let timing t = t.timing

let now t = t.clock () -. t.epoch

let flush t = if t.on then t.sink.Sink.flush ()

let event t kind fields =
  if t.on then t.sink.Sink.emit { Sink.ts = now t; kind; fields }

let counter t name value =
  if t.on then
    t.sink.Sink.emit
      { Sink.ts = now t; kind = "counter"; fields = [ ("name", Sink.Str name); ("value", Sink.Int value) ] }

let gauge t name value =
  if t.on then
    t.sink.Sink.emit
      {
        Sink.ts = now t;
        kind = "gauge";
        fields = [ ("name", Sink.Str name); ("value", Sink.Float value) ];
      }

let span_event t name ~dur fields =
  if t.on then
    t.sink.Sink.emit
      {
        Sink.ts = now t;
        kind = "span";
        fields = ("name", Sink.Str name) :: ("dur", Sink.Float dur) :: fields;
      }

let span t name ?(fields = []) f =
  if not t.on then f ()
  else begin
    let nest = Domain.DLS.get t.nest in
    let level = !nest in
    nest := level + 1;
    let t0 = t.clock () in
    let finish () =
      let t1 = t.clock () in
      nest := level;
      t.sink.Sink.emit
        {
          Sink.ts = t0 -. t.epoch;
          kind = "span";
          fields =
            ("name", Sink.Str name)
            :: ("dur", Sink.Float (t1 -. t0))
            :: ("nest", Sink.Int level)
            :: fields;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end
