(** Stable (circuit node, time frame) → SAT variable numbering.

    BMC instance k+1 must reuse instance k's variable numbers for the shared
    frames — that is what makes a variable identity (and hence the paper's
    [bmc_score]) transferable between instances.  Variables are allocated
    monotonically on first request and never re-numbered: extending the
    unrolling only appends. *)

type t

val create : unit -> t

val var : t -> node:Circuit.Netlist.node -> frame:int -> Sat.Lit.var
(** Allocate-on-first-use lookup.  @raise Invalid_argument on a negative
    frame. *)

val peek : t -> node:Circuit.Netlist.node -> frame:int -> Sat.Lit.var option
(** Lookup without allocation. *)

val key_of : t -> Sat.Lit.var -> (Circuit.Netlist.node * int) option
(** Reverse mapping: which circuit node at which frame a SAT variable
    denotes; [None] for variables not allocated by this map. *)

val num_vars : t -> int
(** Variables allocated so far. *)
