lib/core/ltl.mli: Circuit Engine Format Trace
