lib/sat/checker.ml: Array Buffer Cnf Hashtbl List Lit Option Printf String
