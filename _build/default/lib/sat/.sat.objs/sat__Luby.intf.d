lib/sat/luby.mli:
