(* Decision-ordering heap: VSIDS keys, rank combination, dynamic switch. *)

let always_unassigned _ = true

let mk_cnf clauses =
  let f = Sat.Cnf.create () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map (fun (v, s) -> Sat.Lit.make v s) c)) clauses;
  f

let test_init_activity_counts () =
  let cnf = mk_cnf [ [ (0, true); (1, true) ]; [ (0, true); (1, false) ]; [ (0, true) ] ] in
  let o = Sat.Order.create ~num_vars:2 Sat.Order.Vsids in
  Sat.Order.init_activity o cnf;
  Alcotest.(check (float 1e-9)) "x0 count" 3.0 (Sat.Order.activity o (Sat.Lit.pos 0));
  Alcotest.(check (float 1e-9)) "x1 count" 1.0 (Sat.Order.activity o (Sat.Lit.pos 1));
  Alcotest.(check (float 1e-9)) "~x1 count" 1.0 (Sat.Order.activity o (Sat.Lit.neg 1))

let test_pop_highest_activity () =
  let cnf = mk_cnf [ [ (0, true) ]; [ (1, false) ]; [ (1, false) ]; [ (2, true) ] ] in
  let o = Sat.Order.create ~num_vars:3 Sat.Order.Vsids in
  Sat.Order.init_activity o cnf;
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l ->
    Alcotest.(check int) "highest count literal is ~x1" 1 (Sat.Lit.var l);
    Alcotest.(check bool) "negative phase" false (Sat.Lit.is_pos l)
  | None -> Alcotest.fail "heap empty"

let test_bump_reorders () =
  let o = Sat.Order.create ~num_vars:3 Sat.Order.Vsids in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.bump o (Sat.Lit.neg 2);
  Sat.Order.bump o (Sat.Lit.neg 2);
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "bumped literal first" 2 (Sat.Lit.var l)
  | None -> Alcotest.fail "heap empty"

let test_halve_preserves_order () =
  let o = Sat.Order.create ~num_vars:3 Sat.Order.Vsids in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.bump o (Sat.Lit.pos 1);
  Sat.Order.bump o (Sat.Lit.pos 1);
  Sat.Order.bump o (Sat.Lit.pos 0);
  Sat.Order.halve_all o;
  Alcotest.(check (float 1e-9)) "halved" 1.0 (Sat.Order.activity o (Sat.Lit.pos 1));
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "order preserved" 1 (Sat.Lit.var l)
  | None -> Alcotest.fail "heap empty"

let test_rank_dominates_activity () =
  let rank = [| 0.0; 5.0; 0.0 |] in
  let o = Sat.Order.create ~num_vars:3 (Sat.Order.Static rank) in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  (* big activity on x0, but x1 has rank 5 *)
  for _ = 1 to 10 do
    Sat.Order.bump o (Sat.Lit.pos 0)
  done;
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "ranked var decided first" 1 (Sat.Lit.var l)
  | None -> Alcotest.fail "heap empty"

let test_activity_breaks_rank_ties () =
  let rank = [| 1.0; 1.0 |] in
  let o = Sat.Order.create ~num_vars:2 (Sat.Order.Static rank) in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.bump o (Sat.Lit.neg 1);
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l ->
    Alcotest.(check int) "tie broken by activity" 1 (Sat.Lit.var l);
    Alcotest.(check bool) "phase from activity" false (Sat.Lit.is_pos l)
  | None -> Alcotest.fail "heap empty"

let test_switch_to_vsids () =
  let rank = [| 0.0; 9.0 |] in
  let o = Sat.Order.create ~num_vars:2 (Sat.Order.Dynamic rank) in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.bump o (Sat.Lit.pos 0);
  Alcotest.(check bool) "dynamic" true (Sat.Order.is_dynamic o);
  Alcotest.(check bool) "rank active" true (Sat.Order.mode_uses_rank o);
  (match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "before switch: rank wins" 1 (Sat.Lit.var l)
  | None -> Alcotest.fail "heap empty");
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.switch_to_vsids o;
  Alcotest.(check bool) "rank dropped" false (Sat.Order.mode_uses_rank o);
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "after switch: activity wins" 0 (Sat.Lit.var l)
  | None -> Alcotest.fail "heap empty"

let test_pop_skips_assigned () =
  let o = Sat.Order.create ~num_vars:3 Sat.Order.Vsids in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  Sat.Order.bump o (Sat.Lit.pos 2);
  let is_unassigned v = v <> 2 in
  match Sat.Order.pop_best o ~is_unassigned with
  | Some l -> Alcotest.(check bool) "skips var 2" true (Sat.Lit.var l <> 2)
  | None -> Alcotest.fail "heap empty"

let test_on_unassign_reinserts () =
  let o = Sat.Order.create ~num_vars:2 Sat.Order.Vsids in
  Sat.Order.rebuild o ~is_unassigned:always_unassigned;
  (* drain the heap *)
  let rec drain () =
    match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "drained" true
    (Sat.Order.pop_best o ~is_unassigned:always_unassigned = None);
  Sat.Order.on_unassign o 1;
  match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
  | Some l -> Alcotest.(check int) "reinserted" 1 (Sat.Lit.var l)
  | None -> Alcotest.fail "reinsertion failed"

(* Popping everything yields literals in non-increasing key order. *)
let prop_pop_monotone =
  QCheck.Test.make ~name:"pop yields non-increasing activities" ~count:100
    QCheck.(list_of_size Gen.(0 -- 50) (pair (int_bound 9) bool))
    (fun bumps ->
      let o = Sat.Order.create ~num_vars:10 Sat.Order.Vsids in
      Sat.Order.rebuild o ~is_unassigned:always_unassigned;
      List.iter (fun (v, s) -> Sat.Order.bump o (Sat.Lit.make v s)) bumps;
      let rec drain acc =
        match Sat.Order.pop_best o ~is_unassigned:always_unassigned with
        | Some l -> drain (Sat.Order.activity o l :: acc)
        | None -> List.rev acc
      in
      let acts = drain [] in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a >= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted acts)

let tests =
  [
    Alcotest.test_case "init activity" `Quick test_init_activity_counts;
    Alcotest.test_case "pop highest" `Quick test_pop_highest_activity;
    Alcotest.test_case "bump reorders" `Quick test_bump_reorders;
    Alcotest.test_case "halve preserves order" `Quick test_halve_preserves_order;
    Alcotest.test_case "rank dominates" `Quick test_rank_dominates_activity;
    Alcotest.test_case "activity breaks ties" `Quick test_activity_breaks_rank_ties;
    Alcotest.test_case "dynamic switch" `Quick test_switch_to_vsids;
    Alcotest.test_case "pop skips assigned" `Quick test_pop_skips_assigned;
    Alcotest.test_case "on_unassign" `Quick test_on_unassign_reinserts;
    QCheck_alcotest.to_alcotest prop_pop_monotone;
  ]
