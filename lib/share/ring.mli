(** Lock-free multi-producer / multi-consumer broadcast ring.

    A fixed-capacity ring of published values with {e overwrite-oldest}
    semantics: producers never block (a slow consumer loses old entries, it
    never stalls a publisher) and every consumer holds its own {!cursor}, so
    consumers do not contend with each other either.

    Publication protocol: a producer claims a monotonically increasing
    {e ticket} with [Atomic.fetch_and_add] on the head counter and then
    stores an entry record — carrying its own ticket — into slot
    [ticket mod capacity] with a single atomic write.  Because the whole
    entry (ticket, source id, payload) is one immutable record published
    through an [Atomic.t] cell, a reader either sees the complete entry or a
    previous complete entry, never a torn mixture — the OCaml memory model's
    release/acquire pairing on [Atomic.set]/[Atomic.get] makes the payload
    contents visible together with the ticket.

    A consumer's cursor tracks the next ticket it expects.  Reading the slot
    either finds that ticket (deliver, advance), an older one (the producer
    has claimed but not yet stored — try again later), or a newer one (the
    ring lapped the consumer: the cursor re-syncs to the oldest still-
    readable ticket, counting only the truly overwritten ones as dropped,
    and resumes from there).  All operations are wait-free. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val publish : 'a t -> src:int -> 'a -> unit
(** Claim the next ticket and store the value.  [src] is an opaque producer
    id handed back to consumers (so an endpoint can skip its own entries).
    Never blocks; with more than [capacity] outstanding entries the oldest
    are overwritten. *)

val published : 'a t -> int
(** Total tickets claimed so far (monotonic). *)

val occupancy : 'a t -> int
(** Entries currently readable: [min (published t) (capacity t)]. *)

type 'a cursor
(** A consumer's private position.  Not thread-safe: each cursor belongs to
    exactly one consumer domain (the ring itself is shared freely). *)

val cursor : 'a t -> 'a cursor
(** A new consumer positioned at the oldest still-readable entry. *)

val poll : 'a cursor -> (src:int -> 'a -> unit) -> int
(** Deliver every readable entry newer than the cursor, in ticket order,
    and advance past them.  Returns the number delivered.  Entries lost to
    overwriting are skipped and accounted in {!dropped}. *)

val dropped : 'a cursor -> int
(** Total entries this consumer lost to overwriting (monotonic). *)

val lag : 'a cursor -> int
(** Tickets published but not yet consumed through this cursor. *)
