examples/prove_it.ml: Bmc Circuit Format List
