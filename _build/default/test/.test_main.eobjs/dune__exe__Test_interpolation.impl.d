test/test_interpolation.ml: Alcotest Array Bmc Circuit Format List QCheck QCheck_alcotest Sat
