(* Textual netlist format. *)

let sample =
  {|# a toggling register and a property
input en
reg r init 0
mux m en nr r
not nr r
next r m
prop p
not p r
|}

let test_parse_forward_refs () =
  (* 'mux' references 'nr' before its declaration; 'prop p' before 'not p r' *)
  let nl, prop = Circuit.Textio.parse_string sample in
  Alcotest.(check int) "one input" 1 (List.length (Circuit.Netlist.inputs nl));
  Alcotest.(check int) "one reg" 1 (List.length (Circuit.Netlist.regs nl));
  match Circuit.Netlist.gate nl prop with
  | Circuit.Netlist.Not _ -> ()
  | g -> Alcotest.failf "property gate: %a" Circuit.Netlist.pp_gate g

let test_roundtrip_preserves_behaviour () =
  let case = Circuit.Generators.ring ~len:5 () in
  let text = Circuit.Textio.to_string case.netlist ~property:case.property in
  let nl', prop' = Circuit.Textio.parse_string text in
  let v1 = Circuit.Reach.check case.netlist ~property:case.property in
  let v2 = Circuit.Reach.check nl' ~property:prop' in
  Alcotest.(check bool) "same verdict after roundtrip" true (Circuit.Reach.equal_verdict v1 v2)

let test_roundtrip_failing_case () =
  let case = Circuit.Generators.counter ~bits:3 ~target:5 () in
  let text = Circuit.Textio.to_string case.netlist ~property:case.property in
  let nl', prop' = Circuit.Textio.parse_string text in
  match Circuit.Reach.check nl' ~property:prop' with
  | Circuit.Reach.Fails_at 5 -> ()
  | v -> Alcotest.failf "expected fails@5 after roundtrip, got %a" Circuit.Reach.pp_verdict v

let expect_parse_error input =
  match Circuit.Textio.parse_string input with
  | exception Circuit.Textio.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected Parse_error on:\n" ^ input)

let test_errors () =
  expect_parse_error "input a\n"; (* no prop *)
  expect_parse_error "input a\ninput a\nprop a\n"; (* duplicate *)
  expect_parse_error "and g a b\nprop g\n"; (* undefined operands *)
  expect_parse_error "input a\nreg r init 0\nprop a\n"; (* unconnected reg *)
  expect_parse_error "input a\nprop a\nprop a\n"; (* duplicate prop *)
  expect_parse_error "frob a b\nprop a\n"; (* unknown keyword *)
  expect_parse_error "input a\nnext a a\nprop a\n"; (* next on non-reg: unknown register *)
  expect_parse_error "not g g\nprop g\n" (* combinational self-loop *)

let test_const_syntax () =
  let nl, prop = Circuit.Textio.parse_string "const t 1\nconst f 0\nand g t f\nprop g\n" in
  match Circuit.Netlist.gate nl prop with
  | Circuit.Netlist.Const false -> ()
  | g -> Alcotest.failf "expected folded const false, got %a" Circuit.Netlist.pp_gate g

let test_file_io () =
  let case = Circuit.Generators.traffic () in
  let path = Filename.temp_file "netlist" ".rnl" in
  Circuit.Textio.write_file path case.netlist ~property:case.property;
  let nl', prop' = Circuit.Textio.parse_file path in
  Sys.remove path;
  let v = Circuit.Reach.check nl' ~property:prop' in
  match v with
  | Circuit.Reach.Holds _ -> ()
  | _ -> Alcotest.failf "traffic must still hold, got %a" Circuit.Reach.pp_verdict v

(* Round-trip every tiny-suite case and compare oracle verdicts. *)
let test_roundtrip_tiny_suite () =
  List.iter
    (fun (c : Circuit.Generators.case) ->
      let text = Circuit.Textio.to_string c.netlist ~property:c.property in
      let nl', prop' = Circuit.Textio.parse_string text in
      let v1 = Circuit.Reach.check c.netlist ~property:c.property in
      let v2 = Circuit.Reach.check nl' ~property:prop' in
      if not (Circuit.Reach.equal_verdict v1 v2) then
        Alcotest.failf "%s: verdict changed by roundtrip (%a vs %a)" c.name
          Circuit.Reach.pp_verdict v1 Circuit.Reach.pp_verdict v2)
    (Circuit.Generators.tiny_suite ())

let tests =
  [
    Alcotest.test_case "forward refs" `Quick test_parse_forward_refs;
    Alcotest.test_case "roundtrip holds-case" `Quick test_roundtrip_preserves_behaviour;
    Alcotest.test_case "roundtrip failing-case" `Quick test_roundtrip_failing_case;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "const syntax" `Quick test_const_syntax;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "roundtrip tiny suite" `Slow test_roundtrip_tiny_suite;
  ]
