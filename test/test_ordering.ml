(* Differential smoke for the ordering laboratory (lib/ordering).

   Every registered heuristic is pure decision strategy: it may change HOW
   the solver searches, never WHAT an instance's verdict is.  On a seeded
   random-netlist suite each heuristic must therefore be observationally
   equal to "standard": the per-depth outcome string is identical, and on
   every UNSAT depth both sides produce a minimised core the independent
   checker certifies.  (The core *variable sets* legitimately differ — a
   different decision order finds a different proof — so "certified cores
   equal" means equally certified valid cores on exactly the same UNSAT
   depths, not identical sets.) *)

let max_depth = 8

let budget =
  {
    Sat.Solver.max_conflicts = Some 100_000;
    max_propagations = None;
    max_seconds = None;
    stop = None;
  }

(* deterministic: a solve-count cap only, never wall-clock *)
let coremin_budget = { Sat.Coremin.no_budget with Sat.Coremin.max_solves = Some 8 }

(* ~20 seed-deterministic circuits spanning register/gate/input mixes the
   hand-written generators never produce *)
let circuits () =
  List.init 20 (fun i ->
      Circuit.Generators.random ~seed:(1 + (37 * i))
        ~regs:(2 + (i mod 5))
        ~gates:(6 + (3 * (i mod 6)))
        ~inputs:(i mod 4))

let sweep mode (case : Circuit.Generators.case) =
  let config =
    Bmc.Session.make_config ~mode ~budget ~max_depth ~collect_cores:true
      ~core_mode:Bmc.Session.Core_minimal ~coremin_budget ()
  in
  let session =
    Bmc.Session.create ~policy:Bmc.Session.Persistent config case.netlist
      ~property:case.property
  in
  let buf = Buffer.create (max_depth + 1) in
  let certified = ref true in
  for k = 0 to max_depth do
    Bmc.Session.begin_instance session ~k;
    Bmc.Session.constrain session
      [ Sat.Lit.neg (Bmc.Session.var_of session ~node:case.property ~frame:k) ];
    let st = Bmc.Session.solve_instance session in
    match st.Bmc.Session.outcome with
    | Sat.Solver.Sat -> Buffer.add_char buf 's'
    | Sat.Solver.Unsat ->
      Buffer.add_char buf 'u';
      if not st.Bmc.Session.coremin_certified then certified := false
    | Sat.Solver.Unknown -> Buffer.add_char buf '?'
  done;
  (Buffer.contents buf, !certified)

let test_registry () =
  let names = Ordering.names () in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "standard"; "static"; "dynamic"; "shtrichman"; "chb"; "frame"; "assump" ];
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Ordering.name s ^ " has a doc line")
        true
        (String.length (Ordering.doc s) > 0))
    (Ordering.specs ());
  Alcotest.(check bool) "unknown name rejected" true
    (Ordering.mode_of_name "no-such-heuristic" = None)

let test_differential () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let base, base_certified = sweep Bmc.Session.Standard case in
      Alcotest.(check bool)
        (Printf.sprintf "%s: standard cores certified" case.name)
        true base_certified;
      List.iter
        (fun spec ->
          let name = Ordering.name spec in
          let got, certified = sweep (Ordering.mode spec) case in
          Alcotest.(check string)
            (Printf.sprintf "%s: %s outcomes = standard" case.name name)
            base got;
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s cores certified" case.name name)
            true certified)
        (Ordering.specs ()))
    (circuits ())

let tests =
  [
    Alcotest.test_case "registry sanity" `Quick test_registry;
    Alcotest.test_case "every heuristic = standard on random netlists" `Quick
      test_differential;
  ]
