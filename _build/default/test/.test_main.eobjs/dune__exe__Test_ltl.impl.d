test/test_ltl.ml: Alcotest Bmc Circuit Format Fun List Option Printf QCheck QCheck_alcotest
