test/test_score.ml: Alcotest Array Bmc Gen List QCheck QCheck_alcotest
