test/test_abstraction.ml: Alcotest Bmc Circuit List QCheck QCheck_alcotest String
