lib/sat/luby.ml:
