type t = {
  netlist : Circuit.Netlist.t;
  property : Circuit.Netlist.node;
  constrain_init : bool;
  varmap : Varmap.t;
  in_cone : Circuit.Netlist.node -> bool;
  encode_order : Circuit.Netlist.node array; (* nodes encoded per frame, fixed order *)
  base : (int * Sat.Lit.t list) Sat.Vec.t; (* (frame, clause) in emission order *)
  link_flags : bool Sat.Vec.t; (* aligned with base: register-link clause? *)
  frame_var_limit : int Sat.Vec.t; (* vars allocated after materialising frame f *)
  frame_clause_limit : int Sat.Vec.t; (* base length after materialising frame f *)
  mutable depth : int;
}

let create ?(coi = false) ?(constrain_init = true) netlist ~property =
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Unroll.create: " ^ msg));
  let in_cone =
    if coi then Circuit.Netlist.transitive_fanin netlist [ property ] else fun _ -> true
  in
  let order =
    List.init (Circuit.Netlist.num_nodes netlist) Fun.id |> List.filter in_cone |> Array.of_list
  in
  {
    netlist;
    property;
    constrain_init;
    varmap = Varmap.create ();
    in_cone;
    encode_order = order;
    base = Sat.Vec.create ~dummy:(0, []) ();
    link_flags = Sat.Vec.create ~dummy:false ();
    frame_var_limit = Sat.Vec.create ~dummy:0 ();
    frame_clause_limit = Sat.Vec.create ~dummy:0 ();
    depth = -1;
  }

let netlist t = t.netlist

let property t = t.property

let varmap t = t.varmap

(* Constants get a single variable shared by all frames. *)
let var_of t ~node ~frame =
  match Circuit.Netlist.gate t.netlist node with
  | Circuit.Netlist.Const _ -> Varmap.var t.varmap ~node ~frame:0
  | Circuit.Netlist.Input _ | Circuit.Netlist.Not _ | Circuit.Netlist.And _ | Circuit.Netlist.Or _ | Circuit.Netlist.Xor _
  | Circuit.Netlist.Mux _ | Circuit.Netlist.Reg _ ->
    Varmap.var t.varmap ~node ~frame

let frame_of_var t v = Option.map snd (Varmap.key_of t.varmap v)

let emit ?(link = false) t frame clause =
  Sat.Vec.push t.base (frame, clause);
  Sat.Vec.push t.link_flags link

let encode_node t frame node =
  let nl = t.netlist in
  let v = var_of t ~node ~frame in
  let pos = Sat.Lit.pos v and neg = Sat.Lit.neg v in
  let at n = var_of t ~node:n ~frame in
  match Circuit.Netlist.gate nl node with
  | Circuit.Netlist.Input _ -> ()
  | Circuit.Netlist.Const b ->
    (* one unit clause, emitted only when the constant is first seen *)
    if frame = 0 then emit t 0 [ (if b then pos else neg) ]
  | Circuit.Netlist.Not a ->
    let a = at a in
    emit t frame [ pos; Sat.Lit.pos a ];
    emit t frame [ neg; Sat.Lit.neg a ]
  | Circuit.Netlist.And (a, b) ->
    let a = at a and b = at b in
    emit t frame [ neg; Sat.Lit.pos a ];
    emit t frame [ neg; Sat.Lit.pos b ];
    emit t frame [ pos; Sat.Lit.neg a; Sat.Lit.neg b ]
  | Circuit.Netlist.Or (a, b) ->
    let a = at a and b = at b in
    emit t frame [ pos; Sat.Lit.neg a ];
    emit t frame [ pos; Sat.Lit.neg b ];
    emit t frame [ neg; Sat.Lit.pos a; Sat.Lit.pos b ]
  | Circuit.Netlist.Xor (a, b) ->
    let a = at a and b = at b in
    emit t frame [ neg; Sat.Lit.pos a; Sat.Lit.pos b ];
    emit t frame [ neg; Sat.Lit.neg a; Sat.Lit.neg b ];
    emit t frame [ pos; Sat.Lit.pos a; Sat.Lit.neg b ];
    emit t frame [ pos; Sat.Lit.neg a; Sat.Lit.pos b ]
  | Circuit.Netlist.Mux (s, h, l) ->
    let s = at s and h = at h and l = at l in
    emit t frame [ neg; Sat.Lit.neg s; Sat.Lit.pos h ];
    emit t frame [ pos; Sat.Lit.neg s; Sat.Lit.neg h ];
    emit t frame [ neg; Sat.Lit.pos s; Sat.Lit.pos l ];
    emit t frame [ pos; Sat.Lit.pos s; Sat.Lit.neg l ]
  | Circuit.Netlist.Reg _ ->
    if frame = 0 then begin
      if t.constrain_init then
        match Circuit.Netlist.reg_init nl node with
        | Some true -> emit t 0 [ pos ]
        | Some false -> emit t 0 [ neg ]
        | None -> ()
    end
    else begin
      (* v(reg, f) ↔ v(next, f-1) *)
      let prev = var_of t ~node:(Circuit.Netlist.reg_next nl node) ~frame:(frame - 1) in
      emit ~link:true t frame [ neg; Sat.Lit.pos prev ];
      emit ~link:true t frame [ pos; Sat.Lit.neg prev ]
    end

let materialise_frame t frame =
  Array.iter (fun node -> encode_node t frame node) t.encode_order;
  Sat.Vec.push t.frame_var_limit (Varmap.num_vars t.varmap);
  Sat.Vec.push t.frame_clause_limit (Sat.Vec.length t.base)

let extend_to t k =
  if k < 0 then invalid_arg "Unroll.extend_to: negative depth";
  while t.depth < k do
    t.depth <- t.depth + 1;
    materialise_frame t t.depth
  done

let depth t = t.depth

let base_cnf t ~k =
  extend_to t k;
  let cnf = Sat.Cnf.create ~num_vars:(Sat.Vec.get t.frame_var_limit k) () in
  Sat.Vec.iter (fun (frame, clause) -> if frame <= k then Sat.Cnf.add_clause cnf clause) t.base;
  cnf

let instance t ~k =
  let cnf = base_cnf t ~k in
  Sat.Cnf.add_clause cnf [ Sat.Lit.neg (var_of t ~node:t.property ~frame:k) ];
  cnf

(* Every clause emitted while materialising frame f is tagged f, so a
   frame's delta is the contiguous base range between consecutive
   frame_clause_limit entries — concatenating the deltas for 0..k
   reproduces base_cnf ~k clause for clause. *)
let iter_delta t ~frame f =
  extend_to t frame;
  let lo = if frame = 0 then 0 else Sat.Vec.get t.frame_clause_limit (frame - 1) in
  let hi = Sat.Vec.get t.frame_clause_limit frame in
  for i = lo to hi - 1 do
    let _, clause = Sat.Vec.get t.base i in
    f clause
  done

let delta_cnf t ~frame =
  extend_to t frame;
  let cnf = Sat.Cnf.create ~num_vars:(Sat.Vec.get t.frame_var_limit frame) () in
  iter_delta t ~frame (Sat.Cnf.add_clause cnf);
  cnf

let frame_clauses t ~frame =
  let acc = ref [] in
  iter_delta t ~frame (fun clause -> acc := clause :: !acc);
  List.rev !acc

let num_vars_at t ~frame =
  extend_to t frame;
  Sat.Vec.get t.frame_var_limit frame

let clause_frame t i = fst (Sat.Vec.get t.base i)

let clause_is_link t i = Sat.Vec.get t.link_flags i

let num_base_clauses t = Sat.Vec.length t.base
