(* Explicit-state reachability oracle. *)

let test_counter_fails () =
  let nl = Circuit.Netlist.create () in
  let count = Circuit.Word.regs nl ~prefix:"c" ~width:3 ~init:(Some 0) in
  let inc, _ = Circuit.Word.increment nl count in
  Circuit.Word.connect nl count inc;
  let property = Circuit.Netlist.not_ nl (Circuit.Word.eq_const nl count 6) in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 6 -> ()
  | v -> Alcotest.failf "expected fails@6, got %a" Circuit.Reach.pp_verdict v

let test_fails_at_zero () =
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some true) in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl r in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 0 -> ()
  | v -> Alcotest.failf "expected fails@0, got %a" Circuit.Reach.pp_verdict v

let test_holds_with_diameter () =
  (* a 3-bit counter stepping by 2 from 0 visits the four even states and
     never reaches 7; the property keeps every bit in the cone *)
  let nl = Circuit.Netlist.create () in
  let count = Circuit.Word.regs nl ~prefix:"c" ~width:3 ~init:(Some 0) in
  let inc1, _ = Circuit.Word.increment nl count in
  let inc2, _ = Circuit.Word.increment nl inc1 in
  Circuit.Word.connect nl count inc2;
  let property = Circuit.Netlist.not_ nl (Circuit.Word.eq_const nl count 7) in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Holds { diameter } -> Alcotest.(check int) "diameter" 3 diameter
  | v -> Alcotest.failf "expected holds, got %a" Circuit.Reach.pp_verdict v

let test_cone_projection_ignores_irrelevant_state () =
  (* 12 irrelevant free-init registers would add 2^12 states; the cone
     projection must make the check instantaneous and still exact *)
  let nl = Circuit.Netlist.create () in
  let count = Circuit.Word.regs nl ~prefix:"c" ~width:3 ~init:(Some 0) in
  let inc, _ = Circuit.Word.increment nl count in
  Circuit.Word.connect nl count inc;
  let noise = Circuit.Word.regs nl ~prefix:"z" ~width:12 ~init:None in
  Circuit.Word.connect nl noise (Circuit.Word.rotate_left noise);
  let property = Circuit.Netlist.not_ nl (Circuit.Word.eq_const nl count 6) in
  match Circuit.Reach.check ~max_regs:8 nl ~property with
  | Circuit.Reach.Fails_at 6 -> ()
  | v -> Alcotest.failf "expected fails@6 despite noise, got %a" Circuit.Reach.pp_verdict v

let test_nondeterministic_init () =
  (* free-init register: both initial states explored *)
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:None in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl r in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 0 -> ()
  | v -> Alcotest.failf "expected fails@0 via nondet init, got %a" Circuit.Reach.pp_verdict v

let test_input_dependent_failure () =
  (* property false only when the input is high: counterexample at depth 0 *)
  let nl = Circuit.Netlist.create () in
  let x = Circuit.Netlist.input nl "x" in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some false) in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl x in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 0 -> ()
  | v -> Alcotest.failf "expected fails@0, got %a" Circuit.Reach.pp_verdict v

let test_too_large () =
  let nl = Circuit.Netlist.create () in
  let regs = Circuit.Word.regs nl ~prefix:"r" ~width:30 ~init:(Some 0) in
  Circuit.Word.connect nl regs regs;
  (* the property depends on all 30 registers, so no projection helps *)
  let property = Circuit.Netlist.not_ nl (Circuit.Word.all_ones nl regs) in
  match Circuit.Reach.check ~max_regs:10 nl ~property with
  | Circuit.Reach.Too_large -> ()
  | v -> Alcotest.failf "expected too_large, got %a" Circuit.Reach.pp_verdict v

let test_equal_verdict () =
  let open Circuit.Reach in
  Alcotest.(check bool) "eq holds" true (equal_verdict (Holds { diameter = 3 }) (Holds { diameter = 3 }));
  Alcotest.(check bool) "neq diam" false (equal_verdict (Holds { diameter = 3 }) (Holds { diameter = 4 }));
  Alcotest.(check bool) "eq fails" true (equal_verdict (Fails_at 2) (Fails_at 2));
  Alcotest.(check bool) "neq kinds" false (equal_verdict (Fails_at 2) Too_large)

let tests =
  [
    Alcotest.test_case "counter fails" `Quick test_counter_fails;
    Alcotest.test_case "fails at zero" `Quick test_fails_at_zero;
    Alcotest.test_case "holds with diameter" `Quick test_holds_with_diameter;
    Alcotest.test_case "cone projection" `Quick test_cone_projection_ignores_irrelevant_state;
    Alcotest.test_case "nondet init" `Quick test_nondeterministic_init;
    Alcotest.test_case "input-dependent" `Quick test_input_dependent_failure;
    Alcotest.test_case "too large" `Quick test_too_large;
    Alcotest.test_case "equal_verdict" `Quick test_equal_verdict;
  ]
