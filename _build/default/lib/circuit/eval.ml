type t = {
  netlist : Netlist.t;
  order : Netlist.node array; (* combinational nodes in topological order *)
  reg_index : (Netlist.node, int) Hashtbl.t;
  regs : Netlist.node array;
}

let compile nl =
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Eval.compile: " ^ msg));
  let n = Netlist.num_nodes nl in
  let visited = Array.make (max n 1) false in
  let order = ref [] in
  let rec visit node =
    if not visited.(node) then begin
      visited.(node) <- true;
      List.iter visit (Netlist.fanins (Netlist.gate nl node));
      order := node :: !order
    end
  in
  for node = 0 to n - 1 do
    visit node
  done;
  let regs = Array.of_list (Netlist.regs nl) in
  let reg_index = Hashtbl.create (Array.length regs) in
  Array.iteri (fun i r -> Hashtbl.replace reg_index r i) regs;
  { netlist = nl; order = Array.of_list (List.rev !order); reg_index; regs }

let netlist t = t.netlist

type state = bool array

type frame = bool array (* per node *)

let initial ?(resolve = fun _ -> false) t =
  Array.map
    (fun r -> match Netlist.reg_init t.netlist r with Some b -> b | None -> resolve r)
    t.regs

let state_of_regs t f = Array.map f t.regs

let reg_value_in t st r =
  match Hashtbl.find_opt t.reg_index r with
  | Some i -> st.(i)
  | None -> raise Not_found

let reg_value t st r = reg_value_in t st r

let cycle t st ~inputs =
  let n = Netlist.num_nodes t.netlist in
  let values = Array.make (max n 1) false in
  let eval node =
    match Netlist.gate t.netlist node with
    | Netlist.Input _ -> values.(node) <- inputs node
    | Netlist.Const b -> values.(node) <- b
    | Netlist.Not a -> values.(node) <- not values.(a)
    | Netlist.And (a, b) -> values.(node) <- values.(a) && values.(b)
    | Netlist.Or (a, b) -> values.(node) <- values.(a) || values.(b)
    | Netlist.Xor (a, b) -> values.(node) <- values.(a) <> values.(b)
    | Netlist.Mux (s, h, l) -> values.(node) <- (if values.(s) then values.(h) else values.(l))
    | Netlist.Reg _ -> values.(node) <- reg_value_in t st node
  in
  Array.iter eval t.order;
  let next = Array.map (fun r -> values.(Netlist.reg_next t.netlist r)) t.regs in
  (values, next)

let value frame node = frame.(node)

let run t ?resolve ~inputs ~cycles () =
  let rec loop i st acc =
    if i >= cycles then List.rev acc
    else begin
      let frame, st' = cycle t st ~inputs:(inputs ~cycle:i) in
      loop (i + 1) st' (frame :: acc)
    end
  in
  loop 0 (initial ?resolve t) []

let check_invariant t ?resolve ~inputs ~cycles ~property () =
  let rec loop i st =
    if i >= cycles then None
    else begin
      let frame, st' = cycle t st ~inputs:(inputs ~cycle:i) in
      if not (value frame property) then Some i else loop (i + 1) st'
    end
  in
  loop 0 (initial ?resolve t)
