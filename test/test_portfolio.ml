(* Portfolio subsystem: pool scheduling and cancellation, domain ownership,
   strategy races vs the sequential engines, and the deterministic-portfolio
   differential (Engine / Induction / Ltl outcomes must not depend on the
   number of workers). *)

module Pool = Portfolio.Pool

let outcome_char = function
  | Sat.Solver.Sat -> 's'
  | Sat.Solver.Unsat -> 'u'
  | Sat.Solver.Unknown -> '?'

let session_outcomes (r : Bmc.Session.result) =
  String.init (List.length r.per_depth) (fun i ->
      outcome_char (List.nth r.per_depth i).Bmc.Session.outcome)

let race_outcomes (r : Portfolio.result) =
  String.init (List.length r.per_depth) (fun i ->
      outcome_char (List.nth r.per_depth i).Portfolio.stat.Bmc.Session.outcome)

(* ------------------------------------------------------------------ *)
(* Pool basics.                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_list_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      let ys = Pool.map_list pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) ys)

let test_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "boom") in
      (match Pool.await fut with
      | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg
      | _ -> Alcotest.fail "expected the job's exception");
      (* the pool survives a failing job *)
      Alcotest.(check int) "pool still works" 7 (Pool.await (Pool.submit pool (fun () -> 7))))

let test_submit_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:1 () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"

let test_affinity_pins_worker () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let worker_of i =
        Pool.await (Pool.submit ~affinity:i pool (fun () -> (Domain.self () :> int)))
      in
      (* the same affinity always lands on the same domain; that is what
         lets racer jobs reuse their domain-confined session *)
      Alcotest.(check int) "affinity 0 stable" (worker_of 0) (worker_of 0);
      Alcotest.(check int) "affinity 1 stable" (worker_of 1) (worker_of 1);
      Alcotest.(check bool) "different affinities, different domains" true
        (worker_of 0 <> worker_of 1))

let test_cancel_latency () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let token = Pool.Token.create () in
      let fut =
        Pool.submit pool (fun () ->
            while not (Pool.Token.cancelled token) do
              Domain.cpu_relax ()
            done;
            Pool.wall ())
      in
      (* give the worker a moment to enter the loop, then cancel *)
      Unix.sleepf 0.02;
      let t_cancel = Pool.wall () in
      Pool.Token.cancel token;
      let t_exit = Pool.await fut in
      Alcotest.(check bool) "cooperative exit under a second" true
        (t_exit -. t_cancel < 1.0))

let test_queue_wait_telemetry () =
  let agg = Telemetry.Sink.aggregate () in
  let tel = Telemetry.create (Telemetry.Sink.of_aggregate agg) in
  Pool.with_pool ~telemetry:tel ~jobs:2 (fun pool ->
      ignore (Pool.map_list pool (fun x -> x) [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "one queue_wait span per job" 4
    (Telemetry.Sink.span_count agg "queue_wait")

(* ------------------------------------------------------------------ *)
(* Domain ownership.                                                   *)
(* ------------------------------------------------------------------ *)

let test_session_domain_confined () =
  let case = Circuit.Generators.ring ~len:4 () in
  let s =
    Bmc.Session.create ~policy:Bmc.Session.Persistent Bmc.Session.default_config case.netlist
      ~property:case.property
  in
  (* fine on the owning domain *)
  Bmc.Session.begin_instance s ~k:0;
  (* any instance-building call from another domain must be refused *)
  let refused =
    Domain.join
      (Domain.spawn (fun () ->
           match Bmc.Session.constrain s [] with
           | exception Invalid_argument _ -> true
           | _ -> false))
  in
  Alcotest.(check bool) "cross-domain call refused" true refused

(* ------------------------------------------------------------------ *)
(* Mode A: races.                                                      *)
(* ------------------------------------------------------------------ *)

let race_config ~max_depth =
  Bmc.Session.make_config ~mode:Bmc.Session.Static ~max_depth ()

let test_race_matches_sequential_holds () =
  let case = Circuit.Generators.ring ~len:6 ~noise:8 () in
  let seq =
    Bmc.Session.check ~config:(race_config ~max_depth:6) ~policy:Bmc.Session.Persistent
      case.netlist ~property:case.property
  in
  Pool.with_pool ~jobs:3 (fun pool ->
      let par =
        Portfolio.check_race ~config:(race_config ~max_depth:6) ~pool case.netlist
          ~property:case.property
      in
      Alcotest.(check string) "outcome string" (session_outcomes seq) (race_outcomes par);
      match (seq.verdict, par.verdict) with
      | Bmc.Session.Bounded_pass a, Bmc.Session.Bounded_pass b ->
        Alcotest.(check int) "same bound" a b
      | _ -> Alcotest.fail "expected Bounded_pass from both")

let test_race_finds_counterexample () =
  let case = Circuit.Generators.counter ~noise:6 ~bits:4 ~target:5 () in
  let seq =
    Bmc.Session.check ~config:(race_config ~max_depth:8) ~policy:Bmc.Session.Persistent
      case.netlist ~property:case.property
  in
  Pool.with_pool ~jobs:3 (fun pool ->
      let par =
        Portfolio.check_race ~config:(race_config ~max_depth:8) ~pool case.netlist
          ~property:case.property
      in
      Alcotest.(check string) "outcome string" (session_outcomes seq) (race_outcomes par);
      match (seq.verdict, par.verdict) with
      | Bmc.Session.Falsified ts, Bmc.Session.Falsified tp ->
        Alcotest.(check int) "same counterexample depth" ts.Bmc.Trace.depth tp.Bmc.Trace.depth;
        Alcotest.(check bool) "portfolio trace replays" true
          (Bmc.Trace.replay tp case.netlist ~property:case.property)
      | _ -> Alcotest.fail "expected Falsified from both")

let test_race_telemetry_and_cancellation () =
  let agg = Telemetry.Sink.aggregate () in
  let tel = Telemetry.create (Telemetry.Sink.of_aggregate agg) in
  let case = Circuit.Generators.parity_pipe ~stages:5 ~noise:16 () in
  let config =
    Bmc.Session.make_config ~mode:Bmc.Session.Static ~max_depth:5 ~telemetry:tel ()
  in
  Pool.with_pool ~telemetry:tel ~jobs:3 (fun pool ->
      let par = Portfolio.check_race ~config ~pool case.netlist ~property:case.property in
      let rounds = List.length par.per_depth in
      Alcotest.(check int) "one race event per depth" rounds
        (Telemetry.Sink.tally_value agg "race");
      let total_wins =
        List.fold_left (fun acc (_, n) -> acc + n) 0 par.Portfolio.wins
      in
      Alcotest.(check int) "every round has a winner" rounds total_wins;
      (* the acceptance gate: when a loser was cancelled, it left within a
         restart interval — bounded here by a generous wall-clock second *)
      List.iter
        (fun (rs : Portfolio.race_stat) ->
          if rs.Portfolio.cancelled > 0 then
            Alcotest.(check bool) "cancelled loser exits quickly" true
              (rs.Portfolio.max_cancel_latency < 1.0))
        par.per_depth;
      let cancelled =
        List.fold_left (fun acc (rs : Portfolio.race_stat) -> acc + rs.Portfolio.cancelled)
          0 par.per_depth
      in
      Alcotest.(check int) "cancellation counter matches rounds" cancelled
        (Telemetry.Sink.counter_value agg "race.cancelled");
      Alcotest.(check int) "one latency span per cancelled loser" cancelled
        (Telemetry.Sink.span_count agg "cancel_latency"))

let test_race_depth_must_increase () =
  let case = Circuit.Generators.ring ~len:4 () in
  Pool.with_pool ~jobs:2 (fun pool ->
      let race =
        Portfolio.create_race ~pool (race_config ~max_depth:4) case.netlist
          ~property:case.property
      in
      ignore (Portfolio.race_depth race ~k:1);
      match Portfolio.race_depth race ~k:1 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on a repeated depth")

let test_race_custom_racers () =
  let case = Circuit.Generators.ring ~len:4 () in
  Pool.with_pool ~jobs:2 (fun pool ->
      (match
         Portfolio.create_race ~racers:[] ~pool (race_config ~max_depth:4) case.netlist
           ~property:case.property
       with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on an empty ensemble");
      (* a two-racer ensemble with custom restart units must still agree
         with the sequential run *)
      let seq =
        Bmc.Session.check ~config:(race_config ~max_depth:4) ~policy:Bmc.Session.Persistent
          case.netlist ~property:case.property
      in
      let par =
        Portfolio.check_race ~config:(race_config ~max_depth:4)
          ~racers:
            [
              Portfolio.racer ~name:"standard" ~restart_base:32 Bmc.Session.Standard;
              Portfolio.racer ~name:"dynamic" ~restart_base:200 Bmc.Session.Dynamic;
            ]
          ~pool case.netlist ~property:case.property
      in
      Alcotest.(check string) "outcome string" (session_outcomes seq) (race_outcomes par))

(* Adaptive rotation: a lone racer with a one-conflict budget cannot be
   cancelled (there is no winner to cancel it), so the first depth whose
   instance needs more than one conflict deterministically exhausts the
   budget and recycles the slot onto the rotation queue. *)
let test_race_rotation () =
  let case = Circuit.Generators.parity_pipe ~stages:12 () in
  Pool.with_pool ~jobs:1 (fun pool ->
      let starved name = Portfolio.racer ~name ~conflicts:1 Bmc.Session.Standard in
      let race =
        Portfolio.create_race
          ~racers:[ starved "starved0" ]
          ~rotation:[ starved "rot1"; starved "rot2" ]
          ~pool (race_config ~max_depth:24) case.netlist ~property:case.property
      in
      let rotations = ref [] in
      let rec drive k =
        if k <= 24 && Portfolio.race_rotated race < 1 then begin
          let rs = Portfolio.race_depth race ~k in
          if rs.Portfolio.rotated > 0 then rotations := rs :: !rotations;
          drive (k + 1)
        end
      in
      drive 0;
      Alcotest.(check bool) "rotation fired" true (Portfolio.race_rotated race >= 1);
      (* per-round counts account for the run total *)
      Alcotest.(check int) "per-round rotation counts sum"
        (Portfolio.race_rotated race)
        (List.fold_left
           (fun acc (rs : Portfolio.race_stat) -> acc + rs.Portfolio.rotated)
           0 !rotations);
      (* the rotated-in heuristic is tallied (zero wins so far), the
         recycled slot keeps its history *)
      let names = List.map fst (Portfolio.race_wins race) in
      List.iter
        (fun n -> Alcotest.(check bool) (n ^ " tallied") true (List.mem n names))
        [ "starved0"; "rot1" ])

(* ------------------------------------------------------------------ *)
(* Clause sharing (satellite): the exchange must not change any answer. *)
(* ------------------------------------------------------------------ *)

let test_race_share_differential () =
  (* sharing on ≡ sharing off ≡ sequential, on a holding circuit and on a
     falsifiable one — imported clauses are sound consequences of the same
     netlist, so only the route to the answer may differ, never the answer *)
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let config = race_config ~max_depth:7 in
      let seq =
        Bmc.Session.check ~config ~policy:Bmc.Session.Persistent case.netlist
          ~property:case.property
      in
      Pool.with_pool ~jobs:3 (fun pool ->
          let off =
            Portfolio.check_race ~config ~pool case.netlist ~property:case.property
          in
          let ex = Share.Exchange.create () in
          let on =
            Portfolio.check_race ~config ~share:ex ~pool case.netlist
              ~property:case.property
          in
          Alcotest.(check string)
            (case.name ^ ": sharing off = sequential")
            (session_outcomes seq) (race_outcomes off);
          Alcotest.(check string)
            (case.name ^ ": sharing on = sequential")
            (session_outcomes seq) (race_outcomes on);
          (match (seq.verdict, on.verdict) with
          | Bmc.Session.Bounded_pass a, Bmc.Session.Bounded_pass b ->
            Alcotest.(check int) (case.name ^ ": same bound") a b
          | Bmc.Session.Falsified ts, Bmc.Session.Falsified tp ->
            Alcotest.(check int)
              (case.name ^ ": same counterexample depth")
              ts.Bmc.Trace.depth tp.Bmc.Trace.depth
          | _ -> Alcotest.failf "%s: verdicts diverge under sharing" case.name);
          let st = Share.Exchange.stats ex in
          Alcotest.(check bool) "imported <= exported" true
            (st.Share.Exchange.imported <= st.Share.Exchange.exported)))
    [
      Circuit.Generators.ring ~len:6 ~noise:8 ();
      Circuit.Generators.counter ~noise:6 ~bits:4 ~target:5 ();
    ]

let test_batch_share_differential () =
  (* two checks of the same physical netlist share one exchange; results
     must be bit-identical to the unshared batch *)
  let case = Circuit.Generators.ring ~len:6 ~noise:8 () in
  let items = [ ("a", case.netlist, case.property); ("b", case.netlist, case.property) ] in
  let config = race_config ~max_depth:6 in
  Pool.with_pool ~jobs:2 (fun pool ->
      let off = Portfolio.check_batch ~config ~pool items in
      let on = Portfolio.check_batch ~config ~share:true ~pool items in
      List.iter2
        (fun (n, a) (n', b) ->
          Alcotest.(check string) "name" n n';
          Alcotest.(check string) (n ^ ": outcomes unchanged by sharing")
            (session_outcomes a) (session_outcomes b))
        off on)

(* ------------------------------------------------------------------ *)
(* The deterministic-portfolio differential (satellite): outcomes at     *)
(* --jobs 2 and 4 must equal the sequential run, per engine.            *)
(* ------------------------------------------------------------------ *)

let differential_cases () =
  [
    Circuit.Generators.counter ~noise:6 ~bits:4 ~target:5 ();
    Circuit.Generators.shift_in ~noise:6 ~len:4 ();
    Circuit.Generators.ring ~noise:8 ~len:6 ();
    Circuit.Generators.parity_pipe ~noise:8 ~stages:4 ();
  ]

let test_batch_differential_engine () =
  let cases = differential_cases () in
  let config = race_config ~max_depth:6 in
  let seq =
    List.map
      (fun (case : Circuit.Generators.case) ->
        session_outcomes
          (Bmc.Session.check ~config ~policy:Bmc.Session.Persistent case.netlist
             ~property:case.property))
      cases
  in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let batch =
            Portfolio.check_batch ~pool ~config
              (List.map
                 (fun (case : Circuit.Generators.case) ->
                   (case.name, case.netlist, case.property))
                 cases)
          in
          List.iter2
            (fun a (_, r) ->
              Alcotest.(check string)
                (Printf.sprintf "engine outcomes, jobs=%d" jobs)
                a (session_outcomes r))
            seq batch))
    [ 2; 4 ]

let test_batch_differential_induction () =
  let cases = differential_cases () in
  let prove (case : Circuit.Generators.case) =
    let r =
      Bmc.Induction.prove ~config:(race_config ~max_depth:6) case.netlist
        ~property:case.property
    in
    String.concat ""
      (List.map
         (fun (st : Bmc.Induction.step_stat) ->
           Printf.sprintf "%c%c"
             (outcome_char st.Bmc.Induction.base_outcome)
             (match st.Bmc.Induction.step_outcome with
             | Some o -> outcome_char o
             | None -> '-'))
         r.Bmc.Induction.per_depth)
  in
  let seq = List.map prove cases in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let batch = Pool.map_list pool prove cases in
          List.iter2
            (fun a b ->
              Alcotest.(check string)
                (Printf.sprintf "induction outcomes, jobs=%d" jobs)
                a b)
            seq batch))
    [ 2; 4 ]

let test_batch_differential_ltl () =
  let cases = differential_cases () in
  let check (case : Circuit.Generators.case) =
    let r =
      Bmc.Ltl.check ~config:(race_config ~max_depth:6) case.netlist
        (Bmc.Ltl.always (Bmc.Ltl.atom case.property))
    in
    String.init (List.length r.Bmc.Ltl.per_depth) (fun i ->
        outcome_char (List.nth r.Bmc.Ltl.per_depth i).Bmc.Session.outcome)
  in
  let seq = List.map check cases in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let batch = Pool.map_list pool check cases in
          List.iter2
            (fun a b ->
              Alcotest.(check string) (Printf.sprintf "ltl outcomes, jobs=%d" jobs) a b)
            seq batch))
    [ 2; 4 ]

(* check_batch used to group by physical netlist identity (assq), so two
   parses of the same circuit never shared an exchange.  Grouping is by
   structural digest now: separately-parsed copies are one group. *)
let test_batch_groups_by_digest () =
  let case = Circuit.Generators.ring ~len:6 ~noise:8 () in
  let text = Circuit.Textio.to_string case.netlist ~property:case.property in
  let parse name =
    let nl, p = Circuit.Textio.parse_string text in
    (name, nl, p)
  in
  let other = Circuit.Generators.lfsr ~width:6 ~noise:8 () in
  (* two physically distinct parses of one circuit, plus an unrelated one *)
  let items = [ parse "a"; ("c", other.netlist, other.property); parse "b" ] in
  let parsed_digest =
    let nl, _ = Circuit.Textio.parse_string text in
    Circuit.Netlist.digest nl
  in
  (match Portfolio.batch_share_groups items with
  | [ (digest, names) ] ->
    Alcotest.(check string) "group key is the parses' digest" parsed_digest digest;
    Alcotest.(check (list string)) "both parses, input order" [ "a"; "b" ] names
  | groups -> Alcotest.failf "expected one group, got %d" (List.length groups));
  (* structurally distinct circuits never group *)
  Alcotest.(check int) "distinct circuits form no group" 0
    (List.length
       (Portfolio.batch_share_groups
          [ ("a", case.netlist, case.property); ("c", other.netlist, other.property) ]))

let test_batch_share_across_parses () =
  (* the differential the digest grouping enables: sharing across two
     separately-parsed copies must leave every verdict unchanged *)
  let case = Circuit.Generators.ring ~len:6 ~noise:8 () in
  let text = Circuit.Textio.to_string case.netlist ~property:case.property in
  let parse name =
    let nl, p = Circuit.Textio.parse_string text in
    (name, nl, p)
  in
  let items = [ parse "a"; parse "b" ] in
  let config = race_config ~max_depth:6 in
  Pool.with_pool ~jobs:2 (fun pool ->
      let off = Portfolio.check_batch ~config ~pool items in
      let on = Portfolio.check_batch ~config ~share:true ~pool items in
      List.iter2
        (fun (n, a) (n', b) ->
          Alcotest.(check string) "name" n n';
          Alcotest.(check string) (n ^ ": outcomes unchanged by cross-parse sharing")
            (session_outcomes a) (session_outcomes b))
        off on)

let test_batch_results_in_input_order () =
  let cases = differential_cases () in
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Portfolio.check_batch ~pool ~config:(race_config ~max_depth:5)
          (List.map
             (fun (case : Circuit.Generators.case) -> (case.name, case.netlist, case.property))
             cases)
      in
      Alcotest.(check (list string)) "names in input order"
        (List.map (fun (case : Circuit.Generators.case) -> case.name) cases)
        (List.map fst results))

let tests =
  [
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
    Alcotest.test_case "job exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "submit after shutdown rejected" `Quick test_submit_after_shutdown_rejected;
    Alcotest.test_case "affinity pins jobs to workers" `Quick test_affinity_pins_worker;
    Alcotest.test_case "token cancellation is prompt" `Quick test_cancel_latency;
    Alcotest.test_case "queue-wait telemetry" `Quick test_queue_wait_telemetry;
    Alcotest.test_case "sessions are domain-confined" `Quick test_session_domain_confined;
    Alcotest.test_case "race = sequential on a holding circuit" `Quick
      test_race_matches_sequential_holds;
    Alcotest.test_case "race finds the same counterexample" `Quick test_race_finds_counterexample;
    Alcotest.test_case "race telemetry and cancellation latency" `Quick
      test_race_telemetry_and_cancellation;
    Alcotest.test_case "race depths must increase" `Quick test_race_depth_must_increase;
    Alcotest.test_case "custom racer ensembles" `Quick test_race_custom_racers;
    Alcotest.test_case "adaptive racer rotation" `Quick test_race_rotation;
    Alcotest.test_case "differential: sharing on/off (race)" `Quick test_race_share_differential;
    Alcotest.test_case "differential: sharing on/off (batch)" `Quick
      test_batch_share_differential;
    Alcotest.test_case "batch groups by structural digest" `Quick test_batch_groups_by_digest;
    Alcotest.test_case "differential: sharing across parses" `Quick
      test_batch_share_across_parses;
    Alcotest.test_case "differential: engine (jobs 2/4)" `Quick test_batch_differential_engine;
    Alcotest.test_case "differential: induction (jobs 2/4)" `Quick
      test_batch_differential_induction;
    Alcotest.test_case "differential: ltl (jobs 2/4)" `Quick test_batch_differential_ltl;
    Alcotest.test_case "batch keeps input order" `Quick test_batch_results_in_input_order;
  ]
