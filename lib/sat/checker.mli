(** Independent refutation checking (the paper's reference [18]:
    Zhang & Malik, "Validating SAT solvers using an independent
    resolution-based checker", DATE 2003).

    The solver can record, besides the pseudo-ID dependency graph, the
    {e clausal proof}: every learnt clause (with its literals) and every
    deletion, in order — the DRAT format's content.  This module replays
    such a proof with its own, deliberately simple unit propagation and
    accepts it only if every learnt clause is a {e reverse unit propagation}
    (RUP) consequence of the clauses active at that point, ending in the
    empty clause.  A bug anywhere in the solver's learning, watching or
    deletion logic surfaces here as a rejected proof.

    The checker shares no search code with the solver, but it does use the
    two standard pieces of checker machinery (as drat-trim does): the
    unit-propagation fixpoint of the formula is kept as a persistent root
    assignment that queries stack their negated candidate on top of, and
    each clause watches two literals so a query only visits clauses whose
    watch it falsified.  That keeps certification roughly linear in proof
    length instead of quadratic; every visited clause is still re-examined
    literal by literal over a plain array — no arena, no blocking
    literals, none of the solver's data structures. *)

type event =
  | Learnt of Lit.t list
      (** clause added by conflict analysis, in derivation order; the empty
          clause terminates a refutation *)
  | Imported of Lit.t list
      (** clause imported from a sibling solver through the learnt-clause
          exchange.  Sound over the shared formula (the export filter only
          releases clauses derivable from the unguarded circuit clauses)
          but not RUP-derivable from {e this} solver's trace alone, so the
          checker admits it as an axiom — the trust boundary of a sharing
          run's proof *)
  | Deleted of Lit.t list  (** clause removed by database reduction *)

val check_refutation : Cnf.t -> event list -> (unit, string) result
(** Replay the proof against the formula.  [Ok ()] iff every [Learnt]
    clause passes the RUP test against the originals plus the previously
    accepted (and not yet deleted) learnt and imported clauses, and the
    proof derives the empty clause.  [Imported] clauses are admitted
    without a RUP test (see {!event}). *)

val to_drat : event list -> string
(** Serialise in the standard DRAT text format (one clause per line,
    deletions prefixed with [d], DIMACS literals, 0-terminated).  Imported
    clauses use a non-standard [i] prefix; when any are present the output
    opens with a comment line documenting the trust boundary. *)

val of_drat : string -> event list
(** Parse DRAT text (including the [i]-prefixed import extension).
    @raise Failure on malformed input. *)
