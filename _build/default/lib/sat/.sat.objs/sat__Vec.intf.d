lib/sat/vec.mli:
