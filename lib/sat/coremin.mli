(** Destructive unsat-core minimisation (Dershowitz, Hanna & Nadel,
    "A scalable algorithm for minimal unsatisfiable core extraction",
    SAT 2006 — the selector-variable formulation).

    The proof-derived core ({!Solver.unsat_core}) is whatever set of
    original clauses the refutation happened to touch; it is exact but
    rarely {e minimal}.  This module re-solves the candidate core on its
    own, each clause guarded by a fresh {e selector} variable ([s_i] added
    negated to clause [i], assumed true to activate it):

    - every UNSAT answer's failed assumptions name the selectors actually
      used, shrinking the candidate wholesale (clause-set refinement);
    - then each remaining clause is dropped in turn and the rest re-solved
      — UNSAT means the clause was redundant and it is removed for good,
      SAT proves it necessary (destructive minimisation).

    When the loop completes, no clause can be removed: the core is minimal.
    A {!budget} bounds the work (the result is then still a correct core,
    just not necessarily minimal).  The final core is re-proved from
    scratch by an independent solver with clausal (DRAT) logging and
    certified by {!Checker.check_refutation} — every core this module
    reports is machine-checked unsatisfiable, not merely believed so. *)

type budget = {
  max_solves : int option;  (** solver calls, counting the certification *)
  max_seconds : float option;  (** CPU seconds, via [Sys.time] *)
}

val no_budget : budget

type stats = {
  initial : int;  (** candidate clauses in *)
  final : int;  (** clauses kept *)
  solves : int;  (** solver calls spent (certification included) *)
  seconds : float;  (** CPU seconds spent *)
  minimal : bool;
      (** the destructive loop completed: no kept clause is removable *)
  certified : bool;
      (** the kept set (plus assumptions) was re-proved UNSAT and the DRAT
          proof accepted by {!Checker.check_refutation} *)
}

val minimise :
  ?budget:budget ->
  ?assumptions:Lit.t list ->
  ?certify:bool ->
  num_vars:int ->
  clauses:(int * Lit.t list) list ->
  unit ->
  int list * stats
(** [minimise ~num_vars ~clauses ()] minimises the candidate core
    [clauses], a list of [(caller id, literals)] pairs whose conjunction —
    together with [assumptions], each forced as a unit — is expected to be
    unsatisfiable.  Returns the kept caller ids (in input order) and the
    run's statistics.  [num_vars] is the variable space of the original
    formula (selectors are allocated above it and above every mentioned
    variable).  [assumptions] (default none) are activation-style literals
    the core is relative to; they are assumed during minimisation and added
    as unit clauses for certification.  [certify] (default [true]) runs the
    independent re-proof; switch it off for throwaway calls.

    If the candidate turns out satisfiable (it was not a core — e.g. the
    local projection of a sharing run whose imports were load-bearing), the
    input is returned unchanged with [minimal = false] and
    [certified = false]: the caller keeps a well-defined, if unimproved,
    result. *)
