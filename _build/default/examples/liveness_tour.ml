(* Beyond invariants: bounded LTL model checking.

   The paper's Section 2 notes that "model checking a property with a
   finite-size witness or counter-example can be translated into a series
   of SAT problems" and treats the invariant GP as the worked example.
   This tour exercises the general translation (Biere et al., the paper's
   reference [1]): liveness and response properties whose counterexamples
   are (k,l)-lassos rather than finite paths — all solved under the same
   core-refined decision ordering.

     dune exec examples/liveness_tour.exe
*)

let describe nl result =
  match result.Bmc.Ltl.verdict with
  | Bmc.Ltl.Falsified w ->
    Format.printf "FALSIFIED at depth %d — %s@."
      w.Bmc.Ltl.depth
      (match w.Bmc.Ltl.loop_start with
      | Some l -> Printf.sprintf "lasso looping back to state %d" l
      | None -> "finite informative prefix");
    ignore nl
  | Bmc.Ltl.Bounded_pass k -> Format.printf "no counterexample up to depth %d@." k
  | Bmc.Ltl.Aborted k -> Format.printf "aborted at depth %d@." k

let () =
  let case = Circuit.Generators.ring ~len:5 () in
  let nl = case.netlist in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:12 () in
  let check text =
    Format.printf "%-28s ... " text;
    describe nl (Bmc.Ltl.check ~config nl (Bmc.Ltl.parse nl text))
  in

  Format.printf "circuit: a 5-stage token ring that only advances on 'tick'@.@.";

  (* Safety as LTL: two stages never hold the token together. *)
  check "G !(t0 & t1)";
  (* Response without fairness fails: the environment can stop ticking —
     the counterexample is a lasso, not a finite path. *)
  check "G (t1 -> F t0)";
  (* The same response under a fairness assumption holds. *)
  check "G F tick -> G (t1 -> F t0)";
  (* Step-response with X: if the token is at 0 and we tick, it moves. *)
  check "G ((tick & t0) -> X t1)";
  (* Until: the token sits at position 0 until the first tick. *)
  check "t0 U tick";
  (* ... which fails (never tick), but the weak version holds: *)
  check "(t0 U tick) | G t0";

  Format.printf
    "@.Lasso counterexamples are validated before being reported: the engine@.\
     re-simulates the prefix, checks that the loop closes, and re-evaluates@.\
     the formula on the concrete lasso (Bmc.Ltl.holds_on_lasso).@."
