type verdict =
  | Holds of { diameter : int }
  | Fails_at of int
  | Blowup of { iterations : int; nodes : int }

let equal_verdict a b =
  match (a, b) with
  | Holds { diameter = d1 }, Holds { diameter = d2 } -> d1 = d2
  | Fails_at k1, Fails_at k2 -> k1 = k2
  | Blowup { iterations = i1; nodes = n1 }, Blowup { iterations = i2; nodes = n2 } ->
    i1 = i2 && n1 = n2
  | (Holds _ | Fails_at _ | Blowup _), _ -> false

let pp_verdict ppf = function
  | Holds { diameter } -> Format.fprintf ppf "holds (diameter %d)" diameter
  | Fails_at k -> Format.fprintf ppf "fails at depth %d" k
  | Blowup { iterations; nodes } ->
    Format.fprintf ppf "BDD blow-up after %d images (%d nodes)" iterations nodes

(* Variable order: register i owns present variable 2i and next-state
   variable 2i+1 (interleaving keeps the next→present renaming monotone);
   inputs follow after all state variables. *)
let check ?(node_limit = 2_000_000) nl ~property =
  (match Circuit.Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Symbolic.check: " ^ msg));
  let cone = Circuit.Netlist.transitive_fanin nl [ property ] in
  let regs = Array.of_list (List.filter cone (Circuit.Netlist.regs nl)) in
  let inputs = Array.of_list (List.filter cone (Circuit.Netlist.inputs nl)) in
  let nregs = Array.length regs in
  let man = Bdd.manager ~node_limit () in
  let present_var i = 2 * i in
  let next_var i = (2 * i) + 1 in
  let input_var j = (2 * nregs) + j in
  let reg_index = Hashtbl.create (max nregs 1) in
  Array.iteri (fun i r -> Hashtbl.replace reg_index r i) regs;
  let input_index = Hashtbl.create (max (Array.length inputs) 1) in
  Array.iteri (fun j n -> Hashtbl.replace input_index n j) inputs;
  (* combinational functions over present-state and input variables *)
  let memo = Hashtbl.create 256 in
  let rec fn node =
    match Hashtbl.find_opt memo node with
    | Some b -> b
    | None ->
      let b =
        match Circuit.Netlist.gate nl node with
        | Circuit.Netlist.Input _ -> (
          match Hashtbl.find_opt input_index node with
          | Some j -> Bdd.var man (input_var j)
          | None -> Bdd.zero man (* out of cone: value irrelevant, pin to 0 *))
        | Circuit.Netlist.Const b -> if b then Bdd.one man else Bdd.zero man
        | Circuit.Netlist.Not a -> Bdd.not_ man (fn a)
        | Circuit.Netlist.And (a, b) -> Bdd.and_ man (fn a) (fn b)
        | Circuit.Netlist.Or (a, b) -> Bdd.or_ man (fn a) (fn b)
        | Circuit.Netlist.Xor (a, b) -> Bdd.xor_ man (fn a) (fn b)
        | Circuit.Netlist.Mux (s, h, l) -> Bdd.ite man (fn s) (fn h) (fn l)
        | Circuit.Netlist.Reg _ -> (
          match Hashtbl.find_opt reg_index node with
          | Some i -> Bdd.var man (present_var i)
          | None -> Bdd.zero man)
      in
      Hashtbl.replace memo node b;
      b
  in
  let iterations = ref 0 in
  try
    let bad = Bdd.not_ man (fn property) in
    (* transition relation: ⋀ᵢ (nextᵢ ↔ fᵢ) *)
    let trans = ref (Bdd.one man) in
    Array.iteri
      (fun i r ->
        let f = fn (Circuit.Netlist.reg_next nl r) in
        trans := Bdd.and_ man !trans (Bdd.xnor_ man (Bdd.var man (next_var i)) f))
      regs;
    let trans = !trans in
    let init =
      Array.to_list regs
      |> List.mapi (fun i r -> (i, Circuit.Netlist.reg_init nl r))
      |> List.fold_left
           (fun acc (i, init) ->
             match init with
             | Some true -> Bdd.and_ man acc (Bdd.var man (present_var i))
             | Some false -> Bdd.and_ man acc (Bdd.nvar man (present_var i))
             | None -> acc)
           (Bdd.one man)
    in
    let quantified =
      List.init nregs present_var @ List.init (Array.length inputs) input_var
    in
    let rename_next_to_present b = Bdd.rename man (fun v -> v - 1) b in
    let image r =
      rename_next_to_present (Bdd.exists man quantified (Bdd.and_ man r trans))
    in
    (* frontier BFS so the first violation depth is exact *)
    let rec loop reached frontier depth =
      if not (Bdd.is_zero (Bdd.and_ man frontier bad)) then Fails_at depth
      else begin
        incr iterations;
        let next = image frontier in
        let fresh = Bdd.and_ man next (Bdd.not_ man reached) in
        if Bdd.is_zero fresh then Holds { diameter = depth }
        else loop (Bdd.or_ man reached fresh) fresh (depth + 1)
      end
    in
    loop init init 0
  with Bdd.Node_limit ->
    Blowup { iterations = !iterations; nodes = Bdd.num_nodes man }
