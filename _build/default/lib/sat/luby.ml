(* Knuth's closed form: find the smallest k with i <= 2^k - 1; if i is
   exactly 2^k - 1 the term is 2^(k-1), otherwise recurse on
   i - (2^(k-1) - 1). *)
let rec term i =
  if i < 1 then invalid_arg "Luby.term";
  let rec find k = if (1 lsl k) - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if (1 lsl k) - 1 = i then 1 lsl (k - 1) else term (i - ((1 lsl (k - 1)) - 1))

type t = { base : int; mutable index : int }

let create ~base =
  if base < 1 then invalid_arg "Luby.create";
  { base; index = 0 }

let next t =
  t.index <- t.index + 1;
  t.base * term t.index
