(* Budgets, statistics and the pure simplification engine behind
   [Solver.inprocess].  The engine works on a snapshot of the live clause
   database and answers with an ordered action script; the solver replays
   it against the arena / proof / DRAT state.  Keeping the engine pure
   makes the derive-before-delete discipline auditable in one place: a new
   clause is always emitted before any Delete of the clauses it was
   resolved from. *)

type config = {
  max_occurrences : int;
  growth : int;
  max_probes : int;
  rounds : int;
  time_slice : float option;
}

let default =
  { max_occurrences = 10; growth = 0; max_probes = 128; rounds = 2; time_slice = None }

let light = { max_occurrences = 6; growth = 0; max_probes = 64; rounds = 1; time_slice = None }

let aggressive =
  { max_occurrences = 20; growth = 8; max_probes = 512; rounds = 4; time_slice = None }

let config_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "default" -> Ok default
  | "light" -> Ok light
  | "aggressive" -> Ok aggressive
  | spec ->
    let parse_kv acc kv =
      match acc with
      | Error _ -> acc
      | Ok cfg -> (
        match String.split_on_char '=' kv with
        | [ k; v ] -> (
          match (String.trim k, int_of_string_opt (String.trim v)) with
          | _, None -> Error (Printf.sprintf "inprocess budget: %S is not an integer" v)
          | "occ", Some n when n >= 0 -> Ok { cfg with max_occurrences = n }
          | "growth", Some n when n >= 0 -> Ok { cfg with growth = n }
          | "probes", Some n when n >= 0 -> Ok { cfg with max_probes = n }
          | "rounds", Some n when n >= 0 -> Ok { cfg with rounds = n }
          | "ms", Some 0 -> Ok { cfg with time_slice = None }
          | "ms", Some n when n > 0 ->
            Ok { cfg with time_slice = Some (float_of_int n /. 1000.) }
          | (("occ" | "growth" | "probes" | "rounds" | "ms") as k), Some _ ->
            Error (Printf.sprintf "inprocess budget: %s must be non-negative" k)
          | k, Some _ -> Error (Printf.sprintf "inprocess budget: unknown key %S" k))
        | _ -> Error (Printf.sprintf "inprocess budget: expected key=value, got %S" kv))
    in
    List.fold_left parse_kv (Ok default) (String.split_on_char ',' spec)

let pp_config ppf c =
  Format.fprintf ppf "occ=%d growth=%d probes=%d rounds=%d" c.max_occurrences c.growth
    c.max_probes c.rounds;
  match c.time_slice with
  | Some s -> Format.fprintf ppf " ms=%.0f" (s *. 1000.)
  | None -> ()

type stats = {
  mutable probes : int;
  mutable probe_failed : int;
  mutable satisfied_removed : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated : int;
  mutable resolvents : int;
  mutable rounds_run : int;
  mutable time : float;
}

let fresh_stats () =
  {
    probes = 0;
    probe_failed = 0;
    satisfied_removed = 0;
    subsumed = 0;
    strengthened = 0;
    eliminated = 0;
    resolvents = 0;
    rounds_run = 0;
    time = 0.0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "eliminated=%d subsumed=%d strengthened=%d satisfied=%d probes=%d failed=%d \
     resolvents=%d"
    s.eliminated s.subsumed s.strengthened s.satisfied_removed s.probes s.probe_failed
    s.resolvents

(* ------------------------------------------------------------------ *)
(* The engine.                                                         *)
(* ------------------------------------------------------------------ *)

type clause_in = { lits : Lit.t list; deletable : bool; redundant : bool }

type action =
  | Delete of int
  | Strengthen of { target : int; parent : int; lits : Lit.t list; id : int }
  | Resolvent of { pos : int; neg : int; lits : Lit.t list; id : int; pivot : Lit.var }
  | Eliminate of { v : Lit.var; pos : Lit.t list list }

module LitSet = Set.Make (Lit)

type cl = {
  mutable set : LitSet.t option; (* None = removed from the working store *)
  c_deletable : bool;
  c_redundant : bool;
}

type state = {
  mutable cls : cl array;
  mutable n : int;
  occ : (Lit.t, int list ref) Hashtbl.t; (* may hold stale indices *)
  mutable acts : action list; (* reverse chronological *)
  st : stats;
}

let occ_list st l =
  match Hashtbl.find_opt st.occ l with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace st.occ l r;
    r

let push_clause st ~deletable ~redundant set =
  if st.n = Array.length st.cls then begin
    let bigger =
      Array.make (max 16 (2 * st.n)) { set = None; c_deletable = true; c_redundant = false }
    in
    Array.blit st.cls 0 bigger 0 st.n;
    st.cls <- bigger
  end;
  let idx = st.n in
  st.cls.(idx) <- { set = Some set; c_deletable = deletable; c_redundant = redundant };
  st.n <- st.n + 1;
  LitSet.iter (fun l -> occ_list st l := idx :: !(occ_list st l)) set;
  idx

(* Occurrence lists are cleaned lazily, like [Simplify]'s. *)
let live_occurrences st l =
  let r = occ_list st l in
  let live =
    List.filter
      (fun i -> match st.cls.(i).set with Some s -> LitSet.mem l s | None -> false)
      !r
  in
  r := live;
  live

let tautology set = LitSet.exists (fun l -> LitSet.mem (Lit.negate l) set) set

let over ~deadline = match deadline with Some d -> Sys.time () > d | None -> false

(* Plain subsumption and self-subsuming resolution.  Only irredundant
   clauses act as subsumer / resolution parent: deleting an irredundant
   clause on the strength of a learnt one would break the invariant that
   the irredundant set alone implies the formula (the learnt clause may be
   reduced away later). *)
let subsumption_round st ~deadline =
  let changed = ref false in
  let bound = st.n in
  let ci = ref 0 in
  while !ci < bound && not (over ~deadline) do
    (match st.cls.(!ci) with
    | { set = Some c; c_redundant = false; _ } when not (LitSet.is_empty c) ->
      (* plain subsumption via the rarest literal's occurrence list *)
      let pivot =
        LitSet.fold
          (fun l best ->
            match best with
            | None -> Some l
            | Some b ->
              if List.length (live_occurrences st l) < List.length (live_occurrences st b)
              then Some l
              else best)
          c None
      in
      (match pivot with
      | None -> ()
      | Some p ->
        List.iter
          (fun di ->
            if di <> !ci then
              match st.cls.(di) with
              | { set = Some d; c_deletable = true; _ } when LitSet.subset c d ->
                st.cls.(di).set <- None;
                st.acts <- Delete di :: st.acts;
                st.st.subsumed <- st.st.subsumed + 1;
                changed := true
              | _ -> ())
          (live_occurrences st p));
      (* self-subsuming resolution: D ∋ ¬l with c \ {l} ⊆ D loses ¬l *)
      LitSet.iter
        (fun l ->
          let rest = LitSet.remove l c in
          List.iter
            (fun di ->
              if di <> !ci then
                match st.cls.(di) with
                | { set = Some d; c_deletable = true; c_redundant = false }
                  when LitSet.mem (Lit.negate l) d && LitSet.subset rest d ->
                  let d' = LitSet.remove (Lit.negate l) d in
                  st.cls.(di).set <- None;
                  let id = push_clause st ~deletable:true ~redundant:false d' in
                  st.acts <-
                    Strengthen { target = di; parent = !ci; lits = LitSet.elements d'; id }
                    :: st.acts;
                  st.st.strengthened <- st.st.strengthened + 1;
                  changed := true
                | _ -> ())
            (live_occurrences st (Lit.negate l)))
        c
    | _ -> ());
    incr ci
  done;
  !changed

(* Bounded variable elimination.  A variable is eliminable when it is
   unassigned, not frozen, every live occurrence is deletable, and the
   irredundant occurrence counts fit the budget; the resolvent set (minus
   tautologies and level-0-satisfied clauses) must not grow the database
   beyond [growth].  Redundant occurrences are simply deleted — they are
   implied by the remaining irredundant clauses. *)
let eliminate_round cfg st ~num_vars ~frozen ~value ~deadline eliminated =
  let changed = ref false in
  let v = ref 0 in
  while !v < num_vars && not (over ~deadline) do
    let var = !v in
    if (not eliminated.(var)) && (not (frozen var)) && value (Lit.pos var) = -1 then begin
      let pos_all = live_occurrences st (Lit.pos var) in
      let neg_all = live_occurrences st (Lit.neg var) in
      if List.for_all (fun i -> st.cls.(i).c_deletable) pos_all
         && List.for_all (fun i -> st.cls.(i).c_deletable) neg_all
      then begin
        let irr = List.filter (fun i -> not st.cls.(i).c_redundant) in
        let pos = irr pos_all and neg = irr neg_all in
        let np = List.length pos and nn = List.length neg in
        if np <= cfg.max_occurrences && nn <= cfg.max_occurrences then begin
          let set_of i = Option.get st.cls.(i).set in
          let resolvents =
            List.concat_map
              (fun pi ->
                List.filter_map
                  (fun ni ->
                    let r =
                      LitSet.union
                        (LitSet.remove (Lit.pos var) (set_of pi))
                        (LitSet.remove (Lit.neg var) (set_of ni))
                    in
                    if tautology r || LitSet.exists (fun l -> value l = 1) r then None
                    else Some (pi, ni, r))
                  neg)
              pos
          in
          if List.length resolvents <= np + nn + cfg.growth then begin
            (* derive first, then save the reconstruction witness, then
               delete every remaining occurrence (redundant ones too) *)
            List.iter
              (fun (pi, ni, r) ->
                let id = push_clause st ~deletable:true ~redundant:false r in
                st.acts <-
                  Resolvent
                    { pos = pi; neg = ni; lits = LitSet.elements r; id; pivot = var }
                  :: st.acts;
                st.st.resolvents <- st.st.resolvents + 1)
              resolvents;
            st.acts <-
              Eliminate { v = var; pos = List.map (fun i -> LitSet.elements (set_of i)) pos }
              :: st.acts;
            List.iter
              (fun i ->
                if st.cls.(i).set <> None then begin
                  st.cls.(i).set <- None;
                  st.acts <- Delete i :: st.acts
                end)
              (pos_all @ neg_all);
            eliminated.(var) <- true;
            st.st.eliminated <- st.st.eliminated + 1;
            changed := true
          end
        end
      end
    end;
    incr v
  done;
  !changed

let simplify cfg stats ~num_vars ~frozen ~value ~deadline clauses =
  let st =
    {
      cls =
        Array.map
          (fun (c : clause_in) ->
            { set = Some (LitSet.of_list c.lits); c_deletable = c.deletable;
              c_redundant = c.redundant })
          clauses;
      n = Array.length clauses;
      occ = Hashtbl.create 512;
      acts = [];
      st = stats;
    }
  in
  Array.iteri
    (fun i cl ->
      match cl.set with
      | Some set -> LitSet.iter (fun l -> occ_list st l := i :: !(occ_list st l)) set
      | None -> ())
    st.cls;
  let eliminated = Array.make (max num_vars 1) false in
  let round () =
    let s = subsumption_round st ~deadline in
    let e = eliminate_round cfg st ~num_vars ~frozen ~value ~deadline eliminated in
    stats.rounds_run <- stats.rounds_run + 1;
    s || e
  in
  let rec iterate n = if n > 0 && (not (over ~deadline)) && round () then iterate (n - 1) in
  iterate cfg.rounds;
  List.rev st.acts
