(** CNF preprocessing: subsumption, self-subsuming resolution and bounded
    variable elimination (Eén–Biere's SatELite recipe).

    Preprocessing rewrites the formula into an equisatisfiable one that is
    usually smaller and faster to solve; a satisfying assignment of the
    simplified formula extends to one of the original through
    {!result.reconstruct} (eliminated variables are fixed in reverse
    elimination order so that their saved occurrence lists are satisfied).

    Preprocessing deliberately does {e not} compose with unsat-core
    extraction or DRAT logging — resolvents have no home in the original
    clause numbering — so the BMC engines never use it; it serves the
    standalone DIMACS solver ([satcheck --preprocess]). *)

type result = {
  simplified : Cnf.t;
  reconstruct : bool array -> bool array;
      (** extend a model of [simplified] (indexed by the {e original}
          variable numbering, which is preserved) to a model of the input *)
  eliminated_vars : int;
  subsumed_clauses : int;
  strengthened_clauses : int;
}

val preprocess :
  ?max_occurrences:int -> ?rounds:int -> ?frozen:Lit.var list -> Cnf.t -> result
(** [preprocess cnf] applies, per round, subsumption + self-subsuming
    resolution followed by bounded variable elimination, until a fixpoint
    or [rounds] (default 3).  Variables occurring more than
    [max_occurrences] times (default 10) are never eliminated, and an
    elimination must not grow the clause count.  Variable numbering is
    preserved (eliminated variables simply stop occurring).  [frozen]
    variables (default none) are exempt from elimination — callers that
    will later solve under assumptions must freeze the assumption
    variables, otherwise an eliminated assumption variable no longer
    constrains the simplified formula and the answer can differ. *)
