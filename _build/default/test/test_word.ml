(* Word-level arithmetic checked against machine integers, via simulation of
   the constructed combinational logic. *)

let eval_comb nl outputs ~input_values =
  (* evaluate a pure-combinational netlist by a throwaway simulation *)
  let sim = Circuit.Eval.compile nl in
  let frame, _ = Circuit.Eval.cycle sim (Circuit.Eval.initial sim) ~inputs:input_values in
  List.map (fun node -> Circuit.Eval.value frame node) outputs

let word_value bits = List.fold_right (fun b acc -> (2 * acc) + if b then 1 else 0) bits 0

let test_const () =
  let nl = Circuit.Netlist.create () in
  let w = Circuit.Word.const nl ~width:6 43 in
  let bits = eval_comb nl (Array.to_list w) ~input_values:(fun _ -> false) in
  Alcotest.(check int) "const 43" 43 (word_value bits)

let test_const_truncates () =
  let nl = Circuit.Netlist.create () in
  let w = Circuit.Word.const nl ~width:4 0xff in
  let bits = eval_comb nl (Array.to_list w) ~input_values:(fun _ -> false) in
  Alcotest.(check int) "truncated to width" 15 (word_value bits)

let with_two_words width f =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Word.inputs nl ~prefix:"a" ~width in
  let b = Circuit.Word.inputs nl ~prefix:"b" ~width in
  f nl a b

let drive width a_val b_val a b node =
  if Array.exists (fun n -> n = node) a then
    let rec idx i = if a.(i) = node then i else idx (i + 1) in
    (a_val lsr idx 0) land 1 = 1
  else if Array.exists (fun n -> n = node) b then
    let rec idx i = if b.(i) = node then i else idx (i + 1) in
    (b_val lsr idx 0) land 1 = 1
  else
    (ignore width;
     false)

let prop_add =
  QCheck.Test.make ~name:"ripple-carry add matches integer add" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (x, y) ->
      with_two_words 8 (fun nl a b ->
          let sum, carry = Circuit.Word.add nl a b in
          let outs = Array.to_list sum @ [ carry ] in
          let bits = eval_comb nl outs ~input_values:(drive 8 x y a b) in
          let sum_bits = List.filteri (fun i _ -> i < 8) bits in
          let carry_bit = List.nth bits 8 in
          word_value sum_bits = (x + y) land 255 && carry_bit = (x + y > 255)))

let prop_increment =
  QCheck.Test.make ~name:"increment matches +1" ~count:200
    QCheck.(int_bound 255)
    (fun x ->
      with_two_words 8 (fun nl a b ->
          let inc, _ = Circuit.Word.increment nl a in
          let bits = eval_comb nl (Array.to_list inc) ~input_values:(drive 8 x 0 a b) in
          word_value bits = (x + 1) land 255))

let prop_decrement =
  QCheck.Test.make ~name:"decrement matches -1, borrow iff zero" ~count:200
    QCheck.(int_bound 255)
    (fun x ->
      with_two_words 8 (fun nl a b ->
          let dec, borrow = Circuit.Word.decrement nl a in
          let bits =
            eval_comb nl (Array.to_list dec @ [ borrow ]) ~input_values:(drive 8 x 0 a b)
          in
          let dec_bits = List.filteri (fun i _ -> i < 8) bits in
          let borrow_bit = List.nth bits 8 in
          word_value dec_bits = (x - 1) land 255 && borrow_bit = (x = 0)))

let prop_comparisons =
  QCheck.Test.make ~name:"eq / eq_const / is_zero / all_ones" ~count:300
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (x, y) ->
      with_two_words 6 (fun nl a b ->
          let outs =
            [
              Circuit.Word.eq nl a b;
              Circuit.Word.eq_const nl a y;
              Circuit.Word.is_zero nl a;
              Circuit.Word.all_ones nl a;
            ]
          in
          match eval_comb nl outs ~input_values:(drive 6 x y a b) with
          | [ e; ec; z; o ] -> e = (x = y) && ec = (x = y) && z = (x = 0) && o = (x = 63)
          | _ -> false))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let prop_one_counters =
  QCheck.Test.make ~name:"exactly_one / at_most_one" ~count:300
    QCheck.(int_bound 255)
    (fun x ->
      with_two_words 8 (fun nl a b ->
          let outs = [ Circuit.Word.exactly_one nl a; Circuit.Word.at_most_one nl a ] in
          match eval_comb nl outs ~input_values:(drive 8 x 0 a b) with
          | [ ex; am ] -> ex = (popcount x = 1) && am = (popcount x <= 1)
          | _ -> false))

let prop_mul =
  QCheck.Test.make ~name:"shift-add multiply matches integer multiply" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (x, y) ->
      with_two_words 8 (fun nl a b ->
          let product = Circuit.Word.mul nl a b in
          let bits = eval_comb nl (Array.to_list product) ~input_values:(drive 8 x y a b) in
          word_value bits = x * y land 255))

let prop_bitwise =
  QCheck.Test.make ~name:"bitwise and/or/xor/not" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (x, y) ->
      with_two_words 8 (fun nl a b ->
          let ands = Circuit.Word.and_ nl a b in
          let ors = Circuit.Word.or_ nl a b in
          let xors = Circuit.Word.xor_ nl a b in
          let nots = Circuit.Word.not_ nl a in
          let outs =
            Array.to_list ands @ Array.to_list ors @ Array.to_list xors @ Array.to_list nots
          in
          let bits = eval_comb nl outs ~input_values:(drive 8 x y a b) in
          let take n l = List.filteri (fun i _ -> i >= n * 8 && i < (n + 1) * 8) l in
          word_value (take 0 bits) = x land y
          && word_value (take 1 bits) = x lor y
          && word_value (take 2 bits) = x lxor y
          && word_value (take 3 bits) = lnot x land 255))

let test_rotate () =
  let a = [| 10; 11; 12; 13 |] in
  Alcotest.(check (array int)) "rotate_left" [| 13; 10; 11; 12 |] (Circuit.Word.rotate_left a);
  Alcotest.(check (array int)) "rotate empty" [||] (Circuit.Word.rotate_left [||])

let test_mismatch () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Word.inputs nl ~prefix:"a" ~width:3 in
  let b = Circuit.Word.inputs nl ~prefix:"b" ~width:4 in
  Alcotest.check_raises "width mismatch" (Invalid_argument "Word: width mismatch") (fun () ->
      ignore (Circuit.Word.and_ nl a b))

let tests =
  [
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "const truncates" `Quick test_const_truncates;
    Alcotest.test_case "rotate" `Quick test_rotate;
    Alcotest.test_case "width mismatch" `Quick test_mismatch;
    QCheck_alcotest.to_alcotest prop_add;
    QCheck_alcotest.to_alcotest prop_increment;
    QCheck_alcotest.to_alcotest prop_decrement;
    QCheck_alcotest.to_alcotest prop_comparisons;
    QCheck_alcotest.to_alcotest prop_one_counters;
    QCheck_alcotest.to_alcotest prop_mul;
    QCheck_alcotest.to_alcotest prop_bitwise;
  ]
