(** The incremental BMC session — one solver/unroller substrate under every
    engine.

    The paper's conclusion anticipates combining the ordering refinement
    with incremental SAT (Whittemore et al.; Eén–Sörensson).  A session
    owns one {!Unroll} and (under the [Persistent] policy) one long-lived
    {!Sat.Solver}, and packages the per-depth mechanics every engine
    needs, so the engines reduce to small drivers:

    - {e frame deltas}: extending to depth k loads only the clauses of
      newly materialised frames ({!Unroll.iter_delta}) — each frame enters
      the solver exactly once, making clause construction O(delta) per
      depth instead of the O(k²)-across-a-run of per-depth
      {!Unroll.instance} rebuilds;
    - {e activation-guarded constraints}: instance-local clauses (¬P(V^k),
      LTL witness shapes, uniqueness constraints) are guarded behind a
      fresh activation literal, assumed for this instance and retired with
      a unit clause when the next instance begins (Eén–Sörensson);
    - {e ordering refresh}: before each solve the decision order is
      recomputed from the {!Score} ranking fed by previous cores and
      installed on the live solver via {!Sat.Solver.set_order};
    - {e stats deltas} and the shared "depth" telemetry event, so
      per-instance numbers from a persistent solver are comparable with
      fresh-solver runs.

    The [Fresh] policy runs the same instance sequence on a new solver per
    depth — bit-compatible with the seed {!Engine} behaviour — so the
    incremental-vs-rebuild comparison (benchmark A3) is a one-flag ablation
    over identical instances.

    {b Domain-ownership rule.}  A session — and the solver(s) under it — is
    confined to the domain that called {!create}.  Every instance-building
    or solving entry point ({!begin_instance}, {!constrain}, {!fresh_lit},
    {!solve_instance}, {!model}, and therefore {!trace}) asserts this and
    raises [Invalid_argument] when called from another domain.  The
    {!Portfolio} layer builds on the rule: each racer's session is created
    lazily {e inside} its pinned pool worker and never leaves it; the
    coordinator communicates only through immutable results, cancellation
    tokens and the (coordinator-confined) shared {!Score}.  Read-only
    accessors ({!score}, {!last_core_vars}, ...) are not asserted but are
    only meaningful once the owning domain has quiesced. *)

(** {1 Configuration (shared by every engine)} *)

(** A pluggable ordering heuristic — the ordering laboratory's unit of
    registration (see the [Ordering] library for the registry of named
    heuristics).  [c_order] plays the role the built-in modes hard-code:
    produce the solver's rank mode for the depth-k instance.  [c_hooks],
    when present, builds the {!Sat.Solver.hooks} callbacks — built once
    per session under [Persistent] (heuristic state survives across
    depths) and once per instance under [Fresh].  A [custom] value holds
    mutable heuristic state behind its closures, so obtain a fresh one
    per session and never share it between solvers. *)
type custom = {
  c_name : string;  (** registry name; what {!pp_mode} prints *)
  c_uses_cores : bool;
      (** whether [c_order] consumes the folded unsat-core ranking (drives
          proof logging and score folding exactly like [Static]) *)
  c_order : Unroll.t -> Score.t -> k:int -> Sat.Order.mode;
  c_hooks : (Unroll.t -> Score.t -> solver:Sat.Solver.t -> Sat.Solver.hooks) option;
}

type mode =
  | Standard  (** plain BMC: pure VSIDS (the baseline column of Table 1) *)
  | Static  (** the paper's refined ordering as the primary key throughout *)
  | Dynamic  (** refined ordering with fallback to VSIDS (Section 3.3) *)
  | Shtrichman  (** the related-work time-axis static ordering *)
  | Custom of custom  (** a registered heuristic from the ordering laboratory *)

(** Core-quality policy: what kind of unsat core feeds the ranking and the
    reports. *)
type core_mode =
  | Core_fast  (** the proof-derived core as-is (the default) *)
  | Core_exact
      (** force proof logging so exact cores are available in every mode;
          under a portfolio race the coordinator additionally stitches the
          racers' proof shards ({!exact_core_vars}) *)
  | Core_minimal
      (** additionally run destructive, checker-certified core minimisation
          ({!Sat.Coremin}) on every UNSAT instance before folding *)

type config = {
  mode : mode;
  weighting : Score.weighting;
  coi : bool;  (** restrict encoding to the property cone *)
  budget : Sat.Solver.budget;  (** per-instance solver budget *)
  max_depth : int;  (** highest unrolling depth to try *)
  collect_cores : bool;
      (** force proof logging even in modes that do not consume cores (used
          by the overhead ablation) *)
  core_mode : core_mode;  (** core quality policy (default [Core_fast]) *)
  coremin_budget : Sat.Coremin.budget;
      (** work bound for [Core_minimal]'s per-instance minimisation
          (default {!Sat.Coremin.no_budget}: run to a minimal core) *)
  restart_base : int option;
      (** override the solver's Luby restart unit (default [None] keeps the
          solver default of 128).  The portfolio gives each racer a
          distinct unit so restart schedules — and therefore the clauses
          they learn and share — diversify. *)
  inprocess : Sat.Inprocess.config option;
      (** run proof-aware inprocessing ({!Sat.Solver.inprocess}) at every
          depth boundary under this budget ([Persistent] policy only;
          ignored under [Fresh]).  The session computes the freeze set
          from its {!Varmap} before each run — see {!freeze_nodes}.
          Default [None]: no inprocessing, bit-compatible with the seed. *)
  telemetry : Telemetry.t;
      (** structured-tracing handle, threaded into every solver the session
          creates; the session additionally emits one "depth" event per
          solved instance.  Default {!Telemetry.disabled} — a no-op. *)
  recorder : Obs.Recorder.t option;
      (** flight recorder, installed on every solver the session creates
          ({!Sat.Solver.set_recorder}); the session additionally records
          one [Depth] event per solved instance.  Default [None]. *)
}

val default_config : config
(** [Standard] mode, [Linear] weighting, no COI, no budget,
    [max_depth = 20]. *)

val make_config :
  ?mode:mode ->
  ?weighting:Score.weighting ->
  ?coi:bool ->
  ?budget:Sat.Solver.budget ->
  ?max_depth:int ->
  ?collect_cores:bool ->
  ?core_mode:core_mode ->
  ?coremin_budget:Sat.Coremin.budget ->
  ?restart_base:int ->
  ?inprocess:Sat.Inprocess.config ->
  ?telemetry:Telemetry.t ->
  ?recorder:Obs.Recorder.t ->
  unit ->
  config

val uses_cores : mode -> bool
(** Does this mode consume unsat cores between instances? *)

val order_mode : config -> Unroll.t -> Score.t -> k:int -> Sat.Order.mode
(** The solver ordering for the depth-k instance: VSIDS, a {!Score} rank
    snapshot over the current variable range, or the Shtrichman time-axis
    ranking.  Hoisted here from the per-engine copies. *)

val stats_delta : before:Sat.Stats.t -> after:Sat.Stats.t -> Sat.Stats.t
(** Per-instance counters from a persistent solver's cumulative totals
    (gauges like [max_decision_level] and [arena_bytes] keep the [after]
    value). *)

val pp_mode : Format.formatter -> mode -> unit
(** Built-in modes print their keyword; [Custom c] prints [c.c_name]. *)

val mode_string : mode -> string

val mode_of_string : string -> mode option
(** The four built-in modes only; custom heuristics are resolved by name
    through the [Ordering] registry at the CLI layer. *)

val all_modes : mode list
(** The four built-in modes (registry heuristics are enumerated by the
    [Ordering] library, not here). *)

val pp_core_mode : Format.formatter -> core_mode -> unit

val core_mode_of_string : string -> core_mode option
(** ["fast"], ["exact"] or ["minimal"]. *)

(** {1 Per-instance statistics} *)

type depth_stat = {
  depth : int;
  mode : mode;  (** the ordering this instance was configured with *)
  outcome : Sat.Solver.outcome;
  decisions : int;
  dec_rank : int;
      (** decisions that branched on a positively ranked variable — the
          per-variable decision-source histogram's refined-ordering bucket
          (see {!Sat.Order.decided_by_rank}) *)
  dec_vsids : int;  (** decisions taken on VSIDS activity alone *)
  implications : int;  (** BCP-derived assignments, Figure 7's metric *)
  conflicts : int;
  core_size : int;  (** clauses in the unsat core; 0 if not collected *)
  core_var_count : int;
  core_new : int;
      (** core variables absent from the previous depth's core (0 unless
          this instance was UNSAT with proof logging on) *)
  core_dropped : int;
      (** previous-depth core variables gone from this core *)
  core_pre : int;
      (** clauses in the core {e before} minimisation (equals [core_size]
          unless [Core_minimal] shrank it) *)
  coremin_time : float;
      (** CPU seconds spent minimising this instance's core (0 outside
          [Core_minimal]) *)
  coremin_certified : bool;
      (** the reported core passed {!Sat.Coremin}'s independent checker
          re-proof ([true] when no minimisation ran) *)
  switched : bool;  (** dynamic mode fell back to VSIDS in this instance *)
  time : float;  (** CPU seconds solving this instance *)
  build_time : float;
      (** CPU seconds building this instance (frame deltas + constraints +
          ordering refresh, or unroll + solver setup under [Fresh]) *)
  bcp_time : float;
      (** CPU seconds of unit propagation inside the solve (0 unless
          telemetry was enabled — timing the hot path costs clock reads) *)
  cdg_time : float;
      (** CPU seconds of CDG bookkeeping inside the solve (0 unless
          telemetry was enabled — the Section 3.1 overhead, per depth) *)
  inpr_elim : int;
      (** variables eliminated by the depth-boundary inprocessing run(s)
          preceding this instance (0 with inprocessing off) *)
  inpr_subsumed : int;  (** clauses removed by subsumption at the boundary *)
  inpr_strengthened : int;  (** self-subsuming resolutions at the boundary *)
  inpr_probe_failed : int;  (** failed-literal probes at the boundary *)
  inpr_time : float;  (** CPU seconds of boundary inprocessing *)
}

val emit_depth_event : Telemetry.t -> depth_stat -> unit
(** Publish a depth_stat as a "depth" telemetry event (no-op when the
    handle is disabled).  {!solve_instance} calls this itself; exposed for
    engines with hand-rolled instance loops so all traces share one
    schema. *)

(** {1 The session} *)

type policy =
  | Fresh
      (** a new solver per instance over a snapshot CNF — the seed
          per-depth-rebuild behaviour, kept as the ablation baseline *)
  | Persistent
      (** one long-lived solver; frame deltas, activation-guarded
          constraints, learnt clauses / activities / CDG surviving across
          depths — the default substrate *)

val pp_policy : Format.formatter -> policy -> unit

val policy_of_string : string -> policy option

type t

val create :
  ?policy:policy ->
  ?constrain_init:bool ->
  ?score:Score.t ->
  ?learn_cores:bool ->
  ?fold_cores:bool ->
  ?share:Share.Exchange.endpoint ->
  config ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  t
(** A session over the circuit.  [policy] defaults to [Persistent].
    [constrain_init] is passed to {!Unroll.create} (k-induction's step
    session turns it off).  [score] shares a ranking with another session
    (base and step cases of induction feed one ranking); by default the
    session owns a fresh one.  [learn_cores] (default [true]): when
    [false], cores are neither extracted nor folded into the score even in
    [Static]/[Dynamic] mode — the step case of induction, whose instances
    are not part of the correlated refutation sequence, runs this way.
    [fold_cores] (default [true]): when [false], cores are still extracted
    (subject to [learn_cores] / [collect_cores]) but {e not} folded into
    the score by {!solve_instance} — the portfolio racers run this way, so
    the shared ranking is updated once per depth with the {e winner's}
    core by the coordinator, not three times by whichever racer finishes
    first.  [share] attaches the session's solver to a learnt-clause
    exchange ({!Share.Exchange}): untainted short learnt clauses are
    published as packed literal keys, and siblings' clauses are remapped
    through this session's {!Varmap} and attached at solve-start/restart
    boundaries (unmappable ones are counted dropped-stale).  The endpoint
    must be confined to the same domain as the session.  The session
    captures the calling domain as its owner (see the domain-ownership
    rule above).
    @raise Invalid_argument if the netlist does not validate, or if
    [share] is combined with the [Fresh] policy (a fresh instance bakes
    unguarded instance constraints into its formula, so nothing it learns
    is safe to exchange and the taint filter cannot tell). *)

val policy : t -> policy

val unroll : t -> Unroll.t

val score : t -> Score.t

val begin_instance : ?frames:int -> t -> k:int -> unit
(** Open the depth-k instance.  [frames] (default [k]) is the highest
    frame the instance ranges over — LTL's lasso encoding needs frame
    [k+1] for the loop-closing successor state.  Under [Persistent] this
    retires the previous instance's activation literal with a unit clause,
    loads the deltas of any not-yet-loaded frames into the live solver
    (each frame exactly once for the session's lifetime), and allocates a
    fresh activation literal for this instance; under [Fresh] it snapshots
    {!Unroll.base_cnf} as the instance formula.  Constraints are then
    added with {!constrain} and the instance solved with
    {!solve_instance}.
    @raise Invalid_argument if [frames < k], or under [Persistent] if [k]
    does not increase between instances. *)

val constrain : t -> Sat.Lit.t list -> unit
(** Add an instance-local clause: guarded behind the activation literal on
    the live solver ([Persistent]), or appended to the snapshot formula
    ([Fresh]).  Retired automatically when the next instance begins.
    @raise Invalid_argument if no instance is open. *)

val fresh_lit : t -> Sat.Lit.t
(** A positive literal over a fresh variable for instance-local Tseitin
    encodings (LTL witness shapes, simple-path disequalities).  Allocated
    through the shared {!Varmap} under a reserved pseudo-node in
    [Persistent] mode, so it can never collide with circuit variables of
    frames materialised later.
    @raise Invalid_argument if no instance is open. *)

val var_of : t -> node:Circuit.Netlist.node -> frame:int -> Sat.Lit.var
(** The SAT variable of a circuit node at a frame (via the unroller). *)

val freeze_nodes : t -> Circuit.Netlist.node list -> unit
(** Exempt the given circuit nodes — at {e every} frame — from variable
    elimination by depth-boundary inprocessing.  Engines whose instance
    constraints revisit already-loaded frames must register the nodes those
    constraints mention (k-induction: the property and the registers; LTL:
    the formula atoms and the registers); plain BMC constrains only the
    newest frame, whose variables do not exist yet at boundary time, so it
    needs no registration.  The session itself already freezes the top
    loaded frame (the next transition delta resolves against it), keeps
    activation literals frozen, and — with clause sharing on — freezes all
    circuit variables.  Negative (pseudo-)nodes are ignored.  No-op unless
    [config.inprocess] is set. *)

val solve_instance : t -> depth_stat
(** Refresh the decision ordering from the score ({!Sat.Solver.set_order}
    on the live solver, or the creation mode of the per-instance solver),
    solve under this instance's activation assumption, extract the unsat
    core when proof logging is on, fold it into the score in core-consuming
    modes, and emit the "depth" telemetry event.  Counters in the returned
    stat are per-instance deltas.
    @raise Invalid_argument if no instance is open. *)

val solve_depth : t -> k:int -> depth_stat
(** One step of the {!check} loop: open the depth-[k] instance, constrain
    the session's property to fail at frame [k], and solve.  The unit of
    work of callers that interleave depths with other concerns — the
    portfolio racers, the serve layer's warm-session cache.  On SAT the
    instance stays open so {!trace} works; the depth rule of
    {!begin_instance} applies unchanged.
    @raise Invalid_argument as {!begin_instance}. *)

val model : t -> bool array
(** @raise Invalid_argument unless the last {!solve_instance} was SAT. *)

val trace : t -> Trace.t
(** The counterexample trace of the open instance's model (frames
    0..[k]).
    @raise Invalid_argument as {!model}. *)

val last_core : t -> int list
(** Core clause indices of the last {!solve_instance} (meaningful against
    the solver's own clause numbering; empty unless UNSAT with proof
    logging). *)

val last_core_vars : t -> Sat.Lit.var list
(** Variables of the last instance's unsat core — the paper's [unsatVars]
    (empty unless UNSAT with proof logging).  Under clause sharing this is
    the exact {e local-shard} projection; {!exact_core_vars} stitches the
    cross-solver core. *)

val solver_id : t -> int
(** The global solver id of the session's (current) solver: the exchange
    endpoint id when sharing, 0 otherwise.  0 under [Fresh] before the
    first solve. *)

val exact_core_vars : t -> siblings:(int -> t option) -> Sat.Lit.var list
(** The {e exact} cross-solver core variables of the last UNSAT instance,
    in this session's variable numbering: the stitched proof walk follows
    import cross-edges into sibling sessions' shards ([siblings] resolves a
    session by solver id — {!solver_id}; never called for this session's
    own id) and remaps foreign core-clause variables through the siblings'
    Varmap keys.  Falls back to {!last_core_vars} (the local projection)
    when a shard cannot be resolved or proof logging is off.
    {b Coordinator-only}: call strictly after every involved session's
    owning domain has quiesced — the walk reads sibling state without
    synchronisation. *)

val loaded_clauses : t -> int
(** [Persistent] only: total frame-delta clauses loaded into the live
    solver so far.  Because each frame loads exactly once, after solving
    to depth k this equals {!Unroll.num_base_clauses} — the O(delta)
    property the tests assert.  0 under [Fresh]. *)

val solver_stats : t -> Sat.Stats.t
(** Cumulative statistics of the underlying solver ([Persistent]: the
    live solver's running totals; [Fresh]: the last instance's solver). *)

(** {1 The unified invariant driver} *)

type verdict =
  | Falsified of Trace.t
      (** counterexample found (and successfully replayed) at
          [Trace.depth] *)
  | Bounded_pass of int  (** every instance up to this depth was UNSAT *)
  | Aborted of int  (** budget exhausted while solving this depth *)

type result = {
  verdict : verdict;
  per_depth : depth_stat list;  (** ascending depth *)
  total_time : float;
  total_decisions : int;
  total_implications : int;
  total_conflicts : int;
}

val pp_verdict : Format.formatter -> verdict -> unit

val check :
  ?config:config ->
  ?share:Share.Exchange.endpoint ->
  policy:policy ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** The paper's [refine_order_bmc] (Figure 5) over a session: for
    k = 0, 1, 2, ... solve the depth-k instance under the configured
    ordering; on SAT extract, replay and report the counterexample; on
    UNSAT refine the ordering from the core and deepen; on budget
    exhaustion abort.  [Engine.run] is this with [~policy:Fresh],
    [Incremental.run] with [~policy:Persistent].  [share] attaches the
    session to a learnt-clause exchange, as in {!create}.
    @raise Invalid_argument if the netlist does not validate, and
    [Failure] if a counterexample fails to replay (a solver or encoder
    bug — surfaced loudly rather than reported as a result). *)
