bin/satcheck.ml: Arg Array Cmd Cmdliner Format Fun List Sat Term
