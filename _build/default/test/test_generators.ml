(* Benchmark generators: analytic verdicts vs the reachability oracle. *)

let check_case (c : Circuit.Generators.case) =
  match c.expect with
  | None -> ()
  | Some expect -> (
    match (expect, Circuit.Reach.check c.netlist ~property:c.property) with
    | Circuit.Generators.Holds, Circuit.Reach.Holds _ -> ()
    | Circuit.Generators.Fails_at k, Circuit.Reach.Fails_at k' when k = k' -> ()
    | _, Circuit.Reach.Too_large -> () (* oracle gave up; nothing to check *)
    | _, v ->
      Alcotest.failf "%s: expected %a, oracle says %a" c.name Circuit.Generators.pp_expect
        expect Circuit.Reach.pp_verdict v)

let test_tiny_suite_verdicts () = List.iter check_case (Circuit.Generators.tiny_suite ())

let test_all_cases_validate () =
  List.iter
    (fun (c : Circuit.Generators.case) ->
      match Circuit.Netlist.validate c.netlist with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" c.name msg)
    (Circuit.Generators.suite () @ Circuit.Generators.tiny_suite ())

let test_suite_size_and_naming () =
  let suite = Circuit.Generators.suite () in
  Alcotest.(check int) "37 instances, as in Table 1" 37 (List.length suite);
  let names = List.map (fun (c : Circuit.Generators.case) -> c.name) suite in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_noise_grows_but_preserves_verdict () =
  let plain = Circuit.Generators.counter ~bits:3 ~target:5 () in
  let noisy = Circuit.Generators.counter ~bits:3 ~target:5 ~noise:6 () in
  Alcotest.(check bool) "noise adds nodes" true
    (Circuit.Netlist.num_nodes noisy.netlist > Circuit.Netlist.num_nodes plain.netlist);
  (* noise registers are nondeterministic but property-irrelevant *)
  match Circuit.Reach.check ~max_regs:24 noisy.netlist ~property:noisy.property with
  | Circuit.Reach.Fails_at 5 -> ()
  | Circuit.Reach.Too_large -> Alcotest.fail "should still be enumerable"
  | v -> Alcotest.failf "noise changed the verdict: %a" Circuit.Reach.pp_verdict v

let test_noise_outside_cone () =
  let noisy = Circuit.Generators.ring ~len:4 ~noise:8 () in
  let cone = Circuit.Netlist.transitive_fanin noisy.netlist [ noisy.property ] in
  let noise_regs =
    List.filter
      (fun r ->
        match Circuit.Netlist.name_of noisy.netlist r with
        | Some name -> String.length name >= 5 && String.sub name 0 5 = "noise"
        | None -> false)
      (Circuit.Netlist.regs noisy.netlist)
  in
  Alcotest.(check bool) "has noise regs" true (List.length noise_regs = 8);
  List.iter
    (fun r -> Alcotest.(check bool) "noise reg outside property cone" false (cone r))
    noise_regs

let test_by_name () =
  (match Circuit.Generators.by_name "traffic" with
  | Some c -> Alcotest.(check string) "found" "traffic" c.name
  | None -> Alcotest.fail "traffic not found");
  match Circuit.Generators.by_name "no-such-case" with
  | None -> ()
  | Some _ -> Alcotest.fail "bogus name resolved"

let test_factor_expectations () =
  (* the generator's own brute-force expectation must agree with BMC *)
  List.iter
    (fun (bits, target) ->
      let c = Circuit.Generators.factor ~bits ~target () in
      let r =
        Bmc.Engine.run ~config:(Bmc.Engine.config ~max_depth:2 ()) c.netlist
          ~property:c.property
      in
      match (c.expect, r.verdict) with
      | Some (Circuit.Generators.Fails_at 0), Bmc.Engine.Falsified t ->
        Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth
      | Some Circuit.Generators.Holds, Bmc.Engine.Bounded_pass _ -> ()
      | e, v ->
        Alcotest.failf "factor%d_t%d: expect %s, got %a" bits target
          (match e with
          | Some x -> Format.asprintf "%a" Circuit.Generators.pp_expect x
          | None -> "?")
          Bmc.Engine.pp_verdict v)
    [ (4, 15); (4, 6); (5, 21); (6, 35); (3, 1 * 5) ]

let test_fig7_case_is_deep () =
  let c = Circuit.Generators.fig7_case () in
  Alcotest.(check bool) "deep enough for a per-depth plot" true (c.suggested_depth >= 30)

let test_deterministic_construction () =
  let a = Circuit.Generators.lfsr ~width:6 ~noise:4 () in
  let b = Circuit.Generators.lfsr ~width:6 ~noise:4 () in
  Alcotest.(check int) "same node count" (Circuit.Netlist.num_nodes a.netlist)
    (Circuit.Netlist.num_nodes b.netlist);
  Alcotest.(check string) "same text form"
    (Circuit.Textio.to_string a.netlist ~property:a.property)
    (Circuit.Textio.to_string b.netlist ~property:b.property)

let tests =
  [
    Alcotest.test_case "tiny suite vs oracle" `Slow test_tiny_suite_verdicts;
    Alcotest.test_case "all cases validate" `Quick test_all_cases_validate;
    Alcotest.test_case "suite size/naming" `Quick test_suite_size_and_naming;
    Alcotest.test_case "noise preserves verdict" `Slow test_noise_grows_but_preserves_verdict;
    Alcotest.test_case "noise outside cone" `Quick test_noise_outside_cone;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "factor expectations" `Quick test_factor_expectations;
    Alcotest.test_case "fig7 case" `Quick test_fig7_case_is_deep;
    Alcotest.test_case "deterministic" `Quick test_deterministic_construction;
  ]
