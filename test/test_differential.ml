(* Cross-engine differential testing on random circuits.

   Every engine in the repository claims to decide the same question — "is
   the invariant violated within k steps, and if not, does it hold?" — so on
   circuits small enough for the explicit-state oracle they must all agree:

     explicit Reach  =  symbolic (BDD)  =  BMC  =  incremental BMC

   and where the oracle proves the property, induction/abstraction may only
   ever say Proved or Unknown, never Falsified.  Random circuits exercise
   gate mixes, nondeterministic initial values and degenerate properties
   (constants, inputs as properties) that the hand-written generators never
   produce. *)

let random_case_gen =
  let open QCheck.Gen in
  let* seed = 0 -- 100_000 in
  let* regs = 1 -- 6 in
  let* gates = 1 -- 25 in
  let* inputs = 0 -- 3 in
  return (Circuit.Generators.random ~seed ~regs ~gates ~inputs)

let arb =
  QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) random_case_gen

let bmc_modes = Bmc.Engine.all_modes

let prop_bmc_engines_match_oracle =
  QCheck.Test.make ~name:"random circuits: BMC (all modes) = explicit oracle" ~count:60 arb
    (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle ->
        let depth =
          match oracle with
          | Circuit.Reach.Fails_at j -> j + 2
          | Circuit.Reach.Holds { diameter } -> diameter + 2
          | Circuit.Reach.Too_large -> assert false
        in
        List.for_all
          (fun mode ->
            let config = Bmc.Engine.config ~mode ~max_depth:depth () in
            let r = Bmc.Engine.run ~config case.netlist ~property:case.property in
            match (oracle, r.verdict) with
            | Circuit.Reach.Fails_at j, Bmc.Engine.Falsified t -> t.Bmc.Trace.depth = j
            | Circuit.Reach.Holds _, Bmc.Engine.Bounded_pass _ -> true
            | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _
              ->
              false)
          bmc_modes)

let prop_incremental_matches_oracle =
  QCheck.Test.make ~name:"random circuits: incremental BMC = explicit oracle" ~count:60 arb
    (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle ->
        let depth =
          match oracle with
          | Circuit.Reach.Fails_at j -> j + 2
          | Circuit.Reach.Holds { diameter } -> diameter + 2
          | Circuit.Reach.Too_large -> assert false
        in
        let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:depth () in
        let r = Bmc.Incremental.run ~config case.netlist ~property:case.property in
        (match (oracle, r.verdict) with
        | Circuit.Reach.Fails_at j, Bmc.Engine.Falsified t -> t.Bmc.Trace.depth = j
        | Circuit.Reach.Holds _, Bmc.Engine.Bounded_pass _ -> true
        | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
          false))

let prop_symbolic_matches_oracle =
  QCheck.Test.make ~name:"random circuits: symbolic = explicit oracle (with diameters)"
    ~count:80 arb (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle -> (
        match (oracle, Bmc.Symbolic.check case.netlist ~property:case.property) with
        | Circuit.Reach.Fails_at a, Bmc.Symbolic.Fails_at b -> a = b
        | Circuit.Reach.Holds { diameter = a }, Bmc.Symbolic.Holds { diameter = b } -> a = b
        | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
          false))

let prop_proof_engines_never_unsound =
  QCheck.Test.make ~name:"random circuits: induction/abstraction never contradict the oracle"
    ~count:40 arb (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle ->
        let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:8 () in
        let ind = (Bmc.Induction.prove ~config case.netlist ~property:case.property).verdict in
        let abs =
          (Bmc.Abstraction.prove ~config case.netlist ~property:case.property).verdict
        in
        let ind_ok =
          match (oracle, ind) with
          | Circuit.Reach.Holds _, (Bmc.Induction.Proved _ | Bmc.Induction.Unknown _) -> true
          | Circuit.Reach.Fails_at j, Bmc.Induction.Falsified t ->
            j = t.Bmc.Trace.depth
          | Circuit.Reach.Fails_at j, Bmc.Induction.Unknown _ -> j > 8
          | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
            false
        in
        let abs_ok =
          match (oracle, abs) with
          | Circuit.Reach.Holds _, (Bmc.Abstraction.Proved _ | Bmc.Abstraction.Unknown _) ->
            true
          | Circuit.Reach.Fails_at j, Bmc.Abstraction.Falsified t -> j = t.Bmc.Trace.depth
          | Circuit.Reach.Fails_at j, Bmc.Abstraction.Unknown _ -> j > 8
          | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
            false
        in
        ind_ok && abs_ok)

let prop_formats_preserve_random_circuits =
  QCheck.Test.make ~name:"random circuits: .rnl and AIGER roundtrips preserve the verdict"
    ~count:60 arb (fun case ->
      let reference = Circuit.Reach.check case.netlist ~property:case.property in
      let via_rnl =
        let nl, p =
          Circuit.Textio.parse_string
            (Circuit.Textio.to_string case.netlist ~property:case.property)
        in
        Circuit.Reach.check nl ~property:p
      in
      let via_aiger =
        let nl, p =
          Circuit.Aiger.parse_string
            (Circuit.Aiger.to_binary case.netlist ~property:case.property)
        in
        Circuit.Reach.check nl ~property:p
      in
      (* the cone can change shape under lowering, so compare only the
         verdict kind and depth, not diameters *)
      let same a b =
        match (a, b) with
        | Circuit.Reach.Fails_at x, Circuit.Reach.Fails_at y -> x = y
        | Circuit.Reach.Holds _, Circuit.Reach.Holds _ -> true
        | Circuit.Reach.Too_large, _ | _, Circuit.Reach.Too_large -> true
        | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _), _ -> false
      in
      same reference via_rnl && same reference via_aiger)

let prop_drat_on_random_bmc_instances =
  QCheck.Test.make ~name:"random circuits: BMC instances' refutations pass the RUP checker"
    ~count:40 arb (fun case ->
      let u = Bmc.Unroll.create case.netlist ~property:case.property in
      let ok = ref true in
      for k = 0 to 3 do
        let cnf = Bmc.Unroll.instance u ~k in
        let s = Sat.Solver.create ~with_drat:true cnf in
        match Sat.Solver.solve s with
        | Sat.Solver.Unsat ->
          if Sat.Checker.check_refutation cnf (Sat.Solver.drat_events s) <> Ok () then
            ok := false
        | Sat.Solver.Sat | Sat.Solver.Unknown -> ()
      done;
      !ok)

let prop_compaction_neutral_on_bmc_instances =
  QCheck.Test.make
    ~name:"random circuits: forced arena compaction preserves BMC outcomes and cores" ~count:40
    arb (fun case ->
      let u = Bmc.Unroll.create case.netlist ~property:case.property in
      let ok = ref true in
      for k = 0 to 3 do
        let cnf = Bmc.Unroll.instance u ~k in
        let solve_with ~gc =
          (* a tiny learnt limit forces reduce_db every few conflicts; the
             gc flag then decides whether each reduction also compacts *)
          let s = Sat.Solver.create ~with_proof:true cnf in
          Sat.Solver.set_max_learnts s 5;
          Sat.Solver.set_gc_fraction s (if gc then 0.0 else infinity);
          (Sat.Solver.solve s, s)
        in
        let o1, s1 = solve_with ~gc:true in
        let o2, s2 = solve_with ~gc:false in
        (* identical deletion schedule: compaction must be invisible *)
        if Sat.Solver.outcome_string o1 <> Sat.Solver.outcome_string o2 then ok := false;
        (* and neither run may disagree with an untouched solver's answer *)
        let o3 = Sat.Solver.solve (Sat.Solver.create cnf) in
        if Sat.Solver.outcome_string o1 <> Sat.Solver.outcome_string o3 then ok := false;
        match (o1, o2) with
        | Sat.Solver.Unsat, Sat.Solver.Unsat ->
          if Sat.Solver.unsat_core s1 <> Sat.Solver.unsat_core s2 then ok := false;
          if Sat.Solver.core_vars s1 <> Sat.Solver.core_vars s2 then ok := false
        | _ -> ()
      done;
      !ok)

(* The service layer is one more engine claiming the same answer: a served
   request (cold, and again warm from the cache) must agree with a direct
   incremental session on random circuits. *)
let test_serve_matches_session () =
  let cfg = Serve.Server.make_config ~mode:Bmc.Session.Dynamic () in
  let t = Serve.Server.create cfg in
  Fun.protect ~finally:(fun () -> Serve.Server.shutdown t) @@ fun () ->
  List.iter
    (fun seed ->
      let case = Circuit.Generators.random ~seed ~regs:4 ~gates:15 ~inputs:2 in
      let depth = 6 in
      let config = Bmc.Session.make_config ~mode:Bmc.Session.Dynamic ~max_depth:depth () in
      let want =
        Bmc.Session.check ~config ~policy:Bmc.Session.Persistent case.netlist
          ~property:case.property
      in
      let request id =
        {
          Serve.Protocol.rq_id = Printf.sprintf "%d/%s" seed id;
          rq_src =
            Serve.Protocol.Inline
              (Circuit.Textio.to_string case.netlist ~property:case.property);
          rq_depth = depth;
          rq_mode = None;
          rq_deadline_ms = None;
          rq_stats = false;
        }
      in
      let verdict rs =
        match rs.Serve.Protocol.rs_reply with
        | Serve.Protocol.Answer b -> b
        | _ -> Alcotest.failf "seed %d: request refused" seed
      in
      let check_against what (b : Serve.Protocol.body) =
        match (want.Bmc.Session.verdict, b.Serve.Protocol.rs_verdict) with
        | Bmc.Session.Falsified tr, Serve.Protocol.Falsified (d, tj) ->
          Alcotest.(check int) (Printf.sprintf "seed %d %s: failure depth" seed what)
            tr.Bmc.Trace.depth d;
          Alcotest.(check string) (Printf.sprintf "seed %d %s: trace" seed what)
            (Obs.Json.to_string (Serve.Protocol.trace_to_json case.netlist tr))
            (Obs.Json.to_string tj)
        | Bmc.Session.Bounded_pass k, Serve.Protocol.Bounded_pass d ->
          Alcotest.(check int) (Printf.sprintf "seed %d %s: bound" seed what) k d
        | _ -> Alcotest.failf "seed %d %s: session and serve verdicts diverge" seed what
      in
      let cold = verdict (Serve.Server.check_now t (request "cold")) in
      check_against "cold" cold;
      let warm = verdict (Serve.Server.check_now t (request "repeat")) in
      Alcotest.(check string) (Printf.sprintf "seed %d: repeat served from cache" seed)
        "hit"
        (Serve.Protocol.cache_class_string warm.Serve.Protocol.rs_cache);
      check_against "repeat" warm)
    [ 3; 1415; 92653; 58979; 32384; 62643; 38327; 95028; 84197; 16939 ]

let tests =
  [
    Alcotest.test_case "serve = incremental session (cold and cached)" `Quick
      test_serve_matches_session;
    QCheck_alcotest.to_alcotest prop_bmc_engines_match_oracle;
    QCheck_alcotest.to_alcotest prop_incremental_matches_oracle;
    QCheck_alcotest.to_alcotest prop_symbolic_matches_oracle;
    QCheck_alcotest.to_alcotest prop_proof_engines_never_unsound;
    QCheck_alcotest.to_alcotest prop_formats_preserve_random_circuits;
    QCheck_alcotest.to_alcotest prop_drat_on_random_bmc_instances;
  ]
