type mode =
  | Standard
  | Static
  | Dynamic
  | Shtrichman

type config = {
  mode : mode;
  weighting : Score.weighting;
  coi : bool;
  budget : Sat.Solver.budget;
  max_depth : int;
  collect_cores : bool;
  telemetry : Telemetry.t;
}

let default_config =
  {
    mode = Standard;
    weighting = Score.Linear;
    coi = false;
    budget = Sat.Solver.no_budget;
    max_depth = 20;
    collect_cores = false;
    telemetry = Telemetry.disabled;
  }

let config ?(mode = Standard) ?(weighting = Score.Linear) ?(coi = false)
    ?(budget = Sat.Solver.no_budget) ?(max_depth = 20) ?(collect_cores = false)
    ?(telemetry = Telemetry.disabled) () =
  { mode; weighting; coi; budget; max_depth; collect_cores; telemetry }

type depth_stat = {
  depth : int;
  outcome : Sat.Solver.outcome;
  decisions : int;
  implications : int;
  conflicts : int;
  core_size : int;
  core_var_count : int;
  switched : bool;
  time : float;
  build_time : float;
  cdg_time : float;
}

(* One "depth" telemetry event per solved instance; every engine that
   produces depth_stats routes them through here so the JSONL schema stays
   uniform. *)
let emit_depth_event tel (d : depth_stat) =
  if Telemetry.enabled tel then
    Telemetry.event tel "depth"
      [
        ("depth", Telemetry.Sink.Int d.depth);
        ("outcome", Telemetry.Sink.Str (Sat.Solver.outcome_string d.outcome));
        ("build_s", Telemetry.Sink.Float d.build_time);
        ("solve_s", Telemetry.Sink.Float d.time);
        ("cdg_s", Telemetry.Sink.Float d.cdg_time);
        ("decisions", Telemetry.Sink.Int d.decisions);
        ("implications", Telemetry.Sink.Int d.implications);
        ("conflicts", Telemetry.Sink.Int d.conflicts);
        ("core_clauses", Telemetry.Sink.Int d.core_size);
        ("core_vars", Telemetry.Sink.Int d.core_var_count);
        ("switched", Telemetry.Sink.Bool d.switched);
      ]

type verdict =
  | Falsified of Trace.t
  | Bounded_pass of int
  | Aborted of int

type result = {
  verdict : verdict;
  per_depth : depth_stat list;
  total_time : float;
  total_decisions : int;
  total_implications : int;
  total_conflicts : int;
}

let pp_verdict ppf = function
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Bounded_pass k -> Format.fprintf ppf "no counterexample up to depth %d" k
  | Aborted k -> Format.fprintf ppf "aborted at depth %d (budget)" k

let pp_mode ppf = function
  | Standard -> Format.pp_print_string ppf "standard"
  | Static -> Format.pp_print_string ppf "static"
  | Dynamic -> Format.pp_print_string ppf "dynamic"
  | Shtrichman -> Format.pp_print_string ppf "shtrichman"

let mode_of_string = function
  | "standard" -> Some Standard
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | "shtrichman" -> Some Shtrichman
  | _ -> None

let all_modes = [ Standard; Static; Dynamic; Shtrichman ]

(* Does this mode consume unsat cores between instances? *)
let uses_cores = function
  | Static | Dynamic -> true
  | Standard | Shtrichman -> false

let order_mode cfg unroll score ~k =
  match cfg.mode with
  | Standard -> Sat.Order.Vsids
  | Static ->
    Sat.Order.Static (Score.rank_array score ~num_vars:(Varmap.num_vars (Unroll.varmap unroll)))
  | Dynamic ->
    Sat.Order.Dynamic (Score.rank_array score ~num_vars:(Varmap.num_vars (Unroll.varmap unroll)))
  | Shtrichman -> Sat.Order.Static (Shtrichman.rank unroll ~k)

let run ?(config = default_config) netlist ~property =
  let cfg = config in
  let unroll = Unroll.create ~coi:cfg.coi netlist ~property in
  let score = Score.create ~weighting:cfg.weighting () in
  let per_depth = ref [] in
  let start = Sys.time () in
  let with_proof = uses_cores cfg.mode || cfg.collect_cores in
  let finish verdict =
    let per_depth = List.rev !per_depth in
    let sum f = List.fold_left (fun acc d -> acc + f d) 0 per_depth in
    {
      verdict;
      per_depth;
      total_time = Sys.time () -. start;
      total_decisions = sum (fun d -> d.decisions);
      total_implications = sum (fun d -> d.implications);
      total_conflicts = sum (fun d -> d.conflicts);
    }
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Bounded_pass cfg.max_depth)
    else begin
      let tb = Sys.time () in
      let cnf = Unroll.instance unroll ~k in
      let mode = order_mode cfg unroll score ~k in
      let solver = Sat.Solver.create ~with_proof ~mode ~telemetry:cfg.telemetry cnf in
      let build_time = Sys.time () -. tb in
      let t0 = Sys.time () in
      let outcome = Sat.Solver.solve ~budget:cfg.budget solver in
      let time = Sys.time () -. t0 in
      let stats = Sat.Solver.stats solver in
      let core, core_vars =
        match outcome with
        | Sat.Solver.Unsat when with_proof ->
          let core = Sat.Solver.unsat_core solver in
          (core, Sat.Solver.core_vars solver)
        | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> ([], [])
      in
      let stat =
        {
          depth = k;
          outcome;
          decisions = stats.Sat.Stats.decisions;
          implications = stats.Sat.Stats.propagations;
          conflicts = stats.Sat.Stats.conflicts;
          core_size = List.length core;
          core_var_count = List.length core_vars;
          switched = stats.Sat.Stats.heuristic_switches > 0;
          time;
          build_time;
          cdg_time = Sat.Solver.cdg_seconds solver;
        }
      in
      emit_depth_event cfg.telemetry stat;
      per_depth := stat :: !per_depth;
      match outcome with
      | Sat.Solver.Sat ->
        let trace = Trace.of_model unroll ~k ~model:(Sat.Solver.model solver) in
        if not (Trace.replay trace netlist ~property) then
          failwith
            (Printf.sprintf
               "Engine.run: counterexample at depth %d failed to replay (internal error)" k);
        finish (Falsified trace)
      | Sat.Solver.Unsat ->
        if uses_cores cfg.mode then Score.update score ~instance:k ~core_vars;
        loop (k + 1)
      | Sat.Solver.Unknown -> finish (Aborted k)
    end
  in
  loop 0

let run_case ?config (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  run ~config case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
