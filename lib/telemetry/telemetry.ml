module Sink = Sink

type t = {
  on : bool;
  sink : Sink.t;
  clock : unit -> float;
  epoch : float;
  mutable nest : int;
}

let disabled =
  { on = false; sink = Sink.null; clock = (fun () -> 0.0); epoch = 0.0; nest = 0 }

let create ?(clock = Sys.time) sink =
  { on = true; sink; clock; epoch = clock (); nest = 0 }

let enabled t = t.on

let now t = t.clock () -. t.epoch

let flush t = if t.on then t.sink.Sink.flush ()

let event t kind fields =
  if t.on then t.sink.Sink.emit { Sink.ts = now t; kind; fields }

let counter t name value =
  if t.on then
    t.sink.Sink.emit
      { Sink.ts = now t; kind = "counter"; fields = [ ("name", Sink.Str name); ("value", Sink.Int value) ] }

let gauge t name value =
  if t.on then
    t.sink.Sink.emit
      {
        Sink.ts = now t;
        kind = "gauge";
        fields = [ ("name", Sink.Str name); ("value", Sink.Float value) ];
      }

let span_event t name ~dur fields =
  if t.on then
    t.sink.Sink.emit
      {
        Sink.ts = now t;
        kind = "span";
        fields = ("name", Sink.Str name) :: ("dur", Sink.Float dur) :: fields;
      }

let span t name ?(fields = []) f =
  if not t.on then f ()
  else begin
    let level = t.nest in
    t.nest <- level + 1;
    let t0 = t.clock () in
    let finish () =
      let t1 = t.clock () in
      t.nest <- level;
      t.sink.Sink.emit
        {
          Sink.ts = t0 -. t.epoch;
          kind = "span";
          fields =
            ("name", Sink.Str name)
            :: ("dur", Sink.Float (t1 -. t0))
            :: ("nest", Sink.Int level)
            :: fields;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end
