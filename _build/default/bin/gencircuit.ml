(* Benchmark-circuit generator CLI.

   Lists the built-in benchmark suite or writes a named case as a .rnl
   netlist (stdout or a file). *)

let list_cases () =
  let print_case (c : Circuit.Generators.case) =
    let expect =
      match c.expect with
      | Some e -> Format.asprintf "%a" Circuit.Generators.pp_expect e
      | None -> "?"
    in
    Format.printf "%-16s regs=%-4d inputs=%-3d nodes=%-5d depth=%-4d %s@." c.name
      (List.length (Circuit.Netlist.regs c.netlist))
      (List.length (Circuit.Netlist.inputs c.netlist))
      (Circuit.Netlist.num_nodes c.netlist)
      c.suggested_depth expect
  in
  Format.printf "# Table-1 suite@.";
  List.iter print_case (Circuit.Generators.suite ());
  Format.printf "# tiny suite (oracle-checkable)@.";
  List.iter print_case (Circuit.Generators.tiny_suite ())

let emit_all dir =
  (try if not (Sys.is_directory dir) then failwith "" with Sys_error _ -> Sys.mkdir dir 0o755);
  let emit (c : Circuit.Generators.case) =
    let rnl = Filename.concat dir (c.name ^ ".rnl") in
    let aag = Filename.concat dir (c.name ^ ".aag") in
    Circuit.Textio.write_file rnl c.netlist ~property:c.property;
    Circuit.Aiger.write_file aag c.netlist ~property:c.property
  in
  let cases = Circuit.Generators.suite () @ Circuit.Generators.tiny_suite () in
  List.iter emit cases;
  Format.printf "wrote %d circuits (.rnl and .aag) to %s@." (List.length cases) dir

let run list name output all_dir =
  (match all_dir with
  | Some dir ->
    emit_all dir;
    exit 0
  | None -> ());
  if list then begin
    list_cases ();
    exit 0
  end;
  match name with
  | None ->
    Format.eprintf "gencircuit: provide a case name or --list@.";
    exit 2
  | Some name -> (
    match Circuit.Generators.by_name name with
    | None ->
      Format.eprintf "gencircuit: unknown case %S (try --list)@." name;
      exit 2
    | Some case -> (
      match output with
      | Some path ->
        if Filename.check_suffix path ".aag" || Filename.check_suffix path ".aig" then
          Circuit.Aiger.write_file path case.netlist ~property:case.property
        else Circuit.Textio.write_file path case.netlist ~property:case.property;
        Format.printf "wrote %s@." path
      | None ->
        Format.printf "%s"
          (Circuit.Textio.to_string case.netlist ~property:case.property)))

open Cmdliner

let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List available benchmark cases.")

let case_name = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Case to emit.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let all_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "all" ] ~docv:"DIR" ~doc:"Emit every benchmark case into $(docv), in both formats.")

let cmd =
  let doc = "generate benchmark circuits in .rnl format" in
  let info = Cmd.info "gencircuit" ~doc in
  Cmd.v info Term.(const run $ list_flag $ case_name $ output $ all_dir)

let () = exit (Cmd.eval cmd)
