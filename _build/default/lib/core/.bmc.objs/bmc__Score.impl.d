lib/core/score.ml: Array Hashtbl List Option Sat
