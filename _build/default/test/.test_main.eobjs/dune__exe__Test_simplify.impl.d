test/test_simplify.ml: Alcotest Array List QCheck QCheck_alcotest Sat
