test/test_dimacs.ml: Alcotest Array Filename List Printf QCheck QCheck_alcotest Sat Sys
