(** Word-level construction helpers.

    A word is a little-endian array of nodes (index 0 = LSB).  These helpers
    build the ripple-carry arithmetic and comparison logic the benchmark
    generators and examples need, on top of the bit-level {!Netlist}
    builders. *)

type word = Netlist.node array

val const : Netlist.t -> width:int -> int -> word
(** [const nl ~width v] encodes [v land (2^width - 1)]. *)

val inputs : Netlist.t -> prefix:string -> width:int -> word
(** Fresh primary inputs [prefix0 .. prefix(width-1)]. *)

val regs : Netlist.t -> prefix:string -> width:int -> init:int option -> word
(** Fresh registers; [init = Some v] initialises to the binary encoding of
    [v], [init = None] makes every bit nondeterministic. *)

val connect : Netlist.t -> word -> word -> unit
(** [connect nl rs ws] sets each register [rs.(i)]'s next input to
    [ws.(i)].  @raise Invalid_argument on width mismatch. *)

val not_ : Netlist.t -> word -> word

val and_ : Netlist.t -> word -> word -> word

val or_ : Netlist.t -> word -> word -> word

val xor_ : Netlist.t -> word -> word -> word

val mux : Netlist.t -> sel:Netlist.node -> hi:word -> lo:word -> word

val add : Netlist.t -> word -> word -> word * Netlist.node
(** Ripple-carry sum and carry-out. *)

val increment : Netlist.t -> word -> word * Netlist.node

val decrement : Netlist.t -> word -> word * Netlist.node
(** Returns difference and borrow-out (1 when the input was zero). *)

val eq_const : Netlist.t -> word -> int -> Netlist.node

val eq : Netlist.t -> word -> word -> Netlist.node

val is_zero : Netlist.t -> word -> Netlist.node

val all_ones : Netlist.t -> word -> Netlist.node

val exactly_one : Netlist.t -> word -> Netlist.node
(** True when exactly one bit of the word is set. *)

val at_most_one : Netlist.t -> word -> Netlist.node

val mul : Netlist.t -> word -> word -> word
(** Shift-and-add product, truncated to the width of the first operand.
    @raise Invalid_argument on width mismatch. *)

val rotate_left : word -> word
(** Pure index shuffle: bit i of the result is bit (i-1) of the input. *)
