lib/sat/simplify.mli: Cnf
