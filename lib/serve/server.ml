module Pool = Portfolio.Pool
module Session = Bmc.Session
module Json = Obs.Json

type config = {
  sv_jobs : int;
  sv_cache_bytes : int;
  sv_max_pending : int;
  sv_share : bool;
  sv_mode : Session.mode;
  sv_depth_cap : int;
  sv_max_conflicts : int option;
  sv_telemetry : Telemetry.t;
  sv_recorder : Obs.Recorder.t option;
  sv_ledger : (Json.t -> unit) option;
}

let make_config ?(jobs = 1) ?(cache_bytes = 64 * 1024 * 1024) ?(max_pending = 64)
    ?(share = false) ?(mode = Session.Dynamic) ?(depth_cap = 64) ?max_conflicts
    ?(telemetry = Telemetry.disabled) ?recorder ?ledger () =
  {
    sv_jobs = jobs;
    sv_cache_bytes = cache_bytes;
    sv_max_pending = max_pending;
    sv_share = share;
    sv_mode = mode;
    sv_depth_cap = depth_cap;
    sv_max_conflicts = max_conflicts;
    sv_telemetry = telemetry;
    sv_recorder = recorder;
    sv_ledger = ledger;
  }

(* One admitted request: what submit knew at arrival. *)
type pending = {
  p_req : Protocol.request;
  p_respond : Protocol.response -> unit;
  p_arrived : float;  (* Pool.wall at admission *)
}

(* What a solve job hands back to the front end. *)
type job_result = {
  j_verdict : Protocol.verdict_summary;
  j_solved : int;
  j_decisions : int;
  j_conflicts : int;
  j_core : Sat.Lit.var list;  (* final depth's unsat core, [] unless Pass *)
  j_next_k : int;  (* depths 0..j_next_k-1 now proven UNSAT *)
  j_falsified : (int * Json.t) option;
  j_bytes : int;  (* resident arena bytes after the job *)
  j_invalidate : bool;  (* aborted: the session cannot be resumed *)
}

type completion = {
  c_entry : pending Cache.entry;
  c_pending : pending;
  c_class : Protocol.cache_class;
  c_dispatched : float;
  c_result : (job_result, string) result;
}

type stats = {
  st_answered : int;
  st_hits : int;
  st_warm : int;
  st_misses : int;
  st_shed : int;
  st_errors : int;
  st_evicted : int;
  st_entries : int;
  st_bytes : int;
}

type t = {
  cfg : config;
  pool : Pool.t;
  cache : pending Cache.t;
  created : float;
  on_wake : unit -> unit;
  cq : completion Queue.t;
  cm : Mutex.t;
  cc : Condition.t;
  mutable is_draining : bool;
  mutable inflight : int;  (* admitted, not yet answered *)
  mutable n_answered : int;
  mutable n_hits : int;
  mutable n_warm : int;
  mutable n_misses : int;
  mutable n_shed : int;
  mutable n_errors : int;
  mutable n_evicted : int;
}

let create ?(on_wake = fun () -> ()) cfg =
  {
    cfg;
    pool = Pool.create ~telemetry:cfg.sv_telemetry ~jobs:cfg.sv_jobs ();
    cache = Cache.create ~max_bytes:cfg.sv_cache_bytes ~jobs:cfg.sv_jobs ();
    created = Pool.wall ();
    on_wake;
    cq = Queue.create ();
    cm = Mutex.create ();
    cc = Condition.create ();
    is_draining = false;
    inflight = 0;
    n_answered = 0;
    n_hits = 0;
    n_warm = 0;
    n_misses = 0;
    n_shed = 0;
    n_errors = 0;
    n_evicted = 0;
  }

let uptime_ms t = (Pool.wall () -. t.created) *. 1000.0

let pending t = t.inflight

let draining t = t.is_draining

(* ------------------------------------------------------------------ *)
(* Answering                                                           *)
(* ------------------------------------------------------------------ *)

let reply_status = function
  | Protocol.Answer _ -> "ok"
  | Protocol.Shed -> "shed"
  | Protocol.Draining -> "draining"
  | Protocol.Bad_request _ -> "error"

(* Issue the one response of an admitted (or refused) request: build the
   latency fields, stream the ledger line and telemetry, bump counters,
   then hand the response to the requester's callback.  Front-end only. *)
let answer t ~digest ~dispatched p reply =
  let now = Pool.wall () in
  let resp =
    {
      Protocol.rs_id = p.p_req.Protocol.rq_id;
      rs_reply = reply;
      rs_queue_ms = Float.max 0.0 ((dispatched -. p.p_arrived) *. 1000.0);
      rs_wall_ms = Float.max 0.0 ((now -. p.p_arrived) *. 1000.0);
    }
  in
  (match reply with
  | Protocol.Answer b -> (
    t.n_answered <- t.n_answered + 1;
    match b.Protocol.rs_cache with
    | Protocol.Hit -> t.n_hits <- t.n_hits + 1
    | Protocol.Warm -> t.n_warm <- t.n_warm + 1
    | Protocol.Miss -> t.n_misses <- t.n_misses + 1)
  | Protocol.Shed -> t.n_shed <- t.n_shed + 1
  | Protocol.Draining -> ()
  | Protocol.Bad_request _ -> t.n_errors <- t.n_errors + 1);
  (match t.cfg.sv_ledger with
  | Some sink ->
    sink (Protocol.ledger_line ~digest ~t_ms:((now -. t.created) *. 1000.0) p.p_req resp)
  | None -> ());
  let tel = t.cfg.sv_telemetry in
  if Telemetry.enabled tel then begin
    Telemetry.span_event tel "serve.request" ~dur:(resp.Protocol.rs_wall_ms /. 1000.0)
      [
        ("status", Telemetry.Sink.Str (reply_status reply));
        ( "cache",
          Telemetry.Sink.Str
            (match reply with
            | Protocol.Answer b -> Protocol.cache_class_string b.Protocol.rs_cache
            | _ -> "-") );
        ("depth", Telemetry.Sink.Int p.p_req.Protocol.rq_depth);
      ];
    match reply with
    | Protocol.Answer b ->
      Telemetry.counter tel
        ("serve." ^ Protocol.cache_class_string b.Protocol.rs_cache)
        1
    | Protocol.Shed -> Telemetry.counter tel "serve.shed" 1
    | Protocol.Draining | Protocol.Bad_request _ -> ()
  end;
  p.p_respond resp

(* ------------------------------------------------------------------ *)
(* The solve job (runs on the entry's pinned pool worker)              *)
(* ------------------------------------------------------------------ *)

let entry_session t (e : pending Cache.entry) =
  match e.Cache.ce_session with
  | Some s -> s
  | None ->
    let deadline = e.Cache.ce_deadline in
    let stop () = Pool.wall () > !deadline in
    let budget =
      {
        Sat.Solver.max_conflicts = t.cfg.sv_max_conflicts;
        max_propagations = None;
        max_seconds = None;
        stop = Some stop;
      }
    in
    let share =
      if t.cfg.sv_share then
        Some
          (Share.Exchange.endpoint
             (Cache.exchange t.cache ~digest:e.Cache.ce_digest)
             ~name:e.Cache.ce_key)
      else None
    in
    let cfg =
      Session.make_config ~mode:e.Cache.ce_mode ~budget ~max_depth:t.cfg.sv_depth_cap
        ~collect_cores:true ~telemetry:t.cfg.sv_telemetry
        ?recorder:t.cfg.sv_recorder ()
    in
    let s = Session.create ?share cfg e.Cache.ce_netlist ~property:e.Cache.ce_property in
    e.Cache.ce_session <- Some s;
    s

let run_job t (e : pending Cache.entry) p =
  let rq = p.p_req in
  try
    let s = entry_session t e in
    let solved = ref 0 in
    let decisions = ref 0 in
    let conflicts = ref 0 in
    let rec loop k =
      if k > rq.Protocol.rq_depth then `Pass
      else begin
        let st = Session.solve_depth s ~k in
        incr solved;
        decisions := !decisions + st.Session.decisions;
        conflicts := !conflicts + st.Session.conflicts;
        match st.Session.outcome with
        | Sat.Solver.Sat ->
          let tr = Session.trace s in
          if not (Bmc.Trace.replay tr e.Cache.ce_netlist ~property:e.Cache.ce_property)
          then
            failwith
              (Printf.sprintf
                 "serve: counterexample at depth %d failed to replay (internal error)" k)
          else `Sat (k, tr)
        | Sat.Solver.Unsat -> loop (k + 1)
        | Sat.Solver.Unknown -> `Abort k
      end
    in
    let out = loop e.Cache.ce_next_k in
    let bytes = (Session.solver_stats s).Sat.Stats.arena_bytes in
    let mk verdict ~core ~next_k ~falsified ~invalidate =
      Ok
        {
          j_verdict = verdict;
          j_solved = !solved;
          j_decisions = !decisions;
          j_conflicts = !conflicts;
          j_core = core;
          j_next_k = next_k;
          j_falsified = falsified;
          j_bytes = bytes;
          j_invalidate = invalidate;
        }
    in
    match out with
    | `Pass ->
      mk
        (Protocol.Bounded_pass rq.Protocol.rq_depth)
        ~core:(Session.last_core_vars s) ~next_k:(rq.Protocol.rq_depth + 1)
        ~falsified:None ~invalidate:false
    | `Sat (k, tr) ->
      let tj = Protocol.trace_to_json e.Cache.ce_netlist tr in
      mk
        (Protocol.Falsified (k, tj))
        ~core:[] ~next_k:k
        ~falsified:(Some (k, tj))
        ~invalidate:false
    | `Abort k ->
      mk (Protocol.Aborted k) ~core:[] ~next_k:e.Cache.ce_next_k ~falsified:None
        ~invalidate:true
  with ex -> Error (Printexc.to_string ex)

(* ------------------------------------------------------------------ *)
(* Dispatch (front-end thread)                                         *)
(* ------------------------------------------------------------------ *)

(* Can the entry answer this depth budget without solving anything? *)
let memo_reply (e : pending Cache.entry) rq =
  let budget = rq.Protocol.rq_depth in
  let bounded () =
    (* the memoised core belongs to the deepest proven depth; shallower
       budgets get the verdict without a core *)
    let core =
      if rq.Protocol.rq_stats && budget = e.Cache.ce_next_k - 1 then e.Cache.ce_core
      else []
    in
    Some
      (Protocol.Answer
         {
           rs_verdict = Protocol.Bounded_pass budget;
           rs_cache = Protocol.Hit;
           rs_solved = 0;
           rs_decisions = 0;
           rs_conflicts = 0;
           rs_core = core;
         })
  in
  match e.Cache.ce_falsified with
  | Some (d, tj) ->
    if budget >= d then
      Some
        (Protocol.Answer
           {
             rs_verdict = Protocol.Falsified (d, tj);
             rs_cache = Protocol.Hit;
             rs_solved = 0;
             rs_decisions = 0;
             rs_conflicts = 0;
             rs_core = [];
           })
    else bounded ()
  | None -> if e.Cache.ce_next_k > budget then bounded () else None

let dispatch t (e : pending Cache.entry) p =
  e.Cache.ce_busy <- true;
  e.Cache.ce_deadline :=
    (match p.p_req.Protocol.rq_deadline_ms with
    | Some ms -> Pool.wall () +. (ms /. 1000.0)
    | None -> infinity);
  let cls =
    if e.Cache.ce_session = None then Protocol.Miss else Protocol.Warm
  in
  let dispatched = Pool.wall () in
  ignore
    (Pool.submit ~affinity:e.Cache.ce_affinity ~label:"serve" t.pool (fun () ->
         let result = run_job t e p in
         Mutex.protect t.cm (fun () ->
             Queue.push
               {
                 c_entry = e;
                 c_pending = p;
                 c_class = cls;
                 c_dispatched = dispatched;
                 c_result = result;
               }
               t.cq;
             Condition.broadcast t.cc);
         t.on_wake ()))

(* Answer from the memo, or dispatch a job.  The entry must be idle. *)
let attempt t (e : pending Cache.entry) p =
  match memo_reply e p.p_req with
  | Some reply ->
    t.inflight <- t.inflight - 1;
    answer t ~digest:e.Cache.ce_digest ~dispatched:p.p_arrived p reply
  | None -> dispatch t e p

let resolve t rq =
  match
    (match rq.Protocol.rq_src with
    | Protocol.Builtin name -> (
      match Circuit.Generators.by_name name with
      | Some c -> Ok (c.Circuit.Generators.netlist, c.Circuit.Generators.property)
      | None -> Error (Printf.sprintf "unknown builtin circuit %S" name))
    | Protocol.Inline text -> (
      try Ok (Circuit.Textio.parse_string text)
      with Circuit.Textio.Parse_error msg -> Error ("circuit parse error: " ^ msg)))
  with
  | Error _ as e -> e
  | Ok (netlist, property) -> (
    if rq.Protocol.rq_depth > t.cfg.sv_depth_cap then
      Error
        (Printf.sprintf "depth %d exceeds the server cap %d" rq.Protocol.rq_depth
           t.cfg.sv_depth_cap)
    else
      match Circuit.Netlist.validate netlist with
      | Error msg -> Error ("invalid circuit: " ^ msg)
      | Ok () -> Ok (netlist, property))

let submit t ~respond rq =
  let p = { p_req = rq; p_respond = respond; p_arrived = Pool.wall () } in
  if t.is_draining then answer t ~digest:"" ~dispatched:p.p_arrived p Protocol.Draining
  else if t.inflight >= t.cfg.sv_max_pending then
    answer t ~digest:"" ~dispatched:p.p_arrived p Protocol.Shed
  else
    match resolve t rq with
    | Error msg ->
      answer t ~digest:"" ~dispatched:p.p_arrived p (Protocol.Bad_request msg)
    | Ok (netlist, property) ->
      let digest = Circuit.Netlist.digest netlist in
      let mode = Option.value ~default:t.cfg.sv_mode rq.Protocol.rq_mode in
      let key =
        Printf.sprintf "%s#%d#%s" digest property (Session.mode_string mode)
      in
      t.inflight <- t.inflight + 1;
      (match Cache.find t.cache key with
      | Some e ->
        if e.Cache.ce_busy then e.Cache.ce_waiting <- p :: e.Cache.ce_waiting
        else attempt t e p
      | None ->
        let e = Cache.add t.cache ~key ~digest ~netlist ~property ~mode in
        attempt t e p)

(* ------------------------------------------------------------------ *)
(* Completions (front-end thread)                                      *)
(* ------------------------------------------------------------------ *)

let apply_completion t c =
  let e = c.c_entry in
  let p = c.c_pending in
  e.Cache.ce_busy <- false;
  let reply =
    match c.c_result with
    | Ok r ->
      if r.j_invalidate then Cache.invalidate e
      else begin
        e.Cache.ce_next_k <- max e.Cache.ce_next_k r.j_next_k;
        (match r.j_falsified with
        | Some f -> e.Cache.ce_falsified <- Some f
        | None -> ());
        if r.j_core <> [] then e.Cache.ce_core <- r.j_core;
        e.Cache.ce_bytes <- r.j_bytes
      end;
      Protocol.Answer
        {
          rs_verdict = r.j_verdict;
          rs_cache = c.c_class;
          rs_solved = r.j_solved;
          rs_decisions = r.j_decisions;
          rs_conflicts = r.j_conflicts;
          rs_core = (if p.p_req.Protocol.rq_stats then r.j_core else []);
        }
    | Error msg ->
      (* the session's state after an exception is unknown: rebuild cold *)
      Cache.invalidate e;
      Protocol.Bad_request msg
  in
  t.inflight <- t.inflight - 1;
  answer t ~digest:e.Cache.ce_digest ~dispatched:c.c_dispatched p reply;
  (* wake the entry's waiters: memo-answer as many as possible, dispatch
     at most one (the entry's solves serialise on its pinned worker) *)
  let rec pump () =
    if (not e.Cache.ce_busy) && e.Cache.ce_waiting <> [] then begin
      match List.rev e.Cache.ce_waiting with
      | [] -> ()
      | oldest :: rest ->
        e.Cache.ce_waiting <- List.rev rest;
        attempt t e oldest;
        pump ()
    end
  in
  pump ()

let process t =
  let batch =
    Mutex.protect t.cm (fun () ->
        let xs = List.of_seq (Queue.to_seq t.cq) in
        Queue.clear t.cq;
        xs)
  in
  List.iter (apply_completion t) batch;
  if batch <> [] then begin
    let dropped = Cache.evict t.cache in
    let n = List.length dropped in
    if n > 0 then begin
      t.n_evicted <- t.n_evicted + n;
      if Telemetry.enabled t.cfg.sv_telemetry then
        Telemetry.counter t.cfg.sv_telemetry "serve.evicted" n
    end
  end

let wait t =
  Mutex.lock t.cm;
  while Queue.is_empty t.cq && t.inflight > 0 do
    Condition.wait t.cc t.cm
  done;
  Mutex.unlock t.cm

let begin_drain t = t.is_draining <- true

let drain t =
  begin_drain t;
  while t.inflight > 0 do
    wait t;
    process t
  done

let shutdown t =
  drain t;
  Pool.shutdown t.pool

let check_now t rq =
  let out = ref None in
  submit t ~respond:(fun r -> out := Some r) rq;
  while !out = None do
    wait t;
    process t
  done;
  Option.get !out

let stats t =
  {
    st_answered = t.n_answered;
    st_hits = t.n_hits;
    st_warm = t.n_warm;
    st_misses = t.n_misses;
    st_shed = t.n_shed;
    st_errors = t.n_errors;
    st_evicted = t.n_evicted;
    st_entries = Cache.size t.cache;
    st_bytes = Cache.resident_bytes t.cache;
  }
