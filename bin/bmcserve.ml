(* bmcserve: the model-checking service.

   A long-lived server over Serve.Server: requests stream in as JSONL —
   over a Unix-domain socket (--socket) or stdin/stdout (the default) —
   are dispatched onto the portfolio pool, and answered from the
   digest-keyed warm-session cache whenever the design has been seen
   before.  SIGTERM/SIGINT drain gracefully: admission stops, in-flight
   requests finish, the per-request ledger and the flight recorder are
   flushed, and the process exits 0.

   --client PATH turns the binary into a JSONL client for scripting and
   smoke tests: stdin lines go to the server, response lines to stdout.

   Exit codes: 0 = clean exit/drain, 1 = client-side failure, 2 = usage or
   I/O error. *)

open Cmdliner

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Small I/O helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let write_line fd s =
  try write_all fd (s ^ "\n") 0 (String.length s + 1)
  with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) -> ()

let rec restart_on_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

(* Split a read buffer into complete lines, leaving the partial tail. *)
let take_lines buf =
  let s = Buffer.contents buf in
  Buffer.clear buf;
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.add_substring buf s start (String.length s - start);
      List.rev acc
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Telemetry / recorder plumbing (mirrors bmccheck)                    *)
(* ------------------------------------------------------------------ *)

let setup_telemetry trace_file =
  match trace_file with
  | None -> (Telemetry.disabled, fun () -> ())
  | Some path ->
    let oc =
      try open_out path
      with Sys_error msg ->
        Format.eprintf "bmcserve: cannot open trace file: %s@." msg;
        exit 2
    in
    let telemetry = Telemetry.create ~timing:true (Telemetry.Sink.of_channel oc) in
    ( telemetry,
      fun () ->
        Telemetry.flush telemetry;
        close_out_noerr oc )

let setup_ledger ledger_file =
  match ledger_file with
  | None -> (None, fun () -> ())
  | Some path ->
    let oc =
      try open_out path
      with Sys_error msg ->
        Format.eprintf "bmcserve: cannot open ledger file: %s@." msg;
        exit 2
    in
    ( Some
        (fun j ->
          output_string oc (Obs.Json.to_string j);
          output_char oc '\n';
          flush oc),
      fun () -> close_out_noerr oc )

(* ------------------------------------------------------------------ *)
(* The server front end                                                *)
(* ------------------------------------------------------------------ *)

type frontend = {
  engine : Serve.Server.t;
  wake_r : Unix.file_descr;  (* self-pipe: workers and signal handlers *)
  wake_w : Unix.file_descr;
  stop : bool ref;  (* SIGTERM/SIGINT observed *)
  verbose : bool;
}

let log fe fmt =
  if fe.verbose then Format.eprintf ("bmcserve: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

let wake fe = try ignore (Unix.write fe.wake_w (Bytes.make 1 'w') 0 1) with Unix.Unix_error _ -> ()

let drain_wake_pipe fe =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fe.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let install_signals fe =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ());
  let handler _ =
    fe.stop := true;
    (* wake a front end blocked in select; safe from a handler *)
    try ignore (Unix.write fe.wake_w (Bytes.make 1 's') 0 1) with Unix.Unix_error _ -> ()
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let submit_line fe ~respond line =
  let line = String.trim line in
  if line <> "" then
    match Serve.Protocol.request_of_line line with
    | Ok rq -> Serve.Server.submit fe.engine ~respond rq
    | Error msg ->
      (* unparsable lines never reach the engine; answer in place *)
      respond
        {
          Serve.Protocol.rs_id = "";
          rs_reply = Serve.Protocol.Bad_request msg;
          rs_queue_ms = 0.0;
          rs_wall_ms = 0.0;
        }

let finish fe =
  let st = Serve.Server.stats fe.engine in
  Format.eprintf
    "bmcserve: drained cleanly: %d answered (%d hit / %d warm / %d miss), %d shed, %d \
     errors, %d evicted, %d cached entries@."
    st.Serve.Server.st_answered st.Serve.Server.st_hits st.Serve.Server.st_warm
    st.Serve.Server.st_misses st.Serve.Server.st_shed st.Serve.Server.st_errors
    st.Serve.Server.st_evicted st.Serve.Server.st_entries

(* stdin/stdout front end: requests on stdin, responses on stdout. *)
let serve_stdio fe =
  let stdin_fd = Unix.stdin in
  let inbuf = Buffer.create 4096 in
  let eof = ref false in
  let respond resp = write_line Unix.stdout (Serve.Protocol.response_line resp) in
  let rbuf = Bytes.create 65536 in
  let rec loop () =
    if !(fe.stop) && not (Serve.Server.draining fe.engine) then begin
      log fe "signal received: draining";
      Serve.Server.begin_drain fe.engine
    end;
    if !eof && not (Serve.Server.draining fe.engine) then
      Serve.Server.begin_drain fe.engine;
    Serve.Server.process fe.engine;
    if Serve.Server.draining fe.engine && Serve.Server.pending fe.engine = 0 then ()
    else begin
      let watch = fe.wake_r :: (if !eof || !(fe.stop) then [] else [ stdin_fd ]) in
      let ready, _, _ = restart_on_intr (fun () -> Unix.select watch [] [] (-1.0)) in
      if List.mem fe.wake_r ready then drain_wake_pipe fe;
      if List.mem stdin_fd ready then begin
        match Unix.read stdin_fd rbuf 0 (Bytes.length rbuf) with
        | 0 -> eof := true
        | n ->
          Buffer.add_subbytes inbuf rbuf 0 n;
          List.iter (submit_line fe ~respond) (take_lines inbuf)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end;
      Serve.Server.process fe.engine;
      loop ()
    end
  in
  (* make the wake pipe non-blocking so draining it can't stall the loop *)
  Unix.set_nonblock fe.wake_r;
  loop ()

(* Unix-domain-socket front end. *)
let serve_socket fe path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock fe.wake_r;
  log fe "listening on %s" path;
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
  let rbuf = Bytes.create 65536 in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if !(fe.stop) && not (Serve.Server.draining fe.engine) then begin
      log fe "signal received: draining";
      Serve.Server.begin_drain fe.engine
    end;
    Serve.Server.process fe.engine;
    if Serve.Server.draining fe.engine && Serve.Server.pending fe.engine = 0 then ()
    else begin
      let watch =
        fe.wake_r
        :: (if Serve.Server.draining fe.engine then [] else [ listen_fd ])
        @ Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
      in
      let ready, _, _ = restart_on_intr (fun () -> Unix.select watch [] [] (-1.0)) in
      List.iter
        (fun fd ->
          if fd = fe.wake_r then drain_wake_pipe fe
          else if fd = listen_fd then begin
            match Unix.accept listen_fd with
            | cfd, _ -> Hashtbl.replace clients cfd (Buffer.create 4096)
            | exception Unix.Unix_error _ -> ()
          end
          else
            match Hashtbl.find_opt clients fd with
            | None -> ()
            | Some buf -> (
              match Unix.read fd rbuf 0 (Bytes.length rbuf) with
              | 0 -> close_client fd
              | n ->
                Buffer.add_subbytes buf rbuf 0 n;
                let respond resp =
                  write_line fd (Serve.Protocol.response_line resp)
                in
                List.iter (submit_line fe ~respond) (take_lines buf)
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                close_client fd
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        ready;
      Serve.Server.process fe.engine;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    loop

let run_server socket jobs cache_mb max_pending share mode order depth_cap max_conflicts
    deadline_default trace_file ledger_file flight_file verbose =
  (* --order resolves through the heuristic registry (laboratory heuristics
     included) and overrides --mode; session-level hook state is built per
     session, so one registry mode is safe across the warm cache. *)
  let* mode =
    match order with
    | Some name -> (
      match Ordering.mode_of_name name with
      | Some m -> Ok m
      | None ->
        Error
          (Printf.sprintf "unknown ordering %S (available: %s)" name
             (String.concat "|" (Ordering.names ()))))
    | None -> (
      match Bmc.Session.mode_of_string mode with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "unknown mode %S" mode))
  in
  ignore deadline_default;
  let telemetry, close_telemetry = setup_telemetry trace_file in
  let ledger, close_ledger = setup_ledger ledger_file in
  let recorder =
    Option.map
      (fun path ->
        let r = Obs.Recorder.create () in
        Obs.Recorder.on_sigusr1 r ~path;
        (r, path))
      flight_file
  in
  let wake_r, wake_w = Unix.pipe () in
  let stop = ref false in
  let cfg =
    Serve.Server.make_config ~jobs ~cache_bytes:(cache_mb * 1024 * 1024) ~max_pending
      ~share ~mode ~depth_cap ?max_conflicts ~telemetry
      ?recorder:(Option.map fst recorder) ?ledger ()
  in
  let fe = ref None in
  let engine =
    Serve.Server.create
      ~on_wake:(fun () -> Option.iter wake !fe)
      cfg
  in
  let frontend = { engine; wake_r; wake_w; stop; verbose } in
  fe := Some frontend;
  install_signals frontend;
  (match socket with
  | Some path -> serve_socket frontend path
  | None -> serve_stdio frontend);
  (* quiesced: flush every observability stream before the pool dies *)
  Serve.Server.shutdown engine;
  (match recorder with Some (r, path) -> Obs.Recorder.dump r path | None -> ());
  close_ledger ();
  close_telemetry ();
  finish frontend;
  Ok ()

(* ------------------------------------------------------------------ *)
(* The JSONL client                                                    *)
(* ------------------------------------------------------------------ *)

let run_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     Format.eprintf "bmcserve: cannot connect to %s: %s@." path (Unix.error_message err);
     exit 1);
  let requests = ref 0 in
  (try
     while true do
       let line = String.trim (input_line stdin) in
       if line <> "" then begin
         write_line fd line;
         incr requests
       end
     done
   with End_of_file -> ());
  let ic = Unix.in_channel_of_descr fd in
  let failures = ref 0 in
  (try
     for _ = 1 to !requests do
       let line = input_line ic in
       print_endline line;
       match Obs.Json.of_string line with
       | Ok j when Obs.Json.get_str ~default:"" j "status" <> "" -> ()
       | Ok _ | Error _ -> incr failures
     done
   with End_of_file ->
     Format.eprintf "bmcserve: server closed the connection early@.";
     incr failures);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve on a Unix-domain socket at $(docv) instead of stdin/stdout.")

let client =
  Arg.(
    value
    & opt (some string) None
    & info [ "client" ] ~docv:"PATH"
        ~doc:
          "Run as a JSONL client against the server at $(docv): stdin lines are sent as \
           requests, responses print to stdout.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains in the pool.")

let cache_mb =
  Arg.(
    value
    & opt int 64
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Warm-session cache budget: resident clause-arena megabytes before LRU eviction.")

let max_pending =
  Arg.(
    value
    & opt int 64
    & info [ "max-pending" ] ~docv:"N"
        ~doc:"Admission bound: requests beyond $(docv) in flight are shed.")

let share =
  Arg.(
    value & flag
    & info [ "share" ]
        ~doc:"Exchange learnt clauses between cached sessions of structurally identical circuits.")

let mode =
  Arg.(
    value
    & opt string "dynamic"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Default decision ordering (standard|static|dynamic|shtrichman).")

let order =
  Arg.(
    value
    & opt (some string) None
    & info [ "order" ] ~docv:"NAME"
        ~doc:"Default decision ordering from the heuristic registry (standard, static, \
              dynamic, shtrichman, chb, frame, assump); overrides --mode.")

let depth_cap =
  Arg.(
    value
    & opt int 64
    & info [ "depth-cap" ] ~docv:"K" ~doc:"Reject requests with a depth budget beyond $(docv).")

let max_conflicts =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N" ~doc:"Per-instance conflict budget.")

let deadline_default =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Reserved: default per-request deadline (requests carry their own).")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write JSONL telemetry to $(docv).")

let ledger_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"Write the per-request serve ledger (JSONL) to $(docv); analyse with bmcprof serve.")

let flight_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-recorder" ] ~docv:"FILE"
        ~doc:
          "Attach a flight recorder; dumped to $(docv) on SIGUSR1 and at drain time.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log server events to stderr.")

let main socket client jobs cache_mb max_pending share mode order depth_cap max_conflicts
    deadline_default trace_file ledger_file flight_file verbose =
  match client with
  | Some path -> run_client path
  | None -> (
    match
      run_server socket jobs cache_mb max_pending share mode order depth_cap max_conflicts
        deadline_default trace_file ledger_file flight_file verbose
    with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "bmcserve: %s@." msg;
      exit 2)

let cmd =
  let doc = "long-lived BMC service with a warm-session cache" in
  Cmd.v (Cmd.info "bmcserve" ~doc)
    Term.(
      const main $ socket $ client $ jobs $ cache_mb $ max_pending $ share $ mode $ order
      $ depth_cap $ max_conflicts $ deadline_default $ trace_file $ ledger_file
      $ flight_file $ verbose)

let () = exit (Cmd.eval cmd)
