(** Simplified Conflict Dependency Graph (paper, Section 3.1), provenance
    aware.

    Every clause the solver ever sees — original, imported or learnt — is
    assigned an integer {e pseudo ID}, local to its solver's shard of the
    graph.  Globally a clause is named by the pair (solver id, local id):
    each solver's CDG is one {e shard} of a single cross-solver dependency
    graph.  For each learnt (conflict) clause we record only the IDs of its
    antecedents: the clauses resolved on while deriving it.  A clause
    imported from a sibling solver through the learnt-clause exchange is an
    {!register_import} node carrying its origin (solver id, local id) — a
    {e cross-edge} into the sibling's shard rather than an opaque leaf.
    When the formula is refuted, the final (empty-clause) conflict records
    its antecedents too.  The {e unsatisfiable core} is the set of original
    clauses reachable backwards from the final conflict — within one shard
    ({!core}) or across all shards ({!stitched_core}).

    Crucially the graph stores no literals, so the solver remains free to
    delete learnt clauses from its database: deletion never breaks the
    dependency information, which is the point of the paper's
    simplification.  The memory cost is one small [int array] per learnt
    clause (plus two ints per import). *)

type t

val create : ?timed:bool -> ?solver_id:int -> unit -> t
(** [timed] (default [false]) clocks every bookkeeping operation —
    registration, final-conflict recording, and the backwards core walk —
    accumulating into {!cdg_seconds}.  This makes the paper's "about 5%"
    CDG overhead claim directly measurable; when off, the only cost is a
    boolean check per operation.  [solver_id] (default [0]) is this shard's
    global provenance id; callers that intend to stitch shards (the
    portfolio coordinator) must allocate distinct ids. *)

val solver_id : t -> int
(** This shard's provenance id. *)

val register_original : t -> int
(** Allocate a pseudo ID for an original clause.  IDs are dense from 0, in
    registration order, so they coincide with {!Cnf} clause indices when
    originals are registered first and in order. *)

val register_import : t -> origin:int * int -> int
(** Allocate a pseudo ID for a clause imported from a sibling solver.
    [origin] is the clause's global provenance — the exporting solver's id
    and the clause's pseudo ID {e in that solver's shard}.  The node is a
    cross-edge: {!core} treats it as an ignorable leaf (a single shard
    cannot see past it) while {!stitched_core} follows it into the origin
    shard.  @raise Invalid_argument on a negative origin id. *)

val register_learnt : t -> antecedents:int list -> int
(** Allocate a pseudo ID for a learnt clause derived by resolving the listed
    antecedents.  Antecedents are local IDs of this shard and may name
    {!register_import} nodes — that is how a foreign clause participates in
    a local derivation.  @raise Invalid_argument if an antecedent ID is
    unknown. *)

val set_final : t -> antecedents:int list -> unit
(** Record the final, unresolvable conflict (the empty clause). *)

val has_final : t -> bool

val clear_final : t -> unit
(** Forget the final conflict (incremental solving: each solve call records
    its own refutation; the clause graph itself is kept). *)

val core : t -> int list
(** Original-clause IDs of {e this shard} reachable from the final
    conflict, ascending.  Import nodes are treated as leaves and excluded —
    with no imports registered this is the exact core; with imports it is
    the local-shard projection (use {!stitched_core} for exactness).
    @raise Invalid_argument if {!set_final} was never called. *)

val core_imports : t -> int list
(** The import-node pseudo IDs reachable from the final conflict, ascending
    — the foreign leaves {!core} skips.  [core] plus [core_imports] is the
    complete leaf set of the local refutation.
    @raise Invalid_argument if {!set_final} was never called. *)

val stitched_core : t -> lookup:(int -> t option) -> (int * int list) list
(** The exact cross-solver core: original-clause IDs reachable from this
    shard's final conflict, following import cross-edges into the shards
    [lookup] resolves.  Returns one [(solver id, ascending original IDs)]
    pair per shard that contributes at least one original, ascending by
    solver id.  [lookup] is never called for this shard's own id.  The
    merged graph is a DAG: a clause is published strictly before any
    sibling can import it, so cross-edges only reach already-complete
    derivations.
    @raise Invalid_argument if {!set_final} was never called, if [lookup]
    cannot resolve a referenced shard, or if an origin id is unknown in its
    shard. *)

val antecedents : t -> int -> int array option
(** The antecedent list of a learnt clause's pseudo ID (derivation order);
    [None] for originals, imports or unknown IDs. *)

val origin_of : t -> int -> (int * int) option
(** The provenance of an import node's pseudo ID; [None] for originals,
    learnts or unknown IDs. *)

val final : t -> int array option
(** The final conflict's antecedents, if recorded. *)

val num_original : t -> int

val num_import : t -> int

val num_learnt : t -> int

val num_edges : t -> int
(** Total antecedent references stored — the memory-overhead figure
    (imports count one edge each). *)

val cdg_seconds : t -> float
(** CPU seconds spent in the CDG bookkeeping so far (0 unless the graph was
    created [~timed:true]). *)
