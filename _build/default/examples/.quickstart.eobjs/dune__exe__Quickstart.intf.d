examples/quickstart.mli:
