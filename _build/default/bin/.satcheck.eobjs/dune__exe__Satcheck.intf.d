bin/satcheck.mli:
