lib/core/score.mli: Sat
