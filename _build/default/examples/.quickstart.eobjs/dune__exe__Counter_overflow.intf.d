examples/counter_overflow.mli:
