lib/sat/solver.ml: Array Checker Cnf Float Format Hashtbl Int Itp List Lit Luby Option Order Proof Stats Sys Vec
