test/test_shtrichman.ml: Alcotest Array Bmc Circuit List
