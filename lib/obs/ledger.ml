module Sink = Telemetry.Sink

let version = "bmc-ledger/v1"

type depth_row = {
  l_depth : int;
  l_mode : string;
  l_outcome : string;
  l_decisions : int;
  l_dec_rank : int;
  l_dec_vsids : int;
  l_implications : int;
  l_conflicts : int;
  l_core_clauses : int;
  l_core_vars : int;
  l_core_new : int;
  l_core_dropped : int;
  l_core_pre : int;
  l_coremin_s : float;
  l_switched : bool;
  l_build_s : float;
  l_solve_s : float;
  l_bcp_s : float;
  l_cdg_s : float;
  l_inpr_elim : int;
  l_inpr_sub : int;
  l_inpr_str : int;
  l_inpr_probe_failed : int;
  l_inpr_s : float;
}

type race_row = {
  r_depth : int;
  r_winner : string;
  r_wall_s : float;
  r_cancelled : int;
  r_rotated : int;
  r_racers : string list;
}

type share_flow = {
  sh_exported : int;
  sh_imported : int;
  sh_rejected_tainted : int;
  sh_dropped_stale : int;
}

type t = {
  schema : string;
  depths : depth_row list;
  races : race_row list;
  restarts : int;
  switches : int;
  share : share_flow;
  wins : (string * int) list;  (* ordering mode -> races won, sorted by mode *)
}

let no_share = { sh_exported = 0; sh_imported = 0; sh_rejected_tainted = 0; sh_dropped_stale = 0 }

(* ------------------------------------------------------------------ *)
(* Building from a telemetry event stream. *)

let of_events (events : Sink.event list) =
  let depths = ref [] and races = ref [] in
  let restarts = ref 0 and switches = ref 0 in
  let share = ref no_share in
  List.iter
    (fun (e : Sink.event) ->
      let fi k = Option.value ~default:0 (Sink.find_int e.fields k) in
      let ff k = Option.value ~default:0.0 (Sink.find_float e.fields k) in
      let fs k = Option.value ~default:"" (Sink.find_str e.fields k) in
      match e.kind with
      | "depth" ->
        depths :=
          {
            l_depth = fi "depth";
            l_mode = fs "mode";
            l_outcome = fs "outcome";
            l_decisions = fi "decisions";
            l_dec_rank = fi "dec_rank";
            l_dec_vsids = fi "dec_vsids";
            l_implications = fi "implications";
            l_conflicts = fi "conflicts";
            l_core_clauses = fi "core_clauses";
            l_core_vars = fi "core_vars";
            l_core_new = fi "core_new";
            l_core_dropped = fi "core_dropped";
            (* pre-minimisation size: absent in pre-coremin streams, where
               pre == post by definition *)
            l_core_pre =
              (match Sink.find_int e.fields "core_pre" with
              | Some v -> v
              | None -> fi "core_clauses");
            l_coremin_s = ff "coremin_s";
            l_switched =
              (match List.assoc_opt "switched" e.fields with
              | Some (Sink.Bool b) -> b
              | _ -> false);
            l_build_s = ff "build_s";
            l_solve_s = ff "solve_s";
            l_bcp_s = ff "bcp_s";
            l_cdg_s = ff "cdg_s";
            l_inpr_elim = fi "inpr_elim";
            l_inpr_sub = fi "inpr_sub";
            l_inpr_str = fi "inpr_str";
            l_inpr_probe_failed = fi "inpr_probe_failed";
            l_inpr_s = ff "inpr_s";
          }
          :: !depths
      | "race" ->
        races :=
          {
            r_depth = fi "depth";
            r_winner = fs "winner";
            r_wall_s = ff "wall_s";
            r_cancelled = fi "cancelled";
            r_rotated = fi "rotated";
            r_racers =
              (match fs "racers" with
              | "" -> []
              | s -> String.split_on_char ',' s);
          }
          :: !races
      | "restart" -> incr restarts
      | "switch" -> incr switches
      | "counter" -> (
        let v = fi "value" in
        match fs "name" with
        | "share.exported" -> share := { !share with sh_exported = !share.sh_exported + v }
        | "share.imported" -> share := { !share with sh_imported = !share.sh_imported + v }
        | "share.rejected_tainted" ->
          share := { !share with sh_rejected_tainted = !share.sh_rejected_tainted + v }
        | "share.dropped_stale" ->
          share := { !share with sh_dropped_stale = !share.sh_dropped_stale + v }
        | _ -> ())
      | _ -> ())
    events;
  let races = List.rev !races in
  let wins =
    List.fold_left
      (fun acc r ->
        if r.r_winner = "" || r.r_winner = "none" then acc
        else
          let n = try List.assoc r.r_winner acc with Not_found -> 0 in
          (r.r_winner, n + 1) :: List.remove_assoc r.r_winner acc)
      [] races
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    schema = version;
    depths = List.rev !depths;
    races;
    restarts = !restarts;
    switches = !switches;
    share = !share;
    wins;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec.  Field order below is the schema; [of_json] rebuilds the
   record field-by-field, so print -> parse -> print is the identity. *)

let depth_to_json (d : depth_row) =
  (* Core-minimisation columns are additive AND conditional: a row that
     never minimised (pre == post, no time spent) omits them, so ledgers
     written before the columns existed round-trip byte-identically. *)
  let coremin_fields =
    if d.l_core_pre <> d.l_core_clauses || d.l_coremin_s <> 0.0 then
      [ ("core_pre", Json.Int d.l_core_pre); ("coremin_s", Json.Float d.l_coremin_s) ]
    else []
  in
  Json.Obj
    ([
      ("depth", Json.Int d.l_depth);
      ("mode", Json.Str d.l_mode);
      ("outcome", Json.Str d.l_outcome);
      ("decisions", Json.Int d.l_decisions);
      ("dec_rank", Json.Int d.l_dec_rank);
      ("dec_vsids", Json.Int d.l_dec_vsids);
      ("implications", Json.Int d.l_implications);
      ("conflicts", Json.Int d.l_conflicts);
      ("core_clauses", Json.Int d.l_core_clauses);
      ("core_vars", Json.Int d.l_core_vars);
      ("core_new", Json.Int d.l_core_new);
      ("core_dropped", Json.Int d.l_core_dropped);
      ("switched", Json.Bool d.l_switched);
      ("build_s", Json.Float d.l_build_s);
      ("solve_s", Json.Float d.l_solve_s);
      ("bcp_s", Json.Float d.l_bcp_s);
      ("cdg_s", Json.Float d.l_cdg_s);
      ("inpr_elim", Json.Int d.l_inpr_elim);
      ("inpr_sub", Json.Int d.l_inpr_sub);
      ("inpr_str", Json.Int d.l_inpr_str);
      ("inpr_probe_failed", Json.Int d.l_inpr_probe_failed);
      ("inpr_s", Json.Float d.l_inpr_s);
    ]
    @ coremin_fields)

let depth_of_json j =
  {
    l_depth = Json.get_int j "depth";
    l_mode = Json.get_str j "mode";
    l_outcome = Json.get_str j "outcome";
    l_decisions = Json.get_int j "decisions";
    l_dec_rank = Json.get_int j "dec_rank";
    l_dec_vsids = Json.get_int j "dec_vsids";
    l_implications = Json.get_int j "implications";
    l_conflicts = Json.get_int j "conflicts";
    l_core_clauses = Json.get_int j "core_clauses";
    l_core_vars = Json.get_int j "core_vars";
    l_core_new = Json.get_int j "core_new";
    l_core_dropped = Json.get_int j "core_dropped";
    (* additive columns: absent unless the row minimised its core, and in
       pre-coremin ledgers; pre defaults to post so the row reads as
       "nothing minimised" *)
    l_core_pre = Json.get_int ~default:(Json.get_int j "core_clauses") j "core_pre";
    l_coremin_s = Json.get_float ~default:0.0 j "coremin_s";
    l_switched = Json.get_bool j "switched";
    l_build_s = Json.get_float j "build_s";
    l_solve_s = Json.get_float j "solve_s";
    l_bcp_s = Json.get_float j "bcp_s";
    l_cdg_s = Json.get_float j "cdg_s";
    (* additive columns: absent in pre-inprocessing ledgers, default 0 *)
    l_inpr_elim = Json.get_int ~default:0 j "inpr_elim";
    l_inpr_sub = Json.get_int ~default:0 j "inpr_sub";
    l_inpr_str = Json.get_int ~default:0 j "inpr_str";
    l_inpr_probe_failed = Json.get_int ~default:0 j "inpr_probe_failed";
    l_inpr_s = Json.get_float ~default:0.0 j "inpr_s";
  }

let race_to_json (r : race_row) =
  (* "rotated" and "racers" are additive and conditional, like the coremin
     columns: a row with no rotation (or no recorded roster) omits them, so
     pre-rotation ledgers round-trip byte-identically. *)
  Json.Obj
    ([
       ("depth", Json.Int r.r_depth);
       ("winner", Json.Str r.r_winner);
       ("wall_s", Json.Float r.r_wall_s);
       ("cancelled", Json.Int r.r_cancelled);
     ]
    @ (if r.r_rotated > 0 then [ ("rotated", Json.Int r.r_rotated) ] else [])
    @
    if r.r_racers = [] then []
    else [ ("racers", Json.Str (String.concat "," r.r_racers)) ])

let race_of_json j =
  {
    r_depth = Json.get_int j "depth";
    r_winner = Json.get_str j "winner";
    r_wall_s = Json.get_float j "wall_s";
    r_cancelled = Json.get_int j "cancelled";
    r_rotated = Json.get_int ~default:0 j "rotated";
    r_racers =
      (match Json.get_str ~default:"" j "racers" with
      | "" -> []
      | s -> String.split_on_char ',' s);
  }

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str t.schema);
      ("depths", Json.List (List.map depth_to_json t.depths));
      ("races", Json.List (List.map race_to_json t.races));
      ("restarts", Json.Int t.restarts);
      ("switches", Json.Int t.switches);
      ( "share",
        Json.Obj
          [
            ("exported", Json.Int t.share.sh_exported);
            ("imported", Json.Int t.share.sh_imported);
            ("rejected_tainted", Json.Int t.share.sh_rejected_tainted);
            ("dropped_stale", Json.Int t.share.sh_dropped_stale);
          ] );
      ("wins", Json.Obj (List.map (fun (m, n) -> (m, Json.Int n)) t.wins));
    ]

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = version ->
    let share_j = Option.value ~default:(Json.Obj []) (Json.member "share" j) in
    Ok
      {
        schema = s;
        depths = List.map depth_of_json (Json.get_list j "depths");
        races = List.map race_of_json (Json.get_list j "races");
        restarts = Json.get_int j "restarts";
        switches = Json.get_int j "switches";
        share =
          {
            sh_exported = Json.get_int share_j "exported";
            sh_imported = Json.get_int share_j "imported";
            sh_rejected_tainted = Json.get_int share_j "rejected_tainted";
            sh_dropped_stale = Json.get_int share_j "dropped_stale";
          };
        wins =
          (match Json.member "wins" j with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
              kvs
          | _ -> []);
      }
  | Some (Json.Str s) -> Error (Printf.sprintf "unsupported ledger schema %S" s)
  | _ -> Error "not a ledger: missing \"schema\" member"

let to_string ?(indent = true) t = Json.to_string ~indent (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Aggregate accessors. *)

let total f t = List.fold_left (fun acc d -> acc + f d) 0 t.depths

let decisions = total (fun d -> d.l_decisions)
let dec_rank = total (fun d -> d.l_dec_rank)
let dec_vsids = total (fun d -> d.l_dec_vsids)
let conflicts = total (fun d -> d.l_conflicts)

let rank_share t =
  let attributed = dec_rank t + dec_vsids t in
  if attributed = 0 then 0.0 else 100.0 *. float_of_int (dec_rank t) /. float_of_int attributed

(* ------------------------------------------------------------------ *)
(* Reports. *)

let bar width frac =
  let full = int_of_float (frac *. float_of_int width +. 0.5) in
  let full = max 0 (min width full) in
  String.make full '#' ^ String.make (width - full) ' '

let pp_depth_table ppf t =
  if t.depths = [] then Format.fprintf ppf "(no depth rows)@."
  else begin
    let maxd =
      List.fold_left (fun m d -> max m d.l_decisions) 1 t.depths |> float_of_int
    in
    Format.fprintf ppf
      "depth  outcome  mode       decisions (heat)        rank%%  conflicts  churn(+/-)  sw  solve_s@.";
    List.iter
      (fun d ->
        let attributed = d.l_dec_rank + d.l_dec_vsids in
        let rank_pct =
          if attributed = 0 then 0.0
          else 100.0 *. float_of_int d.l_dec_rank /. float_of_int attributed
        in
        Format.fprintf ppf "%5d  %-7s  %-9s  %8d %s %5.1f  %9d  %+5d/%-5d  %2s  %7.3f%s@."
          d.l_depth d.l_outcome d.l_mode d.l_decisions
          (bar 12 (float_of_int d.l_decisions /. maxd))
          rank_pct d.l_conflicts d.l_core_new (-d.l_core_dropped)
          (if d.l_switched then "*" else "")
          d.l_solve_s
          (if d.l_core_pre <> d.l_core_clauses then
             Printf.sprintf "  [coremin %d->%d]" d.l_core_pre d.l_core_clauses
           else ""))
      t.depths
  end

let pp_effectiveness ppf t =
  let unsat = List.length (List.filter (fun d -> d.l_outcome = "unsat") t.depths) in
  let sat = List.length (List.filter (fun d -> d.l_outcome = "sat") t.depths) in
  let churn_new = total (fun d -> d.l_core_new) t in
  let churn_dropped = total (fun d -> d.l_core_dropped) t in
  let switched = List.length (List.filter (fun d -> d.l_switched) t.depths) in
  Format.fprintf ppf "ordering effectiveness (%s)@." t.schema;
  Format.fprintf ppf "  depths solved     : %d (unsat %d, sat %d)@."
    (List.length t.depths) unsat sat;
  Format.fprintf ppf "  decisions         : %d (rank-guided %.1f%%, vsids %.1f%%)@."
    (decisions t) (rank_share t)
    (if dec_rank t + dec_vsids t = 0 then 0.0 else 100.0 -. rank_share t);
  Format.fprintf ppf "  conflicts         : %d@." (conflicts t);
  Format.fprintf ppf "  restarts          : %d@." t.restarts;
  Format.fprintf ppf "  dynamic fallbacks : %d switch event(s), %d/%d depths switched@."
    t.switches switched (List.length t.depths);
  Format.fprintf ppf "  core churn        : +%d / -%d vars across %d unsat depth(s)@."
    churn_new churn_dropped unsat;
  (let elim = total (fun d -> d.l_inpr_elim) t
   and sub = total (fun d -> d.l_inpr_sub) t
   and str = total (fun d -> d.l_inpr_str) t
   and probes = total (fun d -> d.l_inpr_probe_failed) t in
   if elim + sub + str + probes > 0 then
     Format.fprintf ppf
       "  inprocessing      : eliminated %d vars, subsumed %d, strengthened %d, failed probes %d@."
       elim sub str probes);
  (let pre = total (fun d -> d.l_core_pre) t
   and post = total (fun d -> d.l_core_clauses) t
   and cm_s = List.fold_left (fun acc d -> acc +. d.l_coremin_s) 0.0 t.depths in
   if pre <> post || cm_s > 0.0 then
     Format.fprintf ppf "  core minimisation : %d -> %d clauses (%.3fs)@." pre post cm_s);
  (match t.races with
  | [] -> Format.fprintf ppf "  races             : none@."
  | races ->
    let cancelled = List.fold_left (fun a r -> a + r.r_cancelled) 0 races in
    let rotated = List.fold_left (fun a r -> a + r.r_rotated) 0 races in
    Format.fprintf ppf "  races             : %d (cancelled racers %d%s; wins:%s)@."
      (List.length races) cancelled
      (if rotated > 0 then Printf.sprintf ", rotations %d" rotated else "")
      (if t.wins = [] then " none"
       else
         String.concat ""
           (List.map (fun (m, n) -> Printf.sprintf " %s %d" m n) t.wins)));
  Format.fprintf ppf
    "  sharing           : exported %d, imported %d, tainted-rejected %d, dropped-stale %d@."
    t.share.sh_exported t.share.sh_imported t.share.sh_rejected_tainted
    t.share.sh_dropped_stale;
  if t.depths <> [] then begin
    Format.fprintf ppf "  rank share by depth :";
    List.iter
      (fun d ->
        let attributed = d.l_dec_rank + d.l_dec_vsids in
        let pct =
          if attributed = 0 then 0.0
          else 100.0 *. float_of_int d.l_dec_rank /. float_of_int attributed
        in
        Format.fprintf ppf " d%d %.0f%%" d.l_depth pct)
      t.depths;
    Format.fprintf ppf "@."
  end

(* ------------------------------------------------------------------ *)
(* Diff. *)

type severity = Fail | Warn

type finding = { severity : severity; message : string }

let pct_drift a b =
  if a = 0 && b = 0 then 0.0
  else if a = 0 then infinity
  else 100.0 *. Float.abs (float_of_int (b - a)) /. float_of_int a

let diff ?(warn_pct = 25.0) (a : t) (b : t) =
  let findings = ref [] in
  let add severity fmt =
    Printf.ksprintf (fun message -> findings := { severity; message } :: !findings) fmt
  in
  (* A portfolio run records one row per racer per depth, so depth alone is
     not a key: pair rows by (depth, mode, occurrence index) so identical
     ledgers always diff clean and each racer's row meets its counterpart. *)
  let keyed depths =
    let seen = Hashtbl.create 16 in
    List.map
      (fun d ->
        let k = (d.l_depth, d.l_mode) in
        let n = Option.value ~default:0 (Hashtbl.find_opt seen k) in
        Hashtbl.replace seen k (n + 1);
        ((d.l_depth, d.l_mode, n), d))
      depths
  in
  let tbl_a = keyed a.depths in
  let tbl_b = keyed b.depths in
  List.iter
    (fun ((k, _, _) as key, da) ->
      match List.assoc_opt key tbl_b with
      | None -> add Warn "depth %d present only in baseline" k
      | Some db ->
        if da.l_outcome <> db.l_outcome then
          add Fail "depth %d outcome changed: %s -> %s" k da.l_outcome db.l_outcome;
        if pct_drift da.l_decisions db.l_decisions > warn_pct then
          add Warn "depth %d decisions drifted %d -> %d (>%.0f%%)" k da.l_decisions
            db.l_decisions warn_pct;
        if pct_drift da.l_conflicts db.l_conflicts > warn_pct then
          add Warn "depth %d conflicts drifted %d -> %d (>%.0f%%)" k da.l_conflicts
            db.l_conflicts warn_pct;
        if
          da.l_core_clauses > 0
          && db.l_core_clauses > da.l_core_clauses
          && pct_drift da.l_core_clauses db.l_core_clauses > warn_pct
        then
          add Warn "depth %d core grew %d -> %d clauses (>%.0f%%)" k da.l_core_clauses
            db.l_core_clauses warn_pct;
        if da.l_switched <> db.l_switched then
          add Warn "depth %d dynamic fallback %s" k
            (if db.l_switched then "now fires" else "no longer fires"))
    tbl_a;
  List.iter
    (fun ((k, _, _) as key, _) ->
      if not (List.mem_assoc key tbl_a) then
        add Warn "depth %d present only in candidate" k)
    tbl_b;
  let ra = rank_share a and rb = rank_share b in
  if Float.abs (ra -. rb) > 10.0 then
    add Warn "rank-guided decision share moved %.1f%% -> %.1f%%" ra rb;
  List.rev !findings

let pp_finding ppf f =
  Format.fprintf ppf "%s %s"
    (match f.severity with Fail -> "FAIL" | Warn -> "WARN")
    f.message
