lib/circuit/eval.ml: Array Hashtbl List Netlist
