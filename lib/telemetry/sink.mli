(** Telemetry event consumers.

    An {!event} is a timestamped, typed record with a flat list of scalar
    fields; a sink decides what happens to it: dropped ({!null}), serialised
    as one JSON object per line ({!of_channel}, {!of_buffer}), kept in memory
    ({!memory}), folded into running totals ({!aggregate}), or fanned out
    ({!tee}).

    The JSONL wire format puts [ts] (seconds since the telemetry handle was
    created) and [ev] (the event kind) first, then the fields in emission
    order:

    {v {"ts":0.0213,"ev":"span","name":"bcp","dur":0.0034,"count":1841} v}

    {!event_of_json} parses exactly the subset {!to_json} emits, so traces
    round-trip. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type event = {
  ts : float;  (** seconds since the owning handle was created *)
  kind : string;  (** "span", "counter", "gauge", "depth", "decision", ... *)
  fields : (string * value) list;
}

type t = {
  emit : event -> unit;
  flush : unit -> unit;
}

(** {1 Field helpers} *)

val find_int : (string * value) list -> string -> int option

val find_float : (string * value) list -> string -> float option
(** Accepts [Int] fields too (JSON does not distinguish). *)

val find_str : (string * value) list -> string -> string option

(** {1 JSONL codec} *)

val to_json : event -> string
(** One line, no trailing newline. *)

val event_of_json : string -> (event, string) result
(** Parse one line produced by {!to_json}.  The [ts] and [ev] members are
    extracted; everything else becomes [fields]. *)

val events_of_string : string -> event list
(** Parse a whole JSONL document (blank lines ignored).
    @raise Failure on malformed input. *)

(** {1 Sinks} *)

val null : t
(** Drops everything. *)

val tee : t list -> t
(** Forward every event to all of the given sinks.  Stateless itself; each
    constituent sink keeps (or lacks) its own lock. *)

val locked : t -> t
(** Serialise [emit] / [flush] calls to the wrapped sink behind a fresh
    mutex, making it safe to share across domains.  The stateful sinks
    below ({!of_buffer}, {!of_channel}, {!memory}, {!of_aggregate}) are
    already wrapped; use this for hand-rolled sinks that mutate shared
    state. *)

val of_buffer : Buffer.t -> t
(** Append one JSON line per event to the buffer.  Emission is
    mutex-serialised, so the sink may be shared across domains — as long as
    the buffer is not touched by anyone else concurrently. *)

val of_channel : out_channel -> t
(** Write one JSON line per event; [flush] flushes the channel.  Emission
    is mutex-serialised (whole lines, never interleaved). *)

val memory : unit -> t * (unit -> event list)
(** A sink that records events; the closure returns them in emission
    order.  Emission is mutex-serialised; call the read-back closure only
    after emitting domains have been joined (or otherwise quiesced). *)

(** {1 Aggregation} *)

type aggregate
(** Running totals: per-span-name call counts and seconds, counter sums,
    last-value gauges, instant-event tallies, and the ordered list of
    per-depth summary events. *)

val aggregate : unit -> aggregate

val of_aggregate : aggregate -> t
(** The sink that folds events into the given aggregate.  Emission is
    mutex-serialised; the accessors below are unlocked, so read them only
    after emitting domains have quiesced (e.g. after [Domain.join]). *)

val span_seconds : aggregate -> string -> float
(** Total seconds recorded under this span name (0 if never seen). *)

val span_count : aggregate -> string -> int

val counter_value : aggregate -> string -> int

val gauge_value : aggregate -> string -> float option

val tally_value : aggregate -> string -> int
(** Occurrences of an instant-event kind, e.g. ["decision.vsids"]. *)

val depth_rows : aggregate -> (string * value) list list
(** The fields of every "depth" event seen, in emission order. *)

val pp_report : Format.formatter -> aggregate -> unit
(** Human-readable phase breakdown: span table (sorted by total seconds),
    counters, gauges, event tallies, and a per-depth table with build /
    solve / CDG time columns and their totals. *)

val report_to_string : aggregate -> string

val json_of_aggregate : aggregate -> string
(** Machine-readable summary:
    [{"spans":{...},"counters":{...},"gauges":{...},"events":{...},
    "depths":[...]}]. *)
