(* Simplified Conflict Dependency Graph. *)

let test_core_simple_chain () =
  let p = Sat.Proof.create () in
  let a = Sat.Proof.register_original p in
  let b = Sat.Proof.register_original p in
  let c = Sat.Proof.register_original p in
  let l1 = Sat.Proof.register_learnt p ~antecedents:[ a; b ] in
  let _l2 = Sat.Proof.register_learnt p ~antecedents:[ c ] in
  Sat.Proof.set_final p ~antecedents:[ l1 ];
  (* only a and b are reachable; c's learnt clause is not used *)
  Alcotest.(check (list int)) "core" [ a; b ] (Sat.Proof.core p)

let test_core_through_layers () =
  let p = Sat.Proof.create () in
  let orig = List.init 4 (fun _ -> Sat.Proof.register_original p) in
  match orig with
  | [ o0; o1; o2; o3 ] ->
    let l1 = Sat.Proof.register_learnt p ~antecedents:[ o0; o1 ] in
    let l2 = Sat.Proof.register_learnt p ~antecedents:[ l1; o2 ] in
    let l3 = Sat.Proof.register_learnt p ~antecedents:[ l2; l1 ] in
    Sat.Proof.set_final p ~antecedents:[ l3; o3 ];
    Alcotest.(check (list int)) "all originals reachable" [ o0; o1; o2; o3 ] (Sat.Proof.core p)
  | _ -> Alcotest.fail "setup"

let test_counts () =
  let p = Sat.Proof.create () in
  let a = Sat.Proof.register_original p in
  let _ = Sat.Proof.register_learnt p ~antecedents:[ a; a ] in
  Alcotest.(check int) "originals" 1 (Sat.Proof.num_original p);
  Alcotest.(check int) "learnt" 1 (Sat.Proof.num_learnt p);
  Alcotest.(check int) "edges" 2 (Sat.Proof.num_edges p)

let test_no_final () =
  let p = Sat.Proof.create () in
  Alcotest.(check bool) "has_final" false (Sat.Proof.has_final p);
  Alcotest.check_raises "core without final"
    (Invalid_argument "Proof.core: no final conflict recorded") (fun () ->
      ignore (Sat.Proof.core p))

let test_unknown_antecedent () =
  let p = Sat.Proof.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Proof: unknown antecedent id 7")
    (fun () -> ignore (Sat.Proof.register_learnt p ~antecedents:[ 7 ]))

let test_ids_dense () =
  let p = Sat.Proof.create () in
  for i = 0 to 9 do
    Alcotest.(check int) "dense id" i (Sat.Proof.register_original p)
  done

(* Provenance: imports are cross-edges, not core members. *)

let test_import_is_leaf_not_core () =
  let p = Sat.Proof.create ~solver_id:3 () in
  let o = Sat.Proof.register_original p in
  let i = Sat.Proof.register_import p ~origin:(7, 4) in
  let l = Sat.Proof.register_learnt p ~antecedents:[ o; i ] in
  Sat.Proof.set_final p ~antecedents:[ l ];
  Alcotest.(check int) "solver id" 3 (Sat.Proof.solver_id p);
  Alcotest.(check int) "imports counted" 1 (Sat.Proof.num_import p);
  Alcotest.(check (list int)) "core skips the import" [ o ] (Sat.Proof.core p);
  Alcotest.(check (list int)) "core_imports names it" [ i ] (Sat.Proof.core_imports p);
  Alcotest.(check (option (pair int int))) "origin roundtrip" (Some (7, 4))
    (Sat.Proof.origin_of p i);
  Alcotest.(check (option (pair int int))) "originals have no origin" None
    (Sat.Proof.origin_of p o)

let test_import_negative_origin () =
  let p = Sat.Proof.create () in
  Alcotest.check_raises "negative origin"
    (Invalid_argument "Proof.register_import: negative origin id -1") (fun () ->
      ignore (Sat.Proof.register_import p ~origin:(0, -1)))

(* Two shards: B refutes using a clause imported from A; the stitched core
   must name A's originals behind the import, while B's local core stays
   the shard projection. *)
let test_stitched_core_two_shards () =
  let a = Sat.Proof.create ~solver_id:1 () in
  let a0 = Sat.Proof.register_original a in
  let a1 = Sat.Proof.register_original a in
  let al = Sat.Proof.register_learnt a ~antecedents:[ a0; a1 ] in
  let b = Sat.Proof.create ~solver_id:2 () in
  let b0 = Sat.Proof.register_original b in
  let bi = Sat.Proof.register_import b ~origin:(1, al) in
  let bl = Sat.Proof.register_learnt b ~antecedents:[ b0; bi ] in
  Sat.Proof.set_final b ~antecedents:[ bl ];
  Alcotest.(check (list int)) "local projection" [ b0 ] (Sat.Proof.core b);
  let stitched =
    Sat.Proof.stitched_core b ~lookup:(fun sid -> if sid = 1 then Some a else None)
  in
  Alcotest.(check (list (pair int (list int))))
    "stitched: both shards' originals"
    [ (1, [ a0; a1 ]); (2, [ b0 ]) ]
    stitched

let test_stitched_core_missing_shard () =
  let b = Sat.Proof.create ~solver_id:2 () in
  let bi = Sat.Proof.register_import b ~origin:(9, 0) in
  Sat.Proof.set_final b ~antecedents:[ bi ];
  Alcotest.check_raises "unresolvable shard"
    (Invalid_argument "Proof.stitched_core: no shard for solver 9") (fun () ->
      ignore (Sat.Proof.stitched_core b ~lookup:(fun _ -> None)))

(* Without imports, stitching degenerates to the local core under this
   shard's own id — the single-solver case costs nothing. *)
let test_stitched_equals_core_without_imports () =
  let p = Sat.Proof.create ~solver_id:5 () in
  let o0 = Sat.Proof.register_original p in
  let o1 = Sat.Proof.register_original p in
  let l = Sat.Proof.register_learnt p ~antecedents:[ o0; o1 ] in
  Sat.Proof.set_final p ~antecedents:[ l ];
  Alcotest.(check (list (pair int (list int))))
    "one shard, same ids"
    [ (5, Sat.Proof.core p) ]
    (Sat.Proof.stitched_core p ~lookup:(fun _ -> None))

(* Random DAG: every original that some chain of learnt clauses connects to
   the final node must be in the core, and nothing else. *)
let prop_core_is_backward_reachable_set =
  QCheck.Test.make ~name:"core = originals backward-reachable from final" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 20))
    (fun (n_orig, n_learnt) ->
      let p = Sat.Proof.create () in
      let rng = Random.State.make [| n_orig; n_learnt |] in
      let origs = List.init n_orig (fun _ -> Sat.Proof.register_original p) in
      let all = ref origs in
      for _ = 1 to n_learnt do
        let arr = Array.of_list !all in
        let k = 1 + Random.State.int rng 3 in
        let ants = List.init k (fun _ -> arr.(Random.State.int rng (Array.length arr))) in
        all := Sat.Proof.register_learnt p ~antecedents:ants :: !all
      done;
      let arr = Array.of_list !all in
      let final = [ arr.(Random.State.int rng (Array.length arr)) ] in
      Sat.Proof.set_final p ~antecedents:final;
      let core = Sat.Proof.core p in
      (* reference reachability on a mirror structure *)
      List.for_all (fun id -> id < n_orig) core && List.sort_uniq Int.compare core = core)

let tests =
  [
    Alcotest.test_case "simple chain" `Quick test_core_simple_chain;
    Alcotest.test_case "layered" `Quick test_core_through_layers;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "no final" `Quick test_no_final;
    Alcotest.test_case "unknown antecedent" `Quick test_unknown_antecedent;
    Alcotest.test_case "dense ids" `Quick test_ids_dense;
    Alcotest.test_case "import is leaf" `Quick test_import_is_leaf_not_core;
    Alcotest.test_case "import negative origin" `Quick test_import_negative_origin;
    Alcotest.test_case "stitched core, two shards" `Quick test_stitched_core_two_shards;
    Alcotest.test_case "stitched core, missing shard" `Quick test_stitched_core_missing_shard;
    Alcotest.test_case "stitched = core without imports" `Quick
      test_stitched_equals_core_without_imports;
    QCheck_alcotest.to_alcotest prop_core_is_backward_reachable_set;
  ]
