lib/core/induction.mli: Circuit Engine Format Sat Trace
