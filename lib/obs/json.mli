(** A small nested JSON codec for ledger and bench documents.

    {!Telemetry.Sink}'s JSONL codec deliberately handles only flat objects
    of scalars (one event per line); the run ledger and bench snapshots are
    nested documents, so they get their own value type here.

    [to_string] preserves field order and prints floats in their shortest
    round-tripping form, so printing is deterministic and
    [of_string |> to_string] is the identity on anything this module
    printed — the ledger round-trip test relies on that. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with 2-space
    indentation (same token stream, different whitespace). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Numbers without a fraction or
    exponent become [Int], others [Float]. *)

(** {1 Accessors}

    [member]/[to_*] are total lookups; the [get_*] forms bundle a lookup
    with a coercion and a default for the common "read a field of an
    object" case. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish). *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val get_int : ?default:int -> t -> string -> int
val get_float : ?default:float -> t -> string -> float
val get_str : ?default:string -> t -> string -> string
val get_bool : ?default:bool -> t -> string -> bool
val get_list : t -> string -> t list
(** [[]] when absent or not a list. *)
