type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type event = {
  ts : float;
  kind : string;
  fields : (string * value) list;
}

type t = {
  emit : event -> unit;
  flush : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Field helpers.                                                      *)
(* ------------------------------------------------------------------ *)

let find_int fields key =
  match List.assoc_opt key fields with
  | Some (Int i) -> Some i
  | Some (Float _ | Bool _ | Str _) | None -> None

let find_float fields key =
  match List.assoc_opt key fields with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some (Bool _ | Str _) | None -> None

let find_str fields key =
  match List.assoc_opt key fields with
  | Some (Str s) -> Some s
  | Some (Int _ | Float _ | Bool _) | None -> None

(* ------------------------------------------------------------------ *)
(* JSON encoding (flat objects of scalars only).                       *)
(* ------------------------------------------------------------------ *)

(* Shortest representation that parses back to the same float. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Str s -> escape_string b s

let to_json e =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"ts\":";
  Buffer.add_string b (float_str e.ts);
  Buffer.add_string b ",\"ev\":";
  escape_string b e.kind;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      escape_string b k;
      Buffer.add_char b ':';
      add_value b v)
    e.fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON decoding, covering exactly the subset [to_json] emits: one     *)
(* object per line, scalar values only.                                *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let event_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise (Bad "unexpected end of line") in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise (Bad "truncated \\u escape");
          let code = int_of_string ("0x" ^ String.sub line !pos 4) in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else raise (Bad "non-ASCII \\u escape")
        | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
        loop ()
      | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_scalar () =
    match peek () with
    | '"' -> Str (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then (pos := !pos + 4; Bool true)
      else raise (Bad "bad literal")
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then (pos := !pos + 5; Bool false)
      else raise (Bad "bad literal")
    | _ ->
      let start = !pos in
      let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
      while !pos < n && is_num line.[!pos] do
        advance ()
      done;
      if !pos = start then raise (Bad (Printf.sprintf "bad value at %d" start));
      let s = String.sub line start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then Float (float_of_string s)
      else (match int_of_string_opt s with Some i -> Int i | None -> Float (float_of_string s))
  in
  try
    skip_ws ();
    expect '{';
    let fields = ref [] in
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> advance (); members ()
      | '}' -> advance ()
      | c -> raise (Bad (Printf.sprintf "expected , or } but found %c" c))
    in
    skip_ws ();
    if peek () = '}' then advance () else members ();
    let fields = List.rev !fields in
    let ts =
      match find_float fields "ts" with
      | Some f -> f
      | None -> raise (Bad "missing ts")
    in
    let kind =
      match find_str fields "ev" with
      | Some s -> s
      | None -> raise (Bad "missing ev")
    in
    let rest = List.filter (fun (k, _) -> k <> "ts" && k <> "ev") fields in
    Ok { ts; kind; fields = rest }
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

let events_of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line ->
         match event_of_json line with
         | Ok e -> e
         | Error msg -> raise (Bad (Printf.sprintf "%s in %S" msg line)))

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)
(* ------------------------------------------------------------------ *)

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

(* Every sink that mutates shared state is wrapped in [locked] so emission
   from multiple domains (the portfolio workers) serialises instead of
   corrupting buffers / hashtables.  [tee] and [null] own no state and need
   no lock of their own. *)
let locked sink =
  let m = Mutex.create () in
  {
    emit = (fun e -> Mutex.protect m (fun () -> sink.emit e));
    flush = (fun () -> Mutex.protect m (fun () -> sink.flush ()));
  }

let of_buffer b =
  locked
    {
      emit =
        (fun e ->
          Buffer.add_string b (to_json e);
          Buffer.add_char b '\n');
      flush = (fun () -> ());
    }

let of_channel oc =
  locked
    {
      emit =
        (fun e ->
          output_string oc (to_json e);
          output_char oc '\n');
      flush = (fun () -> flush oc);
    }

let memory () =
  let events = ref [] in
  let sink =
    locked { emit = (fun e -> events := e :: !events); flush = (fun () -> ()) }
  in
  (sink, fun () -> List.rev !events)

(* ------------------------------------------------------------------ *)
(* In-memory aggregation and reporting.                                *)
(* ------------------------------------------------------------------ *)

type span_cell = {
  mutable count : int;
  mutable seconds : float;
}

type aggregate = {
  spans : (string, span_cell) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  tallies : (string, int ref) Hashtbl.t; (* instant events, by kind (and kind.src) *)
  mutable depths : (string * value) list list; (* "depth" events, oldest first *)
}

let aggregate () =
  {
    spans = Hashtbl.create 16;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    tallies = Hashtbl.create 16;
    depths = [];
  }

let tally agg key n =
  match Hashtbl.find_opt agg.tallies key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace agg.tallies key (ref n)

let feed agg e =
  match e.kind with
  | "span" ->
    let name = Option.value ~default:"?" (find_str e.fields "name") in
    let dur = Option.value ~default:0.0 (find_float e.fields "dur") in
    let count = Option.value ~default:1 (find_int e.fields "count") in
    (match Hashtbl.find_opt agg.spans name with
    | Some c ->
      c.count <- c.count + count;
      c.seconds <- c.seconds +. dur
    | None -> Hashtbl.replace agg.spans name { count; seconds = dur })
  | "counter" ->
    let name = Option.value ~default:"?" (find_str e.fields "name") in
    let v = Option.value ~default:0 (find_int e.fields "value") in
    (match Hashtbl.find_opt agg.counters name with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace agg.counters name (ref v))
  | "gauge" ->
    let name = Option.value ~default:"?" (find_str e.fields "name") in
    let v = Option.value ~default:0.0 (find_float e.fields "value") in
    (match Hashtbl.find_opt agg.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace agg.gauges name (ref v))
  | "depth" -> agg.depths <- e.fields :: agg.depths
  | kind ->
    tally agg kind 1;
    (match find_str e.fields "src" with
    | Some src -> tally agg (kind ^ "." ^ src) 1
    | None -> ())

let of_aggregate agg = locked { emit = feed agg; flush = (fun () -> ()) }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let span_seconds agg name =
  match Hashtbl.find_opt agg.spans name with Some c -> c.seconds | None -> 0.0

let span_count agg name =
  match Hashtbl.find_opt agg.spans name with Some c -> c.count | None -> 0

let counter_value agg name =
  match Hashtbl.find_opt agg.counters name with Some r -> !r | None -> 0

let gauge_value agg name = Option.map ( ! ) (Hashtbl.find_opt agg.gauges name)

let tally_value agg name =
  match Hashtbl.find_opt agg.tallies name with Some r -> !r | None -> 0

let depth_rows agg = List.rev agg.depths

let pp_report ppf agg =
  let spans = sorted_bindings agg.spans (fun c -> c) in
  Format.fprintf ppf "@[<v>== telemetry: phase breakdown ==@,";
  if spans <> [] then begin
    Format.fprintf ppf "%-22s %12s %12s@," "phase" "calls" "seconds";
    let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b.seconds a.seconds) spans in
    List.iter
      (fun (name, c) -> Format.fprintf ppf "%-22s %12d %12.3f@," name c.count c.seconds)
      sorted
  end;
  let counters = sorted_bindings agg.counters ( ! ) in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-28s %12d@," name v) counters
  end;
  let gauges = sorted_bindings agg.gauges ( ! ) in
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-28s %12.3f@," name v) gauges
  end;
  let tallies = sorted_bindings agg.tallies ( ! ) in
  if tallies <> [] then begin
    Format.fprintf ppf "events:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-28s %12d@," name v) tallies
  end;
  let depths = depth_rows agg in
  if depths <> [] then begin
    Format.fprintf ppf "per-depth:@,";
    Format.fprintf ppf "%5s %-8s %9s %9s %9s %10s %12s %9s %7s %7s@," "depth" "outcome"
      "build(s)" "solve(s)" "cdg(s)" "decisions" "implications" "conflicts" "core" "vars";
    let tot_build = ref 0.0 and tot_solve = ref 0.0 and tot_cdg = ref 0.0 in
    List.iter
      (fun fields ->
        let fint k = Option.value ~default:0 (find_int fields k) in
        let ffloat k = Option.value ~default:0.0 (find_float fields k) in
        let fstr k = Option.value ~default:"-" (find_str fields k) in
        tot_build := !tot_build +. ffloat "build_s";
        tot_solve := !tot_solve +. ffloat "solve_s";
        tot_cdg := !tot_cdg +. ffloat "cdg_s";
        Format.fprintf ppf "%5d %-8s %9.3f %9.3f %9.3f %10d %12d %9d %7d %7d@," (fint "depth")
          (fstr "outcome") (ffloat "build_s") (ffloat "solve_s") (ffloat "cdg_s")
          (fint "decisions") (fint "implications") (fint "conflicts") (fint "core_clauses")
          (fint "core_vars"))
      depths;
    Format.fprintf ppf "%5s %-8s %9.3f %9.3f %9.3f@," "TOTAL" "" !tot_build !tot_solve !tot_cdg
  end;
  Format.fprintf ppf "@]"

let report_to_string agg = Format.asprintf "@[<v>%a@]" pp_report agg

let json_of_aggregate agg =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"spans\":{";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  List.iter
    (fun (name, (c : span_cell)) ->
      sep ();
      escape_string b name;
      Buffer.add_string b (Printf.sprintf ":{\"count\":%d,\"seconds\":%s}" c.count
                             (float_str c.seconds)))
    (sorted_bindings agg.spans (fun c -> c));
  Buffer.add_string b "},\"counters\":{";
  first := true;
  List.iter
    (fun (name, v) ->
      sep ();
      escape_string b name;
      Buffer.add_string b (Printf.sprintf ":%d" v))
    (sorted_bindings agg.counters ( ! ));
  Buffer.add_string b "},\"gauges\":{";
  first := true;
  List.iter
    (fun (name, v) ->
      sep ();
      escape_string b name;
      Buffer.add_char b ':';
      Buffer.add_string b (float_str v))
    (sorted_bindings agg.gauges ( ! ));
  Buffer.add_string b "},\"events\":{";
  first := true;
  List.iter
    (fun (name, v) ->
      sep ();
      escape_string b name;
      Buffer.add_string b (Printf.sprintf ":%d" v))
    (sorted_bindings agg.tallies ( ! ));
  Buffer.add_string b "},\"depths\":[";
  first := true;
  List.iter
    (fun fields ->
      sep ();
      Buffer.add_char b '{';
      let inner_first = ref true in
      List.iter
        (fun (k, v) ->
          if !inner_first then inner_first := false else Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          add_value b v)
        fields;
      Buffer.add_char b '}')
    (depth_rows agg);
  Buffer.add_string b "]}";
  Buffer.contents b
