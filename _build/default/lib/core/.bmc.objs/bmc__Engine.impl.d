lib/core/engine.ml: Circuit Format List Printf Sat Score Shtrichman Sys Trace Unroll Varmap
