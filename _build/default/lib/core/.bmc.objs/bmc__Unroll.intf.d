lib/core/unroll.mli: Circuit Sat Varmap
