type node =
  | Original
  | Import of int * int (* origin (solver id, local id) in a sibling shard *)
  | Learnt of int array (* antecedent ids, local to this shard *)

type t = {
  nodes : node Vec.t;
  solver_id : int; (* provenance: which solver owns this shard *)
  mutable n_original : int;
  mutable n_import : int;
  mutable n_learnt : int;
  mutable n_edges : int;
  mutable final : int array option;
  timed : bool; (* clock the bookkeeping (telemetry); off = zero overhead *)
  mutable cdg_time : float;
}

let create ?(timed = false) ?(solver_id = 0) () =
  {
    nodes = Vec.create ~dummy:Original ();
    solver_id;
    n_original = 0;
    n_import = 0;
    n_learnt = 0;
    n_edges = 0;
    final = None;
    timed;
    cdg_time = 0.0;
  }

let solver_id t = t.solver_id

let register_original_ t =
  let id = Vec.length t.nodes in
  Vec.push t.nodes Original;
  t.n_original <- t.n_original + 1;
  id

let register_original t =
  if not t.timed then register_original_ t
  else begin
    let t0 = Sys.time () in
    let id = register_original_ t in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    id
  end

let register_import_ t ~origin:(o_solver, o_id) =
  if o_id < 0 then
    invalid_arg (Printf.sprintf "Proof.register_import: negative origin id %d" o_id);
  let id = Vec.length t.nodes in
  Vec.push t.nodes (Import (o_solver, o_id));
  t.n_import <- t.n_import + 1;
  t.n_edges <- t.n_edges + 1;
  id

let register_import t ~origin =
  if not t.timed then register_import_ t ~origin
  else begin
    let t0 = Sys.time () in
    let id = register_import_ t ~origin in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    id
  end

let check_ant t id =
  if id < 0 || id >= Vec.length t.nodes then
    invalid_arg (Printf.sprintf "Proof: unknown antecedent id %d" id)

let register_learnt_ t ~antecedents =
  List.iter (check_ant t) antecedents;
  let ants = Array.of_list antecedents in
  let id = Vec.length t.nodes in
  Vec.push t.nodes (Learnt ants);
  t.n_learnt <- t.n_learnt + 1;
  t.n_edges <- t.n_edges + Array.length ants;
  id

let register_learnt t ~antecedents =
  if not t.timed then register_learnt_ t ~antecedents
  else begin
    let t0 = Sys.time () in
    let id = register_learnt_ t ~antecedents in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    id
  end

let set_final_ t ~antecedents =
  List.iter (check_ant t) antecedents;
  t.final <- Some (Array.of_list antecedents);
  t.n_edges <- t.n_edges + List.length antecedents

let set_final t ~antecedents =
  if not t.timed then set_final_ t ~antecedents
  else begin
    let t0 = Sys.time () in
    set_final_ t ~antecedents;
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0)
  end

let has_final t = t.final <> None

let clear_final t = t.final <- None

let core_ t =
  match t.final with
  | None -> invalid_arg "Proof.core: no final conflict recorded"
  | Some roots ->
    let n = Vec.length t.nodes in
    let visited = Array.make n false in
    let acc = ref [] in
    let stack = ref (Array.to_list roots) in
    let visit id =
      if not visited.(id) then begin
        visited.(id) <- true;
        match Vec.get t.nodes id with
        | Original -> acc := id :: !acc
        | Import _ -> () (* foreign leaf: invisible to the single-shard core *)
        | Learnt ants -> Array.iter (fun a -> stack := a :: !stack) ants
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        visit id;
        loop ()
    in
    loop ();
    List.sort Int.compare !acc

let core t =
  if not t.timed then core_ t
  else begin
    let t0 = Sys.time () in
    let r = core_ t in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    r
  end

(* The import leaves the single-shard core walk skips over: the IDs of the
   [Import] nodes reachable from the final conflict.  Together with {!core}
   they are the complete leaf set of the local refutation — a caller that
   cannot stitch (siblings still running) can still account for the foreign
   axioms by their recorded literals. *)
let core_imports t =
  match t.final with
  | None -> invalid_arg "Proof.core: no final conflict recorded"
  | Some roots ->
    let n = Vec.length t.nodes in
    let visited = Array.make n false in
    let acc = ref [] in
    let stack = ref (Array.to_list roots) in
    let visit id =
      if not visited.(id) then begin
        visited.(id) <- true;
        match Vec.get t.nodes id with
        | Original -> ()
        | Import _ -> acc := id :: !acc
        | Learnt ants -> Array.iter (fun a -> stack := a :: !stack) ants
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        visit id;
        loop ()
    in
    loop ();
    List.sort Int.compare !acc

(* Cross-shard core: the same backwards walk, but an [Import (s, i)] node
   continues into shard [s] at node [i] instead of being dropped.  The
   merged graph is acyclic because a clause is published to the exchange
   strictly before any sibling can import it, so an import can only ever
   reference derivations that were complete at publication time. *)
let stitched_core t ~lookup =
  match t.final with
  | None -> invalid_arg "Proof.core: no final conflict recorded"
  | Some roots ->
    let visited = Hashtbl.create 1024 in
    let per_shard : (int, int list ref) Hashtbl.t = Hashtbl.create 7 in
    let shard_of sid =
      if sid = t.solver_id then t
      else
        match lookup sid with
        | Some s ->
          if s.solver_id <> sid then
            invalid_arg
              (Printf.sprintf
                 "Proof.stitched_core: lookup returned shard %d for solver %d"
                 s.solver_id sid);
          s
        | None ->
          invalid_arg
            (Printf.sprintf "Proof.stitched_core: no shard for solver %d" sid)
    in
    let stack = ref (List.map (fun id -> (t, id)) (Array.to_list roots)) in
    let visit (sh, id) =
      let key = (sh.solver_id, id) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        if id < 0 || id >= Vec.length sh.nodes then
          invalid_arg
            (Printf.sprintf "Proof.stitched_core: unknown node %d in shard %d" id
               sh.solver_id);
        match Vec.get sh.nodes id with
        | Original ->
          let acc =
            match Hashtbl.find_opt per_shard sh.solver_id with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add per_shard sh.solver_id r;
              r
          in
          acc := id :: !acc
        | Import (os, oi) -> stack := (shard_of os, oi) :: !stack
        | Learnt ants -> Array.iter (fun a -> stack := (sh, a) :: !stack) ants
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | top :: rest ->
        stack := rest;
        visit top;
        loop ()
    in
    loop ();
    Hashtbl.fold
      (fun sid acc l -> (sid, List.sort Int.compare !acc) :: l)
      per_shard []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let antecedents t id =
  if id < 0 || id >= Vec.length t.nodes then None
  else
    match Vec.get t.nodes id with
    | Original | Import _ -> None
    | Learnt ants -> Some ants

let origin_of t id =
  if id < 0 || id >= Vec.length t.nodes then None
  else
    match Vec.get t.nodes id with
    | Original | Learnt _ -> None
    | Import (s, i) -> Some (s, i)

let final t = t.final

let num_original t = t.n_original

let num_import t = t.n_import

let num_learnt t = t.n_learnt

let num_edges t = t.n_edges

let cdg_seconds t = t.cdg_time
