lib/core/trace.ml: Array Circuit Format List Printf Unroll
