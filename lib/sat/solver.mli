(** A Chaff-style CDCL SAT solver (paper, Section 2 and 3.3).

    The solver implements the DLL search loop of the paper's Figure 1 with
    the machinery the paper's method is defined against:

    - two-watched-literal Boolean constraint propagation;
    - first-UIP conflict analysis with conflict-clause learning and
      non-chronological backtracking;
    - Chaff's per-literal VSIDS decision heuristic ([cha_score] halved every
      256 conflicts, incremented by conflict-clause occurrences), optionally
      combined with an external per-variable ranking ({!Order.mode});
    - periodic deletion of low-activity conflict clauses;
    - Luby restarts;
    - an optional simplified Conflict Dependency Graph ({!Proof}) from which
      the unsatisfiable core is extracted after an UNSAT answer, without
      interfering with clause deletion.

    The solver is incremental: after a {!solve} call, more clauses can be
    added with {!add_clause} (and variables with {!new_var}), and {!solve}
    can be called again — learnt clauses, literal activities and the proof
    graph survive between calls.  A call may pass {e assumptions}: literals
    temporarily forced true; an [Unsat] answer then means "unsatisfiable
    under these assumptions" and {!failed_assumptions} names a responsible
    subset, while the {!unsat_core} machinery reports the clauses used.
    This is the substrate for the incremental-BMC combination the paper's
    conclusion anticipates. *)

type t

type outcome =
  | Sat
  | Unsat
  | Unknown  (** resource budget exhausted *)

type budget = {
  max_conflicts : int option;
      (** per {!solve} call — an incremental solver grants every call the
          full allowance, whatever earlier calls consumed *)
  max_propagations : int option;  (** per {!solve} call, like [max_conflicts] *)
  max_seconds : float option;  (** CPU seconds per {!solve} call, via [Sys.time] *)
  stop : (unit -> bool) option;
      (** External cooperative-stop hook.  Polled together with the other
          budget checks — after every conflict, every 1024 decisions and
          every 4096 propagations (the last one inside BCP itself, so even a
          conflict-free solve chewing through huge implication chains
          observes cancellation promptly).  At most one restart interval
          elapses between the hook first returning [true] and the solve
          returning [Unknown].  The hook must be cheap and thread-safe (the
          portfolio layer passes an [Atomic.get] behind a closure); it is
          called from the solver's own domain. *)
}

val no_budget : budget

val create :
  ?with_proof:bool ->
  ?with_drat:bool ->
  ?minimize:bool ->
  ?mode:Order.mode ->
  ?telemetry:Telemetry.t ->
  ?solver_id:int ->
  Cnf.t ->
  t
(** [create cnf] prepares a solver over a snapshot of [cnf] (later mutations
    of [cnf] are not seen).  [with_proof] (default [false]) enables the
    simplified-CDG bookkeeping needed for {!unsat_core}.  [minimize]
    (default [false]) enables conflict-clause minimisation — off by default
    because the paper's substrate, Chaff, predates it.  [mode] selects the
    decision ordering (default {!Order.Vsids}); in [Dynamic] mode the
    fallback threshold is [num_literals cnf / 64] decisions, as in the
    paper.  [with_drat] (default [false]) additionally records the clausal
    (DRAT) proof for {!drat_events} / {!Checker}.  [telemetry] (default
    {!Telemetry.disabled}) turns on structured tracing: per-solve phase
    spans ("bcp", "analyze", "cdg", "solve"), "reduce_db" spans, instant
    "restart" / "switch" events, and per-solve "decisions.rank" /
    "decisions.vsids" counters (the decision-source histogram, attributed
    per variable by {!Order.decided_by_rank} and published coalesced —
    never as per-decision events); it also feeds the wall-time fields of
    {!Stats.t} and enables the timed CDG bookkeeping.  The attribution
    counters in {!Stats.t} are maintained unconditionally.  [solver_id]
    (default [0]) is this solver's global provenance id — its proof shard's
    name in a cross-solver dependency graph; the portfolio layer passes
    each racer its exchange endpoint id so [(solver id, clause id)] pairs
    travelling with shared clauses resolve unambiguously. *)

val solve : ?budget:budget -> ?assumptions:Lit.t list -> t -> outcome
(** Run the search, optionally under assumptions.  Each call starts from
    decision level 0 but keeps learnt clauses and activities.  With
    assumptions, [Unsat] is relative to them unless the formula itself is
    refuted. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause between solve calls.  Retracts all decisions first.
    Variables beyond {!num_vars} are created automatically. *)

val new_var : t -> Lit.var
(** Allocate a fresh variable (incremental use). *)

val failed_assumptions : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset of the assumptions
    responsible for the conflict (empty when the formula itself is
    unsatisfiable).
    @raise Invalid_argument unless the last outcome was [Unsat]. *)

(** {2 Pluggable branching heuristics (the ordering laboratory)}

    The solver's Chaff core stays fixed; an external heuristic plugs in
    through four narrow callbacks.  All heuristic state lives behind the
    closures — the solver never inspects it, so registries of heuristics
    (see [lib/ordering]) compose without touching this module. *)

type hooks = {
  hk_name : string;  (** heuristic name, for ledgers and race rows *)
  hk_on_conflict : Lit.t list -> unit;
      (** fired once per learnt conflict clause (after the built-in
          activity bumps), with the learnt literals *)
  hk_on_restart : unit -> unit;  (** fired at every restart boundary *)
  hk_bias : Lit.var -> bool option;
      (** consulted once per decision: [Some b] overrides the sign of the
          decision literal on that variable, [None] keeps the heap's pick *)
  hk_permute : (Lit.t list -> Lit.t list) option;
      (** when present, permutes the assumption vector at solve start; must
          return the same multiset of literals — order is pure strategy *)
}

val set_order : ?hooks:hooks -> t -> Order.mode -> unit
(** Swap the decision-ordering mode on a live solver between {!solve}
    calls (retracting any outstanding decisions first), and install (or,
    when [hooks] is absent, remove) the pluggable heuristic callbacks.
    What survives the swap: the accumulated VSIDS literal activities
    ([cha_score]), learnt clauses and the proof graph — the solver's
    search experience.  What is replaced: the external per-variable rank
    array ([Static] / [Dynamic] install the new ranking, [Vsids] clears
    it), and a [Dynamic] swap re-arms the fallback-to-VSIDS trigger.  The
    decision heap itself is rebuilt against the new keys at the start of
    the next {!solve}.  This is how a {!Session}-style incremental BMC run
    re-ranks one persistent solver from each instance's unsat core instead
    of seeding a fresh solver per depth.  (The historical [set_mode] alias
    is gone: this is the single entry point of the heuristic registry.) *)

val set_rank : t -> Lit.var -> float -> unit
(** Point update of one variable's rank in the live decision order (see
    {!Order.set_rank}) — the mutation path for conflict-frequency
    heuristics that refine their ranking from inside [hk_on_conflict]. *)

val heuristic_name : t -> string option
(** The [hk_name] of the installed hooks, if any. *)

(** {2 Clause sharing (the portfolio's learnt-clause exchange)}

    The solver side of cross-solver clause exchange: an export filter fired
    at clause-learning time and an import hook polled at solve-start and
    restart boundaries.  The solver stays transport-agnostic — packing,
    remapping and deduplication live in the exchange layer above.

    {b Soundness.}  A clause learnt under instance-local activation guards
    may be true only in this session, so exporting it to a sibling would be
    unsound.  The filter tracks {e taint} through derivations: originals
    containing a variable marked with {!mark_local} are tainted, a learnt
    clause is tainted when any antecedent of its 1UIP derivation (including
    level-0 reason chains and minimisation steps) was tainted or when the
    clause itself mentions a local variable (an assumption guard can enter
    as a decision literal without being resolved against).  Tainted clauses
    are never handed to [export]. *)

val mark_local : t -> Lit.var -> unit
(** Declare a variable instance-local (activation guards, per-instance
    Tseitin auxiliaries).  Grows the variable space if needed. *)

val set_share :
  ?max_size:int ->
  ?max_lbd:int ->
  ?export_budget:int ->
  ?tune:(unit -> int option) ->
  t ->
  export:(Lit.t array -> lbd:int -> src_id:int -> unit) ->
  import:(unit -> (Lit.t list * (int * int) option) list) ->
  unit
(** Install sharing hooks.  [export] receives each learnt clause that is at
    most [max_size] literals (default 8), has literal-block distance at
    most [max_lbd] (default 4) and is untainted, together with the clause's
    pseudo ID in this solver's proof shard ([src_id]; [-1] when proof
    logging is off).  [export_budget] (default unlimited) caps the number
    of exports per restart interval; clauses withheld by the cap count as
    [shared_throttled] in {!Stats.t} and the quota refills at every
    restart.  [tune] is polled at each restart boundary: returning
    [Some cap] moves the live LBD cap (clamped to at least 1) — the
    adaptive-throttle path, typically fed by the exchange layer's
    import-usefulness counters ([Share.Exchange.tune]).  [import] is polled at solve-start and at every
    restart (decision level 0); it must return clauses already remapped to
    this solver's variables, each sound for the formula being solved and
    each paired with its global [(solver id, clause id)] provenance when
    the exporter supplied one.  Imports attach as learnt clauses (eligible
    for database reduction); in proof mode a provenance-carrying import
    becomes an [Import] cross-edge into the exporter's shard — {!unsat_core}
    still reports the exact {e local-shard} core (foreign leaves excluded),
    and {!stitched_core} resolves the cross-edges for the exact cross-solver
    core.  With DRAT logging on, each import is additionally recorded as an
    [i]-prefixed trusted axiom ({!Checker.event}), so sharing and clausal
    proofs coexist.
    @raise Invalid_argument on caps < 1. *)

val clear_share : t -> unit

(** {2 Inprocessing}

    Proof-aware in-solver simplification, run between {!solve} calls —
    the {!Session} calls it at BMC depth boundaries.  One {!inprocess}
    run saturates level-0 propagation, performs failed-literal probing
    (each failed probe becomes an ordinary learnt unit), removes
    level-0-satisfied clauses, and runs the {!Inprocess} engine —
    subsumption, self-subsuming resolution and bounded variable
    elimination — over the live clause database.  Every derived clause is
    registered in the proof graph with its antecedent IDs and logged as a
    DRAT addition before its parents' deletions, so {!unsat_core} and
    {!drat_events} stay exact.

    An eliminated variable leaves the search space: it is never decided,
    clauses over it are removed, and {!model} extends satisfying
    assignments over it from the saved occurrence lists, so callers see a
    complete model.  Because later {!add_clause} / {!solve} calls must
    not mention eliminated variables (that would be unsound without
    clause restoration), callers {!freeze} every variable that can recur
    — assumption variables, variables future clauses will mention.
    Frozen variables are exempt from elimination only; everything else
    still applies to them. *)

val freeze : t -> Lit.var -> unit
(** Exempt a variable from elimination by {!inprocess}.  Grows the
    variable space if needed.  Freezing is idempotent and reversible with
    {!melt}; it has no effect on an already-eliminated variable. *)

val melt : t -> Lit.var -> unit
(** Undo {!freeze}: the variable becomes eliminable again from the next
    {!inprocess} run on. *)

val is_frozen : t -> Lit.var -> bool

val is_eliminated : t -> Lit.var -> bool
(** Whether {!inprocess} eliminated the variable.  {!add_clause} and
    assumptions mentioning such a variable raise [Invalid_argument]. *)

val num_eliminated : t -> int

val inprocess : ?config:Inprocess.config -> t -> Inprocess.stats
(** Run one inprocessing pass under [config] (default
    {!Inprocess.default}) and return its statistics (also accumulated
    into {!stats} as the [inpr_*] fields).  Retracts all decisions
    first and clears any cached outcome and pending assumption state.  A
    refutation discovered during the run (a failed probe propagating to a
    level-0 conflict, or an empty resolvent) is recorded exactly like a
    search refutation: the next {!solve} answers [Unsat] with the proof
    final already set.  No-op when the solver is already refuted.  With
    [time_slice = None] (the default) a run is deterministic. *)

val set_recorder : t -> Obs.Recorder.t -> unit
(** Install a flight recorder.  The solver then records low-rate events to
    the calling domain's ring — {!Obs.Recorder.Restart}, [Reduce_db],
    [Compact], [Switch], [Solve], [Share_export], [Share_import] — cheap
    enough to leave on in production and snapshottable post-mortem.  Hot
    per-decision / per-propagation paths are never recorded. *)

val clear_recorder : t -> unit

val set_restart_base : t -> int -> unit
(** Replace the Luby restart sequence with one of the given unit (default
    128), restarting the sequence.  The portfolio gives each racer a
    distinct unit so sharing has heterogeneous producers.
    @raise Invalid_argument if the base is < 1 (via {!Luby.create}). *)

val set_max_learnts : t -> int -> unit
(** Override the learnt-clause limit that triggers database reduction
    (clamped to at least 1).  The default is
    [max 4000 (num_clauses / 3)]; tests set a tiny limit to force frequent
    {e reduce_db} / arena-compaction cycles. *)

val set_gc_fraction : t -> float -> unit
(** Set the wasted/size ratio of the clause arena above which a database
    reduction is followed by a compacting arena GC (default 0.2).  [0.0]
    compacts after every reduction that deleted something; a huge value
    disables compaction.
    @raise Invalid_argument if negative. *)

val arena_bytes : t -> int
(** Current clause-arena footprint in bytes (live plus not-yet-compacted
    waste). *)

val num_clauses : t -> int
(** Clauses added so far (original ones, not learnt). *)

val model : t -> bool array
(** Satisfying assignment indexed by variable.
    @raise Invalid_argument unless the outcome was [Sat]. *)

val unsat_core : t -> int list
(** Indices (into the original formula's clause list) of an unsatisfiable
    core, ascending.  Under clause sharing this is the exact {e local-shard}
    core: foreign (imported) leaves are excluded — see {!stitched_core} for
    the exact cross-solver core and {!unsat_core_imports} for the foreign
    axioms themselves.
    @raise Invalid_argument unless the outcome was [Unsat] and the solver
    was created [~with_proof:true]. *)

val unsat_core_imports : t -> Lit.t list list
(** The literal contents of the imported clauses the refutation's backward
    closure reaches — the foreign axioms {!unsat_core} excludes.  Empty
    when no import was load-bearing; together with the {!unsat_core}
    clauses these form an unsatisfiable set even when siblings cannot be
    stitched.
    @raise Invalid_argument as {!unsat_core}. *)

val solver_id : t -> int
(** The global provenance id passed at {!create} (default 0). *)

val proof : t -> Proof.t option
(** This solver's proof shard, when created [~with_proof:true].  Read-only
    use by a coordinator, and only once the owning domain has quiesced. *)

val stitched_core : t -> lookup:(int -> t option) -> (int * int list) list
(** The exact cross-solver core: for each proof shard contributing at least
    one original clause, the pair of its solver id and the ascending clause
    indices {e into that solver's formula}.  [lookup] resolves a sibling
    solver by its global id (never called for this solver's own id).  Call
    only after every sibling has quiesced — the walk reads their shards
    without synchronisation.
    @raise Invalid_argument as {!unsat_core}, or if a referenced shard
    cannot be resolved. *)

val original_clause : t -> int -> Lit.t list
(** The literals of original clause [i], as loaded (before normalisation) —
    the contents behind {!unsat_core} indices, e.g. for re-solving a
    candidate core under {!Coremin}. *)

val core_vars : t -> Lit.var list
(** Variables appearing in the {!unsat_core} clauses, ascending — the
    [unsatVars] of the paper's Figure 5.
    @raise Invalid_argument as {!unsat_core}. *)

val interpolant : t -> a_side:(int -> bool) -> Itp.form
(** After an unconditional [Unsat] with proof logging: the McMillan
    interpolant of the partition that puts original clause [i] in A iff
    [a_side i].  A ⊨ I, I ∧ B is unsatisfiable, and I only mentions
    variables shared between the two sides.
    @raise Invalid_argument unless the outcome was [Unsat] with
    [~with_proof:true] and no assumptions. *)

val stats : t -> Stats.t

val num_vars : t -> int

val drat_events : t -> Checker.event list
(** The clausal proof recorded so far, in derivation order (ends with the
    empty clause after an unconditional UNSAT answer).  Meaningful for
    single-shot solving without assumptions; feed it to
    {!Checker.check_refutation}.
    @raise Invalid_argument if the solver was not created
    [~with_drat:true]. *)

val proof_edges : t -> int
(** Antecedent references stored in the CDG (0 when proof logging is off) —
    the memory-overhead figure of Section 3.1. *)

val cdg_seconds : t -> float
(** CPU seconds spent in the CDG bookkeeping (0 unless proof logging and
    telemetry are both on) — the runtime half of the Section 3.1 overhead
    claim. *)

val outcome_string : outcome -> string
(** Lower-case tag: ["sat"], ["unsat"] or ["unknown"] (used in telemetry
    events). *)

val outcome_opt : t -> outcome option
(** The cached outcome, if {!solve} already ran. *)

val pp_outcome : Format.formatter -> outcome -> unit
