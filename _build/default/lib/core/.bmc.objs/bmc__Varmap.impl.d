lib/core/varmap.ml: Circuit Hashtbl Sat
