type event =
  | Learnt of Lit.t list
  | Deleted of Lit.t list

(* Naive propagation state: clauses as literal lists, assignments as an
   association from variables to booleans. *)
type active = {
  mutable clauses : Lit.t list list; (* reverse order of addition *)
}

let clause_key lits = List.sort_uniq Lit.compare lits

(* Reverse unit propagation: assume the negation of every literal of
   [clause]; propagate units across [clauses]; succeed iff a conflict
   appears. *)
let rup clauses clause =
  let assign : (Lit.var, bool) Hashtbl.t = Hashtbl.create 64 in
  let set l = Hashtbl.replace assign (Lit.var l) (Lit.is_pos l) in
  let value l =
    match Hashtbl.find_opt assign (Lit.var l) with
    | Some b -> Some (b = Lit.is_pos l)
    | None -> None
  in
  (* the negated clause seeds the assignment; a clause with complementary
     literals is trivially RUP *)
  let conflict = ref false in
  List.iter
    (fun l ->
      match value l with
      | Some true -> conflict := true (* already true: ¬C inconsistent *)
      | Some false | None -> set (Lit.negate l))
    clause;
  let progress = ref true in
  while (not !conflict) && !progress do
    progress := false;
    List.iter
      (fun c ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match value l with
              | Some true -> satisfied := true
              | Some false -> ()
              | None -> unassigned := l :: !unassigned)
            c;
          if not !satisfied then begin
            match !unassigned with
            | [] -> conflict := true
            | [ u ] ->
              set u;
              progress := true
            | _ :: _ :: _ -> ()
          end
        end)
      clauses
  done;
  !conflict

let check_refutation cnf events =
  let active = { clauses = [] } in
  (* duplicate literals would defeat the unit test below; tautologies are
     harmless but may as well be normalised too *)
  Cnf.iter_clauses
    (fun _ c -> active.clauses <- List.sort_uniq Lit.compare (Array.to_list c) :: active.clauses)
    cnf;
  let refuted = ref false in
  let step i event =
    match event with
    | Learnt lits ->
      if !refuted then Ok () (* anything after the empty clause is moot *)
      else if rup active.clauses lits then begin
        if lits = [] then refuted := true;
        active.clauses <- lits :: active.clauses;
        Ok ()
      end
      else
        Error
          (Printf.sprintf "step %d: learnt clause {%s} is not a RUP consequence" i
             (String.concat ", " (List.map (fun l -> string_of_int (Lit.to_dimacs l)) lits)))
    | Deleted lits ->
      let key = clause_key lits in
      let rec remove = function
        | [] -> None
        | c :: rest when clause_key c = key -> Some rest
        | c :: rest -> Option.map (fun r -> c :: r) (remove rest)
      in
      (match remove active.clauses with
      | Some rest -> active.clauses <- rest
      | None -> () (* deleting an absent clause is harmless *));
      Ok ()
  in
  let rec walk i = function
    | [] -> if !refuted then Ok () else Error "proof does not derive the empty clause"
    | e :: rest -> (
      match step i e with
      | Ok () -> walk (i + 1) rest
      | Error _ as err -> err)
  in
  walk 0 events

let to_drat events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun event ->
      let lits, prefix =
        match event with Learnt l -> (l, "") | Deleted l -> (l, "d ")
      in
      Buffer.add_string buf prefix;
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) lits;
      Buffer.add_string buf "0\n")
    events;
  Buffer.contents buf

let of_drat text =
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then None
    else begin
      let deleted = String.length line >= 2 && String.sub line 0 2 = "d " in
      let body = if deleted then String.sub line 2 (String.length line - 2) else line in
      let nums =
        String.split_on_char ' ' body
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match int_of_string_opt s with
               | Some n -> n
               | None -> failwith (Printf.sprintf "Checker.of_drat: bad token %S" s))
      in
      match List.rev nums with
      | 0 :: rev_lits ->
        let lits = List.rev_map Lit.of_dimacs rev_lits in
        Some (if deleted then Deleted lits else Learnt lits)
      | _ -> failwith "Checker.of_drat: missing terminating 0"
    end
  in
  String.split_on_char '\n' text |> List.filter_map parse_line
