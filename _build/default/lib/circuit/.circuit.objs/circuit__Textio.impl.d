lib/circuit/textio.ml: Format Hashtbl List Netlist Option Printf String
