(** Interpolation-based unbounded model checking (McMillan, CAV 2003).

    The missing link between the paper's machinery and unbounded proofs:
    when a BMC instance is refuted, its resolution proof (the same data the
    paper's simplified CDG records, enriched with clause literals) yields a
    Craig interpolant for the split

    {v A = R(V⁰) ∧ T(V⁰,W⁰,V¹)        B = ⋀_{2..k} T ∧ (¬P(V¹) ∨ ... ∨ ¬P(V^k)) v}

    The interpolant I, a formula over the frame-1 registers, is an
    over-approximation of the image of R that still cannot reach a bad
    state within k−1 steps.  Iterating R ← R ∨ I either converges (I ⊨ R:
    a safe inductive over-approximation of the reachable states — the
    property is proved for {e every} depth) or goes satisfiable, in which
    case the bound k is increased; with R still the initial predicate a
    satisfiable instance is a genuine counterexample.

    Interpolants are instantiated as circuit gates over the register nodes,
    so R lives in the netlist itself and is Tseitin-encoded like any other
    logic. *)

type verdict =
  | Proved of { bound : int; iterations : int }
      (** fixpoint reached while refuting at this unrolling bound *)
  | Falsified of Trace.t
  | Unknown of int  (** gave up after this bound *)

type result = {
  verdict : verdict;
  total_time : float;
  interpolants : int;  (** interpolants computed across all bounds *)
}

val prove :
  ?max_bound:int ->
  ?max_iterations:int ->
  ?budget:Sat.Solver.budget ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** [prove nl ~property] runs the interpolation loop.  Defaults:
    [max_bound = 32], [max_iterations = 64] interpolants per bound, no
    solver budget.  The input netlist is copied; interpolant gates never
    leak into the caller's circuit.
    @raise Invalid_argument if the netlist does not validate. *)

val prove_case :
  ?max_bound:int ->
  ?max_iterations:int ->
  ?budget:Sat.Solver.budget ->
  Circuit.Generators.case ->
  result

val pp_verdict : Format.formatter -> verdict -> unit
