(* The ROBDD package: canonicity, operations vs truth tables, quantifiers,
   renaming, counting. *)

let test_terminals () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "not zero = one" true (Bdd.is_one (Bdd.not_ m (Bdd.zero m)))

let test_canonicity () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* x∧y built two different ways is physically the same node *)
  let a = Bdd.and_ m x y in
  let b = Bdd.not_ m (Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y)) in
  Alcotest.(check bool) "De Morgan canonical" true (Bdd.equal a b);
  (* tautology collapses to one *)
  Alcotest.(check bool) "x ∨ ¬x = 1" true (Bdd.is_one (Bdd.or_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x ∧ ¬x = 0" true (Bdd.is_zero (Bdd.and_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x xor x = 0" true (Bdd.is_zero (Bdd.xor_ m x x))

let test_ite () =
  let m = Bdd.manager () in
  let s = Bdd.var m 0 and h = Bdd.var m 1 and l = Bdd.var m 2 in
  let f = Bdd.ite m s h l in
  List.iter
    (fun (sv, hv, lv) ->
      let assign i = match i with 0 -> sv | 1 -> hv | _ -> lv in
      Alcotest.(check bool) "ite semantics" (if sv then hv else lv) (Bdd.eval f assign))
    [ (false, false, true); (false, true, false); (true, false, true); (true, true, false) ]

let test_quantifiers () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  Alcotest.(check bool) "∃x. x∧y = y" true (Bdd.equal (Bdd.exists m [ 0 ] f) y);
  Alcotest.(check bool) "∀x. x∧y = 0" true (Bdd.is_zero (Bdd.forall m [ 0 ] f));
  Alcotest.(check bool) "∃xy. x∧y = 1" true (Bdd.is_one (Bdd.exists m [ 0; 1 ] f));
  let g = Bdd.or_ m x y in
  Alcotest.(check bool) "∀x. x∨y = y" true (Bdd.equal (Bdd.forall m [ 0 ] g) y)

let test_restrict () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.xor_ m x y in
  Alcotest.(check bool) "f[x:=1] = ¬y" true
    (Bdd.equal (Bdd.restrict m 0 true f) (Bdd.not_ m y));
  Alcotest.(check bool) "f[x:=0] = y" true (Bdd.equal (Bdd.restrict m 0 false f) y)

let test_rename () =
  let m = Bdd.manager () in
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 2) in
  let g = Bdd.rename m (fun v -> v + 1) f in
  Alcotest.(check (list int)) "support shifted" [ 1; 3 ] (Bdd.support g);
  Alcotest.check_raises "non-monotone rename rejected"
    (Invalid_argument "Bdd.rename: mapping is not order-preserving") (fun () ->
      ignore (Bdd.rename m (fun v -> 2 - v) f))

let test_support_and_size () =
  let m = Bdd.manager () in
  let f = Bdd.xor_ m (Bdd.var m 1) (Bdd.var m 4) in
  Alcotest.(check (list int)) "support" [ 1; 4 ] (Bdd.support f);
  Alcotest.(check int) "xor of two vars has 3 nodes" 3 (Bdd.size f);
  Alcotest.(check (list int)) "terminal support empty" [] (Bdd.support (Bdd.one m))

let test_sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "x∧y over 2 vars" 1.0 (Bdd.sat_count (Bdd.and_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "x∨y over 2 vars" 3.0 (Bdd.sat_count (Bdd.or_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "x over 3 vars" 4.0 (Bdd.sat_count x ~nvars:3);
  Alcotest.(check (float 1e-9)) "one over 4 vars" 16.0 (Bdd.sat_count (Bdd.one m) ~nvars:4)

let test_any_sat () =
  let m = Bdd.manager () in
  let f = Bdd.and_ m (Bdd.nvar m 0) (Bdd.var m 2) in
  let partial = Bdd.any_sat f in
  let assign i = match List.assoc_opt i partial with Some b -> b | None -> false in
  Alcotest.(check bool) "assignment satisfies" true (Bdd.eval f assign);
  Alcotest.check_raises "any_sat of zero" Not_found (fun () ->
      ignore (Bdd.any_sat (Bdd.zero m)))

let test_node_limit () =
  let m = Bdd.manager ~node_limit:8 () in
  match
    (* a parity chain needs more than 8 nodes *)
    List.fold_left
      (fun acc i -> Bdd.xor_ m acc (Bdd.var m i))
      (Bdd.zero m)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  with
  | exception Bdd.Node_limit -> ()
  | _ -> Alcotest.fail "expected Node_limit"

(* Random expressions: BDD agrees with direct evaluation on every assignment
   and with enumeration for sat_count. *)
type expr =
  | V of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr

let rec expr_gen nv depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun i -> V i) (0 -- (nv - 1))
  else
    frequency
      [
        (1, map (fun i -> V i) (0 -- (nv - 1)));
        (2, map (fun e -> Enot e) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Eand (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Eor (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
        (2, map2 (fun a b -> Exor (a, b)) (expr_gen nv (depth - 1)) (expr_gen nv (depth - 1)));
      ]

let rec eval_expr e a =
  match e with
  | V i -> a i
  | Enot x -> not (eval_expr x a)
  | Eand (x, y) -> eval_expr x a && eval_expr y a
  | Eor (x, y) -> eval_expr x a || eval_expr y a
  | Exor (x, y) -> eval_expr x a <> eval_expr y a

let rec build m e =
  match e with
  | V i -> Bdd.var m i
  | Enot x -> Bdd.not_ m (build m x)
  | Eand (x, y) -> Bdd.and_ m (build m x) (build m y)
  | Eor (x, y) -> Bdd.or_ m (build m x) (build m y)
  | Exor (x, y) -> Bdd.xor_ m (build m x) (build m y)

let nv = 5

let prop_agrees_with_truth_table =
  QCheck.Test.make ~name:"BDD = truth table on random expressions" ~count:300
    (QCheck.make (expr_gen nv 4)) (fun e ->
      let m = Bdd.manager () in
      let b = build m e in
      let ok = ref true in
      for mask = 0 to (1 lsl nv) - 1 do
        let a i = mask land (1 lsl i) <> 0 in
        if Bdd.eval b a <> eval_expr e a then ok := false
      done;
      !ok)

let prop_sat_count_matches_enumeration =
  QCheck.Test.make ~name:"sat_count = enumeration" ~count:200 (QCheck.make (expr_gen nv 4))
    (fun e ->
      let m = Bdd.manager () in
      let b = build m e in
      let count = ref 0 in
      for mask = 0 to (1 lsl nv) - 1 do
        let a i = mask land (1 lsl i) <> 0 in
        if eval_expr e a then incr count
      done;
      abs_float (Bdd.sat_count b ~nvars:nv -. float_of_int !count) < 0.5)

let prop_exists_is_or_of_cofactors =
  QCheck.Test.make ~name:"∃v.f = f[v:=0] ∨ f[v:=1]" ~count:200
    QCheck.(pair (make (expr_gen nv 4)) (int_bound (nv - 1)))
    (fun (e, v) ->
      let m = Bdd.manager () in
      let b = build m e in
      let lhs = Bdd.exists m [ v ] b in
      let rhs = Bdd.or_ m (Bdd.restrict m v false b) (Bdd.restrict m v true b) in
      Bdd.equal lhs rhs)

let prop_canonical_across_construction_order =
  QCheck.Test.make ~name:"equivalent expressions share one node" ~count:200
    (QCheck.make (expr_gen nv 3)) (fun e ->
      let m = Bdd.manager () in
      let b = build m e in
      (* double negation and De Morgan'd reconstruction hit the same node *)
      let b' = Bdd.not_ m (Bdd.not_ m b) in
      Bdd.equal b b')

let tests =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "support/size" `Quick test_support_and_size;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    QCheck_alcotest.to_alcotest prop_agrees_with_truth_table;
    QCheck_alcotest.to_alcotest prop_sat_count_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_exists_is_or_of_cofactors;
    QCheck_alcotest.to_alcotest prop_canonical_across_construction_order;
  ]
