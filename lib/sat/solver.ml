type outcome =
  | Sat
  | Unsat
  | Unknown

let outcome_string = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

type budget = {
  max_conflicts : int option;
  max_propagations : int option;
  max_seconds : float option;
  stop : (unit -> bool) option;
}

let no_budget =
  { max_conflicts = None; max_propagations = None; max_seconds = None; stop = None }

(* Clause-exchange hooks (the portfolio's learnt-clause sharing).  The
   solver stays transport-agnostic: [sh_export] receives learnt clauses
   that pass the size/LBD caps and the taint filter together with their
   proof pseudo ID ([src_id], -1 when proof logging is off), [sh_import]
   is asked for foreign clauses (already remapped to this solver's
   variables, each with its global (solver id, clause id) provenance when
   the exporter supplied one) at solve-start and restart boundaries. *)
type share = {
  sh_max_size : int;
  mutable sh_max_lbd : int; (* adaptive: a tune hook may move it between restarts *)
  sh_budget : int; (* exports allowed per restart interval; [max_int] = unlimited *)
  mutable sh_left : int;
  sh_tune : (unit -> int option) option; (* polled at restarts for a new LBD cap *)
  sh_export : Lit.t array -> lbd:int -> src_id:int -> unit;
  sh_import : unit -> (Lit.t list * (int * int) option) list;
}

(* Pluggable branching-heuristic hooks (the ordering laboratory).  The
   solver keeps its Chaff core and exposes exactly four narrow seams: a
   per-conflict notification (fired after the built-in activity bumps), a
   restart notification, a phase bias consulted once per decision, and an
   optional permutation of the assumption vector applied at solve start.
   Heuristic state lives entirely behind the closures — the solver never
   inspects it. *)
type hooks = {
  hk_name : string;
  hk_on_conflict : Lit.t list -> unit;
  hk_on_restart : unit -> unit;
  hk_bias : Lit.var -> bool option;
  hk_permute : (Lit.t list -> Lit.t list) option;
}

(* Poll the budget (and with it the cooperative-stop hook) every this many
   propagations, so a BCP-heavy solve with few conflicts and few decisions
   still observes cancellation promptly. *)
let propagation_poll_period = 4096

(* Assignment cells: -1 unassigned, 0 false, 1 true. *)
let unassigned = -1

(* Clauses live in a flat integer arena ({!Arena}) and are addressed by
   [Arena.cref]; [Arena.none] plays the role the [None] reason used to.
   Watch lists are flat (blocker, cref) int pairs: BCP skips a satisfied
   clause on the blocker check alone, never touching the clause block. *)
type t = {
  cnf : Cnf.t; (* snapshot of the original formula, for core reporting *)
  mutable nvars : int;
  arena : Arena.t;
  learnts : Arena.cref Vec.t;
  mutable watches : Arena.Watch.w array; (* indexed by watched literal *)
  mutable assigns : int array; (* per var *)
  mutable level : int array; (* per var *)
  mutable reason : Arena.cref array; (* per var; Arena.none when none *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t; (* trail index at the start of each decision level *)
  mutable qhead : int;
  mutable order : Order.t;
  sid : int; (* global solver id (proof provenance); 0 outside a portfolio *)
  proof : Proof.t option;
  proof_to_cnf : (int, int) Hashtbl.t; (* proof pseudo ID -> clause index *)
  learnt_lits : (int, Lit.t list) Hashtbl.t; (* proof ID -> literals (proof mode) *)
  drat : Checker.event Vec.t option; (* clausal proof, when requested *)
  stats : Stats.t;
  mutable seen : bool array; (* conflict-analysis scratch, always reset after use *)
  mutable trail_height : int array; (* per var: position on the trail when assigned *)
  minimize : bool; (* conflict-clause minimisation (off in faithful-Chaff mode) *)
  mutable ok : bool; (* false once a top-level conflict is recorded *)
  mutable result : outcome option;
  mutable conflicts_since_decay : int;
  mutable max_learnts : int;
  mutable gc_fraction : float; (* wasted/size ratio that triggers compaction *)
  mutable dynamic_threshold : int; (* decisions before the dynamic fallback fires *)
  mutable luby : Luby.t;
  mutable assumptions : Lit.t array; (* for the solve call in progress *)
  mutable failed_assumptions : Lit.t list; (* valid after assumption-UNSAT *)
  tel : Telemetry.t;
  (* clause-sharing state *)
  mutable share : share option;
  mutable heur : hooks option; (* pluggable ordering heuristic, when installed *)
  mutable local_mask : bool array; (* per var: instance-local (activation/aux) *)
  mutable analysis_tainted : bool; (* scratch: current conflict analysis touched a tainted antecedent *)
  imported_ids : (int, unit) Hashtbl.t; (* proof pseudo IDs of imported clauses *)
  mutable frec : Obs.Recorder.t option; (* flight recorder, when installed *)
  (* inprocessing state *)
  mutable frozen : bool array; (* per var: exempt from variable elimination *)
  mutable eliminated : bool array; (* per var: removed by BVE *)
  mutable elim_stack : (Lit.var * Lit.t list list) list;
      (* most-recently-eliminated first, with the saved positive
         occurrences that drive model reconstruction *)
  (* in-propagate budget polling *)
  mutable cur_budget : budget;
  mutable solve_start : float;
  mutable props_at_poll : int;
}

let value_var t v = t.assigns.(v)

let value_lit t l =
  let v = t.assigns.(Lit.var l) in
  if v = unassigned then unassigned else if Lit.is_pos l then v else 1 - v

let decision_level t = Vec.length t.trail_lim

(* Flight-recorder hook: a no-op unless a recorder was installed, and the
   recorded events are all low-rate (restart / GC / switch / share / solve
   boundaries — never per decision or per propagation). *)
let frecord t kind ~a ~b =
  match t.frec with None -> () | Some r -> Obs.Recorder.record r kind ~a ~b

let watch_list t l = t.watches.(Lit.to_index l)

let attach t cr =
  let l0 = Arena.lit t.arena cr 0 and l1 = Arena.lit t.arena cr 1 in
  Arena.Watch.push (watch_list t l0) l1 cr;
  Arena.Watch.push (watch_list t l1) l0 cr

(* Make [l] true with [reason].  Precondition: [l] is unassigned. *)
let enqueue t l reason =
  let v = Lit.var l in
  t.assigns.(v) <- (if Lit.is_pos l then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail_height.(v) <- Vec.length t.trail;
  Vec.push t.trail l

(* Antecedents must form a proper (trivial-resolution) chain so that proof
   consumers like interpolation can replay them literally: resolving the
   pivots in decreasing trail order guarantees a removed literal never
   re-enters, because a reason clause only mentions variables assigned
   before its head. *)
let linearize_steps t first_cid steps =
  let sorted =
    List.sort (fun (v1, _) (v2, _) -> compare t.trail_height.(v2) t.trail_height.(v1)) steps
  in
  first_cid :: List.map (fun (_, cid) -> cid) sorted

(* Resolve a top-level conflict down to the empty clause, collecting the
   antecedent IDs for the proof's final node.  One marking pass over the
   conflict clause, then one backwards trail walk: every variable involved
   is assigned, hence on the trail, so the walk visits (and unmarks) each
   exactly once — O(trail + total reason size). *)
let final_analysis t confl =
  let steps = ref [] in
  Arena.iter_lits t.arena confl (fun l -> t.seen.(Lit.var l) <- true);
  for i = Vec.length t.trail - 1 downto 0 do
    let v = Lit.var (Vec.get t.trail i) in
    if t.seen.(v) then begin
      t.seen.(v) <- false;
      let r = t.reason.(v) in
      if r <> Arena.none then begin
        steps := (v, Arena.cid t.arena r) :: !steps;
        Arena.iter_lits t.arena r (fun l ->
            let u = Lit.var l in
            if u <> v then t.seen.(u) <- true)
      end
    end
  done;
  linearize_steps t (Arena.cid t.arena confl) !steps

(* Every original clause is registered in the proof (even ones we drop or
   leave unwatched) and its pseudo ID recorded against its clause index.
   Attachment is assignment-aware because clauses may arrive incrementally,
   after level-0 propagation: watches must sit on non-false literals, a
   clause with a single non-false literal is a (possibly pending) unit, and
   a clause with none is a top-level conflict. *)
let[@inline] is_local t v = t.local_mask.(v)

let add_original t index lits =
  let cid =
    match t.proof with
    | Some p ->
      let id = Proof.register_original p in
      Hashtbl.replace t.proof_to_cnf id index;
      id
    | None -> index
  in
  match Cnf.normalize_clause (Array.to_list lits) with
  | None -> () (* tautology: never needed, never a core member *)
  | Some lits ->
    let arr = Array.of_list lits in
    let n = Array.length arr in
    (* move the non-false (at level 0) literals to the front *)
    let nf = ref 0 in
    for i = 0 to n - 1 do
      if value_lit t arr.(i) <> 0 then begin
        let tmp = arr.(!nf) in
        arr.(!nf) <- arr.(i);
        arr.(i) <- tmp;
        incr nf
      end
    done;
    let tainted = List.exists (fun l -> is_local t (Lit.var l)) lits in
    let cr = Arena.alloc t.arena ~cid ~learnt:false ~tainted arr in
    if !nf = 0 then begin
      (* conflicts with the level-0 assignment: the formula is refuted *)
      t.ok <- false;
      (match t.drat with Some d -> Vec.push d (Checker.Learnt []) | None -> ());
      match t.proof with
      | Some p ->
        if not (Proof.has_final p) then
          Proof.set_final p ~antecedents:(final_analysis t cr)
      | None -> ()
    end
    else if !nf = 1 then begin
      (match value_lit t arr.(0) with
      | 1 -> () (* already satisfied *)
      | _ -> enqueue t arr.(0) cr);
      if n >= 2 then attach t cr
    end
    else attach t cr

let create ?(with_proof = false) ?(with_drat = false) ?(minimize = false) ?(mode = Order.Vsids)
    ?(telemetry = Telemetry.disabled) ?(solver_id = 0) cnf =
  let cnf = Cnf.copy cnf in
  let nvars = Cnf.num_vars cnf in
  let nlits = max (2 * nvars) 1 in
  let order = Order.create ~num_vars:nvars mode in
  Order.init_activity order cnf;
  let t =
    {
      cnf;
      nvars;
      arena = Arena.create ();
      learnts = Vec.create ~dummy:Arena.none ();
      watches = Array.init nlits (fun _ -> Arena.Watch.create ());
      assigns = Array.make (max nvars 1) unassigned;
      level = Array.make (max nvars 1) 0;
      reason = Array.make (max nvars 1) Arena.none;
      trail = Vec.create ~dummy:(Lit.pos 0) ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      order;
      sid = solver_id;
      proof =
        (if with_proof then
           Some (Proof.create ~timed:(Telemetry.timing telemetry) ~solver_id ())
         else None);
      proof_to_cnf = Hashtbl.create 256;
      learnt_lits = Hashtbl.create 256;
      drat = (if with_drat then Some (Vec.create ~dummy:(Checker.Learnt []) ()) else None);
      stats = Stats.create ();
      seen = Array.make (max nvars 1) false;
      trail_height = Array.make (max nvars 1) 0;
      minimize;
      ok = true;
      result = None;
      conflicts_since_decay = 0;
      max_learnts = max 4000 (Cnf.num_clauses cnf / 3);
      gc_fraction = 0.2;
      dynamic_threshold = max 1 (Cnf.num_literals cnf / 64);
      luby = Luby.create ~base:128;
      assumptions = [||];
      failed_assumptions = [];
      tel = telemetry;
      share = None;
      heur = None;
      local_mask = Array.make (max nvars 1) false;
      analysis_tainted = false;
      imported_ids = Hashtbl.create 16;
      frec = None;
      frozen = Array.make (max nvars 1) false;
      eliminated = Array.make (max nvars 1) false;
      elim_stack = [];
      cur_budget = no_budget;
      solve_start = 0.0;
      props_at_poll = 0;
    }
  in
  Cnf.iter_clauses (fun i c -> add_original t i c) cnf;
  t

(* ------------------------------------------------------------------ *)
(* Incremental interface: growing the variable space and the formula.  *)
(* ------------------------------------------------------------------ *)

let grow_array src size init =
  let dst = Array.make size init in
  Array.blit src 0 dst 0 (Array.length src);
  dst

let ensure_vars t n =
  if n > t.nvars then begin
    (* Incremental loading adds variables one at a time; grow capacity
       geometrically so the amortized cost stays linear.  Capacity is the
       smaller of the per-variable and per-literal (watches) allowances;
       [t.nvars] stays the logical count. *)
    let capacity = min (Array.length t.assigns) (Array.length t.watches / 2) in
    if n > capacity then begin
      let cap = max (max (2 * capacity) n) 1 in
      let nlits = 2 * cap in
      t.assigns <- grow_array t.assigns cap unassigned;
      t.level <- grow_array t.level cap 0;
      t.reason <- grow_array t.reason cap Arena.none;
      t.seen <- grow_array t.seen cap false;
      t.trail_height <- grow_array t.trail_height cap 0;
      t.local_mask <- grow_array t.local_mask cap false;
      t.frozen <- grow_array t.frozen cap false;
      t.eliminated <- grow_array t.eliminated cap false;
      let watches = Array.init nlits (fun _ -> Arena.Watch.create ()) in
      Array.blit t.watches 0 watches 0 (Array.length t.watches);
      t.watches <- watches
    end;
    Order.grow t.order ~num_vars:n;
    Cnf.ensure_vars t.cnf n;
    t.nvars <- n
  end

let new_var t =
  let v = t.nvars in
  ensure_vars t (v + 1);
  v

(* Mark a variable instance-local: activation guards and per-instance
   Tseitin auxiliaries.  Clauses containing such a variable — and learnt
   clauses whose 1UIP derivation resolves against any of them — are tainted
   and never exported to sibling solvers (their truth depends on this
   session's private guards). *)
let mark_local t v =
  ensure_vars t (v + 1);
  t.local_mask.(v) <- true

(* ------------------------------------------------------------------ *)
(* Boolean constraint propagation (two watched literals + blockers).   *)
(* ------------------------------------------------------------------ *)

exception Done of outcome

let budget_exceeded t budget start_time =
  (* The external stop hook comes first: it is the cooperative-cancellation
     path of the portfolio layer (typically an [Atomic.get] behind a closure),
     so a cancelled worker abandons its solve at the next conflict,
     1024-decision or 4096-propagation boundary — within one restart
     interval even for conflict-free BCP-heavy instances. *)
  (match budget.stop with Some f -> f () | None -> false)
  || (match budget.max_conflicts with Some m -> t.stats.conflicts >= m | None -> false)
  || (match budget.max_propagations with
     | Some m -> t.stats.propagations >= m
     | None -> false)
  ||
  match budget.max_seconds with
  | Some s -> Sys.time () -. start_time >= s
  | None -> false

(* Returns the conflicting cref, or [Arena.none].  Deleted clauses are
   never present in watch lists (reduce_db detaches eagerly), so the loop
   has no deleted check.  The blocker test is the fast path: one assignment
   read against an int already in the watcher pair's cache line. *)
let propagate t =
  let arena = t.arena in
  let conflict = ref Arena.none in
  while !conflict = Arena.none && t.qhead < Vec.length t.trail do
    (* Propagation-count poll: a conflict-free solve with huge implication
       chains would otherwise only observe its budget (and the portfolio's
       cancellation hook) at decision boundaries.  Checked between trail
       literals, so the watch lists are always in a consistent state when
       [Done] aborts the solve. *)
    if t.stats.propagations - t.props_at_poll >= propagation_poll_period then begin
      t.props_at_poll <- t.stats.propagations;
      if budget_exceeded t t.cur_budget t.solve_start then raise (Done Unknown)
    end;
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let false_lit = Lit.negate p in
    let ws = watch_list t false_lit in
    let len = Arena.Watch.length ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < len do
      let blocker = Arena.Watch.blocker ws !i in
      let cr = Arena.Watch.cref ws !i in
      incr i;
      if value_lit t blocker = 1 then begin
        (* clause satisfied by the blocker: keep the watch untouched *)
        t.stats.blocker_hits <- t.stats.blocker_hits + 1;
        Arena.Watch.set ws !j blocker cr;
        incr j
      end
      else begin
        (* ensure the falsified watch sits at position 1 *)
        if Lit.equal (Arena.lit arena cr 0) false_lit then Arena.swap_lits arena cr 0 1;
        let first = Arena.lit arena cr 0 in
        if (not (Lit.equal first blocker)) && value_lit t first = 1 then begin
          (* satisfied by the other watch: keep, with it as the new blocker *)
          Arena.Watch.set ws !j first cr;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let n = Arena.size arena cr in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < n do
            if value_lit t (Arena.lit arena cr !k) <> 0 then found := true else incr k
          done;
          if !found then begin
            let lk = Arena.lit arena cr !k in
            Arena.set_lit arena cr 1 lk;
            Arena.set_lit arena cr !k false_lit;
            Arena.Watch.push (watch_list t lk) first cr
            (* watch moved: do not keep it in this list *)
          end
          else begin
            (* unit or conflicting on [first] *)
            Arena.Watch.set ws !j first cr;
            incr j;
            match value_lit t first with
            | 0 ->
              (* conflict: keep the remaining watches and stop *)
              while !i < len do
                Arena.Watch.set ws !j (Arena.Watch.blocker ws !i) (Arena.Watch.cref ws !i);
                incr j;
                incr i
              done;
              conflict := cr
            | v when v = unassigned ->
              t.stats.propagations <- t.stats.propagations + 1;
              enqueue t first cr
            | _ -> () (* already true: nothing to do *)
          end
        end
      end
    done;
    Arena.Watch.truncate ws !j
  done;
  !conflict

(* ------------------------------------------------------------------ *)
(* Backtracking.                                                       *)
(* ------------------------------------------------------------------ *)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    let n = Vec.length t.trail in
    for i = n - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- unassigned;
      t.reason.(v) <- Arena.none;
      Order.on_unassign t.order v
    done;
    Vec.shrink_retain t.trail bound;
    Vec.shrink_retain t.trail_lim lvl;
    t.qhead <- bound
  end

(* Add a clause between solve calls (incremental use).  The solver first
   retracts all decisions; learnt clauses and literal activities survive. *)
let add_clause t lits =
  cancel_until t 0;
  t.result <- None;
  List.iter (fun l -> ensure_vars t (Lit.var l + 1)) lits;
  List.iter
    (fun l ->
      if t.eliminated.(Lit.var l) then
        invalid_arg
          (Printf.sprintf
             "Solver.add_clause: variable %d was eliminated by inprocessing (freeze \
              variables that later clauses mention)"
             (Lit.var l)))
    lits;
  Cnf.add_clause t.cnf lits;
  let index = Cnf.num_clauses t.cnf - 1 in
  List.iter (fun l -> Order.bump_by t.order l 1.0) lits;
  add_original t index (Array.of_list lits)

(* ------------------------------------------------------------------ *)
(* Clause import (sharing).                                            *)
(* ------------------------------------------------------------------ *)

(* Attach one foreign clause, already remapped to this solver's variables.
   Precondition: decision level 0 (solve start or a restart), so every
   current assignment is a level-0 fact.  Mirrors [add_original]'s
   assignment-aware attachment, but the clause enters as a learnt — never
   recorded in [t.cnf], eligible for [reduce_db].  In proof mode it becomes
   an [Import] cross-edge into the exporter's shard when the exchange
   supplied [origin], so stitched cores stay exact; without provenance it
   falls back to an original leaf that core reporting skips.  In DRAT mode
   the clause is recorded as an [i]-prefixed trusted axiom. *)
let attach_import ?origin t lits =
  match Cnf.normalize_clause lits with
  | None -> ()
  | Some lits ->
    (* a clause mentioning an eliminated variable cannot be attached: the
       variable is gone from the search and its value is reconstructed, so
       drop the import (sound — imports are optional consequences) *)
    if
      (not (List.exists (fun l -> t.eliminated.(Lit.var l)) lits))
      && not (List.exists (fun l -> value_lit t l = 1) lits)
    then begin
      let arr = Array.of_list lits in
      let n = Array.length arr in
      let nf = ref 0 in
      for i = 0 to n - 1 do
        if value_lit t arr.(i) <> 0 then begin
          let tmp = arr.(!nf) in
          arr.(!nf) <- arr.(i);
          arr.(i) <- tmp;
          incr nf
        end
      done;
      let cid =
        match t.proof with
        | Some p ->
          let id =
            match origin with
            | Some origin -> Proof.register_import p ~origin
            | None -> Proof.register_original p
          in
          Hashtbl.replace t.imported_ids id ();
          Hashtbl.replace t.learnt_lits id lits;
          id
        | None -> -1
      in
      (match t.drat with Some d -> Vec.push d (Checker.Imported lits) | None -> ());
      let cr = Arena.alloc t.arena ~cid ~learnt:true arr in
      t.stats.shared_imported <- t.stats.shared_imported + 1;
      if !nf = 0 then begin
        (* conflicts with the level-0 facts: the shared formula is refuted *)
        t.ok <- false;
        (match t.drat with Some d -> Vec.push d (Checker.Learnt []) | None -> ());
        match t.proof with
        | Some p ->
          if not (Proof.has_final p) then
            Proof.set_final p ~antecedents:(final_analysis t cr)
        | None -> ()
      end
      else begin
        if !nf = 1 then begin
          match value_lit t arr.(0) with
          | 1 -> ()
          | _ -> enqueue t arr.(0) cr
        end;
        if n >= 2 then begin
          attach t cr;
          Vec.push t.learnts cr
        end
      end
    end

let import_pending t =
  match t.share with
  | None -> ()
  | Some sh ->
    let before = t.stats.shared_imported in
    List.iter
      (fun (lits, origin) ->
        if t.ok then begin
          List.iter (fun l -> ensure_vars t (Lit.var l + 1)) lits;
          attach_import ?origin t lits
        end)
      (sh.sh_import ());
    let imported = t.stats.shared_imported - before in
    if imported > 0 then frecord t Obs.Recorder.Share_import ~a:imported ~b:0

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP).                                      *)
(* ------------------------------------------------------------------ *)

(* Returns (learnt literals with the asserting literal first, backtrack
   level, antecedent clause IDs).  Precondition: decision_level > 0. *)
let analyze t conflict =
  let arena = t.arena in
  t.analysis_tainted <- false;
  let learnt = ref [] in
  let steps = ref [] in
  let path_count = ref 0 in
  let p = ref None in
  let index = ref (Vec.length t.trail - 1) in
  let confl = ref conflict in
  let to_clear = ref [] in
  let current = decision_level t in
  (* A false literal assigned at level 0 is silently dropped from the learnt
     clause; soundness of the recorded derivation then requires resolving
     against its reason chain, so those clause IDs join the antecedents. *)
  let resolve_level0 v0 =
    let stack = ref [ v0 ] in
    let rec drain () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        if not t.seen.(v) then begin
          t.seen.(v) <- true;
          to_clear := v :: !to_clear;
          let r = t.reason.(v) in
          if r <> Arena.none then begin
            steps := (v, Arena.cid arena r) :: !steps;
            if Arena.tainted arena r then t.analysis_tainted <- true;
            Arena.iter_lits arena r (fun l ->
                let u = Lit.var l in
                if u <> v && t.level.(u) = 0 then stack := u :: !stack)
          end
        end;
        drain ()
    in
    drain ()
  in
  let first_cid = Arena.cid arena conflict in
  let continue = ref true in
  let first_iter = ref true in
  while !continue do
    let c = !confl in
    if not !first_iter then steps := (Lit.var (Option.get !p), Arena.cid arena c) :: !steps;
    first_iter := false;
    (* taint flows through every antecedent: the conflict clause itself on
       the first iteration, reason clauses afterwards *)
    if Arena.tainted arena c then t.analysis_tainted <- true;
    if Arena.learnt arena c then Arena.bump_activity arena c;
    let start = match !p with None -> 0 | Some _ -> 1 in
    for jj = start to Arena.size arena c - 1 do
      let q = Arena.lit arena c jj in
      let v = Lit.var q in
      if not t.seen.(v) then begin
        if t.level.(v) > 0 then begin
          t.seen.(v) <- true;
          to_clear := v :: !to_clear;
          if t.level.(v) >= current then incr path_count
          else learnt := q :: !learnt
        end
        else resolve_level0 v
      end
    done;
    (* next trail literal that participates in the conflict *)
    while not t.seen.(Lit.var (Vec.get t.trail !index)) do
      decr index
    done;
    let pl = Vec.get t.trail !index in
    decr index;
    t.seen.(Lit.var pl) <- false;
    p := Some pl;
    decr path_count;
    if !path_count > 0 then begin
      let r = t.reason.(Lit.var pl) in
      if r <> Arena.none then confl := r
      else assert false (* only the UIP can lack a reason *)
    end
    else continue := false
  done;
  let uip = match !p with Some pl -> pl | None -> assert false in
  (* Conflict-clause minimisation (optional): a tail literal q is redundant
     when its reason clause only contains literals already in the clause or
     assigned at level 0 — dropping it is one more resolution step, so the
     reason (and any level-0 chains) joins the antecedents. *)
  let tail =
    if not t.minimize then !learnt
    else begin
      let redundant q =
        let r = t.reason.(Lit.var q) in
        if r = Arena.none then false
        else begin
          let ok = ref true in
          Arena.iter_lits arena r (fun l ->
              let v = Lit.var l in
              if v <> Lit.var q && (not t.seen.(v)) && t.level.(v) > 0 then ok := false);
          if !ok then begin
            steps := (Lit.var q, Arena.cid arena r) :: !steps;
            if Arena.tainted arena r then t.analysis_tainted <- true;
            Arena.iter_lits arena r (fun l ->
                let v = Lit.var l in
                if v <> Lit.var q && (not t.seen.(v)) && t.level.(v) = 0 then
                  resolve_level0 v)
          end;
          !ok
        end
      in
      List.filter (fun q -> not (redundant q)) !learnt
    end
  in
  let learnt_lits = Lit.negate uip :: tail in
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  (* backtrack level: highest level among the non-asserting literals *)
  let bt_level = List.fold_left (fun acc q -> max acc t.level.(Lit.var q)) 0 tail in
  (learnt_lits, bt_level, linearize_steps t first_cid !steps)

(* An assumption literal [p] was found already false: resolve backwards from
   its complement's implication to find which assumptions and which clauses
   are responsible.  All open decision levels hold assumptions when this is
   called.  Returns the failed assumptions and the antecedent IDs. *)
let analyze_final_assumption t p =
  let steps = ref [] in
  let failed = ref [ p ] in
  let to_clear = ref [] in
  let queue = ref [ Lit.var p ] in
  let rec drain () =
    match !queue with
    | [] -> ()
    | v :: rest ->
      queue := rest;
      if not t.seen.(v) then begin
        t.seen.(v) <- true;
        to_clear := v :: !to_clear;
        let r = t.reason.(v) in
        if r <> Arena.none then begin
          steps := (v, Arena.cid t.arena r) :: !steps;
          Arena.iter_lits t.arena r (fun l ->
              let u = Lit.var l in
              if u <> v then queue := u :: !queue)
        end
        else if t.level.(v) > 0 then
          (* an assumption decision: record the literal as assumed *)
          failed := Lit.make v (t.assigns.(v) = 1) :: !failed
      end;
      drain ()
  in
  drain ();
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  let sorted =
    List.sort (fun (v1, _) (v2, _) -> compare t.trail_height.(v2) t.trail_height.(v1)) !steps
  in
  (List.rev !failed, List.map snd sorted)

(* ------------------------------------------------------------------ *)
(* Learning.                                                           *)
(* ------------------------------------------------------------------ *)

(* Literal block distance at learning time: distinct decision levels among
   the clause's literals.  Computed only for export candidates (short
   clauses when sharing is on), so the sort stays off the common path.
   [t.level] of the just-unassigned UIP variable is stale but still holds
   the conflict level, which is exactly the value LBD wants. *)
let learnt_lbd t lits =
  List.map (fun l -> t.level.(Lit.var l)) lits |> List.sort_uniq Int.compare |> List.length

(* The export filter.  A clause leaves the solver only when (a) no
   antecedent of its 1UIP derivation was tainted, (b) none of its own
   literals is instance-local (an assumption guard can enter the clause as
   a decision literal without ever being resolved against), and (c) it is
   short and low-LBD enough to be worth a sibling's attention. *)
let maybe_export t lits ~tainted ~src_id =
  match t.share with
  | None -> ()
  | Some sh ->
    if List.compare_length_with lits sh.sh_max_size <= 0 then begin
      if tainted then
        t.stats.shared_rejected_tainted <- t.stats.shared_rejected_tainted + 1
      else begin
        let lbd = learnt_lbd t lits in
        if lbd <= sh.sh_max_lbd then begin
          if sh.sh_left <= 0 then
            (* per-restart export budget exhausted: withhold until the next
               restart refills it (the adaptive-throttle path) *)
            t.stats.shared_throttled <- t.stats.shared_throttled + 1
          else begin
            sh.sh_left <- sh.sh_left - 1;
            t.stats.shared_exported <- t.stats.shared_exported + 1;
            frecord t Obs.Recorder.Share_export ~a:lbd ~b:(List.length lits);
            sh.sh_export (Array.of_list lits) ~lbd ~src_id
          end
        end
      end
    end

let record_learnt t lits ants =
  let cid =
    match t.proof with
    | Some p ->
      let id = Proof.register_learnt p ~antecedents:ants in
      Hashtbl.replace t.learnt_lits id lits;
      id
    | None -> -1
  in
  (match t.drat with Some d -> Vec.push d (Checker.Learnt lits) | None -> ());
  t.stats.learned <- t.stats.learned + 1;
  let tainted =
    t.analysis_tainted || List.exists (fun l -> is_local t (Lit.var l)) lits
  in
  (* the learnt's own proof pseudo ID travels with the clause: an importer
     records it as a cross-edge into this shard, keeping stitched cores
     exact (cid is -1 when proof logging is off — imports then degrade to
     provenance-less leaves, as before) *)
  maybe_export t lits ~tainted ~src_id:cid;
  (* Chaff's new_lit_counts: every literal of the new conflict clause gets
     one activity point. *)
  List.iter (Order.bump t.order) lits;
  (match t.heur with Some h -> h.hk_on_conflict lits | None -> ());
  match lits with
  | [] -> assert false
  | [ l ] ->
    let cr = Arena.alloc t.arena ~cid ~learnt:true ~tainted [| l |] in
    enqueue t l cr
  | first :: _ ->
    let arr = Array.of_list lits in
    (* the second watch must be a literal from the backtrack level *)
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if t.level.(Lit.var arr.(k)) > t.level.(Lit.var arr.(!best)) then best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let cr = Arena.alloc t.arena ~cid ~learnt:true ~tainted arr in
    Vec.push t.learnts cr;
    attach t cr;
    t.stats.propagations <- t.stats.propagations + 1;
    enqueue t first cr

(* ------------------------------------------------------------------ *)
(* Clause-database reduction and arena compaction.                     *)
(* ------------------------------------------------------------------ *)

let locked t cr =
  Arena.size t.arena cr > 0
  &&
  let v = Lit.var (Arena.lit t.arena cr 0) in
  value_var t v <> unassigned && t.reason.(v) = cr

(* Copying compaction: relocate every live root — watcher crefs, reasons of
   assigned variables, the learnt list — into a fresh arena and adopt it.
   Deleted clauses are unreachable by now (reduce_db detaches them), so
   everything relocated is live and the new arena has zero waste. *)
let compact t =
  let bytes_before = Arena.bytes t.arena in
  let into = Arena.create ~capacity:(max 1024 (Arena.live_words t.arena)) () in
  Array.iter
    (fun w -> Arena.Watch.map_crefs w (fun cr -> Arena.reloc t.arena ~into cr))
    t.watches;
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) <> unassigned && t.reason.(v) <> Arena.none then
      t.reason.(v) <- Arena.reloc t.arena ~into t.reason.(v)
  done;
  for i = 0 to Vec.length t.learnts - 1 do
    Vec.set t.learnts i (Arena.reloc t.arena ~into (Vec.get t.learnts i))
  done;
  Arena.commit t.arena ~into;
  t.stats.arena_compactions <- t.stats.arena_compactions + 1;
  t.stats.arena_bytes <- Arena.bytes t.arena;
  frecord t Obs.Recorder.Compact ~a:bytes_before ~b:t.stats.arena_bytes

let reduce_db t =
  let cs = Vec.to_array t.learnts in
  Array.sort (fun a b -> Int.compare (Arena.activity t.arena a) (Arena.activity t.arena b)) cs;
  let target = Array.length cs / 2 in
  let removed = ref 0 in
  Array.iteri
    (fun i cr ->
      if i < target && Arena.size t.arena cr > 2 && not (locked t cr) then begin
        (match t.drat with
        | Some d -> Vec.push d (Checker.Deleted (Arena.lits_list t.arena cr))
        | None -> ());
        Arena.delete t.arena cr;
        incr removed
      end)
    cs;
  t.stats.deleted <- t.stats.deleted + !removed;
  Vec.filter_in_place (fun cr -> not (Arena.deleted t.arena cr)) t.learnts;
  (* one sweep detaches every deleted clause; pair storage is filtered in
     place, so watch-list capacity is reused, not reallocated *)
  if !removed > 0 then
    Array.iter
      (fun w -> Arena.Watch.filter_crefs w (fun cr -> not (Arena.deleted t.arena cr)))
      t.watches;
  t.max_learnts <- t.max_learnts + (t.max_learnts / 10);
  t.stats.arena_bytes <- Arena.bytes t.arena;
  frecord t Obs.Recorder.Reduce_db ~a:!removed ~b:(Vec.length t.learnts);
  if Arena.should_gc t.arena ~max_waste:t.gc_fraction then compact t

(* ------------------------------------------------------------------ *)
(* Periodic decay (Chaff's score halving).                             *)
(* ------------------------------------------------------------------ *)

let decay_period = 256

let maybe_decay t =
  t.conflicts_since_decay <- t.conflicts_since_decay + 1;
  if t.conflicts_since_decay >= decay_period then begin
    t.conflicts_since_decay <- 0;
    Order.halve_all t.order;
    Vec.iter (fun cr -> Arena.halve_activity t.arena cr) t.learnts
  end

(* ------------------------------------------------------------------ *)
(* Inprocessing (the solver-side driver of {!Inprocess}).              *)
(* ------------------------------------------------------------------ *)

let freeze t v =
  ensure_vars t (v + 1);
  t.frozen.(v) <- true

let melt t v = if v < Array.length t.frozen then t.frozen.(v) <- false

let is_frozen t v = v < Array.length t.frozen && t.frozen.(v)

let is_eliminated t v = v < Array.length t.eliminated && t.eliminated.(v)

let num_eliminated t = List.length t.elim_stack

(* Record a level-0 refutation discovered outside the search loop (during
   probing or while attaching derived clauses). *)
let refuted_at_level0 t confl =
  t.stats.conflicts <- t.stats.conflicts + 1;
  (match t.proof with
  | Some p ->
    if not (Proof.has_final p) then Proof.set_final p ~antecedents:(final_analysis t confl)
  | None -> ());
  (match t.drat with Some d -> Vec.push d (Checker.Learnt []) | None -> ());
  t.ok <- false

let over_deadline deadline = match deadline with Some d -> Sys.time () > d | None -> false

(* Failed-literal probing: speculatively decide each candidate literal at a
   fresh level and propagate.  A conflict means the literal fails; the
   ordinary 1UIP machinery then learns the implied unit — proof node, DRAT
   record and export filtering for free — and level-0 propagation
   saturates before the next probe.  Probing never removes a variable, so
   frozen variables are fair game. *)
let probe_round t (cfg : Inprocess.config) (st : Inprocess.stats) ~deadline =
  let budget_left = ref cfg.Inprocess.max_probes in
  let v = ref 0 in
  while t.ok && !budget_left > 0 && !v < t.nvars && not (over_deadline deadline) do
    let var = !v in
    if value_var t var = unassigned && not t.eliminated.(var) then
      List.iter
        (fun l ->
          if t.ok && !budget_left > 0 && value_lit t l = unassigned then begin
            decr budget_left;
            st.Inprocess.probes <- st.Inprocess.probes + 1;
            Vec.push t.trail_lim (Vec.length t.trail);
            enqueue t l Arena.none;
            let confl = propagate t in
            if confl = Arena.none then cancel_until t 0
            else begin
              st.Inprocess.probe_failed <- st.Inprocess.probe_failed + 1;
              t.stats.conflicts <- t.stats.conflicts + 1;
              let learnt, bt_level, ants = analyze t confl in
              cancel_until t bt_level;
              record_learnt t learnt ants;
              let confl0 = propagate t in
              if confl0 <> Arena.none then refuted_at_level0 t confl0
            end
          end)
        [ Lit.pos var; Lit.neg var ];
    incr v
  done

(* Every live clause is reachable from the watch lists (all clauses of two
   or more literals), the learnt list, or a reason slot (unit clauses
   enqueued at level 0).  Sorted by cref — allocation order — so the
   engine's input is deterministic. *)
let collect_live_crefs t =
  let tbl = Hashtbl.create 1024 in
  let add cr = if cr <> Arena.none && not (Hashtbl.mem tbl cr) then Hashtbl.replace tbl cr () in
  Array.iter (fun w -> Arena.Watch.fold_crefs (fun () cr -> add cr) () w) t.watches;
  Vec.iter add t.learnts;
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) <> unassigned && t.reason.(v) <> Arena.none then add t.reason.(v)
  done;
  Hashtbl.fold (fun cr () acc -> cr :: acc) tbl [] |> List.sort Int.compare

(* Bookkeeping for one clause named by the engine's script: its proof ID,
   stored literals, taint, redundancy and current arena block. *)
type inpr_info = {
  ii_cid : int;
  ii_lits : Lit.t list;
  ii_tainted : bool;
  ii_learnt : bool;
  ii_cref : Arena.cref;
}

(* Attach a clause newly allocated by inprocessing, assignment-aware like
   [add_original]: watches go on non-false literals, a single non-false
   literal is a (possibly pending) unit, none is a refutation. *)
let attach_derived t cr =
  let arena = t.arena in
  let n = Arena.size arena cr in
  let nf = ref 0 in
  for i = 0 to n - 1 do
    if value_lit t (Arena.lit arena cr i) <> 0 then begin
      Arena.swap_lits arena cr !nf i;
      incr nf
    end
  done;
  if !nf = 0 then refuted_at_level0 t cr
  else begin
    (if !nf = 1 then
       let first = Arena.lit arena cr 0 in
       match value_lit t first with
       | 1 -> ()
       | _ -> enqueue t first cr);
    if n >= 2 then attach t cr
  end

(* One inprocessing run: saturate level-0 BCP, probe, snapshot the live
   database, run the {!Inprocess} engine and replay its script.  Every
   derived clause becomes a proof node carrying its antecedent IDs and a
   DRAT addition emitted before its parents' deletions, so [unsat_core]
   and DRAT checking stay exact.  Locked (reason) clauses are never
   deleted and block the elimination of their variables; frozen variables
   are exempt from elimination only. *)
let inprocess ?(config = Inprocess.default) t =
  let st = Inprocess.fresh_stats () in
  if t.ok then begin
    let t0 = Sys.time () in
    cancel_until t 0;
    t.result <- None;
    t.failed_assumptions <- [];
    t.assumptions <- [||];
    (match t.proof with Some p -> Proof.clear_final p | None -> ());
    t.cur_budget <- no_budget;
    t.props_at_poll <- t.stats.propagations;
    let deadline = Option.map (fun s -> t0 +. s) config.Inprocess.time_slice in
    let confl = propagate t in
    if confl <> Arena.none then refuted_at_level0 t confl
    else begin
      if config.Inprocess.max_probes > 0 then probe_round t config st ~deadline;
      if t.ok then begin
        let arena = t.arena in
        (* snapshot the live clauses, dropping level-0-satisfied ones *)
        let inputs = ref [] and handles = ref [] in
        List.iter
          (fun cr ->
            if not (Arena.deleted arena cr) then begin
              let satisfied = ref false in
              Arena.iter_lits arena cr (fun l ->
                  if value_lit t l = 1 then satisfied := true);
              let lk = locked t cr in
              if !satisfied && not lk then begin
                (match t.drat with
                | Some d -> Vec.push d (Checker.Deleted (Arena.lits_list arena cr))
                | None -> ());
                Arena.delete arena cr;
                st.Inprocess.satisfied_removed <- st.Inprocess.satisfied_removed + 1
              end
              else begin
                inputs :=
                  {
                    Inprocess.lits = Arena.lits_list arena cr;
                    deletable = not lk;
                    redundant = Arena.learnt arena cr;
                  }
                  :: !inputs;
                handles := cr :: !handles
              end
            end)
          (collect_live_crefs t);
        let inputs = Array.of_list (List.rev !inputs) in
        let handles = Array.of_list (List.rev !handles) in
        let frozen v = t.frozen.(v) || t.eliminated.(v) in
        let actions =
          Inprocess.simplify config st ~num_vars:t.nvars ~frozen
            ~value:(fun l -> value_lit t l)
            ~deadline inputs
        in
        (* replay the script against the arena / proof / DRAT state *)
        let infos = Hashtbl.create (max 16 (2 * Array.length inputs)) in
        let info_of id =
          match Hashtbl.find_opt infos id with
          | Some i -> i
          | None ->
            let cr = handles.(id) in
            let i =
              {
                ii_cid = Arena.cid arena cr;
                ii_lits = inputs.(id).Inprocess.lits;
                ii_tainted = Arena.tainted arena cr;
                ii_learnt = Arena.learnt arena cr;
                ii_cref = cr;
              }
            in
            Hashtbl.replace infos id i;
            i
        in
        let new_crefs = ref [] in
        let delete_clause info =
          if not (Arena.deleted arena info.ii_cref) then begin
            (match t.drat with
            | Some d -> Vec.push d (Checker.Deleted (Arena.lits_list arena info.ii_cref))
            | None -> ());
            Arena.delete arena info.ii_cref
          end
        in
        let derive ~id ~lits ~parents ~learnt =
          let tainted = List.exists (fun i -> i.ii_tainted) parents in
          let cid =
            match t.proof with
            | Some p ->
              let pid =
                Proof.register_learnt p
                  ~antecedents:(List.map (fun i -> i.ii_cid) parents)
              in
              Hashtbl.replace t.learnt_lits pid lits;
              pid
            | None -> -1
          in
          (match t.drat with Some d -> Vec.push d (Checker.Learnt lits) | None -> ());
          let cr = Arena.alloc arena ~cid ~learnt ~tainted (Array.of_list lits) in
          Hashtbl.replace infos id
            { ii_cid = cid; ii_lits = lits; ii_tainted = tainted; ii_learnt = learnt;
              ii_cref = cr };
          new_crefs := cr :: !new_crefs;
          if learnt then Vec.push t.learnts cr
        in
        List.iter
          (fun (a : Inprocess.action) ->
            match a with
            | Inprocess.Delete id -> delete_clause (info_of id)
            | Inprocess.Strengthen { target; parent; lits; id } ->
              let ti = info_of target and pi = info_of parent in
              derive ~id ~lits ~parents:[ ti; pi ] ~learnt:ti.ii_learnt;
              delete_clause ti
            | Inprocess.Resolvent { pos; neg; lits; id; pivot = _ } ->
              derive ~id ~lits ~parents:[ info_of pos; info_of neg ] ~learnt:false
            | Inprocess.Eliminate { v; pos } ->
              t.eliminated.(v) <- true;
              t.elim_stack <- (v, pos) :: t.elim_stack)
          actions;
        (* one sweep detaches every deleted clause, then the surviving
           derived clauses attach and level-0 propagation saturates *)
        Array.iter
          (fun w -> Arena.Watch.filter_crefs w (fun cr -> not (Arena.deleted arena cr)))
          t.watches;
        Vec.filter_in_place (fun cr -> not (Arena.deleted arena cr)) t.learnts;
        List.iter
          (fun cr -> if t.ok && not (Arena.deleted arena cr) then attach_derived t cr)
          (List.rev !new_crefs);
        if t.ok then begin
          let confl = propagate t in
          if confl <> Arena.none then refuted_at_level0 t confl
        end;
        if Arena.should_gc arena ~max_waste:t.gc_fraction then compact t
      end
    end;
    st.Inprocess.time <- Sys.time () -. t0;
    let s = t.stats in
    s.inpr_runs <- s.inpr_runs + 1;
    s.inpr_probes <- s.inpr_probes + st.Inprocess.probes;
    s.inpr_probe_failed <- s.inpr_probe_failed + st.Inprocess.probe_failed;
    s.inpr_satisfied <- s.inpr_satisfied + st.Inprocess.satisfied_removed;
    s.inpr_subsumed <- s.inpr_subsumed + st.Inprocess.subsumed;
    s.inpr_strengthened <- s.inpr_strengthened + st.Inprocess.strengthened;
    s.inpr_eliminated <- s.inpr_eliminated + st.Inprocess.eliminated;
    s.inpr_resolvents <- s.inpr_resolvents + st.Inprocess.resolvents;
    s.inpr_time <- s.inpr_time +. st.Inprocess.time;
    s.arena_bytes <- Arena.bytes t.arena;
    frecord t Obs.Recorder.Inprocess ~a:st.Inprocess.eliminated
      ~b:(st.Inprocess.subsumed + st.Inprocess.strengthened);
    if Telemetry.enabled t.tel then begin
      let open Telemetry.Sink in
      Telemetry.span_event t.tel "inprocess" ~dur:st.Inprocess.time
        [
          ("eliminated", Int st.Inprocess.eliminated);
          ("subsumed", Int st.Inprocess.subsumed);
          ("strengthened", Int st.Inprocess.strengthened);
          ("satisfied", Int st.Inprocess.satisfied_removed);
          ("probe_failed", Int st.Inprocess.probe_failed);
          ("resolvents", Int st.Inprocess.resolvents);
        ]
    end
  end;
  st

(* ------------------------------------------------------------------ *)
(* Main search loop.                                                   *)
(* ------------------------------------------------------------------ *)

(* Hot-path timing is gated on the telemetry handle's [timing] knob so the
   disabled configuration — and event-stream-only handles like a ledger's —
   pay only this branch, never a clock read.  [Fun.protect]: the
   in-propagate budget poll can abandon a propagation by raising [Done],
   and the time already spent must still be accounted. *)
let propagate_timed t =
  if not (Telemetry.timing t.tel) then propagate t
  else begin
    let t0 = Sys.time () in
    Fun.protect
      ~finally:(fun () -> t.stats.bcp_time <- t.stats.bcp_time +. (Sys.time () -. t0))
      (fun () -> propagate t)
  end

let analyze_timed t conflict =
  if not (Telemetry.timing t.tel) then analyze t conflict
  else begin
    let t0 = Sys.time () in
    let r = analyze t conflict in
    t.stats.analyze_time <- t.stats.analyze_time +. (Sys.time () -. t0);
    r
  end

let handle_conflict t conflict =
  t.stats.conflicts <- t.stats.conflicts + 1;
  if decision_level t = 0 then begin
    (match t.proof with
    | Some p ->
      if not (Proof.has_final p) then
        Proof.set_final p ~antecedents:(final_analysis t conflict)
    | None -> ());
    (match t.drat with Some d -> Vec.push d (Checker.Learnt []) | None -> ());
    t.ok <- false;
    raise (Done Unsat)
  end;
  let learnt, bt_level, ants = analyze_timed t conflict in
  cancel_until t bt_level;
  record_learnt t learnt ants;
  maybe_decay t

let pick_decision t =
  (* the dynamic fallback of Section 3.3 *)
  if
    Order.is_dynamic t.order
    && Order.mode_uses_rank t.order
    && t.stats.decisions > t.dynamic_threshold
  then begin
    Order.switch_to_vsids t.order;
    t.stats.heuristic_switches <- t.stats.heuristic_switches + 1;
    frecord t Obs.Recorder.Switch ~a:t.stats.decisions ~b:t.stats.conflicts;
    if Telemetry.enabled t.tel then
      Telemetry.event t.tel "switch"
        [
          ("decisions", Telemetry.Sink.Int t.stats.decisions);
          ("threshold", Telemetry.Sink.Int t.dynamic_threshold);
        ]
  end;
  match
    Order.pop_best t.order ~is_unassigned:(fun v ->
        value_var t v = unassigned && not t.eliminated.(v))
  with
  | None -> None
  | Some l as picked -> (
    (* phase bias: a heuristic may override the sign of the decision
       literal; the variable choice itself stays with the order heap *)
    match t.heur with
    | None -> picked
    | Some h -> (
      match h.hk_bias (Lit.var l) with
      | None -> picked
      | Some b -> Some (Lit.make (Lit.var l) b)))

let search t budget start_time =
  let conflicts_until_restart = ref (Luby.next t.luby) in
  let new_level () = Vec.push t.trail_lim (Vec.length t.trail) in
  let rec loop () =
    let confl = propagate_timed t in
    if confl <> Arena.none then begin
      handle_conflict t confl;
      decr conflicts_until_restart;
      if budget_exceeded t budget start_time then raise (Done Unknown);
      if !conflicts_until_restart <= 0 then begin
        t.stats.restarts <- t.stats.restarts + 1;
        conflicts_until_restart := Luby.next t.luby;
        frecord t Obs.Recorder.Restart ~a:t.stats.conflicts ~b:t.stats.restarts;
        if Telemetry.enabled t.tel then
          Telemetry.event t.tel "restart"
            [ ("conflicts", Telemetry.Sink.Int t.stats.conflicts) ];
        cancel_until t 0;
        (match t.heur with Some h -> h.hk_on_restart () | None -> ());
        (* restart boundary: refill the export budget, let the adaptive
           throttle move the LBD cap, then adopt foreign clauses while at
           level 0 *)
        (match t.share with
        | Some sh ->
          sh.sh_left <- sh.sh_budget;
          (match sh.sh_tune with
          | Some f -> (
            match f () with Some cap -> sh.sh_max_lbd <- max 1 cap | None -> ())
          | None -> ());
          import_pending t;
          if not t.ok then raise (Done Unsat)
        | None -> ())
      end;
      loop ()
    end
    else begin
      let dl = decision_level t in
      if dl < Array.length t.assumptions then begin
        (* assumption prefix: assume the next one, or detect failure *)
        let p = t.assumptions.(dl) in
        match value_lit t p with
        | 1 ->
          new_level ();
          loop ()
        | v when v = unassigned ->
          new_level ();
          enqueue t p Arena.none;
          loop ()
        | _ ->
          let failed, ants = analyze_final_assumption t p in
          t.failed_assumptions <- failed;
          (match t.proof with
          | Some pr -> if not (Proof.has_final pr) then Proof.set_final pr ~antecedents:ants
          | None -> ());
          raise (Done Unsat)
      end
      else begin
        if Vec.length t.learnts >= t.max_learnts then
          Telemetry.span t.tel "reduce_db" (fun () -> reduce_db t);
        match pick_decision t with
        | None -> raise (Done Sat)
        | Some l ->
          if t.stats.decisions land 1023 = 0 && budget_exceeded t budget start_time then
            raise (Done Unknown);
          t.stats.decisions <- t.stats.decisions + 1;
          (* Per-variable source attribution: a ranked order still breaks
             ties among zero-rank variables on activity alone, so only a
             branch on a positively ranked variable counts as the
             paper's.  One array read per decision — cheap enough to
             count unconditionally; the split is published coalesced per
             solve call, never as a per-decision event. *)
          if Order.decided_by_rank t.order (Lit.var l) then
            t.stats.decisions_rank <- t.stats.decisions_rank + 1
          else t.stats.decisions_vsids <- t.stats.decisions_vsids + 1;
          new_level ();
          t.stats.max_decision_level <- max t.stats.max_decision_level (decision_level t);
          enqueue t l Arena.none;
          loop ()
      end
    end
  in
  loop ()

let cdg_seconds t = match t.proof with Some p -> Proof.cdg_seconds p | None -> 0.0

let solve ?(budget = no_budget) ?(assumptions = []) t =
  (* assumption-ordering: a heuristic may permute (never edit) the vector —
     the assumption set is semantic, its order is pure search strategy *)
  let assumptions =
    match t.heur with
    | Some { hk_permute = Some f; _ } -> f assumptions
    | _ -> assumptions
  in
  t.failed_assumptions <- [];
  let confl_before = t.stats.conflicts in
  let r =
    if not t.ok then Unsat
    else begin
      cancel_until t 0;
      (match t.proof with Some p -> Proof.clear_final p | None -> ());
      List.iter (fun l -> ensure_vars t (Lit.var l + 1)) assumptions;
      List.iter
        (fun l ->
          if t.eliminated.(Lit.var l) then
            invalid_arg
              "Solver.solve: assumption on an eliminated variable (freeze assumption \
               variables before inprocessing)")
        assumptions;
      t.assumptions <- Array.of_list assumptions;
      t.dynamic_threshold <- max 1 (Cnf.num_literals t.cnf / 64);
      Order.rebuild t.order ~is_unassigned:(fun v ->
          value_var t v = unassigned && not t.eliminated.(v));
      let s = t.stats in
      (* snapshots so an incremental solver reports this call's share only *)
      let bcp0 = s.bcp_time and analyze0 = s.analyze_time and cdg0 = cdg_seconds t in
      let props0 = s.propagations and confl0 = s.conflicts and learned0 = s.learned in
      let rank0 = s.decisions_rank and vsids0 = s.decisions_vsids in
      let start_time = Sys.time () in
      (* Resource budgets are per solve call: rebase the count limits onto
         the cumulative counters so an incremental solver grants every
         instance the full allowance instead of starving later depths. *)
      let budget =
        {
          budget with
          max_conflicts = Option.map (fun m -> confl0 + m) budget.max_conflicts;
          max_propagations = Option.map (fun m -> props0 + m) budget.max_propagations;
        }
      in
      t.cur_budget <- budget;
      t.solve_start <- start_time;
      t.props_at_poll <- s.propagations;
      (* adopt foreign clauses before searching; they may already refute *)
      import_pending t;
      let r =
        if not t.ok then Unsat else try search t budget start_time with Done r -> r
      in
      let dur = Sys.time () -. start_time in
      s.solve_time <- s.solve_time +. dur;
      s.arena_bytes <- Arena.bytes t.arena;
      if Telemetry.enabled t.tel then begin
        let open Telemetry.Sink in
        Telemetry.span_event t.tel "bcp" ~dur:(s.bcp_time -. bcp0)
          [ ("count", Int (s.propagations - props0)) ];
        Telemetry.span_event t.tel "analyze" ~dur:(s.analyze_time -. analyze0)
          [ ("count", Int (s.conflicts - confl0)) ];
        if t.proof <> None then
          Telemetry.span_event t.tel "cdg" ~dur:(cdg_seconds t -. cdg0)
            [ ("count", Int (s.learned - learned0)) ];
        Telemetry.counter t.tel "decisions.rank" (s.decisions_rank - rank0);
        Telemetry.counter t.tel "decisions.vsids" (s.decisions_vsids - vsids0);
        Telemetry.span_event t.tel "solve" ~dur
          [
            ("outcome", Str (outcome_string r));
            ("decisions", Int s.decisions);
            ("conflicts", Int s.conflicts);
            ("dec_rank", Int (s.decisions_rank - rank0));
            ("dec_vsids", Int (s.decisions_vsids - vsids0));
          ]
      end;
      r
    end
  in
  (* outside the search path so even instances refuted during clause
     loading (t.ok already false) leave a Solve mark in the recording *)
  frecord t Obs.Recorder.Solve
    ~a:(match r with Unsat -> 0 | Sat -> 1 | Unknown -> 2)
    ~b:(t.stats.conflicts - confl_before);
  (* keep the model available after Sat; reset nothing *)
  t.result <- Some r;
  r

let model t =
  match t.result with
  | Some Sat ->
    let m = Array.init t.nvars (fun v -> t.assigns.(v) = 1) in
    (* Extend the assignment over eliminated variables, most recently
       eliminated first (earlier-eliminated variables may depend on later
       ones through their saved occurrences).  [v := false] satisfies every
       negative saved occurrence; it is forced true iff some positive saved
       occurrence has no other true literal — the same reconstruction rule
       as {!Simplify}. *)
    List.iter
      (fun (v, pos) ->
        let lit_true l =
          let u = Lit.var l in
          if Lit.is_pos l then m.(u) else not m.(u)
        in
        let forced =
          List.exists
            (fun lits -> not (List.exists (fun l -> Lit.var l <> v && lit_true l) lits))
            pos
        in
        m.(v) <- forced)
      t.elim_stack;
    m
  | Some (Unsat | Unknown) | None -> invalid_arg "Solver.model: no satisfying assignment"

let unsat_core t =
  match (t.result, t.proof) with
  | Some Unsat, Some p ->
    (* The exact local-shard core.  Imported clauses are [Import] cross-edges
       (or, when the exporter logged no proof, original leaves without a
       clause index) and are excluded here — they belong to sibling shards;
       {!stitched_core} follows them for the exact cross-solver core, and
       {!unsat_core_imports} names the foreign axioms by their literals. *)
    Proof.core p
    |> List.filter_map (fun id -> Hashtbl.find_opt t.proof_to_cnf id)
    |> List.sort Int.compare
  | Some Unsat, None -> invalid_arg "Solver.unsat_core: proof logging was off"
  | (Some (Sat | Unknown) | None), _ -> invalid_arg "Solver.unsat_core: not UNSAT"

let unsat_core_imports t =
  match (t.result, t.proof) with
  | Some Unsat, Some p ->
    let provenanced = Proof.core_imports p in
    let originless = Proof.core p |> List.filter (Hashtbl.mem t.imported_ids) in
    List.filter_map (fun id -> Hashtbl.find_opt t.learnt_lits id) (provenanced @ originless)
  | Some Unsat, None -> invalid_arg "Solver.unsat_core_imports: proof logging was off"
  | (Some (Sat | Unknown) | None), _ -> invalid_arg "Solver.unsat_core_imports: not UNSAT"

let solver_id t = t.sid

let proof t = t.proof

let original_clause t i = Array.to_list (Cnf.get_clause t.cnf i)

(* The exact cross-solver core.  [lookup] resolves a sibling solver by its
   global id; call only once every sibling has quiesced — the walk reads
   their proof shards and clause tables without synchronisation. *)
let stitched_core t ~lookup =
  match (t.result, t.proof) with
  | Some Unsat, Some p ->
    let shards =
      Proof.stitched_core p ~lookup:(fun sid -> Option.bind (lookup sid) (fun s -> s.proof))
    in
    List.filter_map
      (fun (sid, ids) ->
        let s =
          if sid = t.sid then t
          else
            match lookup sid with
            | Some s -> s
            | None -> assert false (* Proof.stitched_core resolved it already *)
        in
        let idxs =
          ids
          |> List.filter_map (fun id -> Hashtbl.find_opt s.proof_to_cnf id)
          |> List.sort Int.compare
        in
        if idxs = [] then None else Some (sid, idxs))
      shards
  | Some Unsat, None -> invalid_arg "Solver.stitched_core: proof logging was off"
  | (Some (Sat | Unknown) | None), _ -> invalid_arg "Solver.stitched_core: not UNSAT"

let core_vars t =
  let core = unsat_core t in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun i ->
      Array.iter (fun l -> Hashtbl.replace tbl (Lit.var l) ()) (Cnf.get_clause t.cnf i))
    core;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort Int.compare

let stats t = t.stats

let num_vars t = t.nvars

let proof_edges t = match t.proof with Some p -> Proof.num_edges p | None -> 0

let drat_events t =
  match t.drat with
  | Some d -> Vec.to_list d
  | None -> invalid_arg "Solver.drat_events: DRAT logging was off"

(* McMillan interpolant for the (A, B) split of the original clauses. *)
let interpolant t ~a_side =
  match (t.result, t.proof) with
  | Some Unsat, Some p ->
    let final =
      match Proof.final p with
      | Some f -> f
      | None -> invalid_arg "Solver.interpolant: no final conflict recorded"
    in
    let b_vars = Array.make (max t.nvars 1) false in
    Cnf.iter_clauses
      (fun i c ->
        if not (a_side i) then Array.iter (fun l -> b_vars.(Lit.var l) <- true) c)
      t.cnf;
    let clause_lits id =
      match Hashtbl.find_opt t.learnt_lits id with
      | Some lits -> lits
      | None -> (
        let original = Cnf.get_clause t.cnf (Hashtbl.find t.proof_to_cnf id) in
        match Cnf.normalize_clause (Array.to_list original) with
        | Some lits -> lits
        | None -> invalid_arg "Solver.interpolant: tautology in the proof")
    in
    Itp.compute ~clause_lits
      ~antecedents:(fun id -> Proof.antecedents p id)
      ~final
      ~side:(fun id ->
        if Hashtbl.mem t.imported_ids id then
          invalid_arg "Solver.interpolant: the proof uses imported (shared) clauses"
        else if a_side (Hashtbl.find t.proof_to_cnf id) then `A
        else `B)
      ~b_vars:(fun v -> v >= 0 && v < Array.length b_vars && b_vars.(v))
  | Some Unsat, None -> invalid_arg "Solver.interpolant: proof logging was off"
  | (Some (Sat | Unknown) | None), _ -> invalid_arg "Solver.interpolant: not UNSAT"

let failed_assumptions t =
  match t.result with
  | Some Unsat -> t.failed_assumptions
  | Some (Sat | Unknown) | None -> invalid_arg "Solver.failed_assumptions: not UNSAT"

let set_order ?hooks t mode =
  cancel_until t 0;
  t.heur <- hooks;
  Order.set_mode t.order mode

let set_rank t v r = Order.set_rank t.order v r

let heuristic_name t = match t.heur with Some h -> Some h.hk_name | None -> None

let set_max_learnts t n = t.max_learnts <- max 1 n

let set_restart_base t base = t.luby <- Luby.create ~base

let set_share ?(max_size = 8) ?(max_lbd = 4) ?(export_budget = max_int) ?tune t ~export
    ~import =
  (* DRAT and sharing now coexist: imports are recorded as [i]-prefixed
     trusted axioms (see {!Checker.event}), so the clausal proof stays
     replayable instead of being refused outright. *)
  if max_size < 1 || max_lbd < 1 || export_budget < 1 then
    invalid_arg "Solver.set_share: caps must be >= 1";
  t.share <-
    Some
      {
        sh_max_size = max_size;
        sh_max_lbd = max_lbd;
        sh_budget = export_budget;
        sh_left = export_budget;
        sh_tune = tune;
        sh_export = export;
        sh_import = import;
      }

let clear_share t = t.share <- None

let set_recorder t r = t.frec <- Some r

let clear_recorder t = t.frec <- None

let set_gc_fraction t f =
  if f < 0.0 then invalid_arg "Solver.set_gc_fraction: negative";
  t.gc_fraction <- f

let arena_bytes t = Arena.bytes t.arena

let num_clauses t = Cnf.num_clauses t.cnf

let outcome_opt t = t.result

let pp_outcome ppf = function
  | Sat -> Format.pp_print_string ppf "SAT"
  | Unsat -> Format.pp_print_string ppf "UNSAT"
  | Unknown -> Format.pp_print_string ppf "UNKNOWN"
