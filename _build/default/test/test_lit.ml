(* Literal encoding invariants. *)

let test_make () =
  let l = Sat.Lit.make 3 true in
  Alcotest.(check int) "var" 3 (Sat.Lit.var l);
  Alcotest.(check bool) "is_pos" true (Sat.Lit.is_pos l);
  let m = Sat.Lit.make 3 false in
  Alcotest.(check int) "var" 3 (Sat.Lit.var m);
  Alcotest.(check bool) "is_pos" false (Sat.Lit.is_pos m);
  Alcotest.(check bool) "distinct" false (Sat.Lit.equal l m)

let test_negate () =
  let l = Sat.Lit.pos 5 in
  Alcotest.(check bool) "double negation" true (Sat.Lit.equal l (Sat.Lit.negate (Sat.Lit.negate l)));
  Alcotest.(check bool) "negate flips" true (Sat.Lit.equal (Sat.Lit.neg 5) (Sat.Lit.negate l))

let test_dimacs () =
  Alcotest.(check int) "pos" 6 (Sat.Lit.to_dimacs (Sat.Lit.pos 5));
  Alcotest.(check int) "neg" (-6) (Sat.Lit.to_dimacs (Sat.Lit.neg 5));
  Alcotest.(check bool) "roundtrip pos" true
    (Sat.Lit.equal (Sat.Lit.pos 5) (Sat.Lit.of_dimacs 6));
  Alcotest.(check bool) "roundtrip neg" true
    (Sat.Lit.equal (Sat.Lit.neg 5) (Sat.Lit.of_dimacs (-6)));
  Alcotest.check_raises "zero" (Invalid_argument "Lit.of_dimacs: zero") (fun () ->
      ignore (Sat.Lit.of_dimacs 0))

let test_index () =
  Alcotest.(check int) "pos even" 10 (Sat.Lit.to_index (Sat.Lit.pos 5));
  Alcotest.(check int) "neg odd" 11 (Sat.Lit.to_index (Sat.Lit.neg 5));
  Alcotest.check_raises "negative var" (Invalid_argument "Lit.make: negative variable")
    (fun () -> ignore (Sat.Lit.make (-1) true))

let prop_roundtrip_index =
  QCheck.Test.make ~name:"to_index/of_index roundtrip" ~count:500
    QCheck.(pair (int_bound 10_000) bool)
    (fun (v, s) ->
      let l = Sat.Lit.make v s in
      Sat.Lit.equal l (Sat.Lit.of_index (Sat.Lit.to_index l)))

let prop_roundtrip_dimacs =
  QCheck.Test.make ~name:"to_dimacs/of_dimacs roundtrip" ~count:500
    QCheck.(pair (int_bound 10_000) bool)
    (fun (v, s) ->
      let l = Sat.Lit.make v s in
      Sat.Lit.equal l (Sat.Lit.of_dimacs (Sat.Lit.to_dimacs l)))

let prop_negate_changes_index =
  QCheck.Test.make ~name:"negate toggles parity of index" ~count:500
    QCheck.(pair (int_bound 10_000) bool)
    (fun (v, s) ->
      let l = Sat.Lit.make v s in
      abs (Sat.Lit.to_index l - Sat.Lit.to_index (Sat.Lit.negate l)) = 1)

let tests =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "negate" `Quick test_negate;
    Alcotest.test_case "dimacs" `Quick test_dimacs;
    Alcotest.test_case "index" `Quick test_index;
    QCheck_alcotest.to_alcotest prop_roundtrip_index;
    QCheck_alcotest.to_alcotest prop_roundtrip_dimacs;
    QCheck_alcotest.to_alcotest prop_negate_changes_index;
  ]
