module Pool = Pool
module Session = Bmc.Session

(* ------------------------------------------------------------------ *)
(* Mode A: strategy races.                                             *)
(* ------------------------------------------------------------------ *)

type racer = {
  r_mode : Session.mode;
  r_restart_base : int option;
}

(* Distinct Luby units diversify the racers' restart schedules — and
   therefore which clauses each learns and offers to the exchange. *)
let default_racers =
  [
    { r_mode = Session.Standard; r_restart_base = Some 64 };
    { r_mode = Session.Static; r_restart_base = Some 100 };
    { r_mode = Session.Dynamic; r_restart_base = Some 150 };
  ]

type slot = {
  s_mode : Session.mode;
  s_base : int option; (* per-racer Luby restart unit override *)
  s_token : Pool.Token.t;
  (* The racer's persistent session.  Created lazily by the first job that
     runs on the slot's pinned worker and only ever touched there — the
     coordinator must never dereference it (Session's ownership rule). *)
  mutable s_session : Session.t option;
}

type race = {
  r_pool : Pool.t;
  r_cfg : Session.config;
  r_netlist : Circuit.Netlist.t;
  r_property : Circuit.Netlist.node;
  r_slots : slot array;
  r_score : Bmc.Score.t;
  r_wins : int array; (* per-slot race wins, coordinator-only *)
  r_share : Share.Exchange.t option;
  mutable r_last_k : int;
}

let mode_string m = Format.asprintf "%a" Session.pp_mode m

let create_race ?modes ?racers ?share ~pool cfg netlist ~property =
  let racers =
    match (racers, modes) with
    | Some rs, _ -> rs
    | None, Some ms -> List.map (fun m -> { r_mode = m; r_restart_base = None }) ms
    | None, None -> default_racers
  in
  if racers = [] then invalid_arg "Portfolio.create_race: no racers";
  (* validate the netlist in the coordinator, where the error is useful,
     rather than inside a worker job *)
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Portfolio.create_race: " ^ msg));
  let cfg = { cfg with Session.collect_cores = true } in
  let slots =
    Array.of_list
      (List.map
         (fun r ->
           {
             s_mode = r.r_mode;
             s_base = r.r_restart_base;
             s_token = Pool.Token.create ();
             s_session = None;
           })
         racers)
  in
  {
    r_pool = pool;
    r_cfg = cfg;
    r_netlist = netlist;
    r_property = property;
    r_slots = slots;
    r_score = Bmc.Score.create ~weighting:cfg.Session.weighting ();
    r_wins = Array.make (Array.length slots) 0;
    r_share = share;
    r_last_k = -1;
  }

(* Runs inside the slot's pinned worker. *)
let slot_session race slot =
  match slot.s_session with
  | Some s -> s
  | None ->
    let base = race.r_cfg.Session.budget in
    let token_stop = Pool.Token.stop_hook slot.s_token in
    let stop =
      match base.Sat.Solver.stop with
      | None -> token_stop
      | Some f -> fun () -> token_stop () || f ()
    in
    let cfg =
      {
        race.r_cfg with
        Session.mode = slot.s_mode;
        budget = { base with Sat.Solver.stop = Some stop };
        restart_base =
          (match slot.s_base with
          | Some _ as b -> b
          | None -> race.r_cfg.Session.restart_base);
      }
    in
    (* The endpoint, like the session, is created inside the pinned worker
       and confined to it; only the exchange itself is shared. *)
    let share =
      Option.map
        (fun ex -> Share.Exchange.endpoint ex ~name:(mode_string slot.s_mode))
        race.r_share
    in
    (* [fold_cores:false]: racers extract cores but never write the shared
       score — the coordinator folds exactly one core (the winner's) per
       depth, between rounds. *)
    let s =
      Session.create ?share ~score:race.r_score ~fold_cores:false cfg race.r_netlist
        ~property:race.r_property
    in
    slot.s_session <- Some s;
    s

type attempt = {
  a_stat : Session.depth_stat;
  a_trace : Bmc.Trace.t option;
  a_core_vars : Sat.Lit.var list;
  a_finished : float; (* wall clock *)
}

type race_stat = {
  depth : int;
  winner : Session.mode option;
  stat : Session.depth_stat;
  core_vars : Sat.Lit.var list;
  attempts : (Session.mode * Sat.Solver.outcome) list;
  wall : float;
  cancelled : int;
  max_cancel_latency : float;
  trace : Bmc.Trace.t option;
}

let definitive = function
  | Sat.Solver.Sat | Sat.Solver.Unsat -> true
  | Sat.Solver.Unknown -> false

let race_depth race ~k =
  if k <= race.r_last_k then
    invalid_arg "Portfolio.race_depth: depth must increase between rounds";
  race.r_last_k <- k;
  let slots = race.r_slots in
  let n = Array.length slots in
  let tel = race.r_cfg.Session.telemetry in
  (* all prior rounds have settled, so re-arming the tokens is safe *)
  Array.iter (fun sl -> Pool.Token.reset sl.s_token) slots;
  let cm = Mutex.create () in
  let ccv = Condition.create () in
  let results = Array.make n None in
  let settled = ref 0 in
  let winner = ref None in
  let cancel_at = ref 0.0 in
  let t0 = Pool.wall () in
  (* Flight events land in the recording worker's own ring. *)
  let frecord kind ~slot =
    match race.r_cfg.Session.recorder with
    | Some r -> Obs.Recorder.record r kind ~a:k ~b:slot
    | None -> ()
  in
  let job i () =
    frecord Obs.Recorder.Racer_start ~slot:i;
    let outcome =
      try
        let s = slot_session race slots.(i) in
        let st = Session.solve_depth s ~k in
        let tr =
          match st.Session.outcome with
          | Sat.Solver.Sat -> Some (Session.trace s)
          | Sat.Solver.Unsat | Sat.Solver.Unknown -> None
        in
        Ok
          {
            a_stat = st;
            a_trace = tr;
            a_core_vars = Session.last_core_vars s;
            a_finished = Pool.wall ();
          }
      with e -> Error e
    in
    Mutex.protect cm (fun () ->
        results.(i) <- Some outcome;
        (match outcome with
        | Ok a when definitive a.a_stat.Session.outcome && !winner = None ->
          winner := Some i;
          cancel_at := Pool.wall ();
          frecord Obs.Recorder.Racer_win ~slot:i;
          (* cancel from inside the winning job: lower cancellation latency
             than waiting for the coordinator to wake up *)
          Array.iteri (fun j sl -> if j <> i then Pool.Token.cancel sl.s_token) slots
        | Ok a ->
          if
            Pool.Token.cancelled slots.(i).s_token
            && not (definitive a.a_stat.Session.outcome)
          then frecord Obs.Recorder.Racer_cancel ~slot:i
        | Error _ -> ());
        incr settled;
        Condition.broadcast ccv)
  in
  Array.iteri (fun i _ -> ignore (Pool.submit ~affinity:i ~label:"race" race.r_pool (job i)))
    slots;
  Mutex.lock cm;
  while !settled < n do
    Condition.wait ccv cm
  done;
  Mutex.unlock cm;
  let wall = Pool.wall () -. t0 in
  (* every racer has settled: surface any racer exception first *)
  let attempts =
    Array.map
      (function
        | Some (Ok a) -> a
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  in
  let cancelled = ref 0 in
  let max_latency = ref 0.0 in
  let folded_core_vars = ref None in
  (match !winner with
  | None -> ()
  | Some w ->
    race.r_wins.(w) <- race.r_wins.(w) + 1;
    Array.iteri
      (fun j a ->
        if j <> w && Pool.Token.cancelled slots.(j).s_token
           && not (definitive a.a_stat.Session.outcome)
        then begin
          incr cancelled;
          let lat = Float.max 0.0 (a.a_finished -. !cancel_at) in
          if lat > !max_latency then max_latency := lat;
          if Telemetry.enabled tel then
            Telemetry.span_event tel "cancel_latency" ~dur:lat
              [
                ("depth", Telemetry.Sink.Int k);
                ("mode", Telemetry.Sink.Str (mode_string slots.(j).s_mode));
              ]
        end)
      attempts;
    (* the paper's refinement step, once per depth: only the winner's core
       reaches the shared ranking.  With sharing on, the winner's local core
       may lean on imported clauses; every racer has settled by now (the
       wait loop above is the quiescence barrier), so stitch the racers'
       proof shards and fold the winner's true cross-solver core instead of
       its local projection. *)
    let wa = attempts.(w) in
    (match wa.a_stat.Session.outcome with
    | Sat.Solver.Unsat ->
      let core_vars =
        match (race.r_share, slots.(w).s_session) with
        | Some _, Some ws ->
          let siblings sid =
            Array.fold_left
              (fun acc sl ->
                match acc with
                | Some _ -> acc
                | None -> (
                  match sl.s_session with
                  | Some s when Session.solver_id s = sid -> Some s
                  | Some _ | None -> None))
              None slots
          in
          Session.exact_core_vars ws ~siblings
        | _ -> wa.a_core_vars
      in
      folded_core_vars := Some core_vars;
      Bmc.Score.update race.r_score ~instance:k ~core_vars
    | Sat.Solver.Sat | Sat.Solver.Unknown -> ()));
  let winner_mode = Option.map (fun w -> slots.(w).s_mode) !winner in
  if Telemetry.enabled tel then begin
    Telemetry.event tel "race"
      [
        ("depth", Telemetry.Sink.Int k);
        ( "winner",
          Telemetry.Sink.Str
            (match winner_mode with Some m -> mode_string m | None -> "none") );
        ("wall_s", Telemetry.Sink.Float wall);
        ("cancelled", Telemetry.Sink.Int !cancelled);
      ];
    (match winner_mode with
    | Some m -> Telemetry.counter tel ("race.win." ^ mode_string m) 1
    | None -> ());
    if !cancelled > 0 then Telemetry.counter tel "race.cancelled" !cancelled
  end;
  let best = match !winner with Some w -> attempts.(w) | None -> attempts.(0) in
  {
    depth = k;
    winner = winner_mode;
    stat = best.a_stat;
    core_vars =
      (match !folded_core_vars with Some v -> v | None -> best.a_core_vars);
    attempts =
      Array.to_list
        (Array.mapi (fun i a -> (slots.(i).s_mode, a.a_stat.Session.outcome)) attempts);
    wall;
    cancelled = !cancelled;
    max_cancel_latency = !max_latency;
    trace = best.a_trace;
  }

let race_score race = race.r_score

(* Sessions publish per-instance share deltas (exported / imported /
   rejected_tainted) themselves; the stale-drop count only exists at the
   exchange, so the coordinator flushes it once a run is over. *)
let emit_share_drops tel = function
  | None -> ()
  | Some ex ->
    if Telemetry.enabled tel then
      List.iter
        (fun (name, v) -> if name = "dropped_stale" && v > 0 then
            Telemetry.counter tel ("share." ^ name) v)
        (Share.Exchange.stats_fields (Share.Exchange.stats ex))

type result = {
  verdict : Session.verdict;
  per_depth : race_stat list;
  total_wall : float;
  wins : (Session.mode * int) list;
}

let check_race ?(config = Session.default_config) ?modes ?racers ?share ~pool netlist
    ~property =
  let race = create_race ?modes ?racers ?share ~pool config netlist ~property in
  let per_depth = ref [] in
  let t0 = Pool.wall () in
  let finish verdict =
    emit_share_drops config.Session.telemetry race.r_share;
    {
      verdict;
      per_depth = List.rev !per_depth;
      total_wall = Pool.wall () -. t0;
      wins =
        Array.to_list (Array.mapi (fun i sl -> (sl.s_mode, race.r_wins.(i))) race.r_slots);
    }
  in
  let rec loop k =
    if k > config.Session.max_depth then finish (Session.Bounded_pass config.Session.max_depth)
    else begin
      let rs = race_depth race ~k in
      per_depth := rs :: !per_depth;
      match rs.winner with
      | None -> finish (Session.Aborted k)
      | Some _ -> (
        match rs.stat.Session.outcome with
        | Sat.Solver.Sat ->
          let tr = match rs.trace with Some t -> t | None -> assert false in
          if not (Bmc.Trace.replay tr netlist ~property) then
            failwith
              (Printf.sprintf
                 "Portfolio.check_race: counterexample at depth %d failed to replay \
                  (internal error)"
                 k);
          finish (Session.Falsified tr)
        | Sat.Solver.Unsat -> loop (k + 1)
        | Sat.Solver.Unknown -> assert false)
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Mode B: property batches.                                           *)
(* ------------------------------------------------------------------ *)

(* Clause exchange is sound only between sessions unrolling structurally
   identical circuits (packed keys are (node, frame) pairs, and equal
   digests guarantee identical node numbering), so group the batch by
   structural digest — two separately parsed copies of one circuit land in
   the same group, where the old physical ([==]) grouping kept them
   apart. *)
let batch_share_groups items =
  let order = ref [] in
  let groups : (string, string list ref) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (name, netlist, _) ->
      let d = Circuit.Netlist.digest netlist in
      match Hashtbl.find_opt groups d with
      | Some members -> members := name :: !members
      | None ->
        Hashtbl.add groups d (ref [ name ]);
        order := d :: !order)
    items;
  List.rev_map
    (fun d -> (d, List.rev !(Hashtbl.find groups d)))
    !order
  |> List.filter (fun (_, members) -> List.length members >= 2)

let check_batch ?(config = Session.default_config) ?(policy = Session.Persistent)
    ?(share = false) ~pool items =
  let tel = config.Session.telemetry in
  (* One exchange per digest group of two or more properties.  Fresh-policy
     batches never share (Session.create would reject the combination). *)
  let exchanges =
    if not (share && policy = Session.Persistent) then []
    else
      List.map (fun (d, _) -> (d, Share.Exchange.create ())) (batch_share_groups items)
  in
  Pool.map_list ~label:"batch" pool
    (fun (name, netlist, property) ->
      let t0 = Pool.wall () in
      (* endpoint created inside whichever worker stole the job, and
         confined to it *)
      let share =
        Option.map
          (fun ex -> Share.Exchange.endpoint ex ~name)
          (List.assoc_opt (Circuit.Netlist.digest netlist) exchanges)
      in
      let r = Session.check ~config ?share ~policy netlist ~property in
      if Telemetry.enabled tel then
        Telemetry.span_event tel "batch_item" ~dur:(Pool.wall () -. t0)
          [ ("name", Telemetry.Sink.Str name) ];
      (name, r))
    items
  |> fun results ->
  List.iter (fun (_, ex) -> emit_share_drops tel (Some ex)) exchanges;
  results
