lib/circuit/eval.mli: Netlist
