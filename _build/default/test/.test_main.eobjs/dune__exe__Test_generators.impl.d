test/test_generators.ml: Alcotest Bmc Circuit Format List String
