test/test_eval.ml: Alcotest Array Circuit Fun Gen List QCheck QCheck_alcotest
