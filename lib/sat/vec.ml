type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let shrink_retain v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink_retain";
  v.len <- n

let clear_retain v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (push v) xs;
  v

let to_array v = Array.sub v.data 0 v.len

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  let n = !j in
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n
