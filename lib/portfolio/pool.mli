(** A fixed pool of [Domain.t] workers behind a mutex/condition job queue.

    The pool is the substrate of the {!Portfolio} layer: strategy races
    submit one job per decision ordering, property batches submit one job
    per property, and both rely on two properties the pool guarantees:

    - {e affinity}: a job submitted with [~affinity:i] always runs on
      worker [i mod size], so state a job creates on its worker (a
      {!Bmc.Session}, which is domain-confined) can be reused by every
      later job with the same affinity;
    - {e cooperative cancellation}: a {!Token.t} is an [Atomic.t] flag
      shared between the coordinator and a running job; {!Token.stop_hook}
      adapts it to the [stop] hook of {!Sat.Solver.budget}, which the
      solver polls at conflict / 1024-decision boundaries.

    Jobs never block on other jobs (no job-to-job dependencies), so a pool
    smaller than a race is safe: pinned jobs sharing a worker serialise in
    submission order and the race degenerates gracefully towards the
    sequential portfolio.

    When the pool has a telemetry handle, every executed job emits a
    ["queue_wait"] span (wall-clock seconds between submission and the
    moment a worker picks the job up, tagged with the worker id) — the
    scheduling-pressure signal of the per-worker telemetry. *)

type t

val create : ?telemetry:Telemetry.t -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains (clamped to at least 1).  [telemetry]
    (default {!Telemetry.disabled}) receives the per-job "queue_wait"
    spans; share a handle whose sink is domain-safe (the stock
    {!Telemetry.Sink} constructors are). *)

val size : t -> int
(** Number of worker domains. *)

val wall : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  In multicore OCaml
    [Sys.time] sums CPU time across domains, so every latency or speedup
    measurement in the portfolio layer uses this clock instead. *)

(** {1 Futures} *)

type 'a future

val submit : ?affinity:int -> ?label:string -> t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Without [affinity] it goes to the shared queue (any
    idle worker steals it); with [~affinity:i] it is pinned to worker
    [i mod size].  [label] tags the job's "queue_wait" telemetry span.
    Jobs pinned to one worker run in submission order.
    @raise Invalid_argument if the pool has been shut down. *)

val await : 'a future -> 'a
(** Block until the job finishes; returns its value or re-raises its
    exception (in the caller's domain). *)

val map_list : ?label:string -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one unpinned job per element, await them all, preserve order.
    Exceptions re-raise after every job has settled (first one wins). *)

(** {1 Cancellation tokens} *)

module Token : sig
  type t
  (** A cancellation flag shared between a coordinator and running jobs.
      Purely cooperative: cancelling never interrupts a worker, it only
      makes {!cancelled} (and the solver's [stop] poll) answer [true]. *)

  val create : unit -> t

  val cancel : t -> unit

  val cancelled : t -> bool

  val reset : t -> unit
  (** Re-arm a token for the next round.  Only safe once every job holding
      the token has settled (e.g. between race rounds, after the
      coordinator awaited all racers). *)

  val stop_hook : t -> unit -> bool
  (** The token as a {!Sat.Solver.budget} [stop] hook: an [Atomic.get]
      behind a closure, cheap enough for the solver's per-conflict poll. *)
end

(** {1 Shutdown} *)

val shutdown : t -> unit
(** Drain every queued job, then join all workers.  Idempotent. *)

val with_pool : ?telemetry:Telemetry.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the body, and {!shutdown} (also on exception). *)
