examples/arbiter_audit.ml: Bmc Circuit Format List Printf Sat
