(* Formula container: construction, normalisation, evaluation. *)

let pos = Sat.Lit.pos

let neg = Sat.Lit.neg

let test_fresh_vars () =
  let f = Sat.Cnf.create () in
  Alcotest.(check int) "v0" 0 (Sat.Cnf.fresh_var f);
  Alcotest.(check int) "v1" 1 (Sat.Cnf.fresh_var f);
  Alcotest.(check int) "count" 2 (Sat.Cnf.num_vars f)

let test_add_clause_grows_vars () =
  let f = Sat.Cnf.create () in
  Sat.Cnf.add_clause f [ pos 4; neg 2 ];
  Alcotest.(check int) "vars grown to max+1" 5 (Sat.Cnf.num_vars f);
  Alcotest.(check int) "clauses" 1 (Sat.Cnf.num_clauses f);
  Alcotest.(check int) "literals" 2 (Sat.Cnf.num_literals f)

let test_get_clause_order () =
  let f = Sat.Cnf.create () in
  Sat.Cnf.add_clause f [ pos 0 ];
  Sat.Cnf.add_clause f [ neg 1; pos 2 ];
  Alcotest.(check int) "clause 0 size" 1 (Array.length (Sat.Cnf.get_clause f 0));
  Alcotest.(check int) "clause 1 size" 2 (Array.length (Sat.Cnf.get_clause f 1))

let test_normalize () =
  (match Sat.Cnf.normalize_clause [ pos 1; pos 1; neg 2 ] with
  | Some lits -> Alcotest.(check int) "dedup" 2 (List.length lits)
  | None -> Alcotest.fail "unexpected tautology");
  (match Sat.Cnf.normalize_clause [ pos 1; neg 1 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "tautology not detected");
  match Sat.Cnf.normalize_clause [] with
  | Some [] -> ()
  | Some _ | None -> Alcotest.fail "empty clause must normalise to itself"

let test_eval () =
  let f = Sat.Cnf.create () in
  Sat.Cnf.add_clause f [ pos 0; pos 1 ];
  Sat.Cnf.add_clause f [ neg 0 ];
  Alcotest.(check bool) "x0=F x1=T sat" true (Sat.Cnf.eval f (fun v -> v = 1));
  Alcotest.(check bool) "x0=T violates" false (Sat.Cnf.eval f (fun _ -> true));
  Alcotest.(check bool) "x0=F x1=F violates first" false (Sat.Cnf.eval f (fun _ -> false))

let test_eval_empty_clause () =
  let f = Sat.Cnf.create () in
  Sat.Cnf.add_clause f [];
  Alcotest.(check bool) "empty clause unsatisfiable" false (Sat.Cnf.eval f (fun _ -> true))

let test_copy_independent () =
  let f = Sat.Cnf.create () in
  Sat.Cnf.add_clause f [ pos 0 ];
  let g = Sat.Cnf.copy f in
  Sat.Cnf.add_clause f [ pos 1 ];
  Alcotest.(check int) "copy unaffected" 1 (Sat.Cnf.num_clauses g);
  Alcotest.(check int) "original grew" 2 (Sat.Cnf.num_clauses f)

let test_ensure_vars () =
  let f = Sat.Cnf.create ~num_vars:3 () in
  Sat.Cnf.ensure_vars f 2;
  Alcotest.(check int) "no shrink" 3 (Sat.Cnf.num_vars f);
  Sat.Cnf.ensure_vars f 10;
  Alcotest.(check int) "grow" 10 (Sat.Cnf.num_vars f)

(* random clause list as (var, sign) pairs over a small domain *)
let clause_gen =
  QCheck.(list_of_size Gen.(0 -- 6) (pair (int_bound 5) bool))

let to_lits = List.map (fun (v, s) -> Sat.Lit.make v s)

let prop_normalize_sound =
  (* normalisation preserves the clause's value under every assignment *)
  QCheck.Test.make ~name:"normalize_clause preserves semantics" ~count:500
    QCheck.(pair clause_gen (fun1 QCheck.Observable.int bool))
    (fun (cl, f) ->
      let assign = QCheck.Fn.apply f in
      let lits = to_lits cl in
      let value lits =
        List.exists (fun l -> assign (Sat.Lit.var l) = Sat.Lit.is_pos l) lits
      in
      match Sat.Cnf.normalize_clause lits with
      | None -> value lits (* tautologies are true under any assignment *)
      | Some lits' -> value lits = value lits')

let prop_num_literals =
  QCheck.Test.make ~name:"num_literals counts occurrences" ~count:200
    QCheck.(list clause_gen)
    (fun cls ->
      let f = Sat.Cnf.create () in
      List.iter (fun cl -> Sat.Cnf.add_clause f (to_lits cl)) cls;
      Sat.Cnf.num_literals f = List.fold_left (fun a c -> a + List.length c) 0 cls)

let tests =
  [
    Alcotest.test_case "fresh vars" `Quick test_fresh_vars;
    Alcotest.test_case "add grows vars" `Quick test_add_clause_grows_vars;
    Alcotest.test_case "clause order" `Quick test_get_clause_order;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "eval empty clause" `Quick test_eval_empty_clause;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "ensure_vars" `Quick test_ensure_vars;
    QCheck_alcotest.to_alcotest prop_normalize_sound;
    QCheck_alcotest.to_alcotest prop_num_literals;
  ]
