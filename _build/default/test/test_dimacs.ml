(* DIMACS reader/writer. *)

let test_parse_simple () =
  let cnf = Sat.Dimacs.parse_string "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  Alcotest.(check int) "vars" 3 (Sat.Cnf.num_vars cnf);
  Alcotest.(check int) "clauses" 2 (Sat.Cnf.num_clauses cnf);
  let c0 = Sat.Cnf.get_clause cnf 0 in
  Alcotest.(check int) "c0 lit0" 1 (Sat.Lit.to_dimacs c0.(0));
  Alcotest.(check int) "c0 lit1" (-2) (Sat.Lit.to_dimacs c0.(1))

let test_parse_multiline_clause () =
  let cnf = Sat.Dimacs.parse_string "p cnf 4 1\n1 2\n3 4 0\n" in
  Alcotest.(check int) "one clause across lines" 1 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check int) "four literals" 4 (Array.length (Sat.Cnf.get_clause cnf 0))

let test_parse_missing_final_zero () =
  let cnf = Sat.Dimacs.parse_string "p cnf 2 1\n1 2" in
  Alcotest.(check int) "tolerated" 1 (Sat.Cnf.num_clauses cnf)

let expect_error input =
  match Sat.Dimacs.parse_string input with
  | exception Sat.Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected Parse_error on: " ^ input)

let test_errors () =
  expect_error "1 2 0\n"; (* clause before header *)
  expect_error "p cnf 2 1\np cnf 2 1\n1 0\n"; (* duplicate header *)
  expect_error "p cnf x 1\n1 0\n"; (* malformed header *)
  expect_error "p cnf 1 1\n2 0\n"; (* variable exceeds declared count *)
  expect_error "p cnf 2 5\n1 0\n"; (* fewer clauses than declared *)
  expect_error "p cnf 2 1\n1 garbage 0\n"; (* bad token *)
  expect_error "" (* missing header *)

let test_empty_clause () =
  let cnf = Sat.Dimacs.parse_string "p cnf 1 1\n0\n" in
  Alcotest.(check int) "one empty clause" 1 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check int) "zero literals" 0 (Array.length (Sat.Cnf.get_clause cnf 0))

let test_print_parse_roundtrip () =
  let cnf = Sat.Cnf.create ~num_vars:4 () in
  Sat.Cnf.add_clause cnf [ Sat.Lit.pos 0; Sat.Lit.neg 3 ];
  Sat.Cnf.add_clause cnf [ Sat.Lit.neg 1 ];
  let cnf' = Sat.Dimacs.parse_string (Sat.Dimacs.to_string cnf) in
  Alcotest.(check int) "vars" (Sat.Cnf.num_vars cnf) (Sat.Cnf.num_vars cnf');
  Alcotest.(check int) "clauses" (Sat.Cnf.num_clauses cnf) (Sat.Cnf.num_clauses cnf');
  for i = 0 to Sat.Cnf.num_clauses cnf - 1 do
    let a = Sat.Cnf.get_clause cnf i and b = Sat.Cnf.get_clause cnf' i in
    Alcotest.(check (array int))
      (Printf.sprintf "clause %d" i)
      (Array.map Sat.Lit.to_dimacs a) (Array.map Sat.Lit.to_dimacs b)
  done

let test_file_roundtrip () =
  let cnf = Sat.Dimacs.parse_string "p cnf 3 2\n1 -2 0\n-1 3 0\n" in
  let path = Filename.temp_file "dimacs" ".cnf" in
  Sat.Dimacs.write_file path cnf;
  let cnf' = Sat.Dimacs.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "clauses" 2 (Sat.Cnf.num_clauses cnf')

let cnf_gen =
  let open QCheck.Gen in
  let clause = list_size (0 -- 5) (pair (0 -- 7) bool) in
  list_size (0 -- 15) clause

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip on random formulas" ~count:200
    (QCheck.make cnf_gen) (fun cls ->
      let cnf = Sat.Cnf.create ~num_vars:8 () in
      List.iter
        (fun cl -> Sat.Cnf.add_clause cnf (List.map (fun (v, s) -> Sat.Lit.make v s) cl))
        cls;
      let cnf' = Sat.Dimacs.parse_string (Sat.Dimacs.to_string cnf) in
      Sat.Cnf.num_clauses cnf = Sat.Cnf.num_clauses cnf'
      &&
      let same = ref true in
      Sat.Cnf.iter_clauses
        (fun i c -> if c <> Sat.Cnf.get_clause cnf' i then same := false)
        cnf;
      !same)

let tests =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "multiline clause" `Quick test_parse_multiline_clause;
    Alcotest.test_case "missing final zero" `Quick test_parse_missing_final_zero;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
