(** Synthetic property-checking benchmarks.

    Stand-in for the IBM Formal Verification Benchmark circuits used in the
    paper's evaluation (proprietary; the published URL is long gone).  Each
    generator builds a sequential circuit with an invariant property and,
    where it is known analytically, the expected verdict.  The [noise]
    parameter wraps the design in property-irrelevant logic — a
    nondeterministically-initialised LFSR-like register bank mixed with the
    primary inputs plus dangling combinational clutter — reproducing the
    industrial situation the paper targets: most of the formula is outside
    the unsatisfiable core, and a decision heuristic that does not know the
    core wastes work there. *)

type expect =
  | Holds  (** the invariant is true in every reachable state *)
  | Fails_at of int  (** shortest counterexample reaches depth k *)

type case = {
  name : string;
  netlist : Netlist.t;
  property : Netlist.node;
  expect : expect option;  (** [None] when not known analytically *)
  suggested_depth : int;  (** unrolling bound the harness should use *)
}

(** {2 Generators}

    All [noise] arguments default to 0 (no irrelevant logic). *)

val counter : ?noise:int -> bits:int -> target:int -> unit -> case
(** Free-running [bits]-wide counter from 0; property: value never equals
    [target].  Fails at depth [target] (for [target < 2^bits]). *)

val counter_en : ?noise:int -> bits:int -> target:int -> unit -> case
(** Counter that increments only when an enable input is high; fails at
    depth [target] (enable held high). *)

val shift_in : ?noise:int -> len:int -> unit -> case
(** [len]-stage shift register fed by an input; property: the stages are
    never all ones.  Fails at depth [len]. *)

val fifo_overflow : ?noise:int -> bits:int -> unit -> case
(** FIFO occupancy counter with a sticky overflow-error flag; property: the
    flag never rises.  Fails at depth [2^bits] (fill, then push once
    more). *)

val ring : ?noise:int -> len:int -> unit -> case
(** One-hot rotating token; property: at most one token bit set.  Holds. *)

val lfsr : ?noise:int -> width:int -> unit -> case
(** Fibonacci LFSR with a tap on bit 0, seeded non-zero; property: the state
    never becomes all-zero.  Holds. *)

val arbiter : ?noise:int -> clients:int -> unit -> case
(** Round-robin token arbiter; property: never two grants at once.
    Holds. *)

val fifo_safe : ?noise:int -> bits:int -> unit -> case
(** FIFO occupancy counter; property: never simultaneously full and empty.
    Holds. *)

val traffic : ?noise:int -> unit -> case
(** Two-road traffic-light controller (one-hot, 4 phases); property: the two
    green lights are never on together.  Holds. *)

val parity_pipe : ?noise:int -> stages:int -> unit -> case
(** Miter between a delay-line parity and an incrementally maintained
    parity register; property: they always agree.  Holds. *)

val johnson : ?noise:int -> width:int -> unit -> case
(** Johnson (twisted-ring) counter; property: the state pattern has at most
    one adjacent 0/1 boundary.  Holds. *)

val gray : ?noise:int -> bits:int -> unit -> case
(** Binary counter with Gray-coded output and a shadow copy of the previous
    output; property: consecutive Gray outputs differ in exactly one bit.
    Holds. *)

val priority_arbiter : ?noise:int -> clients:int -> unit -> case
(** Fixed-priority combinational arbiter with registered grants; property:
    at most one latched grant.  Holds. *)

val elevator : ?noise:int -> bits:int -> unit -> case
(** Saturating position counter with a door interlock and a shadow of the
    previous position; property: the cab never moves while the door is
    open.  Holds. *)

val watchdog : ?noise:int -> bits:int -> unit -> case
(** Kick-resettable timer; property: the timer never saturates.  Fails at
    depth [2^bits - 1] (never kick). *)

val factor : ?noise:int -> bits:int -> target:int -> unit -> case
(** Combinational factoring: two [bits]-wide free inputs are multiplied
    (truncated product) and compared against [target]; the property says the
    product never equals [target].  Fails at depth 0 when [target] has a
    factorisation that fits, holds otherwise.  Multipliers are the classic
    BDD worst case, so this family separates the SAT-based engines from the
    symbolic one (the "complement" benchmark). *)

val random : seed:int -> regs:int -> gates:int -> inputs:int -> case
(** A pseudo-random (but seed-deterministic) valid sequential circuit: the
    given number of registers (random initial values, including
    nondeterministic), primary inputs, and random gates over the growing
    node pool; register next-inputs and the property node are drawn from
    the pool.  No [expect] — these exist for differential testing, where
    engines are compared against each other and the explicit oracle. *)

(** {2 Suites} *)

val suite : unit -> case list
(** The Table-1 stand-in: 37 property-checking instances of varied size,
    failure depth and noise level, in paper-like pass/fail proportion. *)

val tiny_suite : unit -> case list
(** Small instances (≤ 20 registers, ≤ 8 inputs, no or little noise) whose
    verdicts {!Reach.check} can confirm — used by the integration tests. *)

val fig7_case : unit -> case
(** The deep all-UNSAT instance used for the Figure 7 per-depth statistics
    (the analogue of circuit 02_3_b2). *)

val by_name : string -> case option
(** Look a suite or tiny-suite case up by name. *)

val pp_expect : Format.formatter -> expect -> unit
