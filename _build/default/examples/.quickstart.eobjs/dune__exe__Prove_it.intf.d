examples/prove_it.mli:
