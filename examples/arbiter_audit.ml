(* Auditing a passing property, and why the refined ordering matters.

   A round-robin arbiter surrounded by a large block of logic that is
   irrelevant to the mutual-exclusion property (the industrial situation the
   paper targets).  We verify the property to a fixed depth with each
   decision-ordering strategy and compare the work done.

     dune exec examples/arbiter_audit.exe
*)

let () =
  let case = Circuit.Generators.arbiter ~clients:8 ~noise:24 () in
  let depth = 14 in
  Format.printf "auditing %s up to depth %d (property: at most one grant)@.@." case.name depth;

  let budget =
    { Sat.Solver.max_conflicts = Some 200_000; max_propagations = None; max_seconds = Some 20.0; stop = None }
  in
  Format.printf "%-11s %10s %12s %14s %8s@." "mode" "time(s)" "decisions" "implications"
    "verdict";
  List.iter
    (fun mode ->
      let config = Bmc.Engine.config ~mode ~budget ~max_depth:depth () in
      let r = Bmc.Engine.run_case ~config case in
      Format.printf "%-11s %10.3f %12d %14d %8s@."
        (Format.asprintf "%a" Bmc.Engine.pp_mode mode)
        r.total_time r.total_decisions r.total_implications
        (match r.verdict with
        | Bmc.Engine.Bounded_pass _ -> "pass"
        | Bmc.Engine.Falsified _ -> "FAIL"
        | Bmc.Engine.Aborted k -> Printf.sprintf "abort@%d" k))
    Bmc.Engine.all_modes;

  Format.printf
    "@.The static/dynamic rows decide unsat-core variables first (the paper's@.\
     refinement); the standard row is Chaff's plain VSIDS.  The speedup comes@.\
     from not exploring the noise block at all.@."
