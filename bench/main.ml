(* Experiment harness: regenerates every table and figure of

     Wang, Jin, Hachtel, Somenzi,
     "Refining the SAT Decision Ordering for Bounded Model Checking",
     DAC 2004.

   Artefacts (see DESIGN.md, "Experiment index"):

     table1    Table 1  — CPU time of plain BMC vs the refined orderings
                          (static and dynamic) over the 37-instance suite
     fig6      Figure 6 — the same data as scatter-plot series
     fig7      Figure 7 — per-depth decision / implication counts on one
                          deep all-UNSAT instance, plain vs refined
     overhead  §3.1     — cost of the simplified-CDG bookkeeping
     ablation  §3.2/§1  — core-weighting variants and the Shtrichman
                          time-axis baseline
     micro     Bechamel micro-benchmarks, one per artefact

   Run everything:      dune exec bench/main.exe
   Run one artefact:    dune exec bench/main.exe -- table1

   As in the paper, instances that exhaust their budget are compared at the
   maximum unrolling depth every method completed, shown as "(k)". *)

let per_instance_budget =
  {
    Sat.Solver.max_conflicts = Some 30_000;
    max_propagations = None;
    max_seconds = Some 1.5;
    stop = None;
  }

(* Every artefact also publishes its headline numbers through the telemetry
   aggregator; the driver writes the whole aggregate to bench_results.json so
   downstream tooling can diff runs without scraping the tables above. *)
let bench_agg = Telemetry.Sink.aggregate ()
let tel = Telemetry.create (Telemetry.Sink.of_aggregate bench_agg)
let results_file = "bench_results.json"

(* ------------------------------------------------------------------ *)
(* Shared machinery.                                                   *)
(* ------------------------------------------------------------------ *)

(* Highest depth whose instance was fully solved. *)
let completed_depth (r : Bmc.Engine.result) =
  match r.verdict with
  | Bmc.Engine.Falsified t -> t.Bmc.Trace.depth
  | Bmc.Engine.Bounded_pass k -> k
  | Bmc.Engine.Aborted k -> k - 1

let fold_to_depth (r : Bmc.Engine.result) depth f init =
  List.fold_left
    (fun acc (d : Bmc.Engine.depth_stat) -> if d.depth <= depth then f acc d else acc)
    init r.per_depth

let time_to_depth r depth = fold_to_depth r depth (fun acc d -> acc +. d.time) 0.0

type case_run = {
  case : Circuit.Generators.case;
  standard : Bmc.Engine.result;
  static_ : Bmc.Engine.result;
  dynamic : Bmc.Engine.result;
  common_depth : int; (* max depth completed by all three *)
  capped : bool; (* some engine hit its budget *)
}

let run_mode ?(budget = per_instance_budget) mode (case : Circuit.Generators.case) =
  let config = Bmc.Engine.config ~mode ~budget ~max_depth:case.suggested_depth () in
  Bmc.Engine.run_case ~config case

let run_case case =
  let standard = run_mode Bmc.Engine.Standard case in
  let static_ = run_mode Bmc.Engine.Static case in
  let dynamic = run_mode Bmc.Engine.Dynamic case in
  let depths = [ completed_depth standard; completed_depth static_; completed_depth dynamic ] in
  let common_depth = List.fold_left min max_int depths in
  let aborted (r : Bmc.Engine.result) =
    match r.verdict with
    | Bmc.Engine.Aborted _ -> true
    | Bmc.Engine.Falsified _ | Bmc.Engine.Bounded_pass _ -> false
  in
  {
    case;
    standard;
    static_;
    dynamic;
    common_depth;
    capped = aborted standard || aborted static_ || aborted dynamic;
  }

let table1_runs : case_run list Lazy.t =
  lazy
    (let cases = Circuit.Generators.suite () in
     List.mapi
       (fun i case ->
         Printf.eprintf "  [%2d/%2d] %s...\n%!" (i + 1) (List.length cases)
           case.Circuit.Generators.name;
         run_case case)
       cases)

(* ------------------------------------------------------------------ *)
(* Table 1.                                                            *)
(* ------------------------------------------------------------------ *)

let verdict_tag run =
  if run.capped then Printf.sprintf "(%d)" run.common_depth
  else
    match run.standard.verdict with
    | Bmc.Engine.Falsified t -> Printf.sprintf "F %d" t.Bmc.Trace.depth
    | Bmc.Engine.Bounded_pass k -> Printf.sprintf "T %d" k
    | Bmc.Engine.Aborted k -> Printf.sprintf "(%d)" (k - 1)

let table1 () =
  let runs = Lazy.force table1_runs in
  Printf.printf "\n== Table 1: BMC vs refine_order BMC (static and dynamic) ==\n";
  Printf.printf
    "   Times are CPU seconds to reach the deepest unrolling completed by all\n\
    \   three methods; '(k)' marks instances where a budget was hit (paper: 2 h).\n\n";
  Printf.printf "%-16s %-7s %10s %10s %10s\n" "model" "T/F(k)" "bmc(s)" "static(s)" "dyn.(s)";
  let tot_std = ref 0.0 and tot_sta = ref 0.0 and tot_dyn = ref 0.0 in
  let wins_sta = ref 0 and wins_dyn = ref 0 in
  let speedups_sta = ref [] and speedups_dyn = ref [] in
  List.iter
    (fun run ->
      let d = run.common_depth in
      let t_std = time_to_depth run.standard d in
      let t_sta = time_to_depth run.static_ d in
      let t_dyn = time_to_depth run.dynamic d in
      tot_std := !tot_std +. t_std;
      tot_sta := !tot_sta +. t_sta;
      tot_dyn := !tot_dyn +. t_dyn;
      if t_sta < t_std then incr wins_sta;
      if t_dyn < t_std then incr wins_dyn;
      if t_std > 0.0 then begin
        speedups_sta := ((t_std -. t_sta) /. t_std) :: !speedups_sta;
        speedups_dyn := ((t_std -. t_dyn) /. t_std) :: !speedups_dyn
      end;
      Printf.printf "%-16s %-7s %10.3f %10.3f %10.3f\n" run.case.Circuit.Generators.name
        (verdict_tag run) t_std t_sta t_dyn)
    runs;
  let n = List.length runs in
  Printf.printf "%-16s %-7s %10.3f %10.3f %10.3f\n" "TOTAL" "" !tot_std !tot_sta !tot_dyn;
  Printf.printf "%-16s %-7s %10s %9.0f%% %9.0f%%\n" "RATIO" "" "100%"
    (100.0 *. !tot_sta /. !tot_std)
    (100.0 *. !tot_dyn /. !tot_std);
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  Printf.printf
    "\n   wins vs plain BMC: static %d/%d, dynamic %d/%d (paper: 26/37 and 32/37)\n" !wins_sta
    n !wins_dyn n;
  Printf.printf
    "   total-CPU improvement (paper's statistic): static %.0f%%, dynamic %.0f%% (paper: 38%% \
     and 42%%)\n"
    (100.0 *. (1.0 -. (!tot_sta /. !tot_std)))
    (100.0 *. (1.0 -. (!tot_dyn /. !tot_std)));
  Printf.printf "   mean per-circuit improvement: static %.0f%%, dynamic %.0f%%\n"
    (100.0 *. mean !speedups_sta)
    (100.0 *. mean !speedups_dyn);
  Telemetry.gauge tel "table1.total_s.standard" !tot_std;
  Telemetry.gauge tel "table1.total_s.static" !tot_sta;
  Telemetry.gauge tel "table1.total_s.dynamic" !tot_dyn;
  Telemetry.gauge tel "table1.wins.static" (float_of_int !wins_sta);
  Telemetry.gauge tel "table1.wins.dynamic" (float_of_int !wins_dyn);
  Telemetry.gauge tel "table1.instances" (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Figure 6.                                                           *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let runs = Lazy.force table1_runs in
  Printf.printf "\n== Figure 6: scatter series, CPU time of BMC vs refine_order BMC ==\n";
  Printf.printf "   Each row is one dot; dots below the diagonal (y < x) favour the\n";
  Printf.printf "   new method.\n";
  let panel name pick =
    Printf.printf "\n   -- panel: %s --\n" name;
    Printf.printf "   %-16s %12s %12s  %s\n" "model" "x=bmc(s)" "y=new(s)" "below?";
    List.iter
      (fun run ->
        let d = run.common_depth in
        let x = time_to_depth run.standard d in
        let y = time_to_depth (pick run) d in
        Printf.printf "   %-16s %12.3f %12.3f  %s\n" run.case.Circuit.Generators.name x y
          (if y < x then "yes" else "no"))
      runs
  in
  panel "static" (fun r -> r.static_);
  panel "dynamic" (fun r -> r.dynamic)

(* ------------------------------------------------------------------ *)
(* Figure 7.                                                           *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  let case = Circuit.Generators.fig7_case () in
  Printf.printf "\n== Figure 7: per-depth statistics on %s ==\n" case.Circuit.Generators.name;
  Printf.printf "   BMC = plain VSIDS; ref_ord_BMC = the paper's dynamic ordering.\n";
  Printf.printf "   Smaller decision counts indicate smaller search trees.\n\n";
  let budget =
    { Sat.Solver.max_conflicts = Some 100_000; max_propagations = None; max_seconds = Some 3.0; stop = None }
  in
  let std = run_mode ~budget Bmc.Engine.Standard case in
  let ref_ord = run_mode ~budget Bmc.Engine.Dynamic case in
  let stats_at (r : Bmc.Engine.result) k =
    match List.find_opt (fun (d : Bmc.Engine.depth_stat) -> d.depth = k) r.per_depth with
    | Some d -> (
      match d.outcome with
      | Sat.Solver.Unknown -> None
      | Sat.Solver.Sat | Sat.Solver.Unsat -> Some d)
    | None -> None
  in
  Printf.printf "%5s  %12s %12s    %14s %14s\n" "depth" "dec(BMC)" "dec(ref)" "impl(BMC)"
    "impl(ref)";
  let max_k = case.Circuit.Generators.suggested_depth in
  for k = 0 to max_k do
    let cell f = function Some d -> string_of_int (f d) | None -> "-" in
    let s = stats_at std k and r = stats_at ref_ord k in
    if s <> None || r <> None then
      Printf.printf "%5d  %12s %12s    %14s %14s\n" k
        (cell (fun (d : Bmc.Engine.depth_stat) -> d.decisions) s)
        (cell (fun (d : Bmc.Engine.depth_stat) -> d.decisions) r)
        (cell (fun (d : Bmc.Engine.depth_stat) -> d.implications) s)
        (cell (fun (d : Bmc.Engine.depth_stat) -> d.implications) r)
  done;
  let tag name (r : Bmc.Engine.result) =
    Printf.printf "   %s: %s, %.2fs total\n" name
      (Format.asprintf "%a" Bmc.Engine.pp_verdict r.verdict)
      r.total_time
  in
  tag "BMC        " std;
  tag "ref_ord_BMC" ref_ord

(* ------------------------------------------------------------------ *)
(* Section 3.1 overhead.                                               *)
(* ------------------------------------------------------------------ *)

let overhead () =
  Printf.printf "\n== Section 3.1: cost of the simplified-CDG bookkeeping ==\n";
  Printf.printf
    "   The same instances solved with proof logging off and on (plain VSIDS\n\
    \   both times).  The paper reports about +5%% runtime and negligible memory.\n\n";
  let workloads =
    [
      (Circuit.Generators.parity_pipe ~stages:10 (), 14);
      (Circuit.Generators.ring ~len:12 (), 20);
      (Circuit.Generators.gray ~bits:5 (), 20);
    ]
  in
  Printf.printf "%-14s %12s %12s %9s %12s\n" "model" "off(s)" "on(s)" "delta" "CDG edges";
  let tot_off = ref 0.0 and tot_on = ref 0.0 in
  List.iter
    (fun ((case : Circuit.Generators.case), depth) ->
      let u = Bmc.Unroll.create case.netlist ~property:case.property in
      let t_off = ref 0.0 and t_on = ref 0.0 and edges = ref 0 in
      for k = 0 to depth do
        let cnf = Bmc.Unroll.instance u ~k in
        let s_off = Sat.Solver.create ~with_proof:false cnf in
        let t0 = Sys.time () in
        ignore (Sat.Solver.solve s_off);
        t_off := !t_off +. Sys.time () -. t0;
        let s_on = Sat.Solver.create ~with_proof:true cnf in
        let t1 = Sys.time () in
        ignore (Sat.Solver.solve s_on);
        t_on := !t_on +. Sys.time () -. t1;
        edges := !edges + Sat.Solver.proof_edges s_on
      done;
      tot_off := !tot_off +. !t_off;
      tot_on := !tot_on +. !t_on;
      Printf.printf "%-14s %12.3f %12.3f %8.1f%% %12d\n" case.name !t_off !t_on
        (100.0 *. (!t_on -. !t_off) /. max !t_off 1e-9)
        !edges)
    workloads;
  Printf.printf "%-14s %12.3f %12.3f %8.1f%%\n" "TOTAL" !tot_off !tot_on
    (100.0 *. (!tot_on -. !tot_off) /. max !tot_off 1e-9);
  Printf.printf "   (each CDG edge is one int; the memory overhead is edges * 8 bytes)\n";
  Telemetry.gauge tel "overhead.proof_off_s" !tot_off;
  Telemetry.gauge tel "overhead.proof_on_s" !tot_on;
  Telemetry.gauge tel "overhead.delta_pct"
    (100.0 *. (!tot_on -. !tot_off) /. max !tot_off 1e-9)

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)
(* ------------------------------------------------------------------ *)

(* A3: the combination the paper's conclusion anticipates — the refined
   ordering on top of an incremental solver (activation literals,
   clause reuse) vs the per-depth engine. *)
let incremental_ablation () =
  Printf.printf
    "\n== Ablation A3: per-depth vs incremental engine (conclusion, refs [17,5]) ==\n";
  let cases =
    [
      Circuit.Generators.ring ~len:14 ~noise:16 ();
      Circuit.Generators.parity_pipe ~stages:12 ();
      Circuit.Generators.lfsr ~width:14 ~noise:24 ();
      Circuit.Generators.arbiter ~clients:10 ~noise:16 ();
    ]
  in
  Printf.printf "%-18s %12s %12s %14s %14s\n" "model" "plain(s)" "incr(s)" "plain(dec)"
    "incr(dec)";
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let config =
        Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~budget:per_instance_budget
          ~max_depth:case.suggested_depth ()
      in
      let a = Bmc.Engine.run_case ~config case in
      let b = Bmc.Incremental.run_case ~config case in
      Printf.printf "%-18s %12.3f %12.3f %14d %14d\n" case.name a.total_time b.total_time
        a.total_decisions b.total_decisions)
    cases;
  Printf.printf
    "   (clause reuse cuts decisions; whether wall-time follows depends on the\n\
    \    accumulated clause database — both effects are visible above)\n"

(* A5: cone-of-influence reduction at encoding time — VIS applied it, our
   default leaves the irrelevant logic in (that is what the paper's method
   exploits); this quantifies what COI alone buys. *)
let coi_ablation () =
  Printf.printf "\n== Ablation A5: cone-of-influence encoding (off = default) ==\n";
  let cases =
    [
      Circuit.Generators.ring ~len:14 ~noise:24 ();
      Circuit.Generators.johnson ~width:12 ~noise:24 ();
      Circuit.Generators.parity_pipe ~stages:12 ~noise:24 ();
      Circuit.Generators.arbiter ~clients:10 ~noise:24 ();
    ]
  in
  Printf.printf "%-18s %14s %14s %14s %14s\n" "model" "std(s)" "std+coi(s)" "dyn(s)"
    "dyn+coi(s)";
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let run mode coi =
        let config =
          Bmc.Engine.config ~mode ~coi ~budget:per_instance_budget
            ~max_depth:case.suggested_depth ()
        in
        (Bmc.Engine.run_case ~config case).total_time
      in
      Printf.printf "%-18s %14.3f %14.3f %14.3f %14.3f\n" case.name
        (run Bmc.Engine.Standard false) (run Bmc.Engine.Standard true)
        (run Bmc.Engine.Dynamic false) (run Bmc.Engine.Dynamic true))
    cases;
  Printf.printf
    "   (COI removes the noise before the solver ever sees it; the refined\n\
    \    ordering recovers most of that without structural information)\n"

(* A4: conflict-clause minimisation (post-Chaff technique, off by default
   for fidelity) measured at the solver level on the same instances. *)
let minimize_ablation () =
  Printf.printf "\n== Ablation A4: conflict-clause minimisation (off = faithful Chaff) ==\n";
  let workloads =
    [
      (Circuit.Generators.parity_pipe ~stages:10 (), 14);
      (Circuit.Generators.ring ~len:12 (), 20);
      (Circuit.Generators.gray ~bits:5 (), 20);
    ]
  in
  Printf.printf "%-14s %12s %12s %12s %12s\n" "model" "off(s)" "on(s)" "off(confl)"
    "on(confl)";
  List.iter
    (fun ((case : Circuit.Generators.case), depth) ->
      let u = Bmc.Unroll.create case.netlist ~property:case.property in
      let t_off = ref 0.0 and t_on = ref 0.0 and c_off = ref 0 and c_on = ref 0 in
      for k = 0 to depth do
        let cnf = Bmc.Unroll.instance u ~k in
        let s_off = Sat.Solver.create ~minimize:false cnf in
        let t0 = Sys.time () in
        ignore (Sat.Solver.solve s_off);
        t_off := !t_off +. Sys.time () -. t0;
        c_off := !c_off + (Sat.Solver.stats s_off).Sat.Stats.conflicts;
        let s_on = Sat.Solver.create ~minimize:true cnf in
        let t1 = Sys.time () in
        ignore (Sat.Solver.solve s_on);
        t_on := !t_on +. Sys.time () -. t1;
        c_on := !c_on + (Sat.Solver.stats s_on).Sat.Stats.conflicts
      done;
      Printf.printf "%-14s %12.3f %12.3f %12d %12d\n" case.name !t_off !t_on !c_off !c_on)
    workloads

let ablation () =
  Printf.printf "\n== Ablations: core weighting (Section 3.2) and the Shtrichman baseline ==\n";
  Printf.printf
    "   linear   = the paper's bmc_score (weight = instance index)\n\
    \   uniform  = every previous core counts equally\n\
    \   last     = only the most recent core\n\
    \   shtrich. = time-axis static ordering (Shtrichman, CAV 2000)\n\n";
  let cases =
    [
      Circuit.Generators.ring ~len:16 ~noise:24 ();
      Circuit.Generators.lfsr ~width:16 ~noise:32 ();
      Circuit.Generators.parity_pipe ~stages:12 ~noise:24 ();
      Circuit.Generators.johnson ~width:12 ~noise:24 ();
      Circuit.Generators.arbiter ~clients:12 ~noise:24 ();
      Circuit.Generators.gray ~bits:5 ~noise:24 ();
    ]
  in
  let configs =
    [
      ("standard", Bmc.Engine.Standard, Bmc.Score.Linear);
      ("linear", Bmc.Engine.Static, Bmc.Score.Linear);
      ("uniform", Bmc.Engine.Static, Bmc.Score.Uniform);
      ("last", Bmc.Engine.Static, Bmc.Score.Last_only);
      ("shtrich.", Bmc.Engine.Shtrichman, Bmc.Score.Linear);
    ]
  in
  Printf.printf "%-18s" "model(k)";
  List.iter (fun (name, _, _) -> Printf.printf " %10s" name) configs;
  Printf.printf "\n";
  let totals = Array.make (List.length configs) 0.0 in
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let results =
        List.map
          (fun (_, mode, weighting) ->
            let config =
              Bmc.Engine.config ~mode ~weighting ~budget:per_instance_budget
                ~max_depth:case.suggested_depth ()
            in
            Bmc.Engine.run_case ~config case)
          configs
      in
      let common = List.fold_left (fun acc r -> min acc (completed_depth r)) max_int results in
      Printf.printf "%-18s" (Printf.sprintf "%s(%d)" case.name common);
      List.iteri
        (fun i r ->
          let t = time_to_depth r common in
          totals.(i) <- totals.(i) +. t;
          Printf.printf " %10.3f" t)
        results;
      Printf.printf "\n")
    cases;
  Printf.printf "%-18s" "TOTAL";
  Array.iter (fun t -> Printf.printf " %10.3f" t) totals;
  Printf.printf "\n";
  incremental_ablation ();
  minimize_ablation ();
  coi_ablation ()

(* ------------------------------------------------------------------ *)
(* The complement relation (paper, Section 1, opening sentence).       *)
(* ------------------------------------------------------------------ *)

let complement () =
  Printf.printf
    "\n== BMC as \"a complement to model checking based on BDDs\" (Section 1) ==\n";
  Printf.printf
    "   Three engines on workloads chosen to separate them: SAT-based BMC\n\
    \   (dynamic refined ordering), BDD-based symbolic reachability, and\n\
    \   core-guided proof-based abstraction.\n\n";
  let budget =
    { Sat.Solver.max_conflicts = Some 50_000; max_propagations = None; max_seconds = Some 2.0; stop = None }
  in
  let cases =
    [
      ("wide datapath, shallow bug", Circuit.Generators.factor ~bits:12 ~target:(251 * 13) ());
      ("deep counterexample", Circuit.Generators.counter ~bits:16 ~target:40_000 ());
      ("unbounded proof wanted", Circuit.Generators.ring ~len:24 ());
      ("noisy invariant", Circuit.Generators.ring ~len:12 ~noise:32 ());
    ]
  in
  Printf.printf "%-14s %-28s %-30s %-30s %-34s %-30s\n" "case" "(flavour)" "BMC (dynamic)"
    "symbolic (BDD)" "abstraction (cores + explicit)" "IC3/PDR";
  List.iter
    (fun (flavour, (case : Circuit.Generators.case)) ->
      let timed f =
        let t0 = Sys.time () in
        let v = f () in
        (v, Sys.time () -. t0)
      in
      let bmc, t_bmc =
        timed (fun () ->
            let config =
              Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~budget
                ~max_depth:(min case.suggested_depth 48) ()
            in
            Format.asprintf "%a" Bmc.Engine.pp_verdict
              (Bmc.Engine.run_case ~config case).verdict)
      in
      let sym, t_sym =
        timed (fun () ->
            Format.asprintf "%a" Bmc.Symbolic.pp_verdict
              (Bmc.Symbolic.check ~node_limit:1_000_000 case.netlist
                 ~property:case.property))
      in
      let abs, t_abs =
        timed (fun () ->
            let config =
              Bmc.Engine.config ~mode:Bmc.Engine.Static ~budget
                ~max_depth:(min case.suggested_depth 48) ()
            in
            Format.asprintf "%a" Bmc.Abstraction.pp_verdict
              (Bmc.Abstraction.prove_case ~config case).verdict)
      in
      let pdr, t_pdr =
        timed (fun () ->
            Format.asprintf "%a" Bmc.Pdr.pp_verdict
              (Bmc.Pdr.prove_case ~max_queries:20_000 case).verdict)
      in
      Printf.printf "%-14s %-28s %-30s %-30s %-34s %-30s\n" case.name
        ("(" ^ flavour ^ ")")
        (Printf.sprintf "%s %.2fs" bmc t_bmc)
        (Printf.sprintf "%s %.2fs" sym t_sym)
        (Printf.sprintf "%s %.2fs" abs t_abs)
        (Printf.sprintf "%s %.2fs" pdr t_pdr))
    cases;
  Printf.printf
    "\n   BMC nails shallow bugs in wide datapaths where BDDs struggle; BDDs\n\
    \   reach counterexamples thousands of cycles deep and prove invariants\n\
    \   outright; the core-guided abstraction turns bounded UNSAT answers\n\
    \   into unbounded proofs — each engine covers the others' blind spots.\n"

(* ------------------------------------------------------------------ *)
(* bench quick: a small fixed subset for trajectory tracking.          *)
(* ------------------------------------------------------------------ *)

(* Deterministic by construction: generator parameters are fixed, the budget
   is conflict-based (never wall-clock), and the solver itself has no random
   state — so outcomes, core-variable sets and search counters are stable
   across runs and machines, and only the time/allocation fields move.
   [quick] writes the snapshot (BENCH_quick.json); [quick-check] re-runs and
   fails if any outcome or core-variable set diverges from the snapshot. *)

let quick_budget =
  { Sat.Solver.max_conflicts = Some 200_000; max_propagations = None; max_seconds = None; stop = None }

let quick_snapshot_file = "BENCH_quick.json"

let quick_cases () =
  [
    (Circuit.Generators.counter ~bits:6 ~target:30 ~noise:8 (), 12);
    (Circuit.Generators.shift_in ~len:8 ~noise:4 (), 10);
    (Circuit.Generators.ring ~len:12 ~noise:24 (), 14);
    (Circuit.Generators.lfsr ~width:12 ~noise:24 (), 14);
    (Circuit.Generators.parity_pipe ~stages:10 ~noise:16 (), 13);
    (Circuit.Generators.gray ~bits:5 ~noise:16 (), 12);
    (Circuit.Generators.arbiter ~clients:8 ~noise:16 (), 12);
    (Circuit.Generators.johnson ~width:10 ~noise:16 (), 12);
  ]

type quick_row = {
  q_name : string;
  q_outcomes : string; (* one char per depth: 's' | 'u' | '?' *)
  q_core_hash : int; (* combined hash of the UNSAT-core variable sets *)
  q_decisions : int;
  q_conflicts : int;
  q_propagations : int;
  q_build : float; (* instance construction: unroll/deltas + solver setup *)
  q_bcp : float;
  q_solve : float;
  q_wall : float; (* wall-clock for the whole depth sweep; the only time that
                     is comparable across sequential and portfolio rows *)
}

(* Worker count for the portfolio rows; [--jobs N] on the command line. *)
let quick_jobs = ref 3

let quick_mix h x = ((h * 131) + x) land 0x3FFFFFFF

(* The classic substrate: monolithic Unroll.instance rebuild and a fresh
   solver at every depth (the seed engines' behaviour). *)
let quick_run_case ((case : Circuit.Generators.case), depth) =
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let buf = Buffer.create (depth + 1) in
  let hash = ref 7 in
  let dec = ref 0 and confl = ref 0 and props = ref 0 in
  let build = ref 0.0 and bcp = ref 0.0 and slv = ref 0.0 in
  let w0 = Portfolio.Pool.wall () in
  for k = 0 to depth do
    let tb = Sys.time () in
    let cnf = Bmc.Unroll.instance u ~k in
    let s = Sat.Solver.create ~with_proof:true ~telemetry:tel cnf in
    build := !build +. (Sys.time () -. tb);
    (match Sat.Solver.solve ~budget:quick_budget s with
    | Sat.Solver.Sat -> Buffer.add_char buf 's'
    | Sat.Solver.Unsat ->
      Buffer.add_char buf 'u';
      hash := quick_mix !hash (k + 1);
      List.iter (fun v -> hash := quick_mix !hash v) (Sat.Solver.core_vars s)
    | Sat.Solver.Unknown -> Buffer.add_char buf '?');
    let st = Sat.Solver.stats s in
    dec := !dec + st.Sat.Stats.decisions;
    confl := !confl + st.Sat.Stats.conflicts;
    props := !props + st.Sat.Stats.propagations;
    bcp := !bcp +. st.Sat.Stats.bcp_time;
    slv := !slv +. st.Sat.Stats.solve_time
  done;
  {
    q_name = case.name;
    q_outcomes = Buffer.contents buf;
    q_core_hash = !hash;
    q_decisions = !dec;
    q_conflicts = !confl;
    q_propagations = !props;
    q_build = !build;
    q_bcp = !bcp;
    q_solve = !slv;
    q_wall = Portfolio.Pool.wall () -. w0;
  }

(* Inprocessing ablation for the snapshot: the default session rows against
   the same sweep with depth-boundary inprocessing on (deterministic budget:
   the default preset has no wall-clock slice).  Outcomes are gated exactly
   like every other sequential row; the block records what elimination
   bought on the all-UNSAT tail of the sweep, which is where the clause
   arena otherwise only ever grows. *)
type quick_inpr_totals = {
  mutable i_eliminated : int;
  mutable i_subsumed : int;
  mutable i_strengthened : int;
  mutable i_probe_failed : int;
  mutable i_resolvents : int;
}

type quick_inpr_summary = {
  i_tail_off_s : float; (* UNSAT-depth solve time, inprocessing off *)
  i_tail_on_s : float; (* same depths, inprocessing on *)
  i_totals : quick_inpr_totals;
}

(* Core-minimisation ablation for the snapshot: the static-ordering rows
   against the same sweep under [Core_minimal] with a deterministic
   solve-count budget (no wall-clock term, so the minimised cores — and the
   row's core hash — are reproducible and snapshot-gated like any other
   sequential row).  The block records how much the destructive minimiser
   shrank the proof-derived cores and that every minimised core was
   re-proved by the independent checker. *)
type quick_cores_totals = {
  mutable c_pre : int; (* core clauses before minimisation, summed *)
  mutable c_post : int; (* after *)
  mutable c_min_s : float; (* CPU seconds spent minimising *)
  mutable c_all_certified : bool;
}

type quick_cores_summary = {
  c_tail_plain_s : float; (* UNSAT-depth solve time, +static rows *)
  c_tail_min_s : float; (* same depths under Core_minimal *)
  c_rank_share_plain : float; (* % of attributed decisions on ranked vars *)
  c_rank_share_min : float; (* same, under Core_minimal *)
  c_totals : quick_cores_totals;
}

(* deterministic: a solve-count cap only, never wall-clock *)
let quick_coremin_budget = { Sat.Coremin.no_budget with Sat.Coremin.max_solves = Some 32 }

(* The ablation runs on the lighter half of the suite: destructive
   minimisation re-solves the candidate core from scratch per depth (plus an
   independent certification solve), which on the two deep noise-24 cases
   costs tens of seconds each — out of scale for a quick gate that the other
   blocks keep under a minute.  The plain-static accumulators are restricted
   to the same subset so the tail and rank-share comparisons stay
   apples-to-apples. *)
let quick_cores_case ((case : Circuit.Generators.case), _) =
  match case.name with
  | "cnt6_t30_z8" | "shift8_z4" | "gray5_z16" | "parity10_z16" -> true
  | _ -> false

(* The session substrate: one persistent solver, frame deltas loaded once,
   the per-depth ¬P clause guarded by an activation literal.  Outcomes must
   match the classic rows depth for depth (quick-check gates on it); search
   counters and core hashes legitimately differ — learnt clauses survive
   and cores may name activation variables — so each substrate is compared
   against its own snapshot history.  [mode]/[suffix] default to the snapshot
   row; the Static/Dynamic instantiations ([+static] / [+dynamic]) are the
   per-ordering sequential baselines the portfolio rows race against —
   snapshotted and gated like every other sequential row, since their
   orderings are deterministic functions of the (deterministic) core
   sequence. *)
let quick_run_case_session ?(mode = Bmc.Session.Standard) ?(suffix = "+session") ?inprocess
    ?core_mode ?coremin_budget ?unsat_tail ?inpr_totals ?cores_totals ?dec_split
    ((case : Circuit.Generators.case), depth) =
  let config =
    Bmc.Session.make_config ~mode ~budget:quick_budget ~max_depth:depth ~collect_cores:true
      ?inprocess ?core_mode ?coremin_budget ~telemetry:tel ()
  in
  let session =
    Bmc.Session.create ~policy:Bmc.Session.Persistent config case.netlist
      ~property:case.property
  in
  let buf = Buffer.create (depth + 1) in
  let hash = ref 7 in
  let dec = ref 0 and confl = ref 0 and props = ref 0 in
  let build = ref 0.0 in
  let w0 = Portfolio.Pool.wall () in
  for k = 0 to depth do
    Bmc.Session.begin_instance session ~k;
    Bmc.Session.constrain session
      [ Sat.Lit.neg (Bmc.Session.var_of session ~node:case.property ~frame:k) ];
    let st = Bmc.Session.solve_instance session in
    (match st.Bmc.Session.outcome with
    | Sat.Solver.Sat -> Buffer.add_char buf 's'
    | Sat.Solver.Unsat ->
      Buffer.add_char buf 'u';
      hash := quick_mix !hash (k + 1);
      List.iter (fun v -> hash := quick_mix !hash v) (Bmc.Session.last_core_vars session)
    | Sat.Solver.Unknown -> Buffer.add_char buf '?');
    dec := !dec + st.Bmc.Session.decisions;
    confl := !confl + st.Bmc.Session.conflicts;
    props := !props + st.Bmc.Session.implications;
    build := !build +. st.Bmc.Session.build_time;
    (match cores_totals with
    | Some t ->
      t.c_pre <- t.c_pre + st.Bmc.Session.core_pre;
      t.c_post <- t.c_post + st.Bmc.Session.core_size;
      t.c_min_s <- t.c_min_s +. st.Bmc.Session.coremin_time;
      if not st.Bmc.Session.coremin_certified then t.c_all_certified <- false
    | None -> ());
    (match dec_split with
    | Some (rank, vsids) ->
      rank := !rank + st.Bmc.Session.dec_rank;
      vsids := !vsids + st.Bmc.Session.dec_vsids
    | None -> ());
    (* the UNSAT tail: where inprocessing is supposed to pay — the deep
       all-UNSAT suffix of the sweep, measured by per-depth solve time *)
    match (unsat_tail, st.Bmc.Session.outcome) with
    | Some acc, Sat.Solver.Unsat -> acc := !acc +. st.Bmc.Session.time
    | Some _, (Sat.Solver.Sat | Sat.Solver.Unknown) | None, _ -> ()
  done;
  let stats = Bmc.Session.solver_stats session in
  (match inpr_totals with
  | Some t ->
    t.i_eliminated <- t.i_eliminated + stats.Sat.Stats.inpr_eliminated;
    t.i_subsumed <- t.i_subsumed + stats.Sat.Stats.inpr_subsumed;
    t.i_strengthened <- t.i_strengthened + stats.Sat.Stats.inpr_strengthened;
    t.i_probe_failed <- t.i_probe_failed + stats.Sat.Stats.inpr_probe_failed;
    t.i_resolvents <- t.i_resolvents + stats.Sat.Stats.inpr_resolvents
  | None -> ());
  {
    q_name = case.name ^ suffix;
    q_outcomes = Buffer.contents buf;
    q_core_hash = !hash;
    q_decisions = !dec;
    q_conflicts = !confl;
    q_propagations = !props;
    q_build = !build;
    q_bcp = stats.Sat.Stats.bcp_time;
    q_solve = stats.Sat.Stats.solve_time;
    q_wall = Portfolio.Pool.wall () -. w0;
  }

(* The portfolio substrate: race the three orderings per depth on a worker
   pool (Mode A).  The verdict at each depth is a property of the instance,
   so the outcome string is deterministic and gated like any other row — but
   WHICH racer wins a round is timing-dependent, and the winner's core is
   what re-ranks the shared score, so core hashes and search counters are
   not reproducible.  The rows still record the winners' real core hash and
   BCP split (they fingerprint which cores steered the shared ranking on
   THIS run); quick-check gates portfolio rows on outcomes only.  With [~share], the racers additionally
   exchange learnt clauses through a per-case {!Share.Exchange} (the
   [+portfolio+share] rows); sharing moves which clauses each racer holds
   but never which verdict an instance has, so the gating is identical, and
   the exchange counters are accumulated into [stats] for the snapshot's
   "sharing" block. *)
type quick_share_totals = {
  mutable t_exported : int;
  mutable t_imported : int;
  mutable t_rejected_tainted : int;
  mutable t_dropped_stale : int;
}

let quick_run_case_portfolio ?(suffix = "+portfolio") ?share pool
    ((case : Circuit.Generators.case), depth) =
  let config =
    Bmc.Session.make_config ~budget:quick_budget ~max_depth:depth ~collect_cores:true
      ~telemetry:tel ()
  in
  let exchange = Option.map (fun _ -> Share.Exchange.create ()) share in
  let race =
    Portfolio.create_race ?share:exchange ~pool config case.netlist ~property:case.property
  in
  let buf = Buffer.create (depth + 1) in
  let hash = ref 7 in
  let dec = ref 0 and confl = ref 0 and props = ref 0 in
  let build = ref 0.0 and bcp = ref 0.0 and slv = ref 0.0 in
  let w0 = Portfolio.Pool.wall () in
  for k = 0 to depth do
    let rs = Portfolio.race_depth race ~k in
    let st = rs.Portfolio.stat in
    (match st.Bmc.Session.outcome with
    | Sat.Solver.Sat -> Buffer.add_char buf 's'
    | Sat.Solver.Unsat ->
      Buffer.add_char buf 'u';
      (* the winner's core — the set that re-ranked the shared score *)
      hash := quick_mix !hash (k + 1);
      List.iter (fun v -> hash := quick_mix !hash v) rs.Portfolio.core_vars
    | Sat.Solver.Unknown -> Buffer.add_char buf '?');
    dec := !dec + st.Bmc.Session.decisions;
    confl := !confl + st.Bmc.Session.conflicts;
    props := !props + st.Bmc.Session.implications;
    build := !build +. st.Bmc.Session.build_time;
    bcp := !bcp +. st.Bmc.Session.bcp_time;
    slv := !slv +. st.Bmc.Session.time
  done;
  (match (share, exchange) with
  | Some totals, Some ex ->
    let st = Share.Exchange.stats ex in
    totals.t_exported <- totals.t_exported + st.Share.Exchange.exported;
    totals.t_imported <- totals.t_imported + st.Share.Exchange.imported;
    totals.t_rejected_tainted <-
      totals.t_rejected_tainted + st.Share.Exchange.rejected_tainted;
    totals.t_dropped_stale <- totals.t_dropped_stale + st.Share.Exchange.dropped_stale
  | _ -> ());
  {
    q_name = case.name ^ suffix;
    q_outcomes = Buffer.contents buf;
    q_core_hash = !hash;
    q_decisions = !dec;
    q_conflicts = !confl;
    q_propagations = !props;
    q_build = !build;
    q_bcp = !bcp; (* the winning racers' BCP split, summed over depths *)
    q_solve = !slv;
    q_wall = Portfolio.Pool.wall () -. w0;
  }

(* Per-ordering sequential walls vs the racing wall, for the speedup line
   and the snapshot's "portfolio" block.  [p_cores] is the machine's
   detected core count: on fewer than two cores the racers are
   time-sliced, so the recorded speedup is < 1 by construction and
   quick-check skips the speedup gate. *)
type quick_portfolio_summary = {
  p_jobs : int;
  p_cores : int; (* Domain.recommended_domain_count at run time *)
  p_wall : float; (* total wall of the +portfolio rows *)
  p_seq : (string * float) list; (* sequential session wall per ordering *)
}

(* Ordering-laboratory block for the snapshot: the three laboratory
   heuristics raced as a named roster with per-racer conflict budgets and
   the remaining registry entries on the rotation queue.  WHICH heuristic
   wins a round — and hence whether a starved racer ever rotates — is
   timing-dependent, so the block records win tallies and rotation counts
   for trajectory tracking, not value gating; CI gates on its presence. *)
type quick_ordering_summary = {
  d_jobs : int;
  d_wall : float;
  d_rotated : int; (* rotation-queue promotions across the subset *)
  d_wins : (string * int) list; (* race wins keyed by heuristic name *)
}

(* The subset the ordering roster races over: the lighter half of the
   suite (full seven-heuristic coverage of every case belongs to the
   differential test, not a quick gate). *)
let quick_ordering_cases () =
  match quick_cases () with a :: b :: c :: d :: _ -> [ a; b; c; d ] | short -> short

let quick_run_case_ordering pool wins rotated ((case : Circuit.Generators.case), depth) =
  let config =
    Bmc.Session.make_config ~budget:quick_budget ~max_depth:depth ~collect_cores:true
      ~telemetry:tel ()
  in
  let mk name =
    match Ordering.mode_of_name name with
    | Some mode -> Portfolio.racer ~name ~conflicts:256 mode
    | None -> invalid_arg ("bench: unknown heuristic " ^ name)
  in
  let race =
    Portfolio.create_race
      ~racers:[ mk "chb"; mk "frame"; mk "assump" ]
      ~rotation:[ mk "dynamic"; mk "static" ]
      ~pool config case.netlist ~property:case.property
  in
  let w0 = Portfolio.Pool.wall () in
  for k = 0 to depth do
    ignore (Portfolio.race_depth race ~k)
  done;
  List.iter
    (fun (n, w) ->
      Hashtbl.replace wins n (w + Option.value ~default:0 (Hashtbl.find_opt wins n)))
    (Portfolio.race_wins race);
  rotated := !rotated + Portfolio.race_rotated race;
  Portfolio.Pool.wall () -. w0

(* Clause-sharing ablation for the snapshot: the same portfolio races with
   the exchange off vs on, plus the aggregate exchange counters. *)
type quick_sharing_summary = {
  s_wall_off : float; (* total wall of the +portfolio rows *)
  s_wall_on : float; (* total wall of the +portfolio+share rows *)
  s_totals : quick_share_totals;
}

(* Observability-overhead ablation for the snapshot: the same fixed session
   workload with the full tracing stack on (flight recorder on every solver,
   memory-sink telemetry distilled into a run ledger) vs everything off.
   Best-of-3 walls on each side so scheduler noise cancels; quick-check
   gates the overhead at 5% — the "cheap enough to leave on" claim. *)
type quick_obs_summary = {
  o_wall_off : float;
  o_wall_on : float;
  o_overhead_pct : float;
}

let quick_observability () =
  let subset =
    match quick_cases () with a :: b :: c :: d :: _ -> [ a; b; c; d ] | short -> short
  in
  let run_once ~obs () =
    let recorder = if obs then Some (Obs.Recorder.create ()) else None in
    let mem = if obs then Some (Telemetry.Sink.memory ()) else None in
    let telemetry =
      (* event stream only (~timing:false): the ledger does not buy per-BCP
         clock reads, exactly as bmccheck --ledger configures it *)
      match mem with
      | Some (sink, _) -> Telemetry.create ~timing:false sink
      | None -> Telemetry.disabled
    in
    let w0 = Portfolio.Pool.wall () in
    List.iter
      (fun ((case : Circuit.Generators.case), depth) ->
        let config =
          Bmc.Session.make_config ~mode:Bmc.Session.Dynamic ~budget:quick_budget
            ~max_depth:depth ~collect_cores:true ~telemetry ?recorder ()
        in
        ignore
          (Bmc.Session.check ~config ~policy:Bmc.Session.Persistent case.netlist
             ~property:case.property))
      subset;
    (* the enabled side pays for the whole pipeline: snapshot the rings and
       distil the event stream into a ledger, as bmccheck --ledger would *)
    (match (mem, recorder) with
    | Some (_, events), Some r ->
      ignore (Obs.Ledger.of_events (events ()));
      ignore (Obs.Recorder.snapshot r)
    | _ -> ());
    Portfolio.Pool.wall () -. w0
  in
  let best f =
    let a = f () and b = f () and c = f () in
    min a (min b c)
  in
  let off = best (run_once ~obs:false) in
  let on_ = best (run_once ~obs:true) in
  {
    o_wall_off = off;
    o_wall_on = on_;
    o_overhead_pct = (if off > 0.0 then (on_ -. off) /. off *. 100.0 else 0.0);
  }

let quick_best_seq psum =
  List.fold_left
    (fun (bn, bw) (n, w) -> if w < bw then (n, w) else (bn, bw))
    ("standard", List.assoc "standard" psum.p_seq)
    psum.p_seq

let quick_json rows ~alloc_mb ~portfolio:psum ~ordering:dsum ~sharing:ssum ~inprocess:isum
    ~cores:csum ~observability:osum =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"bench-quick/v8\",\n  \"cases\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"outcomes\": \"%s\", \"core_vars_hash\": \"%08x\", \
            \"decisions\": %d, \"conflicts\": %d, \"propagations\": %d, \"build_s\": %.6f, \
            \"bcp_s\": %.6f, \"solve_s\": %.6f, \"wall_s\": %.6f }%s\n"
           r.q_name r.q_outcomes r.q_core_hash r.q_decisions r.q_conflicts r.q_propagations
           r.q_build r.q_bcp r.q_solve r.q_wall
           (if i = n - 1 then "" else ",")))
    rows;
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let toti f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let best_name, best_wall = quick_best_seq psum in
  Buffer.add_string b
    (Printf.sprintf
       "  ],\n\
       \  \"totals\": { \"build_s\": %.6f, \"bcp_s\": %.6f, \"solve_s\": %.6f, \
        \"wall_s\": %.6f, \"decisions\": %d, \"conflicts\": %d, \"propagations\": %d, \
        \"alloc_mb\": %.1f },\n"
       (tot (fun r -> r.q_build))
       (tot (fun r -> r.q_bcp))
       (tot (fun r -> r.q_solve))
       (tot (fun r -> r.q_wall))
       (toti (fun r -> r.q_decisions))
       (toti (fun r -> r.q_conflicts))
       (toti (fun r -> r.q_propagations))
       alloc_mb);
  Buffer.add_string b
    (Printf.sprintf
       "  \"portfolio\": { \"jobs\": %d, \"cores\": %d, \"wall_s\": %.6f, \
        \"sequential_wall_s\": { %s }, \"best_sequential\": \"%s\", \"speedup\": %.3f },\n"
       psum.p_jobs psum.p_cores psum.p_wall
       (String.concat ", "
          (List.map (fun (n, w) -> Printf.sprintf "\"%s\": %.6f" n w) psum.p_seq))
       best_name
       (if psum.p_wall > 0.0 then best_wall /. psum.p_wall else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"ordering\": { \"jobs\": %d, \"wall_s\": %.6f, \"rotations\": %d, \
        \"wins\": { %s } },\n"
       dsum.d_jobs dsum.d_wall dsum.d_rotated
       (String.concat ", "
          (List.map (fun (n, w) -> Printf.sprintf "\"%s\": %d" n w) dsum.d_wins)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"sharing\": { \"wall_off_s\": %.6f, \"wall_on_s\": %.6f, \"exported\": %d, \
        \"imported\": %d, \"rejected_tainted\": %d, \"dropped_stale\": %d },\n"
       ssum.s_wall_off ssum.s_wall_on ssum.s_totals.t_exported ssum.s_totals.t_imported
       ssum.s_totals.t_rejected_tainted ssum.s_totals.t_dropped_stale);
  Buffer.add_string b
    (Printf.sprintf
       "  \"inprocess\": { \"unsat_tail_off_s\": %.6f, \"unsat_tail_on_s\": %.6f, \
        \"eliminated\": %d, \"subsumed\": %d, \"strengthened\": %d, \"probe_failed\": %d, \
        \"resolvents\": %d },\n"
       isum.i_tail_off_s isum.i_tail_on_s isum.i_totals.i_eliminated isum.i_totals.i_subsumed
       isum.i_totals.i_strengthened isum.i_totals.i_probe_failed isum.i_totals.i_resolvents);
  Buffer.add_string b
    (Printf.sprintf
       "  \"cores\": { \"pre_clauses\": %d, \"post_clauses\": %d, \"coremin_s\": %.6f, \
        \"certified\": %b, \"unsat_tail_plain_s\": %.6f, \"unsat_tail_min_s\": %.6f, \
        \"dec_rank_share_plain_pct\": %.2f, \"dec_rank_share_min_pct\": %.2f },\n"
       csum.c_totals.c_pre csum.c_totals.c_post csum.c_totals.c_min_s
       csum.c_totals.c_all_certified csum.c_tail_plain_s csum.c_tail_min_s
       csum.c_rank_share_plain csum.c_rank_share_min);
  Buffer.add_string b
    (Printf.sprintf
       "  \"observability\": { \"wall_off_s\": %.6f, \"wall_on_s\": %.6f, \
        \"overhead_pct\": %.2f }\n}\n"
       osum.o_wall_off osum.o_wall_on osum.o_overhead_pct);
  Buffer.contents b

let quick_rows () =
  let a0 = Gc.allocated_bytes () in
  let cases = quick_cases () in
  let jobs = !quick_jobs in
  (* the substrates over the same cases: classic per-depth rebuilds, the
     persistent incremental session (in all three orderings), and the racing
     portfolio with the clause exchange off and on *)
  let classic = List.map quick_run_case cases in
  let inpr_tail_off = ref 0.0 in
  let session = List.map (quick_run_case_session ~unsat_tail:inpr_tail_off) cases in
  let inpr_tail_on = ref 0.0 in
  let inpr_totals =
    { i_eliminated = 0; i_subsumed = 0; i_strengthened = 0; i_probe_failed = 0; i_resolvents = 0 }
  in
  let session_inpr =
    List.map
      (quick_run_case_session ~inprocess:Sat.Inprocess.default ~suffix:"+session+inpr"
         ~unsat_tail:inpr_tail_on ~inpr_totals)
      cases
  in
  (* per-ordering sequential baselines: snapshotted rows AND the walls the
     portfolio speedup line compares against *)
  let cores_tail_plain = ref 0.0 in
  let split_plain = (ref 0, ref 0) in
  let seq_static =
    List.map
      (fun cd ->
        if quick_cores_case cd then
          quick_run_case_session ~mode:Bmc.Session.Static ~suffix:"+static"
            ~unsat_tail:cores_tail_plain ~dec_split:split_plain cd
        else quick_run_case_session ~mode:Bmc.Session.Static ~suffix:"+static" cd)
      cases
  in
  let seq_dynamic =
    List.map (quick_run_case_session ~mode:Bmc.Session.Dynamic ~suffix:"+dynamic") cases
  in
  (* the static sweep again under [Core_minimal]: same instances, so the
     outcome string is gated against +static; the minimised cores re-rank
     the score, so decisions and core hashes legitimately differ and the
     row keeps its own snapshot history *)
  let cores_tail_min = ref 0.0 in
  let split_min = (ref 0, ref 0) in
  let cores_totals = { c_pre = 0; c_post = 0; c_min_s = 0.0; c_all_certified = true } in
  let seq_static_coremin =
    List.map
      (quick_run_case_session ~mode:Bmc.Session.Static ~suffix:"+static+coremin"
         ~core_mode:Bmc.Session.Core_minimal ~coremin_budget:quick_coremin_budget
         ~unsat_tail:cores_tail_min ~cores_totals ~dec_split:split_min)
      (List.filter quick_cores_case cases)
  in
  let share_totals =
    { t_exported = 0; t_imported = 0; t_rejected_tainted = 0; t_dropped_stale = 0 }
  in
  let ord_wins = Hashtbl.create 8 in
  let ord_rotated = ref 0 in
  let portfolio, portfolio_share, ord_wall =
    Portfolio.Pool.with_pool ~telemetry:tel ~jobs (fun pool ->
        let off = List.map (quick_run_case_portfolio pool) cases in
        let on =
          List.map
            (quick_run_case_portfolio ~suffix:"+portfolio+share" ~share:share_totals pool)
            cases
        in
        let ow =
          List.fold_left
            (fun acc cd -> acc +. quick_run_case_ordering pool ord_wins ord_rotated cd)
            0.0 (quick_ordering_cases ())
        in
        (off, on, ow))
  in
  let wall_of rs = List.fold_left (fun a r -> a +. r.q_wall) 0.0 rs in
  let psum =
    {
      p_jobs = jobs;
      p_cores = Domain.recommended_domain_count ();
      p_wall = wall_of portfolio;
      p_seq =
        [
          ("standard", wall_of session);
          ("static", wall_of seq_static);
          ("dynamic", wall_of seq_dynamic);
        ];
    }
  in
  let dsum =
    {
      d_jobs = jobs;
      d_wall = ord_wall;
      d_rotated = !ord_rotated;
      d_wins =
        (* registry order, names the roster never tallied omitted *)
        List.filter_map
          (fun n -> Option.map (fun w -> (n, w)) (Hashtbl.find_opt ord_wins n))
          (Ordering.names ());
    }
  in
  let ssum =
    {
      s_wall_off = wall_of portfolio;
      s_wall_on = wall_of portfolio_share;
      s_totals = share_totals;
    }
  in
  let isum =
    { i_tail_off_s = !inpr_tail_off; i_tail_on_s = !inpr_tail_on; i_totals = inpr_totals }
  in
  let rank_share (rank, vsids) =
    let attributed = !rank + !vsids in
    if attributed = 0 then 0.0 else float_of_int !rank /. float_of_int attributed *. 100.0
  in
  let csum =
    {
      c_tail_plain_s = !cores_tail_plain;
      c_tail_min_s = !cores_tail_min;
      c_rank_share_plain = rank_share split_plain;
      c_rank_share_min = rank_share split_min;
      c_totals = cores_totals;
    }
  in
  let osum = quick_observability () in
  let rows =
    classic @ session @ session_inpr @ seq_static @ seq_static_coremin @ seq_dynamic
    @ portfolio @ portfolio_share
  in
  let alloc_mb = (Gc.allocated_bytes () -. a0) /. (1024.0 *. 1024.0) in
  Printf.printf "\n== bench quick: fixed small subset (deterministic outcomes) ==\n\n";
  Printf.printf "%-24s %-14s %10s %10s %12s %9s %9s %9s %9s\n" "model" "outcomes" "decisions"
    "conflicts" "implications" "build(s)" "bcp(s)" "solve(s)" "wall(s)";
  List.iter
    (fun r ->
      Printf.printf "%-24s %-14s %10d %10d %12d %9.3f %9.3f %9.3f %9.3f\n" r.q_name
        r.q_outcomes r.q_decisions r.q_conflicts r.q_propagations r.q_build r.q_bcp r.q_solve
        r.q_wall)
    rows;
  Printf.printf "%-24s %-14s %10d %10d %12d %9.3f %9.3f %9.3f %9.3f   (%.1f MB allocated)\n"
    "TOTAL" ""
    (List.fold_left (fun a r -> a + r.q_decisions) 0 rows)
    (List.fold_left (fun a r -> a + r.q_conflicts) 0 rows)
    (List.fold_left (fun a r -> a + r.q_propagations) 0 rows)
    (List.fold_left (fun a r -> a +. r.q_build) 0.0 rows)
    (List.fold_left (fun a r -> a +. r.q_bcp) 0.0 rows)
    (List.fold_left (fun a r -> a +. r.q_solve) 0.0 rows)
    (List.fold_left (fun a r -> a +. r.q_wall) 0.0 rows)
    alloc_mb;
  let build_of rs = List.fold_left (fun a r -> a +. r.q_build) 0.0 rs in
  Printf.printf
    "\n   instance build time: classic %.3fs (O(k^2) rebuilds), session %.3fs (frame deltas)\n"
    (build_of classic) (build_of session);
  let best_name, best_wall = quick_best_seq psum in
  Printf.printf
    "   portfolio (%d workers): %.3fs wall vs best sequential ordering (%s) %.3fs — %.2fx\n"
    jobs psum.p_wall best_name best_wall
    (if psum.p_wall > 0.0 then best_wall /. psum.p_wall else 0.0);
  let hw = Domain.recommended_domain_count () in
  if hw < jobs then
    Printf.printf
      "   (note: %d worker domains on %d hardware thread(s) — racers are time-sliced, so\n\
      \    the race cannot beat sequential here; speedup > 1 needs >= %d cores)\n"
      jobs hw jobs;
  Printf.printf
    "   ordering roster (%s): %.3fs wall, %d rotation(s); wins:%s\n"
    (String.concat "," (List.map fst dsum.d_wins))
    dsum.d_wall dsum.d_rotated
    (String.concat ""
       (List.map (fun (n, w) -> Printf.sprintf " %s=%d" n w) dsum.d_wins));
  Printf.printf
    "   clause sharing: portfolio wall %.3fs off vs %.3fs on; exported=%d imported=%d \
     rejected_tainted=%d dropped_stale=%d\n"
    ssum.s_wall_off ssum.s_wall_on share_totals.t_exported share_totals.t_imported
    share_totals.t_rejected_tainted share_totals.t_dropped_stale;
  Printf.printf
    "   inprocessing: UNSAT-tail solve %.3fs off vs %.3fs on; eliminated=%d subsumed=%d \
     strengthened=%d probe_failed=%d resolvents=%d\n"
    isum.i_tail_off_s isum.i_tail_on_s inpr_totals.i_eliminated inpr_totals.i_subsumed
    inpr_totals.i_strengthened inpr_totals.i_probe_failed inpr_totals.i_resolvents;
  Printf.printf
    "   core minimisation: %d -> %d core clauses (%.3fs, %s); UNSAT-tail solve %.3fs plain \
     vs %.3fs minimised; rank share %.1f%% -> %.1f%%\n"
    cores_totals.c_pre cores_totals.c_post cores_totals.c_min_s
    (if cores_totals.c_all_certified then "all certified" else "NOT all certified")
    csum.c_tail_plain_s csum.c_tail_min_s csum.c_rank_share_plain csum.c_rank_share_min;
  Printf.printf
    "   observability: session sweep %.3fs bare vs %.3fs with flight recorder + ledger \
     (%+.1f%% overhead, best of 3)\n"
    osum.o_wall_off osum.o_wall_on osum.o_overhead_pct;
  Telemetry.gauge tel "quick.build_s" (List.fold_left (fun a r -> a +. r.q_build) 0.0 rows);
  Telemetry.gauge tel "quick.bcp_s" (List.fold_left (fun a r -> a +. r.q_bcp) 0.0 rows);
  Telemetry.gauge tel "quick.solve_s" (List.fold_left (fun a r -> a +. r.q_solve) 0.0 rows);
  Telemetry.gauge tel "quick.alloc_mb" alloc_mb;
  Telemetry.gauge tel "quick.decisions"
    (float_of_int (List.fold_left (fun a r -> a + r.q_decisions) 0 rows));
  Telemetry.gauge tel "quick.portfolio.wall_s" psum.p_wall;
  Telemetry.gauge tel "quick.portfolio.speedup"
    (if psum.p_wall > 0.0 then best_wall /. psum.p_wall else 0.0);
  Telemetry.gauge tel "quick.ordering.wall_s" dsum.d_wall;
  Telemetry.gauge tel "quick.ordering.rotations" (float_of_int dsum.d_rotated);
  List.iter
    (fun (n, w) -> Telemetry.gauge tel ("quick.ordering.wins." ^ n) (float_of_int w))
    dsum.d_wins;
  Telemetry.gauge tel "quick.sharing.wall_on_s" ssum.s_wall_on;
  Telemetry.gauge tel "quick.sharing.exported" (float_of_int share_totals.t_exported);
  Telemetry.gauge tel "quick.sharing.imported" (float_of_int share_totals.t_imported);
  Telemetry.gauge tel "quick.sharing.rejected_tainted"
    (float_of_int share_totals.t_rejected_tainted);
  Telemetry.gauge tel "quick.observability.overhead_pct" osum.o_overhead_pct;
  Telemetry.gauge tel "quick.inprocess.unsat_tail_off_s" isum.i_tail_off_s;
  Telemetry.gauge tel "quick.inprocess.unsat_tail_on_s" isum.i_tail_on_s;
  Telemetry.gauge tel "quick.inprocess.eliminated" (float_of_int inpr_totals.i_eliminated);
  Telemetry.gauge tel "quick.inprocess.subsumed" (float_of_int inpr_totals.i_subsumed);
  Telemetry.gauge tel "quick.cores.pre_clauses" (float_of_int cores_totals.c_pre);
  Telemetry.gauge tel "quick.cores.post_clauses" (float_of_int cores_totals.c_post);
  Telemetry.gauge tel "quick.cores.coremin_s" cores_totals.c_min_s;
  (rows, alloc_mb, psum, dsum, ssum, isum, csum, osum)

let quick () =
  let rows, alloc_mb, psum, dsum, ssum, isum, csum, osum = quick_rows () in
  let oc = open_out quick_snapshot_file in
  output_string oc
    (quick_json rows ~alloc_mb ~portfolio:psum ~ordering:dsum ~sharing:ssum ~inprocess:isum
       ~cores:csum ~observability:osum);
  close_out oc;
  Printf.eprintf "bench: quick snapshot written to %s\n%!" quick_snapshot_file

(* Minimal field scanner for the snapshot we wrote ourselves: one case per
   line, fields formatted exactly as in [quick_json]. *)
let find_sub hay pat =
  let n = String.length pat and h = String.length hay in
  let rec at i = if i + n > h then None else if String.sub hay i n = pat then Some i else at (i + 1) in
  at 0

let extract_str line key =
  let pat = "\"" ^ key ^ "\": \"" in
  match find_sub line pat with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    let j = String.index_from line start '"' in
    Some (String.sub line start (j - start))

(* Rows whose counters are timing-dependent (racing portfolios: which racer
   wins steers the shared ranking) are gated on outcomes only. *)
let quick_timing_dependent name =
  let sub = "+portfolio" in
  let n = String.length sub and h = String.length name in
  let rec at i = i + n <= h && (String.sub name i n = sub || at (i + 1)) in
  at 0

let quick_check () =
  let rows, _, psum, _, _, _, csum, osum = quick_rows () in
  let expected =
    let ic = open_in quick_snapshot_file in
    let tbl = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match extract_str line "name" with
         | Some name ->
           Hashtbl.replace tbl name
             (extract_str line "outcomes", extract_str line "core_vars_hash")
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    tbl
  in
  let failures = ref 0 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt expected r.q_name with
      | None ->
        incr failures;
        Printf.eprintf "quick-check: %s missing from %s\n" r.q_name quick_snapshot_file
      | Some (outcomes, hash) ->
        let got_hash = Printf.sprintf "%08x" r.q_core_hash in
        if outcomes <> Some r.q_outcomes then begin
          incr failures;
          Printf.eprintf "quick-check: %s outcomes diverge: snapshot %s, got %s\n" r.q_name
            (Option.value ~default:"?" outcomes)
            r.q_outcomes
        end;
        if (not (quick_timing_dependent r.q_name)) && hash <> Some got_hash then begin
          incr failures;
          Printf.eprintf "quick-check: %s core-variable sets diverge: snapshot %s, got %s\n"
            r.q_name
            (Option.value ~default:"?" hash)
            got_hash
        end)
    rows;
  (* cross-substrate gates: every substrate solves the same instance
     sequence, so per-depth outcomes must agree exactly across the classic,
     session (all three orderings), portfolio and sharing rows (which racer
     WON a portfolio round — or which clauses travelled — is
     timing-dependent; the verdict is not) *)
  let by_name = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_name r.q_name r) rows;
  List.iter
    (fun r ->
      List.iter
        (fun suffix ->
          match Hashtbl.find_opt by_name (r.q_name ^ suffix) with
          | Some s when s.q_outcomes <> r.q_outcomes ->
            incr failures;
            Printf.eprintf "quick-check: %s: classic and %s outcomes diverge: %s vs %s\n"
              r.q_name suffix r.q_outcomes s.q_outcomes
          | Some _ | None -> ())
        [
          "+session";
          "+session+inpr";
          "+static";
          "+static+coremin";
          "+dynamic";
          "+portfolio";
          "+portfolio+share";
        ])
    rows;
  (* the core-minimisation gates: the minimised cores must be strictly
     smaller in aggregate than the proof-derived ones (the point of the
     pass), every one must be re-proved by the independent checker, and
     the minimised sweep's UNSAT-tail solve time must stay close to the
     plain static sweep's (the minimiser runs after each solve, so the
     tails only drift if the re-ranked score degrades the search) *)
  if csum.c_totals.c_pre > 0 && csum.c_totals.c_post >= csum.c_totals.c_pre then begin
    incr failures;
    Printf.eprintf
      "quick-check: core minimisation did not shrink the cores (%d -> %d clauses)\n"
      csum.c_totals.c_pre csum.c_totals.c_post
  end;
  if not csum.c_totals.c_all_certified then begin
    incr failures;
    Printf.eprintf "quick-check: a minimised core failed checker certification\n"
  end;
  if csum.c_tail_min_s > (2.0 *. csum.c_tail_plain_s) +. 0.5 then begin
    incr failures;
    Printf.eprintf
      "quick-check: UNSAT-tail solve regressed under core minimisation (%.3fs plain vs \
       %.3fs minimised)\n"
      csum.c_tail_plain_s csum.c_tail_min_s
  end;
  (* ordering quality must not regress: the static sweep steered by minimised
     cores has to keep branching on ranked variables about as often as the
     one steered by raw cores (10-point tolerance, same as the ledger diff) *)
  if csum.c_rank_share_min < csum.c_rank_share_plain -. 10.0 then begin
    incr failures;
    Printf.eprintf
      "quick-check: rank-guided decision share dropped under core minimisation (%.1f%% \
       plain vs %.1f%% minimised)\n"
      csum.c_rank_share_plain csum.c_rank_share_min
  end;
  (* the portfolio speedup gate: with at least two detected cores the race
     must not lose badly to the best sequential ordering; on fewer cores
     the worker domains are time-sliced over one core, so the recorded
     speedup is < 1 by construction and the gate is skipped with a note *)
  if psum.p_cores >= 2 then begin
    let _, best_wall = quick_best_seq psum in
    let speedup = if psum.p_wall > 0.0 then best_wall /. psum.p_wall else 0.0 in
    if speedup < 0.5 then begin
      incr failures;
      Printf.eprintf
        "quick-check: portfolio speedup %.2fx on %d cores (gate: >= 0.5x of the best \
         sequential ordering)\n"
        speedup psum.p_cores
    end
  end
  else
    Printf.printf
      "quick-check: note: %d core(s) detected — portfolio speedup gate skipped (racers \
       are time-sliced, speedup < 1 by construction)\n"
      psum.p_cores;
  (* the tracing-overhead gate: the flight recorder + ledger pipeline must
     stay within 5% of the bare wall (fresh measurement, best of 3) *)
  if osum.o_overhead_pct > 5.0 then begin
    incr failures;
    Printf.eprintf
      "quick-check: observability overhead %.1f%% exceeds the 5%% gate (%.3fs bare vs \
       %.3fs traced)\n"
      osum.o_overhead_pct osum.o_wall_off osum.o_wall_on
  end;
  if !failures > 0 then begin
    Printf.eprintf "quick-check: %d divergence(s) from %s\n" !failures quick_snapshot_file;
    exit 1
  end;
  Printf.printf
    "quick-check: all outcomes and core-variable sets match %s (classic, session and \
     portfolio agree; observability overhead %.1f%% within the 5%% gate)\n"
    quick_snapshot_file osum.o_overhead_pct

(* ------------------------------------------------------------------ *)
(* bench serve: service-layer workload over the warm-session cache.    *)
(* ------------------------------------------------------------------ *)

(* Replays the quick subset through the Serve engine as three phases per
   case: a cold request (cache miss, full depth sweep), an identical
   repeat (answered from the entry's memo without touching a solver) and
   a deeper extension (resuming the warm session at its first unproven
   depth).  Circuits travel as inline text, so every request is parsed
   fresh and cache identity really is the structural digest, not physical
   equality.  With one worker and no conflict budget the verdicts, cache
   classes and solve counts are deterministic; only the timing fields
   move.  [serve] writes BENCH_serve.json; [serve-check] re-runs and
   gates on the snapshot plus the headline service properties (hit rate
   positive, memo repeats >= 2x faster than cold). *)

let serve_snapshot_file = "BENCH_serve.json"

type serve_row = {
  sv_label : string; (* "<case>@<depth>/<phase>" *)
  sv_cache : string;
  sv_verdict : string;
  sv_vdepth : int; (* depth in the verdict: failure depth or proven bound *)
  sv_solved : int; (* solver instances run for this request *)
  sv_wall_ms : float;
}

let serve_workload () =
  List.concat_map
    (fun ((case : Circuit.Generators.case), depth) ->
      let d0 = max 2 (depth - 2) in
      [ (case, d0, "cold"); (case, d0, "repeat"); (case, depth, "extend") ])
    (quick_cases ())

let serve_rows () =
  let cfg =
    Serve.Server.make_config ~jobs:1 ~cache_bytes:(256 * 1024 * 1024)
      ~mode:Bmc.Session.Dynamic ()
  in
  let t = Serve.Server.create cfg in
  let rows =
    List.map
      (fun ((case : Circuit.Generators.case), depth, phase) ->
        let label = Printf.sprintf "%s@%d/%s" case.Circuit.Generators.name depth phase in
        let text =
          Circuit.Textio.to_string case.Circuit.Generators.netlist
            ~property:case.Circuit.Generators.property
        in
        let rq =
          {
            Serve.Protocol.rq_id = label;
            rq_src = Serve.Protocol.Inline text;
            rq_depth = depth;
            rq_mode = None;
            rq_deadline_ms = None;
            rq_stats = false;
          }
        in
        let rs = Serve.Server.check_now t rq in
        match rs.Serve.Protocol.rs_reply with
        | Serve.Protocol.Answer b ->
          let verdict, vdepth =
            match b.Serve.Protocol.rs_verdict with
            | Serve.Protocol.Falsified (d, _) -> ("falsified", d)
            | Serve.Protocol.Bounded_pass d -> ("bounded_pass", d)
            | Serve.Protocol.Aborted d -> ("aborted", d)
          in
          {
            sv_label = label;
            sv_cache = Serve.Protocol.cache_class_string b.Serve.Protocol.rs_cache;
            sv_verdict = verdict;
            sv_vdepth = vdepth;
            sv_solved = b.Serve.Protocol.rs_solved;
            sv_wall_ms = rs.Serve.Protocol.rs_wall_ms;
          }
        | Serve.Protocol.Shed | Serve.Protocol.Draining | Serve.Protocol.Bad_request _ ->
          Printf.eprintf "bench serve: request %s was not answered\n" label;
          exit 1)
      (serve_workload ())
  in
  let st = Serve.Server.stats t in
  let uptime_ms = Serve.Server.uptime_ms t in
  Serve.Server.shutdown t;
  (rows, st, uptime_ms)

let serve_mean f rows =
  match List.filter f rows with
  | [] -> 0.0
  | l -> List.fold_left (fun a r -> a +. r.sv_wall_ms) 0.0 l /. float_of_int (List.length l)

let serve_phase p r =
  let n = String.length r.sv_label and np = String.length p in
  n > np && String.sub r.sv_label (n - np) np = p

let serve_pctl rows p =
  match List.sort compare (List.map (fun r -> r.sv_wall_ms) rows) with
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int (Array.length a))) - 1 in
    a.(max 0 (min (Array.length a - 1) i))

let serve_json rows (st : Serve.Server.stats) uptime_ms =
  let cold_mean = serve_mean (serve_phase "/cold") rows in
  let repeat_mean = serve_mean (serve_phase "/repeat") rows in
  let warm_mean = serve_mean (fun r -> r.sv_cache = "warm") rows in
  let n = List.length rows in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench-serve/v1");
      ("requests", Obs.Json.Int n);
      ("shed", Obs.Json.Int st.Serve.Server.st_shed);
      ("errors", Obs.Json.Int st.Serve.Server.st_errors);
      ( "cache",
        Obs.Json.Obj
          [
            ("hit", Obs.Json.Int st.Serve.Server.st_hits);
            ("warm", Obs.Json.Int st.Serve.Server.st_warm);
            ("miss", Obs.Json.Int st.Serve.Server.st_misses);
          ] );
      ( "cache_hit_rate",
        Obs.Json.Float
          (float_of_int st.Serve.Server.st_hits /. float_of_int (max 1 n)) );
      ( "throughput_rps",
        Obs.Json.Float (float_of_int n *. 1e3 /. Float.max 1e-6 uptime_ms) );
      ("p50_ms", Obs.Json.Float (serve_pctl rows 50.0));
      ("p95_ms", Obs.Json.Float (serve_pctl rows 95.0));
      ("p99_ms", Obs.Json.Float (serve_pctl rows 99.0));
      ("cold_mean_ms", Obs.Json.Float cold_mean);
      ("repeat_mean_ms", Obs.Json.Float repeat_mean);
      ("warm_mean_ms", Obs.Json.Float warm_mean);
      ("warm_speedup", Obs.Json.Float (cold_mean /. Float.max 1e-6 repeat_mean));
      ( "rows",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str r.sv_label);
                   ("cache", Obs.Json.Str r.sv_cache);
                   ("verdict", Obs.Json.Str r.sv_verdict);
                   ("depth", Obs.Json.Int r.sv_vdepth);
                   ("solved", Obs.Json.Int r.sv_solved);
                 ])
             rows) );
    ]

let serve () =
  let rows, st, uptime_ms = serve_rows () in
  let doc = serve_json rows st uptime_ms in
  let oc = open_out serve_snapshot_file in
  output_string oc (Obs.Json.to_string ~indent:true doc);
  output_char oc '\n';
  close_out oc;
  Telemetry.gauge tel "serve.requests" (float_of_int (List.length rows));
  Telemetry.gauge tel "serve.hits" (float_of_int st.Serve.Server.st_hits);
  Printf.eprintf "bench: serve snapshot written to %s\n%!" serve_snapshot_file

let serve_check () =
  let rows, st, _uptime_ms = serve_rows () in
  let snapshot =
    let ic = open_in serve_snapshot_file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.of_string text with
    | Ok d -> d
    | Error msg ->
      Printf.eprintf "serve-check: %s: %s\n" serve_snapshot_file msg;
      exit 1
  in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; Printf.eprintf "serve-check: %s\n" m) fmt in
  (* deterministic per-row fields must match the committed snapshot *)
  let snap_rows =
    List.filter_map
      (fun r ->
        match Obs.Json.member "name" r with
        | Some (Obs.Json.Str name) -> Some (name, r)
        | _ -> None)
      (Obs.Json.get_list snapshot "rows")
  in
  List.iter
    (fun r ->
      match List.assoc_opt r.sv_label snap_rows with
      | None -> fail "row %s missing from %s" r.sv_label serve_snapshot_file
      | Some s ->
        List.iter
          (fun (key, got) ->
            let want = Obs.Json.get_str ~default:"?" s key in
            if want <> got then
              fail "%s: %s diverges: snapshot %s, got %s" r.sv_label key want got)
          [ ("cache", r.sv_cache); ("verdict", r.sv_verdict) ];
        List.iter
          (fun (key, got) ->
            let want = Obs.Json.get_int ~default:min_int s key in
            if want <> got then
              fail "%s: %s diverges: snapshot %d, got %d" r.sv_label key want got)
          [ ("depth", r.sv_vdepth); ("solved", r.sv_solved) ])
    rows;
  if List.length snap_rows <> List.length rows then
    fail "row count diverges: snapshot %d, got %d" (List.length snap_rows)
      (List.length rows);
  (* verdicts must agree with the generators' ground truth *)
  List.iter
    (fun ((case : Circuit.Generators.case), depth, phase) ->
      let label = Printf.sprintf "%s@%d/%s" case.Circuit.Generators.name depth phase in
      match
        ( case.Circuit.Generators.expect,
          List.find_opt (fun r -> r.sv_label = label) rows )
      with
      | Some expect, Some r ->
        let want =
          match expect with
          | Circuit.Generators.Fails_at f when f <= depth -> ("falsified", f)
          | Circuit.Generators.Fails_at _ | Circuit.Generators.Holds ->
            ("bounded_pass", depth)
        in
        if (r.sv_verdict, r.sv_vdepth) <> want then
          fail "%s: expected %s@%d, got %s@%d" label (fst want) (snd want) r.sv_verdict
            r.sv_vdepth
      | _ -> ())
    (serve_workload ());
  (* headline service gates: the cache must actually serve, and a memo
     repeat must be far cheaper than the cold solve it replays *)
  if st.Serve.Server.st_hits = 0 then fail "cache hit rate is zero";
  if st.Serve.Server.st_warm = 0 then fail "no request resumed a warm session";
  let cold_mean = serve_mean (serve_phase "/cold") rows in
  let repeat_mean = serve_mean (serve_phase "/repeat") rows in
  let speedup = cold_mean /. Float.max 1e-6 repeat_mean in
  if speedup < 2.0 then
    fail "memo repeats only %.1fx faster than cold (gate: >= 2x, %.2fms vs %.2fms)"
      speedup cold_mean repeat_mean;
  if !failures > 0 then begin
    Printf.eprintf "serve-check: %d divergence(s) from %s\n" !failures serve_snapshot_file;
    exit 1
  end;
  Printf.printf
    "serve-check: all verdicts and cache classes match %s (%d hit / %d warm / %d miss; \
     memo repeats %.0fx faster than cold)\n"
    serve_snapshot_file st.Serve.Server.st_hits st.Serve.Server.st_warm
    st.Serve.Server.st_misses speedup

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  Printf.printf "\n== Bechamel micro-benchmarks (one per artefact) ==\n";
  let representative = Circuit.Generators.ring ~len:8 ~noise:8 () in
  let u =
    Bmc.Unroll.create representative.Circuit.Generators.netlist
      ~property:representative.Circuit.Generators.property
  in
  let cnf = Bmc.Unroll.instance u ~k:6 in
  let solve_with mode () =
    let s = Sat.Solver.create ~mode cnf in
    ignore (Sat.Solver.solve s)
  in
  let rank =
    (* a plausible mid-run ranking: earlier-frame variables first *)
    Array.init (Sat.Cnf.num_vars cnf) (fun v ->
        match Bmc.Varmap.key_of (Bmc.Unroll.varmap u) v with
        | Some (_, frame) -> float_of_int (6 - frame)
        | None -> 0.0)
  in
  let proof_solve with_proof () =
    let s = Sat.Solver.create ~with_proof cnf in
    ignore (Sat.Solver.solve s)
  in
  let fig7_small () =
    let case = Circuit.Generators.ring ~len:6 () in
    let config =
      Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:6 ~budget:per_instance_budget ()
    in
    ignore (Bmc.Engine.run_case ~config case)
  in
  let tests =
    [
      Test.make ~name:"table1/solve-standard" (Staged.stage (solve_with Sat.Order.Vsids));
      Test.make ~name:"table1/solve-static" (Staged.stage (solve_with (Sat.Order.Static rank)));
      Test.make ~name:"table1/solve-dynamic"
        (Staged.stage (solve_with (Sat.Order.Dynamic rank)));
      Test.make ~name:"fig6/unroll-instance"
        (Staged.stage (fun () -> ignore (Bmc.Unroll.instance u ~k:6)));
      Test.make ~name:"fig7/engine-run" (Staged.stage fig7_small);
      Test.make ~name:"overhead/proof-off" (Staged.stage (proof_solve false));
      Test.make ~name:"overhead/proof-on" (Staged.stage (proof_solve true));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  Printf.printf "%-24s %16s %10s\n" "name" "ns/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let ols =
            Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | Some _ | None -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square est) in
          Printf.printf "%-24s %16.0f %10.3f\n" (Test.Elt.name elt) ns r2)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let usage () =
  Printf.printf
    "usage: main.exe [--jobs N] \
     [table1|fig6|fig7|overhead|ablation|complement|quick|quick-check|serve|serve-check|micro]...\n\
     with no arguments, runs every artefact except quick-check and serve-check.\n\
     quick       small fixed-seed subset; writes the BENCH_quick.json snapshot\n\
     quick-check re-runs the quick subset and fails on any outcome divergence\n\
     serve       cold/repeat/extend workload through the service layer;\n\
    \             writes the BENCH_serve.json snapshot\n\
     serve-check re-runs the serve workload and fails on any divergence\n\
     --jobs N    worker domains for the quick portfolio rows (default 3)\n"

let write_results () =
  let oc = open_out results_file in
  output_string oc (Telemetry.Sink.json_of_aggregate bench_agg);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "bench: machine-readable results written to %s\n%!" results_file

let run_artefact name f = Telemetry.span tel ("artefact:" ^ name) f

let () =
  let artefacts =
    [
      ("table1", table1);
      ("fig6", fig6);
      ("fig7", fig7);
      ("overhead", overhead);
      ("ablation", ablation);
      ("complement", complement);
      ("quick", quick);
      ("quick-check", quick_check);
      ("serve", serve);
      ("serve-check", serve_check);
      ("micro", micro);
    ]
  in
  let canonical = function "--quick" -> "quick" | "--quick-check" -> "quick-check" | a -> a in
  (* peel off [--jobs N] (or -j N) anywhere on the line; the rest are artefacts *)
  let rec strip = function
    | [] -> []
    | ("--jobs" | "-j") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j > 0 ->
        quick_jobs := j;
        strip rest
      | Some _ | None ->
        usage ();
        exit 2)
    | a :: rest -> canonical a :: strip rest
  in
  match strip (List.tl (Array.to_list Sys.argv)) with
  | [] ->
    List.iter
      (fun (name, f) ->
        if name <> "quick-check" && name <> "serve-check" then run_artefact name f)
      artefacts;
    write_results ()
  | args ->
    List.iter
      (fun a ->
        match List.assoc_opt a artefacts with
        | Some f -> run_artefact a f
        | None ->
          usage ();
          exit 2)
      args;
    write_results ()
