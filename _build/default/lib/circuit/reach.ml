type verdict =
  | Holds of { diameter : int }
  | Fails_at of int
  | Too_large

let equal_verdict a b =
  match (a, b) with
  | Holds { diameter = d1 }, Holds { diameter = d2 } -> d1 = d2
  | Fails_at k1, Fails_at k2 -> k1 = k2
  | Too_large, Too_large -> true
  | (Holds _ | Fails_at _ | Too_large), _ -> false

let pp_verdict ppf = function
  | Holds { diameter } -> Format.fprintf ppf "holds (diameter %d)" diameter
  | Fails_at k -> Format.fprintf ppf "fails at depth %d" k
  | Too_large -> Format.fprintf ppf "too large to enumerate"

let check ?(max_regs = 22) ?(max_inputs = 10) nl ~property =
  let sim = Eval.compile nl in
  (* project away registers and inputs outside the property's cone of
     influence: they can affect neither the property nor the cone's own
     transitions, so dropping them shrinks the enumeration soundly *)
  let cone = Netlist.transitive_fanin nl [ property ] in
  let regs = Array.of_list (List.filter cone (Netlist.regs nl)) in
  let ins = Array.of_list (List.filter cone (Netlist.inputs nl)) in
  let nregs = Array.length regs and nins = Array.length ins in
  if nregs > max_regs || nins > max_inputs then Too_large
  else begin
    let reg_pos = Hashtbl.create (max nregs 1) in
    Array.iteri (fun i r -> Hashtbl.replace reg_pos r i) regs;
    let in_pos = Hashtbl.create (max nins 1) in
    Array.iteri (fun i n -> Hashtbl.replace in_pos n i) ins;
    let encode st =
      let code = ref 0 in
      Array.iteri (fun i r -> if Eval.reg_value sim st r then code := !code lor (1 lsl i)) regs;
      !code
    in
    (* out-of-cone registers and inputs are pinned to false: their value
       cannot influence the property or the cone's transitions *)
    let state_of_code code =
      Eval.state_of_regs sim (fun r ->
          match Hashtbl.find_opt reg_pos r with
          | Some i -> code land (1 lsl i) <> 0
          | None -> false)
    in
    let input_fun mask n =
      match Hashtbl.find_opt in_pos n with
      | Some i -> mask land (1 lsl i) <> 0
      | None -> false
    in
    (* initial states: free cone registers range over both values *)
    let free = Array.to_list regs |> List.filter (fun r -> Netlist.reg_init nl r = None) in
    let base = Eval.initial sim in
    let initial_codes =
      let base_code = encode base in
      let rec expand acc = function
        | [] -> acc
        | r :: rest ->
          let bit = 1 lsl Hashtbl.find reg_pos r in
          expand (List.concat_map (fun c -> [ c land lnot bit; c lor bit ]) acc) rest
      in
      List.sort_uniq Int.compare (expand [ base_code ] free)
    in
    let visited = Hashtbl.create 1024 in
    let queue = Queue.create () in
    List.iter
      (fun c ->
        if not (Hashtbl.mem visited c) then begin
          Hashtbl.replace visited c 0;
          Queue.add (c, 0) queue
        end)
      initial_codes;
    let diameter = ref 0 in
    let failure = ref None in
    (try
       while not (Queue.is_empty queue) do
         let code, dist = Queue.pop queue in
         diameter := max !diameter dist;
         let st = state_of_code code in
         for mask = 0 to (1 lsl nins) - 1 do
           let frame, st' = Eval.cycle sim st ~inputs:(input_fun mask) in
           if not (Eval.value frame property) then begin
             failure := Some dist;
             raise Exit
           end;
           let code' = encode st' in
           if not (Hashtbl.mem visited code') then begin
             Hashtbl.replace visited code' (dist + 1);
             Queue.add (code', dist + 1) queue
           end
         done
       done
     with Exit -> ());
    match !failure with
    | Some k -> Fails_at k
    | None -> Holds { diameter = !diameter }
  end
