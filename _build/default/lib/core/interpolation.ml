type verdict =
  | Proved of { bound : int; iterations : int }
  | Falsified of Trace.t
  | Unknown of int

type result = {
  verdict : verdict;
  total_time : float;
  interpolants : int;
}

let pp_verdict ppf = function
  | Proved { bound; iterations } ->
    Format.fprintf ppf "proved by interpolation (bound %d, %d interpolants)" bound iterations
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Unknown k -> Format.fprintf ppf "undecided up to bound %d" k

(* Instantiate an interpolant over frame-1 register variables as gates over
   the register nodes themselves. *)
let rec formula_to_node nl varmap = function
  | Sat.Itp.Ftrue -> Circuit.Netlist.const_true nl
  | Sat.Itp.Ffalse -> Circuit.Netlist.const_false nl
  | Sat.Itp.Flit l -> (
    match Varmap.key_of varmap (Sat.Lit.var l) with
    | Some (node, 1) ->
      if Sat.Lit.is_pos l then node else Circuit.Netlist.not_ nl node
    | Some (node, 0) -> (
      (* constants are encoded once, at frame 0, and shared by every frame *)
      match Circuit.Netlist.gate nl node with
      | Circuit.Netlist.Const _ ->
        if Sat.Lit.is_pos l then node else Circuit.Netlist.not_ nl node
      | Circuit.Netlist.Input _ | Circuit.Netlist.Not _ | Circuit.Netlist.And _
      | Circuit.Netlist.Or _ | Circuit.Netlist.Xor _ | Circuit.Netlist.Mux _
      | Circuit.Netlist.Reg _ ->
        invalid_arg "Interpolation: frame-0 interpolant variable is not a constant")
    | Some (_, frame) ->
      invalid_arg
        (Printf.sprintf "Interpolation: interpolant variable at frame %d (expected 1)" frame)
    | None -> invalid_arg "Interpolation: interpolant variable outside the unrolling")
  | Sat.Itp.Fand (a, b) ->
    Circuit.Netlist.and_ nl (formula_to_node nl varmap a) (formula_to_node nl varmap b)
  | Sat.Itp.For (a, b) ->
    Circuit.Netlist.or_ nl (formula_to_node nl varmap a) (formula_to_node nl varmap b)

(* SAT?(pred_a ∧ ¬pred_b) over one combinational frame. *)
let predicate_sat nl ~budget pred_a ~not_b =
  let u = Unroll.create ~constrain_init:false nl ~property:pred_a in
  let cnf = Unroll.base_cnf u ~k:0 in
  Sat.Cnf.add_clause cnf [ Sat.Lit.pos (Unroll.var_of u ~node:pred_a ~frame:0) ];
  Sat.Cnf.add_clause cnf [ Sat.Lit.neg (Unroll.var_of u ~node:not_b ~frame:0) ];
  let solver = Sat.Solver.create cnf in
  match Sat.Solver.solve ~budget solver with
  | Sat.Solver.Sat -> true
  | Sat.Solver.Unsat -> false
  | Sat.Solver.Unknown -> true (* treat as "maybe": no fixpoint claim *)

let prove ?(max_bound = 32) ?(max_iterations = 64) ?(budget = Sat.Solver.no_budget) netlist
    ~property =
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Interpolation.prove: " ^ msg));
  let start = Sys.time () in
  (* private copy: interpolant gates are added to it freely *)
  let nl, map = Circuit.Netlist.abstract_registers netlist ~keep:(fun _ -> true) in
  let property = map property in
  let regs = Circuit.Netlist.regs nl in
  let init_pred =
    List.fold_left
      (fun acc r ->
        match Circuit.Netlist.reg_init nl r with
        | Some true -> Circuit.Netlist.and_ nl acc r
        | Some false -> Circuit.Netlist.and_ nl acc (Circuit.Netlist.not_ nl r)
        | None -> acc)
      (Circuit.Netlist.const_true nl)
      regs
  in
  let interpolants = ref 0 in
  let finish verdict =
    { verdict; total_time = Sys.time () -. start; interpolants = !interpolants }
  in
  (* depth-0 check on the true initial states *)
  let depth0 =
    let u = Unroll.create ~constrain_init:false nl ~property in
    let cnf = Unroll.base_cnf u ~k:0 in
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos (Unroll.var_of u ~node:init_pred ~frame:0) ];
    Sat.Cnf.add_clause cnf [ Sat.Lit.neg (Unroll.var_of u ~node:property ~frame:0) ];
    let solver = Sat.Solver.create cnf in
    match Sat.Solver.solve ~budget solver with
    | Sat.Solver.Sat ->
      let trace = Trace.of_model u ~k:0 ~model:(Sat.Solver.model solver) in
      Some trace
    | Sat.Solver.Unsat -> None
    | Sat.Solver.Unknown -> None
  in
  match depth0 with
  | Some trace ->
    if not (Trace.replay trace nl ~property) then
      failwith "Interpolation.prove: depth-0 counterexample failed to replay";
    finish (Falsified trace)
  | None ->
    let rec outer k =
      if k > max_bound then finish (Unknown max_bound)
      else begin
        (* inner interpolation iteration at this bound *)
        let rec inner r iteration =
          if iteration > max_iterations then `Deepen
          else begin
            let u = Unroll.create ~constrain_init:false nl ~property in
            let cnf = Unroll.base_cnf u ~k in
            let n_base = Sat.Cnf.num_clauses cnf in
            (* R at frame 0 *)
            Sat.Cnf.add_clause cnf [ Sat.Lit.pos (Unroll.var_of u ~node:r ~frame:0) ];
            (* bad at some frame in 1..k *)
            Sat.Cnf.add_clause cnf
              (List.init k (fun i ->
                   Sat.Lit.neg (Unroll.var_of u ~node:property ~frame:(i + 1))));
            let a_side i =
              if i < n_base then
                Unroll.clause_frame u i = 0
                || (Unroll.clause_frame u i = 1 && Unroll.clause_is_link u i)
              else i = n_base (* the R unit; the bad clause is B *)
            in
            let solver = Sat.Solver.create ~with_proof:true cnf in
            match Sat.Solver.solve ~budget solver with
            | Sat.Solver.Unknown -> `Deepen
            | Sat.Solver.Sat ->
              if iteration = 0 then begin
                (* genuine counterexample: find the first violated frame *)
                let model = Sat.Solver.model solver in
                let rec first_bad i =
                  if i > k then k
                  else begin
                    let v = Unroll.var_of u ~node:property ~frame:i in
                    if v < Array.length model && not model.(v) then i else first_bad (i + 1)
                  end
                in
                let j = first_bad 1 in
                let trace = Trace.of_model u ~k:j ~model in
                `Cex trace
              end
              else `Deepen (* over-approximation became too coarse *)
            | Sat.Solver.Unsat ->
              let itp = Sat.Solver.interpolant solver ~a_side in
              incr interpolants;
              let itp_node = formula_to_node nl (Unroll.varmap u) itp in
              if not (predicate_sat nl ~budget itp_node ~not_b:r) then
                (* I ⊨ R: the reachable states are inside R, which avoids
                   ¬P at every distance — proved *)
                `Fixpoint iteration
              else inner (Circuit.Netlist.or_ nl r itp_node) (iteration + 1)
          end
        in
        match inner init_pred 0 with
        | `Fixpoint iterations -> finish (Proved { bound = k; iterations })
        | `Cex trace ->
          if not (Trace.replay trace nl ~property) then
            failwith "Interpolation.prove: counterexample failed to replay (internal error)";
          finish (Falsified trace)
        | `Deepen -> outer (k + 1)
      end
    in
    outer 1

let prove_case ?max_bound ?max_iterations ?budget (case : Circuit.Generators.case) =
  prove ?max_bound ?max_iterations ?budget case.Circuit.Generators.netlist
    ~property:case.Circuit.Generators.property
