module Json = Obs.Json
module Session = Bmc.Session

type circuit_src =
  | Builtin of string
  | Inline of string

type request = {
  rq_id : string;
  rq_src : circuit_src;
  rq_depth : int;
  rq_mode : Session.mode option;
  rq_deadline_ms : float option;
  rq_stats : bool;
}

type cache_class =
  | Hit
  | Warm
  | Miss

let cache_class_string = function
  | Hit -> "hit"
  | Warm -> "warm"
  | Miss -> "miss"

type verdict_summary =
  | Falsified of int * Json.t
  | Bounded_pass of int
  | Aborted of int

type body = {
  rs_verdict : verdict_summary;
  rs_cache : cache_class;
  rs_solved : int;
  rs_decisions : int;
  rs_conflicts : int;
  rs_core : Sat.Lit.var list;
}

type reply =
  | Answer of body
  | Shed
  | Draining
  | Bad_request of string

type response = {
  rs_id : string;
  rs_reply : reply;
  rs_queue_ms : float;
  rs_wall_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let request_of_json j =
  match j with
  | Json.Obj _ -> (
    let id = Json.get_str ~default:"" j "id" in
    let src =
      match (Json.member "builtin" j, Json.member "circuit" j) with
      | Some (Json.Str name), None -> Ok (Builtin name)
      | None, Some (Json.Str text) -> Ok (Inline text)
      | Some _, Some _ -> Error "request has both \"builtin\" and \"circuit\""
      | _ -> Error "request needs a \"builtin\" name or an inline \"circuit\""
    in
    match src with
    | Error _ as e -> e
    | Ok rq_src -> (
      match Json.member "depth" j with
      | Some (Json.Int d) when d >= 0 -> (
        let mode =
          match Json.member "mode" j with
          | None -> Ok None
          | Some (Json.Str m) -> (
            match Session.mode_of_string m with
            | Some m -> Ok (Some m)
            | None -> Error (Printf.sprintf "unknown mode %S" m))
          | Some _ -> Error "\"mode\" must be a string"
        in
        match mode with
        | Error _ as e -> e
        | Ok rq_mode ->
          let rq_deadline_ms =
            match Json.member "deadline_ms" j with
            | Some v -> Json.to_float v
            | None -> None
          in
          Ok
            {
              rq_id = id;
              rq_src;
              rq_depth = d;
              rq_mode;
              rq_deadline_ms;
              rq_stats = Json.get_bool ~default:false j "stats";
            })
      | Some _ -> Error "\"depth\" must be a non-negative integer"
      | None -> Error "request needs a \"depth\""))
  | _ -> Error "request is not a JSON object"

let request_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j -> request_of_json j

let request_to_json rq =
  let fields = [ ("id", Json.Str rq.rq_id) ] in
  let fields =
    fields
    @ (match rq.rq_src with
      | Builtin name -> [ ("builtin", Json.Str name) ]
      | Inline text -> [ ("circuit", Json.Str text) ])
    @ [ ("depth", Json.Int rq.rq_depth) ]
    @ (match rq.rq_mode with
      | Some m -> [ ("mode", Json.Str (Session.mode_string m)) ]
      | None -> [])
    @ (match rq.rq_deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Float ms) ]
      | None -> [])
    @ if rq.rq_stats then [ ("stats", Json.Bool true) ] else []
  in
  Json.Obj fields

let request_line rq = Json.to_string (request_to_json rq)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

let node_label netlist n =
  match Circuit.Netlist.name_of netlist n with
  | Some s -> s
  | None -> "#" ^ string_of_int n

let assignment_json netlist l =
  Json.List
    (List.map
       (fun (n, b) -> Json.List [ Json.Str (node_label netlist n); Json.Bool b ])
       l)

let trace_to_json netlist (tr : Bmc.Trace.t) =
  Json.Obj
    [
      ("depth", Json.Int tr.Bmc.Trace.depth);
      ("init", assignment_json netlist tr.Bmc.Trace.init_regs);
      ( "frames",
        Json.List
          (Array.to_list (Array.map (assignment_json netlist) tr.Bmc.Trace.inputs)) );
    ]

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let verdict_fields = function
  | Falsified (d, trace) ->
    [ ("verdict", Json.Str "falsified"); ("depth", Json.Int d); ("trace", trace) ]
  | Bounded_pass d -> [ ("verdict", Json.Str "bounded_pass"); ("depth", Json.Int d) ]
  | Aborted d -> [ ("verdict", Json.Str "aborted"); ("depth", Json.Int d) ]

let response_to_json rs =
  let status, rest =
    match rs.rs_reply with
    | Answer b ->
      ( "ok",
        verdict_fields b.rs_verdict
        @ [
            ("cache", Json.Str (cache_class_string b.rs_cache));
            ("solved", Json.Int b.rs_solved);
            ("decisions", Json.Int b.rs_decisions);
            ("conflicts", Json.Int b.rs_conflicts);
          ]
        @
        if b.rs_core = [] then []
        else [ ("core", Json.List (List.map (fun v -> Json.Int v) b.rs_core)) ] )
    | Shed -> ("shed", [])
    | Draining -> ("draining", [])
    | Bad_request msg -> ("error", [ ("error", Json.Str msg) ])
  in
  Json.Obj
    ([ ("id", Json.Str rs.rs_id); ("status", Json.Str status) ]
    @ rest
    @ [
        ("queue_ms", Json.Float rs.rs_queue_ms); ("wall_ms", Json.Float rs.rs_wall_ms);
      ])

let response_line rs = Json.to_string (response_to_json rs)

let response_of_json j =
  match j with
  | Json.Obj _ -> (
    let id = Json.get_str ~default:"" j "id" in
    let queue_ms = Json.get_float ~default:0.0 j "queue_ms" in
    let wall_ms = Json.get_float ~default:0.0 j "wall_ms" in
    let mk reply = Ok { rs_id = id; rs_reply = reply; rs_queue_ms = queue_ms; rs_wall_ms = wall_ms } in
    match Json.get_str ~default:"" j "status" with
    | "shed" -> mk Shed
    | "draining" -> mk Draining
    | "error" -> mk (Bad_request (Json.get_str ~default:"" j "error"))
    | "ok" -> (
      let depth = Json.get_int ~default:0 j "depth" in
      let verdict =
        match Json.get_str ~default:"" j "verdict" with
        | "falsified" ->
          Ok
            (Falsified
               (depth, match Json.member "trace" j with Some t -> t | None -> Json.Null))
        | "bounded_pass" -> Ok (Bounded_pass depth)
        | "aborted" -> Ok (Aborted depth)
        | v -> Error (Printf.sprintf "unknown verdict %S" v)
      in
      let cache =
        match Json.get_str ~default:"" j "cache" with
        | "hit" -> Ok Hit
        | "warm" -> Ok Warm
        | "miss" -> Ok Miss
        | c -> Error (Printf.sprintf "unknown cache class %S" c)
      in
      match (verdict, cache) with
      | Ok rs_verdict, Ok rs_cache ->
        mk
          (Answer
             {
               rs_verdict;
               rs_cache;
               rs_solved = Json.get_int ~default:0 j "solved";
               rs_decisions = Json.get_int ~default:0 j "decisions";
               rs_conflicts = Json.get_int ~default:0 j "conflicts";
               rs_core =
                 List.filter_map Json.to_int (Json.get_list j "core");
             })
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    | s -> Error (Printf.sprintf "unknown status %S" s))
  | _ -> Error "response is not a JSON object"

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let ledger_line ~digest ~t_ms rq rs =
  let resp = response_to_json rs in
  let resp_fields = match resp with Json.Obj f -> f | _ -> assert false in
  (* the trace can be large; the ledger keeps the verdict, not the witness *)
  let resp_fields = List.filter (fun (k, _) -> k <> "trace") resp_fields in
  Json.Obj
    (resp_fields
    @ [
        ("digest", Json.Str digest);
        ("req_depth", Json.Int rq.rq_depth);
        ("t_ms", Json.Float t_ms);
      ])
