type budget = { max_solves : int option; max_seconds : float option }

let no_budget = { max_solves = None; max_seconds = None }

type stats = {
  initial : int;
  final : int;
  solves : int;
  seconds : float;
  minimal : bool;
  certified : bool;
}

(* Independent re-proof of the kept set: a fresh solver with clausal (DRAT)
   logging over the kept clauses plus the assumptions as units, its proof
   replayed by the reference checker.  This is the exactness guarantee the
   caller relies on — the minimiser's own bookkeeping never has to be
   trusted. *)
let certify_core arr alive ~num_vars ~assumptions =
  let c = Cnf.create ~num_vars () in
  Array.iteri (fun i (_, lits) -> if alive.(i) then Cnf.add_clause c lits) arr;
  List.iter (fun l -> Cnf.add_clause c [ l ]) assumptions;
  let s = Solver.create ~with_drat:true c in
  match Solver.solve s with
  | Solver.Unsat -> (
    match Checker.check_refutation c (Solver.drat_events s) with
    | Ok () -> true
    | Error _ -> false)
  | Solver.Sat | Solver.Unknown -> false

let minimise ?(budget = no_budget) ?(assumptions = []) ?(certify = true) ~num_vars ~clauses
    () =
  let t0 = Sys.time () in
  let arr = Array.of_list clauses in
  let n = Array.length arr in
  (* selectors live just above every variable the candidate mentions *)
  let base =
    Array.fold_left
      (fun m (_, lits) -> List.fold_left (fun m l -> max m (Lit.var l + 1)) m lits)
      num_vars arr
  in
  let base = List.fold_left (fun m l -> max m (Lit.var l + 1)) base assumptions in
  let cnf = Cnf.create ~num_vars:(base + n) () in
  Array.iteri (fun i (_, lits) -> Cnf.add_clause cnf (Lit.neg (base + i) :: lits)) arr;
  let solver = Solver.create cnf in
  let sel i = Lit.pos (base + i) in
  let alive = Array.make n true in
  let solves = ref 0 in
  let out_of_budget () =
    (match budget.max_solves with Some m -> !solves >= m | None -> false)
    ||
    match budget.max_seconds with
    | Some s -> Sys.time () -. t0 >= s
    | None -> false
  in
  (* solve the candidate with [dropped] deactivated (its selector simply not
     assumed, so the clause floats free) *)
  let solve_without dropped =
    incr solves;
    let asms = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) && dropped <> i then asms := sel i :: !asms
    done;
    Solver.solve solver ~assumptions:(assumptions @ !asms)
  in
  (* clause-set refinement: an UNSAT answer's failed assumptions name the
     selectors the refutation actually used; everything else is dropped
     wholesale, no per-clause test needed *)
  let refine () =
    let keep = Hashtbl.create (max 16 n) in
    List.iter
      (fun l ->
        if Lit.is_pos l && Lit.var l >= base then Hashtbl.replace keep (Lit.var l - base) ())
      (Solver.failed_assumptions solver);
    for i = 0 to n - 1 do
      if alive.(i) && not (Hashtbl.mem keep i) then alive.(i) <- false
    done
  in
  let result minimal =
    let certified =
      if certify then begin
        incr solves;
        certify_core arr alive ~num_vars:base ~assumptions
      end
      else false
    in
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := fst arr.(i) :: !kept
    done;
    ( !kept,
      {
        initial = n;
        final = List.length !kept;
        solves = !solves;
        seconds = Sys.time () -. t0;
        minimal;
        certified;
      } )
  in
  match solve_without (-1) with
  | Solver.Sat | Solver.Unknown ->
    (* not a core (e.g. a local projection whose imports were load-bearing):
       hand the input back unimproved rather than guessing *)
    let kept = Array.to_list (Array.map fst arr) in
    ( kept,
      {
        initial = n;
        final = n;
        solves = !solves;
        seconds = Sys.time () -. t0;
        minimal = false;
        certified = false;
      } )
  | Solver.Unsat ->
    refine ();
    (* destructive pass: drop each survivor in turn; UNSAT without it means
       it was redundant (and the failed assumptions may shed more), SAT
       proves it necessary *)
    let necessary = Array.make n false in
    let minimal = ref true in
    let i = ref 0 in
    while !minimal && !i < n do
      if alive.(!i) && not necessary.(!i) then begin
        if out_of_budget () then minimal := false
        else begin
          match solve_without !i with
          | Solver.Unsat ->
            alive.(!i) <- false;
            refine ()
          | Solver.Sat | Solver.Unknown -> necessary.(!i) <- true
        end
      end;
      if !minimal then incr i
    done;
    result !minimal
