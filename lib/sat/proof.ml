type node =
  | Original
  | Learnt of int array (* antecedent ids *)

type t = {
  nodes : node Vec.t;
  mutable n_original : int;
  mutable n_learnt : int;
  mutable n_edges : int;
  mutable final : int array option;
  timed : bool; (* clock the bookkeeping (telemetry); off = zero overhead *)
  mutable cdg_time : float;
}

let create ?(timed = false) () =
  {
    nodes = Vec.create ~dummy:Original ();
    n_original = 0;
    n_learnt = 0;
    n_edges = 0;
    final = None;
    timed;
    cdg_time = 0.0;
  }

let register_original_ t =
  let id = Vec.length t.nodes in
  Vec.push t.nodes Original;
  t.n_original <- t.n_original + 1;
  id

let register_original t =
  if not t.timed then register_original_ t
  else begin
    let t0 = Sys.time () in
    let id = register_original_ t in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    id
  end

let check_ant t id =
  if id < 0 || id >= Vec.length t.nodes then
    invalid_arg (Printf.sprintf "Proof: unknown antecedent id %d" id)

let register_learnt_ t ~antecedents =
  List.iter (check_ant t) antecedents;
  let ants = Array.of_list antecedents in
  let id = Vec.length t.nodes in
  Vec.push t.nodes (Learnt ants);
  t.n_learnt <- t.n_learnt + 1;
  t.n_edges <- t.n_edges + Array.length ants;
  id

let register_learnt t ~antecedents =
  if not t.timed then register_learnt_ t ~antecedents
  else begin
    let t0 = Sys.time () in
    let id = register_learnt_ t ~antecedents in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    id
  end

let set_final_ t ~antecedents =
  List.iter (check_ant t) antecedents;
  t.final <- Some (Array.of_list antecedents);
  t.n_edges <- t.n_edges + List.length antecedents

let set_final t ~antecedents =
  if not t.timed then set_final_ t ~antecedents
  else begin
    let t0 = Sys.time () in
    set_final_ t ~antecedents;
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0)
  end

let has_final t = t.final <> None

let clear_final t = t.final <- None

let core_ t =
  match t.final with
  | None -> invalid_arg "Proof.core: no final conflict recorded"
  | Some roots ->
    let n = Vec.length t.nodes in
    let visited = Array.make n false in
    let acc = ref [] in
    let stack = ref (Array.to_list roots) in
    let visit id =
      if not visited.(id) then begin
        visited.(id) <- true;
        match Vec.get t.nodes id with
        | Original -> acc := id :: !acc
        | Learnt ants -> Array.iter (fun a -> stack := a :: !stack) ants
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        visit id;
        loop ()
    in
    loop ();
    List.sort Int.compare !acc

let core t =
  if not t.timed then core_ t
  else begin
    let t0 = Sys.time () in
    let r = core_ t in
    t.cdg_time <- t.cdg_time +. (Sys.time () -. t0);
    r
  end

let antecedents t id =
  if id < 0 || id >= Vec.length t.nodes then None
  else match Vec.get t.nodes id with Original -> None | Learnt ants -> Some ants

let final t = t.final

let num_original t = t.n_original

let num_learnt t = t.n_learnt

let num_edges t = t.n_edges

let cdg_seconds t = t.cdg_time
