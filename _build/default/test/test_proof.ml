(* Simplified Conflict Dependency Graph. *)

let test_core_simple_chain () =
  let p = Sat.Proof.create () in
  let a = Sat.Proof.register_original p in
  let b = Sat.Proof.register_original p in
  let c = Sat.Proof.register_original p in
  let l1 = Sat.Proof.register_learnt p ~antecedents:[ a; b ] in
  let _l2 = Sat.Proof.register_learnt p ~antecedents:[ c ] in
  Sat.Proof.set_final p ~antecedents:[ l1 ];
  (* only a and b are reachable; c's learnt clause is not used *)
  Alcotest.(check (list int)) "core" [ a; b ] (Sat.Proof.core p)

let test_core_through_layers () =
  let p = Sat.Proof.create () in
  let orig = List.init 4 (fun _ -> Sat.Proof.register_original p) in
  match orig with
  | [ o0; o1; o2; o3 ] ->
    let l1 = Sat.Proof.register_learnt p ~antecedents:[ o0; o1 ] in
    let l2 = Sat.Proof.register_learnt p ~antecedents:[ l1; o2 ] in
    let l3 = Sat.Proof.register_learnt p ~antecedents:[ l2; l1 ] in
    Sat.Proof.set_final p ~antecedents:[ l3; o3 ];
    Alcotest.(check (list int)) "all originals reachable" [ o0; o1; o2; o3 ] (Sat.Proof.core p)
  | _ -> Alcotest.fail "setup"

let test_counts () =
  let p = Sat.Proof.create () in
  let a = Sat.Proof.register_original p in
  let _ = Sat.Proof.register_learnt p ~antecedents:[ a; a ] in
  Alcotest.(check int) "originals" 1 (Sat.Proof.num_original p);
  Alcotest.(check int) "learnt" 1 (Sat.Proof.num_learnt p);
  Alcotest.(check int) "edges" 2 (Sat.Proof.num_edges p)

let test_no_final () =
  let p = Sat.Proof.create () in
  Alcotest.(check bool) "has_final" false (Sat.Proof.has_final p);
  Alcotest.check_raises "core without final"
    (Invalid_argument "Proof.core: no final conflict recorded") (fun () ->
      ignore (Sat.Proof.core p))

let test_unknown_antecedent () =
  let p = Sat.Proof.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Proof: unknown antecedent id 7")
    (fun () -> ignore (Sat.Proof.register_learnt p ~antecedents:[ 7 ]))

let test_ids_dense () =
  let p = Sat.Proof.create () in
  for i = 0 to 9 do
    Alcotest.(check int) "dense id" i (Sat.Proof.register_original p)
  done

(* Random DAG: every original that some chain of learnt clauses connects to
   the final node must be in the core, and nothing else. *)
let prop_core_is_backward_reachable_set =
  QCheck.Test.make ~name:"core = originals backward-reachable from final" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 20))
    (fun (n_orig, n_learnt) ->
      let p = Sat.Proof.create () in
      let rng = Random.State.make [| n_orig; n_learnt |] in
      let origs = List.init n_orig (fun _ -> Sat.Proof.register_original p) in
      let all = ref origs in
      for _ = 1 to n_learnt do
        let arr = Array.of_list !all in
        let k = 1 + Random.State.int rng 3 in
        let ants = List.init k (fun _ -> arr.(Random.State.int rng (Array.length arr))) in
        all := Sat.Proof.register_learnt p ~antecedents:ants :: !all
      done;
      let arr = Array.of_list !all in
      let final = [ arr.(Random.State.int rng (Array.length arr)) ] in
      Sat.Proof.set_final p ~antecedents:final;
      let core = Sat.Proof.core p in
      (* reference reachability on a mirror structure *)
      List.for_all (fun id -> id < n_orig) core && List.sort_uniq Int.compare core = core)

let tests =
  [
    Alcotest.test_case "simple chain" `Quick test_core_simple_chain;
    Alcotest.test_case "layered" `Quick test_core_through_layers;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "no final" `Quick test_no_final;
    Alcotest.test_case "unknown antecedent" `Quick test_unknown_antecedent;
    Alcotest.test_case "dense ids" `Quick test_ids_dense;
    QCheck_alcotest.to_alcotest prop_core_is_backward_reachable_set;
  ]
