type verdict =
  | Proved of { frames : int; invariant_clauses : int }
  | Falsified of Trace.t
  | Unknown of { frames : int; queries : int }

type result = {
  verdict : verdict;
  queries : int;
  total_time : float;
}

let pp_verdict ppf = function
  | Proved { frames; invariant_clauses } ->
    Format.fprintf ppf "proved (inductive invariant with %d clauses at frame %d)"
      invariant_clauses frames
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Unknown { frames; queries } ->
    Format.fprintf ppf "undecided (%d frames, %d queries)" frames queries

(* A cube is a total assignment to the registers, kept as a sorted
   association list; blocked cubes may be partial after generalisation. *)
type cube = (Circuit.Netlist.node * bool) list

exception Out_of_budget

exception
  Cex of {
    initial : cube;
    transitions : (Circuit.Netlist.node * bool) list list;
        (** inputs per step, ending with the inputs of the violating frame *)
  }

type ctx = {
  netlist : Circuit.Netlist.t;
  unroll : Unroll.t;
  base : Sat.Cnf.t; (* two-frame transition, no init constraint *)
  regs : Circuit.Netlist.node list;
  inputs : Circuit.Netlist.node list;
  property : Circuit.Netlist.node;
  init : (Circuit.Netlist.node * bool) list; (* constrained registers only *)
  mutable delta : cube list array; (* cubes blocked exactly at this level *)
  mutable top : int; (* current highest frame k *)
  mutable queries : int;
  max_queries : int;
}

let v0 ctx r = Unroll.var_of ctx.unroll ~node:r ~frame:0

let v1 ctx r = Unroll.var_of ctx.unroll ~node:r ~frame:1

(* clause ¬cube over frame-0 variables *)
let blocking_clause ctx cube =
  List.map (fun (r, b) -> Sat.Lit.make (v0 ctx r) (not b)) cube

let frame_clauses ctx i =
  let acc = ref [] in
  for j = i to Array.length ctx.delta - 1 do
    List.iter (fun c -> acc := blocking_clause ctx c :: !acc) ctx.delta.(j)
  done;
  !acc

let cube_intersects_init ctx cube =
  List.for_all
    (fun (r, b) ->
      match List.assoc_opt r ctx.init with
      | Some v -> v = b
      | None -> true)
    cube

(* Run one fresh solver over the base plus extra clauses; [Some model] on
   SAT. *)
let query ctx extra =
  ctx.queries <- ctx.queries + 1;
  if ctx.queries > ctx.max_queries then raise Out_of_budget;
  let cnf = Sat.Cnf.copy ctx.base in
  List.iter (Sat.Cnf.add_clause cnf) extra;
  let solver = Sat.Solver.create cnf in
  match Sat.Solver.solve solver with
  | Sat.Solver.Sat -> Some (Sat.Solver.model solver)
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Unknown -> raise Out_of_budget

let model_cube ctx model =
  List.map (fun r -> (r, model.(v0 ctx r))) ctx.regs

let model_inputs ctx model =
  List.map (fun i -> (i, model.(v0 ctx i))) ctx.inputs

let init_units ctx =
  List.map (fun (r, b) -> [ Sat.Lit.make (v0 ctx r) b ]) ctx.init

(* SAT?(F_{i-1} ∧ ¬s ∧ T ∧ s') — the relative-induction query. *)
let predecessor_query ctx s ~i =
  let pre = if i - 1 = 0 then init_units ctx else frame_clauses ctx (i - 1) in
  let not_s = [ blocking_clause ctx s ] in
  let s_next = List.map (fun (r, b) -> [ Sat.Lit.make (v1 ctx r) b ]) s in
  query ctx (pre @ not_s @ s_next)

(* Drop literals while the cube stays blockable and init-disjoint. *)
let generalize ctx s ~i =
  let still_blocked s = predecessor_query ctx s ~i = None in
  List.fold_left
    (fun current (r, b) ->
      if List.length current <= 1 then current
      else begin
        let candidate = List.filter (fun (r', _) -> r' <> r) current in
        if List.mem (r, b) current
           && (not (cube_intersects_init ctx candidate))
           && still_blocked candidate
        then candidate
        else current
      end)
    s s

let add_blocked ctx cube ~level =
  ctx.delta.(level) <- cube :: ctx.delta.(level)

(* Recursively block obligation [s] at frame [i].  [suffix] holds the
   input valuations of the transitions from s onwards (last element = the
   violating frame's inputs). *)
let rec block ctx s ~i ~suffix =
  if cube_intersects_init ctx s then raise (Cex { initial = s; transitions = suffix });
  if i = 0 then
    (* cannot happen: an obligation at frame 0 must intersect init, which
       the previous test catches; defensive nonetheless *)
    raise (Cex { initial = s; transitions = suffix });
  let rec drain () =
    match predecessor_query ctx s ~i with
    | Some model ->
      let t = model_cube ctx model in
      let step_inputs = model_inputs ctx model in
      block ctx t ~i:(i - 1) ~suffix:(step_inputs :: suffix);
      drain ()
    | None -> ()
  in
  drain ();
  let g = generalize ctx s ~i in
  (* block g at every frame up to i *)
  add_blocked ctx g ~level:i

(* SAT?(F_k ∧ ¬P) over the present frame only. *)
let bad_state_query ctx ~k =
  let clauses = frame_clauses ctx k in
  let not_p = [ [ Sat.Lit.neg (Unroll.var_of ctx.unroll ~node:ctx.property ~frame:0) ] ] in
  query ctx (clauses @ not_p)

let trace_of_cex ctx initial transitions =
  let depth = List.length transitions - 1 in
  let init_regs =
    List.map
      (fun r ->
        match List.assoc_opt r initial with
        | Some b -> (r, b)
        | None -> (r, match List.assoc_opt r ctx.init with Some b -> b | None -> false))
      ctx.regs
  in
  { Trace.depth = max depth 0; init_regs; inputs = Array.of_list transitions }

let prove ?(max_frames = 64) ?(max_queries = 200_000) netlist ~property =
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pdr.prove: " ^ msg));
  let start = Sys.time () in
  let unroll = Unroll.create ~constrain_init:false netlist ~property in
  let base = Unroll.base_cnf unroll ~k:1 in
  let regs = Circuit.Netlist.regs netlist in
  let init =
    List.filter_map
      (fun r -> Option.map (fun b -> (r, b)) (Circuit.Netlist.reg_init netlist r))
      regs
  in
  let ctx =
    {
      netlist;
      unroll;
      base;
      regs;
      inputs = Circuit.Netlist.inputs netlist;
      property;
      init;
      delta = Array.make 2 [];
      top = 1;
      queries = 0;
      max_queries;
    }
  in
  let finish verdict = { verdict; queries = ctx.queries; total_time = Sys.time () -. start } in
  let falsify initial transitions =
    let trace = trace_of_cex ctx initial transitions in
    if not (Trace.replay trace netlist ~property) then
      failwith "Pdr.prove: counterexample failed to replay (internal error)";
    finish (Falsified trace)
  in
  try
    (* depth-0 check: an initial state violating P *)
    (match
       query ctx
         (init_units ctx
         @ [ [ Sat.Lit.neg (Unroll.var_of unroll ~node:property ~frame:0) ] ])
     with
    | Some model ->
      raise
        (Cex { initial = model_cube ctx model; transitions = [ model_inputs ctx model ] })
    | None -> ());
    let rec iterate () =
      if ctx.top > max_frames then
        finish (Unknown { frames = ctx.top; queries = ctx.queries })
      else begin
        (* block every reachable violation at the top frame *)
        let rec hunt () =
          match bad_state_query ctx ~k:ctx.top with
          | Some model ->
            let s = model_cube ctx model in
            block ctx s ~i:ctx.top ~suffix:[ model_inputs ctx model ];
            hunt ()
          | None -> ()
        in
        hunt ();
        (* extend and propagate *)
        let bigger = Array.make (ctx.top + 2) [] in
        Array.blit ctx.delta 0 bigger 0 (ctx.top + 1);
        ctx.delta <- bigger;
        for i = 1 to ctx.top do
          let keep = ref [] in
          List.iter
            (fun c ->
              let s_next = List.map (fun (r, b) -> [ Sat.Lit.make (v1 ctx r) b ]) c in
              match query ctx (frame_clauses ctx i @ s_next) with
              | None -> ctx.delta.(i + 1) <- c :: ctx.delta.(i + 1) (* pushed forward *)
              | Some _ -> keep := c :: !keep)
            ctx.delta.(i);
          ctx.delta.(i) <- !keep
        done;
        (* fixpoint: some frame between 1 and top emptied out *)
        let fixed = ref None in
        for i = 1 to ctx.top do
          if !fixed = None && ctx.delta.(i) = [] then fixed := Some i
        done;
        match !fixed with
        | Some i ->
          let invariant_clauses =
            let n = ref 0 in
            for j = i + 1 to Array.length ctx.delta - 1 do
              n := !n + List.length ctx.delta.(j)
            done;
            !n
          in
          finish (Proved { frames = ctx.top; invariant_clauses })
        | None ->
          ctx.top <- ctx.top + 1;
          iterate ()
      end
    in
    iterate ()
  with
  | Cex { initial; transitions } -> falsify initial transitions
  | Out_of_budget -> finish (Unknown { frames = ctx.top; queries = ctx.queries })

let prove_case ?max_frames ?max_queries (case : Circuit.Generators.case) =
  prove ?max_frames ?max_queries case.Circuit.Generators.netlist
    ~property:case.Circuit.Generators.property
