(* BDD-based reachability: cross-validation against the explicit oracle and
   against BMC, plus behaviour beyond the oracle's reach. *)

let test_matches_oracle_on_tiny_suite () =
  List.iter
    (fun (c : Circuit.Generators.case) ->
      let sym = Bmc.Symbolic.check c.netlist ~property:c.property in
      match (sym, Circuit.Reach.check c.netlist ~property:c.property) with
      | Bmc.Symbolic.Holds { diameter = d1 }, Circuit.Reach.Holds { diameter = d2 } ->
        Alcotest.(check int) (c.name ^ " diameter") d2 d1
      | Bmc.Symbolic.Fails_at a, Circuit.Reach.Fails_at b ->
        Alcotest.(check int) (c.name ^ " depth") b a
      | _, Circuit.Reach.Too_large -> ()
      | v, o ->
        Alcotest.failf "%s: symbolic %a vs oracle %a" c.name Bmc.Symbolic.pp_verdict v
          Circuit.Reach.pp_verdict o)
    (Circuit.Generators.tiny_suite ())

let test_handles_spaces_beyond_enumeration () =
  (* 24 one-hot registers: 2^24 raw states, trivial as BDDs *)
  let c = Circuit.Generators.ring ~len:24 () in
  (match Bmc.Symbolic.check c.netlist ~property:c.property with
  | Bmc.Symbolic.Holds { diameter } -> Alcotest.(check int) "ring diameter" 23 diameter
  | v -> Alcotest.failf "ring24: %a" Bmc.Symbolic.pp_verdict v);
  (* a counterexample 40 000 steps deep — far beyond any BMC unrolling *)
  let c = Circuit.Generators.counter ~bits:16 ~target:40_000 () in
  match Bmc.Symbolic.check c.netlist ~property:c.property with
  | Bmc.Symbolic.Fails_at 40_000 -> ()
  | v -> Alcotest.failf "cnt16: %a" Bmc.Symbolic.pp_verdict v

let test_cone_projection () =
  (* noise registers outside the property cone must not affect the result *)
  let plain = Circuit.Generators.johnson ~width:10 () in
  let noisy = Circuit.Generators.johnson ~width:10 ~noise:24 () in
  let v1 = Bmc.Symbolic.check plain.netlist ~property:plain.property in
  let v2 = Bmc.Symbolic.check noisy.netlist ~property:noisy.property in
  Alcotest.(check bool) "same verdict with and without noise" true
    (Bmc.Symbolic.equal_verdict v1 v2)

let test_node_limit_blowup () =
  (* a multiplier-like function is exponential in any variable order; with a
     tiny node limit the check must report blow-up, not wrong answers *)
  let c = Circuit.Generators.gray ~bits:5 () in
  match Bmc.Symbolic.check ~node_limit:64 c.netlist ~property:c.property with
  | Bmc.Symbolic.Blowup _ -> ()
  | v -> Alcotest.failf "expected blow-up, got %a" Bmc.Symbolic.pp_verdict v

let test_agrees_with_bmc_on_failure_depth () =
  let c = Circuit.Generators.fifo_overflow ~bits:3 () in
  let sym = Bmc.Symbolic.check c.netlist ~property:c.property in
  let bmc =
    Bmc.Engine.run_case
      ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:10 ())
      c
  in
  match (sym, bmc.verdict) with
  | Bmc.Symbolic.Fails_at a, Bmc.Engine.Falsified t ->
    Alcotest.(check int) "same depth" a t.Bmc.Trace.depth
  | v, b ->
    Alcotest.failf "symbolic %a vs bmc %a" Bmc.Symbolic.pp_verdict v Bmc.Engine.pp_verdict b

(* Randomised: symbolic = oracle on generated circuits. *)
let prop_symbolic_matches_oracle =
  let gen =
    let open QCheck.Gen in
    oneof
      [
        (pair (1 -- 6) (oneofl [ 0; 4 ]) >|= fun (t, z) ->
         Circuit.Generators.counter_en ~bits:3 ~target:t ~noise:z ());
        (3 -- 6 >|= fun l -> Circuit.Generators.ring ~len:l ());
        (2 -- 4 >|= fun s -> Circuit.Generators.parity_pipe ~stages:s ());
        (2 -- 3 >|= fun b -> Circuit.Generators.fifo_safe ~bits:b ());
        (4 -- 6 >|= fun w -> Circuit.Generators.lfsr ~width:w ());
        (3 -- 4 >|= fun b -> Circuit.Generators.gray ~bits:b ());
      ]
  in
  QCheck.Test.make ~name:"symbolic verdicts = oracle verdicts" ~count:40
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun c ->
      match
        ( Bmc.Symbolic.check c.netlist ~property:c.property,
          Circuit.Reach.check c.netlist ~property:c.property )
      with
      | Bmc.Symbolic.Holds { diameter = d1 }, Circuit.Reach.Holds { diameter = d2 } -> d1 = d2
      | Bmc.Symbolic.Fails_at a, Circuit.Reach.Fails_at b -> a = b
      | _, Circuit.Reach.Too_large -> true
      | _, _ -> false)

let tests =
  [
    Alcotest.test_case "matches oracle" `Slow test_matches_oracle_on_tiny_suite;
    Alcotest.test_case "beyond enumeration" `Quick test_handles_spaces_beyond_enumeration;
    Alcotest.test_case "cone projection" `Quick test_cone_projection;
    Alcotest.test_case "node-limit blowup" `Quick test_node_limit_blowup;
    Alcotest.test_case "agrees with BMC" `Quick test_agrees_with_bmc_on_failure_depth;
    QCheck_alcotest.to_alcotest prop_symbolic_matches_oracle;
  ]
