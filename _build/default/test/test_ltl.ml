(* Bounded LTL: encoding vs concrete lasso evaluation, equivalence with the
   invariant engine on G p, witness shapes, NNF smart constructors. *)

let cfg ?(max_depth = 10) () = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth ()

let signal nl name = Option.get (Circuit.Netlist.find nl name)

let check ?max_depth nl f = Bmc.Ltl.check ~config:(cfg ?max_depth ()) nl f

(* G (atom p) must agree exactly with the invariant engine. *)
let test_g_atom_equals_invariant_bmc () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let ltl = check ~max_depth:case.suggested_depth case.netlist
          (Bmc.Ltl.always (Bmc.Ltl.atom case.property))
      in
      let bmc =
        Bmc.Engine.run_case
          ~config:(Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:case.suggested_depth ())
          case
      in
      match (ltl.verdict, bmc.verdict) with
      | Bmc.Ltl.Falsified w, Bmc.Engine.Falsified t ->
        Alcotest.(check int) (case.name ^ ": same depth") t.Bmc.Trace.depth w.Bmc.Ltl.depth;
        Alcotest.(check (option int)) (case.name ^ ": finite witness") None w.Bmc.Ltl.loop_start
      | Bmc.Ltl.Bounded_pass a, Bmc.Engine.Bounded_pass b ->
        Alcotest.(check int) (case.name ^ ": same bound") b a
      | v, b ->
        Alcotest.failf "%s: LTL %s vs BMC %a" case.name
          (match v with
          | Bmc.Ltl.Falsified _ -> "falsified"
          | Bmc.Ltl.Bounded_pass _ -> "pass"
          | Bmc.Ltl.Aborted _ -> "aborted")
          Bmc.Engine.pp_verdict b)
    (Circuit.Generators.tiny_suite ())

let test_eventually_needs_lasso () =
  (* F (count = 5) on an enabled counter fails: the lasso that never
     enables is a depth-0 witness *)
  let c = Circuit.Generators.counter_en ~bits:3 ~target:5 () in
  let nl = c.netlist in
  let eq5 = Circuit.Netlist.not_ nl c.property in
  match (check nl (Bmc.Ltl.eventually (Bmc.Ltl.atom eq5))).verdict with
  | Bmc.Ltl.Falsified w ->
    Alcotest.(check int) "depth 0" 0 w.depth;
    Alcotest.(check (option int)) "self-loop" (Some 0) w.loop_start
  | _ -> Alcotest.fail "expected a lasso witness"

let test_fairness_implication_holds () =
  (* under the fairness assumption G F en, the counter must reach 5 *)
  let c = Circuit.Generators.counter_en ~bits:3 ~target:5 () in
  let nl = c.netlist in
  let eq5 = Circuit.Netlist.not_ nl c.property in
  let en = signal nl "en" in
  let f =
    Bmc.Ltl.(implies (always (eventually (atom en))) (eventually (atom eq5)))
  in
  match (check ~max_depth:12 nl f).verdict with
  | Bmc.Ltl.Bounded_pass k -> Alcotest.(check int) "full bound" 12 k
  | Bmc.Ltl.Falsified _ -> Alcotest.fail "fairness implication wrongly falsified"
  | Bmc.Ltl.Aborted k -> Alcotest.failf "aborted at %d" k

let test_until_witness () =
  let c = Circuit.Generators.ring ~len:4 () in
  let t0 = signal c.netlist "t0" and tick = signal c.netlist "tick" in
  (* t0 U tick fails: hold tick low forever (t0 stays, tick never) —
     except t0 is true initially so the until needs tick eventually *)
  match (check c.netlist (Bmc.Ltl.until (Bmc.Ltl.atom t0) (Bmc.Ltl.atom tick))).verdict with
  | Bmc.Ltl.Falsified w -> Alcotest.(check bool) "lasso" true (w.loop_start <> None)
  | _ -> Alcotest.fail "expected a lasso witness for the until"

let test_next_chain () =
  (* on the deterministic counter, X X X (count=3) holds, X X (count=3) fails *)
  let c = Circuit.Generators.counter ~bits:3 ~target:7 () in
  let nl = c.netlist in
  let bits = List.map (fun i -> signal nl (Printf.sprintf "c%d" i)) [ 0; 1; 2 ] in
  let eq3 =
    match bits with
    | [ b0; b1; b2 ] -> Circuit.Netlist.and_list nl [ b0; b1; Circuit.Netlist.not_ nl b2 ]
    | _ -> assert false
  in
  let x n f = List.fold_left (fun acc _ -> Bmc.Ltl.next acc) f (List.init n Fun.id) in
  (match (check nl (x 3 (Bmc.Ltl.atom eq3))).verdict with
  | Bmc.Ltl.Bounded_pass _ -> ()
  | _ -> Alcotest.fail "XXX eq3 must hold on the deterministic counter");
  match (check nl (x 2 (Bmc.Ltl.atom eq3))).verdict with
  | Bmc.Ltl.Falsified _ -> ()
  | _ -> Alcotest.fail "XX eq3 must fail"

let test_release_semantics () =
  (* false R p  =  G p; check the two agree on a failing case *)
  let c = Circuit.Generators.counter ~bits:3 ~target:4 () in
  let g = check c.netlist (Bmc.Ltl.always (Bmc.Ltl.atom c.property)) in
  let r =
    check c.netlist
      (Bmc.Ltl.release (Bmc.Ltl.not_ (Bmc.Ltl.atom c.property)) (Bmc.Ltl.atom c.property))
  in
  match (g.verdict, r.verdict) with
  | Bmc.Ltl.Falsified a, Bmc.Ltl.Falsified b ->
    Alcotest.(check int) "same depth" a.Bmc.Ltl.depth b.Bmc.Ltl.depth
  | _, _ -> Alcotest.fail "both must be falsified"

let test_duality_laws () =
  (* ¬F¬p = G p at the constructor level: both run identically *)
  let c = Circuit.Generators.ring ~len:4 () in
  let p = Bmc.Ltl.atom c.property in
  let direct = check c.netlist (Bmc.Ltl.always p) in
  let dual = check c.netlist (Bmc.Ltl.not_ (Bmc.Ltl.eventually (Bmc.Ltl.not_ p))) in
  let same =
    match (direct.verdict, dual.verdict) with
    | Bmc.Ltl.Bounded_pass a, Bmc.Ltl.Bounded_pass b -> a = b
    | Bmc.Ltl.Falsified a, Bmc.Ltl.Falsified b -> a.Bmc.Ltl.depth = b.Bmc.Ltl.depth
    | _, _ -> false
  in
  Alcotest.(check bool) "G p = ¬F¬p" true same

let test_pp () =
  let c = Circuit.Generators.ring ~len:3 () in
  let t0 = signal c.netlist "t0" in
  let s =
    Format.asprintf "%a"
      (Bmc.Ltl.pp ~netlist:c.netlist ())
      Bmc.Ltl.(always (eventually (atom t0)))
  in
  Alcotest.(check string) "pretty form" "G F t0" s

let test_invalid_atom_rejected () =
  let c = Circuit.Generators.ring ~len:3 () in
  match check c.netlist (Bmc.Ltl.atom 99_999) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a foreign atom"

(* The concrete-lasso evaluator agrees with cycle-accurate intuition. *)
let test_holds_on_lasso_directly () =
  let c = Circuit.Generators.counter_en ~bits:3 ~target:5 () in
  let nl = c.netlist in
  let en = signal nl "en" in
  let eq5 = Circuit.Netlist.not_ nl c.property in
  let init = List.map (fun r -> (r, false)) (Circuit.Netlist.regs nl) in
  (* lasso of length 0 with en low: F eq5 is false, G !eq5 is true *)
  let inputs = [| [ (en, false) ] |] in
  Alcotest.(check bool) "F eq5 false on idle lasso" false
    (Bmc.Ltl.holds_on_lasso nl
       Bmc.Ltl.(eventually (atom eq5))
       ~init ~inputs ~loop_start:(Some 0));
  Alcotest.(check bool) "G !eq5 true on idle lasso" true
    (Bmc.Ltl.holds_on_lasso nl
       Bmc.Ltl.(always (not_ (atom eq5)))
       ~init ~inputs ~loop_start:(Some 0));
  (* without the loop, G cannot be witnessed (pessimistic semantics) *)
  Alcotest.(check bool) "G pessimistic without loop" false
    (Bmc.Ltl.holds_on_lasso nl
       Bmc.Ltl.(always (not_ (atom eq5)))
       ~init ~inputs ~loop_start:None)

(* Randomised: every falsification's witness is independently validated by
   construction (Ltl.check raises on a bad witness), so it is enough to
   drive random formulas through and require clean termination plus sane
   verdict shapes. *)
let random_formula_gen nl pool =
  let open QCheck.Gen in
  let atom_gen = map (fun i -> Bmc.Ltl.atom (List.nth pool i)) (0 -- (List.length pool - 1)) in
  let rec go depth =
    if depth = 0 then atom_gen
    else
      frequency
        [
          (2, atom_gen);
          (1, map Bmc.Ltl.not_ (go (depth - 1)));
          (1, map2 Bmc.Ltl.and_ (go (depth - 1)) (go (depth - 1)));
          (1, map2 Bmc.Ltl.or_ (go (depth - 1)) (go (depth - 1)));
          (1, map Bmc.Ltl.next (go (depth - 1)));
          (1, map Bmc.Ltl.eventually (go (depth - 1)));
          (1, map Bmc.Ltl.always (go (depth - 1)));
          (1, map2 Bmc.Ltl.until (go (depth - 1)) (go (depth - 1)));
        ]
  in
  ignore nl;
  go 3

let prop_random_formulas_terminate_cleanly =
  let case = Circuit.Generators.ring ~len:3 () in
  let pool =
    [ case.property ]
    @ List.filter_map (fun n -> Circuit.Netlist.find case.netlist n) [ "t0"; "t1"; "tick" ]
  in
  QCheck.Test.make ~name:"random LTL formulas check cleanly (witnesses self-validate)"
    ~count:60
    (QCheck.make (random_formula_gen case.netlist pool))
    (fun f ->
      match (check ~max_depth:6 case.netlist f).verdict with
      | Bmc.Ltl.Falsified w -> w.Bmc.Ltl.depth <= 6
      | Bmc.Ltl.Bounded_pass k -> k = 6
      | Bmc.Ltl.Aborted _ -> false)

let test_parse_roundtrip () =
  let c = Circuit.Generators.ring ~len:3 () in
  let nl = c.netlist in
  List.iter
    (fun (text, expected_pp) ->
      let f = Bmc.Ltl.parse nl text in
      Alcotest.(check string) text expected_pp (Format.asprintf "%a" (Bmc.Ltl.pp ~netlist:nl ()) f))
    [
      ("G F t0", "G F t0");
      ("t0 U tick", "(t0 U tick)");
      ("!t0 & t1 | tick", "((!t0 & t1) | tick)");
      ("t0 -> t1 -> tick", "(!t0 | (!t1 | tick))");
      ("G (tick -> X t1)", "G (!tick | X t1)");
      ("true U t0", "F t0");
      ("false R t0", "G t0");
      ("( t0 )", "t0");
    ]

let test_parse_errors () =
  let c = Circuit.Generators.ring ~len:3 () in
  let expect_err text =
    match Bmc.Ltl.parse c.netlist text with
    | exception Bmc.Ltl.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  expect_err "";
  expect_err "G";
  expect_err "nosuchsignal";
  expect_err "t0 &";
  expect_err "(t0";
  expect_err "t0 t1";
  expect_err "t0 -"

let test_parsed_formula_checks () =
  let c = Circuit.Generators.ring ~len:4 () in
  let f = Bmc.Ltl.parse c.netlist "G (t1 -> F t0)" in
  match (check c.netlist f).verdict with
  | Bmc.Ltl.Falsified w -> Alcotest.(check bool) "lasso" true (w.loop_start <> None)
  | _ -> Alcotest.fail "the un-fair ring must falsify the response property"

let tests =
  [
    Alcotest.test_case "G atom = invariant BMC" `Slow test_g_atom_equals_invariant_bmc;
    Alcotest.test_case "F needs lasso" `Quick test_eventually_needs_lasso;
    Alcotest.test_case "fairness implication" `Quick test_fairness_implication_holds;
    Alcotest.test_case "until witness" `Quick test_until_witness;
    Alcotest.test_case "next chain" `Quick test_next_chain;
    Alcotest.test_case "release semantics" `Quick test_release_semantics;
    Alcotest.test_case "duality" `Quick test_duality_laws;
    Alcotest.test_case "pp" `Quick test_pp;
    Alcotest.test_case "invalid atom" `Quick test_invalid_atom_rejected;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parsed formula checks" `Quick test_parsed_formula_checks;
    Alcotest.test_case "holds_on_lasso" `Quick test_holds_on_lasso_directly;
    QCheck_alcotest.to_alcotest prop_random_formulas_terminate_cleanly;
  ]
