bin/bmccheck.mli:
