(* Proving instead of bounding: k-induction on top of the refined ordering.

   BMC alone answers "no counterexample up to depth k"; temporal induction
   closes the argument.  This example proves the arbiter's mutual-exclusion
   property outright — it needs the simple-path strengthening, because the
   property is not k-inductive on its own — and contrasts the incremental
   BMC engine with the per-depth one on the same circuit.

     dune exec examples/prove_it.exe
*)

let () =
  let case = Circuit.Generators.arbiter ~clients:6 () in
  Format.printf "circuit: %s (property: at most one grant)@.@." case.name;

  (* 1. BMC gives only a bounded answer. *)
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:10 () in
  let bounded = Bmc.Engine.run_case ~config case in
  Format.printf "BMC:                 %a@." Bmc.Engine.pp_verdict bounded.verdict;

  (* 2. Plain induction is stuck: the property is not inductive. *)
  let plain = Bmc.Induction.prove_case ~config case in
  Format.printf "plain induction:     %a@." Bmc.Induction.pp_verdict plain.verdict;

  (* 3. With simple-path constraints the method is complete. *)
  let proved = Bmc.Induction.prove_case ~config ~simple_path:true case in
  Format.printf "simple-path:         %a@.@." Bmc.Induction.pp_verdict proved.verdict;

  (* 4. The same refined ordering also drives the incremental engine, which
        keeps one solver alive across depths and reuses its learnt clauses. *)
  let a = Bmc.Engine.run_case ~config case in
  let b = Bmc.Incremental.run_case ~config case in
  Format.printf "per-depth engine:    %d decisions over %d instances@." a.total_decisions
    (List.length a.per_depth);
  Format.printf "incremental engine:  %d decisions over %d instances@." b.total_decisions
    (List.length b.per_depth)
