(* Destructive core minimisation: known candidates, budget behaviour, the
   SAT-candidate escape hatch, QCheck subset/certification properties, and
   the exact-under-sharing differentials (a single-racer race with the
   exchange attached must report the same cores as the plain sequential
   session — provenance makes sharing invisible when nothing is imported,
   and keeps the stitched core exact when something is). *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

(* ------------------------------------------------------------------ *)
(* Known candidates.                                                   *)
(* ------------------------------------------------------------------ *)

(* x0, x0->x1, ~x1 is the real core; the fourth clause is redundant. *)
let chain_with_redundancy =
  [
    (0, [ lit (0, true) ]);
    (1, [ lit (0, false); lit (1, true) ]);
    (2, [ lit (1, false) ]);
    (3, [ lit (0, true); lit (1, true) ]);
  ]

let test_redundant_clause_dropped () =
  let kept, st =
    Sat.Coremin.minimise ~num_vars:2 ~clauses:chain_with_redundancy ()
  in
  Alcotest.(check (list int)) "redundant clause gone" [ 0; 1; 2 ] kept;
  Alcotest.(check int) "initial" 4 st.Sat.Coremin.initial;
  Alcotest.(check int) "final" 3 st.Sat.Coremin.final;
  Alcotest.(check bool) "minimal" true st.Sat.Coremin.minimal;
  Alcotest.(check bool) "certified" true st.Sat.Coremin.certified

let test_sat_candidate_passthrough () =
  (* not a core at all: the caller gets the input back, uncertified *)
  let clauses = [ (5, [ lit (0, true) ]); (9, [ lit (1, true) ]) ] in
  let kept, st = Sat.Coremin.minimise ~num_vars:2 ~clauses () in
  Alcotest.(check (list int)) "input unchanged" [ 5; 9 ] kept;
  Alcotest.(check bool) "not minimal" false st.Sat.Coremin.minimal;
  Alcotest.(check bool) "not certified" false st.Sat.Coremin.certified

let test_assumption_relative_core () =
  (* UNSAT only under the activation literal x2 — the session's shape *)
  let clauses = [ (0, [ lit (2, false); lit (0, true) ]); (1, [ lit (0, false) ]) ] in
  let kept, st =
    Sat.Coremin.minimise ~assumptions:[ lit (2, true) ] ~num_vars:3 ~clauses ()
  in
  Alcotest.(check (list int)) "both clauses necessary" [ 0; 1 ] kept;
  Alcotest.(check bool) "minimal" true st.Sat.Coremin.minimal;
  Alcotest.(check bool) "certified" true st.Sat.Coremin.certified

let test_budget_caps_solves () =
  let budget = { Sat.Coremin.no_budget with Sat.Coremin.max_solves = Some 2 } in
  let kept, st = Sat.Coremin.minimise ~budget ~num_vars:2 ~clauses:chain_with_redundancy () in
  (* the cap bounds the minimisation loop; certification adds one more call *)
  Alcotest.(check bool) "solves bounded" true (st.Sat.Coremin.solves <= 3);
  Alcotest.(check bool) "still certified" true st.Sat.Coremin.certified;
  (* budget or not, the result must still be a correct (UNSAT) core *)
  let lits = List.filter_map (fun (id, c) -> if List.mem id kept then Some c else None)
      chain_with_redundancy
  in
  let cnf = Sat.Cnf.create ~num_vars:2 () in
  List.iter (Sat.Cnf.add_clause cnf) lits;
  match Sat.Solver.solve (Sat.Solver.create cnf) with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "kept set not UNSAT: %a" Sat.Solver.pp_outcome o

let test_certify_off () =
  let _, st =
    Sat.Coremin.minimise ~certify:false ~num_vars:2 ~clauses:chain_with_redundancy ()
  in
  Alcotest.(check bool) "uncertified on request" false st.Sat.Coremin.certified;
  Alcotest.(check bool) "still minimal" true st.Sat.Coremin.minimal

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)
(* ------------------------------------------------------------------ *)

(* An implication chain x0 -> x1 -> ... -> x_{n-1} plus [x0] and [~x_{n-1}]
   is UNSAT; sprinkling random extra clauses on top keeps it UNSAT (clauses
   only ever constrain further), so every generated candidate is a valid —
   and redundant — minimisation input. *)
let candidate_gen =
  let open QCheck.Gen in
  let* n = 2 -- 6 in
  let* extra = 0 -- 8 in
  let* seed = 0 -- 10_000 in
  let rng = Random.State.make [| n; extra; seed |] in
  let chain =
    [ lit (0, true) ]
    :: [ lit (n - 1, false) ]
    :: List.init (n - 1) (fun i -> [ lit (i, false); lit (i + 1, true) ])
  in
  let random_clause () =
    List.init
      (1 + Random.State.int rng 3)
      (fun _ -> lit (Random.State.int rng n, Random.State.bool rng))
  in
  let clauses = chain @ List.init extra (fun _ -> random_clause ()) in
  return (n, List.mapi (fun i c -> (i, c)) clauses)

let arb_candidate =
  QCheck.make
    ~print:(fun (n, cs) -> Printf.sprintf "%d vars, %d clauses" n (List.length cs))
    candidate_gen

let prop_minimised_subset_and_certified =
  QCheck.Test.make ~name:"minimised core: subset of input, certified, still UNSAT" ~count:60
    arb_candidate (fun (n, clauses) ->
      let kept, st = Sat.Coremin.minimise ~num_vars:n ~clauses () in
      let ids = List.map fst clauses in
      List.for_all (fun id -> List.mem id ids) kept
      && st.Sat.Coremin.certified && st.Sat.Coremin.minimal
      && st.Sat.Coremin.final = List.length kept
      && st.Sat.Coremin.final <= st.Sat.Coremin.initial
      &&
      let cnf = Sat.Cnf.create ~num_vars:n () in
      List.iter (fun (id, c) -> if List.mem id kept then Sat.Cnf.add_clause cnf c) clauses;
      Sat.Solver.solve (Sat.Solver.create cnf) = Sat.Solver.Unsat)

let prop_minimisation_idempotent =
  QCheck.Test.make ~name:"minimising a minimal core removes nothing" ~count:30 arb_candidate
    (fun (n, clauses) ->
      let kept, st = Sat.Coremin.minimise ~num_vars:n ~clauses () in
      (not st.Sat.Coremin.minimal)
      ||
      let again, st2 =
        Sat.Coremin.minimise ~num_vars:n
          ~clauses:(List.filter (fun (id, _) -> List.mem id kept) clauses)
          ()
      in
      again = kept && st2.Sat.Coremin.minimal)

(* ------------------------------------------------------------------ *)
(* Exact-under-sharing differentials.                                  *)
(* ------------------------------------------------------------------ *)

let seq_core_trace case depth ~core_mode =
  let config =
    Bmc.Session.make_config ~mode:Bmc.Session.Standard ~max_depth:depth ~collect_cores:true
      ~core_mode ()
  in
  let s =
    Bmc.Session.create ~policy:Bmc.Session.Persistent config
      case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
  in
  List.init (depth + 1) (fun k ->
      Bmc.Session.begin_instance s ~k;
      Bmc.Session.constrain s
        [ Sat.Lit.neg (Bmc.Session.var_of s ~node:case.Circuit.Generators.property ~frame:k) ];
      let st = Bmc.Session.solve_instance s in
      (st.Bmc.Session.outcome, Bmc.Session.last_core_vars s))

(* One racer, exchange attached: nothing is ever imported, so the stitched
   core must degenerate to exactly the sequential session's core, depth for
   depth — sharing with provenance is a no-op when no clause crosses. *)
let test_single_racer_share_equals_sequential () =
  let case = Circuit.Generators.ring ~len:5 () in
  let depth = 6 in
  let seq = seq_core_trace case depth ~core_mode:Bmc.Session.Core_fast in
  Portfolio.Pool.with_pool ~jobs:1 (fun pool ->
      let config = Bmc.Session.make_config ~max_depth:depth ~collect_cores:true () in
      let race =
        Portfolio.create_race
          ~racers:[ Portfolio.racer ~name:"standard" Bmc.Session.Standard ]
          ~share:(Share.Exchange.create ()) ~pool config case.netlist
          ~property:case.property
      in
      List.iteri
        (fun k (seq_outcome, seq_core) ->
          let rs = Portfolio.race_depth race ~k in
          Alcotest.(check bool)
            (Printf.sprintf "depth %d outcome agrees" k)
            true
            (rs.Portfolio.stat.Bmc.Session.outcome = seq_outcome);
          Alcotest.(check (list int))
            (Printf.sprintf "depth %d core identical" k)
            seq_core rs.Portfolio.core_vars)
        seq)

(* Full ensemble with the exchange on: winners are timing-dependent but the
   stitched core must always be a nonempty, certified-by-construction set of
   real variables on UNSAT depths (imports resolve across shards instead of
   truncating the walk). *)
let test_shared_race_cores_nonempty () =
  let case = Circuit.Generators.ring ~len:5 () in
  let depth = 5 in
  Portfolio.Pool.with_pool ~jobs:3 (fun pool ->
      let config = Bmc.Session.make_config ~max_depth:depth ~collect_cores:true () in
      let race =
        Portfolio.create_race ~share:(Share.Exchange.create ()) ~pool config case.netlist
          ~property:case.property
      in
      for k = 0 to depth do
        let rs = Portfolio.race_depth race ~k in
        match rs.Portfolio.stat.Bmc.Session.outcome with
        | Sat.Solver.Unsat ->
          Alcotest.(check bool)
            (Printf.sprintf "depth %d stitched core nonempty" k)
            true
            (rs.Portfolio.core_vars <> []);
          Alcotest.(check bool)
            (Printf.sprintf "depth %d core sorted uniquely" k)
            true
            (List.sort_uniq Int.compare rs.Portfolio.core_vars = rs.Portfolio.core_vars)
        | Sat.Solver.Sat | Sat.Solver.Unknown -> ()
      done)

(* The session's [Core_minimal] pipeline end to end: every UNSAT depth's
   reported core is no larger than the proof-derived one and carries the
   checker's certificate. *)
let test_session_core_minimal_shrinks_and_certifies () =
  let case = Circuit.Generators.ring ~len:5 () in
  let depth = 5 in
  let config =
    Bmc.Session.make_config ~mode:Bmc.Session.Static ~max_depth:depth ~collect_cores:true
      ~core_mode:Bmc.Session.Core_minimal ()
  in
  let s =
    Bmc.Session.create ~policy:Bmc.Session.Persistent config case.netlist
      ~property:case.property
  in
  let shrank = ref false in
  for k = 0 to depth do
    Bmc.Session.begin_instance s ~k;
    Bmc.Session.constrain s
      [ Sat.Lit.neg (Bmc.Session.var_of s ~node:case.property ~frame:k) ];
    let st = Bmc.Session.solve_instance s in
    match st.Bmc.Session.outcome with
    | Sat.Solver.Unsat ->
      Alcotest.(check bool)
        (Printf.sprintf "depth %d post <= pre" k)
        true
        (st.Bmc.Session.core_size <= st.Bmc.Session.core_pre);
      Alcotest.(check bool)
        (Printf.sprintf "depth %d certified" k)
        true st.Bmc.Session.coremin_certified;
      if st.Bmc.Session.core_size < st.Bmc.Session.core_pre then shrank := true
    | Sat.Solver.Sat | Sat.Solver.Unknown -> ()
  done;
  Alcotest.(check bool) "minimisation shrank at least one depth" true !shrank

let tests =
  [
    Alcotest.test_case "redundant clause dropped" `Quick test_redundant_clause_dropped;
    Alcotest.test_case "SAT candidate passthrough" `Quick test_sat_candidate_passthrough;
    Alcotest.test_case "assumption-relative core" `Quick test_assumption_relative_core;
    Alcotest.test_case "budget caps solves" `Quick test_budget_caps_solves;
    Alcotest.test_case "certify off" `Quick test_certify_off;
    QCheck_alcotest.to_alcotest prop_minimised_subset_and_certified;
    QCheck_alcotest.to_alcotest prop_minimisation_idempotent;
    Alcotest.test_case "single racer + share = sequential" `Quick
      test_single_racer_share_equals_sequential;
    Alcotest.test_case "shared race cores nonempty" `Quick test_shared_race_cores_nonempty;
    Alcotest.test_case "session Core_minimal shrinks, certified" `Quick
      test_session_core_minimal_shrinks_and_certifies;
  ]
