(** The ordering laboratory: a registry of named branching heuristics.

    Decision ordering used to be a closed three-way choice baked into
    {!Sat.Order.mode}; this registry opens it up.  Every entry resolves to
    a {!Bmc.Session.mode} — the four built-in modes under their usual
    names, plus laboratory heuristics built on {!Bmc.Session.Custom} and
    the {!Sat.Solver.hooks} seams:

    - ["standard"] / ["static"] / ["dynamic"] / ["shtrichman"] — the
      built-in modes;
    - ["chb"] — conflict-frequency branching: an exponential
      recency-weighted average of conflict participation per variable,
      added on top of the paper's folded bmc_score rank, with phase bias
      towards the more conflict-active literal;
    - ["frame"] — the Shtrichman frame-ordered ranking as a nameable
      racer;
    - ["assump"] — VSIDS decisions with the assumption vector permuted by
      recent-conflict participation, likeliest-falsified first.

    CLIs resolve [--order NAME] here, the portfolio builds named-racer
    rosters from it, and the differential test suite enumerates it. *)

type spec
(** A registered heuristic: a name, a one-line description, and a mode
    factory. *)

val name : spec -> string

val doc : spec -> string

val mode : spec -> Bmc.Session.mode
(** Build a fresh mode from the spec.  Laboratory heuristics carry
    mutable hook state, so every call returns an independent value; never
    install one mode on two solvers. *)

val specs : unit -> spec list
(** All registered heuristics, in presentation order (built-ins first). *)

val names : unit -> string list
(** [List.map name (specs ())]. *)

val find : string -> spec option
(** Look a heuristic up by name. *)

val mode_of_name : string -> Bmc.Session.mode option
(** [Option.map mode (find n)] — the one-step resolution CLIs use. *)
