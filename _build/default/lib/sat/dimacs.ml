exception Parse_error of string

let error line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

type state = {
  mutable header : (int * int) option;
  mutable pending : Lit.t list; (* literals of the clause being read *)
  cnf : Cnf.t;
  mutable clauses_seen : int;
}

(* Feed one input line to the incremental parser. *)
let feed st lineno line =
  let line = String.trim line in
  if line = "" || (String.length line > 0 && line.[0] = 'c') then ()
  else if String.length line > 0 && line.[0] = 'p' then begin
    if st.header <> None then error lineno "duplicate header";
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "p"; "cnf"; v; c ] -> (
      match (int_of_string_opt v, int_of_string_opt c) with
      | Some v, Some c when v >= 0 && c >= 0 ->
        st.header <- Some (v, c);
        Cnf.ensure_vars st.cnf v
      | _ -> error lineno "malformed 'p cnf' header")
    | _ -> error lineno "malformed 'p cnf' header"
  end
  else begin
    if st.header = None then error lineno "clause before 'p cnf' header";
    let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    let consume tok =
      match int_of_string_opt tok with
      | None -> error lineno "bad token %S" tok
      | Some 0 ->
        Cnf.add_clause st.cnf (List.rev st.pending);
        st.pending <- [];
        st.clauses_seen <- st.clauses_seen + 1
      | Some n -> st.pending <- Lit.of_dimacs n :: st.pending
    in
    List.iter consume tokens
  end

let finish st =
  (match st.pending with
  | [] -> ()
  | lits ->
    (* Tolerate a missing final 0, as several published instances do. *)
    Cnf.add_clause st.cnf (List.rev lits);
    st.clauses_seen <- st.clauses_seen + 1);
  (match st.header with
  | None -> raise (Parse_error "missing 'p cnf' header")
  | Some (v, c) ->
    if Cnf.num_vars st.cnf > v then
      raise
        (Parse_error
           (Printf.sprintf "variable %d exceeds declared count %d" (Cnf.num_vars st.cnf) v));
    if st.clauses_seen < c then
      raise
        (Parse_error (Printf.sprintf "expected %d clauses, found %d" c st.clauses_seen)));
  st.cnf

let fresh_state () =
  { header = None; pending = []; cnf = Cnf.create (); clauses_seen = 0 }

let parse_lines lines =
  let st = fresh_state () in
  List.iteri (fun i line -> feed st (i + 1) line) lines;
  finish st

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_channel ic =
  let st = fresh_state () in
  let rec loop lineno =
    match input_line ic with
    | line ->
      feed st lineno line;
      loop (lineno + 1)
    | exception End_of_file -> finish st
  in
  loop 1

let parse_file path =
  let ic = open_in path in
  match parse_channel ic with
  | cnf ->
    close_in ic;
    cnf
  | exception e ->
    close_in_noerr ic;
    raise e

let print ppf cnf =
  Format.fprintf ppf "p cnf %d %d@." (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  Cnf.iter_clauses
    (fun _ c ->
      Array.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
      Format.fprintf ppf "0@.")
    cnf

let to_string cnf = Format.asprintf "%a" print cnf

let write_file path cnf =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try
     print ppf cnf;
     Format.pp_print_flush ppf ()
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
