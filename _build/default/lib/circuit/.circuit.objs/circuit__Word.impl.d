lib/circuit/word.ml: Array Netlist Option Printf
