lib/sat/itp.mli: Format Lit
