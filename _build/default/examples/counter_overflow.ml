(* Bug hunting: a FIFO occupancy counter with a sticky overflow flag that
   can actually rise.  BMC finds the shortest counterexample, replays it on
   the simulator, and prints the input waveform that triggers the bug.

     dune exec examples/counter_overflow.exe
*)

let () =
  let case = Circuit.Generators.fifo_overflow ~bits:3 () in
  Format.printf "checking %s (expected: %a)@." case.name Circuit.Generators.pp_expect
    (Option.get case.expect);

  let config =
    Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:case.suggested_depth ()
  in
  let result = Bmc.Engine.run_case ~config case in

  match result.verdict with
  | Bmc.Engine.Falsified trace ->
    Format.printf "@.bug found: %a@." Bmc.Engine.pp_verdict result.verdict;
    (* The engine replays every trace before reporting it, but we can do it
       again here to show the API. *)
    let confirmed = Bmc.Trace.replay trace case.netlist ~property:case.property in
    Format.printf "replay on the cycle-accurate simulator confirms it: %b@.@." confirmed;
    Format.printf "%a@." (Bmc.Trace.pp ~netlist:case.netlist ()) trace;
    (* Inspect how the refinement narrowed the search over the UNSAT prefix. *)
    Format.printf "UNSAT-core sizes on the way down:@.";
    List.iter
      (fun (d : Bmc.Engine.depth_stat) ->
        if d.core_size > 0 then
          Format.printf "  depth %2d: %4d core clauses over %3d variables@." d.depth d.core_size
            d.core_var_count)
      result.per_depth
  | Bmc.Engine.Bounded_pass k ->
    Format.printf "no bug up to depth %d (unexpected for this design!)@." k
  | Bmc.Engine.Aborted k -> Format.printf "gave up at depth %d@." k
