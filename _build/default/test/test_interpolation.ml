(* Interpolation-based model checking, plus the Craig-interpolant extractor
   it is built on. *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

(* --- the extractor ------------------------------------------------- *)

let test_interpolant_conditions_basic () =
  (* A = (x0), B = (¬x0): interpolant must be x0 itself *)
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, false) ] ] in
  let s = Sat.Solver.create ~with_proof:true cnf in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  let itp = Sat.Solver.interpolant s ~a_side:(fun i -> i = 0) in
  Alcotest.(check bool) "I true when x0 true" true (Sat.Itp.eval itp (fun _ -> true));
  Alcotest.(check bool) "I false when x0 false" false (Sat.Itp.eval itp (fun _ -> false))

let test_interpolant_shared_vars_only () =
  (* A = (¬x0 ∨ x1) ∧ (x0), B = (¬x1 ∨ x2) ∧ (¬x2): shared variable is x1 *)
  let cnf =
    mk_cnf [ [ (0, false); (1, true) ]; [ (0, true) ]; [ (1, false); (2, true) ]; [ (2, false) ] ]
  in
  let s = Sat.Solver.create ~with_proof:true cnf in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  let itp = Sat.Solver.interpolant s ~a_side:(fun i -> i < 2) in
  List.iter
    (fun v -> Alcotest.(check int) "only x1 appears" 1 v)
    (Sat.Itp.variables itp)

let test_whole_formula_in_a () =
  (* B empty: the interpolant must be unsatisfiable itself (⟂-equivalent) *)
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, false) ] ] in
  let s = Sat.Solver.create ~with_proof:true cnf in
  ignore (Sat.Solver.solve s);
  let itp = Sat.Solver.interpolant s ~a_side:(fun _ -> true) in
  Alcotest.(check bool) "I unsat" false
    (Sat.Itp.eval itp (fun _ -> true) || Sat.Itp.eval itp (fun _ -> false))

let test_whole_formula_in_b () =
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, false) ] ] in
  let s = Sat.Solver.create ~with_proof:true cnf in
  ignore (Sat.Solver.solve s);
  let itp = Sat.Solver.interpolant s ~a_side:(fun _ -> false) in
  Alcotest.(check bool) "I valid" true
    (Sat.Itp.eval itp (fun _ -> true) && Sat.Itp.eval itp (fun _ -> false))

(* Craig conditions on random refutations and random partitions. *)
let prop_craig_conditions =
  let gen =
    let open QCheck.Gen in
    let clause nv = list_size (1 -- 3) (pair (0 -- (nv - 1)) bool) in
    (2 -- 6) >>= fun nv ->
    triple (return nv) (list_size (2 -- 20) (clause nv)) (list_size (return 20) bool)
  in
  QCheck.Test.make ~name:"Craig conditions on random splits" ~count:300 (QCheck.make gen)
    (fun (nv, cls, mask) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let s = Sat.Solver.create ~with_proof:true cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true
      | Sat.Solver.Unsat ->
        let mask = Array.of_list mask in
        let a_side i = i < Array.length mask && mask.(i) in
        let itp = Sat.Solver.interpolant s ~a_side in
        (* check over all assignments: A ⊨ I and I ∧ B unsat *)
        let ok = ref true in
        let a = Array.make nv false in
        let rec go i =
          if i = nv then begin
            let assign v = a.(v) in
            let side_true side =
              let all = ref true in
              Sat.Cnf.iter_clauses
                (fun ci c ->
                  if a_side ci = side && not (Sat.Cnf.eval_clause c assign) then all := false)
                cnf;
              !all
            in
            let iv = Sat.Itp.eval itp assign in
            if side_true true && not iv then ok := false;
            if iv && side_true false then ok := false
          end
          else begin
            a.(i) <- false;
            go (i + 1);
            a.(i) <- true;
            go (i + 1)
          end
        in
        go 0;
        !ok)

(* --- the model-checking loop --------------------------------------- *)

let test_tiny_suite_decided () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match (case.expect, (Bmc.Interpolation.prove_case case).verdict) with
      | Some Circuit.Generators.Holds, Bmc.Interpolation.Proved _ -> ()
      | Some (Circuit.Generators.Fails_at k), Bmc.Interpolation.Falsified t ->
        Alcotest.(check int) (case.name ^ ": exact depth") k t.Bmc.Trace.depth
      | e, v ->
        Alcotest.failf "%s: expect %s, got %a" case.name
          (match e with
          | Some x -> Format.asprintf "%a" Circuit.Generators.pp_expect x
          | None -> "?")
          Bmc.Interpolation.pp_verdict v)
    (Circuit.Generators.tiny_suite ())

let test_noise_beyond_enumeration () =
  let case = Circuit.Generators.ring ~len:12 ~noise:32 () in
  match (Bmc.Interpolation.prove_case case).verdict with
  | Bmc.Interpolation.Proved _ -> ()
  | v -> Alcotest.failf "expected proof, got %a" Bmc.Interpolation.pp_verdict v

let test_caller_netlist_untouched () =
  let case = Circuit.Generators.ring ~len:5 () in
  let before = Circuit.Netlist.num_nodes case.netlist in
  ignore (Bmc.Interpolation.prove_case case);
  Alcotest.(check int) "no interpolant gates leak into the input" before
    (Circuit.Netlist.num_nodes case.netlist)

let prop_interpolation_matches_oracle =
  let gen =
    let open QCheck.Gen in
    let* seed = 0 -- 100_000 in
    let* regs = 1 -- 5 in
    let* gates = 1 -- 20 in
    let* inputs = 0 -- 2 in
    return (Circuit.Generators.random ~seed ~regs ~gates ~inputs)
  in
  QCheck.Test.make ~name:"interpolation = oracle on random circuits" ~count:40
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle -> (
        match (oracle, (Bmc.Interpolation.prove_case ~max_bound:12 case).verdict) with
        | Circuit.Reach.Holds _, Bmc.Interpolation.Proved _ -> true
        | Circuit.Reach.Fails_at j, Bmc.Interpolation.Falsified t -> t.Bmc.Trace.depth = j
        | _, Bmc.Interpolation.Unknown _ -> true
        | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
          false))

let tests =
  [
    Alcotest.test_case "basic conditions" `Quick test_interpolant_conditions_basic;
    Alcotest.test_case "shared vars only" `Quick test_interpolant_shared_vars_only;
    Alcotest.test_case "all in A" `Quick test_whole_formula_in_a;
    Alcotest.test_case "all in B" `Quick test_whole_formula_in_b;
    QCheck_alcotest.to_alcotest prop_craig_conditions;
    Alcotest.test_case "tiny suite decided" `Slow test_tiny_suite_decided;
    Alcotest.test_case "noise beyond enumeration" `Quick test_noise_beyond_enumeration;
    Alcotest.test_case "caller netlist untouched" `Quick test_caller_netlist_untouched;
    QCheck_alcotest.to_alcotest prop_interpolation_matches_oracle;
  ]
