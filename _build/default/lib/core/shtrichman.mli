(** Shtrichman's time-axis decision ordering (related work, CAV 2000).

    Shtrichman viewed the BMC instance as a combinational circuit on a plane
    whose x-axis is time frames and y-axis is registers, ran BFS over the
    variable dependency graph starting from the constraint (the negated
    property at frame k), and sorted decision variables by their position on
    the {e time} axis.  The paper positions its own method as sorting along
    the {e register} axis instead; this module implements the time-axis
    baseline so the two can be compared (benchmark A2). *)

val rank : Unroll.t -> k:int -> float array
(** A per-variable rank for the depth-k instance: variables of frame k get
    the highest rank, descending towards frame 0 — the BFS-from-the-property
    visit order projected onto the time axis.  Suitable for
    {!Sat.Order.Static}. *)
