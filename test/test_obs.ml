(* Observability layer: flight-recorder ring semantics (bounded memory,
   overwrite order, snapshot consistency under concurrent writers), the run
   ledger's schema round-trip and event-stream distillation, the regression
   diff and the Prometheus export. *)

module R = Obs.Recorder
module L = Obs.Ledger
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring.                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_bounded_overwrite () =
  let cap = 64 in
  let rec_ = R.create ~capacity:cap () in
  let total = 10 * cap in
  for i = 0 to total - 1 do
    R.record rec_ R.Restart ~a:i ~b:(i * 2)
  done;
  let entries = R.snapshot rec_ in
  (* a wrapped ring surrenders one slot: the entry at [written - cap] may
     have been mid-overwrite when the cursor was read, so the snapshot keeps
     only the cap - 1 events strictly above it *)
  Alcotest.(check int) "the last capacity-1 events survive" (cap - 1)
    (List.length entries);
  (* the survivors are the final window, in order, payloads intact *)
  List.iteri
    (fun idx e ->
      let expect = total - (cap - 1) + idx in
      Alcotest.(check int) "sequence" expect e.R.e_seq;
      Alcotest.(check int) "payload a" expect e.R.e_a;
      Alcotest.(check int) "payload b" (expect * 2) e.R.e_b;
      Alcotest.(check string) "kind" "restart" (R.kind_name e.R.e_kind))
    entries

let test_ring_snapshot_under_hammer () =
  (* Two writer domains fill their own rings while the main domain
     snapshots concurrently.  Every snapshot must be internally consistent:
     per-domain sequences strictly increasing, each event's payload
     matching its sequence (so a torn slot — kind from one event, payload
     from another — would be caught), never more than [cap] per domain. *)
  let cap = 128 in
  let rec_ = R.create ~capacity:cap () in
  let n = 20_000 in
  let worker tag () =
    for i = 0 to n - 1 do
      R.record rec_ R.Solve ~a:tag ~b:i
    done
  in
  let d1 = Domain.spawn (worker 1) in
  let d2 = Domain.spawn (worker 2) in
  let check_snapshot entries =
    let last = Hashtbl.create 4 and count = Hashtbl.create 4 in
    List.iter
      (fun e ->
        (match Hashtbl.find_opt last e.R.e_dom with
        | Some (prev_seq, prev_b) ->
          if e.R.e_seq <= prev_seq then
            Alcotest.failf "dom %d: seq %d after %d" e.R.e_dom e.R.e_seq prev_seq;
          if e.R.e_b <= prev_b then
            Alcotest.failf "dom %d: payload %d after %d" e.R.e_dom e.R.e_b prev_b
        | None -> ());
        (* single writer per ring records b = loop index = sequence *)
        if e.R.e_kind = R.Solve then begin
          if e.R.e_b <> e.R.e_seq then
            Alcotest.failf "dom %d: torn event seq=%d b=%d" e.R.e_dom e.R.e_seq e.R.e_b;
          if e.R.e_a <> 1 && e.R.e_a <> 2 then
            Alcotest.failf "dom %d: foreign payload a=%d" e.R.e_dom e.R.e_a
        end;
        Hashtbl.replace last e.R.e_dom (e.R.e_seq, e.R.e_b);
        Hashtbl.replace count e.R.e_dom
          (1 + Option.value ~default:0 (Hashtbl.find_opt count e.R.e_dom)))
      entries;
    Hashtbl.iter
      (fun dom c ->
        if c > cap then Alcotest.failf "dom %d: %d > capacity %d events" dom c cap)
      count
  in
  for _ = 1 to 50 do
    check_snapshot (R.snapshot rec_)
  done;
  Domain.join d1;
  Domain.join d2;
  let final = R.snapshot rec_ in
  check_snapshot final;
  (* each full ring yields cap - 1 entries (torn-slot rule) *)
  Alcotest.(check int) "both rings full after the writers finish"
    (2 * (cap - 1))
    (List.length final)

let test_ring_entry_jsonl_roundtrip () =
  let rec_ = R.create ~capacity:8 () in
  R.record rec_ R.Racer_win ~a:3 ~b:1;
  R.record rec_ R.Share_export ~a:2 ~b:5;
  let entries = R.snapshot rec_ in
  Alcotest.(check int) "two events" 2 (List.length entries);
  List.iter
    (fun e ->
      match R.entry_of_json (R.entry_to_json e) with
      | Error msg -> Alcotest.failf "entry did not round-trip: %s" msg
      | Ok e' ->
        Alcotest.(check bool) "entry round-trips" true (e = e'))
    entries;
  let dump = String.concat "\n" (List.map R.entry_to_json entries) in
  Alcotest.(check int) "entries_of_string parses the dump" 2
    (List.length (R.entries_of_string dump))

let test_signal_dumps_snapshot () =
  let rec_ = R.create ~capacity:8 () in
  R.record rec_ R.Depth ~a:4 ~b:0;
  R.record rec_ R.Solve ~a:4 ~b:1;
  let path = Filename.temp_file "recorder" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      R.on_signal rec_ ~signal:Sys.sigusr2 ~path;
      Unix.kill (Unix.getpid ()) Sys.sigusr2;
      (* delivery is asynchronous; give the runtime a safepoint to run the
         handler, then poll briefly for the file to land *)
      let rec wait n =
        Unix.sleepf 0.01;
        if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then ()
        else if n > 0 then wait (n - 1)
        else Alcotest.fail "signal handler did not dump"
      in
      wait 100;
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check int) "dump holds both events" 2
        (List.length (R.entries_of_string text)))

(* ------------------------------------------------------------------ *)
(* Ledger: distillation from a real run.                               *)
(* ------------------------------------------------------------------ *)

let run_ledger ?(mode = Bmc.Session.Dynamic) ?(depth = 10) () =
  let sink, events = Telemetry.Sink.memory () in
  let telemetry = Telemetry.create ~timing:false sink in
  let case = Circuit.Generators.ring ~len:8 ~noise:8 () in
  let config =
    Bmc.Session.make_config ~mode ~max_depth:depth ~collect_cores:true ~telemetry ()
  in
  let r =
    Bmc.Session.check ~config ~policy:Bmc.Session.Persistent
      case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
  in
  (L.of_events (events ()), r)

let test_ledger_from_session () =
  let ledger, r = run_ledger () in
  Alcotest.(check bool) "depth rows present" true (ledger.L.depths <> []);
  Alcotest.(check int) "one row per instance" (List.length r.Bmc.Session.per_depth)
    (List.length ledger.L.depths);
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "depth %d: attribution partitions decisions" d.L.l_depth)
        d.L.l_decisions
        (d.L.l_dec_rank + d.L.l_dec_vsids);
      Alcotest.(check string) "mode recorded" "dynamic" d.L.l_mode)
    ledger.L.depths;
  Alcotest.(check int) "aggregate decisions match the run" r.Bmc.Session.total_decisions
    (L.decisions ledger);
  Alcotest.(check bool) "effectiveness report is never empty" true
    (String.length (Format.asprintf "%a" L.pp_effectiveness ledger) > 0);
  Alcotest.(check bool) "depth table renders" true
    (String.length (Format.asprintf "%a" L.pp_depth_table ledger) > 0)

let test_ledger_schema_roundtrip () =
  let ledger, _ = run_ledger () in
  let printed = L.to_string ledger in
  match L.of_string printed with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok reparsed ->
    Alcotest.(check string) "emit -> parse -> re-emit is the identity" printed
      (L.to_string reparsed);
    Alcotest.(check string) "schema version" L.version reparsed.L.schema

let test_ledger_synthetic_events () =
  (* counters and race events fold into the ledger's flow blocks *)
  let ev kind fields = { Telemetry.Sink.ts = 0.0; kind; fields } in
  let open Telemetry.Sink in
  let ledger =
    L.of_events
      [
        ev "race"
          [
            ("depth", Int 2);
            ("winner", Str "static");
            ("wall_s", Float 0.25);
            ("cancelled", Int 2);
          ];
        ev "restart" [ ("conflicts", Int 100) ];
        ev "restart" [ ("conflicts", Int 200) ];
        ev "switch" [ ("decisions", Int 50) ];
        ev "counter" [ ("name", Str "share.exported"); ("value", Int 7) ];
        ev "counter" [ ("name", Str "share.imported"); ("value", Int 4) ];
        ev "counter" [ ("name", Str "share.rejected_tainted"); ("value", Int 1) ];
        ev "counter" [ ("name", Str "share.dropped_stale"); ("value", Int 2) ];
      ]
  in
  Alcotest.(check int) "restarts" 2 ledger.L.restarts;
  Alcotest.(check int) "switches" 1 ledger.L.switches;
  Alcotest.(check int) "exported" 7 ledger.L.share.L.sh_exported;
  Alcotest.(check int) "imported" 4 ledger.L.share.L.sh_imported;
  Alcotest.(check int) "rejected" 1 ledger.L.share.L.sh_rejected_tainted;
  Alcotest.(check int) "dropped" 2 ledger.L.share.L.sh_dropped_stale;
  (match ledger.L.races with
  | [ race ] ->
    Alcotest.(check string) "race winner" "static" race.L.r_winner;
    Alcotest.(check int) "race cancelled" 2 race.L.r_cancelled
  | races -> Alcotest.failf "expected 1 race row, got %d" (List.length races));
  Alcotest.(check (list (pair string int))) "wins tally" [ ("static", 1) ] ledger.L.wins

(* ------------------------------------------------------------------ *)
(* Diff.                                                               *)
(* ------------------------------------------------------------------ *)

let test_diff_identical_is_empty () =
  let ledger, _ = run_ledger () in
  Alcotest.(check int) "no findings between identical runs" 0
    (List.length (L.diff ledger ledger));
  (* a portfolio run records one row per racer per depth with divergent
     loser stats — duplicate depths must pair one-to-one, not first-match *)
  let racers =
    {
      ledger with
      L.depths =
        List.concat_map
          (fun (d : L.depth_row) ->
            [
              { d with L.l_mode = "static" };
              { d with L.l_mode = "dynamic"; l_decisions = 0; l_outcome = "unknown" };
            ])
          ledger.L.depths;
    }
  in
  Alcotest.(check int) "identical portfolio ledgers diff clean" 0
    (List.length (L.diff racers racers))

let test_diff_flags_regressions () =
  let ledger, _ = run_ledger () in
  let perturbed =
    {
      ledger with
      L.depths =
        List.map
          (fun d ->
            if d.L.l_depth = 3 then
              { d with L.l_outcome = "sat"; l_decisions = d.L.l_decisions + 1000 }
            else d)
          ledger.L.depths;
    }
  in
  let findings = L.diff ledger perturbed in
  let fails = List.filter (fun f -> f.L.severity = L.Fail) findings in
  Alcotest.(check bool) "outcome change is a FAIL" true (fails <> []);
  let rendered = Format.asprintf "%a" L.pp_finding (List.hd fails) in
  Alcotest.(check bool) "finding names the depth" true
    (Test_stats.contains rendered "depth 3")

(* ------------------------------------------------------------------ *)
(* Prometheus export.                                                  *)
(* ------------------------------------------------------------------ *)

let test_prom_render () =
  let ledger, _ = run_ledger () in
  let doc = Obs.Prom.render ledger in
  List.iter
    (fun metric ->
      Alcotest.(check bool) (metric ^ " present") true (Test_stats.contains doc metric))
    [
      "bmc_depths_total";
      "bmc_decisions_total";
      "bmc_conflicts_total";
      "bmc_rank_decision_share";
      "# HELP";
      "# TYPE";
    ]

(* ------------------------------------------------------------------ *)
(* JSON codec.                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("schema", J.Str "test/v1");
        ("n", J.Int 42);
        ("x", J.Float 0.125);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("text", J.Str "say \"hi\"\n\ttab\\slash");
        ("list", J.List [ J.Int 1; J.Obj [ ("k", J.Str "v") ]; J.List [] ]);
        ("empty", J.Obj []);
      ]
  in
  List.iter
    (fun indent ->
      let s = J.to_string ~indent doc in
      match J.of_string s with
      | Error msg -> Alcotest.failf "re-parse failed (indent=%b): %s" indent msg
      | Ok doc' ->
        Alcotest.(check bool)
          (Printf.sprintf "value round-trips (indent=%b)" indent)
          true (doc = doc'))
    [ false; true ];
  (* accessors *)
  Alcotest.(check int) "get_int" 42 (J.get_int doc "n");
  Alcotest.(check (float 0.0)) "get_float accepts Int" 42.0 (J.get_float doc "n");
  Alcotest.(check string) "get_str default" "none" (J.get_str ~default:"none" doc "missing");
  Alcotest.(check int) "get_list length" 3 (List.length (J.get_list doc "list"));
  (* rejects garbage *)
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "expected parse failure on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "{'a':1}"; "nul" ]

let tests =
  [
    Alcotest.test_case "ring keeps only the last capacity events" `Quick
      test_ring_bounded_overwrite;
    Alcotest.test_case "ring snapshots consistent under two writers" `Slow
      test_ring_snapshot_under_hammer;
    Alcotest.test_case "recorder entries round-trip as JSONL" `Quick
      test_ring_entry_jsonl_roundtrip;
    Alcotest.test_case "signal handler dumps a snapshot" `Quick test_signal_dumps_snapshot;
    Alcotest.test_case "ledger distils a session run" `Quick test_ledger_from_session;
    Alcotest.test_case "ledger schema round-trip is the identity" `Quick
      test_ledger_schema_roundtrip;
    Alcotest.test_case "ledger folds races, restarts and sharing" `Quick
      test_ledger_synthetic_events;
    Alcotest.test_case "diff of identical runs is empty" `Quick test_diff_identical_is_empty;
    Alcotest.test_case "diff fails on outcome change" `Quick test_diff_flags_regressions;
    Alcotest.test_case "prometheus export names its metrics" `Quick test_prom_render;
    Alcotest.test_case "json codec round-trips and rejects garbage" `Quick
      test_json_roundtrip;
  ]
