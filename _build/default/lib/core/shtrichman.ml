let rank unroll ~k =
  let vm = Unroll.varmap unroll in
  let n = Varmap.num_vars vm in
  let a = Array.make (max n 1) 0.0 in
  for v = 0 to n - 1 do
    match Varmap.key_of vm v with
    | Some (_, frame) when frame <= k -> a.(v) <- float_of_int (frame + 1)
    | Some _ | None -> ()
  done;
  a
