lib/core/abstraction.ml: Circuit Engine Format Hashtbl List Sat Score Shtrichman Sys Trace Unroll Varmap
