type clause = Lit.t array

type t = {
  mutable num_vars : int;
  clauses : clause Vec.t;
  mutable num_literals : int;
}

let create ?(num_vars = 0) () =
  if num_vars < 0 then invalid_arg "Cnf.create";
  { num_vars; clauses = Vec.create ~dummy:[||] (); num_literals = 0 }

let num_vars f = f.num_vars

let num_clauses f = Vec.length f.clauses

let fresh_var f =
  let v = f.num_vars in
  f.num_vars <- v + 1;
  v

let ensure_vars f n = if n > f.num_vars then f.num_vars <- n

let note_lits f c =
  Array.iter (fun l -> ensure_vars f (Lit.var l + 1)) c;
  f.num_literals <- f.num_literals + Array.length c

let add_clause_a f c =
  let c = Array.copy c in
  note_lits f c;
  Vec.push f.clauses c

let add_clause f lits =
  let c = Array.of_list lits in
  note_lits f c;
  Vec.push f.clauses c

let get_clause f i = Vec.get f.clauses i

let iter_clauses g f = Vec.iteri g f.clauses

let fold_clauses g acc f = Vec.fold g acc f.clauses

let num_literals f = f.num_literals

let normalize_clause lits =
  let sorted = List.sort_uniq Lit.compare lits in
  let rec tautology = function
    | a :: (b :: _ as rest) ->
      (Lit.var a = Lit.var b && a <> b) || tautology rest
    | [ _ ] | [] -> false
  in
  if tautology sorted then None else Some sorted

let eval_clause c assign = Array.exists (fun l -> assign (Lit.var l) = Lit.is_pos l) c

let eval f assign =
  let sat = ref true in
  Vec.iter (fun c -> if not (eval_clause c assign) then sat := false) f.clauses;
  !sat

let copy f =
  let g = create ~num_vars:f.num_vars () in
  Vec.iter (fun c -> Vec.push g.clauses (Array.copy c)) f.clauses;
  g.num_literals <- f.num_literals;
  g

let pp ppf f =
  Format.fprintf ppf "@[<v>p cnf %d %d" f.num_vars (num_clauses f);
  Vec.iter
    (fun c ->
      Format.fprintf ppf "@,%a 0"
        (Format.pp_print_array ~pp_sep:Format.pp_print_space Lit.pp)
        c)
    f.clauses;
  Format.fprintf ppf "@]"
