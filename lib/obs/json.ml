type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.  Field order is preserved exactly as constructed, and floats
   use the shortest round-tripping representation, so [to_string] is
   deterministic and [of_string] followed by [to_string] is the
   identity on anything this module printed. *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add b indent level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string b ",\n" else Buffer.add_char b ',' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_char b '[';
    if indent then Buffer.add_char b '\n';
    List.iteri
      (fun i x ->
        if i > 0 then sep ();
        pad (level + 1);
        add b indent (level + 1) x)
      xs;
    if indent then Buffer.add_char b '\n';
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    if indent then Buffer.add_char b '\n';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then sep ();
        pad (level + 1);
        escape_string b k;
        Buffer.add_char b ':';
        if indent then Buffer.add_char b ' ';
        add b indent (level + 1) x)
      kvs;
    if indent then Buffer.add_char b '\n';
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 256 in
  add b indent 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the whole string.  Numbers
   without '.', 'e' or 'E' become [Int]; everything else [Float]. *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Only ASCII escapes are ever produced by our printer. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else fail "non-ASCII \\u escape unsupported";
          pos := !pos + 4
        | _ -> fail "bad escape");
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let kvs = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          kvs := (k, v) :: !kvs;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !kvs)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let xs = ref [] in
        let rec elements () =
          let v = parse_value () in
          xs := v :: !xs;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !xs)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let get_int ?(default = 0) j k =
  match member k j with Some v -> Option.value ~default (to_int v) | None -> default

let get_float ?(default = 0.0) j k =
  match member k j with Some v -> Option.value ~default (to_float v) | None -> default

let get_str ?(default = "") j k =
  match member k j with Some v -> Option.value ~default (to_str v) | None -> default

let get_bool ?(default = false) j k =
  match member k j with Some v -> Option.value ~default (to_bool v) | None -> default

let get_list j k = match member k j with Some (List xs) -> xs | _ -> []
