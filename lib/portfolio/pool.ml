(* One mutex/condition pair guards both the shared queue and the per-worker
   pinned queues.  That single lock is deliberate: jobs here are SAT solves
   (milliseconds to seconds), so queue contention is noise, and one lock
   makes the blocking protocol — workers wait for "my pinned queue, the
   shared queue, or shutdown" — trivially deadlock-free. *)

let wall = Unix.gettimeofday

type job = {
  run : unit -> unit; (* never raises; the future captures the exception *)
  label : string;
  enqueued : float; (* wall clock at submission, for the queue_wait span *)
}

type t = {
  m : Mutex.t;
  cv : Condition.t;
  shared : job Queue.t;
  pinned : job Queue.t array; (* one per worker *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array; (* empty after shutdown *)
  tel : Telemetry.t;
}

let size t = Array.length t.pinned

(* ------------------------------------------------------------------ *)
(* Futures.                                                            *)
(* ------------------------------------------------------------------ *)

type 'a future = {
  fm : Mutex.t;
  fcv : Condition.t;
  mutable settled : ('a, exn) result option;
}

let settle fut r =
  Mutex.protect fut.fm (fun () ->
      fut.settled <- Some r;
      Condition.broadcast fut.fcv)

let await fut =
  Mutex.lock fut.fm;
  while fut.settled = None do
    Condition.wait fut.fcv fut.fm
  done;
  let r = fut.settled in
  Mutex.unlock fut.fm;
  match r with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Workers.                                                            *)
(* ------------------------------------------------------------------ *)

let emit_queue_wait t ~worker ~label ~enqueued =
  if Telemetry.enabled t.tel then
    Telemetry.span_event t.tel "queue_wait" ~dur:(wall () -. enqueued)
      [ ("worker", Telemetry.Sink.Int worker); ("job", Telemetry.Sink.Str label) ]

let worker_loop t i () =
  let rec next () =
    Mutex.lock t.m;
    let rec wait () =
      if not (Queue.is_empty t.pinned.(i)) then Some (Queue.pop t.pinned.(i))
      else if not (Queue.is_empty t.shared) then Some (Queue.pop t.shared)
      else if t.stopping then None
      else begin
        Condition.wait t.cv t.m;
        wait ()
      end
    in
    let job = wait () in
    Mutex.unlock t.m;
    match job with
    | None -> ()
    | Some job ->
      emit_queue_wait t ~worker:i ~label:job.label ~enqueued:job.enqueued;
      job.run ();
      next ()
  in
  next ()

let create ?(telemetry = Telemetry.disabled) ~jobs () =
  let n = max 1 jobs in
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      shared = Queue.create ();
      pinned = Array.init n (fun _ -> Queue.create ());
      stopping = false;
      workers = [||];
      tel = telemetry;
    }
  in
  t.workers <- Array.init n (fun i -> Domain.spawn (worker_loop t i));
  t

let submit ?affinity ?(label = "job") t f =
  let fut = { fm = Mutex.create (); fcv = Condition.create (); settled = None } in
  let run () =
    let r = try Ok (f ()) with e -> Error e in
    settle fut r
  in
  let job = { run; label; enqueued = wall () } in
  Mutex.protect t.m (fun () ->
      if t.stopping then invalid_arg "Pool.submit: pool has been shut down";
      (match affinity with
      | Some i -> Queue.push job t.pinned.(((i mod size t) + size t) mod size t)
      | None -> Queue.push job t.shared);
      (* broadcast, not signal: a pinned job must wake its own worker even
         if another worker got the signal first *)
      Condition.broadcast t.cv);
  fut

let map_list ?label t f xs =
  let futs = List.map (fun x -> submit ?label t (fun () -> f x)) xs in
  (* settle everything before re-raising, so no job outlives the call *)
  let rs =
    List.map (fun fut -> try Ok (await fut) with e -> Error e) futs
  in
  List.map (function Ok v -> v | Error e -> raise e) rs

(* ------------------------------------------------------------------ *)
(* Cancellation tokens.                                                *)
(* ------------------------------------------------------------------ *)

module Token = struct
  type t = bool Atomic.t

  let create () = Atomic.make false

  let cancel t = Atomic.set t true

  let cancelled t = Atomic.get t

  let reset t = Atomic.set t false

  let stop_hook t () = Atomic.get t
end

(* ------------------------------------------------------------------ *)
(* Shutdown.                                                           *)
(* ------------------------------------------------------------------ *)

let shutdown t =
  let workers =
    Mutex.protect t.m (fun () ->
        let w = t.workers in
        t.workers <- [||];
        t.stopping <- true;
        Condition.broadcast t.cv;
        w)
  in
  Array.iter Domain.join workers

let with_pool ?telemetry ~jobs f =
  let t = create ?telemetry ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
