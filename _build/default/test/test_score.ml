(* bmc_score ranking (paper Section 3.2). *)

let test_linear_weighting () =
  let s = Bmc.Score.create () in
  Bmc.Score.update s ~instance:3 ~core_vars:[ 1; 2 ];
  Bmc.Score.update s ~instance:4 ~core_vars:[ 2; 5 ];
  (* bmc_score(x) = sum of instance indices where x appears *)
  Alcotest.(check (float 1e-9)) "var 1" 3.0 (Bmc.Score.score s 1);
  Alcotest.(check (float 1e-9)) "var 2" 7.0 (Bmc.Score.score s 2);
  Alcotest.(check (float 1e-9)) "var 5" 4.0 (Bmc.Score.score s 5);
  Alcotest.(check (float 1e-9)) "absent var" 0.0 (Bmc.Score.score s 9)

let test_recent_cores_weigh_more () =
  let s = Bmc.Score.create () in
  Bmc.Score.update s ~instance:2 ~core_vars:[ 1 ];
  Bmc.Score.update s ~instance:9 ~core_vars:[ 2 ];
  Alcotest.(check bool) "recent core dominates" true (Bmc.Score.score s 2 > Bmc.Score.score s 1)

let test_uniform_weighting () =
  let s = Bmc.Score.create ~weighting:Bmc.Score.Uniform () in
  Bmc.Score.update s ~instance:3 ~core_vars:[ 1 ];
  Bmc.Score.update s ~instance:9 ~core_vars:[ 1; 2 ];
  Alcotest.(check (float 1e-9)) "var 1 counted twice" 2.0 (Bmc.Score.score s 1);
  Alcotest.(check (float 1e-9)) "var 2 counted once" 1.0 (Bmc.Score.score s 2)

let test_last_only_weighting () =
  let s = Bmc.Score.create ~weighting:Bmc.Score.Last_only () in
  Bmc.Score.update s ~instance:3 ~core_vars:[ 1 ];
  Bmc.Score.update s ~instance:4 ~core_vars:[ 2 ];
  Alcotest.(check (float 1e-9)) "old core forgotten" 0.0 (Bmc.Score.score s 1);
  Alcotest.(check (float 1e-9)) "new core kept" 1.0 (Bmc.Score.score s 2)

let test_instance_zero_counts () =
  (* depth-0 instances must still contribute: weight max(instance,1) *)
  let s = Bmc.Score.create () in
  Bmc.Score.update s ~instance:0 ~core_vars:[ 7 ];
  Alcotest.(check bool) "nonzero weight at k=0" true (Bmc.Score.score s 7 > 0.0)

let test_rank_array () =
  let s = Bmc.Score.create () in
  Bmc.Score.update s ~instance:2 ~core_vars:[ 0; 3 ];
  let a = Bmc.Score.rank_array s ~num_vars:3 in
  Alcotest.(check int) "clipped to num_vars" 3 (Array.length a);
  Alcotest.(check (float 1e-9)) "var 0" 2.0 a.(0);
  Alcotest.(check (float 1e-9)) "var 1" 0.0 a.(1);
  Alcotest.(check int) "num_ranked counts var 3 too" 2 (Bmc.Score.num_ranked s)

let prop_scores_monotone_in_updates =
  QCheck.Test.make ~name:"linear scores never decrease across updates" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (list_of_size Gen.(0 -- 5) (int_bound 10)))
    (fun updates ->
      let s = Bmc.Score.create () in
      let ok = ref true in
      List.iteri
        (fun i core_vars ->
          let before = List.map (fun v -> Bmc.Score.score s v) core_vars in
          Bmc.Score.update s ~instance:(i + 1) ~core_vars;
          let after = List.map (fun v -> Bmc.Score.score s v) core_vars in
          if not (List.for_all2 ( <= ) before after) then ok := false)
        updates;
      !ok)

let tests =
  [
    Alcotest.test_case "linear weighting" `Quick test_linear_weighting;
    Alcotest.test_case "recency" `Quick test_recent_cores_weigh_more;
    Alcotest.test_case "uniform weighting" `Quick test_uniform_weighting;
    Alcotest.test_case "last-only weighting" `Quick test_last_only_weighting;
    Alcotest.test_case "instance zero" `Quick test_instance_zero_counts;
    Alcotest.test_case "rank array" `Quick test_rank_array;
    QCheck_alcotest.to_alcotest prop_scores_monotone_in_updates;
  ]
