(* DIMACS CNF solver CLI.

   Exit codes follow the SAT-competition convention: 10 = SAT, 20 = UNSAT,
   0 = unknown (budget exhausted), 2 = input error. *)

(* --trace/--metrics plumbing; the report lands on stderr so the "s ..."
   protocol lines on stdout stay machine-parsable. *)
let setup_telemetry trace_file metrics =
  let agg = if metrics then Some (Telemetry.Sink.aggregate ()) else None in
  let trace_oc =
    Option.map
      (fun path ->
        try open_out path with
        | Sys_error msg ->
          Format.eprintf "satcheck: cannot open trace file: %s@." msg;
          exit 2)
      trace_file
  in
  let sinks =
    Option.to_list (Option.map Telemetry.Sink.of_channel trace_oc)
    @ Option.to_list (Option.map Telemetry.Sink.of_aggregate agg)
  in
  match sinks with
  | [] -> Telemetry.disabled
  | sinks ->
    let telemetry = Telemetry.create (Telemetry.Sink.tee sinks) in
    at_exit (fun () ->
        Telemetry.flush telemetry;
        Option.iter close_out trace_oc;
        Option.iter (Format.eprintf "%a@." Telemetry.Sink.pp_report) agg);
    telemetry

(* DIMACS-signed literals ("3 -7 12") for --assume. *)
let parse_assumptions text =
  String.split_on_char ' ' text
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun tok ->
         match String.trim tok with
         | "" -> None
         | tok -> (
           match int_of_string_opt tok with
           | Some 0 | None ->
             Format.eprintf "satcheck: --assume: %S is not a non-zero DIMACS literal@." tok;
             exit 2
           | Some d ->
             let v = abs d - 1 in
             Some (if d > 0 then Sat.Lit.pos v else Sat.Lit.neg v)))

let run file core core_min stats_flag max_conflicts max_seconds assume drat_file certify
    preprocess inprocess trace_file metrics flight_file =
  let core = core || core_min <> None in
  match
    (try Ok (Sat.Dimacs.parse_file file) with
    | Sat.Dimacs.Parse_error msg -> Error msg
    | Sys_error msg -> Error msg)
  with
  | Error msg ->
    Format.eprintf "satcheck: %s@." msg;
    exit 2
  | Ok cnf ->
    if preprocess && (core || certify || drat_file <> None) then begin
      Format.eprintf
        "satcheck: --preprocess rewrites the clause set and cannot be combined with \
         --core/--certify/--drat@.";
      exit 2
    end;
    let assumptions = match assume with Some text -> parse_assumptions text | None -> [] in
    if assumptions <> [] && (certify || drat_file <> None) then begin
      Format.eprintf
        "satcheck: --assume solves under temporary hypotheses and cannot be combined with \
         --certify/--drat@.";
      exit 2
    end;
    let inprocess_cfg =
      match inprocess with
      | None -> None
      | Some spec -> (
        match Sat.Inprocess.config_of_string spec with
        | Ok cfg -> Some cfg
        | Error msg ->
          Format.eprintf "satcheck: --inprocess: %s@." msg;
          exit 2)
    in
    let work, reconstruct =
      if preprocess then begin
        (* assumption variables must survive elimination: an eliminated
           variable no longer occurs, so assuming it would constrain
           nothing and the answer could differ from the input formula's *)
        let frozen = List.map Sat.Lit.var assumptions in
        let r = Sat.Simplify.preprocess ~frozen cnf in
        Format.eprintf
          "c preprocess: %d vars eliminated, %d clauses subsumed, %d strengthened (%d -> %d \
           clauses)@."
          r.Sat.Simplify.eliminated_vars r.Sat.Simplify.subsumed_clauses
          r.Sat.Simplify.strengthened_clauses (Sat.Cnf.num_clauses cnf)
          (Sat.Cnf.num_clauses r.Sat.Simplify.simplified);
        (r.Sat.Simplify.simplified, r.Sat.Simplify.reconstruct)
      end
      else (cnf, Fun.id)
    in
    let with_drat = drat_file <> None || certify in
    let telemetry = setup_telemetry trace_file metrics in
    let solver = Sat.Solver.create ~with_proof:core ~with_drat ~telemetry work in
    Option.iter
      (fun path ->
        let r = Obs.Recorder.create () in
        Sat.Solver.set_recorder solver r;
        Obs.Recorder.on_sigusr1 r ~path;
        at_exit (fun () ->
            try Obs.Recorder.dump r path
            with Sys_error msg ->
              Format.eprintf "satcheck: cannot write flight recording: %s@." msg))
      flight_file;
    let budget =
      {
        Sat.Solver.max_conflicts;
        max_propagations = None;
        max_seconds;
        stop = None;
      }
    in
    (match inprocess_cfg with
    | Some config ->
      List.iter (fun l -> Sat.Solver.freeze solver (Sat.Lit.var l)) assumptions;
      let ist = Sat.Solver.inprocess ~config solver in
      Format.eprintf "c inprocess: %a@." Sat.Inprocess.pp_stats ist
    | None -> ());
    let outcome = Sat.Solver.solve ~budget ~assumptions solver in
    if stats_flag then Format.eprintf "c %a@." Sat.Stats.pp (Sat.Solver.stats solver);
    (match outcome with
    | Sat.Solver.Sat ->
      Format.printf "s SATISFIABLE@.";
      let model = reconstruct (Sat.Solver.model solver) in
      Format.printf "v";
      Array.iteri
        (fun v b -> Format.printf " %d" (if b then v + 1 else -(v + 1)))
        model;
      Format.printf " 0@.";
      exit 10
    | Sat.Solver.Unsat ->
      Format.printf "s UNSATISFIABLE@.";
      if assumptions <> [] then begin
        (* which hypotheses the refutation actually leaned on (empty when
           the formula is unsatisfiable on its own) *)
        let failed = Sat.Solver.failed_assumptions solver in
        Format.printf "c failed-assumptions";
        List.iter
          (fun l ->
            let d = Sat.Lit.var l + 1 in
            Format.printf " %d" (if Sat.Lit.is_pos l then d else -d))
          failed;
        Format.printf " 0@."
      end;
      (match drat_file with
      | Some path ->
        let oc = open_out path in
        output_string oc (Sat.Checker.to_drat (Sat.Solver.drat_events solver));
        close_out oc;
        Format.printf "c drat proof written to %s@." path
      | None -> ());
      if certify then begin
        match Sat.Checker.check_refutation cnf (Sat.Solver.drat_events solver) with
        | Ok () -> Format.printf "c certified: the refutation passes the independent checker@."
        | Error msg ->
          Format.eprintf "satcheck: REFUTATION REJECTED: %s@." msg;
          exit 2
      end;
      if core then begin
        let ids = Sat.Solver.unsat_core solver in
        Format.printf "c core %d of %d clauses@." (List.length ids) (Sat.Cnf.num_clauses cnf);
        Format.printf "c core-clauses";
        List.iter (fun i -> Format.printf " %d" i) ids;
        Format.printf "@.";
        Format.printf "c core-vars";
        List.iter (fun v -> Format.printf " %d" (v + 1)) (Sat.Solver.core_vars solver);
        Format.printf "@.";
        (match core_min with
        | None -> ()
        | Some n ->
          let budget =
            if n >= 0 then { Sat.Coremin.no_budget with Sat.Coremin.max_solves = Some n }
            else Sat.Coremin.no_budget
          in
          let clauses =
            List.map (fun i -> (i, Array.to_list (Sat.Cnf.get_clause cnf i))) ids
          in
          let kept, st =
            Sat.Coremin.minimise ~budget ~assumptions ~num_vars:(Sat.Cnf.num_vars cnf)
              ~clauses ()
          in
          Format.printf "c core-min %d -> %d clauses (%d solves, %.3fs%s, %s)@."
            st.Sat.Coremin.initial st.Sat.Coremin.final st.Sat.Coremin.solves
            st.Sat.Coremin.seconds
            (if st.Sat.Coremin.minimal then ", minimal" else "")
            (if st.Sat.Coremin.certified then "certified" else "NOT certified");
          Format.printf "c core-min-clauses";
          List.iter (fun i -> Format.printf " %d" i) kept;
          Format.printf "@.")
      end;
      exit 20
    | Sat.Solver.Unknown ->
      Format.printf "s UNKNOWN@.";
      exit 0)

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DIMACS CNF input file.")

let core =
  Arg.(value & flag & info [ "core" ] ~doc:"Log the resolution dependencies and print an unsatisfiable core on UNSAT.")

let core_min =
  Arg.(
    value
    & opt ~vopt:(Some (-1)) (some int) None
    & info [ "core-min" ] ~docv:"N"
        ~doc:"On UNSAT, destructively minimise the extracted core (implies --core): each \
              core clause is guarded by a selector and dropped in turn; the result is \
              re-proved from scratch and certified by the independent checker.  With a \
              value, stop after $(docv) minimisation solver calls (the result is then a \
              correct but possibly non-minimal core); without one, run to a minimal core.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print search statistics to stderr.")

let max_conflicts =
  Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~docv:"N" ~doc:"Abort after $(docv) conflicts.")

let max_seconds =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc:"Abort after $(docv) CPU seconds.")

let assume =
  Arg.(
    value
    & opt (some string) None
    & info [ "assume" ] ~docv:"LITS"
        ~doc:"Solve under temporary hypotheses: space- or comma-separated signed DIMACS \
              literals (e.g. '3 -7').  An UNSAT answer is relative to them; the responsible \
              subset is reported as 'c failed-assumptions' — the incremental interface the \
              BMC session layer drives.")

let drat_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "drat" ] ~docv:"FILE" ~doc:"Write the clausal (DRAT) refutation proof to $(docv) on UNSAT.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"On UNSAT, replay the refutation through the independent RUP checker and fail \
              loudly if it is rejected.")

let preprocess =
  Arg.(
    value & flag
    & info [ "preprocess" ]
        ~doc:"Apply subsumption and bounded variable elimination before solving (models are \
              reconstructed; incompatible with core/proof output).")

let inprocess =
  Arg.(
    value
    & opt ~vopt:(Some "default") (some string) None
    & info [ "inprocess" ] ~docv:"BUDGET"
        ~doc:"Run one proof-aware inprocessing pass (failed-literal probing, subsumption, \
              self-subsuming resolution, bounded variable elimination) before solving.  \
              Assumption variables are frozen automatically, models are reconstructed, and \
              core/certify/drat output stays exact.  $(docv) is a preset (default | light | \
              aggressive) or comma-separated occ=/growth=/probes=/rounds=/ms= overrides.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL telemetry trace to $(docv): solver phase spans, restarts, and \
              per-solve decision-attribution counters.")

let flight_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-recorder" ] ~docv:"FILE"
        ~doc:"Keep a bounded in-memory flight recording (restarts, clause-DB reductions, \
              arena compactions, ordering switches) and dump it to $(docv) as JSONL at \
              exit — or on SIGUSR1.  Render it with bmcprof timeline.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect telemetry in memory and print a phase-breakdown report to stderr when \
              the run finishes.")

let cmd =
  let doc = "CDCL SAT solver with unsatisfiable-core extraction" in
  let info = Cmd.info "satcheck" ~doc in
  Cmd.v info
    Term.(
      const run $ file $ core $ core_min $ stats $ max_conflicts $ max_seconds $ assume
      $ drat_file $ certify $ preprocess $ inprocess $ trace_file $ metrics $ flight_file)

let () = exit (Cmd.eval cmd)
