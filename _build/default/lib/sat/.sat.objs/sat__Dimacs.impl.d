lib/sat/dimacs.ml: Array Cnf Format List Lit Printf String
