(** Search statistics for one solver run.

    "Implications" is the paper's name for unit propagations (Figure 7 plots
    both decisions and implications per unrolling depth). *)

type t = {
  mutable decisions : int;
  mutable decisions_rank : int;
      (** decisions whose variable carried a positive [bmc_score] rank —
          the branch the paper's refined ordering steered (see
          {!Order.decided_by_rank}) *)
  mutable decisions_vsids : int;
      (** decisions taken on VSIDS activity alone (unranked variable, or
          the ordering fell back to pure VSIDS) *)
  mutable propagations : int;  (** implications derived by BCP *)
  mutable conflicts : int;
  mutable restarts : int;
  mutable learned : int;  (** conflict clauses added *)
  mutable deleted : int;  (** conflict clauses removed by reduction *)
  mutable max_decision_level : int;
  mutable heuristic_switches : int;
      (** dynamic mode: times the solver fell back to pure VSIDS *)
  mutable blocker_hits : int;
      (** watcher visits resolved by the blocking literal alone, without
          touching clause memory (see {!Arena.Watch}) *)
  mutable arena_bytes : int;
      (** current clause-arena footprint in bytes (live + not-yet-compacted
          waste); a gauge, so {!add} takes the max *)
  mutable arena_compactions : int;  (** arena garbage collections run *)
  mutable shared_exported : int;
      (** learnt clauses offered to the clause exchange (passed the
          size/LBD caps and the taint filter; see {!Solver.set_share}) *)
  mutable shared_imported : int;
      (** clauses attached from the exchange at solve-start/restart
          boundaries *)
  mutable shared_rejected_tainted : int;
      (** exports withheld because the derivation involved an
          instance-local (activation/auxiliary) literal *)
  mutable shared_throttled : int;
      (** exports withheld by the per-restart export budget (the adaptive
          sharing throttle; see {!Solver.set_share}) *)
  mutable inpr_runs : int;  (** {!Solver.inprocess} invocations *)
  mutable inpr_probes : int;  (** failed-literal probes attempted *)
  mutable inpr_probe_failed : int;  (** probes that yielded a conflict *)
  mutable inpr_satisfied : int;  (** level-0-satisfied clauses removed *)
  mutable inpr_subsumed : int;  (** clauses removed by subsumption *)
  mutable inpr_strengthened : int;  (** self-subsuming resolutions *)
  mutable inpr_eliminated : int;  (** variables eliminated (BVE) *)
  mutable inpr_resolvents : int;  (** clauses added by elimination *)
  mutable inpr_time : float;  (** CPU seconds inside {!Solver.inprocess} *)
  mutable solve_time : float;  (** CPU seconds spent inside {!Solver.solve} *)
  mutable bcp_time : float;
      (** CPU seconds in unit propagation; only accumulated while telemetry
          is enabled (timing the hot path costs clock reads) *)
  mutable analyze_time : float;
      (** CPU seconds in conflict analysis; telemetry-gated like
          [bcp_time] *)
}

val create : unit -> t

val copy : t -> t

val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc] (max for [max_decision_level]
    and [arena_bytes], sums for everything else including the wall-time
    fields). *)

val pp : Format.formatter -> t -> unit
