exception Node_limit

(* Nodes live in growable parallel arrays; ids 0 and 1 are the terminals.
   A terminal's "variable" is max_int so every real variable sits above
   it in the order. *)
type manager = {
  mutable vars : int array;
  mutable los : int array;
  mutable his : int array;
  mutable len : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  node_limit : int;
}

type node = int

type t = { m : manager; n : node }

let check2 a b ctx = if a.m != b.m then invalid_arg ("Bdd." ^ ctx ^ ": mixed managers")

let manager ?(node_limit = 2_000_000) () =
  let m =
    {
      vars = Array.make 1024 max_int;
      los = Array.make 1024 0;
      his = Array.make 1024 0;
      len = 2;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
      node_limit;
    }
  in
  (* terminals: 0 = false, 1 = true *)
  m.vars.(0) <- max_int;
  m.vars.(1) <- max_int;
  m


let var_of m n = m.vars.(n)

let grow m =
  let cap = Array.length m.vars in
  let bigger a init =
    let b = Array.make (2 * cap) init in
    Array.blit a 0 b 0 cap;
    b
  in
  m.vars <- bigger m.vars max_int;
  m.los <- bigger m.los 0;
  m.his <- bigger m.his 0

let mk m v lo hi =
  if lo = hi then lo
  else begin
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      if m.len >= m.node_limit then raise Node_limit;
      if m.len = Array.length m.vars then grow m;
      let n = m.len in
      m.vars.(n) <- v;
      m.los.(n) <- lo;
      m.his.(n) <- hi;
      m.len <- m.len + 1;
      Hashtbl.replace m.unique (v, lo, hi) n;
      n
  end

(* Shannon expansion on the top variable of f, g, h. *)
let rec ite_n m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    match Hashtbl.find_opt m.ite_cache (f, g, h) with
    | Some r -> r
    | None ->
      let v = min (var_of m f) (min (var_of m g) (var_of m h)) in
      let cof n branch =
        if var_of m n = v then if branch then m.his.(n) else m.los.(n) else n
      in
      let hi = ite_n m (cof f true) (cof g true) (cof h true) in
      let lo = ite_n m (cof f false) (cof g false) (cof h false) in
      let r = mk m v lo hi in
      Hashtbl.replace m.ite_cache (f, g, h) r;
      r
  end

let not_n m f = ite_n m f 0 1

let or_n m f g = ite_n m f 1 g

let exists_n m vs b =
  let set = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace set v ()) vs;
  let memo = Hashtbl.create 256 in
  let rec go n =
    if n < 2 then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = var_of m n in
        let lo = go m.los.(n) and hi = go m.his.(n) in
        let r = if Hashtbl.mem set v then or_n m lo hi else mk m v lo hi in
        Hashtbl.replace memo n r;
        r
  in
  go b

let rename_n m f b =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if n < 2 then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = f (var_of m n) in
        if v < 0 then invalid_arg "Bdd.rename: negative target variable";
        let lo = go m.los.(n) and hi = go m.his.(n) in
        (* monotonicity: the renamed variable must stay above both children *)
        let child_min = min (if lo < 2 then max_int else var_of m lo)
            (if hi < 2 then max_int else var_of m hi)
        in
        if v >= child_min then invalid_arg "Bdd.rename: mapping is not order-preserving";
        let r = mk m v lo hi in
        Hashtbl.replace memo n r;
        r
  in
  go b

let restrict_n m v value b =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if n < 2 then n
    else if var_of m n > v then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r =
          if var_of m n = v then if value then m.his.(n) else m.los.(n)
          else mk m (var_of m n) (go m.los.(n)) (go m.his.(n))
        in
        Hashtbl.replace memo n r;
        r
  in
  go b

let eval_n m b assign =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if assign m.vars.(n) then go m.his.(n)
    else go m.los.(n)
  in
  go b

let support_n m b =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      Hashtbl.replace vars m.vars.(n) ();
      go m.los.(n);
      go m.his.(n)
    end
  in
  go b;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Int.compare

let size_n m b =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      go m.los.(n);
      go m.his.(n)
    end
  in
  go b;
  Hashtbl.length seen

let sat_count_n m b ~nvars =
  let memo = Hashtbl.create 64 in
  let level_of n = if n < 2 then nvars else m.vars.(n) in
  let rec go n =
    if n = 0 then 0.0
    else if n = 1 then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let weight child =
          go child *. (2.0 ** float_of_int (level_of child - m.vars.(n) - 1))
        in
        let c = weight m.los.(n) +. weight m.his.(n) in
        Hashtbl.replace memo n c;
        c
  in
  go b *. (2.0 ** float_of_int (level_of b))

let any_sat_n m b =
  if b = 0 then raise Not_found;
  let rec go n acc =
    if n = 1 then List.rev acc
    else if m.los.(n) <> 0 then go m.los.(n) ((m.vars.(n), false) :: acc)
    else go m.his.(n) ((m.vars.(n), true) :: acc)
  in
  go b []

(* ------------------------------------------------------------------ *)
(* Public, manager-carrying surface.                                   *)
(* ------------------------------------------------------------------ *)

let zero m = { m; n = 0 }

let one m = { m; n = 1 }

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  { m; n = mk m i 0 1 }

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  { m; n = mk m i 1 0 }

let ite m f g h =
  check2 f g "ite";
  check2 g h "ite";
  { m; n = ite_n m f.n g.n h.n }

let not_ m f = { m; n = not_n m f.n }

let and_ m f g =
  check2 f g "and_";
  { m; n = ite_n m f.n g.n 0 }

let or_ m f g =
  check2 f g "or_";
  { m; n = ite_n m f.n 1 g.n }

let xor_ m f g =
  check2 f g "xor_";
  { m; n = ite_n m f.n (not_n m g.n) g.n }

let xnor_ m f g =
  check2 f g "xnor_";
  { m; n = ite_n m f.n g.n (not_n m g.n) }

let implies m f g =
  check2 f g "implies";
  { m; n = ite_n m f.n g.n 1 }

let exists m vs b = { m; n = exists_n m vs b.n }

let forall m vs b = { m; n = not_n m (exists_n m vs (not_n m b.n)) }

let rename m f b = { m; n = rename_n m f b.n }

let restrict m v value b = { m; n = restrict_n m v value b.n }

let is_zero b = b.n = 0

let is_one b = b.n = 1

let equal a b =
  check2 a b "equal";
  a.n = b.n

let eval b assign = eval_n b.m b.n assign

let support b = support_n b.m b.n

let size b = size_n b.m b.n

let sat_count b ~nvars = sat_count_n b.m b.n ~nvars

let any_sat b = any_sat_n b.m b.n

let num_nodes m = m.len
