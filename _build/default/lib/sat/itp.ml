type form =
  | Ftrue
  | Ffalse
  | Flit of Lit.t
  | Fand of form * form
  | For of form * form

let fand a b =
  match (a, b) with
  | Ffalse, _ | _, Ffalse -> Ffalse
  | Ftrue, x | x, Ftrue -> x
  | _ -> Fand (a, b)

let for_ a b =
  match (a, b) with
  | Ftrue, _ | _, Ftrue -> Ftrue
  | Ffalse, x | x, Ffalse -> x
  | _ -> For (a, b)

module LitSet = Set.Make (Lit)

let compute ~clause_lits ~antecedents ~final ~side ~b_vars =
  (* memo: clause id -> (literal set, partial interpolant) *)
  let memo : (int, LitSet.t * form) Hashtbl.t = Hashtbl.create 256 in
  let rec node id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
      let r =
        match antecedents id with
        | None ->
          (* leaf *)
          let lits = LitSet.of_list (clause_lits id) in
          let itp =
            match side id with
            | `B -> Ftrue
            | `A ->
              LitSet.fold
                (fun l acc -> if b_vars (Lit.var l) then for_ acc (Flit l) else acc)
                lits Ffalse
          in
          (lits, itp)
        | Some chain -> resolve_chain chain
      in
      Hashtbl.replace memo id r;
      r
  and resolve_chain chain =
    if Array.length chain = 0 then invalid_arg "Itp.compute: empty chain";
    let acc = ref (node chain.(0)) in
    for i = 1 to Array.length chain - 1 do
      let cur_set, cur_itp = !acc in
      let ant_set, ant_itp = node chain.(i) in
      (* the pivot: a literal of the current clause whose negation is in
         the antecedent *)
      let pivot =
        LitSet.fold
          (fun l found ->
            match found with
            | Some _ -> found
            | None -> if LitSet.mem (Lit.negate l) ant_set then Some l else None)
          cur_set None
      in
      match pivot with
      | None -> invalid_arg "Itp.compute: chain step does not resolve"
      | Some l ->
        let set =
          LitSet.union (LitSet.remove l cur_set) (LitSet.remove (Lit.negate l) ant_set)
        in
        let itp =
          if b_vars (Lit.var l) then fand cur_itp ant_itp else for_ cur_itp ant_itp
        in
        acc := (set, itp)
    done;
    !acc
  in
  let set, itp = resolve_chain final in
  if not (LitSet.is_empty set) then
    invalid_arg "Itp.compute: the final chain does not derive the empty clause";
  itp

let rec eval f assign =
  match f with
  | Ftrue -> true
  | Ffalse -> false
  | Flit l -> assign (Lit.var l) = Lit.is_pos l
  | Fand (a, b) -> eval a assign && eval b assign
  | For (a, b) -> eval a assign || eval b assign

let variables f =
  let tbl = Hashtbl.create 16 in
  let rec go = function
    | Ftrue | Ffalse -> ()
    | Flit l -> Hashtbl.replace tbl (Lit.var l) ()
    | Fand (a, b) | For (a, b) ->
      go a;
      go b
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort Int.compare

let rec pp ppf = function
  | Ftrue -> Format.pp_print_string ppf "true"
  | Ffalse -> Format.pp_print_string ppf "false"
  | Flit l -> Lit.pp ppf l
  | Fand (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | For (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
