test/test_order.ml: Alcotest Gen List QCheck QCheck_alcotest Sat
