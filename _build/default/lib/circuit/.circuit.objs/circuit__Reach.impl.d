lib/circuit/reach.ml: Array Eval Format Hashtbl Int List Netlist Queue
