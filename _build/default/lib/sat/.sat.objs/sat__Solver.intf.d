lib/sat/solver.mli: Checker Cnf Format Itp Lit Order Stats
