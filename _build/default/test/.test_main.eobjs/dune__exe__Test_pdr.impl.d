test/test_pdr.ml: Alcotest Bmc Circuit Format List QCheck QCheck_alcotest
