(* Each slot holds a complete immutable entry behind one Atomic cell, so a
   reader sees either the whole entry or the whole previous one — never a
   torn mixture.  The entry carries its own ticket: that is what lets a
   consumer detect both "not yet stored" (older ticket than expected) and
   "lapped" (newer ticket) from a single load. *)

type 'a entry = { e_ticket : int; e_src : int; e_payload : 'a }

type 'a t = {
  cap : int;
  head : int Atomic.t; (* next ticket to claim *)
  slots : 'a entry option Atomic.t array;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create";
  {
    cap = capacity;
    head = Atomic.make 0;
    slots = Array.init capacity (fun _ -> Atomic.make None);
  }

let capacity t = t.cap

let published t = Atomic.get t.head

let occupancy t = min (published t) t.cap

let publish t ~src payload =
  let ticket = Atomic.fetch_and_add t.head 1 in
  Atomic.set t.slots.(ticket mod t.cap) (Some { e_ticket = ticket; e_src = src; e_payload = payload })

type 'a cursor = {
  ring : 'a t;
  mutable next : int; (* next ticket this consumer expects *)
  mutable lost : int;
}

let cursor t = { ring = t; next = max 0 (Atomic.get t.head - t.cap); lost = 0 }

let poll cur f =
  let t = cur.ring in
  let delivered = ref 0 in
  let continue = ref true in
  while !continue do
    if cur.next >= Atomic.get t.head then continue := false
    else
      match Atomic.get t.slots.(cur.next mod t.cap) with
      | None -> continue := false (* ticket claimed, entry not stored yet *)
      | Some e ->
        if e.e_ticket < cur.next then continue := false (* ditto: older lap still in place *)
        else if e.e_ticket > cur.next then begin
          (* tickets in one slot are congruent mod cap, so e_ticket > next
             means the ring lapped us.  Only the tickets below head - cap
             are actually gone: re-sync to the oldest still-readable one
             and re-read from there rather than skipping a whole lap. *)
          let oldest = max cur.next (Atomic.get t.head - t.cap) in
          cur.lost <- cur.lost + (oldest - cur.next);
          cur.next <- oldest
        end
        else begin
          f ~src:e.e_src e.e_payload;
          incr delivered;
          cur.next <- e.e_ticket + 1
        end
  done;
  !delivered

let dropped cur = cur.lost

let lag cur = max 0 (Atomic.get cur.ring.head - cur.next)
