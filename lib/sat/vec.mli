(** Growable arrays.

    A thin, mutable dynamic-array abstraction used throughout the solver for
    trails, watch lists and clause databases.  All operations are amortised
    O(1) unless stated otherwise.  A [dummy] element is required at creation
    time to fill unused slots (the solver never reads it). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh empty vector.  [capacity] pre-allocates storage. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing store if needed. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val clear : 'a t -> unit
(** Logical reset to length 0; storage is retained and stale slots are
    overwritten with the dummy so old values can be collected. *)

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements.  Stale slots are
    overwritten with the dummy so old values can be collected. *)

val shrink_retain : 'a t -> int -> unit
(** Like {!shrink} but without dummy-filling the tail: the stale slots keep
    their old values.  Only safe when retaining them cannot leak memory —
    i.e. for immediate payloads (ints, literals, crefs).  Used on the hot
    paths (trail backtracking, watcher compaction) where the [Array.fill]
    of {!shrink} is pure overhead. *)

val clear_retain : 'a t -> unit
(** Logical reset to length 0 without dummy-filling; same safety caveat as
    {!shrink_retain}.  Reuses capacity across refills. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : dummy:'a -> 'a list -> 'a t

val to_array : 'a t -> 'a array

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order.  O(n). *)
