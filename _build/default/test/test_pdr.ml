(* IC3 / property-directed reachability. *)

let test_tiny_suite_decided () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match (case.expect, (Bmc.Pdr.prove_case case).verdict) with
      | Some Circuit.Generators.Holds, Bmc.Pdr.Proved _ -> ()
      | Some (Circuit.Generators.Fails_at k), Bmc.Pdr.Falsified t ->
        (* IC3 counterexamples are genuine but not necessarily minimal *)
        Alcotest.(check bool)
          (case.name ^ ": cex no shorter than the minimum")
          true
          (t.Bmc.Trace.depth >= k)
      | e, v ->
        Alcotest.failf "%s: expect %s, got %a" case.name
          (match e with
          | Some x -> Format.asprintf "%a" Circuit.Generators.pp_expect x
          | None -> "?")
          Bmc.Pdr.pp_verdict v)
    (Circuit.Generators.tiny_suite ())

let test_proves_non_inductive_properties () =
  (* arbiter mutual exclusion is not k-inductive, yet IC3 strengthens its
     way to an invariant without simple-path constraints *)
  let case = Circuit.Generators.arbiter ~clients:4 () in
  match (Bmc.Pdr.prove_case case).verdict with
  | Bmc.Pdr.Proved { invariant_clauses; _ } ->
    Alcotest.(check bool) "non-trivial invariant" true (invariant_clauses > 0)
  | v -> Alcotest.failf "expected proof, got %a" Bmc.Pdr.pp_verdict v

let test_depth_zero_violation () =
  (* a property false in an initial state *)
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some true) in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl r in
  match (Bmc.Pdr.prove nl ~property).verdict with
  | Bmc.Pdr.Falsified t -> Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Pdr.pp_verdict v

let test_nondet_init () =
  (* with a free initial register the bad state is initial for one choice *)
  let nl = Circuit.Netlist.create () in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:None in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl r in
  match (Bmc.Pdr.prove nl ~property).verdict with
  | Bmc.Pdr.Falsified t -> Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Pdr.pp_verdict v

let test_input_dependent_property () =
  (* P = ¬x for an input x: violated at depth 0 by choosing x *)
  let nl = Circuit.Netlist.create () in
  let x = Circuit.Netlist.input nl "x" in
  let r = Circuit.Netlist.reg nl ~name:"r" ~init:(Some false) in
  Circuit.Netlist.set_next nl r r;
  let property = Circuit.Netlist.not_ nl x in
  match (Bmc.Pdr.prove nl ~property).verdict with
  | Bmc.Pdr.Falsified t -> Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Pdr.pp_verdict v

let test_budget_unknown () =
  let case = Circuit.Generators.parity_pipe ~stages:8 () in
  match (Bmc.Pdr.prove_case ~max_queries:5 case).verdict with
  | Bmc.Pdr.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown on a 5-query budget, got %a" Bmc.Pdr.pp_verdict v

let test_handles_noise_beyond_enumeration () =
  (* IC3 never builds the 2^44-state space; it should prove this quickly *)
  let case = Circuit.Generators.ring ~len:12 ~noise:32 () in
  match (Bmc.Pdr.prove_case case).verdict with
  | Bmc.Pdr.Proved _ -> ()
  | v -> Alcotest.failf "expected proof, got %a" Bmc.Pdr.pp_verdict v

(* Differential: IC3 verdict kind = oracle verdict kind on random circuits;
   counterexamples replay (enforced internally) and are never shorter than
   the oracle's minimum. *)
let prop_pdr_matches_oracle =
  let gen =
    let open QCheck.Gen in
    let* seed = 0 -- 100_000 in
    let* regs = 1 -- 5 in
    let* gates = 1 -- 20 in
    let* inputs = 0 -- 2 in
    return (Circuit.Generators.random ~seed ~regs ~gates ~inputs)
  in
  QCheck.Test.make ~name:"IC3 = oracle on random circuits" ~count:50
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun case ->
      match Circuit.Reach.check case.netlist ~property:case.property with
      | Circuit.Reach.Too_large -> true
      | oracle -> (
        match (oracle, (Bmc.Pdr.prove_case ~max_queries:50_000 case).verdict) with
        | Circuit.Reach.Holds _, Bmc.Pdr.Proved _ -> true
        | Circuit.Reach.Fails_at j, Bmc.Pdr.Falsified t -> t.Bmc.Trace.depth >= j
        | _, Bmc.Pdr.Unknown _ -> true (* inconclusive is never unsound *)
        | (Circuit.Reach.Fails_at _ | Circuit.Reach.Holds _ | Circuit.Reach.Too_large), _ ->
          false))

let tests =
  [
    Alcotest.test_case "tiny suite decided" `Slow test_tiny_suite_decided;
    Alcotest.test_case "non-inductive proved" `Quick test_proves_non_inductive_properties;
    Alcotest.test_case "depth-0 violation" `Quick test_depth_zero_violation;
    Alcotest.test_case "nondet init" `Quick test_nondet_init;
    Alcotest.test_case "input-dependent" `Quick test_input_dependent_property;
    Alcotest.test_case "budget unknown" `Quick test_budget_unknown;
    Alcotest.test_case "noise beyond enumeration" `Quick test_handles_noise_beyond_enumeration;
    QCheck_alcotest.to_alcotest prop_pdr_matches_oracle;
  ]
