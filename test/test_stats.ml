(* Sat.Stats: add / copy independence / printing, including the wall-time
   fields introduced for telemetry. *)

(* naive substring search; also used by Test_telemetry *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let filled () =
  let s = Sat.Stats.create () in
  s.Sat.Stats.decisions <- 10;
  s.propagations <- 200;
  s.conflicts <- 7;
  s.restarts <- 2;
  s.learned <- 6;
  s.deleted <- 1;
  s.max_decision_level <- 5;
  s.heuristic_switches <- 1;
  s.solve_time <- 0.5;
  s.bcp_time <- 0.25;
  s.analyze_time <- 0.125;
  s

let test_create_zeroed () =
  let s = Sat.Stats.create () in
  Alcotest.(check int) "decisions" 0 s.Sat.Stats.decisions;
  Alcotest.(check (float 0.0)) "solve_time" 0.0 s.Sat.Stats.solve_time;
  Alcotest.(check (float 0.0)) "bcp_time" 0.0 s.Sat.Stats.bcp_time;
  Alcotest.(check (float 0.0)) "analyze_time" 0.0 s.Sat.Stats.analyze_time

let test_add () =
  let acc = filled () in
  let s = filled () in
  s.Sat.Stats.max_decision_level <- 9;
  Sat.Stats.add acc s;
  Alcotest.(check int) "decisions sum" 20 acc.Sat.Stats.decisions;
  Alcotest.(check int) "propagations sum" 400 acc.propagations;
  Alcotest.(check int) "conflicts sum" 14 acc.conflicts;
  Alcotest.(check int) "restarts sum" 4 acc.restarts;
  Alcotest.(check int) "learned sum" 12 acc.learned;
  Alcotest.(check int) "deleted sum" 2 acc.deleted;
  Alcotest.(check int) "max level is a max, not a sum" 9 acc.max_decision_level;
  Alcotest.(check int) "switches sum" 2 acc.heuristic_switches;
  Alcotest.(check (float 1e-9)) "solve_time sums" 1.0 acc.solve_time;
  Alcotest.(check (float 1e-9)) "bcp_time sums" 0.5 acc.bcp_time;
  Alcotest.(check (float 1e-9)) "analyze_time sums" 0.25 acc.analyze_time

let test_copy_independent () =
  let s = filled () in
  let c = Sat.Stats.copy s in
  c.Sat.Stats.decisions <- 999;
  c.solve_time <- 99.0;
  Alcotest.(check int) "original decisions untouched" 10 s.Sat.Stats.decisions;
  Alcotest.(check (float 0.0)) "original solve_time untouched" 0.5 s.solve_time;
  Alcotest.(check int) "copy holds its write" 999 c.Sat.Stats.decisions

let test_pp () =
  let str s = Format.asprintf "%a" Sat.Stats.pp s in
  let plain = str (Sat.Stats.create ()) in
  Alcotest.(check bool) "always shows decisions" true (contains plain "decisions=0");
  Alcotest.(check bool) "no time fields when none recorded" false (contains plain "solve=");
  let timed = str (filled ()) in
  Alcotest.(check bool) "shows solve time" true (contains timed "solve=0.500s");
  Alcotest.(check bool) "shows bcp time" true (contains timed "bcp=0.250s");
  Alcotest.(check bool) "shows analyze time" true (contains timed "analyze=0.125s")

let tests =
  [
    Alcotest.test_case "create is zeroed" `Quick test_create_zeroed;
    Alcotest.test_case "add sums fields" `Quick test_add;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "pp renders time fields conditionally" `Quick test_pp;
  ]
