(* bmcprof: analysis toolchain for bmccheck run artefacts.

   Reads the run ledger (--ledger), the JSONL telemetry trace (--trace) and
   the flight-recorder dump (--flight-recorder) that bmccheck writes, and
   turns them into the reports the paper's evaluation wants: per-depth heat
   tables, the ordering-effectiveness report (how many decisions the
   bmc_score rank actually steered), an ASCII racer timeline, a regression
   diff between two runs (or two BENCH snapshots) with pass/warn/fail
   verdicts, and a Prometheus textfile export.

   Exit codes: 0 = ok (diff: no FAIL findings), 1 = diff found a FAIL,
   2 = input error. *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Format.eprintf "bmcprof: %s@." msg;
    exit 2

let load_ledger path =
  match Obs.Ledger.of_string (read_file path) with
  | Ok l -> l
  | Error msg ->
    Format.eprintf "bmcprof: %s: not a ledger: %s@." path msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* report / trace: ledger-backed reports                               *)
(* ------------------------------------------------------------------ *)

let print_reports ledger =
  Format.printf "%a@." Obs.Ledger.pp_depth_table ledger;
  Format.printf "%a@." Obs.Ledger.pp_effectiveness ledger

let run_report path = print_reports (load_ledger path)

(* A trace is the same event stream a --ledger run folds in-process; fold
   it here instead, so a ledger can be reconstructed from any saved trace. *)
let run_trace path =
  let events =
    try Telemetry.Sink.events_of_string (read_file path)
    with Failure msg ->
      Format.eprintf "bmcprof: %s: not a JSONL trace: %s@." path msg;
      exit 2
  in
  if events = [] then begin
    Format.eprintf "bmcprof: %s: empty trace@." path;
    exit 2
  end;
  print_reports (Obs.Ledger.of_events events)

(* ------------------------------------------------------------------ *)
(* timeline: ASCII rendering of a flight-recorder dump                 *)
(* ------------------------------------------------------------------ *)

let kind_char = function
  | Obs.Recorder.Restart -> 'R'
  | Obs.Recorder.Reduce_db -> 'G'
  | Obs.Recorder.Compact -> 'C'
  | Obs.Recorder.Switch -> 'S'
  | Obs.Recorder.Depth -> 'D'
  | Obs.Recorder.Solve -> 'o'
  | Obs.Recorder.Racer_start -> '<'
  | Obs.Recorder.Racer_cancel -> 'x'
  | Obs.Recorder.Racer_win -> '*'
  | Obs.Recorder.Share_export -> 'e'
  | Obs.Recorder.Share_import -> 'i'
  | Obs.Recorder.Inprocess -> 'P'

(* Later events overwrite earlier ones in a cell; rarer, more interesting
   kinds take precedence over bulk ones so a win is never hidden by the
   solver chatter around it. *)
let kind_weight = function
  | Obs.Recorder.Racer_win -> 6
  | Obs.Recorder.Racer_cancel -> 5
  | Obs.Recorder.Depth -> 4
  | Obs.Recorder.Switch -> 4
  | Obs.Recorder.Racer_start -> 3
  | Obs.Recorder.Compact -> 3
  | Obs.Recorder.Reduce_db -> 2
  | Obs.Recorder.Restart -> 2
  | Obs.Recorder.Solve -> 1
  | Obs.Recorder.Share_export -> 1
  | Obs.Recorder.Share_import -> 1
  | Obs.Recorder.Inprocess -> 3

let run_timeline path width =
  let entries =
    try Obs.Recorder.entries_of_string (read_file path)
    with Failure msg ->
      Format.eprintf "bmcprof: %s: not a flight-recorder dump: %s@." path msg;
      exit 2
  in
  match entries with
  | [] -> Format.printf "flight recorder: no events@."
  | entries ->
    let width = max 20 width in
    let t_min =
      List.fold_left (fun a e -> min a e.Obs.Recorder.e_t_us) max_int entries
    and t_max =
      List.fold_left (fun a e -> max a e.Obs.Recorder.e_t_us) min_int entries
    in
    let span = max 1 (t_max - t_min) in
    let doms = List.sort_uniq compare (List.map (fun e -> e.Obs.Recorder.e_dom) entries) in
    let lanes = List.map (fun d -> (d, Bytes.make width '.')) doms in
    let weights = List.map (fun d -> (d, Array.make width 0)) doms in
    List.iter
      (fun e ->
        let col = min (width - 1) ((e.Obs.Recorder.e_t_us - t_min) * width / span) in
        let lane = List.assoc e.Obs.Recorder.e_dom lanes in
        let w = List.assoc e.Obs.Recorder.e_dom weights in
        let kw = kind_weight e.Obs.Recorder.e_kind in
        if kw >= w.(col) then begin
          w.(col) <- kw;
          Bytes.set lane col (kind_char e.Obs.Recorder.e_kind)
        end)
      entries;
    Format.printf "flight recorder: %d events, %d domain(s), %.3fs span@."
      (List.length entries) (List.length doms)
      (float_of_int span /. 1e6);
    List.iter
      (fun (d, lane) ->
        let n =
          List.length (List.filter (fun e -> e.Obs.Recorder.e_dom = d) entries)
        in
        Format.printf "dom %3d |%s| %d ev@." d (Bytes.to_string lane) n)
      lanes;
    Format.printf
      "legend: R restart  G reduce_db  C compact  S switch  D depth  o solve@.";
    Format.printf
      "        < racer_start  * racer_win  x racer_cancel  e share_export  i share_import@.";
    (* the race storyline, spelled out: who started, won, was cancelled *)
    let racers =
      List.filter
        (fun e ->
          match e.Obs.Recorder.e_kind with
          | Obs.Recorder.Racer_start | Obs.Recorder.Racer_win | Obs.Recorder.Racer_cancel ->
            true
          | _ -> false)
        entries
    in
    if racers <> [] then begin
      Format.printf "@.races:@.";
      List.iter
        (fun e ->
          Format.printf "  %8.3fs dom %d %-12s depth=%d slot=%d@."
            (float_of_int (e.Obs.Recorder.e_t_us - t_min) /. 1e6)
            e.Obs.Recorder.e_dom
            (Obs.Recorder.kind_name e.Obs.Recorder.e_kind)
            e.Obs.Recorder.e_a e.Obs.Recorder.e_b)
        racers
    end

(* ------------------------------------------------------------------ *)
(* diff: ledger-vs-ledger or BENCH-vs-BENCH regression gate            *)
(* ------------------------------------------------------------------ *)

(* BENCH_quick.json rows keyed by case name; outcomes gate hard, counters
   gate softly, and +portfolio rows are exempt from counter drift (winners
   are timing-dependent, so their counters are not reproducible). *)
let bench_diff ~warn_pct a b =
  let cases doc =
    List.filter_map
      (fun c ->
        match Obs.Json.member "name" c with
        | Some (Obs.Json.Str name) -> Some (name, c)
        | _ -> None)
      (Obs.Json.get_list doc "cases")
  in
  let ca = cases a and cb = cases b in
  let findings = ref [] in
  let add severity message = findings := { Obs.Ledger.severity; message } :: !findings in
  let pct x y =
    if x = y then 0.0
    else if x = 0 then infinity
    else Float.abs (float_of_int (y - x)) *. 100.0 /. float_of_int x
  in
  List.iter
    (fun (name, ra) ->
      match List.assoc_opt name cb with
      | None -> add Obs.Ledger.Warn (Printf.sprintf "case %s only in baseline" name)
      | Some rb ->
        let sa = Obs.Json.get_str ra "outcomes" and sb = Obs.Json.get_str rb "outcomes" in
        if sa <> sb then
          add Obs.Ledger.Fail
            (Printf.sprintf "case %s: outcomes changed %s -> %s" name sa sb);
        let timing_dependent =
          (* winner identity is a race, so counters drift legitimately *)
          let has_sub sub =
            let n = String.length sub and h = String.length name in
            let rec at i = i + n <= h && (String.sub name i n = sub || at (i + 1)) in
            at 0
          in
          has_sub "+portfolio"
        in
        if not timing_dependent then
          List.iter
            (fun key ->
              let va = Obs.Json.get_int ra key and vb = Obs.Json.get_int rb key in
              let d = pct va vb in
              if d > warn_pct then
                add Obs.Ledger.Warn
                  (Printf.sprintf "case %s: %s drifted %.0f%% (%d -> %d)" name key d va vb))
            [ "decisions"; "conflicts" ])
    ca;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name ca) then
        add Obs.Ledger.Warn (Printf.sprintf "case %s only in candidate" name))
    cb;
  (* the v6 inprocess block: counters are deterministic, so drift beyond the
     warn threshold flags a behaviour change in the boundary simplifier
     (absent in pre-v6 snapshots — nothing to compare then) *)
  (match (Obs.Json.member "inprocess" a, Obs.Json.member "inprocess" b) with
  | Some ia, Some ib ->
    List.iter
      (fun key ->
        let va = Obs.Json.get_int ia key and vb = Obs.Json.get_int ib key in
        let d = pct va vb in
        if d > warn_pct then
          add Obs.Ledger.Warn
            (Printf.sprintf "inprocess: %s drifted %.0f%% (%d -> %d)" key d va vb))
      [ "eliminated"; "subsumed"; "strengthened"; "probe_failed" ]
  | Some _, None ->
    add Obs.Ledger.Warn "inprocess block present in baseline but missing from candidate"
  | None, (Some _ | None) -> ());
  (* the v7 cores block: the minimiser's budget is a deterministic solve
     count, so pre/post totals are reproducible — drift flags a behaviour
     change in the proof/core pipeline, and a candidate whose post-size
     grew past the baseline's loses the refactor's gain outright *)
  (match (Obs.Json.member "cores" a, Obs.Json.member "cores" b) with
  | Some ka, Some kb ->
    List.iter
      (fun key ->
        let va = Obs.Json.get_int ka key and vb = Obs.Json.get_int kb key in
        let d = pct va vb in
        if d > warn_pct then
          add Obs.Ledger.Warn
            (Printf.sprintf "cores: %s drifted %.0f%% (%d -> %d)" key d va vb))
      [ "pre_clauses"; "post_clauses" ];
    let post_a = Obs.Json.get_int ka "post_clauses"
    and post_b = Obs.Json.get_int kb "post_clauses" in
    if post_b > post_a && pct post_a post_b > warn_pct then
      add Obs.Ledger.Warn
        (Printf.sprintf "cores: minimised size grew %d -> %d clauses" post_a post_b);
    if
      Obs.Json.get_bool ~default:true ka "certified"
      && not (Obs.Json.get_bool ~default:true kb "certified")
    then add Obs.Ledger.Fail "cores: candidate lost checker certification"
  | Some _, None ->
    add Obs.Ledger.Warn "cores block present in baseline but missing from candidate"
  | None, (Some _ | None) -> ());
  (* the v8 ordering block: win tallies and rotation counts are
     timing-dependent (which racer wins a round is a race), so values are
     not compared — but the roster itself is code, so a heuristic that
     vanished from the candidate's tallies, or the whole block going
     missing, flags a behaviour change in the ordering laboratory *)
  (match (Obs.Json.member "ordering" a, Obs.Json.member "ordering" b) with
  | Some oa, Some ob ->
    let names blk =
      match Obs.Json.member "wins" blk with
      | Some (Obs.Json.Obj kvs) -> List.map fst kvs
      | Some _ | None -> []
    in
    let nb = names ob in
    List.iter
      (fun n ->
        if not (List.mem n nb) then
          add Obs.Ledger.Warn
            (Printf.sprintf "ordering: heuristic %s dropped from the win tallies" n))
      (names oa)
  | Some _, None ->
    add Obs.Ledger.Warn "ordering block present in baseline but missing from candidate"
  | None, (Some _ | None) -> ());
  List.rev !findings

let run_diff path_a path_b warn_pct =
  let doc path =
    match Obs.Json.of_string (read_file path) with
    | Ok d -> d
    | Error msg ->
      Format.eprintf "bmcprof: %s: %s@." path msg;
      exit 2
  in
  let da = doc path_a and db = doc path_b in
  let schema d = Obs.Json.get_str ~default:"" d "schema" in
  let is_bench d =
    let s = schema d in
    String.length s >= 6 && String.sub s 0 6 = "bench-"
  in
  let findings =
    if is_bench da && is_bench db then bench_diff ~warn_pct da db
    else
      let ledger path d =
        match Obs.Ledger.of_json d with
        | Ok l -> l
        | Error msg ->
          Format.eprintf "bmcprof: %s: not a ledger or bench snapshot: %s@." path msg;
          exit 2
      in
      Obs.Ledger.diff ~warn_pct (ledger path_a da) (ledger path_b db)
  in
  let fails =
    List.length (List.filter (fun f -> f.Obs.Ledger.severity = Obs.Ledger.Fail) findings)
  in
  let warns = List.length findings - fails in
  List.iter (fun f -> Format.printf "%a@." Obs.Ledger.pp_finding f) findings;
  if fails > 0 then begin
    Format.printf "diff: FAIL (%d regression(s), %d warning(s))@." fails warns;
    exit 1
  end
  else if warns > 0 then Format.printf "diff: PASS with %d warning(s)@." warns
  else Format.printf "diff: PASS (no regressions)@."

(* ------------------------------------------------------------------ *)
(* serve: aggregate a bmcserve request ledger                          *)
(* ------------------------------------------------------------------ *)

(* One JSON object per answered request (bmcserve --ledger); this folds
   the stream into the service-level numbers the serve bench gates on:
   throughput, cache hit rate and tail latency. *)
let run_serve path =
  let rows =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.mapi (fun i l ->
           match Obs.Json.of_string l with
           | Ok (Obs.Json.Obj _ as j) -> j
           | Ok _ | Error _ ->
             Format.eprintf "bmcprof: %s: line %d is not a JSON object@." path (i + 1);
             exit 2)
  in
  if rows = [] then begin
    Format.eprintf "bmcprof: %s: empty serve ledger@." path;
    exit 2
  end;
  let n = List.length rows in
  let count pred = List.length (List.filter pred rows) in
  let status s = count (fun r -> Obs.Json.get_str ~default:"" r "status" = s) in
  let cache c = count (fun r -> Obs.Json.get_str ~default:"" r "cache" = c) in
  let ok = status "ok" and shed = status "shed" in
  let draining = status "draining" and errors = status "error" in
  let hits = cache "hit" and warm = cache "warm" and miss = cache "miss" in
  let span_ms =
    List.fold_left
      (fun a r -> max a (Obs.Json.get_float ~default:0.0 r "t_ms"))
      0.0 rows
  in
  let walls =
    List.filter_map
      (fun r ->
        if Obs.Json.get_str ~default:"" r "status" = "ok" then
          Some (Obs.Json.get_float ~default:0.0 r "wall_ms")
        else None)
      rows
    |> List.sort compare |> Array.of_list
  in
  let pctl p =
    if Array.length walls = 0 then 0.0
    else
      let i = int_of_float (ceil (p /. 100.0 *. float_of_int (Array.length walls))) - 1 in
      walls.(max 0 (min (Array.length walls - 1) i))
  in
  Format.printf "serve ledger: %d request(s) over %.1fs@." n (span_ms /. 1e3);
  Format.printf "  answered %d  shed %d  draining %d  error %d@." ok shed draining errors;
  let solved = hits + warm + miss in
  if solved > 0 then
    Format.printf "  cache: %d hit / %d warm / %d miss  (hit rate %.1f%%, warm-or-hit %.1f%%)@."
      hits warm miss
      (100.0 *. float_of_int hits /. float_of_int solved)
      (100.0 *. float_of_int (hits + warm) /. float_of_int solved);
  if span_ms > 0.0 then
    Format.printf "  throughput: %.1f req/s@." (float_of_int n *. 1e3 /. span_ms);
  if Array.length walls > 0 then
    Format.printf "  latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f@."
      (pctl 50.0) (pctl 95.0) (pctl 99.0) walls.(Array.length walls - 1);
  (* per-digest rollup: which circuits the cache actually served warm *)
  let digests = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Obs.Json.member "digest" r with
      | Some (Obs.Json.Str d) ->
        let h, w, m, depth =
          match Hashtbl.find_opt digests d with Some x -> x | None -> (0, 0, 0, 0)
        in
        let c = Obs.Json.get_str ~default:"" r "cache" in
        Hashtbl.replace digests d
          ( (h + if c = "hit" then 1 else 0),
            (w + if c = "warm" then 1 else 0),
            (m + if c = "miss" then 1 else 0),
            max depth (Obs.Json.get_int ~default:0 r "depth") )
      | _ -> ())
    rows;
  if Hashtbl.length digests > 0 then begin
    Format.printf "@.per circuit:@.";
    Hashtbl.fold (fun d v acc -> (d, v) :: acc) digests []
    |> List.sort compare
    |> List.iter (fun (d, (h, w, m, depth)) ->
           Format.printf "  %s  depth<=%-3d  %d hit / %d warm / %d miss@."
             (String.sub d 0 (min 12 (String.length d)))
             depth h w m)
  end

(* ------------------------------------------------------------------ *)
(* prom: Prometheus textfile export                                    *)
(* ------------------------------------------------------------------ *)

let run_prom path output =
  let ledger = load_ledger path in
  match output with
  | Some out ->
    Obs.Prom.write ledger out;
    Format.eprintf "bmcprof: metrics written to %s@." out
  | None -> print_string (Obs.Prom.render ledger)

(* ------------------------------------------------------------------ *)
(* command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let ledger_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"LEDGER" ~doc:"A run ledger written by bmccheck --ledger.")

let warn_pct =
  Arg.(
    value & opt float 25.0
    & info [ "warn-pct" ] ~docv:"PCT"
        ~doc:"Decision/conflict drift (percent) above which the diff warns (default 25).")

let report_cmd =
  let doc = "per-depth heat table and ordering-effectiveness report from a ledger" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run_report $ ledger_arg)

let trace_cmd =
  let doc = "fold a JSONL telemetry trace into a ledger and print its reports" in
  let trace_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"A JSONL trace written by bmccheck --trace.")
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run_trace $ trace_arg)

let timeline_cmd =
  let doc = "ASCII per-domain timeline from a flight-recorder dump" in
  let flight_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FLIGHT"
          ~doc:"A flight-recorder JSONL dump written by bmccheck --flight-recorder.")
  in
  let width =
    Arg.(
      value & opt int 72
      & info [ "width" ] ~docv:"COLS" ~doc:"Timeline width in columns (default 72).")
  in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(const run_timeline $ flight_arg $ width)

let diff_cmd =
  let doc =
    "regression diff between two ledgers or two BENCH snapshots (exit 1 on FAIL)"
  in
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline ledger or BENCH snapshot.") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE" ~doc:"Candidate ledger or BENCH snapshot.") in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run_diff $ a $ b $ warn_pct)

let serve_cmd =
  let doc = "throughput, cache and latency report from a bmcserve request ledger" in
  let serve_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"LEDGER" ~doc:"A JSONL request ledger written by bmcserve --ledger.")
  in
  Cmd.v (Cmd.info "serve" ~doc) Term.(const run_serve $ serve_arg)

let prom_cmd =
  let doc = "render a ledger as a Prometheus textfile-collector document" in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v (Cmd.info "prom" ~doc) Term.(const run_prom $ ledger_arg $ output)

let cmd =
  let doc = "analyse bmccheck run artefacts: ledgers, traces, flight recordings" in
  Cmd.group (Cmd.info "bmcprof" ~doc) [ report_cmd; trace_cmd; timeline_cmd; diff_cmd; serve_cmd; prom_cmd ]

let () = exit (Cmd.eval cmd)
