let () =
  Alcotest.run "refine_order_bmc"
    [
      ("vec", Test_vec.tests);
      ("lit", Test_lit.tests);
      ("cnf", Test_cnf.tests);
      ("dimacs", Test_dimacs.tests);
      ("luby", Test_luby.tests);
      ("order", Test_order.tests);
      ("proof", Test_proof.tests);
      ("solver", Test_solver.tests);
      ("assumptions", Test_assumptions.tests);
      ("checker", Test_checker.tests);
      ("simplify", Test_simplify.tests);
      ("netlist", Test_netlist.tests);
      ("word", Test_word.tests);
      ("eval", Test_eval.tests);
      ("reach", Test_reach.tests);
      ("textio", Test_textio.tests);
      ("generators", Test_generators.tests);
      ("aiger", Test_aiger.tests);
      ("varmap", Test_varmap.tests);
      ("score", Test_score.tests);
      ("unroll", Test_unroll.tests);
      ("trace", Test_trace.tests);
      ("shtrichman", Test_shtrichman.tests);
      ("engine", Test_engine.tests);
      ("incremental", Test_incremental.tests);
      ("induction", Test_induction.tests);
      ("abstraction", Test_abstraction.tests);
      ("bdd", Test_bdd.tests);
      ("symbolic", Test_symbolic.tests);
      ("ltl", Test_ltl.tests);
      ("differential", Test_differential.tests);
      ("pdr", Test_pdr.tests);
      ("interpolation", Test_interpolation.tests);
    ]
