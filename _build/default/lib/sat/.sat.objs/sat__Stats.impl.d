lib/sat/stats.ml: Format
