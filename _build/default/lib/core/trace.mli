(** Counterexample traces.

    When a BMC instance is satisfiable, the satisfying assignment describes
    a length-k path from an initial state to a property violation.  A trace
    packages the parts needed to replay it on the circuit: the initial
    values of nondeterministic registers and the primary-input values at
    every frame.  {!replay} re-simulates the trace and confirms the
    violation — the engine only ever reports replayed traces. *)

type t = {
  depth : int;  (** frame at which the property is violated *)
  init_regs : (Circuit.Netlist.node * bool) list;
      (** initial values of {e all} registers, as chosen by the solver *)
  inputs : (Circuit.Netlist.node * bool) list array;
      (** [inputs.(f)] = primary-input values at frame [f]; length
          [depth + 1] *)
}

val of_model : Unroll.t -> k:int -> model:bool array -> t
(** Extract a trace from a satisfying assignment of the depth-k instance. *)

val replay : t -> Circuit.Netlist.t -> property:Circuit.Netlist.node -> bool
(** [true] iff simulating the trace violates the property at [depth]. *)

val pp : ?netlist:Circuit.Netlist.t -> unit -> Format.formatter -> t -> unit
(** Waveform-style listing; with [netlist], nodes print by name. *)
