type event =
  | Learnt of Lit.t list
  | Imported of Lit.t list
  | Deleted of Lit.t list

(* Replay state.  The original scan-every-clause-to-fixpoint loop is
   quadratic in proof length and made certification of long refutations
   (tens of thousands of learnt clauses) cost minutes where the solves
   themselves cost milliseconds, so the replay keeps two standard pieces of
   checker machinery (the same ones drat-trim uses): a persistent root
   assignment — the unit-propagation fixpoint of the alive clauses, which
   queries stack their candidate on top of — and two watched literals per
   clause, so a query only ever visits clauses whose watch it falsified.
   The clauses themselves stay plain literal arrays re-examined in full at
   each visit: no arena, no blocking literals, no code shared with the
   solver. *)
type clause = {
  lits : Lit.t array; (* normalised at creation; watch moves permute in place *)
  mutable alive : bool;
}

type db = {
  clauses : clause Vec.t;
  mutable watches : int list array; (* Lit.to_index -> ids watching that literal *)
  mutable value : int array; (* var -> 0 unassigned / 1 true / -1 false *)
  units : int Vec.t; (* ids of unit clauses (alive-checked when fired) *)
  by_key : (Lit.t list, int list) Hashtbl.t; (* normalised lits -> live ids, newest first *)
  root_trail : Lit.var Vec.t; (* vars assigned by the persistent root closure *)
  mutable dirty : bool; (* a deletion may have shrunk the closure *)
  mutable root_conflict : bool; (* UP alone refutes the alive clauses *)
}

let clause_key lits = List.sort_uniq Lit.compare lits

let ensure_var db v =
  if v >= Array.length db.value then begin
    let n = max (v + 1) ((2 * Array.length db.value) + 16) in
    let value = Array.make n 0 in
    Array.blit db.value 0 value 0 (Array.length db.value);
    db.value <- value;
    let watches = Array.make (2 * n) [] in
    Array.blit db.watches 0 watches 0 (Array.length db.watches);
    db.watches <- watches
  end

let value_lit db l =
  match db.value.(Lit.var l) with 0 -> 0 | v -> if Lit.is_pos l then v else -v

let assign db queue record l =
  db.value.(Lit.var l) <- (if Lit.is_pos l then 1 else -1);
  record (Lit.var l);
  Vec.push queue l

(* Exhaust the queue.  A literal just made true can only shrink clauses
   watching its negation; everything else is untouched — this is what keeps
   a query's cost proportional to the propagation it causes rather than to
   the size of the clause database.  The watch invariant (a false watch
   implies the other watch is true) survives query undo, because unassigning
   literals never falsifies a watch.  Returns true on conflict. *)
let propagate_queue db queue record =
  let conflict = ref false in
  let head = ref 0 in
  while (not !conflict) && !head < Vec.length queue do
    let l = Vec.get queue !head in
    incr head;
    let false_lit = Lit.negate l in
    let wi = Lit.to_index false_lit in
    let rec go kept = function
      | [] -> db.watches.(wi) <- kept
      | id :: rest ->
        let c = Vec.get db.clauses id in
        if not c.alive then go kept rest (* dead watcher: drop lazily *)
        else begin
          let lits = c.lits in
          if Lit.equal lits.(0) false_lit then begin
            lits.(0) <- lits.(1);
            lits.(1) <- false_lit
          end;
          (* lits.(1) is the falsified watch *)
          if value_lit db lits.(0) = 1 then go (id :: kept) rest
          else begin
            let n = Array.length lits in
            let k = ref 2 in
            while !k < n && value_lit db lits.(!k) = -1 do
              incr k
            done;
            if !k < n then begin
              (* replacement watch found: migrate to its list *)
              lits.(1) <- lits.(!k);
              lits.(!k) <- false_lit;
              let j = Lit.to_index lits.(1) in
              db.watches.(j) <- id :: db.watches.(j);
              go kept rest
            end
            else begin
              match value_lit db lits.(0) with
              | -1 ->
                conflict := true;
                db.watches.(wi) <- List.rev_append kept (id :: rest)
              | 0 ->
                assign db queue record lits.(0);
                go (id :: kept) rest
              | _ -> go (id :: kept) rest
            end
          end
        end
    in
    let ws = db.watches.(wi) in
    db.watches.(wi) <- [];
    go [] ws
  done;
  !conflict

(* Recompute the root closure from scratch: fire every alive unit clause and
   propagate to fixpoint.  Only needed after a deletion that may have
   supported the previous closure.  Starting from the empty assignment the
   watch invariant holds trivially, so stale watches are safe here. *)
let rebuild_root db =
  Vec.iter (fun v -> db.value.(v) <- 0) db.root_trail;
  Vec.clear db.root_trail;
  db.root_conflict <- false;
  let queue = Vec.create ~dummy:(Lit.pos 0) () in
  let record v = Vec.push db.root_trail v in
  let conflict = ref false in
  Vec.iter
    (fun id ->
      if not !conflict then begin
        let c = Vec.get db.clauses id in
        if c.alive then
          match value_lit db c.lits.(0) with
          | 1 -> ()
          | -1 -> conflict := true
          | _ -> assign db queue record c.lits.(0)
      end)
    db.units;
  if not !conflict then conflict := propagate_queue db queue record;
  db.root_conflict <- !conflict;
  db.dirty <- false

let add_clause db lits =
  let key = clause_key lits in
  let lits = Array.of_list key in
  let id = Vec.length db.clauses in
  Vec.push db.clauses { lits; alive = true };
  Array.iter (fun l -> ensure_var db (Lit.var l)) lits;
  let prev = Option.value ~default:[] (Hashtbl.find_opt db.by_key key) in
  Hashtbl.replace db.by_key key (id :: prev);
  let n = Array.length lits in
  let fresh = (not db.dirty) && not db.root_conflict in
  if n = 0 then begin
    if fresh then db.root_conflict <- true
  end
  else if n = 1 then begin
    Vec.push db.units id;
    if fresh then begin
      match value_lit db lits.(0) with
      | 1 -> ()
      | -1 -> db.root_conflict <- true
      | _ ->
        let queue = Vec.create ~dummy:(Lit.pos 0) () in
        let record v = Vec.push db.root_trail v in
        assign db queue record lits.(0);
        if propagate_queue db queue record then db.root_conflict <- true
    end
  end
  else begin
    (* choose watches compatible with the live root closure: two non-false
       literals if possible; a clause unit under the closure fires now and
       watches its (then true) unit literal, keeping the invariant.  When
       the closure is dirty or already refuted any two watches do: the next
       rebuild starts from the empty assignment. *)
    let swap i j =
      let t = lits.(i) in
      lits.(i) <- lits.(j);
      lits.(j) <- t
    in
    if fresh then begin
      let w = ref 0 in
      let k = ref 0 in
      while !w < 2 && !k < n do
        if value_lit db lits.(!k) <> -1 then begin
          swap !w !k;
          incr w
        end;
        incr k
      done;
      if !w = 0 then db.root_conflict <- true
      else if !w = 1 then begin
        match value_lit db lits.(0) with
        | 0 ->
          let queue = Vec.create ~dummy:(Lit.pos 0) () in
          let record v = Vec.push db.root_trail v in
          assign db queue record lits.(0);
          if propagate_queue db queue record then db.root_conflict <- true
        | _ -> ()
      end
    end;
    let w0 = Lit.to_index lits.(0) and w1 = Lit.to_index lits.(1) in
    db.watches.(w0) <- id :: db.watches.(w0);
    db.watches.(w1) <- id :: db.watches.(w1)
  end

(* deleting an absent clause is harmless; duplicates go newest-first.  The
   closure only needs a rebuild if the deleted clause could have fired in
   it: exactly one true literal, the rest false.  A clause with two or more
   non-false literals never propagated anything. *)
let delete_clause db lits =
  let key = clause_key lits in
  match Hashtbl.find_opt db.by_key key with
  | Some (id :: rest) ->
    (Vec.get db.clauses id).alive <- false;
    Hashtbl.replace db.by_key key rest;
    if not db.dirty then
      if db.root_conflict then db.dirty <- true
      else begin
        let true_ = ref 0 and nonfalse = ref 0 in
        List.iter
          (fun l ->
            match value_lit db l with
            | 1 ->
              incr true_;
              incr nonfalse
            | 0 -> incr nonfalse
            | _ -> ())
          key;
        if !true_ = 1 && !nonfalse = 1 then db.dirty <- true
      end
  | Some [] | None -> ()

(* Reverse unit propagation: assume the negation of every literal of
   [clause] on top of the persistent root closure; propagate units; succeed
   iff a conflict appears.  Only the query's own assignments are undone. *)
let rup db clause =
  List.iter (fun l -> ensure_var db (Lit.var l)) clause;
  if db.dirty then rebuild_root db;
  if db.root_conflict then true
  else begin
    let conflict = ref false in
    let trail = ref [] in
    let queue = Vec.create ~dummy:(Lit.pos 0) () in
    let record v = trail := v :: !trail in
    (* the negated clause seeds the assignment; a clause with complementary
       literals, or one with a root-true literal, is trivially RUP *)
    List.iter
      (fun l ->
        if not !conflict then
          match value_lit db l with
          | 1 -> conflict := true (* already true: ¬C inconsistent *)
          | -1 -> ()
          | _ -> assign db queue record (Lit.negate l))
      clause;
    if not !conflict then conflict := propagate_queue db queue record;
    List.iter (fun v -> db.value.(v) <- 0) !trail;
    !conflict
  end

let check_refutation cnf events =
  let nv = max 16 (Cnf.num_vars cnf) in
  let db =
    {
      clauses = Vec.create ~dummy:{ lits = [||]; alive = false } ();
      watches = Array.make (2 * nv) [];
      value = Array.make nv 0;
      units = Vec.create ~dummy:0 ();
      by_key = Hashtbl.create 256;
      root_trail = Vec.create ~dummy:0 ();
      dirty = false;
      root_conflict = false;
    }
  in
  (* duplicate literals would defeat the unit test in [rup]; tautologies are
     harmless but may as well be normalised too (add_clause sorts) *)
  Cnf.iter_clauses (fun _ c -> add_clause db (Array.to_list c)) cnf;
  let refuted = ref false in
  let step i event =
    match event with
    | Learnt lits ->
      if !refuted then Ok () (* anything after the empty clause is moot *)
      else if rup db lits then begin
        if lits = [] then refuted := true;
        add_clause db lits;
        Ok ()
      end
      else
        Error
          (Printf.sprintf "step %d: learnt clause {%s} is not a RUP consequence" i
             (String.concat ", " (List.map (fun l -> string_of_int (Lit.to_dimacs l)) lits)))
    | Imported lits ->
      (* An import crosses the trust boundary: the clause was derived by a
         sibling solver over the same shared formula, so it is sound there
         but not RUP-derivable from this solver's clauses alone.  The
         checker admits it as an axiom; certifying the {e sibling's} proof
         is the sibling's checker's job. *)
      if not !refuted then add_clause db lits;
      Ok ()
    | Deleted lits ->
      delete_clause db lits;
      Ok ()
  in
  let rec walk i = function
    | [] -> if !refuted then Ok () else Error "proof does not derive the empty clause"
    | e :: rest -> (
      match step i e with
      | Ok () -> walk (i + 1) rest
      | Error _ as err -> err)
  in
  walk 0 events

let to_drat events =
  let buf = Buffer.create 1024 in
  if List.exists (function Imported _ -> true | Learnt _ | Deleted _ -> false) events
  then
    Buffer.add_string buf
      "c trust boundary: 'i'-prefixed clauses were imported from sibling solvers \
       over the same formula; they are admitted as axioms, not RUP-checked here\n";
  List.iter
    (fun event ->
      let lits, prefix =
        match event with Learnt l -> (l, "") | Imported l -> (l, "i ") | Deleted l -> (l, "d ")
      in
      Buffer.add_string buf prefix;
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) lits;
      Buffer.add_string buf "0\n")
    events;
  Buffer.contents buf

let of_drat text =
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then None
    else begin
      let prefixed p = String.length line >= 2 && String.sub line 0 2 = p in
      let deleted = prefixed "d " in
      let imported = prefixed "i " in
      let body =
        if deleted || imported then String.sub line 2 (String.length line - 2) else line
      in
      let nums =
        String.split_on_char ' ' body
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match int_of_string_opt s with
               | Some n -> n
               | None -> failwith (Printf.sprintf "Checker.of_drat: bad token %S" s))
      in
      match List.rev nums with
      | 0 :: rev_lits ->
        let lits = List.rev_map Lit.of_dimacs rev_lits in
        Some
          (if deleted then Deleted lits
           else if imported then Imported lits
           else Learnt lits)
      | _ -> failwith "Checker.of_drat: missing terminating 0"
    end
  in
  String.split_on_char '\n' text |> List.filter_map parse_line
