(* Internal representation is negation normal form: negation lives only in
   the atoms' phase, so the bounded translation needs no negative cases. *)
type formula =
  | Const of bool
  | Atom of Circuit.Netlist.node * bool (* phase: true = positive *)
  | And of formula * formula
  | Or of formula * formula
  | X of formula
  | U of formula * formula
  | R of formula * formula

let atom n =
  if n < 0 then invalid_arg "Ltl.atom: negative node";
  Atom (n, true)

let rec not_ = function
  | Const b -> Const (not b)
  | Atom (n, phase) -> Atom (n, not phase)
  | And (a, b) -> Or (not_ a, not_ b)
  | Or (a, b) -> And (not_ a, not_ b)
  | X a -> X (not_ a)
  | U (a, b) -> R (not_ a, not_ b)
  | R (a, b) -> U (not_ a, not_ b)

let and_ a b =
  match (a, b) with
  | Const false, _ | _, Const false -> Const false
  | Const true, x | x, Const true -> x
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | Const true, _ | _, Const true -> Const true
  | Const false, x | x, Const false -> x
  | _ -> Or (a, b)

let implies a b = or_ (not_ a) b

let next a = X a

let until a b = U (a, b)

let release a b = R (a, b)

let eventually a = U (Const true, a)

let always a = R (Const false, a)

let pp ?netlist () ppf f =
  let name n =
    match netlist with
    | Some nl -> (
      match Circuit.Netlist.name_of nl n with Some s -> s | None -> Printf.sprintf "n%d" n)
    | None -> Printf.sprintf "n%d" n
  in
  let rec go ppf = function
    | Const b -> Format.pp_print_bool ppf b
    | Atom (n, true) -> Format.pp_print_string ppf (name n)
    | Atom (n, false) -> Format.fprintf ppf "!%s" (name n)
    | And (a, b) -> Format.fprintf ppf "(%a & %a)" go a go b
    | Or (a, b) -> Format.fprintf ppf "(%a | %a)" go a go b
    | X a -> Format.fprintf ppf "X %a" go a
    | U (Const true, b) -> Format.fprintf ppf "F %a" go b
    | U (a, b) -> Format.fprintf ppf "(%a U %a)" go a go b
    | R (Const false, b) -> Format.fprintf ppf "G %a" go b
    | R (a, b) -> Format.fprintf ppf "(%a R %a)" go a go b
  in
  go ppf f

exception Parse_error of string

(* Recursive-descent parser over a simple token stream. *)
let parse nl text =
  let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt in
  let n = String.length text in
  let pos = ref 0 in
  let peek () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t') do
      incr pos
    done;
    if !pos < n then Some text.[!pos] else None
  in
  let ident () =
    let start = !pos in
    while
      !pos < n
      && (match text.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
    do
      incr pos
    done;
    String.sub text start (!pos - start)
  in
  (* a keyword is only a keyword when not glued to identifier characters *)
  let try_keyword kw =
    let save = !pos in
    match peek () with
    | Some c when c = kw.[0] ->
      let id = ident () in
      if id = kw then true
      else begin
        pos := save;
        false
      end
    | Some _ | None -> false
  in
  let expect c =
    match peek () with
    | Some d when d = c -> incr pos
    | Some d -> fail "expected '%c', found '%c' at offset %d" c d !pos
    | None -> fail "expected '%c', found end of input" c
  in
  let rec formula () = imp ()
  and imp () =
    let lhs = until_level () in
    match peek () with
    | Some '-' ->
      incr pos;
      expect '>';
      implies lhs (imp ())
    | Some _ | None -> lhs
  and until_level () =
    let lhs = disj () in
    if try_keyword "U" then until lhs (until_level ())
    else if try_keyword "R" then release lhs (until_level ())
    else lhs
  and disj () =
    let lhs = ref (conj ()) in
    let rec more () =
      match peek () with
      | Some '|' ->
        incr pos;
        lhs := or_ !lhs (conj ());
        more ()
      | Some _ | None -> ()
    in
    more ();
    !lhs
  and conj () =
    let lhs = ref (unary ()) in
    let rec more () =
      match peek () with
      | Some '&' ->
        incr pos;
        lhs := and_ !lhs (unary ());
        more ()
      | Some _ | None -> ()
    in
    more ();
    !lhs
  and unary () =
    match peek () with
    | Some '!' ->
      incr pos;
      not_ (unary ())
    | Some 'G' when try_keyword "G" -> always (unary ())
    | Some 'F' when try_keyword "F" -> eventually (unary ())
    | Some 'X' when try_keyword "X" -> next (unary ())
    | Some _ | None -> primary ()
  and primary () =
    match peek () with
    | Some '(' ->
      incr pos;
      let f = formula () in
      expect ')';
      f
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> (
      let id = ident () in
      match id with
      | "" -> fail "expected a formula at offset %d" !pos
      | "true" -> Const true
      | "false" -> Const false
      | name -> (
        match Circuit.Netlist.find nl name with
        | Some node -> atom node
        | None -> fail "unknown signal %S" name))
    | Some c -> fail "unexpected character '%c' at offset %d" c !pos
    | None -> fail "unexpected end of input"
  in
  let f = formula () in
  (match peek () with
  | None -> ()
  | Some c -> fail "trailing input starting with '%c' at offset %d" c !pos);
  f

let rec atoms acc = function
  | Const _ -> acc
  | Atom (n, _) -> n :: acc
  | And (a, b) | Or (a, b) | U (a, b) | R (a, b) -> atoms (atoms acc a) b
  | X a -> atoms acc a

(* ------------------------------------------------------------------ *)
(* CNF-level encoding.                                                 *)
(* ------------------------------------------------------------------ *)

type lc =
  | L of Sat.Lit.t
  | C of bool

(* The witness-shape encoding is instance-local: auxiliaries and clauses go
   through the session, which guards them behind the instance's activation
   literal under the persistent policy and retires them at the next depth. *)
type enc_ctx = {
  session : Session.t;
  k : int;
}

let mk_and ctx a b =
  match (a, b) with
  | C false, _ | _, C false -> C false
  | C true, x | x, C true -> x
  | L la, L lb ->
    let v = Session.fresh_lit ctx.session in
    Session.constrain ctx.session [ Sat.Lit.negate v; la ];
    Session.constrain ctx.session [ Sat.Lit.negate v; lb ];
    Session.constrain ctx.session [ v; Sat.Lit.negate la; Sat.Lit.negate lb ];
    L v

let mk_or ctx a b =
  match (a, b) with
  | C true, _ | _, C true -> C true
  | C false, x | x, C false -> x
  | L la, L lb ->
    let v = Session.fresh_lit ctx.session in
    Session.constrain ctx.session [ v; Sat.Lit.negate la ];
    Session.constrain ctx.session [ v; Sat.Lit.negate lb ];
    Session.constrain ctx.session [ Sat.Lit.negate v; la; lb ];
    L v

let atom_lit ctx node phase i =
  let v = Session.var_of ctx.session ~node ~frame:i in
  L (if phase then Sat.Lit.pos v else Sat.Lit.neg v)

(* The without-loop (pessimistic) translation. *)
let encode_noloop ctx psi =
  let memo : (formula * int, lc) Hashtbl.t = Hashtbl.create 64 in
  let rec enc f i =
    match Hashtbl.find_opt memo (f, i) with
    | Some v -> v
    | None ->
      let v =
        match f with
        | Const b -> C b
        | Atom (n, phase) -> atom_lit ctx n phase i
        | And (a, b) -> mk_and ctx (enc a i) (enc b i)
        | Or (a, b) -> mk_or ctx (enc a i) (enc b i)
        | X a -> if i < ctx.k then enc a (i + 1) else C false
        | U (a, b) ->
          let tail = if i < ctx.k then enc f (i + 1) else C false in
          mk_or ctx (enc b i) (mk_and ctx (enc a i) tail)
        | R (a, b) ->
          (* without a loop the release must trigger before the end *)
          let tail = if i < ctx.k then enc f (i + 1) else C false in
          mk_and ctx (enc b i) (mk_or ctx (enc a i) tail)
      in
      Hashtbl.replace memo (f, i) v;
      v
  in
  enc psi 0

(* The (k,l)-loop translation, with the second-lap auxiliaries for the
   U/R fixpoints. *)
let encode_loop ctx psi ~l =
  let memo : (formula * int, lc) Hashtbl.t = Hashtbl.create 64 in
  let aux_memo : (formula * int, lc) Hashtbl.t = Hashtbl.create 64 in
  let succ i = if i < ctx.k then i + 1 else l in
  (* second lap: plain unrolling from j to k, stopping pessimistically *)
  let rec enc_aux f j =
    match Hashtbl.find_opt aux_memo (f, j) with
    | Some v -> v
    | None ->
      let v =
        match f with
        | U (a, b) ->
          let tail = if j < ctx.k then enc_aux f (j + 1) else C false in
          mk_or ctx (enc b j) (mk_and ctx (enc a j) tail)
        | R (a, b) ->
          let tail = if j < ctx.k then enc_aux f (j + 1) else C true in
          mk_and ctx (enc b j) (mk_or ctx (enc a j) tail)
        | Const _ | Atom _ | And _ | Or _ | X _ -> enc f j
      in
      Hashtbl.replace aux_memo (f, j) v;
      v
  and enc f i =
    match Hashtbl.find_opt memo (f, i) with
    | Some v -> v
    | None ->
      let v =
        match f with
        | Const b -> C b
        | Atom (n, phase) -> atom_lit ctx n phase i
        | And (a, b) -> mk_and ctx (enc a i) (enc b i)
        | Or (a, b) -> mk_or ctx (enc a i) (enc b i)
        | X a -> enc a (succ i)
        | U (a, b) ->
          let tail = if i < ctx.k then enc f (i + 1) else enc_aux f l in
          mk_or ctx (enc b i) (mk_and ctx (enc a i) tail)
        | R (a, b) ->
          let tail = if i < ctx.k then enc f (i + 1) else enc_aux f l in
          mk_and ctx (enc b i) (mk_or ctx (enc a i) tail)
      in
      Hashtbl.replace memo (f, i) v;
      v
  in
  enc psi 0

(* loop_l: the successor of state k equals state l, register by register. *)
let loop_literal ctx regs ~l =
  List.fold_left
    (fun acc r ->
      let a = Sat.Lit.pos (Session.var_of ctx.session ~node:r ~frame:(ctx.k + 1)) in
      let b = Sat.Lit.pos (Session.var_of ctx.session ~node:r ~frame:l) in
      let e = Session.fresh_lit ctx.session in
      Session.constrain ctx.session [ Sat.Lit.negate e; Sat.Lit.negate a; b ];
      Session.constrain ctx.session [ Sat.Lit.negate e; a; Sat.Lit.negate b ];
      Session.constrain ctx.session [ e; a; b ];
      Session.constrain ctx.session [ e; Sat.Lit.negate a; Sat.Lit.negate b ];
      mk_and ctx acc (L e))
    (C true) regs

(* ------------------------------------------------------------------ *)
(* Concrete lasso evaluation (the validation oracle).                  *)
(* ------------------------------------------------------------------ *)

let holds_on_lasso nl psi ~init ~inputs ~loop_start =
  let sim = Circuit.Eval.compile nl in
  let k = Array.length inputs - 1 in
  let resolve r = match List.assoc_opt r init with Some b -> b | None -> false in
  let input_fun ~cycle node =
    if cycle <= k then
      match List.assoc_opt node inputs.(cycle) with Some b -> b | None -> false
    else false
  in
  let frames = Array.of_list (Circuit.Eval.run sim ~resolve ~inputs:input_fun ~cycles:(k + 1) ()) in
  let value node i = Circuit.Eval.value frames.(i) node in
  let memo = Hashtbl.create 64 in
  let aux_memo = Hashtbl.create 64 in
  match loop_start with
  | None ->
    let rec ev f i =
      match Hashtbl.find_opt memo (f, i) with
      | Some v -> v
      | None ->
        let v =
          match f with
          | Const b -> b
          | Atom (n, phase) -> value n i = phase
          | And (a, b) -> ev a i && ev b i
          | Or (a, b) -> ev a i || ev b i
          | X a -> i < k && ev a (i + 1)
          | U (a, b) -> ev b i || (ev a i && i < k && ev f (i + 1))
          | R (a, b) -> ev b i && (ev a i || (i < k && ev f (i + 1)))
        in
        Hashtbl.replace memo (f, i) v;
        v
    in
    ev psi 0
  | Some l ->
    let succ i = if i < k then i + 1 else l in
    let rec ev_aux f j =
      match Hashtbl.find_opt aux_memo (f, j) with
      | Some v -> v
      | None ->
        let v =
          match f with
          | U (a, b) -> ev b j || (ev a j && j < k && ev_aux f (j + 1))
          | R (a, b) -> ev b j && (ev a j || j >= k || ev_aux f (j + 1))
          | Const _ | Atom _ | And _ | Or _ | X _ -> ev f j
        in
        Hashtbl.replace aux_memo (f, j) v;
        v
    and ev f i =
      match Hashtbl.find_opt memo (f, i) with
      | Some v -> v
      | None ->
        let v =
          match f with
          | Const b -> b
          | Atom (n, phase) -> value n i = phase
          | And (a, b) -> ev a i && ev b i
          | Or (a, b) -> ev a i || ev b i
          | X a -> ev a (succ i)
          | U (a, b) -> ev b i || (ev a i && if i < k then ev f (i + 1) else ev_aux f l)
          | R (a, b) -> ev b i && (ev a i || if i < k then ev f (i + 1) else ev_aux f l)
        in
        Hashtbl.replace memo (f, i) v;
        v
    in
    ev psi 0

(* ------------------------------------------------------------------ *)
(* The search loop.                                                    *)
(* ------------------------------------------------------------------ *)

type witness = {
  depth : int;
  loop_start : int option;
  trace : Trace.t;
}

type verdict =
  | Falsified of witness
  | Bounded_pass of int
  | Aborted of int

type result = {
  verdict : verdict;
  per_depth : Engine.depth_stat list;
  total_time : float;
}

(* Verify the lasso shape of an extracted witness: simulating one cycle
   past frame k must land back on frame l's register values. *)
let lasso_closes nl witness =
  match witness.loop_start with
  | None -> true
  | Some l ->
    let sim = Circuit.Eval.compile nl in
    let resolve r =
      match List.assoc_opt r witness.trace.Trace.init_regs with Some b -> b | None -> false
    in
    let input_fun ~cycle node =
      if cycle < Array.length witness.trace.Trace.inputs then
        match List.assoc_opt node witness.trace.Trace.inputs.(cycle) with
        | Some b -> b
        | None -> false
      else false
    in
    let rec advance st i =
      let frame, st' = Circuit.Eval.cycle sim st ~inputs:(fun n -> input_fun ~cycle:i n) in
      if i = witness.depth then (frame, st')
      else advance st' (i + 1)
    in
    let rec state_at st i target =
      if i = target then st
      else
        let _, st' = Circuit.Eval.cycle sim st ~inputs:(fun n -> input_fun ~cycle:i n) in
        state_at st' (i + 1) target
    in
    let initial = Circuit.Eval.initial ~resolve sim in
    let _, after_k = advance initial 0 in
    let at_l = state_at initial 0 l in
    List.for_all
      (fun r -> Circuit.Eval.reg_value sim after_k r = Circuit.Eval.reg_value sim at_l r)
      (Circuit.Netlist.regs nl)

let check ?(config = Engine.default_config) ?(policy = Session.Persistent) netlist psi_property
    =
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ltl.check: " ^ msg));
  List.iter
    (fun n ->
      if n < 0 || n >= Circuit.Netlist.num_nodes netlist then
        invalid_arg "Ltl.check: formula atom is not a node of the netlist")
    (atoms [] psi_property);
  (* we search for witnesses of the negation *)
  let psi = not_ psi_property in
  (* COI reduction is meaningless against the dummy property node; the whole
     netlist is encoded, as the seed engine did. *)
  let cfg = { config with Session.coi = false } in
  let session = Session.create ~policy cfg netlist ~property:0 in
  let regs = Circuit.Netlist.regs netlist in
  (* every instance re-reads the formula atoms at frames 0..k and the
     registers at all frames (loop closing), so those variables must
     survive any depth-boundary elimination *)
  Session.freeze_nodes session (atoms regs psi);
  let per_depth = ref [] in
  let start = Sys.time () in
  let finish verdict =
    {
      verdict;
      per_depth = List.rev !per_depth;
      total_time = Sys.time () -. start;
    }
  in
  let rec loop k =
    if k > cfg.Session.max_depth then finish (Bounded_pass cfg.Session.max_depth)
    else begin
      (* the lasso encoding needs the loop-closing successor state k+1 *)
      Session.begin_instance ~frames:(k + 1) session ~k;
      let ctx = { session; k } in
      let no_loop = encode_noloop ctx psi in
      let loop_lits =
        List.init (k + 1) (fun l ->
            let guard = loop_literal ctx regs ~l in
            (l, guard, mk_and ctx guard (encode_loop ctx psi ~l)))
      in
      let top =
        List.fold_left (fun acc (_, _, d) -> mk_or ctx acc d) no_loop loop_lits
      in
      (match top with
      | C true -> () (* trivially witnessed; the solver will report SAT *)
      | C false -> Session.constrain session [] (* no witness shape possible *)
      | L lit -> Session.constrain session [ lit ]);
      let stat = Session.solve_instance session in
      per_depth := stat :: !per_depth;
      match stat.Session.outcome with
      | Sat.Solver.Sat ->
        let model = Session.model session in
        let lit_true = function
          | C b -> b
          | L lit ->
            let v = Sat.Lit.var lit in
            v < Array.length model && model.(v) = Sat.Lit.is_pos lit
        in
        let loop_start =
          (* prefer the finite (informative-prefix) witness when the model
             satisfies it; fall back to whichever lasso disjunct is true *)
          if lit_true no_loop then None
          else
            List.find_map
              (fun (l, guard, d) -> if lit_true guard && lit_true d then Some l else None)
              loop_lits
        in
        let trace = Session.trace session in
        let witness = { depth = k; loop_start; trace } in
        let confirmed =
          lasso_closes netlist witness
          && holds_on_lasso netlist psi ~init:trace.Trace.init_regs
               ~inputs:trace.Trace.inputs ~loop_start
        in
        if not confirmed then
          failwith
            (Printf.sprintf "Ltl.check: witness at depth %d failed validation (internal error)"
               k);
        finish (Falsified witness)
      | Sat.Solver.Unsat -> loop (k + 1)
      | Sat.Solver.Unknown -> finish (Aborted k)
    end
  in
  loop 0
