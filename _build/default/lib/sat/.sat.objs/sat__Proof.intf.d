lib/sat/proof.mli:
