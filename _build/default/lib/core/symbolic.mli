(** Symbolic (BDD-based) invariant checking.

    The paper's opening sentence frames BMC as "a complement to model
    checking based on Binary Decision Diagrams"; this module is the other
    half of that sentence, so the complement relation itself can be
    demonstrated (see the [complement] benchmark artefact).

    Classic forward reachability: present-state and next-state variables
    interleaved in the BDD order, a monolithic transition relation
    [⋀ᵢ (s'ᵢ ↔ fᵢ(s, x))], breadth-first image computation from the
    initial states, and a frontier-based loop that reports the exact depth
    of the first violation — the same semantics as {!Circuit.Reach} and
    the BMC engines, so all three cross-validate.

    Like {!Circuit.Reach}, the check first projects the circuit onto the
    property's cone of influence. *)

type verdict =
  | Holds of { diameter : int }
      (** invariant; [diameter] = BFS depth of the reachable cone states *)
  | Fails_at of int  (** shortest counterexample depth *)
  | Blowup of { iterations : int; nodes : int }
      (** the BDD manager hit its node limit after completing this many
          image steps *)

val check :
  ?node_limit:int -> Circuit.Netlist.t -> property:Circuit.Netlist.node -> verdict
(** [check nl ~property] runs the fixpoint.  [node_limit] (default
    2_000_000) bounds the BDD manager.
    @raise Invalid_argument if the netlist does not validate. *)

val equal_verdict : verdict -> verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
