(* The classic per-depth-rebuild driver, now a thin façade: the loop,
   configuration and statistics all live in Session; this module pins the
   Fresh policy (a new solver over a snapshot instance at every depth) and
   re-exports the shared types under their historical names. *)

type custom = Session.custom = {
  c_name : string;
  c_uses_cores : bool;
  c_order : Unroll.t -> Score.t -> k:int -> Sat.Order.mode;
  c_hooks : (Unroll.t -> Score.t -> solver:Sat.Solver.t -> Sat.Solver.hooks) option;
}

type mode = Session.mode =
  | Standard
  | Static
  | Dynamic
  | Shtrichman
  | Custom of custom

type core_mode = Session.core_mode =
  | Core_fast
  | Core_exact
  | Core_minimal

type config = Session.config = {
  mode : mode;
  weighting : Score.weighting;
  coi : bool;
  budget : Sat.Solver.budget;
  max_depth : int;
  collect_cores : bool;
  core_mode : core_mode;
  coremin_budget : Sat.Coremin.budget;
  restart_base : int option;
  inprocess : Sat.Inprocess.config option;
  telemetry : Telemetry.t;
  recorder : Obs.Recorder.t option;
}

let default_config = Session.default_config

let config = Session.make_config

type depth_stat = Session.depth_stat = {
  depth : int;
  mode : mode;
  outcome : Sat.Solver.outcome;
  decisions : int;
  dec_rank : int;
  dec_vsids : int;
  implications : int;
  conflicts : int;
  core_size : int;
  core_var_count : int;
  core_new : int;
  core_dropped : int;
  core_pre : int;
  coremin_time : float;
  coremin_certified : bool;
  switched : bool;
  time : float;
  build_time : float;
  bcp_time : float;
  cdg_time : float;
  inpr_elim : int;
  inpr_subsumed : int;
  inpr_strengthened : int;
  inpr_probe_failed : int;
  inpr_time : float;
}

let emit_depth_event = Session.emit_depth_event

type verdict = Session.verdict =
  | Falsified of Trace.t
  | Bounded_pass of int
  | Aborted of int

type result = Session.result = {
  verdict : verdict;
  per_depth : depth_stat list;
  total_time : float;
  total_decisions : int;
  total_implications : int;
  total_conflicts : int;
}

let pp_verdict = Session.pp_verdict

let pp_mode = Session.pp_mode

let mode_of_string = Session.mode_of_string

let all_modes = Session.all_modes

let run ?config netlist ~property = Session.check ?config ~policy:Session.Fresh netlist ~property

let run_case ?config (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  run ~config case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
