(* Counterexample extraction and replay. *)

let falsify case =
  match
    (Bmc.Engine.run_case
       ~config:
         (Bmc.Engine.config ~mode:Bmc.Engine.Standard
            ~max_depth:case.Circuit.Generators.suggested_depth ())
       case)
      .verdict
  with
  | Bmc.Engine.Falsified trace -> trace
  | Bmc.Engine.Bounded_pass _ | Bmc.Engine.Aborted _ -> Alcotest.fail "expected a counterexample"

let test_trace_depth_matches () =
  let case = Circuit.Generators.shift_in ~len:4 () in
  let trace = falsify case in
  Alcotest.(check int) "depth" 4 trace.Bmc.Trace.depth;
  Alcotest.(check int) "one input valuation per frame" 5 (Array.length trace.Bmc.Trace.inputs)

let test_trace_replays () =
  let case = Circuit.Generators.counter_en ~bits:3 ~target:4 () in
  let trace = falsify case in
  Alcotest.(check bool) "replay confirms violation" true
    (Bmc.Trace.replay trace case.netlist ~property:case.property)

let test_trace_covers_all_inputs_and_regs () =
  let case = Circuit.Generators.fifo_overflow ~bits:2 () in
  let trace = falsify case in
  let n_inputs = List.length (Circuit.Netlist.inputs case.netlist) in
  let n_regs = List.length (Circuit.Netlist.regs case.netlist) in
  Alcotest.(check int) "all registers in init" n_regs (List.length trace.Bmc.Trace.init_regs);
  Array.iter
    (fun vals -> Alcotest.(check int) "all inputs per frame" n_inputs (List.length vals))
    trace.Bmc.Trace.inputs

let test_corrupted_trace_fails_replay () =
  let case = Circuit.Generators.shift_in ~len:4 () in
  let trace = falsify case in
  (* flipping every input of the final frame breaks the all-ones pattern *)
  let corrupted =
    {
      trace with
      Bmc.Trace.inputs =
        Array.map (fun vals -> List.map (fun (n, b) -> (n, not b)) vals) trace.Bmc.Trace.inputs;
    }
  in
  Alcotest.(check bool) "corrupted trace rejected" false
    (Bmc.Trace.replay corrupted case.netlist ~property:case.property)

let test_pp_mentions_names () =
  let case = Circuit.Generators.counter_en ~bits:3 ~target:4 () in
  let trace = falsify case in
  let text = Format.asprintf "%a" (Bmc.Trace.pp ~netlist:case.netlist ()) trace in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the enable input" true (contains text "en");
  Alcotest.(check bool) "mentions depth" true (contains text "depth 4")

let tests =
  [
    Alcotest.test_case "depth matches" `Quick test_trace_depth_matches;
    Alcotest.test_case "replays" `Quick test_trace_replays;
    Alcotest.test_case "covers inputs and regs" `Quick test_trace_covers_all_inputs_and_regs;
    Alcotest.test_case "corrupted trace rejected" `Quick test_corrupted_trace_fails_replay;
    Alcotest.test_case "pp names" `Quick test_pp_mentions_names;
  ]
