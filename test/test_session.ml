(* The session layer: frame-delta loading is exactly the monolithic
   unrolling in pieces, each frame enters the persistent solver once
   (the O(delta) clause-construction claim), and both policies are
   observationally equal to the seed per-depth algorithm. *)

let lit_ints clause = List.map Sat.Lit.to_index clause

let clauses_of_cnf cnf =
  let acc = ref [] in
  Sat.Cnf.iter_clauses (fun _ c -> acc := lit_ints (Array.to_list c) :: !acc) cnf;
  List.rev !acc

(* Concatenating the frame deltas 0..k of one unroller must reproduce
   [base_cnf ~k] of another clause-for-clause, in order, at every depth. *)
let delta_concat_agrees (case : Circuit.Generators.case) ~max_k =
  let whole = Bmc.Unroll.create case.netlist ~property:case.property in
  let delta = Bmc.Unroll.create case.netlist ~property:case.property in
  let ok = ref true in
  for k = 0 to max_k do
    let base = Bmc.Unroll.base_cnf whole ~k in
    let concatenated =
      List.concat_map
        (fun f -> List.map lit_ints (Bmc.Unroll.frame_clauses delta ~frame:f))
        (List.init (k + 1) Fun.id)
    in
    if clauses_of_cnf base <> concatenated then ok := false;
    if Sat.Cnf.num_vars base <> Sat.Cnf.num_vars (Bmc.Unroll.delta_cnf delta ~frame:k) then
      ok := false
  done;
  !ok

let test_delta_concatenation () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      Alcotest.(check bool)
        (case.name ^ ": concatenated deltas = monolithic unrolling")
        true
        (delta_concat_agrees case ~max_k:(min 6 case.suggested_depth)))
    (Circuit.Generators.tiny_suite ())

let random_case_gen =
  let open QCheck.Gen in
  let* seed = 0 -- 100_000 in
  let* regs = 1 -- 6 in
  let* gates = 1 -- 25 in
  let* inputs = 0 -- 3 in
  return (Circuit.Generators.random ~seed ~regs ~gates ~inputs)

let arb =
  QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) random_case_gen

let prop_delta_concat_random =
  QCheck.Test.make ~name:"random circuits: frame deltas concatenate to base_cnf" ~count:80 arb
    (fun case -> delta_concat_agrees case ~max_k:4)

(* Drive a persistent session through every depth: the total clauses loaded
   must equal the unroller's base clause count — each frame entered the
   solver exactly once, never rebuilt. *)
let test_each_frame_loaded_once () =
  let case = Circuit.Generators.ring ~len:6 () in
  let config = Bmc.Session.make_config ~mode:Bmc.Session.Static ~max_depth:8 () in
  let s =
    Bmc.Session.create ~policy:Bmc.Session.Persistent config case.netlist
      ~property:case.property
  in
  for k = 0 to 8 do
    Bmc.Session.begin_instance s ~k;
    Bmc.Session.constrain s [ Sat.Lit.neg (Bmc.Session.var_of s ~node:case.property ~frame:k) ];
    ignore (Bmc.Session.solve_instance s)
  done;
  Alcotest.(check int) "clauses loaded = base clauses (each frame exactly once)"
    (Bmc.Unroll.num_base_clauses (Bmc.Session.unroll s))
    (Bmc.Session.loaded_clauses s)

(* ------------------------------------------------------------------ *)
(* Differential: the session's Fresh policy vs an inline transcription *)
(* of the seed per-depth algorithm (rebuild Unroll.instance, fresh     *)
(* solver, Score.update on cores).  Outcomes, decision counts and the  *)
(* exact core variable sets must coincide at every depth.              *)
(* ------------------------------------------------------------------ *)

type instance_log = {
  i_depth : int;
  i_outcome : string;
  i_decisions : int;
  i_core_vars : int list;
}

let pp_log l =
  Printf.sprintf "k=%d %s dec=%d core=[%s]" l.i_depth l.i_outcome l.i_decisions
    (String.concat "," (List.map string_of_int l.i_core_vars))

let run_seed_style (case : Circuit.Generators.case) ~mode ~max_depth =
  let cfg = Bmc.Session.make_config ~mode ~max_depth () in
  let unroll = Bmc.Unroll.create case.netlist ~property:case.property in
  let score = Bmc.Score.create () in
  let with_proof = Bmc.Session.uses_cores mode in
  let rec loop k acc =
    if k > max_depth then (List.rev acc, None)
    else begin
      let cnf = Bmc.Unroll.instance unroll ~k in
      let solver =
        Sat.Solver.create ~with_proof ~mode:(Bmc.Session.order_mode cfg unroll score ~k) cnf
      in
      let outcome = Sat.Solver.solve solver in
      let stats = Sat.Solver.stats solver in
      let core_vars =
        match outcome with
        | Sat.Solver.Unsat when with_proof -> Sat.Solver.core_vars solver
        | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> []
      in
      let entry =
        {
          i_depth = k;
          i_outcome = Sat.Solver.outcome_string outcome;
          i_decisions = stats.Sat.Stats.decisions;
          i_core_vars = core_vars;
        }
      in
      match outcome with
      | Sat.Solver.Unsat ->
        if with_proof then Bmc.Score.update score ~instance:k ~core_vars;
        loop (k + 1) (entry :: acc)
      | Sat.Solver.Sat ->
        let trace = Bmc.Trace.of_model unroll ~k ~model:(Sat.Solver.model solver) in
        (List.rev (entry :: acc), Some trace)
      | Sat.Solver.Unknown -> (List.rev (entry :: acc), None)
    end
  in
  loop 0 []

let run_session_fresh (case : Circuit.Generators.case) ~mode ~max_depth =
  let cfg = Bmc.Session.make_config ~mode ~max_depth () in
  let s =
    Bmc.Session.create ~policy:Bmc.Session.Fresh cfg case.netlist ~property:case.property
  in
  let rec loop k acc =
    if k > max_depth then (List.rev acc, None)
    else begin
      Bmc.Session.begin_instance s ~k;
      Bmc.Session.constrain s
        [ Sat.Lit.neg (Bmc.Session.var_of s ~node:case.property ~frame:k) ];
      let st = Bmc.Session.solve_instance s in
      let entry =
        {
          i_depth = k;
          i_outcome = Sat.Solver.outcome_string st.Bmc.Session.outcome;
          i_decisions = st.Bmc.Session.decisions;
          i_core_vars = Bmc.Session.last_core_vars s;
        }
      in
      match st.Bmc.Session.outcome with
      | Sat.Solver.Unsat -> loop (k + 1) (entry :: acc)
      | Sat.Solver.Sat -> (List.rev (entry :: acc), Some (Bmc.Session.trace s))
      | Sat.Solver.Unknown -> (List.rev (entry :: acc), None)
    end
  in
  loop 0 []

let test_fresh_policy_equals_seed_algorithm () =
  List.iter
    (fun ((case : Circuit.Generators.case), max_depth) ->
      List.iter
        (fun mode ->
          let seed_log, seed_trace = run_seed_style case ~mode ~max_depth in
          let sess_log, sess_trace = run_session_fresh case ~mode ~max_depth in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s: identical per-depth instances" case.name
               (Format.asprintf "%a" Bmc.Session.pp_mode mode))
            (List.map pp_log seed_log) (List.map pp_log sess_log);
          Alcotest.(check bool)
            (case.name ^ ": identical counterexample traces")
            true
            (seed_trace = sess_trace))
        [ Bmc.Session.Standard; Bmc.Session.Static ])
    [
      (Circuit.Generators.counter_en ~bits:3 ~target:5 (), 8);
      (Circuit.Generators.ring ~len:4 (), 5);
      (Circuit.Generators.fifo_overflow ~bits:2 (), 6);
    ]

(* ------------------------------------------------------------------ *)
(* Fresh vs Persistent: the two substrates may search differently but  *)
(* must decide identically, engine by engine.                          *)
(* ------------------------------------------------------------------ *)

let test_policies_agree_invariant () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let config =
        Bmc.Session.make_config ~mode:Bmc.Session.Static ~max_depth:case.suggested_depth ()
      in
      let f =
        Bmc.Session.check ~config ~policy:Bmc.Session.Fresh case.netlist
          ~property:case.property
      in
      let p =
        Bmc.Session.check ~config ~policy:Bmc.Session.Persistent case.netlist
          ~property:case.property
      in
      (match (f.Bmc.Session.verdict, p.Bmc.Session.verdict) with
      | Bmc.Session.Falsified a, Bmc.Session.Falsified b ->
        Alcotest.(check int) (case.name ^ ": same cex depth") a.Bmc.Trace.depth b.Bmc.Trace.depth;
        Alcotest.(check bool) (case.name ^ ": persistent trace replays") true
          (Bmc.Trace.replay b case.netlist ~property:case.property)
      | Bmc.Session.Bounded_pass a, Bmc.Session.Bounded_pass b ->
        Alcotest.(check int) (case.name ^ ": same bound") a b
      | a, b ->
        Alcotest.failf "%s: policies disagree: %a vs %a" case.name Bmc.Session.pp_verdict a
          Bmc.Session.pp_verdict b);
      Alcotest.(check (list string))
        (case.name ^ ": same per-depth outcomes")
        (List.map
           (fun (d : Bmc.Session.depth_stat) -> Sat.Solver.outcome_string d.outcome)
           f.Bmc.Session.per_depth)
        (List.map
           (fun (d : Bmc.Session.depth_stat) -> Sat.Solver.outcome_string d.outcome)
           p.Bmc.Session.per_depth))
    (Circuit.Generators.tiny_suite ())

let test_policies_agree_induction () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:10 () in
      let f = Bmc.Induction.prove ~config ~policy:Bmc.Session.Fresh case.netlist ~property:case.property in
      let p =
        Bmc.Induction.prove ~config ~policy:Bmc.Session.Persistent case.netlist
          ~property:case.property
      in
      match (f.Bmc.Induction.verdict, p.Bmc.Induction.verdict) with
      | Bmc.Induction.Proved a, Bmc.Induction.Proved b ->
        Alcotest.(check int) (case.name ^ ": same proof depth") a b
      | Bmc.Induction.Falsified a, Bmc.Induction.Falsified b ->
        Alcotest.(check int) (case.name ^ ": same cex depth") a.Bmc.Trace.depth b.Bmc.Trace.depth;
        Alcotest.(check bool) (case.name ^ ": persistent trace replays") true
          (Bmc.Trace.replay b case.netlist ~property:case.property)
      | Bmc.Induction.Unknown a, Bmc.Induction.Unknown b ->
        Alcotest.(check int) (case.name ^ ": same give-up depth") a b
      | a, b ->
        Alcotest.failf "%s: policies disagree: %a vs %a" case.name Bmc.Induction.pp_verdict a
          Bmc.Induction.pp_verdict b)
    [
      Circuit.Generators.ring ~len:5 ();
      Circuit.Generators.counter ~bits:3 ~target:5 ();
      Circuit.Generators.arbiter ~clients:4 ();
    ]

let test_policies_agree_ltl () =
  let case = Circuit.Generators.counter_en ~bits:3 ~target:5 () in
  List.iter
    (fun formula ->
      let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:8 () in
      let f = Bmc.Ltl.check ~config ~policy:Bmc.Session.Fresh case.netlist formula in
      let p = Bmc.Ltl.check ~config ~policy:Bmc.Session.Persistent case.netlist formula in
      match (f.Bmc.Ltl.verdict, p.Bmc.Ltl.verdict) with
      | Bmc.Ltl.Falsified a, Bmc.Ltl.Falsified b ->
        Alcotest.(check int) "same witness depth" a.Bmc.Ltl.depth b.Bmc.Ltl.depth;
        Alcotest.(check (option int)) "same loop shape" a.Bmc.Ltl.loop_start b.Bmc.Ltl.loop_start
      | Bmc.Ltl.Bounded_pass a, Bmc.Ltl.Bounded_pass b ->
        Alcotest.(check int) "same bound" a b
      | (Bmc.Ltl.Falsified _ | Bmc.Ltl.Bounded_pass _ | Bmc.Ltl.Aborted _), _ ->
        Alcotest.fail "policies disagree on the LTL verdict")
    [
      Bmc.Ltl.always (Bmc.Ltl.atom case.property);
      Bmc.Ltl.eventually (Bmc.Ltl.not_ (Bmc.Ltl.atom case.property));
    ]

let tests =
  [
    Alcotest.test_case "deltas concatenate to base_cnf" `Quick test_delta_concatenation;
    QCheck_alcotest.to_alcotest prop_delta_concat_random;
    Alcotest.test_case "each frame loads exactly once" `Quick test_each_frame_loaded_once;
    Alcotest.test_case "Fresh policy = seed per-depth algorithm" `Quick
      test_fresh_policy_equals_seed_algorithm;
    Alcotest.test_case "Fresh = Persistent (invariant)" `Quick test_policies_agree_invariant;
    Alcotest.test_case "Fresh = Persistent (induction)" `Slow test_policies_agree_induction;
    Alcotest.test_case "Fresh = Persistent (LTL)" `Quick test_policies_agree_ltl;
  ]
