bin/gencircuit.mli:
