(** The JSONL request/response protocol of the model-checking service.

    One request or response per line, encoded with the dependency-free
    {!Obs.Json} codec.  A request names a circuit (a built-in generator
    case or an inline [.rnl] text), a depth budget and an optional
    wall-clock deadline; a response carries the verdict, the
    counterexample trace when falsified, cache provenance (was the answer
    memoised, resumed on a warm session, or solved cold) and latency
    accounting.  The same line schema doubles as the server's per-request
    ledger, which [bmcprof serve] aggregates.

    {2 Request lines}

    {v
    {"id":"r1","builtin":"ring12","depth":12}
    {"id":"r2","circuit":"input a\n...","depth":5,"mode":"static",
     "deadline_ms":500,"stats":true}
    v}

    {2 Response lines}

    {v
    {"id":"r1","status":"ok","verdict":"bounded_pass","depth":12,
     "cache":"miss","solved":13,"decisions":...,"conflicts":...,
     "queue_ms":0.1,"wall_ms":12.3}
    {"id":"r3","status":"ok","verdict":"falsified","depth":4,
     "trace":{...},"cache":"hit","solved":0,...}
    {"id":"r9","status":"shed","queue_ms":0.0,"wall_ms":0.0}
    v} *)

type circuit_src =
  | Builtin of string
      (** a {!Circuit.Generators} suite case, by name (["ring12"], ...) *)
  | Inline of string
      (** [.rnl] text ({!Circuit.Textio}); the property is its [prop]
          line *)

type request = {
  rq_id : string;  (** echoed verbatim in the response *)
  rq_src : circuit_src;
  rq_depth : int;  (** depth budget: check k = 0..depth *)
  rq_mode : Bmc.Session.mode option;  (** [None]: the server default *)
  rq_deadline_ms : float option;
      (** wall-clock budget for this request, enforced through the
          session's {!Sat.Solver.budget} stop hook *)
  rq_stats : bool;  (** include the final-depth unsat core in the answer *)
}

(** Where the answer came from. *)
type cache_class =
  | Hit  (** memoised: answered without touching a solver *)
  | Warm  (** resumed on a cached warm session (deeper depths only) *)
  | Miss  (** solved cold on a session built for this request *)

val cache_class_string : cache_class -> string

type verdict_summary =
  | Falsified of int * Obs.Json.t
      (** counterexample depth and the replayed trace ({!trace_to_json}) *)
  | Bounded_pass of int  (** every depth up to this bound is UNSAT *)
  | Aborted of int  (** budget / deadline exhausted at this depth *)

type body = {
  rs_verdict : verdict_summary;
  rs_cache : cache_class;
  rs_solved : int;  (** instances actually solved for this request *)
  rs_decisions : int;
  rs_conflicts : int;
  rs_core : Sat.Lit.var list;
      (** final-depth unsat-core variables; populated only when the
          request set [stats] and the answer's final depth was UNSAT with
          a core on hand *)
}

type reply =
  | Answer of body
  | Shed  (** admission control: the pending queue was full *)
  | Draining  (** the server is shutting down and refused admission *)
  | Bad_request of string  (** unparsable circuit, unknown builtin, ... *)

type response = {
  rs_id : string;
  rs_reply : reply;
  rs_queue_ms : float;  (** arrival to dispatch *)
  rs_wall_ms : float;  (** arrival to answer *)
}

(** {1 Codec} *)

val request_of_json : Obs.Json.t -> (request, string) result

val request_of_line : string -> (request, string) result

val request_to_json : request -> Obs.Json.t

val request_line : request -> string
(** One JSONL line, newline not included. *)

val trace_to_json : Circuit.Netlist.t -> Bmc.Trace.t -> Obs.Json.t
(** [{"depth":d,"init":[["r0",false],...],"frames":[[["a",true],...],...]}]
    — nodes print by canonical name, or ["#<id>"] when unnamed.  The
    encoding is deterministic, so warm-vs-cold equivalence tests compare
    serialized traces directly. *)

val response_to_json : response -> Obs.Json.t

val response_line : response -> string

val response_of_json : Obs.Json.t -> (response, string) result
(** Used by the JSONL client and the tests; the trace comes back as the
    raw {!Obs.Json.t} it was sent as. *)

val ledger_line : digest:string -> t_ms:float -> request -> response -> Obs.Json.t
(** The server's per-request ledger record: the response fields plus the
    structural digest the request resolved to ([""] when it never did) and
    the server-relative completion time [t_ms]. *)
