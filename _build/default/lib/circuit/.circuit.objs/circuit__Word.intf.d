lib/circuit/word.mli: Netlist
