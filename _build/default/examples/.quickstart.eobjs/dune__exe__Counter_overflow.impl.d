examples/counter_overflow.ml: Bmc Circuit Format List Option
