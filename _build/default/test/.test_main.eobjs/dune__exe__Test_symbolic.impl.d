test/test_symbolic.ml: Alcotest Bmc Circuit List QCheck QCheck_alcotest
