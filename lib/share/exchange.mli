(** Learnt-clause exchange between sibling solvers.

    One {!t} (exchange) is shared by all participants solving instances of
    the {e same} circuit; each participant attaches an {!endpoint}.  Clauses
    travel as flat arrays of {e packed literal keys} — solver-independent
    [(node, frame, sign)] triples packed into single non-negative ints — so
    an importer can remap them through its own variable numbering, which
    need not agree with the exporter's.

    The transport is a {!Ring}: publishing never blocks, a slow consumer
    loses the oldest clauses (counted as {e dropped-stale}), and every
    endpoint sees every clause published by the others exactly once
    (modulo overwriting).  Per-endpoint hash dedup suppresses re-imports
    and re-exports of a clause already seen.

    Endpoints are domain-confined like the solvers they serve: create one
    per worker and only touch it there.  The exchange itself — its ring and
    aggregate counters — is freely shared. *)

(** {1 Packed literal keys} *)

val max_node : int
(** Exclusive upper bound on circuit node ids a key can carry. *)

val max_frame : int
(** Exclusive upper bound on time frames a key can carry. *)

val pack_lit : node:int -> frame:int -> neg:bool -> int
(** Pack a literal over circuit node [node] at time frame [frame].  The
    caller must check [0 <= node < max_node] and [0 <= frame < max_frame]
    (session-private pseudo-nodes are negative and must never be packed —
    that is the export filter's taint rule). *)

val unpack_lit : int -> int * int * bool
(** Inverse of {!pack_lit}: [(node, frame, neg)]. *)

(** {1 The exchange} *)

type config = {
  capacity : int;  (** ring slots *)
  max_size : int;  (** longest clause (literals) eligible for export *)
  max_lbd : int;  (** highest literal-block distance eligible for export *)
  restart_budget : int;
      (** exports a participating solver may make per restart interval
          ([max_int] = unlimited) — the static half of the adaptive
          sharing throttle *)
}

val default_config : config
(** 1024 slots, clauses up to 8 literals with LBD up to 4 — the short
    low-LBD clauses that carry most of the pruning power — and an
    unlimited per-restart export budget. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument if any config field is < 1. *)

val config : t -> config

type endpoint

val endpoint : t -> name:string -> endpoint
(** Attach a participant.  Thread-safe (workers attach lazily from their
    own domains); the returned endpoint is confined to the calling
    domain. *)

val name : endpoint -> string

val endpoint_id : endpoint -> int
(** The endpoint's id — dense from 0 in attach order, unique within the
    exchange.  Doubles as the participant's global {e solver id} for proof
    provenance: racers create their proof shards with it, so the [(solver
    id, clause id)] pairs travelling with clauses resolve unambiguously. *)

val max_size : endpoint -> int

val max_lbd : endpoint -> int

val publish : ?src_id:int -> endpoint -> int array -> lbd:int -> bool
(** Offer a clause of packed literal keys to the siblings.  [src_id]
    (default [-1] = none) is the clause's pseudo ID in the exporter's proof
    shard; importers receive it as the clause's provenance.  Returns
    [false] (and publishes nothing) if the clause is empty, over the
    size/LBD caps, or a duplicate of one this endpoint already published or
    imported.  The array is owned by the exchange afterwards — do not
    mutate it. *)

val drain : endpoint -> (int array -> origin:(int * int) option -> unit) -> int
(** Deliver every clause published by {e other} endpoints since the last
    drain, newest ones included, skipping duplicates.  [origin] is the
    clause's global provenance — the publishing endpoint's id and the
    clause's pseudo ID in the publisher's proof shard — or [None] if the
    publisher exported without one.  Returns the number delivered.  The
    callback must not call back into the exchange. *)

val note_dropped : endpoint -> int -> unit
(** Account clauses the importer had to discard (e.g. mentioning frames its
    varmap has not materialised) as dropped-stale. *)

val note_rejected_tainted : endpoint -> int -> unit
(** Account clauses the exporting solver withheld because their derivation
    was tainted by an instance-local (activation/auxiliary) literal. *)

(** {1 Adaptive throttling} *)

val note_import_used : endpoint -> int -> unit
(** Account imports that turned out load-bearing: after an UNSAT answer,
    the session reports how many imported clauses the refutation's
    backward closure reached ([Solver.unsat_core_imports]).  Feeds both
    the per-endpoint usefulness ratio behind {!tune} and the aggregate
    [import_used] counter. *)

val restart_budget : endpoint -> int
(** The configured per-restart export budget (pass to
    [Solver.set_share ~export_budget]). *)

val lbd_cap : endpoint -> int
(** The endpoint's current adaptive export LBD cap (starts at the
    configured [max_lbd], moved by {!tune}). *)

val tune : endpoint -> int option
(** One adaptation step, meant as the solver's restart-boundary tune hook:
    once enough imports accumulated since the last move, a high
    used/delivered ratio (>= 1/4) widens the export LBD cap towards the
    configured maximum and a low one (< 1/16) narrows it towards 1;
    otherwise the cap holds.  Deterministic given the counter history;
    always returns the (possibly unchanged) current cap. *)

(** {1 Counters} *)

type stats = {
  exported : int;  (** clauses published to the ring *)
  imported : int;  (** distinct clauses consumed by at least one sibling *)
  delivered : int;  (** total deliveries summed over endpoints *)
  rejected_tainted : int;  (** exports withheld by the taint filter *)
  dropped_stale : int;  (** overwritten before consumption, or unmappable *)
  import_used : int;
      (** imported clauses later reported load-bearing in a refutation
          (see {!note_import_used}) *)
  occupancy : int;  (** clauses currently readable in the ring *)
  capacity : int;
}

val stats : t -> stats
(** A consistent-enough snapshot of the aggregate counters.  [imported <=
    exported] always holds: a clause counts as imported the first time any
    sibling consumes it ([delivered] counts every consumption). *)

val dump : t -> int array list
(** The packed clauses currently readable in the ring (test/debug use;
    racy while producers are active). *)

val stats_fields : stats -> (string * int) list
(** The counters as stable [(key, value)] pairs, in declaration order —
    for structured emission (telemetry counters, run ledgers, Prometheus
    export) without each consumer hand-listing the record fields. *)

val pp_stats : Format.formatter -> stats -> unit
