lib/core/varmap.mli: Circuit Sat
