examples/engines_tour.ml: Bmc Circuit Format List Printf Sys
