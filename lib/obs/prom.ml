let add_metric b ~help ~typ name rows =
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
  List.iter
    (fun (labels, value) ->
      let l =
        match labels with
        | [] -> ""
        | kvs ->
          "{"
          ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
          ^ "}"
      in
      Buffer.add_string b (Printf.sprintf "%s%s %s\n" name l value))
    rows

let int_rows rows = List.map (fun (l, v) -> (l, string_of_int v)) rows

let render (t : Ledger.t) =
  let b = Buffer.create 1024 in
  add_metric b ~help:"BMC depths solved by final outcome" ~typ:"counter" "bmc_depths_total"
    (int_rows
       (List.map
          (fun outcome ->
            ( [ ("outcome", outcome) ],
              List.length (List.filter (fun d -> d.Ledger.l_outcome = outcome) t.depths)
            ))
          [ "unsat"; "sat"; "unknown" ]));
  add_metric b ~help:"SAT decisions by branching source" ~typ:"counter" "bmc_decisions_total"
    (int_rows
       [
         ([ ("src", "rank") ], Ledger.dec_rank t);
         ([ ("src", "vsids") ], Ledger.dec_vsids t);
       ]);
  add_metric b ~help:"SAT conflicts" ~typ:"counter" "bmc_conflicts_total"
    (int_rows [ ([], Ledger.conflicts t) ]);
  add_metric b ~help:"Solver restarts" ~typ:"counter" "bmc_restarts_total"
    (int_rows [ ([], t.restarts) ]);
  add_metric b ~help:"Dynamic ordering fallbacks" ~typ:"counter" "bmc_ordering_switches_total"
    (int_rows [ ([], t.switches) ]);
  add_metric b ~help:"Share of attributed decisions branching on a ranked variable"
    ~typ:"gauge" "bmc_rank_decision_share"
    [ ([], Printf.sprintf "%.4f" (Ledger.rank_share t /. 100.0)) ];
  add_metric b ~help:"Unsat-core variable churn between consecutive depths" ~typ:"counter"
    "bmc_core_churn_vars_total"
    (int_rows
       [
         ( [ ("kind", "new") ],
           List.fold_left (fun a d -> a + d.Ledger.l_core_new) 0 t.depths );
         ( [ ("kind", "dropped") ],
           List.fold_left (fun a d -> a + d.Ledger.l_core_dropped) 0 t.depths );
       ]);
  add_metric b ~help:"Portfolio races won per ordering mode" ~typ:"counter"
    "bmc_race_wins_total"
    (int_rows (List.map (fun (m, n) -> ([ ("mode", m) ], n)) t.wins));
  add_metric b ~help:"Portfolio racers cancelled after a sibling won" ~typ:"counter"
    "bmc_race_cancelled_total"
    (int_rows [ ([], List.fold_left (fun a r -> a + r.Ledger.r_cancelled) 0 t.races) ]);
  add_metric b ~help:"Learnt clauses exchanged between racers" ~typ:"counter"
    "bmc_share_clauses_total"
    (int_rows
       [
         ([ ("flow", "exported") ], t.share.sh_exported);
         ([ ("flow", "imported") ], t.share.sh_imported);
         ([ ("flow", "rejected_tainted") ], t.share.sh_rejected_tainted);
         ([ ("flow", "dropped_stale") ], t.share.sh_dropped_stale);
       ]);
  add_metric b ~help:"Wall-clock seconds spent solving, by phase" ~typ:"counter"
    "bmc_phase_seconds_total"
    (List.map
       (fun (phase, f) ->
         ( [ ("phase", phase) ],
           Printf.sprintf "%.6f" (List.fold_left (fun a d -> a +. f d) 0.0 t.depths) ))
       [
         ("build", fun (d : Ledger.depth_row) -> d.l_build_s);
         ("solve", fun d -> d.l_solve_s);
         ("bcp", fun d -> d.l_bcp_s);
         ("cdg", fun d -> d.l_cdg_s);
       ]);
  Buffer.contents b

let write (t : Ledger.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render t))
