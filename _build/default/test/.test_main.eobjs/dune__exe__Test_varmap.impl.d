test/test_varmap.ml: Alcotest Bmc Gen List QCheck QCheck_alcotest
