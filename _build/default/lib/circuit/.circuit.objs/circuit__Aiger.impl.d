lib/circuit/aiger.ml: Array Buffer Char Filename Format Hashtbl List Netlist Printf String
