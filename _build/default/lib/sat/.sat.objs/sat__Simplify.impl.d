lib/sat/simplify.ml: Array Cnf Hashtbl List Lit Option Set
