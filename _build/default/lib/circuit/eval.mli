(** Cycle-accurate two-valued simulation.

    Used to replay BMC counterexamples and as the ground-truth oracle in
    tests.  A simulation starts from an initial register valuation
    (respecting declared init values) and advances one clock cycle per
    {!step}, reading primary inputs from a caller-supplied function. *)

type t
(** A compiled simulator: the netlist plus a topological evaluation order.
    Reusable across runs. *)

val compile : Netlist.t -> t
(** @raise Invalid_argument if the netlist does not {!Netlist.validate}. *)

val netlist : t -> Netlist.t

type state
(** Current register valuation. *)

val initial : ?resolve:(Netlist.node -> bool) -> t -> state
(** Initial state.  Registers with a declared init take it; nondeterministic
    registers consult [resolve] (default: [fun _ -> false]). *)

val state_of_regs : t -> (Netlist.node -> bool) -> state
(** Build a state from an explicit per-register valuation. *)

val reg_value : t -> state -> Netlist.node -> bool
(** @raise Not_found if the node is not a register of this netlist. *)

type frame
(** All node values during one clock cycle. *)

val cycle : t -> state -> inputs:(Netlist.node -> bool) -> frame * state
(** Evaluate one cycle: compute every node value from the current state and
    the given inputs, and return the successor state. *)

val value : frame -> Netlist.node -> bool
(** Value of any node in that cycle. *)

val run :
  t ->
  ?resolve:(Netlist.node -> bool) ->
  inputs:(cycle:int -> Netlist.node -> bool) ->
  cycles:int ->
  unit ->
  frame list
(** Simulate [cycles] cycles from the initial state; frame [i] (0-based) is
    cycle [i].  [cycles = 0] gives []. *)

val check_invariant :
  t ->
  ?resolve:(Netlist.node -> bool) ->
  inputs:(cycle:int -> Netlist.node -> bool) ->
  cycles:int ->
  property:Netlist.node ->
  unit ->
  int option
(** First cycle (0-based) at which [property] evaluates to false, scanning
    [cycles] cycles; [None] if it holds throughout. *)
