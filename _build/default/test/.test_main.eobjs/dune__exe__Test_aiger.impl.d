test/test_aiger.ml: Alcotest Bmc Circuit Filename List QCheck QCheck_alcotest String Sys
