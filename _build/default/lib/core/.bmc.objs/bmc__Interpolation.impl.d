lib/core/interpolation.ml: Array Circuit Format List Printf Sat Sys Trace Unroll Varmap
