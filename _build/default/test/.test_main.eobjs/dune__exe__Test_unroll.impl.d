test/test_unroll.ml: Alcotest Array Bmc Circuit Format Gen List Printf QCheck QCheck_alcotest Sat
