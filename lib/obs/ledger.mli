(** The run ledger: a versioned, structured per-check report.

    A ledger is distilled from a telemetry event stream ({!of_events}) —
    the same events whether they were collected in-process by a memory
    sink ([bmccheck --ledger]) or re-read from a JSONL trace file
    ([bmcprof trace]).  It captures what the paper's refinement is
    supposed to change: per-depth decision/conflict/propagation work, the
    decision-source histogram (branches taken from the [bmc_score] rank
    versus VSIDS-activity fallback), core-variable churn between depths,
    racer win/cancel tallies and clause-sharing flow.

    The JSON codec is field-order-deterministic: [to_string] after
    {!of_string} reproduces the input byte-for-byte, which the schema
    round-trip test asserts. *)

val version : string
(** ["bmc-ledger/v1"]. *)

type depth_row = {
  l_depth : int;
  l_mode : string;  (** configured ordering for this depth *)
  l_outcome : string;  (** "unsat" | "sat" | "unknown" *)
  l_decisions : int;
  l_dec_rank : int;  (** decisions whose variable carried a positive rank *)
  l_dec_vsids : int;  (** decisions taken on activity alone *)
  l_implications : int;
  l_conflicts : int;
  l_core_clauses : int;
  l_core_vars : int;
  l_core_new : int;  (** core vars not in the previous depth's core *)
  l_core_dropped : int;  (** previous core vars gone from this one *)
  l_core_pre : int;
      (** core clauses {e before} minimisation ([l_core_clauses] is the
          post-minimisation size).  Equal to [l_core_clauses] when
          minimisation did not run; the JSON column (with [coremin_s]) is
          emitted only when the row actually minimised, and parses with a
          pre-equals-post default, so pre-coremin ledgers round-trip
          byte-identically *)
  l_coremin_s : float;  (** CPU seconds of core minimisation *)
  l_switched : bool;  (** dynamic fallback fired during this depth *)
  l_build_s : float;
  l_solve_s : float;
  l_bcp_s : float;
  l_cdg_s : float;
  l_inpr_elim : int;
      (** variables eliminated by the boundary inprocessing before this
          depth (0 with inprocessing off, and in pre-inprocessing ledgers
          — the columns below parse with a 0 default, schema unchanged) *)
  l_inpr_sub : int;  (** clauses subsumed at the boundary *)
  l_inpr_str : int;  (** self-subsuming resolutions at the boundary *)
  l_inpr_probe_failed : int;  (** failed-literal probes at the boundary *)
  l_inpr_s : float;  (** CPU seconds of boundary inprocessing *)
}

type race_row = {
  r_depth : int;
  r_winner : string;  (** winning racer's heuristic name, or "none" *)
  r_wall_s : float;
  r_cancelled : int;
  r_rotated : int;
      (** racers recycled onto the rotation queue at this depth boundary.
          Additive column: emitted only when non-zero and parsed with a 0
          default, so pre-rotation ledgers round-trip byte-identically. *)
  r_racers : string list;
      (** the round's roster, by heuristic name, in slot order.  Additive
          column like [r_rotated]: serialised comma-joined, omitted when
          empty, parsed with an empty default. *)
}

type share_flow = {
  sh_exported : int;
  sh_imported : int;
  sh_rejected_tainted : int;
  sh_dropped_stale : int;
}

type t = {
  schema : string;
  depths : depth_row list;
  races : race_row list;
  restarts : int;
  switches : int;
  share : share_flow;
  wins : (string * int) list;
      (** races won per heuristic name (whatever names the racers carried
          — built-in modes or ordering-laboratory heuristics), sorted *)
}

val of_events : Telemetry.Sink.event list -> t
(** Fold a telemetry stream (depth / race / restart / switch / counter
    events; everything else ignored) into a ledger. *)

(** {1 Codec} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val to_string : ?indent:bool -> t -> string
(** Pretty-printed by default (ledgers are meant to be read). *)

val of_string : string -> (t, string) result

(** {1 Aggregates} *)

val decisions : t -> int
val dec_rank : t -> int
val dec_vsids : t -> int
val conflicts : t -> int
val rank_share : t -> float
(** Percentage of attributed decisions that branched on a ranked variable
    (0 when nothing was attributed). *)

(** {1 Reports} *)

val pp_depth_table : Format.formatter -> t -> unit
(** Per-depth heat table: decision bars, rank share, conflicts, core
    churn, fallback markers, solve times, and a [coremin pre->post]
    tail on rows whose core was minimised. *)

val pp_effectiveness : Format.formatter -> t -> unit
(** The ordering-effectiveness report: decision-source split, fallback
    and restart counts, core churn, race and sharing tallies.  Never
    empty, even for a ledger with no depth rows. *)

(** {1 Regression diff} *)

type severity = Fail | Warn

type finding = { severity : severity; message : string }

val diff : ?warn_pct:float -> t -> t -> finding list
(** [diff baseline candidate]: [Fail] on a changed per-depth outcome;
    [Warn] on decision/conflict drift beyond [warn_pct] (default 25%), a
    candidate core growing past the baseline's by more than [warn_pct], a
    depth present on only one side, a fallback firing differently, or the
    rank-guided share moving more than 10 points.  Two equal ledgers
    produce []. *)

val pp_finding : Format.formatter -> finding -> unit
