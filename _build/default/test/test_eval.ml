(* Cycle-accurate simulator. *)

let build_counter bits =
  let nl = Circuit.Netlist.create () in
  let count = Circuit.Word.regs nl ~prefix:"c" ~width:bits ~init:(Some 0) in
  let inc, _ = Circuit.Word.increment nl count in
  Circuit.Word.connect nl count inc;
  (nl, count)

let word_of sim st regs =
  Array.to_list regs
  |> List.fold_left
       (fun (acc, bit) r ->
         ((acc lor if Circuit.Eval.reg_value sim st r then 1 lsl bit else 0), bit + 1))
       (0, 0)
  |> fst

let test_counter_counts () =
  let nl, count = build_counter 4 in
  let sim = Circuit.Eval.compile nl in
  let rec advance st n = if n = 0 then st else
    let _, st' = Circuit.Eval.cycle sim st ~inputs:(fun _ -> false) in
    advance st' (n - 1)
  in
  let st = advance (Circuit.Eval.initial sim) 5 in
  Alcotest.(check int) "after 5 cycles" 5 (word_of sim st count);
  let st = advance st 12 in
  Alcotest.(check int) "wraps at 16" ((5 + 12) mod 16) (word_of sim st count)

let test_initial_values () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.reg nl ~name:"a" ~init:(Some true) in
  let b = Circuit.Netlist.reg nl ~name:"b" ~init:(Some false) in
  let c = Circuit.Netlist.reg nl ~name:"c" ~init:None in
  Circuit.Netlist.set_next nl a a;
  Circuit.Netlist.set_next nl b b;
  Circuit.Netlist.set_next nl c c;
  let sim = Circuit.Eval.compile nl in
  let st = Circuit.Eval.initial ~resolve:(fun r -> r = c) sim in
  Alcotest.(check bool) "a init" true (Circuit.Eval.reg_value sim st a);
  Alcotest.(check bool) "b init" false (Circuit.Eval.reg_value sim st b);
  Alcotest.(check bool) "c resolved" true (Circuit.Eval.reg_value sim st c)

let test_gate_semantics_in_frame () =
  let nl = Circuit.Netlist.create () in
  let x = Circuit.Netlist.input nl "x" in
  let y = Circuit.Netlist.input nl "y" in
  let gates =
    [
      Circuit.Netlist.and_ nl x y;
      Circuit.Netlist.or_ nl x y;
      Circuit.Netlist.xor_ nl x y;
      Circuit.Netlist.not_ nl x;
      Circuit.Netlist.mux nl ~sel:x ~hi:y ~lo:(Circuit.Netlist.not_ nl y);
    ]
  in
  let sim = Circuit.Eval.compile nl in
  List.iter
    (fun (xv, yv) ->
      let frame, _ =
        Circuit.Eval.cycle sim (Circuit.Eval.initial sim) ~inputs:(fun n ->
            if n = x then xv else yv)
      in
      let v n = Circuit.Eval.value frame n in
      match gates with
      | [ a; o; xr; n; m ] ->
        Alcotest.(check bool) "and" (xv && yv) (v a);
        Alcotest.(check bool) "or" (xv || yv) (v o);
        Alcotest.(check bool) "xor" (xv <> yv) (v xr);
        Alcotest.(check bool) "not" (not xv) (v n);
        Alcotest.(check bool) "mux" (if xv then yv else not yv) (v m)
      | _ -> Alcotest.fail "setup")
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_run_produces_frames () =
  let nl, _ = build_counter 3 in
  let sim = Circuit.Eval.compile nl in
  let frames = Circuit.Eval.run sim ~inputs:(fun ~cycle:_ _ -> false) ~cycles:4 () in
  Alcotest.(check int) "frame count" 4 (List.length frames);
  let frames0 = Circuit.Eval.run sim ~inputs:(fun ~cycle:_ _ -> false) ~cycles:0 () in
  Alcotest.(check int) "zero cycles" 0 (List.length frames0)

let test_check_invariant () =
  let nl, count = build_counter 3 in
  let target = Circuit.Word.eq_const nl count 5 in
  let property = Circuit.Netlist.not_ nl target in
  let sim = Circuit.Eval.compile nl in
  Alcotest.(check (option int)) "violated at cycle 5" (Some 5)
    (Circuit.Eval.check_invariant sim ~inputs:(fun ~cycle:_ _ -> false) ~cycles:10 ~property ());
  Alcotest.(check (option int)) "holds within 5" None
    (Circuit.Eval.check_invariant sim ~inputs:(fun ~cycle:_ _ -> false) ~cycles:5 ~property ())

let test_compile_rejects_invalid () =
  let nl = Circuit.Netlist.create () in
  let _r = Circuit.Netlist.reg nl ~name:"r" ~init:None in
  match Circuit.Eval.compile nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unconnected register must not compile"

(* Simulating a shift register reproduces the delayed input stream. *)
let prop_shift_register_delays =
  QCheck.Test.make ~name:"shift register = delayed input" ~count:100
    QCheck.(list_of_size Gen.(5 -- 20) bool)
    (fun stream ->
      let nl = Circuit.Netlist.create () in
      let d = Circuit.Netlist.input nl "d" in
      let s1 = Circuit.Netlist.reg nl ~name:"s1" ~init:(Some false) in
      let s2 = Circuit.Netlist.reg nl ~name:"s2" ~init:(Some false) in
      Circuit.Netlist.set_next nl s1 d;
      Circuit.Netlist.set_next nl s2 s1;
      let sim = Circuit.Eval.compile nl in
      let arr = Array.of_list stream in
      let frames =
        Circuit.Eval.run sim
          ~inputs:(fun ~cycle _ -> arr.(cycle))
          ~cycles:(Array.length arr) ()
      in
      List.for_all Fun.id
        (List.mapi
           (fun i frame ->
             let expect_s2 = if i >= 2 then arr.(i - 2) else false in
             Circuit.Eval.value frame s2 = expect_s2)
           frames))

let tests =
  [
    Alcotest.test_case "counter counts" `Quick test_counter_counts;
    Alcotest.test_case "initial values" `Quick test_initial_values;
    Alcotest.test_case "gate semantics" `Quick test_gate_semantics_in_frame;
    Alcotest.test_case "run frames" `Quick test_run_produces_frames;
    Alcotest.test_case "check_invariant" `Quick test_check_invariant;
    Alcotest.test_case "compile rejects invalid" `Quick test_compile_rejects_invalid;
    QCheck_alcotest.to_alcotest prop_shift_register_delays;
  ]
