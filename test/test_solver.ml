(* CDCL solver: known instances, random cross-checks against brute force,
   unsat-core validity, budgets, decision-ordering modes. *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

let solve ?with_proof ?mode clauses =
  let s = Sat.Solver.create ?with_proof ?mode (mk_cnf clauses) in
  (Sat.Solver.solve s, s)

let check_outcome = Alcotest.(check string)

let outcome_str o = Format.asprintf "%a" Sat.Solver.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Known instances.                                                    *)
(* ------------------------------------------------------------------ *)

let test_trivial_sat () =
  let o, s = solve [ [ (0, true) ] ] in
  check_outcome "unit" "SAT" (outcome_str o);
  Alcotest.(check bool) "model" true (Sat.Solver.model s).(0)

let test_trivial_unsat () =
  let o, _ = solve [ [ (0, true) ]; [ (0, false) ] ] in
  check_outcome "x and not x" "UNSAT" (outcome_str o)

let test_empty_formula_sat () =
  let o, _ = solve [] in
  check_outcome "empty formula" "SAT" (outcome_str o)

let test_empty_clause_unsat () =
  let o, _ = solve [ [] ] in
  check_outcome "empty clause" "UNSAT" (outcome_str o)

let test_implication_chain () =
  (* x0 ∧ (x0→x1) ∧ ... ∧ (x8→x9) ∧ ¬x9 : UNSAT by pure BCP *)
  let chain = List.init 9 (fun i -> [ (i, false); (i + 1, true) ]) in
  let o, s = solve (([ (0, true) ] :: chain) @ [ [ (9, false) ] ]) in
  check_outcome "chain" "UNSAT" (outcome_str o);
  Alcotest.(check int) "no decisions needed" 0 (Sat.Solver.stats s).Sat.Stats.decisions

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic UNSAT needing real search.
     var (p, h) = p * 2 + h, p in 0..2, h in 0..1 *)
  let v p h = p * 2 + h in
  let per_pigeon = List.init 3 (fun p -> [ (v p 0, true); (v p 1, true) ]) in
  let no_share =
    List.concat_map
      (fun h ->
        [
          [ (v 0 h, false); (v 1 h, false) ];
          [ (v 0 h, false); (v 2 h, false) ];
          [ (v 1 h, false); (v 2 h, false) ];
        ])
      [ 0; 1 ]
  in
  let o, s = solve ~with_proof:true (per_pigeon @ no_share) in
  check_outcome "php(3,2)" "UNSAT" (outcome_str o);
  let core = Sat.Solver.unsat_core s in
  Alcotest.(check bool) "non-trivial core" true (List.length core > 3)

let test_satisfiable_3sat () =
  let clauses =
    [
      [ (0, true); (1, true); (2, true) ];
      [ (0, false); (1, false) ];
      [ (1, true); (2, false) ];
      [ (0, true); (2, true) ];
    ]
  in
  let o, s = solve clauses in
  check_outcome "sat" "SAT" (outcome_str o);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "model satisfies" true (Sat.Cnf.eval (mk_cnf clauses) (fun v -> m.(v)))

let test_duplicate_and_tautological_clauses () =
  let clauses =
    [
      [ (0, true); (0, true) ]; (* duplicate literal *)
      [ (1, true); (1, false) ]; (* tautology *)
      [ (0, false); (1, true) ];
    ]
  in
  let o, s = solve clauses in
  check_outcome "sat" "SAT" (outcome_str o);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "x0" true m.(0);
  Alcotest.(check bool) "x1" true m.(1)

let test_conflicting_units_at_creation () =
  let o, s = solve ~with_proof:true [ [ (3, true) ]; [ (3, false) ] ] in
  check_outcome "conflicting units" "UNSAT" (outcome_str o);
  Alcotest.(check (list int)) "core is the two units" [ 0; 1 ] (Sat.Solver.unsat_core s)

let test_solve_idempotent () =
  let s = Sat.Solver.create (mk_cnf [ [ (0, true) ] ]) in
  let a = Sat.Solver.solve s in
  let b = Sat.Solver.solve s in
  Alcotest.(check string) "cached" (outcome_str a) (outcome_str b)

(* ------------------------------------------------------------------ *)
(* Budgets.                                                            *)
(* ------------------------------------------------------------------ *)

let php n holes =
  (* pigeonhole formula as clause list *)
  let v p h = (p * holes) + h in
  let per_pigeon = List.init n (fun p -> List.init holes (fun h -> (v p h, true))) in
  let no_share =
    List.concat
      (List.init holes (fun h ->
           List.concat
             (List.init n (fun p1 ->
                  List.filteri (fun p2 _ -> p2 > p1) (List.init n Fun.id)
                  |> List.map (fun p2 -> [ (v p1 h, false); (v p2 h, false) ])))))
  in
  per_pigeon @ no_share

let test_conflict_budget () =
  let s = Sat.Solver.create (mk_cnf (php 8 7)) in
  let budget =
    { Sat.Solver.max_conflicts = Some 5; max_propagations = None; max_seconds = None; stop = None }
  in
  match Sat.Solver.solve ~budget s with
  | Sat.Solver.Unknown -> ()
  | Sat.Solver.Sat | Sat.Solver.Unsat -> Alcotest.fail "expected budget exhaustion"

let test_hard_instance_completes_without_budget () =
  let o, _ = solve (php 6 5) in
  check_outcome "php(6,5)" "UNSAT" (outcome_str o)

let test_propagation_budget () =
  let s = Sat.Solver.create (mk_cnf (php 8 7)) in
  let budget =
    { Sat.Solver.max_conflicts = None; max_propagations = Some 50; max_seconds = None; stop = None }
  in
  match Sat.Solver.solve ~budget s with
  | Sat.Solver.Unknown -> (
    (* resource-limited runs must refuse to produce models or cores *)
    match Sat.Solver.model s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "model after Unknown")
  | Sat.Solver.Sat | Sat.Solver.Unsat -> Alcotest.fail "expected budget exhaustion"

let test_stop_hook_aborts () =
  (* A stop hook that fires from the first poll must abort the solve almost
     immediately: at most one conflict (the hook is polled right after each
     conflict) and under 1024 decisions. *)
  let s = Sat.Solver.create (mk_cnf (php 8 7)) in
  let budget = { Sat.Solver.no_budget with stop = Some (fun () -> true) } in
  (match Sat.Solver.solve ~budget s with
  | Sat.Solver.Unknown -> ()
  | o -> Alcotest.failf "expected Unknown, got %a" Sat.Solver.pp_outcome o);
  let st = Sat.Solver.stats s in
  Alcotest.(check bool) "bounded work after stop" true
    (st.Sat.Stats.conflicts <= 1 && st.Sat.Stats.decisions <= 1024)

let test_stop_hook_bounded_latency () =
  (* Arm the hook after N conflicts: the solve must end within one more
     conflict of the trigger point (the per-conflict poll). *)
  let s = Sat.Solver.create (mk_cnf (php 8 7)) in
  let fired = ref false in
  let stop () =
    if (Sat.Solver.stats s).Sat.Stats.conflicts >= 20 then fired := true;
    !fired
  in
  let budget = { Sat.Solver.no_budget with stop = Some stop } in
  (match Sat.Solver.solve ~budget s with
  | Sat.Solver.Unknown -> ()
  | o -> Alcotest.failf "expected Unknown, got %a" Sat.Solver.pp_outcome o);
  Alcotest.(check bool) "hook fired" true !fired;
  Alcotest.(check bool) "stopped within one conflict of trigger" true
    ((Sat.Solver.stats s).Sat.Stats.conflicts <= 21)

let test_stop_hook_mid_bcp () =
  (* A zero-conflict instance: one huge equivalence chain, driven by an
     assumption so the whole chain propagates inside the solve (a unit
     clause would be chased eagerly at add_clause time instead).  The solve
     is then a single ~2n-propagation BCP run with no conflicts and no
     decisions.  A solver polling the stop hook only at decision/conflict
     boundaries would finish the entire chain before noticing; the in-BCP
     poll (every 4096 propagations) must cancel mid-chain, promptly. *)
  let n = 200_000 in
  let f = Sat.Cnf.create ~num_vars:n () in
  for i = 0 to n - 2 do
    Sat.Cnf.add_clause f [ lit (i, false); lit (i + 1, true) ];
    Sat.Cnf.add_clause f [ lit (i, true); lit (i + 1, false) ]
  done;
  let s = Sat.Solver.create f in
  let stop () = (Sat.Solver.stats s).Sat.Stats.propagations > 0 in
  let budget = { Sat.Solver.no_budget with stop = Some stop } in
  let t0 = Unix.gettimeofday () in
  (match Sat.Solver.solve ~budget ~assumptions:[ lit (0, true) ] s with
  | Sat.Solver.Unknown -> ()
  | o -> Alcotest.failf "expected Unknown, got %a" Sat.Solver.pp_outcome o);
  let wall = Unix.gettimeofday () -. t0 in
  let st = Sat.Solver.stats s in
  Alcotest.(check int) "no conflicts" 0 st.Sat.Stats.conflicts;
  Alcotest.(check bool) "cancelled mid-chain, not at its end" true
    (st.Sat.Stats.propagations < 50_000);
  Alcotest.(check bool) "cancelled in under a second" true (wall < 1.0)

let test_stop_hook_inert () =
  (* A hook that never fires must not perturb the answer. *)
  let s = Sat.Solver.create (mk_cnf (php 5 4)) in
  let budget = { Sat.Solver.no_budget with stop = Some (fun () -> false) } in
  match Sat.Solver.solve ~budget s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o

let test_dynamic_switch_fires () =
  (* php(5,4) has few literals, so the 1/64 threshold is just a handful of
     decisions: the dynamic fallback must trigger and the answer stay UNSAT *)
  let cnf = mk_cnf (php 5 4) in
  let rank = Array.make (Sat.Cnf.num_vars cnf) 1.0 in
  let s = Sat.Solver.create ~mode:(Sat.Order.Dynamic rank) cnf in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  Alcotest.(check int) "switched exactly once" 1
    (Sat.Solver.stats s).Sat.Stats.heuristic_switches

let test_core_subset_of_clauses () =
  let clauses = php 4 3 in
  let cnf = mk_cnf clauses in
  let s = Sat.Solver.create ~with_proof:true cnf in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  let core = Sat.Solver.unsat_core s in
  List.iter
    (fun i ->
      Alcotest.(check bool) "core index in range" true (i >= 0 && i < Sat.Cnf.num_clauses cnf))
    core;
  Alcotest.(check bool) "core ascending and duplicate-free" true
    (List.sort_uniq Int.compare core = core)

let test_unsat_core_requires_proof () =
  let _, s = solve [ [ (0, true) ]; [ (0, false) ] ] in
  Alcotest.check_raises "core without proof logging"
    (Invalid_argument "Solver.unsat_core: proof logging was off") (fun () ->
      ignore (Sat.Solver.unsat_core s))

let test_model_on_unsat_rejected () =
  let _, s = solve [ [ (0, true) ]; [ (0, false) ] ] in
  Alcotest.check_raises "model after UNSAT"
    (Invalid_argument "Solver.model: no satisfying assignment") (fun () ->
      ignore (Sat.Solver.model s))

let test_wide_clauses () =
  (* exercise watch relocation across long clauses *)
  let wide = List.init 20 (fun i -> (i, true)) in
  let negs = List.init 19 (fun i -> [ (i, false) ]) in
  let o, s = solve (wide :: negs) in
  check_outcome "only x19 can satisfy" "SAT" (outcome_str o);
  Alcotest.(check bool) "x19 true" true (Sat.Solver.model s).(19)

(* ------------------------------------------------------------------ *)
(* Arena compaction is observationally neutral.                        *)
(* ------------------------------------------------------------------ *)

(* Compaction only relocates clause blocks — it must not change which
   clauses exist, their literal order, or the watch/reason structure, so a
   solver that compacts after every database reduction must retrace exactly
   the search of one that never compacts. *)
let run_with_gc clauses ~gc =
  let s = Sat.Solver.create ~with_proof:true (mk_cnf clauses) in
  (* a tiny learnt limit forces reduce_db (and hence compaction) early and
     often, instead of once near the end of the search *)
  Sat.Solver.set_max_learnts s 20;
  Sat.Solver.set_gc_fraction s (if gc then 0.0 else infinity);
  let o = Sat.Solver.solve s in
  (o, s)

let test_compaction_neutral_php () =
  let clauses = php 6 5 in
  let o1, s1 = run_with_gc clauses ~gc:true in
  let o2, s2 = run_with_gc clauses ~gc:false in
  check_outcome "same outcome" (outcome_str o2) (outcome_str o1);
  let st1 = Sat.Solver.stats s1 and st2 = Sat.Solver.stats s2 in
  Alcotest.(check bool) "compactions actually ran" true (st1.Sat.Stats.arena_compactions > 0);
  Alcotest.(check int) "no compaction in the control run" 0 st2.Sat.Stats.arena_compactions;
  Alcotest.(check int) "same conflicts" st2.Sat.Stats.conflicts st1.Sat.Stats.conflicts;
  Alcotest.(check int) "same learned" st2.Sat.Stats.learned st1.Sat.Stats.learned;
  Alcotest.(check int) "same deleted" st2.Sat.Stats.deleted st1.Sat.Stats.deleted;
  Alcotest.(check int) "same decisions" st2.Sat.Stats.decisions st1.Sat.Stats.decisions;
  Alcotest.(check (list int)) "same unsat core" (Sat.Solver.unsat_core s2)
    (Sat.Solver.unsat_core s1);
  Alcotest.(check (list int)) "same core vars" (Sat.Solver.core_vars s2)
    (Sat.Solver.core_vars s1);
  (* the compacting run must not hold more arena memory than the control *)
  Alcotest.(check bool) "compaction reclaims memory" true
    (Sat.Solver.arena_bytes s1 <= Sat.Solver.arena_bytes s2)

let test_compaction_neutral_incremental () =
  (* repeated solve calls across compactions: reasons and watches must
     survive relocation between calls too *)
  let s1 = Sat.Solver.create ~with_proof:true (mk_cnf (php 5 4)) in
  let s2 = Sat.Solver.create ~with_proof:true (mk_cnf (php 5 4)) in
  Sat.Solver.set_max_learnts s1 10;
  Sat.Solver.set_max_learnts s2 10;
  Sat.Solver.set_gc_fraction s1 0.0;
  Sat.Solver.set_gc_fraction s2 infinity;
  for v = 0 to 3 do
    let a = Sat.Solver.solve ~assumptions:[ Sat.Lit.pos v ] s1 in
    let b = Sat.Solver.solve ~assumptions:[ Sat.Lit.pos v ] s2 in
    check_outcome "same outcome under assumptions" (outcome_str b) (outcome_str a)
  done;
  let a = Sat.Solver.solve s1 and b = Sat.Solver.solve s2 in
  check_outcome "same final outcome" (outcome_str b) (outcome_str a);
  Alcotest.(check (list int)) "same final core" (Sat.Solver.unsat_core s2)
    (Sat.Solver.unsat_core s1)

let test_arena_stats_populated () =
  let _, s = solve (php 5 4) in
  let st = Sat.Solver.stats s in
  Alcotest.(check bool) "arena_bytes recorded" true (st.Sat.Stats.arena_bytes > 0);
  Alcotest.(check int) "arena_bytes matches the arena" (Sat.Solver.arena_bytes s)
    st.Sat.Stats.arena_bytes;
  Alcotest.(check bool) "blockers pruned watcher visits" true (st.Sat.Stats.blocker_hits > 0)

(* ------------------------------------------------------------------ *)
(* Modes do not change answers.                                        *)
(* ------------------------------------------------------------------ *)

let test_modes_agree () =
  let clauses = php 5 4 in
  let rank = Array.init 20 (fun i -> float_of_int (i mod 7)) in
  List.iter
    (fun mode ->
      let o, _ = solve ~mode clauses in
      check_outcome "unsat in every mode" "UNSAT" (outcome_str o))
    [ Sat.Order.Vsids; Sat.Order.Static rank; Sat.Order.Dynamic rank ]

(* ------------------------------------------------------------------ *)
(* Randomised cross-checks.                                            *)
(* ------------------------------------------------------------------ *)

let brute_force cnf =
  let n = Sat.Cnf.num_vars cnf in
  let assign = Array.make (max n 1) false in
  let rec go i =
    if i = n then Sat.Cnf.eval cnf (fun v -> assign.(v))
    else begin
      assign.(i) <- false;
      go (i + 1)
      ||
      (assign.(i) <- true;
       go (i + 1))
    end
  in
  go 0

let random_cnf_gen =
  let open QCheck.Gen in
  let nvars = 1 -- 8 in
  nvars >>= fun nv ->
  let clause = list_size (1 -- 3) (pair (0 -- (nv - 1)) bool) in
  pair (return nv) (list_size (1 -- 30) clause)

let random_cnf_arbitrary = QCheck.make ~print:(fun _ -> "<cnf>") random_cnf_gen

let build (nv, cls) =
  let f = Sat.Cnf.create ~num_vars:nv () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) cls;
  f

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:600 random_cnf_arbitrary
    (fun input ->
      let cnf = build input in
      let s = Sat.Solver.create cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat -> brute_force cnf
      | Sat.Solver.Unsat -> not (brute_force cnf)
      | Sat.Solver.Unknown -> false)

let prop_models_are_valid =
  QCheck.Test.make ~name:"reported models satisfy the formula" ~count:600
    random_cnf_arbitrary (fun input ->
      let cnf = build input in
      let s = Sat.Solver.create cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
        let m = Sat.Solver.model s in
        Sat.Cnf.eval cnf (fun v -> m.(v))
      | Sat.Solver.Unsat -> true
      | Sat.Solver.Unknown -> false)

let prop_cores_are_unsat =
  QCheck.Test.make ~name:"extracted cores are themselves UNSAT" ~count:400
    random_cnf_arbitrary (fun input ->
      let cnf = build input in
      let s = Sat.Solver.create ~with_proof:true cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat -> true
      | Sat.Solver.Unknown -> false
      | Sat.Solver.Unsat ->
        let core = Sat.Solver.unsat_core s in
        let sub = Sat.Cnf.create ~num_vars:(Sat.Cnf.num_vars cnf) () in
        List.iter (fun i -> Sat.Cnf.add_clause_a sub (Sat.Cnf.get_clause cnf i)) core;
        not (brute_force sub))

let prop_core_vars_cover_core =
  QCheck.Test.make ~name:"core_vars = variables of core clauses" ~count:200
    random_cnf_arbitrary (fun input ->
      let cnf = build input in
      let s = Sat.Solver.create ~with_proof:true cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true
      | Sat.Solver.Unsat ->
        let core = Sat.Solver.unsat_core s in
        let expected = Hashtbl.create 16 in
        List.iter
          (fun i ->
            Array.iter
              (fun l -> Hashtbl.replace expected (Sat.Lit.var l) ())
              (Sat.Cnf.get_clause cnf i))
          core;
        let expected =
          Hashtbl.fold (fun v () acc -> v :: acc) expected [] |> List.sort Int.compare
        in
        Sat.Solver.core_vars s = expected)

let prop_modes_agree_randomised =
  QCheck.Test.make ~name:"all ordering modes give the same answer" ~count:200
    random_cnf_arbitrary (fun input ->
      let cnf = build input in
      let nv = Sat.Cnf.num_vars cnf in
      let rank = Array.init (max nv 1) (fun i -> float_of_int ((i * 7) mod 5)) in
      let run mode =
        let s = Sat.Solver.create ~mode cnf in
        Sat.Solver.solve s
      in
      let a = run Sat.Order.Vsids in
      let b = run (Sat.Order.Static rank) in
      let c = run (Sat.Order.Dynamic rank) in
      outcome_str a = outcome_str b && outcome_str b = outcome_str c)

let prop_compaction_neutral_randomised =
  QCheck.Test.make ~name:"compaction never changes outcome/learned/core" ~count:300
    random_cnf_arbitrary (fun (_nv, cls) ->
      let o1, s1 = run_with_gc cls ~gc:true in
      let o2, s2 = run_with_gc cls ~gc:false in
      outcome_str o1 = outcome_str o2
      && (Sat.Solver.stats s1).Sat.Stats.learned = (Sat.Solver.stats s2).Sat.Stats.learned
      &&
      match o1 with
      | Sat.Solver.Unsat -> Sat.Solver.core_vars s1 = Sat.Solver.core_vars s2
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true)

let tests =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty formula" `Quick test_empty_formula_sat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "satisfiable 3sat" `Quick test_satisfiable_3sat;
    Alcotest.test_case "duplicates and tautologies" `Quick test_duplicate_and_tautological_clauses;
    Alcotest.test_case "conflicting units" `Quick test_conflicting_units_at_creation;
    Alcotest.test_case "solve idempotent" `Quick test_solve_idempotent;
    Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
    Alcotest.test_case "propagation budget" `Quick test_propagation_budget;
    Alcotest.test_case "stop hook aborts" `Quick test_stop_hook_aborts;
    Alcotest.test_case "stop hook bounded latency" `Quick test_stop_hook_bounded_latency;
    Alcotest.test_case "stop hook observed mid-BCP" `Quick test_stop_hook_mid_bcp;
    Alcotest.test_case "stop hook inert" `Quick test_stop_hook_inert;
    Alcotest.test_case "dynamic switch fires" `Quick test_dynamic_switch_fires;
    Alcotest.test_case "core subset" `Quick test_core_subset_of_clauses;
    Alcotest.test_case "core requires proof" `Quick test_unsat_core_requires_proof;
    Alcotest.test_case "model on unsat rejected" `Quick test_model_on_unsat_rejected;
    Alcotest.test_case "wide clauses" `Quick test_wide_clauses;
    Alcotest.test_case "php(6,5) completes" `Quick test_hard_instance_completes_without_budget;
    Alcotest.test_case "modes agree on php" `Quick test_modes_agree;
    Alcotest.test_case "compaction neutral (php)" `Quick test_compaction_neutral_php;
    Alcotest.test_case "compaction neutral (incremental)" `Quick
      test_compaction_neutral_incremental;
    Alcotest.test_case "arena stats populated" `Quick test_arena_stats_populated;
    QCheck_alcotest.to_alcotest prop_compaction_neutral_randomised;
    QCheck_alcotest.to_alcotest prop_agrees_with_brute_force;
    QCheck_alcotest.to_alcotest prop_models_are_valid;
    QCheck_alcotest.to_alcotest prop_cores_are_unsat;
    QCheck_alcotest.to_alcotest prop_core_vars_cover_core;
    QCheck_alcotest.to_alcotest prop_modes_agree_randomised;
  ]
