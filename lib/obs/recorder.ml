type kind =
  | Restart
  | Reduce_db
  | Compact
  | Switch
  | Depth
  | Solve
  | Racer_start
  | Racer_cancel
  | Racer_win
  | Share_export
  | Share_import
  | Inprocess

(* 0 is reserved: a fresh (all-zero) slot decodes as no event. *)
let kind_to_int = function
  | Restart -> 1
  | Reduce_db -> 2
  | Compact -> 3
  | Switch -> 4
  | Depth -> 5
  | Solve -> 6
  | Racer_start -> 7
  | Racer_cancel -> 8
  | Racer_win -> 9
  | Share_export -> 10
  | Share_import -> 11
  | Inprocess -> 12

let kind_of_int = function
  | 1 -> Some Restart
  | 2 -> Some Reduce_db
  | 3 -> Some Compact
  | 4 -> Some Switch
  | 5 -> Some Depth
  | 6 -> Some Solve
  | 7 -> Some Racer_start
  | 8 -> Some Racer_cancel
  | 9 -> Some Racer_win
  | 10 -> Some Share_export
  | 11 -> Some Share_import
  | 12 -> Some Inprocess
  | _ -> None

let kind_name = function
  | Restart -> "restart"
  | Reduce_db -> "reduce_db"
  | Compact -> "compact"
  | Switch -> "switch"
  | Depth -> "depth"
  | Solve -> "solve"
  | Racer_start -> "racer_start"
  | Racer_cancel -> "racer_cancel"
  | Racer_win -> "racer_win"
  | Share_export -> "share_export"
  | Share_import -> "share_import"
  | Inprocess -> "inprocess"

let kind_of_name = function
  | "restart" -> Some Restart
  | "reduce_db" -> Some Reduce_db
  | "compact" -> Some Compact
  | "switch" -> Some Switch
  | "depth" -> Some Depth
  | "solve" -> Some Solve
  | "racer_start" -> Some Racer_start
  | "racer_cancel" -> Some Racer_cancel
  | "racer_win" -> Some Racer_win
  | "share_export" -> Some Share_export
  | "share_import" -> Some Share_import
  | "inprocess" -> Some Inprocess
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rings.

   One ring per domain that ever records through a given recorder; the
   owning domain is the only writer.  Each event occupies 4 plain ints
   [kind; a; b; t_us] at slot [seq mod cap]; [r_seq] counts completed
   events and is the sole synchronisation point: the writer fills the
   slot with plain stores, then publishes with [Atomic.set] (release).
   A snapshotting domain reads [r_seq] (acquire) before and after
   copying — see [snapshot] for the torn-slot argument. *)

type ring = {
  r_dom : int;
  r_buf : int array;  (* 4 * cap *)
  r_seq : int Atomic.t;  (* events completed; only the owner writes it *)
}

type t = {
  cap : int;
  epoch : float;
  registry : ring list ref;
  reg_mutex : Mutex.t;
  key : ring Domain.DLS.key;
}

let create ?(capacity = 4096) () =
  if capacity < 2 then invalid_arg "Recorder.create: capacity < 2";
  let registry = ref [] in
  let reg_mutex = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let r =
          {
            r_dom = (Domain.self () :> int);
            r_buf = Array.make (4 * capacity) 0;
            r_seq = Atomic.make 0;
          }
        in
        Mutex.protect reg_mutex (fun () -> registry := r :: !registry);
        r)
  in
  { cap = capacity; epoch = Unix.gettimeofday (); registry; reg_mutex; key }

let capacity t = t.cap

let record t kind ~a ~b =
  let r = Domain.DLS.get t.key in
  let s = Atomic.get r.r_seq in
  let base = s mod t.cap * 4 in
  r.r_buf.(base) <- kind_to_int kind;
  r.r_buf.(base + 1) <- a;
  r.r_buf.(base + 2) <- b;
  r.r_buf.(base + 3) <- int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1e6);
  Atomic.set r.r_seq (s + 1)

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

type entry = {
  e_dom : int;
  e_seq : int;
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_t_us : int;
}

let snapshot_ring cap r =
  let c1 = Atomic.get r.r_seq in
  let lo = max 0 (c1 - cap) in
  let copied =
    Array.init ((c1 - lo) * 4) (fun i ->
        let ev = lo + (i / 4) in
        r.r_buf.((ev mod cap * 4) + (i mod 4)))
  in
  let c2 = Atomic.get r.r_seq in
  (* The writer may since have started (or finished) events up to [c2];
     writing event [e] dirties the slot that held event [e - cap].  Only
     indices strictly above [c2 - cap] are guaranteed untouched. *)
  let keep = ref [] in
  for i = c1 - lo - 1 downto 0 do
    let ev = lo + i in
    if ev > c2 - cap then begin
      let base = i * 4 in
      match kind_of_int copied.(base) with
      | Some k ->
        keep :=
          {
            e_dom = r.r_dom;
            e_seq = ev;
            e_kind = k;
            e_a = copied.(base + 1);
            e_b = copied.(base + 2);
            e_t_us = copied.(base + 3);
          }
          :: !keep
      | None -> ()
    end
  done;
  !keep

let snapshot t =
  let rings = Mutex.protect t.reg_mutex (fun () -> !(t.registry)) in
  let all = List.concat_map (snapshot_ring t.cap) rings in
  List.sort
    (fun x y ->
      let c = compare x.e_t_us y.e_t_us in
      if c <> 0 then c
      else
        let c = compare x.e_dom y.e_dom in
        if c <> 0 then c else compare x.e_seq y.e_seq)
    all

(* ------------------------------------------------------------------ *)
(* JSONL dump / load. *)

let entry_to_json e =
  Json.to_string
    (Json.Obj
       [
         ("dom", Json.Int e.e_dom);
         ("seq", Json.Int e.e_seq);
         ("ev", Json.Str (kind_name e.e_kind));
         ("a", Json.Int e.e_a);
         ("b", Json.Int e.e_b);
         ("t_us", Json.Int e.e_t_us);
       ])

let entry_of_json line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> (
    match Json.member "ev" j with
    | Some (Json.Str name) -> (
      match kind_of_name name with
      | None -> Error (Printf.sprintf "unknown flight event %S" name)
      | Some k ->
        Ok
          {
            e_dom = Json.get_int j "dom";
            e_seq = Json.get_int j "seq";
            e_kind = k;
            e_a = Json.get_int j "a";
            e_b = Json.get_int j "b";
            e_t_us = Json.get_int j "t_us";
          })
    | _ -> Error "missing \"ev\" member")

let entries_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else
           match entry_of_json line with
           | Ok e -> Some e
           | Error msg -> failwith ("Recorder.entries_of_string: " ^ msg))

let output t oc =
  List.iter
    (fun e ->
      output_string oc (entry_to_json e);
      output_char oc '\n')
    (snapshot t)

let dump t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output t oc)

let on_signal t ~signal ~path =
  match Sys.signal signal (Sys.Signal_handle (fun _ -> dump t path)) with
  | _ -> ()
  | exception Invalid_argument _ | (exception Sys_error _) -> ()

let on_sigusr1 t ~path = on_signal t ~signal:Sys.sigusr1 ~path
