lib/sat/order.mli: Cnf Lit
