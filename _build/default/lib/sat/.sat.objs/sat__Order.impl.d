lib/sat/order.ml: Array Cnf Lit
