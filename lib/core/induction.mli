(** Temporal induction (k-induction) with refined decision orderings.

    BMC alone can only refute or bound-check an invariant; temporal
    induction (Eén–Sörensson, the paper's reference [5]) proves it outright:

    - {e base case} — the ordinary depth-k BMC instance
      [I(V⁰) ∧ ⋀T ∧ ¬P(V^k)] is unsatisfiable (no counterexample of length
      k);
    - {e step case} — the instance
      [⋀_{1≤i≤k+1}T(V^{i-1},W^i,V^i) ∧ P(V⁰) ∧ ... ∧ P(V^k) ∧ ¬P(V^{k+1})]
      over an {e arbitrary} (unconstrained) starting state is
      unsatisfiable: k+1 consecutive P-states can never step into a ¬P
      state.

    When both hold the property is proved for every depth.  The optional
    {e simple-path} strengthening conjoins pairwise state-disequality
    constraints over the step path, which makes the method complete (at the
    price of O(k²·registers) clauses).

    The base instances are the same correlated UNSAT sequence the paper
    exploits, so the refined ordering applies unchanged: cores from base
    instance k seed the decision ordering of instance k+1 — both cases run
    under the configured {!Engine.mode}.

    Both cases run as {!Session}s sharing one {!Score} — by default two
    persistent solvers (frame deltas loaded once, the per-depth property
    and uniqueness constraints guarded by activation literals and retired
    between depths); [~policy:Fresh] reproduces the seed's
    solver-per-instance behaviour.  The step session never feeds the score:
    its instances are not part of the correlated refutation sequence. *)

type verdict =
  | Proved of int
      (** the property is invariant; induction succeeded at this depth *)
  | Falsified of Trace.t  (** counterexample found by a base case *)
  | Unknown of int
      (** neither proved nor refuted up to [max_depth] (or budget hit) *)

type step_stat = {
  depth : int;
  base_outcome : Sat.Solver.outcome;
  step_outcome : Sat.Solver.outcome option;
      (** [None] when the base case already decided this depth *)
  base_decisions : int;
  step_decisions : int;
  time : float;
}

type result = {
  verdict : verdict;
  per_depth : step_stat list;
  total_time : float;
}

val prove :
  ?config:Engine.config ->
  ?policy:Session.policy ->
  ?simple_path:bool ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** Run the base/step alternation for k = 0, 1, ...  [config.max_depth]
    bounds k; [config.budget] caps each SAT call; [config.mode] selects the
    decision ordering of both cases.  [policy] (default [Persistent])
    selects the session substrate for both cases.  [simple_path] (default
    [false]) adds the pairwise-distinct-states constraints to the step
    case.
    @raise Invalid_argument if the netlist does not validate. *)

val prove_case :
  ?config:Engine.config ->
  ?policy:Session.policy ->
  ?simple_path:bool ->
  Circuit.Generators.case ->
  result

val pp_verdict : Format.formatter -> verdict -> unit
