test/test_lit.ml: Alcotest QCheck QCheck_alcotest Sat
