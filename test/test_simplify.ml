(* CNF preprocessing: equisatisfiability, model reconstruction, statistics. *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

let brute cnf =
  let n = Sat.Cnf.num_vars cnf in
  let a = Array.make (max n 1) false in
  let rec go i =
    if i = n then Sat.Cnf.eval cnf (fun v -> a.(v))
    else
      (a.(i) <- false;
       go (i + 1))
      ||
      (a.(i) <- true;
       go (i + 1))
  in
  go 0

let test_subsumption () =
  (* (x0) subsumes (x0 ∨ x1) *)
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, true); (1, true) ] ] in
  let r = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "some clause subsumed" true (r.subsumed_clauses >= 1)

let test_self_subsumption () =
  (* (x0 ∨ x1) with (¬x0 ∨ x1) strengthens to (x1) either way *)
  let cnf = mk_cnf [ [ (0, true); (1, true) ]; [ (0, false); (1, true) ] ] in
  let r = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "strengthened" true (r.strengthened_clauses >= 1);
  Alcotest.(check bool) "still satisfiable" true (brute r.simplified)

let test_variable_elimination () =
  (* x1 occurs once positively, once negatively: eliminated by resolution *)
  let cnf = mk_cnf [ [ (0, true); (1, true) ]; [ (1, false); (2, true) ] ] in
  let r = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "eliminated some variable" true (r.eliminated_vars >= 1)

let test_unsat_preserved () =
  let cnf =
    mk_cnf [ [ (0, true) ]; [ (0, false); (1, true) ]; [ (1, false) ] ]
  in
  let r = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "still unsat" false (brute r.simplified)

let test_tautologies_dropped () =
  let cnf = mk_cnf [ [ (0, true); (0, false) ]; [ (1, true) ] ] in
  let r = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "satisfiable" true (brute r.simplified)

let test_empty_formula () =
  let r = Sat.Simplify.preprocess (Sat.Cnf.create ~num_vars:3 ()) in
  Alcotest.(check int) "nothing to do" 0 (Sat.Cnf.num_clauses r.simplified);
  let m = r.reconstruct [| false; false; false |] in
  Alcotest.(check int) "model width" 3 (Array.length m)

let test_reconstruction_on_chain () =
  (* the implication chain forces every variable; elimination must not lose
     the forcing *)
  let n = 8 in
  let clauses =
    [ [ (0, true) ] ]
    @ List.init (n - 1) (fun i -> [ (i, false); (i + 1, true) ])
  in
  let cnf = mk_cnf clauses in
  let r = Sat.Simplify.preprocess cnf in
  let s = Sat.Solver.create r.simplified in
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat -> ()
  | o -> Alcotest.failf "expected SAT, got %a" Sat.Solver.pp_outcome o);
  let m = r.reconstruct (Sat.Solver.model s) in
  Alcotest.(check bool) "reconstructed model satisfies the original" true
    (Sat.Cnf.eval cnf (fun v -> m.(v)))

let test_frozen_vars_survive () =
  (* x1 is eliminable (one positive, one negative occurrence) but frozen:
     it must keep occurring, so assuming it later still constrains the
     simplified formula *)
  let cnf = mk_cnf [ [ (0, true); (1, true) ]; [ (1, false); (2, true) ] ] in
  let r = Sat.Simplify.preprocess ~frozen:[ 1; 2 ] cnf in
  (* solving the simplified formula under x1 must force x2, exactly as
     the original does — the satcheck --preprocess --assume contract *)
  let s = Sat.Solver.create r.simplified in
  (match Sat.Solver.solve ~assumptions:[ lit (1, true); lit (2, false) ] s with
  | Sat.Solver.Unknown -> Alcotest.fail "budget on a 3-var formula?"
  | o ->
    Alcotest.(check string) "x1 forces x2 after preprocessing" "unsat"
      (Sat.Solver.outcome_string o));
  (* and without freezing, the same assumptions would be vacuous *)
  let r' = Sat.Simplify.preprocess cnf in
  Alcotest.(check bool) "control: x1 eliminable when melted" true
    (r'.eliminated_vars >= 1)

let clause_gen nv =
  let open QCheck.Gen in
  list_size (1 -- 4) (pair (0 -- (nv - 1)) bool)

let formula_gen =
  let open QCheck.Gen in
  (1 -- 8) >>= fun nv -> pair (return nv) (list_size (0 -- 25) (clause_gen nv))

let prop_equisatisfiable =
  QCheck.Test.make ~name:"preprocessing is equisatisfiable" ~count:400
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let r = Sat.Simplify.preprocess cnf in
      brute cnf = brute r.simplified)

let prop_models_reconstruct =
  QCheck.Test.make ~name:"reconstructed models satisfy the original" ~count:400
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let r = Sat.Simplify.preprocess cnf in
      let s = Sat.Solver.create r.simplified in
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
        let m = r.reconstruct (Sat.Solver.model s) in
        Sat.Cnf.eval cnf (fun v -> m.(v))
      | Sat.Solver.Unsat -> not (brute cnf)
      | Sat.Solver.Unknown -> false)

let prop_simplified_not_larger =
  QCheck.Test.make ~name:"preprocessing never grows the clause count" ~count:200
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let r = Sat.Simplify.preprocess cnf in
      Sat.Cnf.num_clauses r.simplified <= Sat.Cnf.num_clauses cnf)

let tests =
  [
    Alcotest.test_case "subsumption" `Quick test_subsumption;
    Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
    Alcotest.test_case "variable elimination" `Quick test_variable_elimination;
    Alcotest.test_case "unsat preserved" `Quick test_unsat_preserved;
    Alcotest.test_case "tautologies dropped" `Quick test_tautologies_dropped;
    Alcotest.test_case "empty formula" `Quick test_empty_formula;
    Alcotest.test_case "reconstruction chain" `Quick test_reconstruction_on_chain;
    Alcotest.test_case "frozen variables survive" `Quick test_frozen_vars_survive;
    QCheck_alcotest.to_alcotest prop_equisatisfiable;
    QCheck_alcotest.to_alcotest prop_models_reconstruct;
    QCheck_alcotest.to_alcotest prop_simplified_not_larger;
  ]
