test/test_incremental.ml: Alcotest Bmc Circuit Format List Printf Sat
