type 'a entry = {
  ce_key : string;
  ce_digest : string;
  ce_netlist : Circuit.Netlist.t;
  ce_property : Circuit.Netlist.node;
  ce_mode : Bmc.Session.mode;
  ce_affinity : int;
  ce_deadline : float ref;
  mutable ce_session : Bmc.Session.t option;
  mutable ce_next_k : int;
  mutable ce_falsified : (int * Obs.Json.t) option;
  mutable ce_core : Sat.Lit.var list;
  mutable ce_bytes : int;
  mutable ce_stamp : int;
  mutable ce_busy : bool;
  mutable ce_waiting : 'a list;
}

type 'a t = {
  max_bytes : int;
  jobs : int;
  tbl : (string, 'a entry) Hashtbl.t;
  exchanges : (string, Share.Exchange.t) Hashtbl.t;
  mutable clock : int;
}

let create ~max_bytes ~jobs () =
  {
    max_bytes;
    jobs = max 1 jobs;
    tbl = Hashtbl.create 64;
    exchanges = Hashtbl.create 16;
    clock = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.ce_stamp <- tick t;
    Some e
  | None -> None

let add t ~key ~digest ~netlist ~property ~mode =
  if Hashtbl.mem t.tbl key then invalid_arg "Serve.Cache.add: duplicate key";
  let e =
    {
      ce_key = key;
      ce_digest = digest;
      ce_netlist = netlist;
      ce_property = property;
      ce_mode = mode;
      ce_affinity = Hashtbl.hash key mod t.jobs;
      ce_deadline = ref infinity;
      ce_session = None;
      ce_next_k = 0;
      ce_falsified = None;
      ce_core = [];
      ce_bytes = 0;
      ce_stamp = tick t;
      ce_busy = false;
      ce_waiting = [];
    }
  in
  Hashtbl.replace t.tbl key e;
  e

let invalidate e =
  e.ce_session <- None;
  e.ce_next_k <- 0;
  e.ce_core <- [];
  e.ce_bytes <- 0

let drop t e = Hashtbl.remove t.tbl e.ce_key

let resident_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.ce_bytes) t.tbl 0

let size t = Hashtbl.length t.tbl

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []

let evict t =
  let dropped = ref [] in
  let continue_ = ref true in
  while !continue_ && resident_bytes t > t.max_bytes do
    (* the oldest idle entry; busy entries (and their waiters) are pinned *)
    let victim =
      Hashtbl.fold
        (fun _ e best ->
          if e.ce_busy then best
          else
            match best with
            | Some b when b.ce_stamp <= e.ce_stamp -> best
            | _ -> Some e)
        t.tbl None
    in
    match victim with
    | Some e ->
      drop t e;
      dropped := e :: !dropped
    | None -> continue_ := false
  done;
  List.rev !dropped

let exchange t ~digest =
  match Hashtbl.find_opt t.exchanges digest with
  | Some ex -> ex
  | None ->
    let ex = Share.Exchange.create () in
    Hashtbl.replace t.exchanges digest ex;
    ex
