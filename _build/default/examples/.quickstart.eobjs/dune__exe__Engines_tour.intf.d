examples/engines_tour.mli:
