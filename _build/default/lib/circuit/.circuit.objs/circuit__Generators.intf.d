lib/circuit/generators.mli: Format Netlist
