(** Time-frame expansion with Tseitin CNF encoding (paper, Eq. 1).

    The unroller maintains a growing {e base} formula encoding
    [I(V⁰) ∧ ⋀_{1≤i≤k} T(V^{i-1}, W^i, V^i)] for the frames materialised so
    far, over the stable variable numbering of {!Varmap}.  The per-instance
    formula for depth k is the base restricted to frames 0..k plus the unit
    clause [¬P(V^k)].

    Encoding: one SAT variable per (node, frame); standard Tseitin clauses
    per gate; registers at frame 0 constrained to their declared initial
    value (free if nondeterministic), and at frame f > 0 equated to their
    next-state node at frame f-1.  With [~coi:true] only the property's cone
    of influence is encoded (VIS-style reduction); the default encodes the
    whole netlist, as an industrial front-end without COI would. *)

type t

val create :
  ?coi:bool -> ?constrain_init:bool -> Circuit.Netlist.t -> property:Circuit.Netlist.node -> t
(** @raise Invalid_argument if the netlist does not validate.
    [constrain_init] (default [true]) emits the frame-0 initial-value unit
    clauses; k-induction's step case turns it off so paths start in an
    arbitrary state. *)

val netlist : t -> Circuit.Netlist.t

val property : t -> Circuit.Netlist.node

val extend_to : t -> int -> unit
(** Materialise frames up to and including the given depth. *)

val depth : t -> int
(** Highest frame materialised so far, or -1 initially. *)

val base_cnf : t -> k:int -> Sat.Cnf.t
(** Frames 0..k without any property constraint — the raw
    [I(V⁰) ∧ ⋀ T(...)] (or just the transitions when [constrain_init] is
    off).  Callers add their own property units. *)

val instance : t -> k:int -> Sat.Cnf.t
(** The depth-k BMC instance: base clauses for frames 0..k plus [¬P(V^k)].
    Extends the unrolling as needed.  The returned formula is a snapshot;
    its clause indices are only meaningful against itself.

    {b Deprecated as an engine substrate}: rebuilding the monolithic
    instance at every depth is O(k²) clause construction across a run.
    Engines go through {!Session}, which feeds a persistent solver one
    {!iter_delta} frame at a time; [instance] remains for single-shot
    tools, the benchmark harness and tests. *)

val var_of : t -> node:Circuit.Netlist.node -> frame:int -> Sat.Lit.var
(** The SAT variable of a node at a frame (allocating if new). *)

val varmap : t -> Varmap.t

val frame_of_var : t -> Sat.Lit.var -> int option
(** Frame a SAT variable belongs to ([None] if unknown to the map). *)

val iter_delta : t -> frame:int -> (Sat.Lit.t list -> unit) -> unit
(** Iterate, in emission order, over exactly the base clauses produced by
    materialising that frame (its {e delta}).  Extends the unrolling if
    needed.  Concatenating the deltas for frames 0..k yields {!base_cnf}
    [~k] clause for clause, in the same order — this is what lets a
    {!Session} load each frame into a persistent solver exactly once. *)

val delta_cnf : t -> frame:int -> Sat.Cnf.t
(** The frame's delta as a standalone formula over the full variable range
    allocated once the frame is materialised (clauses of earlier frames are
    {e not} included). *)

val frame_clauses : t -> frame:int -> Sat.Lit.t list list
(** {!iter_delta} collected into a list (used by the incremental engine to
    feed the solver frame by frame).  Extends the unrolling if needed. *)

val num_vars_at : t -> frame:int -> int
(** Number of variables allocated once the given frame is materialised. *)

val clause_frame : t -> int -> int
(** Frame tag of the [i]-th base clause (indices align with {!base_cnf} /
    {!instance} when the unrolling was materialised to exactly the
    requested depth). *)

val clause_is_link : t -> int -> bool
(** Whether the [i]-th base clause is a register-link clause
    [v(reg, f) ↔ v(next, f−1)] (the interpolation partition needs to put
    frame-1 links on the A side). *)

val num_base_clauses : t -> int
