(** DIMACS CNF reader / writer.

    Accepts the standard format: optional [c]-comment lines, one
    [p cnf <vars> <clauses>] header, then whitespace-separated non-zero
    integers with [0] terminating each clause.  Clauses may span lines.
    The declared counts are checked loosely: more variables than declared is
    an error, fewer clauses than declared is an error, extra clauses are
    accepted with a warning channel left to the caller. *)

exception Parse_error of string
(** Raised with a human-readable message (includes a line number). *)

val parse_string : string -> Cnf.t

val parse_channel : in_channel -> Cnf.t

val parse_file : string -> Cnf.t
(** @raise Sys_error if the file cannot be opened. *)

val print : Format.formatter -> Cnf.t -> unit
(** Write in DIMACS format, header included. *)

val to_string : Cnf.t -> string

val write_file : string -> Cnf.t -> unit
