(* Depth-boundary inprocessing: outcome preservation, proof exactness and
   model reconstruction.

   Inprocessing is a performance device — it must be semantically
   invisible.  The tests here run every persistent-session engine twice,
   inprocessing off and on with an aggressive budget (so elimination and
   strengthening actually fire on tiny circuits), and demand identical
   verdicts; and at the solver level they demand that refutations found
   after an inprocessing pass still certify against the *original* formula
   and that SAT models still evaluate it to true. *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

let brute cnf =
  let n = Sat.Cnf.num_vars cnf in
  let a = Array.make (max n 1) false in
  let rec go i =
    if i = n then Sat.Cnf.eval cnf (fun v -> a.(v))
    else
      (a.(i) <- false;
       go (i + 1))
      ||
      (a.(i) <- true;
       go (i + 1))
  in
  go 0

(* a deterministic budget that fires on small inputs: no occurrence cap to
   speak of, generous probing, no wall-clock slice (reproducibility) *)
let eager = Sat.Inprocess.aggressive

(* ------------------------------------------------------------------ *)
(* Budget parsing.                                                     *)
(* ------------------------------------------------------------------ *)

let test_config_of_string () =
  (match Sat.Inprocess.config_of_string "default" with
  | Ok c -> Alcotest.(check int) "default occ" Sat.Inprocess.default.max_occurrences c.max_occurrences
  | Error e -> Alcotest.fail e);
  (match Sat.Inprocess.config_of_string "occ=16,probes=256,rounds=1" with
  | Ok c ->
    Alcotest.(check int) "occ" 16 c.max_occurrences;
    Alcotest.(check int) "probes" 256 c.max_probes;
    Alcotest.(check int) "rounds" 1 c.rounds
  | Error e -> Alcotest.fail e);
  (match Sat.Inprocess.config_of_string "ms=0" with
  | Ok c -> Alcotest.(check bool) "ms=0 disables the slice" true (c.time_slice = None)
  | Error e -> Alcotest.fail e);
  match Sat.Inprocess.config_of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "accepted an unknown key"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Solver level: random CNF.                                           *)
(* ------------------------------------------------------------------ *)

let clause_gen nv =
  let open QCheck.Gen in
  list_size (1 -- 4) (pair (0 -- (nv - 1)) bool)

let formula_gen =
  let open QCheck.Gen in
  (1 -- 8) >>= fun nv -> pair (return nv) (list_size (0 -- 25) (clause_gen nv))

let prop_solver_outcome_preserved =
  QCheck.Test.make ~name:"inprocess: solver outcome matches brute force" ~count:400
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let s = Sat.Solver.create cnf in
      ignore (Sat.Solver.inprocess ~config:eager s);
      match Sat.Solver.solve s with
      | Sat.Solver.Sat -> brute cnf
      | Sat.Solver.Unsat -> not (brute cnf)
      | Sat.Solver.Unknown -> false)

let prop_models_reconstruct =
  QCheck.Test.make ~name:"inprocess: models satisfy the original formula" ~count:400
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let s = Sat.Solver.create cnf in
      ignore (Sat.Solver.inprocess ~config:eager s);
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
        (* the model is reconstructed over the elimination stack; it must
           satisfy the formula as given, eliminated variables included *)
        let m = Sat.Solver.model s in
        Sat.Cnf.eval cnf (fun v -> m.(v))
      | Sat.Solver.Unsat -> not (brute cnf)
      | Sat.Solver.Unknown -> false)

let prop_frozen_assumptions_sound =
  QCheck.Test.make ~name:"inprocess: frozen assumption variables keep answers exact"
    ~count:300
    (QCheck.make QCheck.Gen.(pair formula_gen (list_size (1 -- 3) (pair (0 -- 7) bool))))
    (fun ((nv, cls), assumed) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let assumptions =
        List.filter_map
          (fun (v, sign) -> if v < nv then Some (Sat.Lit.make v sign) else None)
          assumed
      in
      let reference =
        Sat.Solver.solve ~assumptions (Sat.Solver.create cnf)
      in
      let s = Sat.Solver.create cnf in
      List.iter (fun l -> Sat.Solver.freeze s (Sat.Lit.var l)) assumptions;
      ignore (Sat.Solver.inprocess ~config:eager s);
      let outcome = Sat.Solver.solve ~assumptions s in
      Sat.Solver.outcome_string outcome = Sat.Solver.outcome_string reference)

let prop_proofs_stay_exact =
  QCheck.Test.make
    ~name:"inprocess: refutations certify and cores refer to original clauses" ~count:150
    (QCheck.make formula_gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let s = Sat.Solver.create ~with_proof:true ~with_drat:true cnf in
      ignore (Sat.Solver.inprocess ~config:eager s);
      match Sat.Solver.solve s with
      | Sat.Solver.Sat -> brute cnf
      | Sat.Solver.Unknown -> false
      | Sat.Solver.Unsat ->
        (not (brute cnf))
        (* the DRAT log includes every inprocessing derivation, so the
           independent checker replays it against the input formula *)
        && Sat.Checker.check_refutation cnf (Sat.Solver.drat_events s) = Ok ()
        && (* the core cites original clause ids only *)
        List.for_all
          (fun id -> id >= 0 && id < Sat.Cnf.num_clauses cnf)
          (Sat.Solver.unsat_core s))

(* ------------------------------------------------------------------ *)
(* Engine level: random circuits, inprocessing on ≡ off.               *)
(* ------------------------------------------------------------------ *)

let random_case_gen =
  let open QCheck.Gen in
  let* seed = 0 -- 100_000 in
  let* regs = 1 -- 6 in
  let* gates = 1 -- 25 in
  let* inputs = 0 -- 3 in
  return (Circuit.Generators.random ~seed ~regs ~gates ~inputs)

let arb =
  QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) random_case_gen

let config ?inprocess () =
  Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:8 ?inprocess ()

let same_verdict a b =
  match (a, b) with
  | Bmc.Engine.Falsified t, Bmc.Engine.Falsified t' -> t.Bmc.Trace.depth = t'.Bmc.Trace.depth
  | Bmc.Engine.Bounded_pass k, Bmc.Engine.Bounded_pass k' -> k = k'
  | Bmc.Engine.Aborted k, Bmc.Engine.Aborted k' -> k = k'
  | ( ( Bmc.Engine.Falsified _ | Bmc.Engine.Bounded_pass _ | Bmc.Engine.Aborted _ ),
      _ ) ->
    false

let prop_incremental_on_off =
  QCheck.Test.make ~name:"inprocess: incremental BMC verdicts unchanged" ~count:60 arb
    (fun case ->
      let off =
        Bmc.Incremental.run ~config:(config ()) case.netlist ~property:case.property
      in
      let on =
        Bmc.Incremental.run
          ~config:(config ~inprocess:eager ())
          case.netlist ~property:case.property
      in
      same_verdict off.verdict on.verdict)

let prop_induction_on_off =
  QCheck.Test.make ~name:"inprocess: induction verdicts unchanged" ~count:40 arb (fun case ->
      let prove cfg =
        (Bmc.Induction.prove ~config:cfg ~policy:Bmc.Session.Persistent ~simple_path:true
           case.netlist ~property:case.property)
          .verdict
      in
      match (prove (config ()), prove (config ~inprocess:eager ())) with
      | Bmc.Induction.Proved k, Bmc.Induction.Proved k' -> k = k'
      | Bmc.Induction.Falsified t, Bmc.Induction.Falsified t' ->
        t.Bmc.Trace.depth = t'.Bmc.Trace.depth
      | Bmc.Induction.Unknown k, Bmc.Induction.Unknown k' -> k = k'
      | ( ( Bmc.Induction.Proved _ | Bmc.Induction.Falsified _ | Bmc.Induction.Unknown _ ),
          _ ) ->
        false)

let prop_ltl_on_off =
  QCheck.Test.make ~name:"inprocess: LTL verdicts unchanged" ~count:40 arb (fun case ->
      let formula = Bmc.Ltl.eventually (Bmc.Ltl.atom case.property) in
      let check cfg = (Bmc.Ltl.check ~config:cfg case.netlist formula).verdict in
      match (check (config ()), check (config ~inprocess:eager ())) with
      | Bmc.Ltl.Falsified w, Bmc.Ltl.Falsified w' ->
        w.Bmc.Ltl.depth = w'.Bmc.Ltl.depth && w.Bmc.Ltl.loop_start = w'.Bmc.Ltl.loop_start
      | Bmc.Ltl.Bounded_pass k, Bmc.Ltl.Bounded_pass k' -> k = k'
      | Bmc.Ltl.Aborted k, Bmc.Ltl.Aborted k' -> k = k'
      | ((Bmc.Ltl.Falsified _ | Bmc.Ltl.Bounded_pass _ | Bmc.Ltl.Aborted _), _) -> false)

let prop_session_cores_still_exact =
  QCheck.Test.make
    ~name:"inprocess: session UNSAT cores still index the loaded groups" ~count:40 arb
    (fun case ->
      (* the engine consumes each UNSAT core to rebuild its ordering; a
         stale or out-of-range group id after elimination would poison the
         ranking or raise.  Run with proofs on and let the engine's own
         core consumption exercise the path; verdict equality is asserted
         by the on/off properties above, here we only require no raise. *)
      let (_ : Bmc.Engine.result) =
        Bmc.Incremental.run
          ~config:(config ~inprocess:eager ())
          case.netlist ~property:case.property
      in
      true)

let tests =
  [
    Alcotest.test_case "budget parsing" `Quick test_config_of_string;
    QCheck_alcotest.to_alcotest prop_solver_outcome_preserved;
    QCheck_alcotest.to_alcotest prop_models_reconstruct;
    QCheck_alcotest.to_alcotest prop_frozen_assumptions_sound;
    QCheck_alcotest.to_alcotest prop_proofs_stay_exact;
    QCheck_alcotest.to_alcotest prop_incremental_on_off;
    QCheck_alcotest.to_alcotest prop_induction_on_off;
    QCheck_alcotest.to_alcotest prop_ltl_on_off;
    QCheck_alcotest.to_alcotest prop_session_cores_still_exact;
  ]
