(* Netlist nodes are non-negative, so -1 is free for activation literals. *)
let activation_node = -1

let uses_cores (config : Engine.config) =
  match config.mode with
  | Engine.Static | Engine.Dynamic -> true
  | Engine.Standard | Engine.Shtrichman -> false

let order_mode (config : Engine.config) unroll score ~k =
  let num_vars = Varmap.num_vars (Unroll.varmap unroll) in
  match config.mode with
  | Engine.Standard -> Sat.Order.Vsids
  | Engine.Static -> Sat.Order.Static (Score.rank_array score ~num_vars)
  | Engine.Dynamic -> Sat.Order.Dynamic (Score.rank_array score ~num_vars)
  | Engine.Shtrichman -> Sat.Order.Static (Shtrichman.rank unroll ~k)

let stats_delta ~(before : Sat.Stats.t) ~(after : Sat.Stats.t) =
  {
    Sat.Stats.decisions = after.decisions - before.decisions;
    propagations = after.propagations - before.propagations;
    conflicts = after.conflicts - before.conflicts;
    restarts = after.restarts - before.restarts;
    learned = after.learned - before.learned;
    deleted = after.deleted - before.deleted;
    max_decision_level = after.max_decision_level;
    heuristic_switches = after.heuristic_switches - before.heuristic_switches;
    blocker_hits = after.blocker_hits - before.blocker_hits;
    arena_bytes = after.arena_bytes;
    arena_compactions = after.arena_compactions - before.arena_compactions;
    solve_time = after.solve_time -. before.solve_time;
    bcp_time = after.bcp_time -. before.bcp_time;
    analyze_time = after.analyze_time -. before.analyze_time;
  }

let run ?(config = Engine.default_config) netlist ~property =
  let cfg = config in
  let unroll = Unroll.create ~coi:cfg.coi netlist ~property in
  let score = Score.create ~weighting:cfg.weighting () in
  let with_proof = uses_cores cfg || cfg.collect_cores in
  let solver =
    Sat.Solver.create ~with_proof ~telemetry:cfg.telemetry (Sat.Cnf.create ())
  in
  let per_depth = ref [] in
  let start = Sys.time () in
  let finish verdict =
    let per_depth = List.rev !per_depth in
    let sum f = List.fold_left (fun acc d -> acc + f d) 0 per_depth in
    {
      Engine.verdict;
      per_depth;
      total_time = Sys.time () -. start;
      total_decisions = sum (fun (d : Engine.depth_stat) -> d.decisions);
      total_implications = sum (fun (d : Engine.depth_stat) -> d.implications);
      total_conflicts = sum (fun (d : Engine.depth_stat) -> d.conflicts);
    }
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Engine.Bounded_pass cfg.max_depth)
    else begin
      let tb = Sys.time () in
      (* feed the new frame's transition clauses to the persistent solver *)
      List.iter (Sat.Solver.add_clause solver) (Unroll.frame_clauses unroll ~frame:k);
      (* Guard ¬P(V^k) behind a fresh activation variable.  Activation
         variables are allocated through the shared Varmap under a reserved
         pseudo-node so they can never collide with the variables of frames
         materialised later. *)
      let act = Varmap.var (Unroll.varmap unroll) ~node:activation_node ~frame:k in
      let p_var = Unroll.var_of unroll ~node:property ~frame:k in
      Sat.Solver.add_clause solver [ Sat.Lit.neg p_var; Sat.Lit.neg act ];
      Sat.Solver.set_mode solver (order_mode cfg unroll score ~k);
      let build_time = Sys.time () -. tb in
      let cdg_before = Sat.Solver.cdg_seconds solver in
      let before = Sat.Stats.copy (Sat.Solver.stats solver) in
      let t0 = Sys.time () in
      let outcome =
        Sat.Solver.solve ~budget:cfg.budget ~assumptions:[ Sat.Lit.pos act ] solver
      in
      let time = Sys.time () -. t0 in
      let delta = stats_delta ~before ~after:(Sat.Solver.stats solver) in
      let core, core_vars =
        match outcome with
        | Sat.Solver.Unsat when with_proof ->
          (Sat.Solver.unsat_core solver, Sat.Solver.core_vars solver)
        | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> ([], [])
      in
      let stat =
        {
          Engine.depth = k;
          outcome;
          decisions = delta.Sat.Stats.decisions;
          implications = delta.Sat.Stats.propagations;
          conflicts = delta.Sat.Stats.conflicts;
          core_size = List.length core;
          core_var_count = List.length core_vars;
          switched = delta.Sat.Stats.heuristic_switches > 0;
          time;
          build_time;
          cdg_time = Sat.Solver.cdg_seconds solver -. cdg_before;
        }
      in
      Engine.emit_depth_event cfg.telemetry stat;
      per_depth := stat :: !per_depth;
      match outcome with
      | Sat.Solver.Sat ->
        let trace = Trace.of_model unroll ~k ~model:(Sat.Solver.model solver) in
        if not (Trace.replay trace netlist ~property) then
          failwith
            (Printf.sprintf
               "Incremental.run: counterexample at depth %d failed to replay (internal error)"
               k);
        finish (Engine.Falsified trace)
      | Sat.Solver.Unsat ->
        if uses_cores cfg then Score.update score ~instance:k ~core_vars;
        (* permanently disable this instance's property constraint *)
        Sat.Solver.add_clause solver [ Sat.Lit.neg act ];
        loop (k + 1)
      | Sat.Solver.Unknown -> finish (Engine.Aborted k)
    end
  in
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Incremental.run: " ^ msg));
  loop 0

let run_case ?config (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  run ~config case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
