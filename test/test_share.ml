(* Clause-exchange subsystem: ring broadcast semantics (overwrite-oldest,
   per-consumer cursors), exchange packing / dedup / caps, the solver-level
   export taint filter, and the QCheck soundness property that every
   exported clause is implied by the unguarded clauses alone. *)

module Ring = Share.Ring
module Exchange = Share.Exchange

(* ------------------------------------------------------------------ *)
(* Ring.                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_capacity_validated () =
  (match Ring.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  Alcotest.(check int) "capacity" 4 (Ring.capacity (Ring.create ~capacity:4))

let test_ring_delivers_in_order () =
  let r = Ring.create ~capacity:8 in
  let c = Ring.cursor r in
  List.iter (fun x -> Ring.publish r ~src:1 x) [ 10; 11; 12 ];
  let got = ref [] in
  let n = Ring.poll c (fun ~src x -> got := (src, x) :: !got) in
  Alcotest.(check int) "delivered" 3 n;
  Alcotest.(check (list (pair int int)))
    "in ticket order, with src"
    [ (1, 10); (1, 11); (1, 12) ]
    (List.rev !got);
  Alcotest.(check int) "nothing more" 0 (Ring.poll c (fun ~src:_ _ -> ()));
  Alcotest.(check int) "no drops" 0 (Ring.dropped c)

let test_ring_overwrites_oldest () =
  let r = Ring.create ~capacity:4 in
  let c = Ring.cursor r in
  for x = 0 to 9 do
    Ring.publish r ~src:0 x
  done;
  let got = ref [] in
  let n = Ring.poll c (fun ~src:_ x -> got := x :: !got) in
  (* a lapped consumer sees exactly the newest [capacity] entries *)
  Alcotest.(check int) "delivered" 4 n;
  Alcotest.(check (list int)) "newest survive" [ 6; 7; 8; 9 ] (List.rev !got);
  Alcotest.(check int) "losses counted" 6 (Ring.dropped c);
  Alcotest.(check int) "occupancy is capped" 4 (Ring.occupancy r);
  Alcotest.(check int) "published is monotonic" 10 (Ring.published r)

let test_ring_late_cursor_starts_at_oldest_readable () =
  let r = Ring.create ~capacity:4 in
  for x = 0 to 9 do
    Ring.publish r ~src:0 x
  done;
  let c = Ring.cursor r in
  let got = ref [] in
  ignore (Ring.poll c (fun ~src:_ x -> got := x :: !got));
  Alcotest.(check (list int)) "recent entries, nothing counted dropped" [ 6; 7; 8; 9 ]
    (List.rev !got);
  Alcotest.(check int) "no drops for a late joiner" 0 (Ring.dropped c)

let test_ring_independent_cursors () =
  let r = Ring.create ~capacity:8 in
  let a = Ring.cursor r and b = Ring.cursor r in
  Ring.publish r ~src:0 1;
  Alcotest.(check int) "a sees it" 1 (Ring.poll a (fun ~src:_ _ -> ()));
  Ring.publish r ~src:0 2;
  Alcotest.(check int) "a sees only the new one" 1 (Ring.poll a (fun ~src:_ _ -> ()));
  Alcotest.(check int) "b sees both" 2 (Ring.poll b (fun ~src:_ _ -> ()));
  Alcotest.(check int) "lag is zero when drained" 0 (Ring.lag a)

let test_ring_concurrent_publishers () =
  (* two domains publish concurrently; a coordinator cursor must account for
     every ticket exactly once (delivered + dropped = published) *)
  let r = Ring.create ~capacity:64 in
  let per = 500 in
  let worker src = Domain.spawn (fun () -> for x = 1 to per do Ring.publish r ~src x done) in
  let d1 = worker 1 and d2 = worker 2 in
  Domain.join d1;
  Domain.join d2;
  let c = Ring.cursor r in
  let n = Ring.poll c (fun ~src:_ _ -> ()) in
  Alcotest.(check int) "all tickets claimed" (2 * per) (Ring.published r);
  Alcotest.(check bool) "cursor saw at most capacity" true (n <= 64);
  Alcotest.(check bool) "cursor saw something" true (n > 0)

(* ------------------------------------------------------------------ *)
(* Exchange: packing.                                                  *)
(* ------------------------------------------------------------------ *)

let test_pack_roundtrip () =
  List.iter
    (fun (node, frame, neg) ->
      let k = Exchange.pack_lit ~node ~frame ~neg in
      Alcotest.(check bool) "key is non-negative" true (k >= 0);
      let n, f, s = Exchange.unpack_lit k in
      Alcotest.(check int) "node" node n;
      Alcotest.(check int) "frame" frame f;
      Alcotest.(check bool) "sign" neg s)
    [
      (0, 0, false);
      (0, 0, true);
      (17, 3, true);
      (Exchange.max_node - 1, Exchange.max_frame - 1, true);
    ]

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"pack_lit/unpack_lit roundtrip" ~count:500
    QCheck.(
      triple (int_bound (Exchange.max_node - 1)) (int_bound (Exchange.max_frame - 1)) bool)
    (fun (node, frame, neg) ->
      Exchange.unpack_lit (Exchange.pack_lit ~node ~frame ~neg) = (node, frame, neg))

(* ------------------------------------------------------------------ *)
(* Exchange: publish / drain.                                          *)
(* ------------------------------------------------------------------ *)

let mk_exchange ?(capacity = 64) ?(max_size = 8) ?(max_lbd = 4) () =
  Exchange.create
    ~config:
      { Exchange.default_config with Exchange.capacity; max_size; max_lbd }
    ()

let keys lits = Array.of_list (List.map (fun (n, f, neg) -> Exchange.pack_lit ~node:n ~frame:f ~neg) lits)

let test_exchange_caps_and_dedup () =
  let ex = mk_exchange ~max_size:3 ~max_lbd:2 () in
  let ep = Exchange.endpoint ex ~name:"a" in
  Alcotest.(check bool) "publishes" true
    (Exchange.publish ep (keys [ (1, 0, false); (2, 0, true) ]) ~lbd:2);
  Alcotest.(check bool) "duplicate suppressed" false
    (Exchange.publish ep (keys [ (2, 0, true); (1, 0, false) ]) ~lbd:1);
  Alcotest.(check bool) "size cap" false
    (Exchange.publish ep (keys [ (1, 0, false); (2, 0, false); (3, 0, false); (4, 0, false) ])
       ~lbd:1);
  Alcotest.(check bool) "lbd cap" false
    (Exchange.publish ep (keys [ (5, 0, false) ]) ~lbd:3);
  Alcotest.(check bool) "empty clause" false (Exchange.publish ep [||] ~lbd:1);
  let st = Exchange.stats ex in
  Alcotest.(check int) "one export" 1 st.Exchange.exported

let test_exchange_skips_own_and_counts_imports () =
  let ex = mk_exchange () in
  let a = Exchange.endpoint ex ~name:"a" in
  let b = Exchange.endpoint ex ~name:"b" in
  let c = Exchange.endpoint ex ~name:"c" in
  for i = 1 to 5 do
    ignore (Exchange.publish a (keys [ (i, 0, false) ]) ~lbd:1)
  done;
  Alcotest.(check int) "own clauses are invisible" 0
    (Exchange.drain a (fun _ ~origin:_ -> ()));
  let seen_b = ref 0 in
  Alcotest.(check int) "b imports all five" 5
    (Exchange.drain b (fun _ ~origin:_ -> incr seen_b));
  Alcotest.(check int) "callback per clause" 5 !seen_b;
  Alcotest.(check int) "c also imports" 5 (Exchange.drain c (fun _ ~origin:_ -> ()));
  Alcotest.(check int) "drain is idempotent" 0 (Exchange.drain b (fun _ ~origin:_ -> ()));
  let st = Exchange.stats ex in
  Alcotest.(check int) "exported" 5 st.Exchange.exported;
  (* two consumers each saw five deliveries, but a clause counts as imported
     once — the aggregate invariant imported <= exported is by construction *)
  Alcotest.(check int) "delivered counts every consumption" 10 st.Exchange.delivered;
  Alcotest.(check int) "imported counts distinct clauses" 5 st.Exchange.imported;
  Alcotest.(check bool) "imported <= exported" true (st.Exchange.imported <= st.Exchange.exported)

let test_exchange_import_dedup_and_republish () =
  let ex = mk_exchange () in
  let a = Exchange.endpoint ex ~name:"a" in
  let b = Exchange.endpoint ex ~name:"b" in
  ignore (Exchange.publish a (keys [ (1, 0, false); (2, 1, true) ]) ~lbd:2);
  Alcotest.(check int) "b imports it" 1 (Exchange.drain b (fun _ ~origin:_ -> ()));
  (* having imported the clause, b must not re-export it back to the ring *)
  Alcotest.(check bool) "no republish of an import" false
    (Exchange.publish b (keys [ (1, 0, false); (2, 1, true) ]) ~lbd:2);
  Alcotest.(check int) "still one export" 1 (Exchange.stats ex).Exchange.exported

let test_exchange_origin_roundtrip () =
  (* provenance: a clause published with a source clause id arrives with
     [Some (publisher endpoint id, id)]; one published without arrives
     origin-less *)
  let ex = mk_exchange () in
  let a = Exchange.endpoint ex ~name:"a" in
  let b = Exchange.endpoint ex ~name:"b" in
  ignore (Exchange.publish ~src_id:42 a (keys [ (1, 0, false) ]) ~lbd:1);
  ignore (Exchange.publish a (keys [ (2, 0, false) ]) ~lbd:1);
  let got = ref [] in
  ignore (Exchange.drain b (fun _ ~origin -> got := origin :: !got));
  let a_id = Exchange.endpoint_id a in
  Alcotest.(check (list (option (pair int int))))
    "origins travel with the clauses"
    [ Some (a_id, 42); None ]
    (List.rev !got)

let test_exchange_dropped_stale () =
  let ex = mk_exchange ~capacity:2 () in
  let a = Exchange.endpoint ex ~name:"a" in
  let b = Exchange.endpoint ex ~name:"b" in
  for i = 1 to 10 do
    ignore (Exchange.publish a (keys [ (i, 0, false) ]) ~lbd:1)
  done;
  let n = Exchange.drain b (fun _ ~origin:_ -> ()) in
  Alcotest.(check int) "only the live window arrives" 2 n;
  Exchange.note_dropped b 3;
  let st = Exchange.stats ex in
  Alcotest.(check int) "lapped and unmappable clauses counted" (8 + 3)
    st.Exchange.dropped_stale;
  Alcotest.(check int) "occupancy capped" 2 st.Exchange.occupancy

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_exchange_stats_pp () =
  let ex = mk_exchange () in
  let s = Format.asprintf "%a" Exchange.pp_stats (Exchange.stats ex) in
  Alcotest.(check bool) "mentions exported" true (contains_substring s "exported")

(* ------------------------------------------------------------------ *)
(* Solver-level export filter.                                         *)
(* ------------------------------------------------------------------ *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

(* Capture everything a solver exports while solving [clauses] under
   [assumptions], with [locals] marked instance-local. *)
let solve_capturing ?(max_size = 10) ?(max_lbd = 10) ~locals ~assumptions clauses =
  let s = Sat.Solver.create (mk_cnf clauses) in
  List.iter (fun v -> Sat.Solver.mark_local s v) locals;
  let exported = ref [] in
  Sat.Solver.set_share ~max_size ~max_lbd s
    ~export:(fun lits ~lbd:_ ~src_id:_ -> exported := Array.to_list lits :: !exported)
    ~import:(fun () -> []);
  let o = Sat.Solver.solve ~assumptions:(List.map lit assumptions) s in
  (o, List.rev !exported, Sat.Solver.stats s)

let test_tainted_learnts_withheld () =
  (* Under assumption g, both phases of the free variable d conflict through
     g-guarded clauses, so every learnt clause of this refutation is tainted:
     nothing may be exported, and the taint rejections must be counted. *)
  let g = 0 and d = 1 and b = 2 and c = 3 in
  let clauses =
    [
      [ (g, false); (d, false); (b, true) ];
      [ (g, false); (d, false); (b, false) ];
      [ (g, false); (d, true); (c, true) ];
      [ (g, false); (d, true); (c, false) ];
    ]
  in
  let o, exported, st =
    solve_capturing ~locals:[ g ] ~assumptions:[ (g, true) ] clauses
  in
  Alcotest.(check string) "UNSAT under the guard" "unsat" (Sat.Solver.outcome_string o);
  Alcotest.(check (list (list int))) "nothing exported" []
    (List.map (List.map Sat.Lit.to_dimacs) exported);
  Alcotest.(check bool) "taint rejections counted" true
    (st.Sat.Stats.shared_rejected_tainted >= 1)

let test_untainted_learnts_exported () =
  (* The same shape without a guard: the refutation is over free clauses
     only, so its short learnt clauses are exported. *)
  let d = 0 and b = 1 and c = 2 in
  let clauses =
    [
      [ (d, false); (b, true) ];
      [ (d, false); (b, false) ];
      [ (d, true); (c, true) ];
      [ (d, true); (c, false) ];
    ]
  in
  let o, exported, st = solve_capturing ~locals:[] ~assumptions:[] clauses in
  Alcotest.(check string) "UNSAT" "unsat" (Sat.Solver.outcome_string o);
  Alcotest.(check bool) "something exported" true (exported <> []);
  Alcotest.(check int) "no taint rejections" 0 st.Sat.Stats.shared_rejected_tainted

let test_set_share_drat_coexists_and_bad_caps_rejected () =
  (* DRAT logging and sharing now coexist: imports surface as "i"-prefixed
     trusted additions in the clausal proof rather than being forbidden *)
  let s = Sat.Solver.create ~with_drat:true (mk_cnf ~num_vars:1 [ [ (0, true) ] ]) in
  let first = ref true in
  Sat.Solver.set_share s
    ~export:(fun _ ~lbd:_ ~src_id:_ -> ())
    ~import:(fun () ->
      if !first then begin
        first := false;
        [ ([ lit (0, false) ], Some (1, 0)) ]
      end
      else []);
  let o = Sat.Solver.solve s in
  Alcotest.(check string) "refuted through the import" "unsat"
    (Sat.Solver.outcome_string o);
  let imported_events =
    List.filter
      (function Sat.Checker.Imported _ -> true | _ -> false)
      (Sat.Solver.drat_events s)
  in
  Alcotest.(check int) "import logged as a trusted addition" 1
    (List.length imported_events);
  let s2 = Sat.Solver.create (mk_cnf [ [ (0, true) ] ]) in
  match
    Sat.Solver.set_share ~max_size:0 s2
      ~export:(fun _ ~lbd:_ ~src_id:_ -> ())
      ~import:(fun () -> [])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "set_share accepted max_size 0"

let test_import_attaches_and_constrains () =
  (* importing the two units (x0) and (x1) must constrain the model *)
  let imports = ref [ ([ lit (0, true) ], None); ([ lit (1, true) ], Some (3, 5)) ] in
  let s = Sat.Solver.create (mk_cnf ~num_vars:2 [ [ (0, true); (1, true) ] ]) in
  Sat.Solver.set_share s
    ~export:(fun _ ~lbd:_ ~src_id:_ -> ())
    ~import:(fun () ->
      let cs = !imports in
      imports := [];
      cs);
  let o = Sat.Solver.solve s in
  Alcotest.(check string) "SAT" "sat" (Sat.Solver.outcome_string o);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "import x0 respected" true m.(0);
  Alcotest.(check bool) "import x1 respected" true m.(1);
  Alcotest.(check int) "imports counted" 2 (Sat.Solver.stats s).Sat.Stats.shared_imported

let test_import_conflicting_clause_refutes () =
  let first = ref true in
  let s = Sat.Solver.create (mk_cnf ~num_vars:1 [ [ (0, true) ] ]) in
  Sat.Solver.set_share s
    ~export:(fun _ ~lbd:_ ~src_id:_ -> ())
    ~import:(fun () ->
      if !first then begin
        first := false;
        [ ([ lit (0, false) ], None) ]
      end
      else []);
  let o = Sat.Solver.solve s in
  Alcotest.(check string) "UNSAT from the imported unit" "unsat"
    (Sat.Solver.outcome_string o)

(* ------------------------------------------------------------------ *)
(* QCheck: export soundness.                                           *)
(* ------------------------------------------------------------------ *)

(* Random mixed instances: clean clauses over x1..x6 plus a guarded block
   (same shape with ¬g added).  Every clause the solver exports while
   solving under the assumption g must (a) avoid the local guard variable
   and (b) be implied by the clean clauses alone — checked by refuting
   clean ∧ ¬clause with a fresh solver.  This is the exchange's soundness
   contract: an export is a consequence any sibling may adopt. *)
let random_mixed_gen =
  let open QCheck.Gen in
  let var = int_range 1 6 in
  let literal = pair var bool in
  let clause = list_size (int_range 1 3) literal in
  let clauses = list_size (int_range 1 10) clause in
  pair clauses clauses

let random_mixed_arbitrary =
  QCheck.make ~print:(fun _ -> "<mixed cnf>") random_mixed_gen

let prop_exports_sound =
  QCheck.Test.make ~name:"exports avoid locals and follow from clean clauses" ~count:300
    random_mixed_arbitrary (fun (clean, guarded) ->
      let g = 0 in
      let all = clean @ List.map (fun c -> (g, false) :: c) guarded in
      let _, exported, _ =
        solve_capturing ~locals:[ g ] ~assumptions:[ (g, true) ] all
      in
      List.for_all
        (fun clause ->
          List.for_all (fun l -> Sat.Lit.var l <> g) clause
          &&
          (* refutation check: clean ∧ ¬clause must be UNSAT *)
          let f = mk_cnf ~num_vars:7 clean in
          List.iter (fun l -> Sat.Cnf.add_clause f [ Sat.Lit.negate l ]) clause;
          let s = Sat.Solver.create f in
          Sat.Solver.solve s = Sat.Solver.Unsat)
        exported)

(* ------------------------------------------------------------------ *)
(* Session-level: packed keys never carry pseudo-nodes.                *)
(* ------------------------------------------------------------------ *)

let test_session_share_persistent_only () =
  let case = Circuit.Generators.ring ~len:4 () in
  let ex = Exchange.create () in
  let ep = Exchange.endpoint ex ~name:"t" in
  match
    Bmc.Session.create ~policy:Bmc.Session.Fresh ~share:ep
      (Bmc.Session.make_config ())
      case.Circuit.Generators.netlist ~property:case.Circuit.Generators.property
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Fresh policy accepted a share endpoint"

let test_session_exports_decode_to_circuit_nodes () =
  (* Drive one sharing session over a small passing circuit, then decode
     every packed key in the ring: all must name real (non-negative)
     circuit nodes in materialised frames — activation guards and Tseitin
     auxiliaries live on negative pseudo-nodes and must never appear. *)
  let case = Circuit.Generators.ring ~len:6 ~noise:8 () in
  let max_depth = 6 in
  let ex = Exchange.create () in
  let ep = Exchange.endpoint ex ~name:"t" in
  let r =
    Bmc.Session.check
      ~config:(Bmc.Session.make_config ~max_depth ())
      ~share:ep ~policy:Bmc.Session.Persistent case.Circuit.Generators.netlist
      ~property:case.Circuit.Generators.property
  in
  (match r.Bmc.Session.verdict with
  | Bmc.Session.Bounded_pass _ -> ()
  | _ -> Alcotest.fail "expected Bounded_pass");
  let clauses = Exchange.dump ex in
  List.iter
    (fun clause ->
      Array.iter
        (fun key ->
          let node, frame, _neg = Exchange.unpack_lit key in
          Alcotest.(check bool) "node is a circuit node" true (node >= 0);
          Alcotest.(check bool) "frame was materialised" true
            (frame >= 0 && frame <= max_depth + 1))
        clause)
    clauses

let tests =
  [
    Alcotest.test_case "ring: capacity validated" `Quick test_ring_capacity_validated;
    Alcotest.test_case "ring: delivers in order" `Quick test_ring_delivers_in_order;
    Alcotest.test_case "ring: overwrites oldest" `Quick test_ring_overwrites_oldest;
    Alcotest.test_case "ring: late cursor" `Quick test_ring_late_cursor_starts_at_oldest_readable;
    Alcotest.test_case "ring: independent cursors" `Quick test_ring_independent_cursors;
    Alcotest.test_case "ring: concurrent publishers" `Quick test_ring_concurrent_publishers;
    Alcotest.test_case "exchange: pack roundtrip" `Quick test_pack_roundtrip;
    QCheck_alcotest.to_alcotest prop_pack_roundtrip;
    Alcotest.test_case "exchange: caps and dedup" `Quick test_exchange_caps_and_dedup;
    Alcotest.test_case "exchange: own-skip and import counting" `Quick
      test_exchange_skips_own_and_counts_imports;
    Alcotest.test_case "exchange: imports are not republished" `Quick
      test_exchange_import_dedup_and_republish;
    Alcotest.test_case "exchange: origin roundtrip" `Quick test_exchange_origin_roundtrip;
    Alcotest.test_case "exchange: dropped-stale accounting" `Quick test_exchange_dropped_stale;
    Alcotest.test_case "exchange: stats printer" `Quick test_exchange_stats_pp;
    Alcotest.test_case "solver: tainted learnts withheld" `Quick test_tainted_learnts_withheld;
    Alcotest.test_case "solver: untainted learnts exported" `Quick
      test_untainted_learnts_exported;
    Alcotest.test_case "solver: set_share validation" `Quick
      test_set_share_drat_coexists_and_bad_caps_rejected;
    Alcotest.test_case "solver: imports constrain the model" `Quick
      test_import_attaches_and_constrains;
    Alcotest.test_case "solver: conflicting import refutes" `Quick
      test_import_conflicting_clause_refutes;
    QCheck_alcotest.to_alcotest prop_exports_sound;
    Alcotest.test_case "session: sharing is Persistent-only" `Quick
      test_session_share_persistent_only;
    Alcotest.test_case "session: exports decode to circuit nodes" `Quick
      test_session_exports_decode_to_circuit_nodes;
  ]
