module Pool = Pool
module Session = Bmc.Session

(* ------------------------------------------------------------------ *)
(* Mode A: strategy races.                                             *)
(* ------------------------------------------------------------------ *)

type racer = {
  r_name : string;
  r_mode : Session.mode;
  r_restart_base : int option;
  r_conflicts : int option;
  r_seconds : float option;
}

let racer ?restart_base ?conflicts ?seconds ~name mode =
  (match conflicts with
  | Some c when c < 1 -> invalid_arg "Portfolio.racer: conflicts must be >= 1"
  | _ -> ());
  (match seconds with
  | Some s when s <= 0.0 -> invalid_arg "Portfolio.racer: seconds must be positive"
  | _ -> ());
  {
    r_name = name;
    r_mode = mode;
    r_restart_base = restart_base;
    r_conflicts = conflicts;
    r_seconds = seconds;
  }

(* Distinct Luby units diversify the racers' restart schedules — and
   therefore which clauses each learns and offers to the exchange. *)
let default_racers =
  [
    racer ~name:"standard" ~restart_base:64 Session.Standard;
    racer ~name:"static" ~restart_base:100 Session.Static;
    racer ~name:"dynamic" ~restart_base:150 Session.Dynamic;
  ]

(* Every slot field except the token is reconfigured when the slot rotates
   onto the next roster entry.  The coordinator only touches them between
   rounds (race_depth's wait loop is the quiescence barrier), so the
   worker that runs the slot's jobs always sees a settled configuration. *)
type slot = {
  mutable s_name : string;
  mutable s_mode : Session.mode;
  mutable s_base : int option; (* per-racer Luby restart unit override *)
  mutable s_conflicts : int option; (* per-racer conflict budget *)
  mutable s_seconds : float option; (* per-racer CPU-seconds budget *)
  s_token : Pool.Token.t;
  (* The racer's persistent session.  Created lazily by the first job that
     runs on the slot's pinned worker and only ever touched there — the
     coordinator must never dereference it (Session's ownership rule);
     dropping the reference on rotation is its only permitted write. *)
  mutable s_session : Session.t option;
}

type race = {
  r_pool : Pool.t;
  r_cfg : Session.config;
  r_netlist : Circuit.Netlist.t;
  r_property : Circuit.Netlist.node;
  r_slots : slot array;
  r_score : Bmc.Score.t;
  (* Win tallies are keyed by racer name (slots change identity under
     rotation); r_names remembers first-appearance order for reports. *)
  r_wins : (string, int) Hashtbl.t;
  mutable r_names : string list; (* reversed *)
  mutable r_rotation : racer list; (* untried roster entries, in order *)
  mutable r_rotated : int; (* total rotations performed *)
  r_share : Share.Exchange.t option;
  mutable r_last_k : int;
}

let mode_string m = Format.asprintf "%a" Session.pp_mode m

let slot_of_racer r =
  {
    s_name = r.r_name;
    s_mode = r.r_mode;
    s_base = r.r_restart_base;
    s_conflicts = r.r_conflicts;
    s_seconds = r.r_seconds;
    s_token = Pool.Token.create ();
    s_session = None;
  }

let note_name race name =
  if not (Hashtbl.mem race.r_wins name) then begin
    Hashtbl.replace race.r_wins name 0;
    race.r_names <- name :: race.r_names
  end

let create_race ?modes ?racers ?(rotation = []) ?share ~pool cfg netlist ~property =
  let racers =
    match (racers, modes) with
    | Some rs, _ -> rs
    | None, Some ms -> List.map (fun m -> racer ~name:(mode_string m) m) ms
    | None, None -> default_racers
  in
  if racers = [] then invalid_arg "Portfolio.create_race: no racers";
  (* validate the netlist in the coordinator, where the error is useful,
     rather than inside a worker job *)
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Portfolio.create_race: " ^ msg));
  let cfg = { cfg with Session.collect_cores = true } in
  let slots = Array.of_list (List.map slot_of_racer racers) in
  let race =
    {
      r_pool = pool;
      r_cfg = cfg;
      r_netlist = netlist;
      r_property = property;
      r_slots = slots;
      r_score = Bmc.Score.create ~weighting:cfg.Session.weighting ();
      r_wins = Hashtbl.create 7;
      r_names = [];
      r_rotation = rotation;
      r_rotated = 0;
      r_share = share;
      r_last_k = -1;
    }
  in
  Array.iter (fun sl -> note_name race sl.s_name) slots;
  race

(* Runs inside the slot's pinned worker. *)
let slot_session race slot =
  match slot.s_session with
  | Some s -> s
  | None ->
    let base = race.r_cfg.Session.budget in
    let token_stop = Pool.Token.stop_hook slot.s_token in
    let stop =
      match base.Sat.Solver.stop with
      | None -> token_stop
      | Some f -> fun () -> token_stop () || f ()
    in
    (* tightest of the run-wide and per-racer budgets wins *)
    let min_opt a b =
      match (a, b) with
      | Some x, Some y -> Some (min x y)
      | (Some _ as s), None | None, s -> s
    in
    let cfg =
      {
        race.r_cfg with
        Session.mode = slot.s_mode;
        budget =
          {
            base with
            Sat.Solver.max_conflicts =
              min_opt base.Sat.Solver.max_conflicts slot.s_conflicts;
            max_seconds = min_opt base.Sat.Solver.max_seconds slot.s_seconds;
            stop = Some stop;
          };
        restart_base =
          (match slot.s_base with
          | Some _ as b -> b
          | None -> race.r_cfg.Session.restart_base);
      }
    in
    (* The endpoint, like the session, is created inside the pinned worker
       and confined to it; only the exchange itself is shared. *)
    let share =
      Option.map
        (fun ex -> Share.Exchange.endpoint ex ~name:slot.s_name)
        race.r_share
    in
    (* [fold_cores:false]: racers extract cores but never write the shared
       score — the coordinator folds exactly one core (the winner's) per
       depth, between rounds. *)
    let s =
      Session.create ?share ~score:race.r_score ~fold_cores:false cfg race.r_netlist
        ~property:race.r_property
    in
    slot.s_session <- Some s;
    s

type attempt = {
  a_stat : Session.depth_stat;
  a_trace : Bmc.Trace.t option;
  a_core_vars : Sat.Lit.var list;
  a_finished : float; (* wall clock *)
}

type race_stat = {
  depth : int;
  winner : string option;
  stat : Session.depth_stat;
  core_vars : Sat.Lit.var list;
  attempts : (string * Sat.Solver.outcome) list;
  wall : float;
  cancelled : int;
  max_cancel_latency : float;
  rotated : int;
  trace : Bmc.Trace.t option;
}

let definitive = function
  | Sat.Solver.Sat | Sat.Solver.Unsat -> true
  | Sat.Solver.Unknown -> false

let race_depth race ~k =
  if k <= race.r_last_k then
    invalid_arg "Portfolio.race_depth: depth must increase between rounds";
  race.r_last_k <- k;
  let slots = race.r_slots in
  let n = Array.length slots in
  let tel = race.r_cfg.Session.telemetry in
  (* all prior rounds have settled, so re-arming the tokens is safe *)
  Array.iter (fun sl -> Pool.Token.reset sl.s_token) slots;
  let cm = Mutex.create () in
  let ccv = Condition.create () in
  let results = Array.make n None in
  let settled = ref 0 in
  let winner = ref None in
  let cancel_at = ref 0.0 in
  let t0 = Pool.wall () in
  (* Flight events land in the recording worker's own ring. *)
  let frecord kind ~slot =
    match race.r_cfg.Session.recorder with
    | Some r -> Obs.Recorder.record r kind ~a:k ~b:slot
    | None -> ()
  in
  let job i () =
    frecord Obs.Recorder.Racer_start ~slot:i;
    let outcome =
      try
        let s = slot_session race slots.(i) in
        let st = Session.solve_depth s ~k in
        let tr =
          match st.Session.outcome with
          | Sat.Solver.Sat -> Some (Session.trace s)
          | Sat.Solver.Unsat | Sat.Solver.Unknown -> None
        in
        Ok
          {
            a_stat = st;
            a_trace = tr;
            a_core_vars = Session.last_core_vars s;
            a_finished = Pool.wall ();
          }
      with e -> Error e
    in
    Mutex.protect cm (fun () ->
        results.(i) <- Some outcome;
        (match outcome with
        | Ok a when definitive a.a_stat.Session.outcome && !winner = None ->
          winner := Some i;
          cancel_at := Pool.wall ();
          frecord Obs.Recorder.Racer_win ~slot:i;
          (* cancel from inside the winning job: lower cancellation latency
             than waiting for the coordinator to wake up *)
          Array.iteri (fun j sl -> if j <> i then Pool.Token.cancel sl.s_token) slots
        | Ok a ->
          if
            Pool.Token.cancelled slots.(i).s_token
            && not (definitive a.a_stat.Session.outcome)
          then frecord Obs.Recorder.Racer_cancel ~slot:i
        | Error _ -> ());
        incr settled;
        Condition.broadcast ccv)
  in
  Array.iteri (fun i _ -> ignore (Pool.submit ~affinity:i ~label:"race" race.r_pool (job i)))
    slots;
  Mutex.lock cm;
  while !settled < n do
    Condition.wait ccv cm
  done;
  Mutex.unlock cm;
  let wall = Pool.wall () -. t0 in
  (* every racer has settled: surface any racer exception first *)
  let attempts =
    Array.map
      (function
        | Some (Ok a) -> a
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  in
  let cancelled = ref 0 in
  let max_latency = ref 0.0 in
  let folded_core_vars = ref None in
  (* The winner's name is read before rotation reconfigures any slot. *)
  let winner_name = Option.map (fun w -> slots.(w).s_name) !winner in
  (match !winner with
  | None -> ()
  | Some w ->
    let name = slots.(w).s_name in
    Hashtbl.replace race.r_wins name
      (1 + Option.value (Hashtbl.find_opt race.r_wins name) ~default:0);
    Array.iteri
      (fun j a ->
        if j <> w && Pool.Token.cancelled slots.(j).s_token
           && not (definitive a.a_stat.Session.outcome)
        then begin
          incr cancelled;
          let lat = Float.max 0.0 (a.a_finished -. !cancel_at) in
          if lat > !max_latency then max_latency := lat;
          if Telemetry.enabled tel then
            Telemetry.span_event tel "cancel_latency" ~dur:lat
              [
                ("depth", Telemetry.Sink.Int k);
                ("mode", Telemetry.Sink.Str slots.(j).s_name);
              ]
        end)
      attempts;
    (* the paper's refinement step, once per depth: only the winner's core
       reaches the shared ranking.  With sharing on, the winner's local core
       may lean on imported clauses; every racer has settled by now (the
       wait loop above is the quiescence barrier), so stitch the racers'
       proof shards and fold the winner's true cross-solver core instead of
       its local projection. *)
    let wa = attempts.(w) in
    (match wa.a_stat.Session.outcome with
    | Sat.Solver.Unsat ->
      let core_vars =
        match (race.r_share, slots.(w).s_session) with
        | Some _, Some ws ->
          let siblings sid =
            Array.fold_left
              (fun acc sl ->
                match acc with
                | Some _ -> acc
                | None -> (
                  match sl.s_session with
                  | Some s when Session.solver_id s = sid -> Some s
                  | Some _ | None -> None))
              None slots
          in
          Session.exact_core_vars ws ~siblings
        | _ -> wa.a_core_vars
      in
      folded_core_vars := Some core_vars;
      Bmc.Score.update race.r_score ~instance:k ~core_vars
    | Sat.Solver.Sat | Sat.Solver.Unknown -> ()));
  (* Capture the round's attempt labels before rotation renames slots. *)
  let attempt_list =
    Array.to_list
      (Array.mapi (fun i a -> (slots.(i).s_name, a.a_stat.Session.outcome)) attempts)
  in
  (* Restart-boundary rotation: a loser that burned through its own
     per-racer budget (rather than being cancelled early by the winner) is
     recycled onto the next untried roster entry.  Its session reference is
     dropped — the quiescence barrier above guarantees no worker holds it —
     and the replacement heuristic's session is built lazily on the same
     pinned worker at the next round. *)
  let rotated = ref 0 in
  let budget_spent sl (a : attempt) =
    (match sl.s_conflicts with
    | Some c -> a.a_stat.Session.conflicts >= c
    | None -> false)
    || match sl.s_seconds with
       | Some s -> a.a_stat.Session.time >= s
       | None -> false
  in
  Array.iteri
    (fun i a ->
      let losing = match !winner with Some w -> i <> w | None -> true in
      if
        losing
        && (not (definitive a.a_stat.Session.outcome))
        && budget_spent slots.(i) a
      then
        match race.r_rotation with
        | [] -> ()
        | next :: rest ->
          race.r_rotation <- rest;
          let sl = slots.(i) in
          let old = sl.s_name in
          sl.s_name <- next.r_name;
          sl.s_mode <- next.r_mode;
          sl.s_base <- next.r_restart_base;
          sl.s_conflicts <- next.r_conflicts;
          sl.s_seconds <- next.r_seconds;
          sl.s_session <- None;
          note_name race next.r_name;
          incr rotated;
          race.r_rotated <- race.r_rotated + 1;
          if Telemetry.enabled tel then
            Telemetry.event tel "rotate"
              [
                ("depth", Telemetry.Sink.Int k);
                ("from", Telemetry.Sink.Str old);
                ("to", Telemetry.Sink.Str next.r_name);
              ])
    attempts;
  if Telemetry.enabled tel then begin
    Telemetry.event tel "race"
      [
        ("depth", Telemetry.Sink.Int k);
        ( "winner",
          Telemetry.Sink.Str
            (match winner_name with Some n -> n | None -> "none") );
        ("wall_s", Telemetry.Sink.Float wall);
        ("cancelled", Telemetry.Sink.Int !cancelled);
        ("rotated", Telemetry.Sink.Int !rotated);
        ( "racers",
          Telemetry.Sink.Str (String.concat "," (List.map fst attempt_list)) );
      ];
    (match winner_name with
    | Some n -> Telemetry.counter tel ("race.win." ^ n) 1
    | None -> ());
    if !cancelled > 0 then Telemetry.counter tel "race.cancelled" !cancelled
  end;
  let best = match !winner with Some w -> attempts.(w) | None -> attempts.(0) in
  {
    depth = k;
    winner = winner_name;
    stat = best.a_stat;
    core_vars =
      (match !folded_core_vars with Some v -> v | None -> best.a_core_vars);
    attempts = attempt_list;
    wall;
    cancelled = !cancelled;
    max_cancel_latency = !max_latency;
    rotated = !rotated;
    trace = best.a_trace;
  }

let race_score race = race.r_score

(* Sessions publish per-instance share deltas (exported / imported /
   rejected_tainted) themselves; the stale-drop count only exists at the
   exchange, so the coordinator flushes it once a run is over. *)
let emit_share_drops tel = function
  | None -> ()
  | Some ex ->
    if Telemetry.enabled tel then
      List.iter
        (fun (name, v) -> if name = "dropped_stale" && v > 0 then
            Telemetry.counter tel ("share." ^ name) v)
        (Share.Exchange.stats_fields (Share.Exchange.stats ex))

type result = {
  verdict : Session.verdict;
  per_depth : race_stat list;
  total_wall : float;
  wins : (string * int) list;
  rotated : int;
}

let race_wins race =
  List.rev_map
    (fun n -> (n, Option.value (Hashtbl.find_opt race.r_wins n) ~default:0))
    race.r_names

let race_rotated race = race.r_rotated

let check_race ?(config = Session.default_config) ?modes ?racers ?rotation ?share ~pool
    netlist ~property =
  let race = create_race ?modes ?racers ?rotation ?share ~pool config netlist ~property in
  let per_depth = ref [] in
  let t0 = Pool.wall () in
  let finish verdict =
    emit_share_drops config.Session.telemetry race.r_share;
    {
      verdict;
      per_depth = List.rev !per_depth;
      total_wall = Pool.wall () -. t0;
      wins = race_wins race;
      rotated = race.r_rotated;
    }
  in
  let rec loop k =
    if k > config.Session.max_depth then finish (Session.Bounded_pass config.Session.max_depth)
    else begin
      let rs = race_depth race ~k in
      per_depth := rs :: !per_depth;
      match rs.winner with
      | None -> finish (Session.Aborted k)
      | Some _ -> (
        match rs.stat.Session.outcome with
        | Sat.Solver.Sat ->
          let tr = match rs.trace with Some t -> t | None -> assert false in
          if not (Bmc.Trace.replay tr netlist ~property) then
            failwith
              (Printf.sprintf
                 "Portfolio.check_race: counterexample at depth %d failed to replay \
                  (internal error)"
                 k);
          finish (Session.Falsified tr)
        | Sat.Solver.Unsat -> loop (k + 1)
        | Sat.Solver.Unknown -> assert false)
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Mode B: property batches.                                           *)
(* ------------------------------------------------------------------ *)

(* Clause exchange is sound only between sessions unrolling structurally
   identical circuits (packed keys are (node, frame) pairs, and equal
   digests guarantee identical node numbering), so group the batch by
   structural digest — two separately parsed copies of one circuit land in
   the same group, where the old physical ([==]) grouping kept them
   apart. *)
let batch_share_groups items =
  let order = ref [] in
  let groups : (string, string list ref) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (name, netlist, _) ->
      let d = Circuit.Netlist.digest netlist in
      match Hashtbl.find_opt groups d with
      | Some members -> members := name :: !members
      | None ->
        Hashtbl.add groups d (ref [ name ]);
        order := d :: !order)
    items;
  List.rev_map
    (fun d -> (d, List.rev !(Hashtbl.find groups d)))
    !order
  |> List.filter (fun (_, members) -> List.length members >= 2)

let check_batch ?(config = Session.default_config) ?(policy = Session.Persistent)
    ?(share = false) ~pool items =
  let tel = config.Session.telemetry in
  (* One exchange per digest group of two or more properties.  Fresh-policy
     batches never share (Session.create would reject the combination). *)
  let exchanges =
    if not (share && policy = Session.Persistent) then []
    else
      List.map (fun (d, _) -> (d, Share.Exchange.create ())) (batch_share_groups items)
  in
  Pool.map_list ~label:"batch" pool
    (fun (name, netlist, property) ->
      let t0 = Pool.wall () in
      (* endpoint created inside whichever worker stole the job, and
         confined to it *)
      let share =
        Option.map
          (fun ex -> Share.Exchange.endpoint ex ~name)
          (List.assoc_opt (Circuit.Netlist.digest netlist) exchanges)
      in
      let r = Session.check ~config ?share ~policy netlist ~property in
      if Telemetry.enabled tel then
        Telemetry.span_event tel "batch_item" ~dur:(Pool.wall () -. t0)
          [ ("name", Telemetry.Sink.Str name) ];
      (name, r))
    items
  |> fun results ->
  List.iter (fun (_, ex) -> emit_share_drops tel (Some ex)) exchanges;
  results
