(** The long-lived model-checking engine behind [bmcserve].

    The server couples three existing subsystems: requests are solved on
    the {!Portfolio.Pool}'s worker domains, warm {!Bmc.Session}s are kept
    in the digest-keyed {!Cache} between requests, and every answer is
    streamed to telemetry and a per-request ledger that [bmcprof serve]
    aggregates.

    {b Threading model.}  One {e front-end} thread (whichever thread calls
    {!submit} / {!process} / {!drain} — the select loop in [bmcserve], the
    bench driver, or a test) owns the cache and all bookkeeping.  Worker
    domains only run solve jobs and push results onto an internal
    mutex-protected completion queue, waking the front end through
    [on_wake] (e.g. a self-pipe write that interrupts a [select]).  The
    front end applies completions in {!process}, which is where responses
    are issued, waiters re-dispatched and the LRU budget enforced.

    {b Request lifecycle.}  {!submit} either answers immediately — shed
    (admission queue full), draining, malformed, or a {e cache hit}
    answered from the entry's memo without touching a solver — or
    dispatches a job pinned to the entry's worker.  A dispatched request
    resumes the entry's warm session at its first unproven depth ({e
    warm}), or builds a session cold ({e miss}).  Per-request deadlines
    arm the session budget's stop hook; a deadline/budget abort answers
    [Aborted] and invalidates the entry (the depth rule forbids re-solving
    an aborted instance), so the next request rebuilds cold. *)

type config = {
  sv_jobs : int;  (** pool worker domains *)
  sv_cache_bytes : int;  (** LRU budget over resident clause-arena bytes *)
  sv_max_pending : int;
      (** admission bound: in-flight + queued requests above this are
          shed *)
  sv_share : bool;
      (** attach sessions of digest-equal entries to a per-digest
          learnt-clause exchange *)
  sv_mode : Bmc.Session.mode;  (** ordering for requests without one *)
  sv_depth_cap : int;  (** requests with a deeper budget are rejected *)
  sv_max_conflicts : int option;  (** per-instance conflict budget *)
  sv_telemetry : Telemetry.t;
  sv_recorder : Obs.Recorder.t option;
  sv_ledger : (Obs.Json.t -> unit) option;  (** per-request ledger sink *)
}

val make_config :
  ?jobs:int ->
  ?cache_bytes:int ->
  ?max_pending:int ->
  ?share:bool ->
  ?mode:Bmc.Session.mode ->
  ?depth_cap:int ->
  ?max_conflicts:int ->
  ?telemetry:Telemetry.t ->
  ?recorder:Obs.Recorder.t ->
  ?ledger:(Obs.Json.t -> unit) ->
  unit ->
  config
(** Defaults: 1 job, 64 MiB cache, 64 pending, no sharing, [Dynamic]
    ordering, depth cap 64, no conflict budget, telemetry disabled. *)

type t

val create : ?on_wake:(unit -> unit) -> config -> t
(** Spawns the worker pool.  [on_wake] is called from worker domains each
    time a completion is queued (default: nothing) — front ends blocked in
    [select] use it to wake themselves; loops built on {!wait} don't need
    it. *)

val submit : t -> respond:(Protocol.response -> unit) -> Protocol.request -> unit
(** Front-end thread only.  [respond] fires exactly once — synchronously
    for shed / draining / malformed / cache-hit answers, else from a later
    {!process} call on the same thread. *)

val process : t -> unit
(** Apply queued completions: update cache entries, answer their
    requests, re-dispatch waiters, enforce the LRU budget.  Front-end
    thread only; cheap when idle. *)

val wait : t -> unit
(** Block until a completion is queued (returns immediately when nothing
    is in flight).  [wait]/[process] is the engine's event loop for front
    ends without their own [select]. *)

val pending : t -> int
(** Requests admitted but not yet answered (running + queued). *)

val begin_drain : t -> unit
(** Stop admission: subsequent {!submit}s answer [Draining].  In-flight
    requests keep running. *)

val draining : t -> bool

val drain : t -> unit
(** {!begin_drain}, then {!wait}/{!process} until nothing is pending.
    Every admitted request is answered before this returns — the SIGTERM
    path of [bmcserve]. *)

val shutdown : t -> unit
(** {!drain}, then shut the worker pool down.  The server is dead after
    this. *)

val check_now : t -> Protocol.request -> Protocol.response
(** Synchronous convenience for tests and the bench driver: submit, pump
    {!wait}/{!process} until this request's answer arrives, return it.
    Front-end thread only. *)

type stats = {
  st_answered : int;  (** requests answered with a verdict *)
  st_hits : int;  (** answered from the memo, no solver touched *)
  st_warm : int;  (** resumed a warm session *)
  st_misses : int;  (** solved cold *)
  st_shed : int;
  st_errors : int;  (** malformed requests and failed jobs *)
  st_evicted : int;  (** cache entries dropped by the LRU budget *)
  st_entries : int;  (** current cache population *)
  st_bytes : int;  (** current resident clause-arena bytes *)
}

val stats : t -> stats

val uptime_ms : t -> float
(** Wall-clock milliseconds since {!create} — the ledger's [t_ms] axis. *)
