test/test_checker.ml: Alcotest Format List QCheck QCheck_alcotest Sat String
