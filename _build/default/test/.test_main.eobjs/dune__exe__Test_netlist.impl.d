test/test_netlist.ml: Alcotest Array Circuit Printf QCheck QCheck_alcotest String
