(** Proof-based abstraction on top of the unsatisfiable cores.

    The paper's Figure 3 observes that an unsatisfiable core "implicitly
    defines an abstraction of the model": the registers whose clauses appear
    in the core are the ones the length-k refutation actually needed.  This
    module turns that observation into an {e unbounded} proof procedure
    (McMillan–Amla-style proof-based abstraction):

    + run the depth-k BMC instance; if SAT, a real counterexample;
    + if UNSAT, read the registers mentioned by the core off the CDG and
      build the {e localisation abstraction} that keeps exactly those
      registers ({!Circuit.Netlist.abstract_registers});
    + model check the abstraction exhaustively (it is usually tiny — that
      is the point).  If the property holds on the abstraction, it holds on
      the concrete circuit, at {e every} depth;
    + otherwise the abstract counterexample's length says how much deeper
      BMC must look: increase k and repeat.

    The BMC phase runs under the configured decision-ordering mode, so the
    refinement of the paper accelerates the very loop its Figure 3
    foreshadows. *)

type verdict =
  | Proved of { depth : int; kept_regs : int; total_regs : int }
      (** property invariant; proved from the depth-[depth] core keeping
          [kept_regs] of [total_regs] registers *)
  | Falsified of Trace.t
  | Unknown of int  (** undecided up to this depth *)

type round = {
  depth : int;
  core_regs : int;  (** registers named by this depth's core *)
  abstract_verdict : Circuit.Reach.verdict option;
      (** result of checking the abstraction; [None] if skipped *)
  time : float;
}

type result = {
  verdict : verdict;
  rounds : round list;
  total_time : float;
}

val prove :
  ?config:Engine.config ->
  ?max_abstract_regs:int ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** [prove netlist ~property] runs the abstraction loop.  [config.max_depth]
    bounds the BMC depth; [max_abstract_regs] (default 22) bounds the
    abstractions handed to the explicit-state checker — larger abstractions
    skip the check and deepen instead.
    @raise Invalid_argument if the netlist does not validate. *)

val prove_case :
  ?config:Engine.config -> ?max_abstract_regs:int -> Circuit.Generators.case -> result

val pp_verdict : Format.formatter -> verdict -> unit
