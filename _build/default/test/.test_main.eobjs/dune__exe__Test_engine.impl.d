test/test_engine.ml: Alcotest Bmc Circuit Format List Printf QCheck QCheck_alcotest Sat
