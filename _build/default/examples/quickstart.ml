(* Quickstart: build a circuit with the netlist API, check an invariant by
   BMC with the paper's refined decision ordering, and inspect the result.

   The design is a tiny bounded queue-occupancy counter: it must never
   report full and empty at the same time.  Run with:

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. Describe the circuit. *)
  let nl = Circuit.Netlist.create () in
  let push = Circuit.Netlist.input nl "push" in
  let pop = Circuit.Netlist.input nl "pop" in
  let count = Circuit.Word.regs nl ~prefix:"count" ~width:3 ~init:(Some 0) in
  let full = Circuit.Word.eq_const nl count 7 in
  let empty = Circuit.Word.is_zero nl count in
  let inc, _ = Circuit.Word.increment nl count in
  let dec, _ = Circuit.Word.decrement nl count in
  let do_inc =
    Circuit.Netlist.and_list nl [ push; Circuit.Netlist.not_ nl pop; Circuit.Netlist.not_ nl full ]
  in
  let do_dec =
    Circuit.Netlist.and_list nl [ pop; Circuit.Netlist.not_ nl push; Circuit.Netlist.not_ nl empty ]
  in
  let next =
    Circuit.Word.mux nl ~sel:do_inc ~hi:inc
      ~lo:(Circuit.Word.mux nl ~sel:do_dec ~hi:dec ~lo:count)
  in
  Circuit.Word.connect nl count next;

  (* 2. State the invariant: never full and empty simultaneously. *)
  let property = Circuit.Netlist.not_ nl (Circuit.Netlist.and_ nl full empty) in

  (* 3. Check it by BMC with the dynamic refined ordering (the paper's best
        configuration), up to depth 12. *)
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:12 () in
  let result = Bmc.Engine.run ~config nl ~property in

  Format.printf "verdict: %a@." Bmc.Engine.pp_verdict result.verdict;
  Format.printf "total: %.3fs, %d decisions, %d implications, %d conflicts@."
    result.total_time result.total_decisions result.total_implications result.total_conflicts;

  (* 4. The per-depth log shows the refinement at work: each UNSAT instance
        contributes its unsatisfiable core to the next instance's ordering. *)
  Format.printf "@.depth  outcome  decisions  core-vars@.";
  List.iter
    (fun (d : Bmc.Engine.depth_stat) ->
      Format.printf "%5d  %-7s  %9d  %9d@." d.depth
        (Format.asprintf "%a" Sat.Solver.pp_outcome d.outcome)
        d.decisions d.core_var_count)
    result.per_depth
