lib/core/symbolic.ml: Array Bdd Circuit Format Hashtbl List
