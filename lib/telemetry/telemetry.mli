(** Structured tracing with near-zero cost when disabled.

    A handle is either {!disabled} — every operation is a single branch on an
    immutable [false], no clock reads, no allocation — or created over a
    {!Sink.t} that receives timestamped events.  Producers guard hot-path
    emissions with {!enabled} so that field lists are never even built when
    telemetry is off; the solver's bench ablation verifies the disabled
    configuration is indistinguishable from an uninstrumented build.

    Event kinds used across this repository (see the README's
    "Observability" section for the full schema):

    - ["span"]: a timed phase.  Fields [name], [dur] (seconds); {!span}
      additionally records [nest] (enclosing-span depth), while pre-measured
      {!span_event}s may carry a [count] of coalesced calls.
    - ["counter"] / ["gauge"]: named monotonic sums / last-value readings.
    - ["decision"], ["restart"], ["switch"]: instant solver events.
    - ["depth"]: one per BMC unrolling depth, emitted by the engines. *)

module Sink = Sink

type t

val disabled : t
(** The no-op handle. *)

val create : ?clock:(unit -> float) -> ?timing:bool -> Sink.t -> t
(** An enabled handle over the sink.  [clock] (default [Sys.time]) is read
    once at creation; event timestamps are seconds since then.  Tests pass a
    deterministic clock.  [timing] (default [true]) additionally enables
    hot-path phase timing — clock reads around every BCP and conflict
    analysis; pass [~timing:false] for event-stream-only consumers (run
    ledgers, flight-recorder ride-alongs) that must stay cheap enough to
    leave on. *)

val enabled : t -> bool
(** [false] only for {!disabled}.  Guard any emission whose argument list is
    expensive to build. *)

val timing : t -> bool
(** Whether producers should pay per-call clock reads for phase timing.
    [false] for {!disabled} and for handles created with [~timing:false];
    implies {!enabled} when [true] by construction of {!create}. *)

val now : t -> float
(** Seconds since the handle was created (0 when disabled). *)

val event : t -> string -> (string * Sink.value) list -> unit
(** Emit an instant event of the given kind. *)

val counter : t -> string -> int -> unit
(** Emit a "counter" event; aggregating sinks sum the values per name. *)

val gauge : t -> string -> float -> unit
(** Emit a "gauge" event; aggregating sinks keep the last value per name. *)

val span : t -> string -> ?fields:(string * Sink.value) list -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] and emits a "span" event when it returns
    (or raises — the event is emitted either way and the exception
    re-raised).  The event's [ts] is the span's start; [nest] records how
    many spans were open around it {e on the calling domain} — nesting
    depth is domain-local, so concurrent racers sharing a handle do not
    corrupt each other's depths.  When disabled this is exactly
    [f ()]. *)

val span_event : t -> string -> dur:float -> (string * Sink.value) list -> unit
(** Emit a "span" event for an externally measured duration — used to
    publish coalesced hot-path timings (e.g. total BCP time of one solve
    call) as a single event. *)

val flush : t -> unit
