lib/core/pdr.ml: Array Circuit Format List Option Sat Sys Trace Unroll
