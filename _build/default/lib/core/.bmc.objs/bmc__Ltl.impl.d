lib/core/ltl.ml: Array Circuit Engine Format Hashtbl List Printf Sat Score Shtrichman String Sys Trace Unroll Varmap
