lib/core/symbolic.mli: Circuit Format
