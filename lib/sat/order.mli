(** Variable decision ordering (paper, Section 3.3).

    Chaff associates a score [cha_score(l)] with every {e literal}: its
    initial value is the literal's occurrence count in the CNF formula, and
    periodically [cha_score(l) <- cha_score(l)/2 + new_lit_counts(l)] where
    [new_lit_counts] counts occurrences in conflict clauses learnt since the
    last update.  The unassigned literal with the highest score is decided
    (and set to true).

    The paper adds a pre-computed per-variable [bmc_score] and combines the
    two keys lexicographically: [bmc_score] first, [cha_score] as tiebreaker.
    In {e static} mode this holds for the whole run; in {e dynamic} mode the
    solver calls {!switch_to_vsids} when its decision budget heuristic fires,
    after which only [cha_score] is used.

    Implementation: an indexed binary max-heap over literals with lazy
    re-insertion on unassignment.  Score bumps only increase keys (sift-up);
    the periodic halving rescales every key by the same factor, which
    preserves heap order, so no restructuring is needed. *)

type t

type mode =
  | Vsids  (** Chaff's default heuristic, [cha_score] only. *)
  | Static of float array
      (** [Static rank]: decide by [(rank.(var), cha_score)] lexicographic
          for the whole run.  [rank] is indexed by variable; variables beyond
          its length score 0. *)
  | Dynamic of float array
      (** Like [Static] until the solver detects the estimate is poor and
          calls {!switch_to_vsids}. *)

val create : num_vars:int -> mode -> t

val mode_uses_rank : t -> bool
(** Whether the rank component is currently part of the decision key. *)

val is_dynamic : t -> bool
(** Whether the order was created in [Dynamic] mode (regardless of whether
    the switch already happened). *)

val init_activity : t -> Cnf.t -> unit
(** Set every literal's score to its occurrence count in the formula. *)

val rebuild : t -> is_unassigned:(Lit.var -> bool) -> unit
(** Fill the heap with (the literals of) all currently unassigned
    variables.  Call once before the search starts. *)

val bump : t -> Lit.t -> unit
(** Add 1 to the literal's score (a new conflict-clause occurrence). *)

val halve_all : t -> unit
(** The periodic decay: every literal score is halved. *)

val on_unassign : t -> Lit.var -> unit
(** Re-insert the variable's two literals after backtracking unassigns it. *)

val pop_best : t -> is_unassigned:(Lit.var -> bool) -> Lit.t option
(** Highest-keyed literal whose variable is unassigned; [None] when all
    variables are assigned.  Stale (assigned) entries are discarded
    lazily. *)

val switch_to_vsids : t -> unit
(** Dynamic mode's fallback: drop the rank component and rebuild the heap
    keyed by [cha_score] alone.  Idempotent. *)

val activity : t -> Lit.t -> float

val rank_of : t -> Lit.var -> float

val decided_by_rank : t -> Lit.var -> bool
(** Whether a decision on [v] {e right now} is attributable to the
    [bmc_score] ranking: the rank component is active and [v] carries a
    positive rank.  A ranked order still breaks ties among zero-rank
    variables by activity — those branches are VSIDS's, not the
    paper's — so this is the per-variable refinement of
    {!mode_uses_rank}. *)

val grow : t -> num_vars:int -> unit
(** Extend the variable space (incremental solving).  New variables start
    with zero scores and rank. *)

val set_mode : t -> mode -> unit
(** Replace the ranking component and mode before a new solve call, keeping
    the accumulated literal activities.  The heap must be {!rebuild}t before
    the next {!pop_best}. *)

val bump_by : t -> Lit.t -> float -> unit
(** Like {!bump} with an explicit amount (used when attaching clauses
    incrementally: the initial score of a literal is its occurrence
    count). *)

val set_rank : t -> Lit.var -> float -> unit
(** Point update of one variable's rank while the search runs — the
    mutation path of pluggable heuristics (e.g. conflict-frequency
    branching) that refine their ranking per conflict instead of
    installing a whole new array via {!set_mode}.  Repairs the heap
    position of both of the variable's literals (a rank may fall as well
    as rise).  No-op on the rank key when the current mode ignores ranks,
    but the stored value still updates so a later ranked mode sees it. *)
