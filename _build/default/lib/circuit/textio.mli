(** Textual netlist format (".rnl").

    Line-oriented, whitespace-separated, ['#'] comments.  Declarations:

    {v
    input <name>
    const <name> 0|1
    not   <name> <a>
    and   <name> <a> <b>
    or    <name> <a> <b>
    xor   <name> <a> <b>
    mux   <name> <sel> <hi> <lo>
    reg   <name> init 0|1|x
    next  <reg> <src>
    prop  <node>
    v}

    Forward references are allowed (the file is read in two passes).
    Exactly one [prop] line is required: it designates the invariant
    property node (the circuit is expected to keep it true in every
    reachable state). *)

exception Parse_error of string

val parse_string : string -> Netlist.t * Netlist.node
(** Returns the netlist and the property node.
    @raise Parse_error on malformed input. *)

val parse_file : string -> Netlist.t * Netlist.node

val print : Format.formatter -> Netlist.t -> property:Netlist.node -> unit
(** Emit the netlist in the format above.  Unnamed internal nodes receive
    generated names [nK].  Round-trips with {!parse_string} up to node
    renaming. *)

val to_string : Netlist.t -> property:Netlist.node -> string

val write_file : string -> Netlist.t -> property:Netlist.node -> unit
