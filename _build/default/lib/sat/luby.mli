(** The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    The standard universal restart strategy; the solver multiplies each term
    by a base conflict budget. *)

val term : int -> int
(** [term i] is the [i]-th term of the Luby sequence, [i >= 1].
    @raise Invalid_argument on [i < 1]. *)

type t
(** Stateful generator. *)

val create : base:int -> t
(** [create ~base] yields [base * term i] on successive {!next} calls. *)

val next : t -> int
