(** Proof-aware inprocessing: budgets, statistics and the simplification
    engine (subsumption, self-subsuming resolution, bounded variable
    elimination) that {!Solver.inprocess} runs over the live clause arena.

    {!Simplify} is the standalone preprocessor over a {!Cnf.t}; this module
    is its in-solver counterpart.  The algorithmic core here is pure: it
    receives a snapshot of the live clauses and answers with an ordered
    {!action} script.  The solver replays the script against its arena,
    watch lists, proof graph and DRAT log — every derived clause (a
    resolvent of two clauses already in the database) is registered as a
    proof node carrying its antecedent IDs and emitted as a DRAT addition
    {e before} its parents are deleted, so [unsat_core] and
    {!Checker.check_refutation} stay exact with inprocessing on.

    Frozen variables are exempt from elimination only; probing and
    subsumption never remove a variable, so they need no freeze set. *)

(** {1 Budget} *)

type config = {
  max_occurrences : int;
      (** BVE per-polarity occurrence cap: a variable with more positive or
          more negative (irredundant) occurrences is never eliminated. *)
  growth : int;
      (** Resolvent-growth cap: an elimination may add at most
          [removed occurrences + growth] resolvents. *)
  max_probes : int;
      (** Failed-literal probes per run (each probe is one speculative
          level-1 propagation); [0] disables probing. *)
  rounds : int;  (** Subsumption + elimination passes per run. *)
  time_slice : float option;
      (** CPU-seconds cap per run; [None] (the default) runs the full
          budgeted passes, which keeps a run deterministic. *)
}

val default : config
(** [{max_occurrences = 10; growth = 0; max_probes = 128; rounds = 2;
    time_slice = None}] — the BMC depth-boundary budget. *)

val light : config
(** Probing plus one subsumption-only-sized pass: occurrence cap 6, no
    growth, 64 probes, 1 round. *)

val aggressive : config
(** Occurrence cap 20, growth 8, 512 probes, 4 rounds. *)

val config_of_string : string -> (config, string) result
(** Parse a CLI budget: a preset name ([default] | [light] | [aggressive])
    or comma-separated [key=value] overrides of the default —
    [occ] (max_occurrences), [growth], [probes], [rounds], [ms] (time slice
    in milliseconds, [0] meaning none).  E.g. ["occ=16,probes=256,ms=20"]. *)

val pp_config : Format.formatter -> config -> unit

(** {1 Statistics} *)

type stats = {
  mutable probes : int;
  mutable probe_failed : int;  (** probes whose propagation conflicted *)
  mutable satisfied_removed : int;  (** level-0-satisfied clauses dropped *)
  mutable subsumed : int;
  mutable strengthened : int;  (** self-subsuming resolutions *)
  mutable eliminated : int;  (** variables eliminated *)
  mutable resolvents : int;  (** clauses added by elimination *)
  mutable rounds_run : int;
  mutable time : float;  (** CPU seconds of the whole run *)
}

val fresh_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One-line summary: eliminated / subsumed / strengthened / probe
    failures, for the CLI exit lines. *)

(** {1 The simplification engine} *)

type clause_in = {
  lits : Lit.t list;  (** the stored literal set (level-0-false included) *)
  deletable : bool;  (** false for locked (reason) clauses *)
  redundant : bool;  (** learnt/imported: may be deleted, never relied on *)
}

(** The script replayed by the solver, in derivation order.  Clause ids are
    the caller's input indices ([0 .. n-1]); [Strengthen] and [Resolvent]
    allocate fresh ids (from [n] up, in emission order) named explicitly in
    [id].  A [Strengthen] implies the deletion of [target]; an [Eliminate]
    is followed by explicit [Delete]s of every remaining occurrence.  New
    clauses always precede the deletion of their parents. *)
type action =
  | Delete of int
  | Strengthen of { target : int; parent : int; lits : Lit.t list; id : int }
      (** [target] minus one literal, by resolution with [parent]. *)
  | Resolvent of { pos : int; neg : int; lits : Lit.t list; id : int; pivot : Lit.var }
  | Eliminate of { v : Lit.var; pos : Lit.t list list }
      (** [pos] = the irredundant positive occurrences at elimination time,
          saved for model reconstruction. *)

val simplify :
  config ->
  stats ->
  num_vars:int ->
  frozen:(Lit.var -> bool) ->
  value:(Lit.t -> int) ->
  deadline:float option ->
  clause_in array ->
  action list
(** Run [config.rounds] passes of subsumption + self-subsuming resolution
    followed by bounded variable elimination over the given clauses and
    return the action script (chronological).  [value] reports the level-0
    assignment of a literal (1 true / 0 false / -1 unassigned): resolvents
    already satisfied at level 0 are not emitted, and assigned or [frozen]
    variables are never eliminated.  Redundant clauses never subsume,
    strengthen, resolve or count toward occurrence limits, but are deleted
    when an eliminated variable occurs in them.  [deadline] (absolute
    [Sys.time] value) stops the engine between clauses when exceeded. *)
