test/test_reach.ml: Alcotest Circuit
