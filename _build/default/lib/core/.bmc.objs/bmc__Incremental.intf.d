lib/core/incremental.mli: Circuit Engine
