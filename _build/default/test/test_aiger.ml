(* AIGER format: parsing of hand-written files, ASCII and binary roundtrips
   validated semantically against the reachability oracle. *)

(* A toggling latch whose bad state is "latch high": fails at depth 1.
   (latch 2 starts at 0, next = ¬2 via literal 3) *)
let toggle_aag = "aag 1 0 1 0 0 1\n2 3\n2\n"

let test_parse_toggle () =
  let nl, property = Circuit.Aiger.parse_string toggle_aag in
  Alcotest.(check int) "one latch" 1 (List.length (Circuit.Netlist.regs nl));
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 1 -> ()
  | v -> Alcotest.failf "toggle: expected fails@1, got %a" Circuit.Reach.pp_verdict v

(* An and of two inputs reported as output (AIGER 1.0 style: output = bad). *)
let and_aag = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"

let test_parse_output_as_bad () =
  let nl, property = Circuit.Aiger.parse_string and_aag in
  Alcotest.(check int) "two inputs" 2 (List.length (Circuit.Netlist.inputs nl));
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 0 -> () (* both inputs high violates immediately *)
  | v -> Alcotest.failf "and: expected fails@0, got %a" Circuit.Reach.pp_verdict v

(* Latch with reset-to-one (AIGER 1.9) and bad = ¬latch: holds forever. *)
let reset_one_aag = "aag 1 0 1 0 0 1\n2 2 1\n3\n"

let test_parse_reset_one () =
  let nl, property = Circuit.Aiger.parse_string reset_one_aag in
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Holds _ -> ()
  | v -> Alcotest.failf "reset-one: expected holds, got %a" Circuit.Reach.pp_verdict v

(* Nondeterministic latch (reset to itself), self-looping, bad = latch:
   fails at depth 0 through the initial state choice. *)
let nondet_aag = "aag 1 0 1 0 0 1\n2 2 2\n2\n"

let test_parse_nondet_reset () =
  let nl, property = Circuit.Aiger.parse_string nondet_aag in
  (match Circuit.Netlist.regs nl with
  | [ r ] -> Alcotest.(check (option bool)) "uninitialised" None (Circuit.Netlist.reg_init nl r)
  | _ -> Alcotest.fail "one latch expected");
  match Circuit.Reach.check nl ~property with
  | Circuit.Reach.Fails_at 0 -> ()
  | v -> Alcotest.failf "nondet: expected fails@0, got %a" Circuit.Reach.pp_verdict v

let expect_error s =
  match Circuit.Aiger.parse_string s with
  | exception Circuit.Aiger.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected Parse_error on: " ^ String.escaped s)

let test_errors () =
  expect_error "";
  expect_error "not an aiger\n";
  expect_error "aag x y\n";
  expect_error "aag 1 0 1 0 0 1\n2 3\n"; (* missing bad line *)
  expect_error "aag 1 0 0 0 0 0\n"; (* neither bad nor output *)
  expect_error "aag 2 1 0 0 1 1\n2\n4\n4 4 2\n"; (* cyclic and-gate *)
  expect_error "aag 1 1 0 0 0 1\n3\n2\n" (* negated input literal *)

let verdicts_equal nl1 p1 nl2 p2 =
  Circuit.Reach.equal_verdict
    (Circuit.Reach.check nl1 ~property:p1)
    (Circuit.Reach.check nl2 ~property:p2)

let test_ascii_roundtrip_tiny_suite () =
  List.iter
    (fun (c : Circuit.Generators.case) ->
      let text = Circuit.Aiger.to_ascii c.netlist ~property:c.property in
      let nl, p = Circuit.Aiger.parse_string text in
      if not (verdicts_equal c.netlist c.property nl p) then
        Alcotest.failf "%s: ASCII AIGER roundtrip changed the verdict" c.name)
    (Circuit.Generators.tiny_suite ())

let test_binary_roundtrip_tiny_suite () =
  List.iter
    (fun (c : Circuit.Generators.case) ->
      let data = Circuit.Aiger.to_binary c.netlist ~property:c.property in
      let nl, p = Circuit.Aiger.parse_string data in
      if not (verdicts_equal c.netlist c.property nl p) then
        Alcotest.failf "%s: binary AIGER roundtrip changed the verdict" c.name)
    (Circuit.Generators.tiny_suite ())

let test_ascii_binary_agree () =
  let c = Circuit.Generators.gray ~bits:3 () in
  let a = Circuit.Aiger.parse_string (Circuit.Aiger.to_ascii c.netlist ~property:c.property) in
  let b = Circuit.Aiger.parse_string (Circuit.Aiger.to_binary c.netlist ~property:c.property) in
  let nl_a, p_a = a and nl_b, p_b = b in
  Alcotest.(check bool) "same verdict from both encodings" true
    (verdicts_equal nl_a p_a nl_b p_b)

let test_file_io () =
  let c = Circuit.Generators.ring ~len:4 () in
  let path = Filename.temp_file "circuit" ".aig" in
  Circuit.Aiger.write_file path c.netlist ~property:c.property;
  let nl, p = Circuit.Aiger.parse_file path in
  Sys.remove path;
  Alcotest.(check bool) "binary file roundtrip" true (verdicts_equal c.netlist c.property nl p)

let test_bmc_on_parsed_aiger () =
  (* end-to-end: emit a failing case as AIGER, re-read, model check *)
  let c = Circuit.Generators.shift_in ~len:4 () in
  let nl, p = Circuit.Aiger.parse_string (Circuit.Aiger.to_ascii c.netlist ~property:c.property) in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:6 () in
  match (Bmc.Engine.run ~config nl ~property:p).verdict with
  | Bmc.Engine.Falsified t -> Alcotest.(check int) "depth preserved" 4 t.Bmc.Trace.depth
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Engine.pp_verdict v

let prop_roundtrip_random_cases =
  let gen =
    let open QCheck.Gen in
    oneof
      [
        (pair (1 -- 6) (oneofl [ 0; 3 ]) >|= fun (t, z) ->
         Circuit.Generators.counter_en ~bits:3 ~target:t ~noise:z ());
        (3 -- 6 >|= fun l -> Circuit.Generators.ring ~len:l ());
        (2 -- 4 >|= fun s -> Circuit.Generators.parity_pipe ~stages:s ());
        (4 -- 6 >|= fun w -> Circuit.Generators.johnson ~width:w ());
        (2 -- 3 >|= fun b -> Circuit.Generators.fifo_safe ~bits:b ());
      ]
  in
  QCheck.Test.make ~name:"AIGER roundtrips preserve semantics" ~count:30
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun c ->
      let via_ascii =
        Circuit.Aiger.parse_string (Circuit.Aiger.to_ascii c.netlist ~property:c.property)
      in
      let via_binary =
        Circuit.Aiger.parse_string (Circuit.Aiger.to_binary c.netlist ~property:c.property)
      in
      let nl_a, p_a = via_ascii and nl_b, p_b = via_binary in
      verdicts_equal c.netlist c.property nl_a p_a && verdicts_equal c.netlist c.property nl_b p_b)

let tests =
  [
    Alcotest.test_case "toggle latch" `Quick test_parse_toggle;
    Alcotest.test_case "output as bad" `Quick test_parse_output_as_bad;
    Alcotest.test_case "reset one" `Quick test_parse_reset_one;
    Alcotest.test_case "nondet reset" `Quick test_parse_nondet_reset;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "ascii roundtrip suite" `Slow test_ascii_roundtrip_tiny_suite;
    Alcotest.test_case "binary roundtrip suite" `Slow test_binary_roundtrip_tiny_suite;
    Alcotest.test_case "encodings agree" `Quick test_ascii_binary_agree;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "bmc on parsed aiger" `Quick test_bmc_on_parsed_aiger;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_cases;
  ]
