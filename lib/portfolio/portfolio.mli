(** Parallel portfolio over the BMC session substrate.

    The paper's gamble is that one of three decision orderings — plain
    VSIDS, the static refined ordering, the dynamic ordering with VSIDS
    fallback — wins per instance, but which one is instance-dependent.
    This module stops guessing and races them on OCaml 5 domains:

    {b Mode A (strategy race).}  {!create_race} builds one persistent
    {!Bmc.Session} per ordering, each pinned to its own pool worker (the
    sessions are domain-confined, so they are created lazily {e inside}
    their workers and never leave them).  {!race_depth} submits the
    depth-k instance to every racer; the first definitive answer (SAT or
    UNSAT) wins, the losers are cancelled cooperatively through their
    {!Pool.Token}s (the solver polls the token at conflict / 1024-decision
    boundaries, so a loser exits within one restart interval), and the
    winner's unsat core is folded into the shared {!Bmc.Score} — the
    paper's refinement loop, parallelised: depth k+1's static/dynamic
    racers decide by the ranking the depth-k winner produced.

    {b Mode B (property batch).}  {!check_batch} schedules one full
    sequential check per property over the pool's shared queue
    (work-stealing across properties); each job owns its session on
    whichever worker picked it up.  Outcomes are bit-identical to running
    the properties sequentially, whatever the pool size — parallelism only
    reorders which property finishes first.

    Determinism: race {e outcomes} are deterministic (SAT-ness of the
    depth-k instance does not depend on who answers), but race {e winners}
    and therefore the evolution of the shared ranking are timing-dependent
    — so per-depth decision counts and cores may differ between race runs
    while the [s]/[u] outcome string stays fixed. *)

module Pool = Pool

(** {1 Mode A: strategy races} *)

type race
(** A persistent racing ensemble: one session per ordering, a shared
    score, and the cancellation tokens.  Owned by the creating domain
    (the coordinator); racer sessions are owned by their pool workers. *)

type racer = {
  r_name : string;
      (** the racer's display name — win tallies, race rows, telemetry
          counters and share-endpoint names are all keyed by it (typically
          an {!Ordering}-registry heuristic name) *)
  r_mode : Bmc.Session.mode;  (** the racer's decision ordering *)
  r_restart_base : int option;
      (** Luby restart unit override ([None] keeps the solver default).
          Distinct units diversify restart schedules across the ensemble,
          so the racers learn — and, with an exchange attached, share —
          different clauses. *)
  r_conflicts : int option;
      (** per-racer per-instance conflict budget; combined (min) with the
          run-wide budget.  A racer that burns it loses the round and
          becomes a rotation candidate. *)
  r_seconds : float option;
      (** per-racer per-instance CPU-seconds budget, combined like
          [r_conflicts] *)
}

val racer :
  ?restart_base:int ->
  ?conflicts:int ->
  ?seconds:float ->
  name:string ->
  Bmc.Session.mode ->
  racer
(** Smart constructor.  Heuristics with hook state ({!Bmc.Session.Custom})
    must not be shared between racers — build each racer's mode freshly
    (e.g. one {!Ordering.mode_of_name} call per racer).
    @raise Invalid_argument on a non-positive budget. *)

val default_racers : racer list
(** The paper's three orderings with diversified restart units:
    ["standard"]/64, ["static"]/100, ["dynamic"]/150. *)

val create_race :
  ?modes:Bmc.Session.mode list ->
  ?racers:racer list ->
  ?rotation:racer list ->
  ?share:Share.Exchange.t ->
  pool:Pool.t ->
  Bmc.Session.config ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  race
(** The ensemble defaults to {!default_racers}.  [racers] overrides it
    fully; [modes] (kept for compatibility) races the given orderings with
    default restart units and is ignored when [racers] is present.
    [rotation] is the queue of untried roster entries for adaptive racer
    rotation: at the end of a round, every losing racer that exhausted its
    {e own} per-racer budget (rather than being cancelled by the winner)
    is recycled onto the next queue entry — its persistent session is
    dropped and the replacement heuristic takes over the slot from the
    next depth.  The [config]'s [mode] field is ignored (each racer gets
    its own); its budget, COI, weighting, max_depth and telemetry apply to
    every racer, and [collect_cores] is forced on so the winner always has
    a core to contribute.  [share] attaches every racer to the given
    learnt-clause exchange: each racer's session gets its own
    {!Share.Exchange.endpoint} (created inside its pinned worker, named
    after the racer), exports untainted short learnt clauses, and imports
    the siblings' at restart boundaries.  Imports carry their provenance
    (source solver, source clause id), so the winner's core stays {e
    exact} under sharing — see {!race_stat}'s [core_vars].  The caller
    keeps the exchange and reads {!Share.Exchange.stats} from it between
    rounds.  Racer [i] is pinned to pool worker [i mod Pool.size pool];
    with fewer workers than racers the race serialises gracefully.
    @raise Invalid_argument if the ensemble is empty. *)

type race_stat = {
  depth : int;
  winner : string option;
      (** the winning racer's name; [None] when every racer returned
          [Unknown] *)
  stat : Bmc.Session.depth_stat;
      (** the winner's per-instance stat (a loser's when [winner = None]) *)
  core_vars : Sat.Lit.var list;
      (** the winner's unsat-core variables ([[]] unless it answered UNSAT
          with proof logging) — the set folded into the shared ranking,
          exposed so reports and benches can fingerprint which core
          actually steered depth k+1.  With an exchange attached this is
          the {e exact cross-solver} core: after every racer settles, the
          coordinator stitches the racers' proof shards
          ({!Bmc.Session.exact_core_vars}) so imports in the winner's
          refutation resolve to the sibling clauses that produced them
          instead of being dropped at the shard boundary *)
  attempts : (string * Sat.Solver.outcome) list;
      (** every racer's (name, outcome), in slot order ([Unknown] for
          cancelled losers); names are the round's, before any rotation *)
  wall : float;  (** wall-clock seconds for the whole round *)
  cancelled : int;  (** losers that were cancelled mid-solve *)
  max_cancel_latency : float;
      (** slowest observed cancel-to-exit wall latency this round (0 when
          nothing was cancelled) *)
  rotated : int;
      (** slots recycled onto the rotation queue at the end of this round *)
  trace : Bmc.Trace.t option;  (** the winner's counterexample, if SAT *)
}

val race_depth : race -> k:int -> race_stat
(** Race the depth-k instance (property constrained to fail at frame [k])
    across all racers and block until every racer has settled.  Depths
    must strictly increase across calls (the racers' persistent sessions
    require it).  Emits one "race" telemetry event per round, a
    ["race.win.<name>"] counter for the winner, a ["race.cancelled"]
    counter, one ["cancel_latency"] span per cancelled loser and one
    ["rotate"] event per recycled slot.  With a flight recorder in the
    config, each racer records [Racer_start] and [Racer_win] /
    [Racer_cancel] events to its own worker's ring. *)

val race_score : race -> Bmc.Score.t
(** The shared ranking the winners have built so far.  Coordinator-only:
    read or mutate it between {!race_depth} rounds, never during one. *)

val race_wins : race -> (string * int) list
(** Win tallies per racer name, in first-appearance order (roster first,
    then rotation entries as they come into play).  Coordinator-only,
    between rounds. *)

val race_rotated : race -> int
(** Total rotations performed so far.  Coordinator-only, between rounds. *)

type result = {
  verdict : Bmc.Session.verdict;
  per_depth : race_stat list;  (** ascending depth *)
  total_wall : float;
  wins : (string * int) list;
      (** race wins per racer name, first-appearance order (includes
          zero-win racers and rotated-in heuristics) *)
  rotated : int;  (** total racer rotations over the run *)
}

val check_race :
  ?config:Bmc.Session.config ->
  ?modes:Bmc.Session.mode list ->
  ?racers:racer list ->
  ?rotation:racer list ->
  ?share:Share.Exchange.t ->
  pool:Pool.t ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** The full BMC loop of {!Bmc.Session.check}, with every depth raced: for
    k = 0, 1, ... race the depth-k instance; on a SAT winner replay and
    report the counterexample; on UNSAT deepen; when every racer comes
    back [Unknown] abort.  The verdict is bit-identical to the sequential
    engines' on the same circuit and budget (only wall time and the
    winning modes vary run to run).
    @raise Failure if a counterexample fails to replay (solver/encoder
    bug, surfaced loudly). *)

(** {1 Mode B: property batches} *)

val batch_share_groups :
  (string * Circuit.Netlist.t * Circuit.Netlist.node) list ->
  (string * string list) list
(** The sharing groups {!check_batch} [~share:true] would form: batch items
    grouped by {!Circuit.Netlist.digest} (structural identity, so two
    separately parsed copies of one circuit group together), keeping only
    groups of two or more.  Each group is [(digest, property names)] with
    both group order and member order following the input.  Exposed so
    tests and schedulers can inspect the grouping without running the
    batch. *)

val check_batch :
  ?config:Bmc.Session.config ->
  ?policy:Bmc.Session.policy ->
  ?share:bool ->
  pool:Pool.t ->
  (string * Circuit.Netlist.t * Circuit.Netlist.node) list ->
  (string * Bmc.Session.result) list
(** Check many properties concurrently: one job per named property on the
    pool's shared queue, each running the plain sequential
    {!Bmc.Session.check} (policy defaults to [Persistent]) on whichever
    worker steals it.  Results come back in input order, and each is
    bit-identical to a sequential run of the same property — clause
    sharing included, since imports are sound clauses of the same
    formula.  [share] (default [false]) groups the batch by structural
    digest ({!batch_share_groups}) and attaches the properties of each
    group of two or more to a common learnt-clause exchange (endpoints
    named after the properties);
    it has no effect under the [Fresh] policy or on netlists checked only
    once.  Emits one ["batch_item"] telemetry span per property (wall
    seconds, tagged with the property's name). *)
