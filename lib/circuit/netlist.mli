(** Gate-level sequential circuits.

    The model of the paper's Section 2: a tuple ⟨V, W, I, T⟩ where V are the
    registers (present-state variables), W the primary inputs, I the initial
    state predicate (given per-register initial values, with [None] meaning
    uninitialised / nondeterministic) and T the transition relation defined
    structurally by the gate network feeding each register's [next] input.

    Nodes are dense integer IDs.  Construction is via the builder functions
    below; registers are created first and their [next] function connected
    afterwards with {!set_next}, which is what permits feedback loops.
    Combinational gates are hash-consed, so building the same gate twice
    returns the same node. *)

type t

type node = int
(** Node IDs are dense, 0-based, in creation order. *)

type gate =
  | Input of string
  | Const of bool
  | Not of node
  | And of node * node
  | Or of node * node
  | Xor of node * node
  | Mux of node * node * node  (** [Mux (sel, hi, lo)]: [hi] when [sel] *)
  | Reg of string
      (** A register, identified by name; initial value and next-state input
          are queried with {!reg_init} and {!reg_next}. *)

val create : unit -> t

val num_nodes : t -> int

val gate : t -> node -> gate
(** @raise Invalid_argument on an unknown node. *)

(** {2 Builders} *)

val input : t -> string -> node
(** Fresh primary input.  @raise Invalid_argument on a duplicate name. *)

val const_true : t -> node

val const_false : t -> node

val not_ : t -> node -> node

val and_ : t -> node -> node -> node

val or_ : t -> node -> node -> node

val xor_ : t -> node -> node -> node

val mux : t -> sel:node -> hi:node -> lo:node -> node

val nand_ : t -> node -> node -> node

val nor_ : t -> node -> node -> node

val xnor_ : t -> node -> node -> node
(** Equivalence (a ↔ b). *)

val implies : t -> node -> node -> node

val and_list : t -> node list -> node
(** Conjunction; the constant true on []. *)

val or_list : t -> node list -> node
(** Disjunction; the constant false on []. *)

val reg : t -> name:string -> init:bool option -> node
(** Fresh register.  [init = None] means nondeterministic initial value.
    The next-state input must be connected with {!set_next} before the
    netlist is used.  @raise Invalid_argument on a duplicate name. *)

val set_next : t -> node -> node -> unit
(** [set_next t r n] connects register [r]'s next-state input to node [n].
    @raise Invalid_argument if [r] is not a register or already connected. *)

(** {2 Queries} *)

val reg_init : t -> node -> bool option
(** @raise Invalid_argument if not a register. *)

val reg_next : t -> node -> node
(** @raise Invalid_argument if not a register, or if its next input was
    never connected. *)

val inputs : t -> node list
(** Primary inputs, in creation order. *)

val regs : t -> node list
(** Registers, in creation order. *)

val name_node : t -> string -> node -> unit
(** Attach a (or another) name to any node, e.g. for pretty traces.
    @raise Invalid_argument on a duplicate name. *)

val find : t -> string -> node option
(** Look a node up by name (inputs, registers and {!name_node} aliases). *)

val name_of : t -> node -> string option
(** Canonical name of a node if it has one. *)

val fanins : gate -> node list
(** Combinational fanins of a gate ([Reg] has none — its next input is a
    sequential edge). *)

val validate : t -> (unit, string) result
(** Check that every register's next input is connected and that the
    combinational part is acyclic (every cycle passes through a register). *)

val transitive_fanin : t -> node list -> (node -> bool)
(** [transitive_fanin t roots] is the membership predicate of the cone of
    influence of [roots]: everything reachable through combinational fanins
    {e and} register next-inputs. *)

val digest : t -> string
(** Structural digest (MD5 hex) of the circuit: the gate array in creation
    order, every register's initial value and next-state node, and the
    names carried by [Input]/[Reg] gates.  Names added with {!name_node}
    are presentation-only and excluded.  Because node IDs are dense and
    creation-ordered, equal digests mean {e byte-identical} structures with
    identical node numbering — e.g. two {!Textio.parse_string} runs over
    the same text — so digest-equal netlists can soundly share learnt
    clauses (packed [(node, frame)] keys coincide) and warm solver state.
    Registers with unconnected next inputs digest with a [-1] sentinel
    rather than raising.  O(nodes) per call; cache it if hot. *)

val abstract_registers : t -> keep:(node -> bool) -> t * (node -> node)
(** [abstract_registers t ~keep] is the localisation abstraction of [t]:
    registers satisfying [keep] survive; every other register becomes a
    fresh primary input (an unconstrained value every cycle), which
    over-approximates the original behaviour.  Returns the new netlist and
    the node mapping (old → new); gates are rebuilt through the
    simplifying constructors, so distinct old nodes may map to one new
    node. *)

val pp_gate : Format.formatter -> gate -> unit
