type cref = int

let none = -1

(* Block layout: [header | cid | activity | lits...].  The header packs
   (size lsl 4) with the four flag bits below; the cid slot doubles as the
   forwarding pointer once a block has been relocated. *)
let hdr_words = 3

let flag_learnt = 1

let flag_deleted = 2

let flag_reloced = 4

(* The clause (or its derivation) involves an instance-local literal, so it
   must never be exported to a sibling solver.  Lives in the header because
   compaction blits headers verbatim: taint survives relocation. *)
let flag_tainted = 8

let activity_unit = 1 lsl 10

type t = {
  mutable data : int array;
  mutable size : int; (* words in use, including wasted blocks *)
  mutable wasted : int; (* words in deleted blocks *)
}

let create ?(capacity = 1024) () =
  { data = Array.make (max capacity hdr_words) 0; size = 0; wasted = 0 }

(* Accessors are unchecked: a cref is only ever obtained from [alloc] or
   [reloc], so the block bounds are an invariant, not a runtime question. *)
let[@inline] header a cr = Array.unsafe_get a.data cr

let[@inline] size a cr = header a cr lsr 4

let[@inline] learnt a cr = header a cr land flag_learnt <> 0

let[@inline] deleted a cr = header a cr land flag_deleted <> 0

let[@inline] relocated a cr = header a cr land flag_reloced <> 0

let[@inline] tainted a cr = header a cr land flag_tainted <> 0

let[@inline] cid a cr = Array.unsafe_get a.data (cr + 1)

let[@inline] activity a cr = Array.unsafe_get a.data (cr + 2)

let[@inline] set_activity a cr act = Array.unsafe_set a.data (cr + 2) act

let[@inline] bump_activity a cr = set_activity a cr (activity a cr + activity_unit)

let[@inline] halve_activity a cr = set_activity a cr (activity a cr asr 1)

let[@inline] lit a cr i = Lit.of_index (Array.unsafe_get a.data (cr + hdr_words + i))

let[@inline] set_lit a cr i l = Array.unsafe_set a.data (cr + hdr_words + i) (Lit.to_index l)

let swap_lits a cr i j =
  let tmp = Array.unsafe_get a.data (cr + hdr_words + i) in
  Array.unsafe_set a.data (cr + hdr_words + i) (Array.unsafe_get a.data (cr + hdr_words + j));
  Array.unsafe_set a.data (cr + hdr_words + j) tmp

let ensure a words =
  let needed = a.size + words in
  if needed > Array.length a.data then begin
    let cap = ref (max 1024 (Array.length a.data)) in
    while needed > !cap do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit a.data 0 data 0 a.size;
    a.data <- data
  end

let alloc a ~cid ~learnt ?(tainted = false) lits =
  let n = Array.length lits in
  ensure a (hdr_words + n);
  let cr = a.size in
  a.data.(cr) <-
    (n lsl 4) lor (if learnt then flag_learnt else 0) lor (if tainted then flag_tainted else 0);
  a.data.(cr + 1) <- cid;
  a.data.(cr + 2) <- (if learnt then activity_unit else 0);
  for i = 0 to n - 1 do
    a.data.(cr + hdr_words + i) <- Lit.to_index lits.(i)
  done;
  a.size <- a.size + hdr_words + n;
  cr

let delete a cr =
  if not (deleted a cr) then begin
    a.wasted <- a.wasted + hdr_words + size a cr;
    a.data.(cr) <- header a cr lor flag_deleted
  end

let iter_lits a cr f =
  for i = 0 to size a cr - 1 do
    f (lit a cr i)
  done

let lits_list a cr =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (lit a cr i :: acc) in
  loop (size a cr - 1) []

let live_words a = a.size - a.wasted

let wasted_words a = a.wasted

let bytes a = a.size * (Sys.word_size / 8)

let should_gc a ~max_waste =
  a.wasted > 0 && float_of_int a.wasted >= max_waste *. float_of_int a.size

let reloc a ~into cr =
  if relocated a cr then cid a cr
  else begin
    if deleted a cr then invalid_arg "Arena.reloc: deleted clause reachable from a root";
    let words = hdr_words + size a cr in
    ensure into words;
    let cr' = into.size in
    Array.blit a.data cr into.data cr' words;
    into.size <- into.size + words;
    a.data.(cr) <- header a cr lor flag_reloced;
    a.data.(cr + 1) <- cr';
    cr'
  end

let commit a ~into =
  a.data <- into.data;
  a.size <- into.size;
  a.wasted <- into.wasted

module Watch = struct
  type w = {
    mutable data : int array; (* blocker at 2i, cref at 2i+1 *)
    mutable len : int; (* pair count *)
  }

  let create () = { data = [||]; len = 0 }

  let length w = w.len

  let[@inline] blocker w i = Lit.of_index (Array.unsafe_get w.data (2 * i))

  let[@inline] cref w i = Array.unsafe_get w.data ((2 * i) + 1)

  let[@inline] set w i b c =
    Array.unsafe_set w.data (2 * i) (Lit.to_index b);
    Array.unsafe_set w.data ((2 * i) + 1) c

  let push w b c =
    let cap = Array.length w.data in
    if 2 * w.len = cap then begin
      let data = Array.make (max 4 (2 * cap)) 0 in
      Array.blit w.data 0 data 0 (2 * w.len);
      w.data <- data
    end;
    w.len <- w.len + 1;
    set w (w.len - 1) b c

  let truncate w n = w.len <- n

  let filter_crefs w keep =
    let j = ref 0 in
    for i = 0 to w.len - 1 do
      if keep (cref w i) then begin
        if !j < i then set w !j (blocker w i) (cref w i);
        incr j
      end
    done;
    w.len <- !j

  let map_crefs w f =
    for i = 0 to w.len - 1 do
      Array.unsafe_set w.data ((2 * i) + 1) (f (cref w i))
    done

  let fold_crefs f acc w =
    let acc = ref acc in
    for i = 0 to w.len - 1 do
      acc := f !acc (cref w i)
    done;
    !acc
end
