(* A tour of the portfolio layer: race the paper's three decision orderings
   (plain VSIDS, static refined, dynamic with fallback) on one circuit and
   watch which one wins each depth.  The first definitive answer wins the
   round, the losers are cancelled cooperatively, and the winner's unsat
   core re-ranks the shared score for the next depth — the paper's
   refinement loop with the "which ordering?" guess removed.

     dune exec examples/portfolio_tour.exe
*)

let () =
  (* A circuit with enough property-irrelevant noise that the orderings
     genuinely disagree about where to decide first. *)
  let case = Circuit.Generators.parity_pipe ~stages:6 ~noise:32 () in
  let depth = case.suggested_depth in
  Format.printf "circuit: %s, racing to depth %d on 3 workers@.@." case.name depth;

  Portfolio.Pool.with_pool ~jobs:3 (fun pool ->
      let config = Bmc.Session.make_config ~max_depth:depth () in
      let result =
        Portfolio.check_race ~config ~pool case.netlist ~property:case.property
      in

      Format.printf "depth  winner    outcome  wall(ms)  cancelled  attempts@.";
      List.iter
        (fun (rs : Portfolio.race_stat) ->
          Format.printf "%5d  %-8s  %-7s  %8.2f  %9d  %s@." rs.Portfolio.depth
            (match rs.winner with Some n -> n | None -> "-")
            (Sat.Solver.outcome_string rs.stat.Bmc.Session.outcome)
            (rs.Portfolio.wall *. 1000.0) rs.Portfolio.cancelled
            (String.concat " "
               (List.map
                  (fun (n, o) ->
                    Printf.sprintf "%s:%s" n (Sat.Solver.outcome_string o))
                  rs.Portfolio.attempts)))
        result.per_depth;

      Format.printf "@.verdict: %a in %.2f ms wall@." Bmc.Session.pp_verdict result.verdict
        (result.total_wall *. 1000.0);
      Format.printf "race wins:";
      List.iter (fun (n, c) -> Format.printf " %s=%d" n c) result.wins;
      Format.printf
        "@.@.Whichever ordering wins a depth, its core feeds the shared ranking —@.\
         so the static and dynamic racers at depth k+1 start from the best@.\
         refutation found at depth k, not from their own.@.")
