test/test_induction.ml: Alcotest Bmc Circuit Format List QCheck QCheck_alcotest Sat
